// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index), plus micro-benchmarks of the
// main pipeline components. The experiment benchmarks report the reproduced
// headline numbers via b.ReportMetric so `go test -bench=.` doubles as the
// reproduction run.
package vliwvp_test

import (
	"io"
	"math"
	"sync"
	"testing"

	"vliwvp"
	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/exp"
	"vliwvp/internal/interp"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/predict"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
	"vliwvp/internal/workload"
)

// prepared caches the expensive profile+transform pipeline per benchmark
// and machine so each experiment benchmark times only its own analysis.
var (
	prepMu   sync.Mutex
	prepData = map[string]*exp.BenchData{}
)

func prepared(b *testing.B, r *exp.Runner, w *workload.Benchmark) *exp.BenchData {
	b.Helper()
	prepMu.Lock()
	defer prepMu.Unlock()
	key := r.D.Name + "/" + w.Name
	if bd, ok := prepData[key]; ok {
		return bd
	}
	bd, err := r.Prepare(w)
	if err != nil {
		b.Fatal(err)
	}
	prepData[key] = bd
	return bd
}

// BenchmarkTable2 regenerates Table 2: the fraction of execution time in
// speculated blocks with all predictions correct (best) / incorrect (worst).
func BenchmarkTable2(b *testing.B) {
	r := exp.NewRunner(machine.W4)
	var data []*exp.BenchData
	for _, w := range workload.All() {
		data = append(data, prepared(b, r, w))
	}
	b.ResetTimer()
	var best, worst float64
	for i := 0; i < b.N; i++ {
		best, worst = 0, 0
		for _, bd := range data {
			row := exp.Table2(bd)
			best += row.BestFrac
			worst += row.WorstFrac
		}
	}
	b.ReportMetric(best/8, "bestfrac/avg")
	b.ReportMetric(worst/8, "worstfrac/avg")
}

// BenchmarkTable3 regenerates Table 3: effective schedule length of
// speculated blocks as a fraction of the original, via the dual-engine
// timing model.
func BenchmarkTable3(b *testing.B) {
	r := exp.NewRunner(machine.W4)
	var data []*exp.BenchData
	for _, w := range workload.All() {
		data = append(data, prepared(b, r, w))
	}
	b.ResetTimer()
	var best, worst float64
	for i := 0; i < b.N; i++ {
		best, worst = 0, 0
		for _, bd := range data {
			row, err := exp.Table3(bd)
			if err != nil {
				b.Fatal(err)
			}
			best += row.Best
			worst += row.Worst
		}
	}
	b.ReportMetric(best/8, "bestratio/avg")
	b.ReportMetric(worst/8, "worstratio/avg")
}

// BenchmarkTable4 regenerates Table 4: best-case metrics at widths 4 vs 8,
// reporting the aggregate improvement at each width (the paper's claim is
// that the 8-wide machine improves more).
func BenchmarkTable4(b *testing.B) {
	r4 := exp.NewRunner(machine.W4)
	r8 := exp.NewRunner(machine.W8)
	var d4, d8 []*exp.BenchData
	for _, w := range workload.All() {
		d4 = append(d4, prepared(b, r4, w))
		d8 = append(d8, prepared(b, r8, w))
	}
	b.ResetTimer()
	var imp4, imp8 float64
	for i := 0; i < b.N; i++ {
		imp4, imp8 = 0, 0
		for j := range d4 {
			t4, err := exp.Table3(d4[j])
			if err != nil {
				b.Fatal(err)
			}
			t8, err := exp.Table3(d8[j])
			if err != nil {
				b.Fatal(err)
			}
			imp4 += 1 - t4.Best
			imp8 += 1 - t8.Best
		}
	}
	b.ReportMetric(imp4/8, "improvement/4wide")
	b.ReportMetric(imp8/8, "improvement/8wide")
}

// BenchmarkFigure8 regenerates Figure 8: the distribution of
// schedule-length change over executed speculated blocks (all-correct
// case), reporting the dominant 1-4 cycle improvement share.
func BenchmarkFigure8(b *testing.B) {
	r := exp.NewRunner(machine.W4)
	var data []*exp.BenchData
	for _, w := range workload.All() {
		data = append(data, prepared(b, r, w))
	}
	b.ResetTimer()
	var oneToFour, degraded, total float64
	for i := 0; i < b.N; i++ {
		oneToFour, degraded, total = 0, 0, 0
		for _, bd := range data {
			h, err := exp.Figure8(bd)
			if err != nil {
				b.Fatal(err)
			}
			degraded += h.Buckets[0].Count
			oneToFour += h.Buckets[2].Count + h.Buckets[3].Count
			total += h.Total
		}
	}
	b.ReportMetric(oneToFour/total, "improve1to4/frac")
	b.ReportMetric(degraded/total, "degraded/frac")
}

// BenchmarkBaselineComparison regenerates the §3 comparison against the
// static compensation-block scheme of [4]: compensation time fraction,
// schedule inflation, code growth, and instruction-cache pollution.
func BenchmarkBaselineComparison(b *testing.B) {
	r := exp.NewRunner(machine.W4)
	var data []*exp.BenchData
	for _, w := range workload.All() {
		data = append(data, prepared(b, r, w))
	}
	b.ResetTimer()
	var compBase, compOurs, missBase, missOurs float64
	for i := 0; i < b.N; i++ {
		compBase, compOurs, missBase, missOurs = 0, 0, 0, 0
		for _, bd := range data {
			row, err := r.CompareBaseline(bd, exp.DefaultICache)
			if err != nil {
				b.Fatal(err)
			}
			compBase += row.CompFracBase
			compOurs += row.CompFracOurs
			missBase += row.ICacheMissBase
			missOurs += row.ICacheMissOurs
		}
	}
	b.ReportMetric(compBase/8, "comptime/base")
	b.ReportMetric(compOurs/8, "comptime/ours")
	b.ReportMetric(missBase/8, "icachemiss/base")
	b.ReportMetric(missOurs/8, "icachemiss/ours")
}

// BenchmarkDynamicSpeedup runs the end-to-end dynamic dual-engine
// simulation with live predictors over every benchmark (E7) and reports the
// geometric-mean speedup.
func BenchmarkDynamicSpeedup(b *testing.B) {
	r := exp.NewRunner(machine.W4)
	b.ResetTimer()
	var geo float64
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.RenderSpeedup(r)
		if err != nil {
			b.Fatal(err)
		}
		geo = 1
		for _, row := range rows {
			geo *= row.Speedup
		}
		geo = math.Pow(geo, 1.0/8)
	}
	b.ReportMetric(geo, "speedup/geomean")
}

// ---- Component micro-benchmarks ----

// BenchmarkInterpreter measures sequential interpretation throughput.
func BenchmarkInterpreter(b *testing.B) {
	prog, err := workload.Compress.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		m := interp.New(prog)
		if _, err := m.RunMain(); err != nil {
			b.Fatal(err)
		}
		ops = m.Steps
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkScheduler measures list-scheduling throughput over all blocks of
// the largest benchmark.
func BenchmarkScheduler(b *testing.B) {
	prog, err := workload.Vortex.Compile()
	if err != nil {
		b.Fatal(err)
	}
	d := machine.W4
	nops := 0
	for _, f := range prog.Funcs {
		for _, blk := range f.Blocks {
			nops += len(blk.Ops)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range prog.Funcs {
			for _, blk := range f.Blocks {
				g := ddg.Build(blk, d.Latency, ddg.Options{})
				sched.ScheduleBlock(blk, g, d)
			}
		}
	}
	b.ReportMetric(float64(nops)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkPredictorStride measures stride-predictor throughput.
func BenchmarkPredictorStride(b *testing.B) {
	p := predict.NewStride()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict()
		p.Update(uint64(i * 8))
	}
}

// BenchmarkPredictorFCM measures FCM throughput.
func BenchmarkPredictorFCM(b *testing.B) {
	p := predict.NewFCM(predict.DefaultFCMOrder, predict.DefaultFCMTableBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict()
		p.Update(uint64(i % 17))
	}
}

// BenchmarkTimingModel measures per-block dual-engine timing throughput on
// the paper's worked example.
func BenchmarkTimingModel(b *testing.B) {
	d := machine.W4
	prog, f, err := core.PaperExample()
	if err != nil {
		b.Fatal(err)
	}
	l4, l7 := core.PaperExampleLoadIDs(f)
	prof := &profile.Profile{
		Loads: map[profile.LoadKey]*profile.LoadProfile{
			{Func: "example", OpID: l4}: {Count: 1000, StrideRate: 0.9},
			{Func: "example", OpID: l7}: {Count: 1000, StrideRate: 0.9},
		},
		BlockFreq: map[profile.BlockKey]int64{{Func: "example", Block: 0}: 1000},
	}
	cfg := speculate.DefaultConfig(d)
	cfg.CriticalOnly = false
	res, err := speculate.Transform(prog, prof, cfg)
	if err != nil {
		b.Fatal(err)
	}
	blk := res.Prog.Func("example").Blocks[0]
	g := speculate.BuildGraph(blk, d, ddg.Options{})
	bs := sched.ScheduleBlock(blk, g, d)
	an, err := core.Analyze(blk)
	if err != nil {
		b.Fatal(err)
	}
	tm := core.NewTiming(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tm.SimulateBlock(bs, an, uint32(i)&3); err != nil {
			b.Fatal(err)
		}
	}
}

// timingSetup builds the timing model over the paper's worked example for
// the trace-cost benchmarks.
func timingSetup(b *testing.B) (*core.Timing, *sched.BlockSched, *core.BlockAnalysis) {
	b.Helper()
	d := machine.W4
	prog, f, err := core.PaperExample()
	if err != nil {
		b.Fatal(err)
	}
	l4, l7 := core.PaperExampleLoadIDs(f)
	prof := &profile.Profile{
		Loads: map[profile.LoadKey]*profile.LoadProfile{
			{Func: "example", OpID: l4}: {Count: 1000, StrideRate: 0.9},
			{Func: "example", OpID: l7}: {Count: 1000, StrideRate: 0.9},
		},
		BlockFreq: map[profile.BlockKey]int64{{Func: "example", Block: 0}: 1000},
	}
	cfg := speculate.DefaultConfig(d)
	cfg.CriticalOnly = false
	res, err := speculate.Transform(prog, prof, cfg)
	if err != nil {
		b.Fatal(err)
	}
	blk := res.Prog.Func("example").Blocks[0]
	g := speculate.BuildGraph(blk, d, ddg.Options{})
	bs := sched.ScheduleBlock(blk, g, d)
	an, err := core.Analyze(blk)
	if err != nil {
		b.Fatal(err)
	}
	return core.NewTiming(d), bs, an
}

// BenchmarkTimingModelNoSink is the zero-alloc acceptance benchmark: with
// no event sink attached the timing model must report 0 allocs/op — the
// typed-event layer costs nothing when disabled.
func BenchmarkTimingModelNoSink(b *testing.B) {
	tm, bs, an := timingSetup(b)
	// Warm the reusable scratch before measuring.
	for mask := uint32(0); mask < 4; mask++ {
		if _, err := tm.SimulateBlock(bs, an, mask); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tm.SimulateBlock(bs, an, uint32(i)&3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorRunNoSink extends the zero-alloc acceptance property
// to the full decode-once engine: a warmed simulator must report 0
// allocs/op for an entire end-to-end Run with no sink — pooled frames,
// block instances, the event wheel, and predictor tables all recycle. The
// benchmark asserts the zero (via testing.AllocsPerRun) before timing, so
// a pooling regression fails `go test -bench` rather than drifting.
func BenchmarkSimulatorRunNoSink(b *testing.B) {
	sim := decodedCompressSim(b)
	if allocs := testing.AllocsPerRun(2, func() {
		if _, err := sim.Run("main"); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("steady-state Run allocates %.1f objects over %d cycles, want 0", allocs, sim.Cycles)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run("main"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sim.Cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkBatchRunAllNoSink measures batched corpus execution over one
// image and asserts the same steady-state zero-allocation property for
// Batch.RunAllInto.
func BenchmarkBatchRunAllNoSink(b *testing.B) {
	sim := decodedCompressSim(b)
	items := []core.BatchItem{
		{Name: "a", Img: sim.Image(), Schemes: sim.Schemes},
		{Name: "b", Img: sim.Image(), Schemes: sim.Schemes},
	}
	batch := core.NewBatch()
	dst := make([]core.BatchResult, 0, len(items))
	run := func() {
		dst = batch.RunAllInto(dst[:0], items)
		for i := range dst {
			if dst[i].Err != nil {
				b.Fatalf("%s: %v", dst[i].Name, dst[i].Err)
			}
		}
	}
	run() // warm the pooled simulator
	if allocs := testing.AllocsPerRun(2, run); allocs != 0 {
		b.Fatalf("steady-state RunAllInto allocates %.1f objects, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// decodedCompressSim wires the speculative compress kernel onto the
// decode-once engine and warms its pools (compress never prints, so the
// steady state is allocation-free).
func decodedCompressSim(b *testing.B) *core.Simulator {
	b.Helper()
	r := exp.NewRunner(machine.W4)
	sim, err := r.SpecSim(workload.ByName("compress"))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sim.Run("main"); err != nil {
			b.Fatal(err)
		}
	}
	return sim
}

// BenchmarkTimingModelJSONLSink measures the enabled-path cost of the
// typed event layer for comparison against BenchmarkTimingModelNoSink.
func BenchmarkTimingModelJSONLSink(b *testing.B) {
	tm, bs, an := timingSetup(b)
	sink := obs.NewJSONLSink(io.Discard)
	tm.Sink = sink
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tm.SimulateBlock(bs, an, uint32(i)&3); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := sink.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDualEngineSim measures full dynamic simulation throughput
// (cycles simulated per second) on the compress kernel with speculation.
func BenchmarkDualEngineSim(b *testing.B) {
	sys, err := vliwvp.NewSystem(4)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := sys.CompileBenchmark("compress")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := prog.Profile()
	if err != nil {
		b.Fatal(err)
	}
	spec, err := prog.Speculate(prof)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := spec.Simulate()
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkValueProfiling measures the profiling pass.
func BenchmarkValueProfiling(b *testing.B) {
	prog, err := workload.M88ksim.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Collect(prog, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeculateTransform measures the speculation pass.
func BenchmarkSpeculateTransform(b *testing.B) {
	prog, err := workload.Vortex.Compile()
	if err != nil {
		b.Fatal(err)
	}
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		b.Fatal(err)
	}
	cfg := speculate.DefaultConfig(machine.W4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := speculate.Transform(prog, prof, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benchmarks (design-choice studies from DESIGN.md) ----

// BenchmarkAblationThreshold sweeps the load-selection threshold and
// reports the site count and misprediction share at the paper's 0.65 point.
func BenchmarkAblationThreshold(b *testing.B) {
	var sites float64
	var share float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(machine.W4)
		r.Cfg.Threshold = 0.65
		sites, share = 0, 0
		var preds, miss float64
		for _, w := range workload.All() {
			bd, err := r.Prepare(w)
			if err != nil {
				b.Fatal(err)
			}
			sites += float64(len(bd.Res.Sites))
			for bk, blk := range bd.Blocks {
				for mask, n := range bd.Out.MaskCounts[bk] {
					for j := 0; j < blk.NumSites; j++ {
						preds += float64(n)
						if mask&(1<<uint(j)) == 0 {
							miss += float64(n)
						}
					}
				}
			}
		}
		if preds > 0 {
			share = miss / preds
		}
	}
	b.ReportMetric(sites, "sites")
	b.ReportMetric(share, "mispredictshare")
}

// BenchmarkAblationRegions measures the end-to-end gain from superblock
// region formation (the paper's anticipated extension) on two benchmarks.
func BenchmarkAblationRegions(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		base := exp.NewRunner(machine.W4)
		reg := exp.NewRunner(machine.W4)
		reg.Regions = true
		var cb, cr int64
		for _, w := range []*workload.Benchmark{workload.Compress, workload.Vortex} {
			rb, err := base.Speedup(w)
			if err != nil {
				b.Fatal(err)
			}
			rr, err := reg.Speedup(w)
			if err != nil {
				b.Fatal(err)
			}
			cb += rb.SpecCycles
			cr += rr.SpecCycles
		}
		gain = float64(cb) / float64(cr)
	}
	b.ReportMetric(gain, "regiongain")
}

// BenchmarkAblationPredictors compares the hybrid profile against its
// components by selected-site count.
func BenchmarkAblationPredictors(b *testing.B) {
	var hybrid, stride, fcm float64
	for i := 0; i < b.N; i++ {
		count := func(mask func(lp *profile.LoadProfile)) float64 {
			r := exp.NewRunner(machine.W4)
			total := 0.0
			for _, w := range []*workload.Benchmark{workload.Compress, workload.Li, workload.M88ksim} {
				prog, err := w.Compile()
				if err != nil {
					b.Fatal(err)
				}
				prof, err := profile.Collect(prog, "main")
				if err != nil {
					b.Fatal(err)
				}
				for _, lp := range prof.Loads {
					mask(lp)
				}
				bd, err := r.PrepareWithProfile(w, prog, prof)
				if err != nil {
					b.Fatal(err)
				}
				total += float64(len(bd.Res.Sites))
			}
			return total
		}
		hybrid = count(func(lp *profile.LoadProfile) {})
		stride = count(func(lp *profile.LoadProfile) { lp.FCMRate = 0 })
		fcm = count(func(lp *profile.LoadProfile) { lp.StrideRate = 0 })
	}
	b.ReportMetric(hybrid, "sites/hybrid")
	b.ReportMetric(stride, "sites/stride")
	b.ReportMetric(fcm, "sites/fcm")
}
