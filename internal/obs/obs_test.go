package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"vliwvp/internal/ir"
	"vliwvp/internal/obs"
)

func specOp() *ir.Op {
	return &ir.Op{Code: ir.Add, Dest: 3, A: 1, B: 2, C: ir.NoReg,
		PredID: ir.NoPred, SyncBit: 5, Speculative: true}
}

// sampleEvents covers every kind once with representative payloads.
func sampleEvents() []*obs.Event {
	op := specOp()
	return []*obs.Event{
		{Cycle: 0, Engine: obs.EngineVLIW, Kind: obs.KindStallSync, Bit: -1, Wait: 0x6, Busy: 0x2},
		{Cycle: 1, Engine: obs.EngineVLIW, Kind: obs.KindStallCCB, Bit: -1},
		{Cycle: 1, Engine: obs.EngineVLIW, Kind: obs.KindStallScore, Op: op, Bit: -1, Reg: 1},
		{Cycle: 2, Engine: obs.EngineVLIW, Kind: obs.KindStallBarrier, Op: op, Bit: -1, Busy: 0x1},
		{Cycle: 3, Engine: obs.EngineVLIW, Kind: obs.KindLdPredIssue, Op: op, Bit: 5, Predicted: 42},
		{Cycle: 4, Engine: obs.EngineVLIW, Kind: obs.KindCheckIssue, Op: op, Bit: -1, Done: 6, Correct: true, Site: 1},
		{Cycle: 5, Engine: obs.EngineVLIW, Kind: obs.KindPlainIssue, Op: op, Bit: -1},
		{Cycle: 5, Engine: obs.EngineVLIW, Kind: obs.KindBufferCCB, Op: op, Bit: 5,
			Operands: []obs.SiteState{{Site: 0, State: obs.StateRN}, {Site: 1, State: obs.StateC}}},
		{Cycle: 6, Engine: obs.EngineCCE, Kind: obs.KindCCEFlush, Op: op, Bit: -1},
		{Cycle: 7, Engine: obs.EngineCCE, Kind: obs.KindCCEExecute, Op: op, Bit: 5, Done: 9},
		{Cycle: 8, Engine: obs.EngineVLIW, Kind: obs.KindInstrIssue, Bit: -1, Func: "main", Block: 2, Instr: 1},
		{Cycle: 9, Engine: obs.EngineVLIW, Kind: obs.KindCheckResolve, Op: op, Bit: -1, Site: 3, Predicted: 42, Actual: 41, Correct: false},
		{Cycle: 10, Engine: obs.EngineVLIW, Kind: obs.KindRegWrite, Bit: -1, Reg: 3, Value: -7, Seq: 12},
		{Cycle: 11, Engine: obs.EngineVLIW, Kind: obs.KindRegWriteSuppressed, Bit: -1, Reg: 3, Value: 9, Seq: 12, LastSeq: 14},
	}
}

// TestNarrateLegacyFormats locks the narrator to the exact strings the
// pre-typed-event tracer produced (the byte-for-byte compatibility the
// trace tests and downstream diff tooling rely on).
func TestNarrateLegacyFormats(t *testing.T) {
	op := specOp()
	cases := []struct {
		e    obs.Event
		want string
	}{
		{obs.Event{Kind: obs.KindStallSync, Wait: 0x6, Busy: 0x2},
			fmt.Sprintf("VLIW stall: wait mask %#x against busy %#x", uint64(0x6), uint64(0x2))},
		{obs.Event{Kind: obs.KindStallCCB}, "VLIW stall: CCB full"},
		{obs.Event{Kind: obs.KindLdPredIssue, Op: op, Bit: 5},
			fmt.Sprintf("issue %v: predicted value loaded, bit %d set", op, 5)},
		{obs.Event{Kind: obs.KindCheckIssue, Op: op, Done: 9, Correct: true},
			fmt.Sprintf("issue %v: verification completes cycle %d (correct)", op, 9)},
		{obs.Event{Kind: obs.KindCheckIssue, Op: op, Done: 9, Correct: false},
			fmt.Sprintf("issue %v: verification completes cycle %d (MISPREDICT)", op, 9)},
		{obs.Event{Kind: obs.KindPlainIssue, Op: op},
			fmt.Sprintf("issue %v: predictions already verified, plain issue", op)},
		{obs.Event{Kind: obs.KindBufferCCB, Op: op,
			Operands: []obs.SiteState{{Site: 0, State: obs.StateRN}, {Site: 2, State: obs.StateR}}},
			fmt.Sprintf("issue %v: buffered in CCB (operand states site0:RN,site2:R)", op)},
		{obs.Event{Kind: obs.KindBufferCCB, Op: op},
			fmt.Sprintf("issue %v: buffered in CCB (operand states C)", op)},
		{obs.Event{Kind: obs.KindCCEFlush, Op: op},
			fmt.Sprintf("CCE flush %v: all operands correct", op)},
		{obs.Event{Kind: obs.KindCCEExecute, Op: op, Done: 11, Bit: 5},
			fmt.Sprintf("CCE execute %v: recompute completes cycle %d, bit %d clears", op, 11, 5)},
		{obs.Event{Kind: obs.KindInstrIssue, Func: "main", Block: 2, Instr: 1}, "main b2 i1 issue"},
		{obs.Event{Kind: obs.KindCheckResolve, Site: 3, Predicted: 42, Actual: -1},
			"check site 3: predicted 42 actual -1"},
		{obs.Event{Kind: obs.KindRegWrite, Reg: 3, Value: -7, Seq: 12}, "write r3=-7 (seq 12)"},
		{obs.Event{Kind: obs.KindRegWriteSuppressed, Reg: 3, Value: 9, Seq: 12, LastSeq: 14},
			"write r3=9 SUPPRESSED (seq 12 != last 14)"},
		{obs.Event{Kind: obs.KindStallScore}, "VLIW stall: scoreboard"},
		{obs.Event{Kind: obs.KindStallBarrier}, "VLIW stall: call/return barrier"},
		{obs.Event{Kind: obs.KindStallIFetch}, "VLIW stall: instruction fetch"},
		{obs.Event{Kind: obs.KindMemHit, Addr: 96, Lat: 1},
			"mem load @96: L1 hit (1 cycles)"},
		{obs.Event{Kind: obs.KindMemMiss, Addr: 96, Lat: 40},
			"mem load @96: miss to memory (40 cycles)"},
		{obs.Event{Kind: obs.KindMemMiss, Addr: 96, Lat: 12, Level: 2},
			"mem load @96: miss, served by L2 (12 cycles)"},
		{obs.Event{Kind: obs.KindMemPrefetch, Addr: 104, Site: 3},
			"mem prefetch @104 issued (site 3)"},
		{obs.Event{Kind: obs.KindPredSuppress, Op: op, Bit: 5},
			fmt.Sprintf("issue %v: prediction suppressed (unconfident), bit %d set", op, 5)},
		{obs.Event{Kind: obs.Kind(250)}, "event kind(250)"},
	}
	for _, c := range cases {
		if got := obs.Narrate(&c.e); got != c.want {
			t.Errorf("Narrate(%s):\n got %q\nwant %q", c.e.Kind, got, c.want)
		}
	}
}

// TestJSONLRoundTrip encodes the full kind coverage through the JSONL sink
// and decodes it back, checking the fields the wire format carries.
func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	for _, e := range events {
		sink.Event(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(events) {
		t.Fatalf("got %d lines, want %d", n, len(events))
	}

	recs, err := obs.DecodeJSONL(&buf)
	if err != nil {
		t.Fatalf("DecodeJSONL: %v", err)
	}
	if len(recs) != len(events) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(events))
	}
	for i, rec := range recs {
		want := events[i]
		got, err := rec.EventOf()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Cycle != want.Cycle || got.Engine != want.Engine {
			t.Errorf("record %d: kind/cycle/engine = %v/%d/%v, want %v/%d/%v",
				i, got.Kind, got.Cycle, got.Engine, want.Kind, want.Cycle, want.Engine)
		}
		if got.Done != want.Done || got.Wait != want.Wait || got.Busy != want.Busy {
			t.Errorf("record %d: done/wait/busy mismatch", i)
		}
		if got.Site != want.Site || got.Predicted != want.Predicted || got.Actual != want.Actual {
			t.Errorf("record %d: site/predicted/actual mismatch", i)
		}
		if got.Value != want.Value || got.Seq != want.Seq || got.LastSeq != want.LastSeq {
			t.Errorf("record %d: value/seq mismatch", i)
		}
		if !reflect.DeepEqual(got.Operands, want.Operands) {
			t.Errorf("record %d: operands %v, want %v", i, got.Operands, want.Operands)
		}
		if want.Op != nil && rec.Op != want.Op.String() {
			t.Errorf("record %d: op %q, want %q", i, rec.Op, want.Op.String())
		}
	}
}

// TestChromeTraceValid checks the Chrome sink emits a well-formed
// trace_event JSON document with the fields chrome://tracing requires.
func TestChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	for _, e := range sampleEvents() {
		sink.Event(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    *int64         `json:"ts"`
			Dur   int64          `json:"dur"`
			PID   *int           `json:"pid"`
			TID   *int           `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	// 2 thread_name metadata records + one record per event.
	if want := len(sampleEvents()) + 2; len(doc.TraceEvents) != want {
		t.Fatalf("got %d trace events, want %d", len(doc.TraceEvents), want)
	}
	sawComplete := false
	for i, ce := range doc.TraceEvents {
		if ce.Name == "" || ce.Phase == "" || ce.TS == nil || ce.PID == nil || ce.TID == nil {
			t.Errorf("event %d missing required fields: %+v", i, ce)
		}
		switch ce.Phase {
		case "M", "i", "X":
		default:
			t.Errorf("event %d: unexpected phase %q", i, ce.Phase)
		}
		if ce.Phase == "X" {
			sawComplete = true
			if ce.Dur <= 0 {
				t.Errorf("event %d: complete slice with dur %d", i, ce.Dur)
			}
		}
	}
	if !sawComplete {
		t.Error("no complete (X) slice emitted for check/recompute events")
	}
}

// TestChromeTraceEmptyValid checks the degenerate no-event document is
// still valid JSON.
func TestChromeTraceEmptyValid(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
}

// TestTextSinkLines checks the writer-backed narrator prefixes cycles.
func TestTextSinkLines(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewTextSink(&buf)
	sink.Event(&obs.Event{Cycle: 7, Kind: obs.KindStallCCB, Bit: -1})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "cycle 7: VLIW stall: CCB full\n"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// TestRegistrySnapshot exercises counters, histogram bucketing, and the
// JSON export.
func TestRegistrySnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("stall.sync")
	c.Add(3)
	c.Inc()
	if reg.Counter("stall.sync") != c {
		t.Error("Counter not idempotent")
	}
	if c.Value() != 4 || c.Name() != "stall.sync" {
		t.Errorf("counter accessors = (%d, %q), want (4, stall.sync)", c.Value(), c.Name())
	}
	h := reg.Histogram("ccb.occupancy", obs.Pow2Bounds(3)) // bounds 1,2,4 + overflow
	for _, v := range []int64{1, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	// Bulk publication path: SetBucket overwrites, Buckets reads back.
	h.SetBucket(3, 2)
	if want := []int64{2, 1, 2, 2}; !reflect.DeepEqual(h.Buckets(), want) {
		t.Errorf("buckets = %v, want %v", h.Buckets(), want)
	}
	s := reg.Snapshot()
	if want := []string{"stall.sync"}; !reflect.DeepEqual(s.Names(), want) {
		t.Errorf("Names = %v, want %v", s.Names(), want)
	}
	if s.Counters["stall.sync"] != 4 {
		t.Errorf("counter = %d, want 4", s.Counters["stall.sync"])
	}
	hs := s.Histograms["ccb.occupancy"]
	if want := []int64{2, 1, 2, 2}; !reflect.DeepEqual(hs.Counts, want) {
		t.Errorf("histogram counts = %v, want %v", hs.Counts, want)
	}

	// Snapshot is frozen: later mutation must not leak in.
	c.Inc()
	if s.Counters["stall.sync"] != 4 {
		t.Error("snapshot aliases live counter")
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if !reflect.DeepEqual(back.Counters, s.Counters) || !reflect.DeepEqual(back.Histograms, s.Histograms) {
		t.Error("snapshot JSON round-trip mismatch")
	}

	// Two registries fed identically snapshot identically (per-run
	// reproducibility contract).
	reg2 := obs.NewRegistry()
	reg2.Counter("stall.sync").Set(5)
	reg2.Histogram("ccb.occupancy", obs.Pow2Bounds(3))
	reg3 := obs.NewRegistry()
	reg3.Counter("stall.sync").Set(5)
	reg3.Histogram("ccb.occupancy", obs.Pow2Bounds(3))
	if !reflect.DeepEqual(reg2.Snapshot(), reg3.Snapshot()) {
		t.Error("identical registries snapshot differently")
	}
}

// TestKindStringRoundTrip keeps the wire names bijective.
func TestKindStringRoundTrip(t *testing.T) {
	for k := obs.KindStallSync; k <= obs.KindPredSuppress; k++ {
		got, ok := obs.KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("kind %d: round-trip via %q failed", k, k.String())
		}
	}
	if _, ok := obs.KindFromString("no.such.kind"); ok {
		t.Error("KindFromString accepted an unknown name")
	}
}

// TestOperandStateRoundTrip keeps the paper's two-letter notation
// bijective (JSONL round-trips rely on it).
func TestOperandStateRoundTrip(t *testing.T) {
	for s := obs.StateC; s <= obs.StateRN; s++ {
		got, ok := obs.OperandStateFromString(s.String())
		if !ok || got != s {
			t.Errorf("state %d: round-trip via %q failed", s, s.String())
		}
	}
	if _, ok := obs.OperandStateFromString("XX"); ok {
		t.Error("OperandStateFromString accepted an unknown name")
	}
}
