package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Server-side metrics. The Registry above is deliberately unsynchronized:
// one simulator mutates it during one run, and Snapshot happens after. A
// long-running daemon mutates metrics from many goroutines at once —
// request admission, worker pools, cache hooks — so SyncRegistry provides
// the same named-counter/histogram model on atomics, exporting through the
// identical Snapshot type (and therefore the same JSON wire format).

// SyncCounter is a named counter safe for concurrent use.
type SyncCounter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter.
func (c *SyncCounter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *SyncCounter) Inc() { c.v.Add(1) }

// Set overwrites the value (gauge-style publication: queue depth,
// in-flight requests).
func (c *SyncCounter) Set(n int64) { c.v.Store(n) }

// Value reads the counter.
func (c *SyncCounter) Value() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *SyncCounter) Name() string { return c.name }

// SyncHistogram distributes observations over explicit upper bounds, like
// Histogram, but is safe for concurrent Observe calls.
type SyncHistogram struct {
	name   string
	bounds []int64
	counts []atomic.Int64
}

// Observe records one observation: counts[i] tallies v <= bounds[i]
// (first matching bound wins); the final implicit bucket is overflow.
func (h *SyncHistogram) Observe(v int64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.counts)-1].Add(1)
}

// Name returns the registered name.
func (h *SyncHistogram) Name() string { return h.name }

// Total sums every bucket (the number of observations so far).
func (h *SyncHistogram) Total() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observations: the bound of the first bucket at which the cumulative
// count reaches q of the total. The overflow bucket reports the largest
// finite bound plus one. With no observations it returns 0.
func (h *SyncHistogram) Quantile(q float64) int64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want < 1 {
		want = 1
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= want {
			return b
		}
	}
	return h.bounds[len(h.bounds)-1] + 1
}

// SyncRegistry is a named collection of concurrent-safe counters and
// histograms. Registration is idempotent and snapshotting reuses the
// Snapshot/WriteJSON export path of the per-run Registry.
type SyncRegistry struct {
	mu       sync.Mutex
	counters map[string]*SyncCounter
	hists    map[string]*SyncHistogram
}

// NewSyncRegistry returns an empty registry.
func NewSyncRegistry() *SyncRegistry {
	return &SyncRegistry{
		counters: map[string]*SyncCounter{},
		hists:    map[string]*SyncHistogram{},
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *SyncRegistry) Counter(name string) *SyncCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &SyncCounter{name: name}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Re-registering with a different bound count panics
// — a metric's shape is part of its identity.
func (r *SyncRegistry) Histogram(name string, bounds []int64) *SyncHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &SyncHistogram{name: name, bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with %d bounds (had %d)",
			name, len(bounds), len(h.bounds)))
	}
	return h
}

// Snapshot freezes the registry. Concurrent mutation during a snapshot is
// safe; each metric is read atomically (the snapshot is per-metric
// consistent, not globally so — fine for monitoring endpoints).
func (r *SyncRegistry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]int64, len(r.counters))}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistSnapshot{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}
