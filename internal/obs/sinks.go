package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TextSink writes the narrator's one-line-per-event text trace, prefixed
// with the cycle number.
type TextSink struct {
	w *bufio.Writer
}

// NewTextSink wraps a writer.
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{w: bufio.NewWriter(w)}
}

// Event writes one "cycle N: ..." line.
func (s *TextSink) Event(e *Event) {
	fmt.Fprintf(s.w, "cycle %d: %s\n", e.Cycle, Narrate(e))
}

// Close flushes buffered lines.
func (s *TextSink) Close() error { return s.w.Flush() }

// Record is the JSONL wire form of an Event. Fields absent from a kind are
// omitted; Op is rendered in the IR's assembly syntax.
type Record struct {
	Cycle    int64             `json:"cycle"`
	Engine   string            `json:"engine"`
	Kind     string            `json:"kind"`
	Op       string            `json:"op,omitempty"`
	Bit      *int              `json:"bit,omitempty"`
	Done     int64             `json:"done,omitempty"`
	Correct  *bool             `json:"correct,omitempty"`
	Gated    bool              `json:"gated,omitempty"`
	Flushed  bool              `json:"flushed,omitempty"`
	Wait     uint64            `json:"wait,omitempty"`
	Busy     uint64            `json:"busy,omitempty"`
	Operands []SiteStateRecord `json:"operands,omitempty"`
	Func     string            `json:"func,omitempty"`
	Block    int               `json:"block,omitempty"`
	Instr    int               `json:"instr,omitempty"`
	Site     int               `json:"site,omitempty"`
	Pred     int64             `json:"predicted,omitempty"`
	Actual   int64             `json:"actual,omitempty"`
	Reg      string            `json:"reg,omitempty"`
	Value    int64             `json:"value,omitempty"`
	Seq      int64             `json:"seq,omitempty"`
	LastSeq  int64             `json:"last_seq,omitempty"`
	Addr     int64             `json:"addr,omitempty"`
	Lat      int64             `json:"lat,omitempty"`
	Level    int               `json:"level,omitempty"`
}

// SiteStateRecord is the wire form of a SiteState.
type SiteStateRecord struct {
	Site  int    `json:"site"`
	State string `json:"state"`
}

// recordOf converts an event for serialization.
func recordOf(e *Event) Record {
	r := Record{
		Cycle:   e.Cycle,
		Engine:  e.Engine.String(),
		Kind:    e.Kind.String(),
		Done:    e.Done,
		Wait:    e.Wait,
		Busy:    e.Busy,
		Func:    e.Func,
		Block:   e.Block,
		Instr:   e.Instr,
		Site:    e.Site,
		Pred:    e.Predicted,
		Actual:  e.Actual,
		Value:   e.Value,
		Seq:     e.Seq,
		LastSeq: e.LastSeq,
		Addr:    e.Addr,
		Lat:     e.Lat,
		Level:   e.Level,
	}
	if e.Op != nil {
		r.Op = e.Op.String()
	}
	if e.Kind == KindRegWrite || e.Kind == KindRegWriteSuppressed {
		r.Reg = e.Reg.String()
	}
	if e.Bit >= 0 && (e.Kind == KindLdPredIssue || e.Kind == KindBufferCCB || e.Kind == KindCCEExecute) {
		bit := e.Bit
		r.Bit = &bit
	}
	if e.Kind == KindCheckIssue || e.Kind == KindCheckResolve {
		c := e.Correct
		r.Correct = &c
		r.Gated = e.Gated
		r.Flushed = e.Flushed
	}
	for _, o := range e.Operands {
		r.Operands = append(r.Operands, SiteStateRecord{Site: o.Site, State: o.State.String()})
	}
	return r
}

// EventOf inverts recordOf for the fields the wire form carries (Op and
// Reg come back as their rendered strings, not IR references, so they are
// not reconstructed). It is the decode half of the JSONL round-trip.
func (r *Record) EventOf() (Event, error) {
	k, ok := KindFromString(r.Kind)
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown event kind %q", r.Kind)
	}
	e := Event{
		Cycle:     r.Cycle,
		Kind:      k,
		Bit:       -1,
		Done:      r.Done,
		Wait:      r.Wait,
		Busy:      r.Busy,
		Func:      r.Func,
		Block:     r.Block,
		Instr:     r.Instr,
		Site:      r.Site,
		Predicted: r.Pred,
		Actual:    r.Actual,
		Value:     r.Value,
		Seq:       r.Seq,
		LastSeq:   r.LastSeq,
		Addr:      r.Addr,
		Lat:       r.Lat,
		Level:     r.Level,
	}
	if r.Engine == EngineCCE.String() {
		e.Engine = EngineCCE
	}
	if r.Bit != nil {
		e.Bit = *r.Bit
	}
	if r.Correct != nil {
		e.Correct = *r.Correct
	}
	e.Gated = r.Gated
	e.Flushed = r.Flushed
	for _, o := range r.Operands {
		st, ok := OperandStateFromString(o.State)
		if !ok {
			return Event{}, fmt.Errorf("obs: unknown operand state %q", o.State)
		}
		e.Operands = append(e.Operands, SiteState{Site: o.Site, State: st})
	}
	return e, nil
}

// JSONLSink writes one JSON object per event, one per line — the
// machine-readable twin of the text narrator.
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps a writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Event encodes one record line. The first encode error sticks and is
// reported by Close.
func (s *JSONLSink) Event(e *Event) {
	if s.err != nil {
		return
	}
	r := recordOf(e)
	s.err = s.enc.Encode(&r)
}

// Close flushes and reports any sticky encode error.
func (s *JSONLSink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// DecodeJSONL reads back a JSONL trace (the round-trip used by tests and
// external tooling).
func DecodeJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
