package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ChromeSink emits the Chrome trace_event JSON array format, loadable in
// chrome://tracing and Perfetto. One simulated cycle maps to one
// microsecond of trace time; the VLIW Engine and the Compensation Code
// Engine render as two threads of one process. Events with a known
// completion cycle (checks, recomputes) become complete ("X") slices;
// everything else is an instant ("i") event.
type ChromeSink struct {
	w     *bufio.Writer
	err   error
	first bool
}

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewChromeSink starts the trace array on w. Close must be called to
// terminate the JSON document.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w), first: true}
	// Thread names make the two engines legible in the trace viewer.
	s.write(chromeEvent{Name: "thread_name", Phase: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "VLIW Engine"}})
	s.write(chromeEvent{Name: "thread_name", Phase: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": "Compensation Code Engine"}})
	return s
}

func (s *ChromeSink) write(ce chromeEvent) {
	if s.err != nil {
		return
	}
	b, err := json.Marshal(&ce)
	if err != nil {
		s.err = err
		return
	}
	if s.first {
		s.first = false
		if _, err := s.w.WriteString("{\"traceEvents\":[\n"); err != nil {
			s.err = err
			return
		}
	} else if _, err := s.w.WriteString(",\n"); err != nil {
		s.err = err
		return
	}
	_, s.err = s.w.Write(b)
}

// Event converts and buffers one pipeline event.
func (s *ChromeSink) Event(e *Event) {
	ce := chromeEvent{
		Name:  e.Kind.String(),
		Phase: "i",
		Scope: "t",
		TS:    e.Cycle,
		PID:   1,
		TID:   int(e.Engine),
	}
	if e.Op != nil {
		ce.Name = fmt.Sprintf("%s %s", e.Kind, e.Op)
	}
	if e.Done > e.Cycle {
		ce.Phase = "X"
		ce.Scope = ""
		ce.Dur = e.Done - e.Cycle
	}
	args := map[string]any{}
	switch e.Kind {
	case KindStallSync:
		args["wait"] = fmt.Sprintf("%#x", e.Wait)
		args["busy"] = fmt.Sprintf("%#x", e.Busy)
	case KindBufferCCB:
		args["operands"] = FormatOperands(e.Operands)
	case KindCheckIssue, KindCheckResolve:
		args["correct"] = e.Correct
	case KindInstrIssue:
		args["loc"] = fmt.Sprintf("%s b%d i%d", e.Func, e.Block, e.Instr)
	case KindMemHit, KindMemMiss:
		args["addr"] = e.Addr
		args["lat"] = e.Lat
		args["level"] = e.Level
	case KindMemPrefetch:
		args["addr"] = e.Addr
		args["site"] = e.Site
	}
	if len(args) > 0 {
		ce.Args = args
	}
	s.write(ce)
}

// Close terminates the JSON document and flushes.
func (s *ChromeSink) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.first {
		if _, err := s.w.WriteString("{\"traceEvents\":["); err != nil {
			return err
		}
	}
	if _, err := s.w.WriteString("\n]}\n"); err != nil {
		return err
	}
	return s.w.Flush()
}
