// Package obs is the simulator's observability layer: typed pipeline
// events, pluggable trace sinks (text narrator, JSONL, Chrome trace_event),
// and a counters/metrics registry with JSON snapshots.
//
// The event taxonomy mirrors the paper's Figure 7 narrative (see DESIGN.md
// §8): every cycle-level incident of the dual-engine machine — issues,
// stalls, CCB buffering, verification, compensation flushes and
// re-executions — is one Event value. Emitters hold a nil-checkable
// EventSink and build an Event only when a sink is attached, so the
// disabled path costs a single pointer compare and zero allocations.
package obs

import (
	"fmt"
	"strings"

	"vliwvp/internal/ir"
)

// Engine identifies which of the two engines produced an event.
type Engine uint8

const (
	// EngineVLIW is the main VLIW Engine (issue, stalls, checks).
	EngineVLIW Engine = iota
	// EngineCCE is the Compensation Code Engine (flushes, re-executions).
	EngineCCE
)

// String returns the engine's short display name.
func (e Engine) String() string {
	if e == EngineCCE {
		return "CCE"
	}
	return "VLIW"
}

// Kind classifies a pipeline event.
type Kind uint8

const (
	// KindStallSync: the VLIW Engine stalled on the Synchronization
	// register (Wait and Busy carry the masks).
	KindStallSync Kind = iota
	// KindStallCCB: the VLIW Engine stalled on a full Compensation Code
	// Buffer.
	KindStallCCB
	// KindStallScore: the VLIW Engine stalled on the register scoreboard
	// (a pending write-back of a source or destination register).
	KindStallScore
	// KindStallBarrier: the VLIW Engine stalled draining speculation at a
	// call/return barrier.
	KindStallBarrier
	// KindLdPredIssue: a load-prediction op issued; its Synchronization
	// bit is now set. Predicted carries the supplied value (dynamic
	// engine only).
	KindLdPredIssue
	// KindCheckIssue: a check-prediction op issued; Done is the cycle its
	// verification completes and Correct the verdict.
	KindCheckIssue
	// KindPlainIssue: a speculative op whose predictions had all verified
	// correct before issue, so it issued as a plain operation.
	KindPlainIssue
	// KindBufferCCB: a speculative op was captured in the Compensation
	// Code Buffer; Operands carries its operand states (Table 1/2
	// notation).
	KindBufferCCB
	// KindCCEFlush: the Compensation Code Engine discarded a
	// correctly-speculated entry.
	KindCCEFlush
	// KindCCEExecute: the Compensation Code Engine re-executed a
	// mis-speculated entry; Done is the completion cycle, Bit the
	// Synchronization bit that clears.
	KindCCEExecute
	// KindInstrIssue: the dynamic engine issued one long instruction
	// (Func, Block, Instr locate it).
	KindInstrIssue
	// KindCheckResolve: a dynamic check completed; Predicted and Actual
	// carry the compared values, Correct the verdict.
	KindCheckResolve
	// KindRegWrite: a register write-back landed (Reg, Value, Seq).
	KindRegWrite
	// KindRegWriteSuppressed: a stale write-back lost the write-port
	// arbitration to a younger writer (Seq vs LastSeq).
	KindRegWriteSuppressed
	// KindMemHit: a demand load hit the first-level D-cache (Addr, Lat;
	// Level is 1).
	KindMemHit
	// KindMemMiss: a demand load missed the first-level D-cache; Level is
	// the 1-based serving level, 0 for main memory (Addr, Lat).
	KindMemMiss
	// KindMemPrefetch: the stride-stream prefetcher issued a line fill
	// (Addr; Site is the training load site).
	KindMemPrefetch
	// KindStallIFetch: the VLIW Engine stalled on an instruction fetch
	// (emitted once per stalled cycle, like the other stall kinds).
	KindStallIFetch
	// KindPredSuppress: a load-prediction op issued with its prediction
	// suppressed by the runtime confidence gate (emitted INSTEAD of
	// KindLdPredIssue; Predicted carries the untrusted value). The site's
	// check will take the repair path regardless of the comparison.
	KindPredSuppress
	// KindBranchMispredict: the modeled direction predictor called a
	// conditional branch wrong (Func and Block locate the branch, Correct
	// is false by definition; Predicted carries the predicted direction as
	// 0/1). The terminating block's unresolved LdPred state flushes.
	KindBranchMispredict
	// KindBranchFlush: a branch mispredict flushed one piece of in-flight
	// speculation. Two forms: an unresolved prediction site (VLIW engine,
	// Site locates it; its check takes the repair path regardless of the
	// comparison), or a verified compensation-buffer entry squashed
	// wholesale with the wrong path instead of draining through the CCE
	// at one entry per cycle (CCE engine, Op identifies the entry).
	KindBranchFlush
)

var kindNames = [...]string{
	KindStallSync:          "stall.sync",
	KindStallCCB:           "stall.ccb",
	KindStallScore:         "stall.scoreboard",
	KindStallBarrier:       "stall.barrier",
	KindLdPredIssue:        "issue.ldpred",
	KindCheckIssue:         "issue.check",
	KindPlainIssue:         "issue.plain",
	KindBufferCCB:          "issue.buffer",
	KindCCEFlush:           "cce.flush",
	KindCCEExecute:         "cce.execute",
	KindInstrIssue:         "issue.instr",
	KindCheckResolve:       "check.resolve",
	KindRegWrite:           "reg.write",
	KindRegWriteSuppressed: "reg.write.suppressed",
	KindMemHit:             "mem.hit",
	KindMemMiss:            "mem.miss",
	KindMemPrefetch:        "mem.prefetch",
	KindStallIFetch:        "stall.ifetch",
	KindPredSuppress:       "issue.ldpred.suppressed",
	KindBranchMispredict:   "branch.mispredict",
	KindBranchFlush:        "branch.flush",
}

// String returns the kind's stable wire name (used by the JSONL and Chrome
// sinks).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString inverts Kind.String (JSONL round-trips).
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// OperandState is one operand's verification state in the paper's
// Table 1/2 notation.
type OperandState uint8

const (
	// StateC: the operand value is verified correct.
	StateC OperandState = iota
	// StateR: the operand's prediction verified wrong; a recompute is
	// needed (or pending).
	StateR
	// StatePN: a predicted value, not yet verified.
	StatePN
	// StateRN: a speculatively computed value, not yet verified.
	StateRN
)

// String returns the paper's two-letter notation.
func (s OperandState) String() string {
	switch s {
	case StateC:
		return "C"
	case StateR:
		return "R"
	case StatePN:
		return "PN"
	default:
		return "RN"
	}
}

// OperandStateFromString inverts OperandState.String.
func OperandStateFromString(s string) (OperandState, bool) {
	switch s {
	case "C":
		return StateC, true
	case "R":
		return StateR, true
	case "PN":
		return StatePN, true
	case "RN":
		return StateRN, true
	}
	return 0, false
}

// SiteState pairs a block-local prediction-site index with an operand
// state.
type SiteState struct {
	Site  int
	State OperandState
}

// Event is one typed pipeline incident. Fields beyond Cycle/Engine/Kind
// are populated per kind (see the Kind constants); unused fields are zero.
type Event struct {
	Cycle  int64
	Engine Engine
	Kind   Kind
	// Op is the operation involved, nil for pure stalls and instruction
	// issues.
	Op *ir.Op
	// Bit is the Synchronization bit set or cleared (-1 when absent).
	Bit int
	// Done is the cycle a check or recompute completes.
	Done int64
	// Correct is the verification verdict (check events).
	Correct bool
	// Gated marks a KindCheckResolve of a confidence-suppressed site: the
	// repair path is taken regardless of Correct (which stays the truthful
	// comparison verdict).
	Gated bool
	// Flushed marks a KindCheckResolve of a site whose in-flight prediction
	// was discarded by a branch mispredict: the repair path is taken
	// regardless of Correct (like Gated, it is not rendered by Narrate so
	// text traces stay byte-stable).
	Flushed bool
	// Wait and Busy are the Synchronization-register masks of a sync
	// stall.
	Wait, Busy uint64
	// Operands are the buffered op's operand states (KindBufferCCB).
	Operands []SiteState
	// Func, Block and Instr locate a dynamic-engine instruction issue.
	Func         string
	Block, Instr int
	// Site is the prediction-site ID of a dynamic check.
	Site int
	// Predicted and Actual are the compared values of a check (or the
	// supplied value of a LdPred), as the signed integers the Debug trace
	// always printed.
	Predicted, Actual int64
	// Reg, Value, Seq and LastSeq describe register write-back events.
	Reg          ir.Reg
	Value        int64
	Seq, LastSeq int64
	// Addr, Lat and Level describe memory-hierarchy events: the word
	// address accessed, the access's total latency, and the 1-based cache
	// level that served it (0 = main memory).
	Addr  int64
	Lat   int64
	Level int
}

// EventSink receives pipeline events. Implementations must not retain e or
// e.Operands past the call: emitters may reuse the backing storage.
type EventSink interface {
	Event(e *Event)
}

// TextFunc adapts a plain line callback into an EventSink using the
// legacy narrator. It is the bridge that keeps the old
// Timing.Trace/Simulator.Debug string hooks working on top of typed
// events.
type TextFunc func(cycle int64, line string)

// Event renders and forwards the event.
func (f TextFunc) Event(e *Event) { f(e.Cycle, Narrate(e)) }

// Narrate renders an event as the simulator's original trace line —
// byte-for-byte the strings the pre-typed-event tracer produced, so text
// traces stay diffable across versions.
func Narrate(e *Event) string {
	switch e.Kind {
	case KindStallSync:
		return fmt.Sprintf("VLIW stall: wait mask %#x against busy %#x", e.Wait, e.Busy)
	case KindStallCCB:
		return "VLIW stall: CCB full"
	case KindStallScore:
		return "VLIW stall: scoreboard"
	case KindStallBarrier:
		return "VLIW stall: call/return barrier"
	case KindLdPredIssue:
		return fmt.Sprintf("issue %v: predicted value loaded, bit %d set", e.Op, e.Bit)
	case KindCheckIssue:
		return fmt.Sprintf("issue %v: verification completes cycle %d (%s)", e.Op, e.Done, verdict(e.Correct))
	case KindPlainIssue:
		return fmt.Sprintf("issue %v: predictions already verified, plain issue", e.Op)
	case KindBufferCCB:
		return fmt.Sprintf("issue %v: buffered in CCB (operand states %s)", e.Op, FormatOperands(e.Operands))
	case KindCCEFlush:
		return fmt.Sprintf("CCE flush %v: all operands correct", e.Op)
	case KindCCEExecute:
		return fmt.Sprintf("CCE execute %v: recompute completes cycle %d, bit %d clears", e.Op, e.Done, e.Bit)
	case KindInstrIssue:
		return fmt.Sprintf("%s b%d i%d issue", e.Func, e.Block, e.Instr)
	case KindCheckResolve:
		return fmt.Sprintf("check site %d: predicted %d actual %d", e.Site, e.Predicted, e.Actual)
	case KindRegWrite:
		return fmt.Sprintf("write %v=%d (seq %d)", e.Reg, e.Value, e.Seq)
	case KindRegWriteSuppressed:
		return fmt.Sprintf("write %v=%d SUPPRESSED (seq %d != last %d)", e.Reg, e.Value, e.Seq, e.LastSeq)
	case KindMemHit:
		return fmt.Sprintf("mem load @%d: L1 hit (%d cycles)", e.Addr, e.Lat)
	case KindMemMiss:
		if e.Level == 0 {
			return fmt.Sprintf("mem load @%d: miss to memory (%d cycles)", e.Addr, e.Lat)
		}
		return fmt.Sprintf("mem load @%d: miss, served by L%d (%d cycles)", e.Addr, e.Level, e.Lat)
	case KindMemPrefetch:
		return fmt.Sprintf("mem prefetch @%d issued (site %d)", e.Addr, e.Site)
	case KindStallIFetch:
		return "VLIW stall: instruction fetch"
	case KindPredSuppress:
		return fmt.Sprintf("issue %v: prediction suppressed (unconfident), bit %d set", e.Op, e.Bit)
	case KindBranchMispredict:
		return fmt.Sprintf("%s b%d branch MISPREDICT (predicted %d)", e.Func, e.Block, e.Predicted)
	case KindBranchFlush:
		if e.Op != nil {
			return fmt.Sprintf("branch flush: buffered %v squashed", e.Op)
		}
		return fmt.Sprintf("branch flush site %d: in-flight prediction discarded", e.Site)
	}
	return fmt.Sprintf("event %s", e.Kind)
}

func verdict(correct bool) string {
	if correct {
		return "correct"
	}
	return "MISPREDICT"
}

// FormatOperands renders operand states in the trace's "site0:RN,site1:C"
// form ("C" when there are none — a fully verified operand set).
func FormatOperands(ops []SiteState) string {
	if len(ops) == 0 {
		return "C"
	}
	var sb strings.Builder
	for i, o := range ops {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "site%d:%s", o.Site, o.State)
	}
	return sb.String()
}
