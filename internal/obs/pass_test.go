package obs

import (
	"strings"
	"testing"
	"time"
)

func TestNarratePass(t *testing.T) {
	cases := []struct {
		e    PassEvent
		want string
	}{
		{PassEvent{Plan: "frontend", Pass: "opt", Index: 1, Duration: 2 * time.Millisecond},
			"pass frontend/opt#1: 2ms"},
		{PassEvent{Plan: "frontend", Pass: "lower", Index: 0, CacheHit: true},
			"pass frontend/lower#0: cache hit"},
		{PassEvent{Plan: "spec", Pass: "speculate", Index: 0, Err: "no profile"},
			"pass spec/speculate#0: FAILED: no profile"},
	}
	for _, c := range cases {
		if got := NarratePass(&c.e); got != c.want {
			t.Errorf("NarratePass(%+v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestPassLoggerAndFunc(t *testing.T) {
	var sb strings.Builder
	l := NewPassLogger(&sb)
	l.PassEvent(&PassEvent{Plan: "p", Pass: "a", Index: 0, Duration: time.Microsecond})
	l.PassEvent(&PassEvent{Plan: "p", Pass: "b", Index: 1, CacheHit: true})
	want := "pass p/a#0: 1µs\npass p/b#1: cache hit\n"
	if sb.String() != want {
		t.Errorf("logger wrote %q, want %q", sb.String(), want)
	}

	var got []string
	f := PassFunc(func(e *PassEvent) { got = append(got, e.Pass) })
	f.PassEvent(&PassEvent{Pass: "x"})
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("PassFunc saw %v", got)
	}
}
