package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Counter is one named monotonic (or set-per-run) integer metric.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v += n }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Set overwrites the value (per-run snapshot publication).
func (c *Counter) Set(n int64) { c.v = n }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Histogram distributes integer observations over explicit upper bounds:
// counts[i] tallies observations v with v <= Bounds[i] (first matching
// bound wins); the final implicit bucket is overflow.
type Histogram struct {
	name   string
	bounds []int64
	counts []int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.counts)-1]++
}

// SetBucket overwrites one bucket (bulk publication from an engine's
// internal tally). Index len(bounds) is the overflow bucket.
func (h *Histogram) SetBucket(i int, n int64) { h.counts[i] = n }

// Buckets returns the count slice (len(bounds)+1, last is overflow).
func (h *Histogram) Buckets() []int64 { return h.counts }

// Pow2Bounds returns bounds 1, 2, 4, ... 2^(n-1).
func Pow2Bounds(n int) []int64 {
	b := make([]int64, n)
	for i := range b {
		b[i] = 1 << uint(i)
	}
	return b
}

// Registry is a named collection of counters and histograms. Metric
// registration is idempotent; snapshotting is cheap and deterministic
// (names sort lexicographically).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Re-registering with different bounds panics — a
// metric's shape is part of its identity.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name, bounds: append([]int64(nil), bounds...),
			counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with %d bounds (had %d)",
			name, len(bounds), len(h.bounds)))
	}
	return h
}

// HistSnapshot is a histogram's frozen state.
type HistSnapshot struct {
	// Bounds are inclusive upper bounds; Counts has one extra overflow
	// bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
}

// Snapshot is a registry's frozen, JSON-exportable state.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]int64, len(r.counters))}
	for n, c := range r.counters {
		s.Counters[n] = c.v
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = HistSnapshot{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: append([]int64(nil), h.counts...),
			}
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys, so output is deterministic).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Names returns the counter names in sorted order (rendering helpers).
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
