package obs_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"vliwvp/internal/obs"
)

// TestSyncRegistryConcurrent hammers one counter and one histogram from
// many goroutines and checks exact totals — the server-side registry must
// lose no increments (run under -race in CI).
func TestSyncRegistryConcurrent(t *testing.T) {
	r := obs.NewSyncRegistry()
	c := r.Counter("reqs")
	h := r.Histogram("lat", obs.Pow2Bounds(8))

	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(int64(i % 300))
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
	if got := h.Total(); got != workers*each {
		t.Errorf("histogram total = %d, want %d", got, workers*each)
	}
	// Pow2Bounds(8) tops out at 128; observations up to 299 land in the
	// overflow bucket, which Quantile reports as last-bound+1.
	if q := h.Quantile(1.0); q != 129 {
		t.Errorf("q100 upper bound = %d, want 129 (overflow marker)", q)
	}
	if q := h.Quantile(0.01); q > 8 {
		t.Errorf("q1 upper bound = %d, want a small bucket", q)
	}

	// Registration is idempotent: same handle back, and a shape change
	// panics.
	if r.Counter("reqs") != c {
		t.Error("re-registering a counter returned a different handle")
	}
	if r.Histogram("lat", obs.Pow2Bounds(8)) != h {
		t.Error("re-registering a histogram returned a different handle")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering with different bounds did not panic")
			}
		}()
		r.Histogram("lat", obs.Pow2Bounds(4))
	}()
}

// TestSyncRegistrySnapshotWire checks the snapshot reuses the per-run
// registry's JSON wire format: counters and histograms land in the same
// top-level fields with the same shapes.
func TestSyncRegistrySnapshotWire(t *testing.T) {
	r := obs.NewSyncRegistry()
	r.Counter("a").Add(3)
	r.Counter("gauge").Set(7)
	r.Histogram("h", []int64{1, 2, 4}).Observe(3)

	snap := r.Snapshot()
	if snap.Counters["a"] != 3 || snap.Counters["gauge"] != 7 {
		t.Errorf("counters = %v", snap.Counters)
	}
	hs, ok := snap.Histograms["h"]
	if !ok || len(hs.Counts) != 4 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	if hs.Counts[2] != 1 {
		t.Errorf("observation of 3 landed in %v, want bucket 2 (<=4)", hs.Counts)
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Bounds []int64 `json:"bounds"`
			Counts []int64 `json:"counts"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &wire); err != nil {
		t.Fatalf("wire format: %v (%s)", err, buf.String())
	}
	if wire.Counters["a"] != 3 || len(wire.Histograms["h"].Counts) != 4 {
		t.Errorf("wire = %+v", wire)
	}

	// Snapshot is a copy: later mutation must not leak into it.
	r.Counter("a").Add(10)
	if snap.Counters["a"] != 3 {
		t.Error("snapshot aliases live counters")
	}
}
