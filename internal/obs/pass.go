package obs

// Compile-pipeline observability. Where Event covers the cycle-level
// incidents of the dual-engine machine, PassEvent covers the compile side:
// one event per executed (or cache-served) pipeline pass, carrying the
// plan it ran under, its position, wall duration, cache disposition, and
// failure. The same discipline as EventSink applies: emitters hold a
// nil-checkable PassSink and construct events only when one is attached,
// so the disabled path costs a pointer compare and zero allocations.

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// PassEvent describes one pipeline pass execution.
type PassEvent struct {
	// Plan and Pass name the plan and the pass within it; Index is the
	// pass's position in the plan (0-based).
	Plan  string
	Pass  string
	Index int
	// Duration is the pass's wall-clock run time (zero for cache hits).
	Duration time.Duration
	// CacheHit reports that the pass's product was served from the
	// per-pass compile cache instead of being recomputed.
	CacheHit bool
	// Err is the failure message ("" on success). A failing pass is the
	// last event of its plan.
	Err string
}

// PassSink receives pipeline pass events. Implementations must not retain
// e past the call: emitters may reuse the backing storage.
type PassSink interface {
	PassEvent(e *PassEvent)
}

// NarratePass renders a pass event as a stable one-line summary.
func NarratePass(e *PassEvent) string {
	switch {
	case e.Err != "":
		return fmt.Sprintf("pass %s/%s#%d: FAILED: %s", e.Plan, e.Pass, e.Index, e.Err)
	case e.CacheHit:
		return fmt.Sprintf("pass %s/%s#%d: cache hit", e.Plan, e.Pass, e.Index)
	default:
		return fmt.Sprintf("pass %s/%s#%d: %v", e.Plan, e.Pass, e.Index, e.Duration)
	}
}

// PassLogger is a PassSink that writes one narrated line per event. It is
// safe for concurrent use (plans run on worker pools).
type PassLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewPassLogger returns a logging sink over w.
func NewPassLogger(w io.Writer) *PassLogger { return &PassLogger{w: w} }

// PassEvent writes the narrated line.
func (l *PassLogger) PassEvent(e *PassEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintln(l.w, NarratePass(e))
}

// PassFunc adapts a function into a PassSink.
type PassFunc func(e *PassEvent)

// PassEvent forwards the event.
func (f PassFunc) PassEvent(e *PassEvent) { f(e) }
