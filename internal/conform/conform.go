// Package conform is the metamorphic conformance harness over the
// dual-engine simulator: it feeds seed-generated programs (internal/progen)
// through the full pipeline — front end, optimizer, profiling, value
// speculation, VLIW scheduling, dynamic simulation — under a lattice of
// machine configurations, and asserts cross-configuration invariants no
// single golden run can check:
//
//  1. Architectural conformance: for every configuration, the simulated
//     return value, output, and final memory image match the sequential
//     interpreter.
//  2. Perfect prediction helps: replaying a site's recorded value stream
//     (a perfect predictor) never costs more cycles than the unspeculated
//     program, nor more than the same machine with trained predictors.
//  3. CCB monotonicity: at a fixed program and schedule, growing the
//     Compensation Code Buffer past the speculative window never costs a
//     cycle (above the window the buffer never limits issue, so cycles
//     are capacity-independent — the strong form of monotone
//     non-increasing), and capacities below the window may wedge or
//     shift timing but must stay architecturally exact.
//  4. Metrics self-consistency: the typed event stream, the simulator's
//     counters, and the published metrics snapshot all agree (every
//     buffered entry is eventually flushed or re-executed, every
//     prediction is checked and resolved, every stall event has its
//     counter).
//
// A violated invariant produces a Failure carrying the seed and a
// shrunken program (progen.Minimize re-runs the harness while deleting
// fragments), so every report is a one-command reproduction.
package conform

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/pool"
	"vliwvp/internal/predict"
	"vliwvp/internal/profile"
	"vliwvp/internal/progen"
	"vliwvp/internal/speculate"
)

// mgr executes every conformance pipeline run. Generated programs are
// unique per seed, so no cache or key is attached; under `go test` the
// manager validates the IR after every pass, in production (vpexp
// -conform) after the structural ones.
var mgr = pipeline.NewManager()

// Cell is one configuration of the conformance lattice.
type Cell struct {
	Name           string
	D              *machine.Desc
	CCBCapacity    int     // 0 = simulator default
	Threshold      float64 // 0 = speculation default
	SerialRecovery bool
	// Ctrl is the control-speculation model: the serial-recovery branch
	// penalty plus, when Ctrl.Branch is set, the modeled direction
	// predictor with its redirect/flush latencies. The zero value is the
	// pre-ControlConfig machine (free branches, no predictor).
	Ctrl machine.ControlConfig
	// Mem selects the memory-hierarchy model (nil = flat fixed-latency
	// loads). Sim-time-only: it never reaches the compile side, so cells
	// differing only in Mem share one CellPipeline.
	Mem *machine.MemConfig
	// Pred selects the predictor configuration (nil = profiled scheme
	// selection, default tables, no confidence gating). Unlike Mem it is
	// compile-side too: the speculate pass selects sites by the named
	// scheme's profiled rate, so cells differing in Pred compile their own
	// pipelines.
	Pred *predict.Config
}

// DefaultLattice spans machine widths, CCB pressure, recovery models, and
// speculation aggressiveness. Like the oracle, cells with a small CCB
// clamp the transform's Synchronization-bit window to the capacity so the
// speculative window always fits the buffer (the deadlock-freedom
// co-design constraint).
func DefaultLattice() []Cell {
	return []Cell{
		{Name: "w2-dual", D: machine.W2},
		{Name: "w4-dual", D: machine.W4},
		{Name: "w4-ccb4", D: machine.W4, CCBCapacity: 4},
		{Name: "w4-ccb1", D: machine.W4, CCBCapacity: 1},
		{Name: "w8-dual", D: machine.W8},
		{Name: "w4-thresh50", D: machine.W4, Threshold: 0.5},
		{Name: "w4-serial", D: machine.W4, SerialRecovery: true, Ctrl: machine.DefaultControl()},
		{Name: "w8-serial-bp0", D: machine.W8, SerialRecovery: true},
	}
}

// MemLattice spans the memory-hierarchy axis at a fixed 4-wide dual-engine
// machine: every stock cache configuration (including the explicit flat
// one, whose cycles must be byte-identical to a nil Mem), plus a
// cache-under-CCB-pressure cell and a serial-recovery cell so dynamic load
// latencies meet every recovery path. Architectural results must be
// identical on every cell — only cycles may move.
func MemLattice() []Cell {
	cells := []Cell{{Name: "w4-mem-nil", D: machine.W4}}
	for _, m := range machine.StockMem() {
		cells = append(cells, Cell{Name: "w4-mem-" + m.Name, D: machine.W4, Mem: m})
	}
	cells = append(cells,
		Cell{Name: "w4-mem-l1pf-ccb4", D: machine.W4, CCBCapacity: 4, Mem: machine.MemL1PF},
		Cell{Name: "w4-mem-l2-serial", D: machine.W4, SerialRecovery: true, Ctrl: machine.DefaultControl(), Mem: machine.MemL2},
	)
	return cells
}

// PredLattice spans the predictor axis at a fixed 4-wide dual-engine
// machine: every stock scheme with gating off and on (a low threshold, so
// gated cells still predict — the suite's vacuity guards demand real
// predictions AND real suppressions), plus an alias-prone tiny VTAGE
// table and a serial-recovery gated cell so the reduced suppressed-site
// stall meets the recovery path. Architectural results must match the
// interpreter on every cell regardless of scheme or gating.
func PredLattice() []Cell {
	cells := []Cell{{Name: "w4-pred-nil", D: machine.W4}}
	for _, name := range predict.StockNames() {
		plain, err := predict.Parse(name)
		if err != nil {
			panic(err) // stock names always parse
		}
		gated, err := predict.Parse(name + ":conf=1,cbits=2")
		if err != nil {
			panic(err)
		}
		cells = append(cells,
			Cell{Name: "w4-pred-" + name, D: machine.W4, Pred: plain},
			Cell{Name: "w4-pred-" + name + "-gated", D: machine.W4, Pred: gated},
		)
	}
	tiny, err := predict.Parse("vtage:bits=2")
	if err != nil {
		panic(err)
	}
	serial, err := predict.Parse("profiled:conf=2")
	if err != nil {
		panic(err)
	}
	cells = append(cells,
		Cell{Name: "w4-pred-vtage-tiny", D: machine.W4, Pred: tiny},
		Cell{Name: "w4-pred-serial-gated", D: machine.W4, SerialRecovery: true, Ctrl: machine.DefaultControl(), Pred: serial},
	)
	return cells
}

// BranchLattice spans the control-speculation axis at a fixed 4-wide
// machine: every stock branch scheme (static and dynamic), a small
// alias-prone TAGE with non-default latencies, branch prediction under
// serial recovery, under value-confidence gating, and under CCB pressure,
// plus the predictor-less cell whose branch counters must stay zero. The
// mispredict flush is conservative by construction, so architectural
// results must match the interpreter on every cell — only cycles and
// accounting may move.
func BranchLattice() []Cell {
	mk := func(spec string) *predict.BranchConfig {
		c, err := predict.ParseBranch(spec)
		if err != nil {
			panic(err) // stock specs always parse
		}
		return c
	}
	gated, err := predict.Parse("profiled:conf=1,cbits=2")
	if err != nil {
		panic(err)
	}
	cells := []Cell{{Name: "w4-branch-nil", D: machine.W4}}
	for _, name := range predict.StockBranchNames() {
		cells = append(cells, Cell{Name: "w4-branch-" + name, D: machine.W4,
			Ctrl: machine.ControlConfig{Branch: mk(name)}})
	}
	cells = append(cells,
		Cell{Name: "w4-branch-tage-small", D: machine.W4,
			Ctrl: machine.ControlConfig{Branch: mk("tage:bits=4,hist=8,tables=2"), Flush: 6, Redirect: 2}},
		Cell{Name: "w4-branch-bimodal-serial", D: machine.W4, SerialRecovery: true,
			Ctrl: machine.ControlConfig{BranchPenalty: 1, Branch: mk("bimodal:bits=4")}},
		Cell{Name: "w4-branch-tage-gated", D: machine.W4, Pred: gated,
			Ctrl: machine.ControlConfig{Branch: mk("tage")}},
		Cell{Name: "w4-branch-taken-ccb2", D: machine.W4, CCBCapacity: 2,
			Ctrl: machine.ControlConfig{Branch: mk("taken")}},
		// Memory-hierarchy cells: with a flat fixed-latency memory every
		// check resolves within a couple of cycles of issue, so the
		// mispredict flush window is empty and flush semantics go
		// unexercised. Cache misses keep checks in flight across block
		// boundaries — these cells are what give the flush path teeth.
		Cell{Name: "w4-branch-tage-mem-l2", D: machine.W4, Mem: machine.MemL2,
			Ctrl: machine.ControlConfig{Branch: mk("tage")}},
		Cell{Name: "w4-branch-bimodal-mem-l1", D: machine.W4, Mem: machine.MemL1,
			Ctrl: machine.ControlConfig{Branch: mk("bimodal")}},
		Cell{Name: "w4-branch-nottaken-mem-l2pf", D: machine.W4, Mem: machine.MemL2PF,
			Ctrl: machine.ControlConfig{Branch: mk("nottaken"), Flush: 5}},
	)
	return cells
}

// Options configures a conformance run. The zero value means defaults.
type Options struct {
	// Lattice is the configuration set (default DefaultLattice).
	Lattice []Cell
	// Gen parameterizes the program generator.
	Gen progen.Options
	// Jobs bounds seed-level parallelism in Run.
	Jobs int
	// Tamper, when set, is applied to every dynamic simulator the harness
	// builds, immediately before running. It exists so tests can inject a
	// deliberate bug (e.g. core.Simulator.FaultCCEWritebackXor) and prove
	// the suite catches it with a minimized reproduction.
	Tamper func(*core.Simulator)
}

func (o Options) withDefaults() Options {
	if o.Lattice == nil {
		o.Lattice = DefaultLattice()
	}
	if o.Jobs <= 0 {
		o.Jobs = 1
	}
	return o
}

// Failure reports one violated invariant, minimized.
type Failure struct {
	Seed      int64
	Invariant string // "arch", "perfect", "ccb-monotone", "metrics"
	Cell      string
	Detail    string
	Source    string // minimized VL program reproducing the violation
}

// Report renders the failure with everything needed to reproduce it.
func (f *Failure) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: invariant %q violated (cell %s, seed %d)\n", f.Invariant, f.Cell, f.Seed)
	fmt.Fprintf(&b, "  %s\n", f.Detail)
	fmt.Fprintf(&b, "  reproduce: vpexp -conform -progen-seed %d -progen-count 1\n", f.Seed)
	b.WriteString("  minimized program:\n")
	for _, line := range strings.Split(strings.TrimRight(f.Source, "\n"), "\n") {
		fmt.Fprintf(&b, "\t%s\n", line)
	}
	return b.String()
}

// Stats aggregates coverage evidence across a run, so the suite can
// assert it is not passing vacuously (no predictions, no mispredictions,
// nothing ever buffered).
type Stats struct {
	Programs       int
	Cells          int
	Predictions    int64
	Mispredicts    int64
	CCEExecuted    int64
	CCEFlushed     int64
	CCBStallCells  int // runs that stalled on a full CCB at least once
	MonotoneSweeps int // programs that ran the CCB capacity sweep
	PressureRuns   int // completed sweep runs below the speculative window
	// Confidence-gating coverage (nonzero only under a predictor lattice).
	Suppressed      int64 // LdPred issues gated off by confidence counters
	SuppressedWrong int64 // suppressed issues whose prediction was wrong
	// Memory-hierarchy coverage (nonzero only under a mem lattice).
	MemMisses     int64 // demand misses across every cached cell
	MemIMisses    int64 // instruction-cache misses
	MemPrefetches int64 // prefetcher line fills issued
	// Control-speculation coverage (nonzero only under a branch lattice).
	BranchPredicts    int64 // conditional branches the direction predictor called
	BranchMispredicts int64 // of those, called wrong
	BranchFlushed     int64 // in-flight sites and buffered CCB entries flushed by branch mispredicts
}

func (s *Stats) add(o Stats) {
	s.Programs += o.Programs
	s.Cells += o.Cells
	s.Predictions += o.Predictions
	s.Mispredicts += o.Mispredicts
	s.CCEExecuted += o.CCEExecuted
	s.CCEFlushed += o.CCEFlushed
	s.CCBStallCells += o.CCBStallCells
	s.MonotoneSweeps += o.MonotoneSweeps
	s.PressureRuns += o.PressureRuns
	s.Suppressed += o.Suppressed
	s.SuppressedWrong += o.SuppressedWrong
	s.MemMisses += o.MemMisses
	s.MemIMisses += o.MemIMisses
	s.MemPrefetches += o.MemPrefetches
	s.BranchPredicts += o.BranchPredicts
	s.BranchMispredicts += o.BranchMispredicts
	s.BranchFlushed += o.BranchFlushed
}

// Run checks n consecutive seeds starting at startSeed, fanning across
// opt.Jobs workers. It returns every failure (one per failing seed,
// minimized) plus aggregate coverage stats; err reports harness breakage
// (a generated program that does not compile, or a simulator error on a
// well-formed run), which is always a bug.
func Run(startSeed int64, n int, opt Options) ([]*Failure, Stats, error) {
	opt = opt.withDefaults()
	fails := make([]*Failure, n)
	stats := make([]Stats, n)
	err := pool.ForEach(opt.Jobs, n, func(i int) error {
		f, st, err := CheckSeed(startSeed+int64(i), opt)
		fails[i], stats[i] = f, st
		return err
	})
	var out []*Failure
	var total Stats
	for i := range fails {
		if fails[i] != nil {
			out = append(out, fails[i])
		}
		total.add(stats[i])
	}
	return out, total, err
}

// CheckSeed generates one program and checks every invariant across the
// lattice. On a violation it shrinks the program while the same invariant
// keeps failing and returns the minimized Failure.
func CheckSeed(seed int64, opt Options) (*Failure, Stats, error) {
	opt = opt.withDefaults()
	spec := progen.Generate(seed, opt.Gen)
	fail, stats, err := checkSpec(spec, opt)
	if err != nil || fail == nil {
		return nil, stats, err
	}
	min := progen.Minimize(spec, func(s progen.Spec) bool {
		f, _, err := checkSpec(s, opt)
		return err == nil && f != nil && f.Invariant == fail.Invariant
	})
	// Re-derive the failure from the minimized spec so cell and detail
	// describe the program actually reported.
	if f, _, err := checkSpec(min, opt); err == nil && f != nil {
		fail = f
	}
	fail.Seed = seed
	fail.Source = progen.Render(min)
	return fail, stats, nil
}

// Compile runs the conformance front end — lower, optimize, value
// profile — over VL source (typically progen output). Exported so the
// engine-diff suite compiles its corpus exactly the way the conformance
// harness does.
func Compile(src string) (*ir.Program, *profile.Profile, error) {
	fctx := &pipeline.Ctx{Source: src}
	frontPlan := pipeline.Plan{Name: "conform-front", Passes: []pipeline.Pass{
		pipeline.Lower{}, pipeline.Opt{}, pipeline.Profile{},
	}}
	if err := mgr.Run(frontPlan, fctx); err != nil {
		return nil, nil, err
	}
	return fctx.Prog, fctx.Prof, nil
}

// refResult is the sequential interpreter's architectural outcome.
type refResult struct {
	value  uint64
	output []string
	mem    []uint64
}

// checkSpec runs the full invariant battery over one spec and returns the
// first violation (cells in lattice order, arch before metrics before
// perfect within a cell, then the CCB monotonicity sweep).
func checkSpec(spec progen.Spec, opt Options) (*Failure, Stats, error) {
	src := progen.Render(spec)
	prog, prof, err := Compile(src)
	if err != nil {
		// A generated program that fails to compile, optimize to valid IR,
		// or profile is harness breakage, always a bug; the PassError names
		// the offending pass.
		return nil, Stats{}, fmt.Errorf("conform: seed %d front end: %w", spec.Seed, err)
	}

	m := interp.New(prog)
	v, err := m.Run("main")
	if err != nil {
		return nil, Stats{}, fmt.Errorf("conform: seed %d interp: %w", spec.Seed, err)
	}
	ref := &refResult{value: v, output: m.Output, mem: append([]uint64(nil), m.Mem...)}

	stats := Stats{Programs: 1}
	baseCycles := map[*machine.Desc]int64{}
	for _, cell := range opt.Lattice {
		fail, err := checkCell(prog, prof, ref, cell, opt, baseCycles, &stats)
		if err != nil {
			return nil, stats, fmt.Errorf("conform: seed %d cell %s: %w", spec.Seed, cell.Name, err)
		}
		if fail != nil {
			return fail, stats, nil
		}
	}
	fail, err := checkMonotone(prog, prof, ref, opt, &stats)
	if err != nil {
		return nil, stats, fmt.Errorf("conform: seed %d: %w", spec.Seed, err)
	}
	return fail, stats, nil
}

// transform applies the speculation pass for a cell, clamping the
// Synchronization-bit window to the CCB capacity (the same co-design rule
// oracle.Config enforces). The pass manager validates the transformed
// program; callers map a validation error (pipeline.IsValidation) to an
// "arch" invariant failure rather than harness breakage.
func transform(prog *ir.Program, prof *profile.Profile, cell Cell) (*speculate.Result, map[int]profile.Scheme, error) {
	cfg := speculate.DefaultConfig(cell.D)
	cfg.Predictor = cell.Pred
	cfg.Control = cell.Ctrl
	if cell.Threshold > 0 {
		cfg.Threshold = cell.Threshold
	}
	if cell.CCBCapacity > 0 && cfg.MaxSyncBits > cell.CCBCapacity {
		cfg.MaxSyncBits = cell.CCBCapacity
	}
	plan := pipeline.Plan{Name: "conform-speculate", Passes: []pipeline.Pass{
		pipeline.Speculate{Cfg: cfg},
	}}
	ctx := &pipeline.Ctx{Prog: prog, Prof: prof, Machine: cell.D, Shared: true}
	if err := mgr.Run(plan, ctx); err != nil {
		return nil, nil, err
	}
	return ctx.Spec, ctx.Schemes, nil
}

// specFailure maps a speculation-pipeline validation error to the "arch"
// invariant failure it is (the transform produced invalid IR); any other
// error is harness breakage, returned as-is.
func specFailure(err error, cell Cell) (*Failure, error) {
	if pipeline.IsValidation(err) {
		return &Failure{Invariant: "arch", Cell: cell.Name,
			Detail: fmt.Sprintf("transformed program invalid: %v", err)}, nil
	}
	return nil, err
}

// scheduleDecode builds the per-block VLIW schedules for a (possibly
// transformed) program and lowers the result into the simulator's dense
// image through the pipeline decode pass.
func scheduleDecode(prog *ir.Program, d *machine.Desc) (*core.Image, error) {
	plan := pipeline.Plan{Name: "conform-schedule", Passes: []pipeline.Pass{
		pipeline.Schedule{DDG: ddg.Options{}}, pipeline.Decode{},
	}}
	ctx := &pipeline.Ctx{Prog: prog, Machine: d, Shared: true}
	if err := mgr.Run(plan, ctx); err != nil {
		return nil, err
	}
	return ctx.Image, nil
}

// CellPipeline is one cell's compiled speculative pipeline: the transform
// result, the decoded execution image, and the per-site predictor schemes.
// The image is immutable — any number of simulators (one per engine, one
// per goroutine) may bind to it. The engine-diff suite uses this to run
// the decoded and legacy engines over identical compiles.
type CellPipeline struct {
	Spec    *speculate.Result
	Img     *core.Image
	Schemes map[int]profile.Scheme
}

// PrepareCell runs a cell's speculative pipeline — transform (with the
// cell's CCB-clamped Synchronization-bit budget), schedule, decode — over
// a compiled front end. A pipeline validation error means the transform
// produced invalid IR (map it with pipeline.IsValidation); any other error
// is harness breakage.
func PrepareCell(prog *ir.Program, prof *profile.Profile, cell Cell) (*CellPipeline, error) {
	res, schemes, err := transform(prog, prof, cell)
	if err != nil {
		return nil, err
	}
	img, err := scheduleDecode(res.Prog, cell.D)
	if err != nil {
		return nil, err
	}
	return &CellPipeline{Spec: res, Img: img, Schemes: schemes}, nil
}

// applyCell copies a cell's runtime knobs onto a freshly built simulator —
// the single place the Cell→Simulator wiring lives (NewSim and buildSim
// both route through it, so a new knob cannot be wired into one and
// forgotten in the other).
func applyCell(sim *core.Simulator, cell Cell) {
	if cell.CCBCapacity > 0 {
		sim.CCBCapacity = cell.CCBCapacity
	}
	sim.SerialRecovery = cell.SerialRecovery
	sim.Control = cell.Ctrl
	sim.MemCfg = cell.Mem
	sim.PredCfg = cell.Pred
}

// NewSim binds a fresh decoded-engine simulator to the compiled cell.
func (cp *CellPipeline) NewSim(cell Cell) *core.Simulator {
	sim := core.NewSimulatorFromImage(cp.Img, cp.Schemes)
	applyCell(sim, cell)
	return sim
}

// buildSim wires a dynamic simulator for one cell over an already
// transformed program.
func buildSim(res *speculate.Result, schemes map[int]profile.Scheme, cell Cell, opt Options) (*core.Simulator, error) {
	img, err := scheduleDecode(res.Prog, cell.D)
	if err != nil {
		return nil, err
	}
	sim := core.NewSimulatorFromImage(img, schemes)
	applyCell(sim, cell)
	if opt.Tamper != nil {
		opt.Tamper(sim)
	}
	return sim, nil
}

// archDiff compares a simulator run against the interpreter reference and
// returns a human-readable mismatch, or "".
func archDiff(ref *refResult, v uint64, sim *core.Simulator) string {
	if v != ref.value {
		return fmt.Sprintf("return value %d, interpreter got %d", v, ref.value)
	}
	if len(sim.Output) != len(ref.output) {
		return fmt.Sprintf("emitted %d output lines, interpreter %d", len(sim.Output), len(ref.output))
	}
	for i := range ref.output {
		if sim.Output[i] != ref.output[i] {
			return fmt.Sprintf("output[%d] = %q, interpreter %q", i, sim.Output[i], ref.output[i])
		}
	}
	mem := sim.Memory()
	if len(mem) != len(ref.mem) {
		return fmt.Sprintf("memory image %d words, interpreter %d", len(mem), len(ref.mem))
	}
	for i := range ref.mem {
		if mem[i] != ref.mem[i] {
			return fmt.Sprintf("mem[%d] = %d, interpreter %d", i, mem[i], ref.mem[i])
		}
	}
	return ""
}

// checkCell validates invariants 1, 4, and 2 for one lattice cell.
func checkCell(prog *ir.Program, prof *profile.Profile, ref *refResult, cell Cell,
	opt Options, baseCycles map[*machine.Desc]int64, stats *Stats) (*Failure, error) {

	res, schemes, err := transform(prog, prof, cell)
	if err != nil {
		// Invariant 0: the transformed program still satisfies the IR
		// validator (including the speculation-form checks). The pass
		// manager runs it between passes and names the offender.
		return specFailure(err, cell)
	}
	sim, err := buildSim(res, schemes, cell, opt)
	if err != nil {
		return nil, err
	}
	sink := &countSink{}
	sim.Sink = sink

	// The trained-predictor run doubles as the recording run for the
	// perfect-replay comparison. Predictor-axis cells (Pred set) skip the
	// replay entirely and must NOT install the recorder: the recorder's
	// inner predictor would bypass the forced scheme, and the axis exists
	// to run the real zoo predictors end to end.
	replayable := cell.Pred == nil && !cell.Ctrl.Dynamic()
	logs := map[int][]uint64{}
	recIDs := map[*predict.Recorder]int{}
	if replayable {
		sim.NewPredictor = func(id int) predict.Predictor {
			var inner predict.Predictor
			if schemes[id] == profile.SchemeFCM {
				inner = predict.NewFCM(predict.DefaultFCMOrder, predict.DefaultFCMTableBits)
			} else {
				inner = predict.NewStride()
			}
			r := &predict.Recorder{P: inner}
			recIDs[r] = id
			return r
		}
	}

	v, err := sim.Run("main")
	if err != nil {
		// A simulator error on a program the interpreter accepts is an
		// architectural divergence (e.g. a wild speculative address that
		// escaped recovery), not harness breakage.
		return &Failure{Invariant: "arch", Cell: cell.Name,
			Detail: fmt.Sprintf("simulator error: %v", err)}, nil
	}
	trainedCycles := sim.Cycles

	stats.Cells++
	stats.Predictions += sim.Predictions
	stats.Mispredicts += sim.Mispredicts
	stats.CCEExecuted += sim.CCEExecuted
	stats.CCEFlushed += sim.CCEFlushed
	if sim.StallCCB > 0 {
		stats.CCBStallCells++
	}
	stats.Suppressed += sim.Suppressed
	stats.SuppressedWrong += sim.SuppressedWrong
	stats.MemMisses += sim.DMisses
	stats.MemIMisses += sim.IMisses
	stats.MemPrefetches += sim.PrefIssued
	stats.BranchPredicts += sim.BranchPredicts
	stats.BranchMispredicts += sim.BranchMispredicts
	stats.BranchFlushed += sim.BranchFlushed

	// Invariant 1: architectural conformance.
	if d := archDiff(ref, v, sim); d != "" {
		return &Failure{Invariant: "arch", Cell: cell.Name, Detail: d}, nil
	}
	// Invariant 4: event stream vs counters vs snapshot.
	if d := sink.diff(sim, cell); d != "" {
		return &Failure{Invariant: "metrics", Cell: cell.Name, Detail: d}, nil
	}

	// Invariant 2: perfect prediction never loses. Dual-engine cells with
	// an unconstrained CCB and flat load latency only: a deliberately
	// starved buffer, the serial-recovery machine, or a cache model (whose
	// check loads can miss where the training run hit) are allowed to lose
	// to the unspeculated baseline. Predictor-axis cells skip too — no
	// recorder ran (see above), and a gated machine deliberately forgoes
	// prediction wins at unconfident sites.
	if !replayable || cell.SerialRecovery || cell.CCBCapacity > 0 || !cell.Mem.Flat() || sim.Predictions == 0 {
		return nil, nil
	}
	for r, id := range recIDs {
		logs[id] = r.Log
	}
	sim.NewPredictor = func(id int) predict.Predictor {
		return &predict.Replay{Seq: logs[id]}
	}
	pv, err := sim.Run("main")
	if err != nil {
		return nil, fmt.Errorf("perfect-replay run: %w", err)
	}
	if d := archDiff(ref, pv, sim); d != "" {
		return &Failure{Invariant: "arch", Cell: cell.Name,
			Detail: "under perfect replay: " + d}, nil
	}
	if sim.Mispredicts != 0 {
		return &Failure{Invariant: "perfect", Cell: cell.Name,
			Detail: fmt.Sprintf("replayed predictor still mispredicted %d of %d", sim.Mispredicts, sim.Predictions)}, nil
	}
	if sim.Cycles > trainedCycles {
		return &Failure{Invariant: "perfect", Cell: cell.Name,
			Detail: fmt.Sprintf("perfect replay took %d cycles, trained predictors %d", sim.Cycles, trainedCycles)}, nil
	}
	// Against the unspeculated baseline, perfect prediction is not free:
	// every site adds exactly two operations (LdPred + CheckLd, the
	// check a real load competing for memory ports) and call barriers
	// drain the CCB. Each of those costs at most a bounded number of
	// cycles — an issue slot each, a memory-port conflict for the check,
	// a bounded share of a barrier drain — so the implementable form of
	// the paper's "prediction never loses" claim is a per-prediction
	// overhead allowance (4 cycles/site is a conservative ceiling); a
	// violation means speculation cost something that does NOT scale
	// with the speculation the program performed — a stall pathology or
	// a wedge, exactly what this invariant exists to catch. On a 2-wide
	// machine even that bound does not hold (the machine has no spare
	// slots at all), so the baseline comparison covers the >=4-wide
	// configurations the paper evaluates.
	if cell.D.Width < 4 {
		return nil, nil
	}
	base, ok := baseCycles[cell.D]
	if !ok {
		base, err = baselineCycles(prog, cell, opt)
		if err != nil {
			return nil, err
		}
		baseCycles[cell.D] = base
	}
	if allowed := base + 4*sim.Predictions + 64; sim.Cycles > allowed {
		return &Failure{Invariant: "perfect", Cell: cell.Name,
			Detail: fmt.Sprintf("perfect replay took %d cycles; unspeculated baseline %d + overhead allowance for %d predictions gives only %d",
				sim.Cycles, base, sim.Predictions, allowed)}, nil
	}
	return nil, nil
}

// baselineCycles runs the untransformed program on the same machine:
// scheduled, scoreboarded, but with no speculation anywhere.
func baselineCycles(prog *ir.Program, cell Cell, opt Options) (int64, error) {
	base := prog.Clone()
	img, err := scheduleDecode(base, cell.D)
	if err != nil {
		return 0, err
	}
	sim := core.NewSimulatorFromImage(img, nil)
	if opt.Tamper != nil {
		opt.Tamper(sim)
	}
	if _, err := sim.Run("main"); err != nil {
		return 0, fmt.Errorf("baseline run: %w", err)
	}
	return sim.Cycles, nil
}

// checkMonotone sweeps CCB capacity at a fixed program and schedule
// (4-wide, dual-engine). At or above the widest per-block
// Synchronization-bit window the machine is deadlock free by co-design
// and the buffer never limits issue, so cycles must not depend on the
// capacity at all — equality, the strong form of "monotone non-increasing
// in capacity". Below the window the sweep creates real buffer pressure;
// there the machine may wedge (skipped) and cycles may move in either
// direction — a CCB stall delays a LdPred past earlier check resolutions,
// which retrains the predictors and changes the misprediction pattern
// itself — but completed runs must still be architecturally exact.
func checkMonotone(prog *ir.Program, prof *profile.Profile, ref *refResult, opt Options, stats *Stats) (*Failure, error) {
	cell := Cell{Name: "ccb-sweep", D: machine.W4}
	res, schemes, err := transform(prog, prof, cell)
	if err != nil {
		return specFailure(err, cell)
	}
	maxBits := 0
	for _, bi := range res.Blocks {
		if n := bits.OnesCount64(bi.BitsUsed); n > maxBits {
			maxBits = n
		}
	}
	if maxBits == 0 {
		return nil, nil // nothing speculated: nothing to sweep
	}
	sim, err := buildSim(res, schemes, cell, opt)
	if err != nil {
		return nil, err
	}
	// Reference run exactly at the floor: every capacity at or above the
	// window must reproduce its cycle count.
	sim.CCBCapacity = maxBits
	fv, err := sim.Run("main")
	if err != nil {
		return &Failure{Invariant: "ccb-monotone", Cell: cell.Name,
			Detail: fmt.Sprintf("wedged at CCB capacity %d >= speculative window %d: %v",
				maxBits, maxBits, err)}, nil
	}
	if d := archDiff(ref, fv, sim); d != "" {
		return &Failure{Invariant: "arch", Cell: cell.Name,
			Detail: fmt.Sprintf("at CCB capacity %d: %s", maxBits, d)}, nil
	}
	refCycles := sim.Cycles
	sim.MaxCycles = 16*refCycles + 50000

	caps := []int{1, maxBits / 2, maxBits - 1, maxBits + 1, 2 * maxBits, core.DefaultCCBCapacity}
	sort.Ints(caps)
	stats.MonotoneSweeps++
	for i, c := range caps {
		if c < 1 || c == maxBits || (i > 0 && c == caps[i-1]) {
			continue
		}
		sim.CCBCapacity = c
		v, err := sim.Run("main")
		if err != nil {
			if c > maxBits {
				// At or above the window the machine must not wedge.
				return &Failure{Invariant: "ccb-monotone", Cell: cell.Name,
					Detail: fmt.Sprintf("wedged at CCB capacity %d > speculative window %d: %v",
						c, maxBits, err)}, nil
			}
			continue // sub-floor wedge: a legal refusal, treated as +inf
		}
		if d := archDiff(ref, v, sim); d != "" {
			return &Failure{Invariant: "arch", Cell: cell.Name,
				Detail: fmt.Sprintf("at CCB capacity %d: %s", c, d)}, nil
		}
		if c > maxBits {
			if sim.Cycles != refCycles {
				return &Failure{Invariant: "ccb-monotone", Cell: cell.Name,
					Detail: fmt.Sprintf("CCB %d took %d cycles, CCB %d (the %d-bit speculative window, above which the buffer never limits issue) took %d",
						c, sim.Cycles, maxBits, maxBits, refCycles)}, nil
			}
			continue
		}
		stats.PressureRuns++
		if sim.StallCCB > 0 {
			stats.CCBStallCells++
		}
	}
	return nil, nil
}

// countSink tallies the typed event stream for the self-consistency
// invariant.
type countSink struct {
	kinds      map[obs.Kind]int64
	resolveBad int64 // trusted (non-gated) resolves with a wrong prediction
	gatedBad   int64 // gated resolves whose prediction was wrong
}

func (c *countSink) Event(e *obs.Event) {
	if c.kinds == nil {
		c.kinds = map[obs.Kind]int64{}
	}
	c.kinds[e.Kind]++
	if e.Kind == obs.KindCheckResolve && !e.Correct {
		if e.Gated {
			c.gatedBad++
		} else {
			c.resolveBad++
		}
	}
}

// diff cross-checks the event stream against the simulator's counters and
// its published metrics snapshot. It must be called after a successful
// Run with the sink attached for the whole run.
func (c *countSink) diff(sim *core.Simulator, cell Cell) string {
	k := func(kind obs.Kind) int64 { return c.kinds[kind] }
	type eq struct {
		name string
		a, b int64
	}
	checks := []eq{
		{"ldpred-issue events vs Predictions", k(obs.KindLdPredIssue), sim.Predictions},
		{"pred-suppress events vs Suppressed", k(obs.KindPredSuppress), sim.Suppressed},
		{"check-issue events vs Predictions+Suppressed", k(obs.KindCheckIssue), sim.Predictions + sim.Suppressed},
		{"check-resolve events vs Predictions+Suppressed", k(obs.KindCheckResolve), sim.Predictions + sim.Suppressed},
		{"incorrect trusted resolves vs Mispredicts", c.resolveBad, sim.Mispredicts},
		{"incorrect gated resolves vs SuppressedWrong", c.gatedBad, sim.SuppressedWrong},
		{"cce-flush events vs CCEFlushed", k(obs.KindCCEFlush), sim.CCEFlushed},
		{"cce-execute events vs CCEExecuted", k(obs.KindCCEExecute), sim.CCEExecuted},
		{"ccb captures vs flushed+executed+squashed", k(obs.KindBufferCCB),
			sim.CCEFlushed + sim.CCEExecuted + sim.BranchSquashed},
		{"stall.sync events vs StallSync", k(obs.KindStallSync), sim.StallSync},
		{"stall.scoreboard events vs StallScore", k(obs.KindStallScore), sim.StallScore},
		{"stall.ccb events vs StallCCB", k(obs.KindStallCCB), sim.StallCCB},
		{"stall.barrier events vs StallBar", k(obs.KindStallBarrier), sim.StallBar},
		{"instr-issue events vs Instrs", k(obs.KindInstrIssue), sim.Instrs},
		{"branch-mispredict events vs BranchMispredicts", k(obs.KindBranchMispredict), sim.BranchMispredicts},
		{"branch-flush events vs BranchFlushed", k(obs.KindBranchFlush), sim.BranchFlushed},
		{"stall.ifetch events vs StallIFetch", k(obs.KindStallIFetch), sim.StallIFetch},
		{"mem-hit events vs DHits", k(obs.KindMemHit), sim.DHits},
		{"mem-miss events vs DMisses", k(obs.KindMemMiss), sim.DMisses},
		{"mem-prefetch events vs PrefIssued", k(obs.KindMemPrefetch), sim.PrefIssued},
	}
	for _, ch := range checks {
		if ch.a != ch.b {
			return fmt.Sprintf("%s: %d != %d", ch.name, ch.a, ch.b)
		}
	}

	snap := sim.Metrics()
	scalar := []eq{
		{"snapshot sim.cycles", snap.Counters["sim.cycles"], sim.Cycles},
		{"snapshot pred.predictions", snap.Counters["pred.predictions"], sim.Predictions},
		{"snapshot pred.verified", snap.Counters["pred.verified"], sim.Predictions - sim.Mispredicts},
		{"snapshot pred.suppressed", snap.Counters["pred.suppressed"], sim.Suppressed},
		{"snapshot pred.suppressed_wrong", snap.Counters["pred.suppressed_wrong"], sim.SuppressedWrong},
		{"snapshot stall.recovery", snap.Counters["stall.recovery"], sim.StallRecovery},
		{"snapshot stall.redirect", snap.Counters["stall.redirect"], sim.StallRedirect},
		{"snapshot branch.predicts", snap.Counters["branch.predicts"], sim.BranchPredicts},
		{"snapshot branch.mispredicted", snap.Counters["branch.mispredicted"], sim.BranchMispredicts},
		{"snapshot branch.flushed", snap.Counters["branch.flushed"], sim.BranchFlushed},
		{"snapshot branch.squashed", snap.Counters["branch.squashed"], sim.BranchSquashed},
		{"snapshot ccb.max_occupancy", snap.Counters["ccb.max_occupancy"], int64(sim.MaxCCBOccupancy)},
		{"snapshot mem.dhits", snap.Counters["mem.dhits"], sim.DHits},
		{"snapshot mem.dmisses", snap.Counters["mem.dmisses"], sim.DMisses},
		{"snapshot mem.imisses", snap.Counters["mem.imisses"], sim.IMisses},
		{"snapshot mem.prefetch.issued", snap.Counters["mem.prefetch.issued"], sim.PrefIssued},
		{"snapshot mem.prefetch.useful", snap.Counters["mem.prefetch.useful"], sim.PrefUseful},
	}
	for _, ch := range scalar {
		if ch.a != ch.b {
			return fmt.Sprintf("%s: %d != %d", ch.name, ch.a, ch.b)
		}
	}
	if !cell.SerialRecovery && sim.StallRecovery != 0 {
		return fmt.Sprintf("dual-engine run charged %d recovery stalls", sim.StallRecovery)
	}
	if !cell.Pred.Gating() && sim.Suppressed+sim.SuppressedWrong != 0 {
		return fmt.Sprintf("ungated run suppressed %d issues (%d wrong)", sim.Suppressed, sim.SuppressedWrong)
	}
	if !cell.Ctrl.Dynamic() && sim.BranchPredicts+sim.BranchMispredicts+sim.BranchFlushed+sim.StallRedirect != 0 {
		return fmt.Sprintf("predictor-less run recorded branch activity (%d predicts, %d mispredicts, %d flushed, %d redirect stalls)",
			sim.BranchPredicts, sim.BranchMispredicts, sim.BranchFlushed, sim.StallRedirect)
	}
	if sim.BranchMispredicts > sim.BranchPredicts {
		return fmt.Sprintf("%d branch mispredicts exceed %d predicts", sim.BranchMispredicts, sim.BranchPredicts)
	}
	if sim.BranchSquashed > sim.BranchFlushed {
		return fmt.Sprintf("%d squashed CCB entries exceed %d total branch flushes", sim.BranchSquashed, sim.BranchFlushed)
	}
	hist, ok := snap.Histograms["ccb.occupancy"]
	if !ok {
		return "snapshot missing ccb.occupancy histogram"
	}
	var histTotal int64
	for _, n := range hist.Counts {
		histTotal += n
	}
	if histTotal != c.kinds[obs.KindBufferCCB] {
		return fmt.Sprintf("ccb.occupancy histogram totals %d samples, %d entries were buffered",
			histTotal, c.kinds[obs.KindBufferCCB])
	}
	capacity := sim.CCBCapacity
	if capacity <= 0 {
		capacity = core.DefaultCCBCapacity
	}
	if sim.MaxCCBOccupancy > capacity {
		return fmt.Sprintf("max CCB occupancy %d exceeds capacity %d", sim.MaxCCBOccupancy, capacity)
	}
	if (sim.MaxCCBOccupancy == 0) != (histTotal == 0) {
		return fmt.Sprintf("max occupancy %d inconsistent with %d buffered entries",
			sim.MaxCCBOccupancy, histTotal)
	}
	return ""
}
