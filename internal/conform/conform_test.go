package conform

import (
	"flag"
	"runtime"
	"strings"
	"testing"

	"vliwvp/internal/core"
)

// -seeds sets the per-run program budget; CI pins it to 200 in the
// conformance job, local runs default smaller.
var seedBudget = flag.Int("seeds", 48, "number of generated programs the conformance suite checks")

// TestConformance is the suite's main entry: seedBudget generated
// programs, each checked across the full configuration lattice against
// all four metamorphic invariants.
func TestConformance(t *testing.T) {
	n := *seedBudget
	if testing.Short() && n > 8 {
		n = 8
	}
	fails, stats, err := Run(1, n, Options{Jobs: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	for _, f := range fails {
		t.Errorf("%s", f.Report())
	}

	// Vacuity guards: a passing run must actually have exercised the
	// machinery the invariants are about.
	t.Logf("conformance stats: %+v", stats)
	if stats.Programs != n {
		t.Errorf("checked %d programs, want %d", stats.Programs, n)
	}
	if stats.Predictions == 0 {
		t.Error("no load was ever predicted across the whole corpus")
	}
	if stats.Mispredicts == 0 {
		t.Error("no prediction ever missed: the recovery machinery went untested")
	}
	if stats.CCEExecuted == 0 {
		t.Error("the Compensation Code Engine never re-executed an operation")
	}
	if stats.CCEFlushed == 0 {
		t.Error("the Compensation Code Engine never flushed a correct entry")
	}
	if stats.MonotoneSweeps == 0 {
		t.Error("no program ran the CCB capacity sweep")
	}
	if !testing.Short() {
		if stats.PressureRuns == 0 {
			t.Error("no sweep run ever completed below the speculative window")
		}
		if stats.CCBStallCells == 0 {
			t.Error("no run ever stalled on a full CCB: the capacity limit went untested")
		}
	}
}

// -mem-seeds sets the memory-hierarchy conformance budget; CI's memory
// job pins it to 200 under -race.
var memSeedBudget = flag.Int("mem-seeds", 24, "number of generated programs checked across the memory lattice")

// TestMemConformance runs the invariant battery across the memory
// lattice: every cache configuration — multi-level, prefetching,
// I-cached, serial-recovery, CCB-starved — must stay architecturally
// byte-identical to the interpreter and keep its event stream, counters,
// and metrics snapshot mutually consistent; only cycles may move.
func TestMemConformance(t *testing.T) {
	n := *memSeedBudget
	if testing.Short() && n > 6 {
		n = 6
	}
	fails, stats, err := Run(1, n, Options{Jobs: runtime.GOMAXPROCS(0), Lattice: MemLattice()})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	for _, f := range fails {
		t.Errorf("%s", f.Report())
	}

	// Vacuity guards: the lattice must actually have exercised the cache
	// model — misses, I-cache pressure, prefetch issue, and recovery
	// machinery under dynamic load latency.
	t.Logf("memory conformance stats: %+v", stats)
	if stats.Programs != n {
		t.Errorf("checked %d programs, want %d", stats.Programs, n)
	}
	if stats.MemMisses == 0 {
		t.Error("no demand load ever missed: the hierarchy went untested")
	}
	if stats.MemIMisses == 0 {
		t.Error("no instruction fetch ever missed the I-cache")
	}
	if stats.MemPrefetches == 0 {
		t.Error("the stride-stream prefetcher never issued a fill")
	}
	if stats.Mispredicts == 0 {
		t.Error("no prediction ever missed under a cache model: recovery with dynamic latency went untested")
	}
	if stats.CCEExecuted == 0 {
		t.Error("the Compensation Code Engine never re-executed under a cache model")
	}
}

// -pred-seeds sets the predictor-axis conformance budget; CI's predictor
// job pins it to 200 under -race.
var predSeedBudget = flag.Int("pred-seeds", 24, "number of generated programs checked across the predictor lattice")

// TestPredConformance runs the invariant battery across the predictor
// lattice: every stock scheme, gated and ungated, plus the alias-prone
// tiny VTAGE table and the serial-recovery gated machine must stay
// architecturally byte-identical to the interpreter with a mutually
// consistent event stream, counters, and snapshot; only cycles and the
// prediction/suppression mix may move.
func TestPredConformance(t *testing.T) {
	n := *predSeedBudget
	if testing.Short() && n > 6 {
		n = 6
	}
	fails, stats, err := Run(1, n, Options{Jobs: runtime.GOMAXPROCS(0), Lattice: PredLattice()})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	for _, f := range fails {
		t.Errorf("%s", f.Report())
	}

	// Vacuity guards: the lattice must actually have exercised the zoo and
	// the gate — real trusted predictions, real suppressions, and real
	// gate true-positives (suppressed issues that were in fact wrong), or
	// the mis-gating fault injection below proves nothing.
	t.Logf("predictor conformance stats: %+v", stats)
	if stats.Programs != n {
		t.Errorf("checked %d programs, want %d", stats.Programs, n)
	}
	if stats.Predictions == 0 {
		t.Error("no load was ever predicted across the predictor lattice")
	}
	if stats.Mispredicts == 0 {
		t.Error("no trusted prediction ever missed: recovery under the zoo went untested")
	}
	if stats.Suppressed == 0 {
		t.Error("the confidence gate never suppressed an issue")
	}
	if stats.SuppressedWrong == 0 {
		t.Error("no suppressed issue was ever wrong: the gate's repair path went untested")
	}
	if stats.CCEExecuted == 0 {
		t.Error("the Compensation Code Engine never re-executed under the predictor lattice")
	}
}

// -branch-seeds sets the control-speculation conformance budget; CI's
// branch job pins it to 200 under -race.
var branchSeedBudget = flag.Int("branch-seeds", 24, "number of generated programs checked across the branch lattice")

// TestBranchConformance runs the invariant battery across the branch
// lattice: every direction-predictor scheme — static, bimodal, TAGE,
// shrunken-table TAGE, serial-recovery, CCB-starved, gated, and the
// cache-backed cells whose long check latencies keep speculation in
// flight across block boundaries — must stay architecturally
// byte-identical to the interpreter with mutually consistent events,
// counters, and snapshot; only timing may move with the control config.
func TestBranchConformance(t *testing.T) {
	n := *branchSeedBudget
	if testing.Short() && n > 6 {
		n = 6
	}
	fails, stats, err := Run(1, n, Options{Jobs: runtime.GOMAXPROCS(0), Lattice: BranchLattice()})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	for _, f := range fails {
		t.Errorf("%s", f.Report())
	}

	// Vacuity guards: the lattice must actually have exercised the
	// control-speculation model — real predictions, real mispredicts, and
	// real wrong-path flushes of buffered speculation — or the
	// flush-elision fault injection below proves nothing.
	t.Logf("branch conformance stats: %+v", stats)
	if stats.Programs != n {
		t.Errorf("checked %d programs, want %d", stats.Programs, n)
	}
	if stats.BranchPredicts == 0 {
		t.Error("no conditional branch was ever direction-predicted")
	}
	if stats.BranchMispredicts == 0 {
		t.Error("no branch prediction ever missed: the flush machinery went untested")
	}
	if stats.BranchFlushed == 0 {
		t.Error("no mispredict ever flushed in-flight speculation: the flush path is vacuous")
	}
	if stats.Mispredicts == 0 {
		t.Error("no value prediction ever missed under the branch lattice")
	}
	if stats.CCEExecuted == 0 {
		t.Error("the Compensation Code Engine never re-executed under the branch lattice")
	}
}

// TestConformanceCatchesInjectedMisgateBug proves the predictor axis has
// teeth: with the confidence-gating logic deliberately broken (a
// suppressed-and-wrong site treated as verified correct, so dependents
// keep the stale predicted value), some seed must produce an
// architectural divergence with a minimized reproduction.
func TestConformanceCatchesInjectedMisgateBug(t *testing.T) {
	opt := Options{
		Lattice: PredLattice(),
		Tamper:  func(s *core.Simulator) { s.FaultConfidenceMisgate = true },
	}
	var caught *Failure
	for seed := int64(1); seed <= 40 && caught == nil; seed++ {
		f, _, err := CheckSeed(seed, opt)
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		caught = f
	}
	if caught == nil {
		t.Fatal("injected confidence mis-gating went undetected across 40 seeds")
	}
	if caught.Invariant != "arch" {
		t.Errorf("injected bug reported as %q, want \"arch\"", caught.Invariant)
	}
	if !strings.Contains(caught.Cell, "gated") {
		t.Errorf("divergence caught on cell %q; mis-gating can only bite gated cells", caught.Cell)
	}
	if caught.Source == "" || caught.Seed == 0 {
		t.Errorf("failure not reproducible: %+v", caught)
	}
	t.Logf("caught with seed %d on cell %s", caught.Seed, caught.Cell)
}

// TestConformanceCatchesInjectedCCEBug proves the suite's teeth: with a
// deliberately corrupted CCE write-back datapath, some seed must produce
// an architectural divergence, reported with the seed and a minimized
// program.
func TestConformanceCatchesInjectedCCEBug(t *testing.T) {
	opt := Options{
		Tamper: func(s *core.Simulator) { s.FaultCCEWritebackXor = 1 << 6 },
	}
	var caught *Failure
	var seed int64
	for seed = 1; seed <= 40 && caught == nil; seed++ {
		f, _, err := CheckSeed(seed, opt)
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		caught = f
	}
	if caught == nil {
		t.Fatal("injected CCE write-back corruption went undetected across 40 seeds")
	}
	if caught.Invariant != "arch" {
		t.Errorf("injected bug reported as %q, want \"arch\"", caught.Invariant)
	}
	rep := caught.Report()
	if !strings.Contains(rep, "-progen-seed") || caught.Seed == 0 {
		t.Errorf("report missing reproducible seed:\n%s", rep)
	}
	if !strings.Contains(rep, "func main()") {
		t.Errorf("report missing the minimized program:\n%s", rep)
	}
	if caught.Source == "" {
		t.Error("failure carries no minimized source")
	}
	t.Logf("caught with seed %d:\n%s", caught.Seed, rep)
}

// TestPerfectReplayBeatsTrained spot-checks the record/replay plumbing on
// one seed directly: CheckSeed must pass honestly (no tamper), and the
// stats must show mispredictions existed for at least one seed, meaning
// the perfect-replay comparison was non-trivial.
func TestCheckSeedCleanPasses(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		f, _, err := CheckSeed(seed, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if f != nil {
			t.Fatalf("seed %d failed:\n%s", seed, f.Report())
		}
	}
}
