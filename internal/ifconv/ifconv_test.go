package ifconv_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vliwvp/internal/ifconv"
	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/opt"
	"vliwvp/internal/workload"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(p)
	return p
}

func runProg(t *testing.T, p *ir.Program) (uint64, []uint64) {
	t.Helper()
	m := interp.New(p)
	v, err := m.RunMain()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, m.Mem
}

func countSelects(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Code == ir.Select {
					n++
				}
			}
		}
	}
	return n
}

func countBranches(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Code == ir.Br {
					n++
				}
			}
		}
	}
	return n
}

const diamondSrc = `
var a[128]
func main() {
	var s = 0
	for var i = 0; i < 128; i = i + 1 {
		var x = i * 3
		var y = 0
		if i % 2 == 0 {
			x = x + 7
			y = x * 2
		} else {
			x = x - 5
			y = x + 1
		}
		a[i] = x + y
		s = s + x - y
	}
	return s
}`

func TestFullDiamondConverted(t *testing.T) {
	plain := build(t, diamondSrc)
	wantV, wantMem := runProg(t, plain)
	branchesBefore := countBranches(plain)

	conv := build(t, diamondSrc)
	stats := ifconv.Convert(conv, ifconv.DefaultConfig())
	if err := conv.Validate(); err != nil {
		t.Fatalf("invalid after if-conversion: %v", err)
	}
	if stats["main"] == 0 {
		t.Fatal("the diamond was not converted")
	}
	if countSelects(conv) == 0 {
		t.Fatal("no Select ops emitted")
	}
	if countBranches(conv) >= branchesBefore {
		t.Errorf("branches %d -> %d, want reduction", branchesBefore, countBranches(conv))
	}
	gotV, gotMem := runProg(t, conv)
	if gotV != wantV {
		t.Fatalf("converted result %d != %d", gotV, wantV)
	}
	for i := range wantMem {
		if gotMem[i] != wantMem[i] {
			t.Fatalf("memory[%d] differs after conversion", i)
		}
	}
}

func TestHalfDiamondConverted(t *testing.T) {
	src := `
func main() {
	var s = 0
	for var i = 0; i < 100; i = i + 1 {
		var x = i
		if i % 3 == 0 {
			x = x * 5 + 1
		}
		s = s + x
	}
	return s
}`
	plain := build(t, src)
	wantV, _ := runProg(t, plain)
	conv := build(t, src)
	stats := ifconv.Convert(conv, ifconv.DefaultConfig())
	if stats["main"] == 0 {
		t.Fatal("half diamond not converted")
	}
	gotV, _ := runProg(t, conv)
	if gotV != wantV {
		t.Fatalf("result %d != %d", gotV, wantV)
	}
}

func TestTrappingArmsNotConverted(t *testing.T) {
	// Division can trap; hoisting it would fault on the untaken path when
	// the divisor is zero there.
	src := `
func main() {
	var s = 0
	for var i = 0; i < 50; i = i + 1 {
		var x = 1
		if i > 0 {
			x = 100 / i     # traps if hoisted to i == 0
		}
		s = s + x
	}
	return s
}`
	conv := build(t, src)
	ifconv.Convert(conv, ifconv.DefaultConfig())
	gotV, _ := runProg(t, conv) // must not trap
	plain := build(t, src)
	wantV, _ := runProg(t, plain)
	if gotV != wantV {
		t.Fatalf("result %d != %d", gotV, wantV)
	}
}

func TestStoresBlockConversion(t *testing.T) {
	src := `
var a[64]
func main() {
	var s = 0
	for var i = 0; i < 64; i = i + 1 {
		if i % 2 == 0 {
			a[i] = i      # store: arm not convertible
		} else {
			s = s + 1
		}
	}
	return s + a[10]
}`
	conv := build(t, src)
	ifconv.Convert(conv, ifconv.DefaultConfig())
	if n := countSelects(conv); n != 0 {
		t.Errorf("store-bearing diamond emitted %d selects", n)
	}
	gotV, _ := runProg(t, conv)
	plain := build(t, src)
	wantV, _ := runProg(t, plain)
	if gotV != wantV {
		t.Fatalf("result %d != %d", gotV, wantV)
	}
}

func TestNestedDiamondsCollapseInsideOut(t *testing.T) {
	src := `
func main() {
	var s = 0
	for var i = 0; i < 200; i = i + 1 {
		var x = i
		if i % 2 == 0 {
			if i % 4 == 0 { x = x + 10 } else { x = x + 20 }
		} else {
			x = x - 1
		}
		s = s + x
	}
	return s
}`
	plain := build(t, src)
	wantV, _ := runProg(t, plain)
	conv := build(t, src)
	stats := ifconv.Convert(conv, ifconv.DefaultConfig())
	if stats["main"] < 2 {
		t.Errorf("nested diamonds: %d conversions, want >= 2", stats["main"])
	}
	gotV, _ := runProg(t, conv)
	if gotV != wantV {
		t.Fatalf("result %d != %d", gotV, wantV)
	}
}

func TestConversionOnAllBenchmarks(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			plain, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			wantV, wantMem := runProg(t, plain)

			conv, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			stats := ifconv.Convert(conv, ifconv.DefaultConfig())
			if err := conv.Validate(); err != nil {
				t.Fatalf("invalid after conversion: %v", err)
			}
			gotV, gotMem := runProg(t, conv)
			if gotV != wantV {
				t.Fatalf("%s: checksum %d != %d", b.Name, gotV, wantV)
			}
			for i := range wantMem {
				if gotMem[i] != wantMem[i] {
					t.Fatalf("%s: memory[%d] differs", b.Name, i)
				}
			}
			total := 0
			for _, n := range stats {
				total += n
			}
			t.Logf("%s: %d diamonds converted, %d selects", b.Name, total, countSelects(conv))
		})
	}
}

// TestPropertyConversionPreservesSemantics runs random branchy programs
// through if-conversion and compares against the unconverted original.
func TestPropertyConversionPreservesSemantics(t *testing.T) {
	gen := func(rng *rand.Rand) string {
		ops := []string{"+", "-", "*", "&", "|", "^"}
		expr := func() string {
			return "x " + ops[rng.Intn(len(ops))] + " " + []string{"3", "5", "7", "i"}[rng.Intn(4)]
		}
		body := ""
		for k := 0; k < 2+rng.Intn(3); k++ {
			switch rng.Intn(3) {
			case 0:
				body += "\t\tif i % " + []string{"2", "3", "5"}[rng.Intn(3)] + " == 0 { x = " + expr() + " } else { x = " + expr() + " y = y + 1 }\n"
			case 1:
				body += "\t\tif x > " + []string{"10", "100"}[rng.Intn(2)] + " { x = " + expr() + " y = " + expr() + " }\n"
			case 2:
				body += "\t\tx = " + expr() + "\n"
			}
		}
		return `
func main() {
	var s = 0
	var y = 0
	for var i = 1; i < 300; i = i + 1 {
		var x = i
` + body + `
		s = s + (x & 65535) + y
	}
	return s
}`
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := gen(rng)
		plain, err := lang.Compile(src)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		opt.Optimize(plain)
		m1 := interp.New(plain)
		want, err1 := m1.RunMain()

		conv, _ := lang.Compile(src)
		opt.Optimize(conv)
		ifconv.Convert(conv, ifconv.DefaultConfig())
		if err := conv.Validate(); err != nil {
			t.Logf("seed %d: invalid: %v", seed, err)
			return false
		}
		m2 := interp.New(conv)
		got, err2 := m2.RunMain()
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: error divergence %v vs %v", seed, err1, err2)
			return false
		}
		if err1 == nil && got != want {
			t.Logf("seed %d: %d != %d\n%s", seed, got, want, src)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
