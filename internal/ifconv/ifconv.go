// Package ifconv implements if-conversion: collapsing small, side-effect-
// free branch diamonds into straight-line code with Select (predicated
// move) operations. It is the predication half of the "larger regions such
// as hyperblocks" extension the paper's §3 anticipates — where superblock
// formation (internal/regions) handles biased branches by tail duplication,
// if-conversion removes *unbiased* branches entirely, and the two compose.
//
// A convertible diamond is
//
//	b:  ... ; br cond -> t, f
//	t:  pure, non-trapping ops ; jmp j     (single predecessor b)
//	f:  pure, non-trapping ops ; jmp j     (single predecessor b; may be
//	                                        the join itself for a half
//	                                        diamond)
//
// which becomes
//
//	b:  ... ; t-ops' ; f-ops' ; selects ; jmp j
//
// where both arms' definitions are renamed to fresh registers and every
// register either arm defined is merged with
// Select(cond, true-value, false-value). Loads and integer divides are
// never hoisted (they can trap on the untaken path); stores and calls make
// an arm unconvertible.
package ifconv

import (
	"vliwvp/internal/ddg"
	"vliwvp/internal/ir"
	"vliwvp/internal/opt"
)

// Config bounds the conversion.
type Config struct {
	// MaxArmOps caps the operation count of each arm.
	MaxArmOps int
	// MaxSelects caps the number of merge Selects per diamond.
	MaxSelects int
}

// DefaultConfig allows modest diamonds (classic if-conversion heuristics:
// a handful of predicated ops beat a branch).
func DefaultConfig() Config { return Config{MaxArmOps: 12, MaxSelects: 6} }

// Convert if-converts every eligible diamond in the program, in place.
// It returns the number of diamonds converted per function.
func Convert(p *ir.Program, cfg Config) map[string]int {
	out := map[string]int{}
	for _, f := range p.Funcs {
		n := convertFunc(f, cfg)
		if n > 0 {
			opt.OptimizeFunc(f)
		}
		out[f.Name] = n
	}
	return out
}

func convertFunc(f *ir.Func, cfg Config) int {
	converted := 0
	// Iterate to a fixpoint: converting one diamond can expose another
	// (nested ifs collapse inside-out).
	for {
		f.RecomputePreds()
		mergeChains(f)
		lv := ddg.ComputeLiveness(f)
		did := false
		for _, b := range f.Blocks {
			if tryConvert(f, b, cfg, lv) {
				converted++
				did = true
				f.RecomputePreds()
				mergeChains(f)
				lv = ddg.ComputeLiveness(f)
			}
		}
		if !did {
			return converted
		}
	}
}

// mergeChains splices single-predecessor jump targets into their
// predecessor, so a converted inner diamond's join chains into the outer
// arm and the outer diamond becomes recognizable.
func mergeChains(f *ir.Func) {
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Code != ir.Jmp {
				continue
			}
			cID := b.Succs[0]
			c := f.Blocks[cID]
			if cID == b.ID || cID == f.Entry || len(c.Preds) != 1 {
				continue
			}
			b.Ops = b.Ops[:len(b.Ops)-1]
			b.Ops = append(b.Ops, c.Ops...)
			b.Succs = append([]int(nil), c.Succs...)
			stub := f.NewOp(ir.Jmp)
			c.Ops = []*ir.Op{stub}
			c.Succs = []int{c.ID} // self-looping unreachable husk: pollutes no predecessor list
			f.RecomputePreds()
			changed = true
		}
	}
}

// hoistable reports whether the op may execute unconditionally: pure and
// unable to trap or touch memory. consts carries registers known to hold
// non-zero immediates (from the diamond head and earlier arm ops), which
// makes constant-divisor Div/Rem safe to hoist.
func hoistable(op *ir.Op, nonzero map[ir.Reg]bool) bool {
	if !op.Code.IsPure() {
		return false
	}
	switch op.Code {
	case ir.Load:
		return false
	case ir.Div, ir.Rem:
		return op.B != ir.NoReg && nonzero[op.B]
	}
	return true
}

// nonzeroConsts scans ops in order collecting registers that definitely
// hold a non-zero immediate at the end of the sequence.
func nonzeroConsts(into map[ir.Reg]bool, ops []*ir.Op) map[ir.Reg]bool {
	if into == nil {
		into = map[ir.Reg]bool{}
	}
	for _, op := range ops {
		if d := op.Def(); d != ir.NoReg {
			if op.Code == ir.MovI && op.Imm != 0 {
				into[d] = true
			} else {
				delete(into, d)
			}
		}
	}
	return into
}

// armInfo captures one convertible arm.
type armInfo struct {
	block *ir.Block // nil for an empty (fall-through) arm
	ops   []*ir.Op  // excludes the trailing jmp
}

// analyzeArm checks that candidate (a successor of b) is a convertible arm
// flowing into join. An arm equal to the join itself is the empty arm of a
// half diamond.
func analyzeArm(f *ir.Func, b *ir.Block, candidate, join int, cfg Config) (armInfo, bool) {
	if candidate == join {
		return armInfo{}, true // empty arm
	}
	arm := f.Blocks[candidate]
	if len(arm.Preds) != 1 || arm.Preds[0] != b.ID {
		return armInfo{}, false
	}
	term := arm.Terminator()
	if term == nil || term.Code != ir.Jmp || arm.Succs[0] != join {
		return armInfo{}, false
	}
	body := arm.Ops[:len(arm.Ops)-1]
	if len(body) > cfg.MaxArmOps {
		return armInfo{}, false
	}
	nonzero := nonzeroConsts(nil, b.Ops)
	for i, op := range body {
		if !hoistable(op, nonzero) {
			return armInfo{}, false
		}
		nonzero = nonzeroConsts(nonzero, body[i:i+1])
	}
	return armInfo{block: arm, ops: body}, true
}

// tryConvert recognizes and rewrites one diamond rooted at b.
func tryConvert(f *ir.Func, b *ir.Block, cfg Config, lv *ddg.Liveness) bool {
	term := b.Terminator()
	if term == nil || term.Code != ir.Br {
		return false
	}
	tID, fID := b.Succs[0], b.Succs[1]
	if tID == fID {
		return false
	}
	join := findJoin(f, tID, fID)
	if join < 0 || join == b.ID {
		return false
	}
	tArm, ok := analyzeArm(f, b, tID, join, cfg)
	if !ok {
		return false
	}
	fArm, ok := analyzeArm(f, b, fID, join, cfg)
	if !ok {
		return false
	}
	if tArm.block == nil && fArm.block == nil {
		return false // both arms empty: nothing to do (degenerate br)
	}
	cond := term.A

	// Clone each arm with renamed definitions so the original inputs stay
	// available for the Select merges, the arms cannot clobber each other
	// (they frequently write the same virtual registers), and the branch
	// condition survives both arms for the merges.
	tOps, tVals := cloneRenamed(f, tArm.ops)
	fOps, fVals := cloneRenamed(f, fArm.ops)

	// Registers needing a merge: defined by either arm AND observable at
	// the join. Arm-local temporaries die inside the arm and need no
	// Select (dead-code elimination reclaims their renamed copies).
	merged := map[ir.Reg]bool{}
	for r := range tVals {
		if lv.In[join][r] {
			merged[r] = true
		}
	}
	for r := range fVals {
		if lv.In[join][r] {
			merged[r] = true
		}
	}
	if len(merged) == 0 || len(merged) > cfg.MaxSelects {
		return false
	}

	// Rewrite b: drop the branch, inline both arms, merge, jump to join.
	b.Ops = b.Ops[:len(b.Ops)-1]
	b.Ops = append(b.Ops, tOps...)
	b.Ops = append(b.Ops, fOps...)
	regs := make([]ir.Reg, 0, len(merged))
	for r := range merged {
		regs = append(regs, r)
	}
	sortRegs(regs)
	for _, r := range regs {
		sel := f.NewOp(ir.Select)
		sel.Dest = r
		sel.A = cond
		sel.B = valueOf(tVals, r)
		sel.C = valueOf(fVals, r)
		b.Ops = append(b.Ops, sel)
	}
	jmp := f.NewOp(ir.Jmp)
	b.Ops = append(b.Ops, jmp)
	b.Succs = []int{join}

	// Detach consumed arm blocks (unreachable; cleaned by the optimizer).
	for _, arm := range []armInfo{tArm, fArm} {
		if arm.block != nil {
			detach(f, arm.block)
		}
	}
	return true
}

// findJoin returns the join block of the two branch successors, handling
// full diamonds (t -> j <- f), half diamonds (t -> f), and (f -> t).
func findJoin(f *ir.Func, tID, fID int) int {
	tj := soleJmpTarget(f.Blocks[tID])
	fj := soleJmpTarget(f.Blocks[fID])
	switch {
	case tj >= 0 && tj == fj:
		return tj // full diamond
	case tj == fID:
		return fID // half diamond: true arm only
	case fj == tID:
		return tID // half diamond: false arm only
	}
	return -1
}

func soleJmpTarget(b *ir.Block) int {
	if t := b.Terminator(); t != nil && t.Code == ir.Jmp {
		return b.Succs[0]
	}
	return -1
}

// cloneRenamed copies ops giving every definition a fresh register; uses of
// earlier in-arm definitions follow the renaming. It returns the clones and
// the final fresh register per originally-defined register.
func cloneRenamed(f *ir.Func, ops []*ir.Op) ([]*ir.Op, map[ir.Reg]ir.Reg) {
	cur := map[ir.Reg]ir.Reg{}
	rename := func(r ir.Reg) ir.Reg {
		if nr, ok := cur[r]; ok {
			return nr
		}
		return r
	}
	var out []*ir.Op
	for _, op := range ops {
		cp := op.Clone()
		cp.ID = f.NextOpID()
		f.SetNextOpID(cp.ID + 1)
		cp.A = rename(cp.A)
		cp.B = rename(cp.B)
		cp.C = rename(cp.C)
		for i, a := range cp.Args {
			cp.Args[i] = rename(a)
		}
		if d := cp.Def(); d != ir.NoReg {
			fresh := f.NewReg()
			cur[d] = fresh
			cp.Dest = fresh
		}
		out = append(out, cp)
	}
	return out, cur
}

func valueOf(vals map[ir.Reg]ir.Reg, r ir.Reg) ir.Reg {
	if v, ok := vals[r]; ok {
		return v
	}
	return r // arm did not define it: the original flows through
}

func sortRegs(rs []ir.Reg) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// detach empties a consumed arm into a self-looping unreachable husk (so it
// pollutes no live block's predecessor list) until unreachable-block
// elimination removes it.
func detach(f *ir.Func, b *ir.Block) {
	jmp := f.NewOp(ir.Jmp)
	b.Ops = []*ir.Op{jmp}
	b.Succs = []int{b.ID}
}
