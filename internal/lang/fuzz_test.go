package lang_test

import (
	"strings"
	"testing"

	"vliwvp/internal/interp"
	"vliwvp/internal/lang"
)

// FuzzCompile checks that the front end never panics on arbitrary input,
// that accepted programs validate, and that running them (bounded) never
// panics either.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		``,
		`func main() { return 0 }`,
		`var a[4] func main() { a[0] = 1 return a[0] }`,
		`func f(x float) float { return x * 2.0 } func main() { return int(f(1.5)) }`,
		`func main() { var x = 1 while x < 10 { x = x + 1 } return x }`,
		`func main() { for var i = 0; i < 3; i = i + 1 { print(i) } return 0 }`,
		`func main() { if 1 && 0 || 1 { return 7 } return 8 }`,
		`func main() { return 1 +`,
		`func main() { return "str" }`,
		`var`,
		`func`,
		`func main() { break }`,
		`func main() { return 0x1F ^ ~3 }`,
		"func main() { # comment\n return 1 }",
		`func main() { return ((((((1)))))) }`,
		`func main(((`,
		`var x[0] func main() { }`,
		`func main() { var a = 1.5e308 * 10.0 return int(a) }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Compile(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v\nsource: %q", err, src)
		}
		if prog.Func("main") == nil || len(prog.Func("main").Params) != 0 {
			return
		}
		m := interp.New(prog)
		m.MaxSteps = 10000
		_, _ = m.RunMain() // runtime errors fine; panics are not
	})
}

func TestPrecedenceTortureTable(t *testing.T) {
	// Each case encodes the full precedence ladder; values chosen so any
	// mis-association changes the result.
	// VL uses C precedence: || < && < | < ^ < & < ==/!= < relational <
	// shifts < additive < multiplicative < unary.
	cases := []struct {
		expr string
		want int64
	}{
		{"1 | 2 ^ 3 & 4", 1 | 2 ^ 3&4},
		{"1 + 2 * 3 - 4 / 2", 1 + 2*3 - 4/2},
		{"1 << 2 + 3", 32},        // + binds tighter than << (C, unlike Go)
		{"10 - 3 - 2", 5},         // left assoc
		{"100 / 10 / 2", 5},       // left assoc
		{"2 * 3 % 4", 2 * 3 % 4},  // same level, left assoc
		{"1 < 2 == 1", 1},         // (1<2) == 1
		{"7 & 3 == 3", 1},         // == binds tighter than &: 7 & 1
		{"-2 * 3", -6},            // unary binds tightest
		{"~1 & 3", (^1) & 3},      // unary then &
		{"1 + 2 < 4 && 2 > 1", 1}, // relational then logical
		{"0 || 1 && 0", 0},        // && over ||
	}
	for _, tc := range cases {
		got := int64(run(t, "func main() { return "+tc.expr+" }"))
		if got != tc.want {
			t.Errorf("%s = %d, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestLexerEdgeCases(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"func main() { return 0x0 }", 0},
		{"func main() { return 0xfF }", 255},
		{"func main() { return 007 }", 7}, // no octal: decimal with leading zeros
		{"func main() {return 1+2}", 3},   // no spaces
		{"func main()\t{\treturn\t4\t}", 4},
		{"func main() { return 2 }\n\n\n", 2},
		{"\n\n\nfunc main() { return 3 }", 3},
	}
	for _, tc := range cases {
		if got := int64(run(t, tc.src)); got != tc.want {
			t.Errorf("%q = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestFloatLiteralForms(t *testing.T) {
	cases := []struct {
		lit  string
		want int64 // int(lit * 1000)
	}{
		{"1.5", 1500},
		{"0.25", 250},
		{"2.0e2", 200000},
		{"5.0E-1", 500},
		{"1e3", 1000000},
	}
	for _, tc := range cases {
		src := "func main() { return int(" + tc.lit + " * 1000.0) }"
		if got := int64(run(t, src)); got != tc.want {
			t.Errorf("%s -> %d, want %d", tc.lit, got, tc.want)
		}
	}
}

func TestDeeplyNestedStructures(t *testing.T) {
	// Deep nesting must neither blow the parser nor miscompile.
	var sb strings.Builder
	sb.WriteString("func main() { var x = 0\n")
	depth := 40
	for i := 0; i < depth; i++ {
		sb.WriteString("if x >= 0 {\n x = x + 1\n")
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("}\n")
	}
	sb.WriteString("return x }")
	if got := int64(run(t, sb.String())); got != int64(depth) {
		t.Errorf("nested ifs = %d, want %d", got, depth)
	}

	expr := "1"
	for i := 0; i < 60; i++ {
		expr = "(" + expr + " + 1)"
	}
	if got := int64(run(t, "func main() { return "+expr+" }")); got != 61 {
		t.Errorf("nested parens = %d, want 61", got)
	}
}
