package lang

// Type is a VL value type.
type Type uint8

const (
	TInt Type = iota
	TFloat
)

func (t Type) String() string {
	if t == TFloat {
		return "float"
	}
	return "int"
}

// File is a parsed compilation unit.
type File struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global scalar or array.
type GlobalDecl struct {
	Pos     Pos
	Name    string
	IsArray bool
	Size    int64 // array length (words)
	Elem    Type
	Init    Expr // optional constant initializer (scalars only)
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []ParamDecl
	Ret    Type
	HasRet bool // a "float"/"int" annotation was present
	Body   *BlockStmt
}

// ParamDecl is one formal parameter.
type ParamDecl struct {
	Pos  Pos
	Name string
	Type Type
}

// Stmt is implemented by every statement node.
type Stmt interface{ stmtPos() Pos }

// Expr is implemented by every expression node.
type Expr interface{ exprPos() Pos }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarStmt declares and initializes a local scalar.
type VarStmt struct {
	Pos  Pos
	Name string
	Init Expr
}

// AssignStmt assigns to a scalar variable.
type AssignStmt struct {
	Pos   Pos
	Name  string
	Value Expr
}

// StoreStmt assigns to an array element.
type StoreStmt struct {
	Pos   Pos
	Name  string
	Index Expr
	Value Expr
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is for init; cond; post { body }.
type ForStmt struct {
	Pos  Pos
	Init Stmt // VarStmt, AssignStmt, or StoreStmt; may be nil
	Cond Expr
	Post Stmt // may be nil
	Body *BlockStmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's next iteration.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt returns from the function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // may be nil
}

// ExprStmt evaluates a call for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Pos Pos
	V   float64
}

// Ident references a variable.
type Ident struct {
	Pos  Pos
	Name string
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// CallExpr calls a function or the print/fprint intrinsics.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// ConvExpr converts between int and float: int(e) or float(e).
type ConvExpr struct {
	Pos Pos
	To  Type
	X   Expr
}

// UnaryExpr applies -, !, or ~.
type UnaryExpr struct {
	Pos Pos
	Op  tokKind
	X   Expr
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Pos  Pos
	Op   tokKind
	L, R Expr
}

func (s *BlockStmt) stmtPos() Pos    { return s.Pos }
func (s *VarStmt) stmtPos() Pos      { return s.Pos }
func (s *AssignStmt) stmtPos() Pos   { return s.Pos }
func (s *StoreStmt) stmtPos() Pos    { return s.Pos }
func (s *IfStmt) stmtPos() Pos       { return s.Pos }
func (s *WhileStmt) stmtPos() Pos    { return s.Pos }
func (s *ForStmt) stmtPos() Pos      { return s.Pos }
func (s *BreakStmt) stmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) stmtPos() Pos { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos   { return s.Pos }
func (s *ExprStmt) stmtPos() Pos     { return s.Pos }

func (e *IntLit) exprPos() Pos     { return e.Pos }
func (e *FloatLit) exprPos() Pos   { return e.Pos }
func (e *Ident) exprPos() Pos      { return e.Pos }
func (e *IndexExpr) exprPos() Pos  { return e.Pos }
func (e *CallExpr) exprPos() Pos   { return e.Pos }
func (e *ConvExpr) exprPos() Pos   { return e.Pos }
func (e *UnaryExpr) exprPos() Pos  { return e.Pos }
func (e *BinaryExpr) exprPos() Pos { return e.Pos }
