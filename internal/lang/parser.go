package lang

type parser struct {
	toks []token
	pos  int
}

// Parse turns VL source text into a File.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) curPos() Pos { return Pos{p.cur().line, p.cur().col} }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokKind) bool {
	if p.cur().kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.cur().kind != k {
		return token{}, errf(p.curPos(), "expected %s, found %s", k, p.cur().kind)
	}
	return p.advance(), nil
}

func (p *parser) parseFile() (*File, error) {
	f := &File{}
	for p.cur().kind != tEOF {
		switch p.cur().kind {
		case tVar:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
		case tFunc:
			fn, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, errf(p.curPos(), "expected var or func at top level, found %s", p.cur().kind)
		}
	}
	return f, nil
}

func (p *parser) parseGlobal() (*GlobalDecl, error) {
	pos := p.curPos()
	p.advance() // var
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Pos: pos, Name: name.text, Elem: TInt}
	if p.accept(tLBrack) {
		size, err := p.expect(tInt)
		if err != nil {
			return nil, err
		}
		if size.ival <= 0 {
			return nil, errf(pos, "array %s must have positive size", g.Name)
		}
		if _, err := p.expect(tRBrack); err != nil {
			return nil, err
		}
		g.IsArray = true
		g.Size = size.ival
	}
	if p.accept(tKwFloat) {
		g.Elem = TFloat
	} else {
		p.accept(tKwInt)
	}
	if p.accept(tAssign) {
		if g.IsArray {
			return nil, errf(pos, "array %s cannot have an initializer", g.Name)
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		g.Init = init
	}
	return g, nil
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	pos := p.curPos()
	p.advance() // func
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	fd := &FuncDecl{Pos: pos, Name: name.text, Ret: TInt}
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	for p.cur().kind != tRParen {
		if len(fd.Params) > 0 {
			if _, err := p.expect(tComma); err != nil {
				return nil, err
			}
		}
		ppos := p.curPos()
		pname, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		pd := ParamDecl{Pos: ppos, Name: pname.text, Type: TInt}
		if p.accept(tKwFloat) {
			pd.Type = TFloat
		} else {
			p.accept(tKwInt)
		}
		fd.Params = append(fd.Params, pd)
	}
	p.advance() // )
	if p.accept(tKwFloat) {
		fd.Ret, fd.HasRet = TFloat, true
	} else if p.accept(tKwInt) {
		fd.Ret, fd.HasRet = TInt, true
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	pos := p.curPos()
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: pos}
	for p.cur().kind != tRBrace {
		if p.cur().kind == tEOF {
			return nil, errf(pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.curPos()
	switch p.cur().kind {
	case tVar:
		p.advance()
		name, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tAssign); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &VarStmt{Pos: pos, Name: name.text, Init: init}, nil

	case tIf:
		return p.parseIf()

	case tWhile:
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil

	case tFor:
		p.advance()
		var init, post Stmt
		var err error
		if p.cur().kind != tSemi {
			init, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		if p.cur().kind != tLBrace {
			post, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Pos: pos, Init: init, Cond: cond, Post: post, Body: body}, nil

	case tBreak:
		p.advance()
		return &BreakStmt{Pos: pos}, nil

	case tContinue:
		p.advance()
		return &ContinueStmt{Pos: pos}, nil

	case tReturn:
		p.advance()
		r := &ReturnStmt{Pos: pos}
		// A return value starts any expression; detect by token kind.
		switch p.cur().kind {
		case tRBrace, tEOF:
		default:
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = v
		}
		return r, nil

	default:
		return p.parseSimpleStmt()
	}
}

// parseIf handles else-if chains.
func (p *parser) parseIf() (Stmt, error) {
	pos := p.curPos()
	p.advance() // if
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.accept(tElse) {
		if p.cur().kind == tIf {
			el, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = el
		} else {
			el, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = el
		}
	}
	return s, nil
}

// parseSimpleStmt parses assignment, array store, var decl, or a call.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	pos := p.curPos()
	if p.cur().kind == tVar {
		return p.parseStmt()
	}
	name, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tAssign:
		p.advance()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, Name: name.text, Value: v}, nil
	case tLBrack:
		p.advance()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBrack); err != nil {
			return nil, err
		}
		if _, err := p.expect(tAssign); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &StoreStmt{Pos: pos, Name: name.text, Index: idx, Value: v}, nil
	case tLParen:
		call, err := p.parseCall(pos, name.text)
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: call}, nil
	default:
		return nil, errf(p.curPos(), "expected =, [, or ( after %q, found %s", name.text, p.cur().kind)
	}
}

func (p *parser) parseCall(pos Pos, name string) (*CallExpr, error) {
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	c := &CallExpr{Pos: pos, Name: name}
	for p.cur().kind != tRParen {
		if len(c.Args) > 0 {
			if _, err := p.expect(tComma); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Args = append(c.Args, a)
	}
	p.advance() // )
	return c, nil
}

// Operator precedence, loosest first.
var binPrec = map[tokKind]int{
	tOrOr:   1,
	tAndAnd: 2,
	tPipe:   3,
	tCaret:  4,
	tAmp:    5,
	tEq:     6, tNe: 6,
	tLt: 7, tLe: 7, tGt: 7, tGe: 7,
	tShl: 8, tShr: 8,
	tPlus: 9, tMinus: 9,
	tStar: 10, tSlash: 10, tPercent: 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		pos := p.curPos()
		p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: pos, Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	pos := p.curPos()
	switch p.cur().kind {
	case tMinus, tBang, tTilde:
		op := p.advance().kind
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.curPos()
	switch p.cur().kind {
	case tInt:
		t := p.advance()
		return &IntLit{Pos: pos, V: t.ival}, nil
	case tFloat:
		t := p.advance()
		return &FloatLit{Pos: pos, V: t.fval}, nil
	case tLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tKwInt, tKwFloat:
		to := TInt
		if p.advance().kind == tKwFloat {
			to = TFloat
		}
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return &ConvExpr{Pos: pos, To: to, X: x}, nil
	case tIdent:
		name := p.advance().text
		switch p.cur().kind {
		case tLParen:
			return p.parseCall(pos, name)
		case tLBrack:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBrack); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: pos, Name: name, Index: idx}, nil
		default:
			return &Ident{Pos: pos, Name: name}, nil
		}
	default:
		return nil, errf(pos, "expected expression, found %s", p.cur().kind)
	}
}
