package lang

import (
	"strconv"
	"strings"
)

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) nextByte() byte {
	c := l.peekByte()
	if c == 0 {
		return 0
	}
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.nextByte()
		case c == '#': // line comment
			for l.peekByte() != '\n' && l.peekByte() != 0 {
				l.nextByte()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.peekByte() != '\n' && l.peekByte() != 0 {
				l.nextByte()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	tok := token{line: l.line, col: l.col}
	c := l.peekByte()
	switch {
	case c == 0:
		tok.kind = tEOF
		return tok, nil

	case isIdentStart(c):
		start := l.pos
		for isIdentCont(l.peekByte()) {
			l.nextByte()
		}
		tok.text = l.src[start:l.pos]
		if kw, ok := keywords[tok.text]; ok {
			tok.kind = kw
		} else {
			tok.kind = tIdent
		}
		return tok, nil

	case isDigit(c):
		start := l.pos
		for isDigit(l.peekByte()) {
			l.nextByte()
		}
		isFloat := false
		if l.peekByte() == '.' {
			isFloat = true
			l.nextByte()
			for isDigit(l.peekByte()) {
				l.nextByte()
			}
		}
		if p := l.peekByte(); p == 'e' || p == 'E' {
			isFloat = true
			l.nextByte()
			if s := l.peekByte(); s == '+' || s == '-' {
				l.nextByte()
			}
			for isDigit(l.peekByte()) {
				l.nextByte()
			}
		}
		text := l.src[start:l.pos]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return tok, errf(Pos{tok.line, tok.col}, "bad float literal %q: %v", text, err)
			}
			tok.kind, tok.fval = tFloat, f
		} else {
			// Hex literals: 0x prefix.
			if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
				v, err := strconv.ParseInt(text[2:], 16, 64)
				if err != nil {
					return tok, errf(Pos{tok.line, tok.col}, "bad hex literal %q: %v", text, err)
				}
				tok.kind, tok.ival = tInt, v
				return tok, nil
			}
			v, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return tok, errf(Pos{tok.line, tok.col}, "bad int literal %q: %v", text, err)
			}
			tok.kind, tok.ival = tInt, v
		}
		// Handle "0x..." where scanner stopped at 'x' because it is not a digit.
		if !isFloat && l.peekByte() == 'x' && text == "0" {
			l.nextByte()
			start2 := l.pos
			for isHexDigit(l.peekByte()) {
				l.nextByte()
			}
			v, err := strconv.ParseInt(l.src[start2:l.pos], 16, 64)
			if err != nil {
				return tok, errf(Pos{tok.line, tok.col}, "bad hex literal: %v", err)
			}
			tok.ival = v
		}
		return tok, nil

	case c == '"':
		l.nextByte()
		start := l.pos
		for l.peekByte() != '"' && l.peekByte() != 0 {
			l.nextByte()
		}
		if l.peekByte() == 0 {
			return tok, errf(Pos{tok.line, tok.col}, "unterminated string")
		}
		tok.kind, tok.text = tString, l.src[start:l.pos]
		l.nextByte()
		return tok, nil
	}

	l.nextByte()
	two := func(second byte, ifTwo, ifOne tokKind) token {
		if l.peekByte() == second {
			l.nextByte()
			tok.kind = ifTwo
		} else {
			tok.kind = ifOne
		}
		return tok
	}
	switch c {
	case '(':
		tok.kind = tLParen
	case ')':
		tok.kind = tRParen
	case '{':
		tok.kind = tLBrace
	case '}':
		tok.kind = tRBrace
	case '[':
		tok.kind = tLBrack
	case ']':
		tok.kind = tRBrack
	case ',':
		tok.kind = tComma
	case ';':
		tok.kind = tSemi
	case '+':
		tok.kind = tPlus
	case '-':
		tok.kind = tMinus
	case '*':
		tok.kind = tStar
	case '/':
		tok.kind = tSlash
	case '%':
		tok.kind = tPercent
	case '^':
		tok.kind = tCaret
	case '~':
		tok.kind = tTilde
	case '=':
		return two('=', tEq, tAssign), nil
	case '!':
		return two('=', tNe, tBang), nil
	case '<':
		if l.peekByte() == '<' {
			l.nextByte()
			tok.kind = tShl
			return tok, nil
		}
		return two('=', tLe, tLt), nil
	case '>':
		if l.peekByte() == '>' {
			l.nextByte()
			tok.kind = tShr
			return tok, nil
		}
		return two('=', tGe, tGt), nil
	case '&':
		return two('&', tAndAnd, tAmp), nil
	case '|':
		return two('|', tOrOr, tPipe), nil
	default:
		return tok, errf(Pos{tok.line, tok.col}, "unexpected character %q", string(c))
	}
	return tok, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			return toks, nil
		}
	}
}
