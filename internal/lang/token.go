// Package lang implements the VL front end: a small imperative language
// with int/float scalars, global arrays, functions, and structured control
// flow, compiled to the internal/ir representation.
//
// VL exists so the benchmark kernels (internal/workload) can be expressed as
// real programs that the whole pipeline — optimizer, dependence analysis,
// value profiling, speculation, VLIW scheduling, dual-engine simulation —
// processes end to end, playing the role the SPEC95 sources played for the
// paper's Trimaran setup.
//
// Grammar (EBNF):
//
//	program   = { decl } .
//	decl      = "var" ident [ "[" intlit "]" ] [ "float" ] [ "=" constexpr ]
//	          | "func" ident "(" [ param { "," param } ] ")" [ "float" | "int" ] block .
//	param     = ident [ "float" | "int" ] .
//	block     = "{" { stmt } "}" .
//	stmt      = "var" ident "=" expr
//	          | ident "=" expr
//	          | ident "[" expr "]" "=" expr
//	          | "if" expr block [ "else" ( block | ifstmt ) ]
//	          | "while" expr block
//	          | "for" simplestmt ";" expr ";" simplestmt block
//	          | "break" | "continue"
//	          | "return" [ expr ]
//	          | callexpr .
//
// Expressions use C precedence over: || && | ^ & == != < <= > >= << >>
// + - * / % and unary - ! ~, with primaries: literals, variables, array
// indexing, calls, parentheses, and the conversions int(e) / float(e).
package lang

import "fmt"

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tString

	// keywords
	tVar
	tFunc
	tIf
	tElse
	tWhile
	tFor
	tBreak
	tContinue
	tReturn
	tKwInt
	tKwFloat

	// punctuation and operators
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBrack
	tRBrack
	tComma
	tSemi
	tAssign
	tPlus
	tMinus
	tStar
	tSlash
	tPercent
	tAmp
	tPipe
	tCaret
	tTilde
	tShl
	tShr
	tAndAnd
	tOrOr
	tBang
	tEq
	tNe
	tLt
	tLe
	tGt
	tGe
)

var tokNames = map[tokKind]string{
	tEOF: "EOF", tIdent: "identifier", tInt: "int literal",
	tFloat: "float literal", tString: "string literal",
	tVar: "var", tFunc: "func", tIf: "if", tElse: "else", tWhile: "while",
	tFor: "for", tBreak: "break", tContinue: "continue", tReturn: "return",
	tKwInt: "int", tKwFloat: "float",
	tLParen: "(", tRParen: ")", tLBrace: "{", tRBrace: "}",
	tLBrack: "[", tRBrack: "]", tComma: ",", tSemi: ";", tAssign: "=",
	tPlus: "+", tMinus: "-", tStar: "*", tSlash: "/", tPercent: "%",
	tAmp: "&", tPipe: "|", tCaret: "^", tTilde: "~", tShl: "<<", tShr: ">>",
	tAndAnd: "&&", tOrOr: "||", tBang: "!",
	tEq: "==", tNe: "!=", tLt: "<", tLe: "<=", tGt: ">", tGe: ">=",
}

func (k tokKind) String() string { return tokNames[k] }

var keywords = map[string]tokKind{
	"var": tVar, "func": tFunc, "if": tIf, "else": tElse, "while": tWhile,
	"for": tFor, "break": tBreak, "continue": tContinue, "return": tReturn,
	"int": tKwInt, "float": tKwFloat,
}

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
	col  int
}

// Pos identifies a source location for error reporting.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a positioned front-end diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(p Pos, format string, args ...any) error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
}
