package lang_test

import (
	"strings"
	"testing"

	"vliwvp/internal/interp"
	"vliwvp/internal/lang"
)

// run compiles src and executes main(), returning its result.
func run(t *testing.T, src string) uint64 {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := interp.New(prog)
	v, err := m.RunMain()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v
}

// runOut compiles src, executes main(), and returns the print output.
func runOut(t *testing.T, src string) []string {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := interp.New(prog)
	if _, err := m.RunMain(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m.Output
}

func wantCompileError(t *testing.T, src, frag string) {
	t.Helper()
	_, err := lang.Compile(src)
	if err == nil {
		t.Fatalf("Compile accepted bad program, want error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("Compile error = %q, want it to contain %q", err, frag)
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want int64
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"-7 / 2", -3},
		{"1 << 10", 1024},
		{"1024 >> 3", 128},
		{"-8 >> 1", -4}, // arithmetic shift
		{"12 & 10", 8},
		{"12 | 10", 14},
		{"12 ^ 10", 6},
		{"~0", -1},
		{"-(3 + 4)", -7},
		{"5 - 2 - 1", 2}, // left assoc
		{"0x1F", 31},
	}
	for _, tc := range tests {
		got := int64(run(t, "func main() { return "+tc.expr+" }"))
		if got != tc.want {
			t.Errorf("%s = %d, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	tests := []struct {
		expr string
		want int64
	}{
		{"3 < 4", 1}, {"4 < 3", 0}, {"3 <= 3", 1}, {"3 >= 4", 0},
		{"3 == 3", 1}, {"3 != 3", 0},
		{"1 && 2", 1}, {"1 && 0", 0}, {"0 && 1", 0},
		{"0 || 0", 0}, {"0 || 5", 1}, {"5 || 0", 1},
		{"!0", 1}, {"!7", 0},
	}
	for _, tc := range tests {
		got := int64(run(t, "func main() { return "+tc.expr+" }"))
		if got != tc.want {
			t.Errorf("%s = %d, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	src := `
var hits = 0
func bump() { hits = hits + 1 return 1 }
func main() {
	var a = 0 && bump()
	var b = 1 || bump()
	return hits * 10 + a + b
}`
	if got := int64(run(t, src)); got != 1 {
		t.Errorf("got %d, want 1 (bump must not run, a=0, b=1)", got)
	}
}

func TestFloatArithmetic(t *testing.T) {
	src := `
func main() {
	var x = 1.5
	var y = 2.25
	var z = x * y + 0.75
	if z == 4.125 { return 1 }
	return 0
}`
	if got := run(t, src); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
}

func TestConversions(t *testing.T) {
	src := `
func main() {
	var x = float(7)
	var y = x / 2.0
	return int(y * 10.0)
}`
	if got := int64(run(t, src)); got != 35 {
		t.Errorf("got %d, want 35", got)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
func main() {
	var s = 0
	var i = 1
	while i <= 10 {
		s = s + i
		i = i + 1
	}
	return s
}`
	if got := run(t, src); got != 55 {
		t.Errorf("got %d, want 55", got)
	}
}

func TestForLoopWithBreakContinue(t *testing.T) {
	src := `
func main() {
	var s = 0
	for var i = 0; i < 100; i = i + 1 {
		if i % 2 == 1 { continue }
		if i >= 10 { break }
		s = s + i
	}
	return s
}`
	if got := run(t, src); got != 20 { // 0+2+4+6+8
		t.Errorf("got %d, want 20", got)
	}
}

func TestNestedLoops(t *testing.T) {
	src := `
func main() {
	var s = 0
	for var i = 0; i < 5; i = i + 1 {
		for var j = 0; j < 5; j = j + 1 {
			if j > i { break }
			s = s + 1
		}
	}
	return s
}`
	if got := run(t, src); got != 15 {
		t.Errorf("got %d, want 15", got)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
func classify(x) {
	if x < 0 { return 0 }
	else if x == 0 { return 1 }
	else if x < 10 { return 2 }
	else { return 3 }
}
func main() {
	return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50)
}`
	if got := run(t, src); got != 123 {
		t.Errorf("got %d, want 123", got)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
var total = 100
var a[10]
func main() {
	for var i = 0; i < 10; i = i + 1 {
		a[i] = i * i
	}
	var s = total
	for var i = 0; i < 10; i = i + 1 {
		s = s + a[i]
	}
	return s
}`
	if got := run(t, src); got != 385 { // 100 + 285
		t.Errorf("got %d, want 385", got)
	}
}

func TestFloatArray(t *testing.T) {
	src := `
var v[4] float
func main() {
	v[0] = 1.5
	v[1] = 2.5
	v[2] = v[0] + v[1]
	return int(v[2] * 2.0)
}`
	if got := run(t, src); got != 8 {
		t.Errorf("got %d, want 8", got)
	}
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	src := `
func fib(n) {
	if n < 2 { return n }
	return fib(n - 1) + fib(n - 2)
}
func main() { return fib(12) }`
	if got := run(t, src); got != 144 {
		t.Errorf("fib(12) = %d, want 144", got)
	}
}

func TestFloatParamsAndReturn(t *testing.T) {
	src := `
func hypot2(a float, b float) float {
	return a * a + b * b
}
func main() { return int(hypot2(3.0, 4.0)) }`
	if got := run(t, src); got != 25 {
		t.Errorf("got %d, want 25", got)
	}
}

func TestPrintOutput(t *testing.T) {
	src := `
func main() {
	print(42)
	print(-1)
	print(2.5)
}`
	out := runOut(t, src)
	want := []string{"42", "-1", "2.5"}
	if len(out) != len(want) {
		t.Fatalf("output = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, out[i], want[i])
		}
	}
}

func TestImplicitReturnZero(t *testing.T) {
	src := `
func noop() { }
func main() {
	var x = noop()
	return x + 7
}`
	if got := run(t, src); got != 7 {
		t.Errorf("got %d, want 7", got)
	}
}

func TestShadowingInNestedScopes(t *testing.T) {
	src := `
func main() {
	var x = 1
	if 1 {
		var x = 2
		x = x + 1
	}
	return x
}`
	if got := run(t, src); got != 1 {
		t.Errorf("got %d, want 1 (inner x must shadow)", got)
	}
}

func TestGlobalScalarInit(t *testing.T) {
	src := `
var g = 41
var h float = 1.0
func main() { return g + int(h) }`
	if got := run(t, src); got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"undefined var", `func main() { return x }`, "undefined"},
		{"undefined func", `func main() { return f() }`, "undefined function"},
		{"arity", `func f(a) { return a } func main() { return f(1, 2) }`, "takes 1 arguments"},
		{"type mismatch", `func main() { return 1 + 2.0 }`, "mismatch"},
		{"float rem", `func main() { var x = 1.0 % 2.0 return 0 }`, "requires int"},
		{"assign type", `func main() { var x = 1 x = 2.0 return x }`, "cannot assign"},
		{"break outside", `func main() { break }`, "break outside loop"},
		{"continue outside", `func main() { continue }`, "continue outside loop"},
		{"redeclare", `func main() { var x = 1 var x = 2 return x }`, "redeclared"},
		{"dup func", `func f() { } func f() { } func main() { }`, "duplicate function"},
		{"dup global", `var g var g func main() { }`, "duplicate global"},
		{"array no index", `var a[4] func main() { return a }`, "without index"},
		{"index scalar", `var g func main() { return g[0] }`, "not a global array"},
		{"float index", `var a[4] func main() { return a[1.0] }`, "index must be int"},
		{"return mismatch", `func f() float { return 1 } func main() { }`, "return type"},
		{"missing return value", `func f() float { return } func main() { }`, "missing return"},
		{"bad token", `func main() { return $ }`, "unexpected character"},
		{"unterminated block", `func main() { return 0`, "unterminated"},
		{"array init", `var a[4] = 3 func main() { }`, "cannot have an initializer"},
		{"if cond float", `func main() { if 1.0 { } return 0 }`, "must be int"},
		{"print arity", `func main() { print(1, 2) }`, "exactly one"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCompileError(t, tc.src, tc.frag)
		})
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"div zero", `func main() { var z = 0 return 1 / z }`, "divide by zero"},
		{"rem zero", `func main() { var z = 0 return 1 % z }`, "remainder by zero"},
		{"oob load", `var a[4] func main() { return a[1000000] }`, "out of range"},
		{"oob store", `var a[4] func main() { a[0-50] = 1 return 0 }`, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := lang.Compile(tc.src)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			m := interp.New(prog)
			_, err = m.RunMain()
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("Run err = %v, want containing %q", err, tc.frag)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	prog, err := lang.Compile(`func main() { while 1 { } return 0 }`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	m.MaxSteps = 1000
	if _, err := m.RunMain(); err != interp.ErrStepLimit {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	prog, err := lang.Compile(`func f(n) { return f(n + 1) } func main() { return f(0) }`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	if _, err := m.RunMain(); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v, want call depth error", err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
# hash comment
// slash comment
func main() { // trailing
	return 9 # after code
}`
	if got := run(t, src); got != 9 {
		t.Errorf("got %d, want 9", got)
	}
}

func TestProgramValidatesAfterLowering(t *testing.T) {
	src := `
var data[64]
func helper(x, y float) float { return y * float(x) }
func main() {
	var acc = 0.0
	for var i = 0; i < 64; i = i + 1 {
		data[i] = (i * 31) % 17
	}
	for var i = 0; i < 64; i = i + 1 {
		if data[i] > 8 && i % 3 != 0 {
			acc = acc + helper(i, 1.5)
		}
	}
	return int(acc)
}`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m := interp.New(prog)
	if _, err := m.RunMain(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
