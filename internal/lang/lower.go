package lang

import (
	"fmt"

	"vliwvp/internal/ir"
)

// Compile parses, type-checks, and lowers VL source into a linked,
// validated IR program.
func Compile(src string) (*ir.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(file)
}

// funcSig is a function's externally visible type.
type funcSig struct {
	params []Type
	ret    Type
}

// globalInfo records a global's shape for lookup during lowering.
type globalInfo struct {
	decl *GlobalDecl
}

// Lower translates a parsed File into IR.
func Lower(file *File) (*ir.Program, error) {
	prog := ir.NewProgram()
	globals := make(map[string]globalInfo)
	sigs := make(map[string]funcSig)

	for _, g := range file.Globals {
		if _, dup := globals[g.Name]; dup {
			return nil, errf(g.Pos, "duplicate global %q", g.Name)
		}
		globals[g.Name] = globalInfo{decl: g}
		size := 1
		if g.IsArray {
			size = int(g.Size)
		}
		irg := &ir.Global{Name: g.Name, Size: size}
		if g.Init != nil {
			v, typ, err := constEval(g.Init)
			if err != nil {
				return nil, err
			}
			if typ != g.Elem {
				return nil, errf(g.Pos, "initializer for %s has type %s, want %s", g.Name, typ, g.Elem)
			}
			irg.Init = []uint64{v}
		}
		if err := prog.AddGlobal(irg); err != nil {
			return nil, errf(g.Pos, "%v", err)
		}
	}

	for _, fd := range file.Funcs {
		if _, dup := sigs[fd.Name]; dup {
			return nil, errf(fd.Pos, "duplicate function %q", fd.Name)
		}
		sig := funcSig{ret: fd.Ret}
		for _, p := range fd.Params {
			sig.params = append(sig.params, p.Type)
		}
		sigs[fd.Name] = sig
	}

	for _, fd := range file.Funcs {
		fl := &funcLowerer{
			globals: globals,
			sigs:    sigs,
			decl:    fd,
		}
		f, err := fl.lower()
		if err != nil {
			return nil, err
		}
		if err := prog.AddFunc(f); err != nil {
			return nil, errf(fd.Pos, "%v", err)
		}
	}

	prog.Link()
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("internal lowering error: %w", err)
	}
	return prog, nil
}

// constEval folds a constant initializer expression.
func constEval(e Expr) (uint64, Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return uint64(x.V), TInt, nil
	case *FloatLit:
		return f64bits(x.V), TFloat, nil
	case *UnaryExpr:
		if x.Op == tMinus {
			v, t, err := constEval(x.X)
			if err != nil {
				return 0, t, err
			}
			if t == TInt {
				return uint64(-int64(v)), TInt, nil
			}
			return f64bits(-f64val(v)), TFloat, nil
		}
	}
	return 0, TInt, errf(e.exprPos(), "global initializer must be a literal")
}

type localVar struct {
	reg ir.Reg
	typ Type
}

type loopCtx struct {
	contTarget  int
	breakTarget int
}

type funcLowerer struct {
	globals map[string]globalInfo
	sigs    map[string]funcSig
	decl    *FuncDecl

	f      *ir.Func
	cur    *ir.Block
	scopes []map[string]localVar
	types  map[ir.Reg]Type // result type of each register
	loops  []loopCtx
}

func (fl *funcLowerer) lower() (*ir.Func, error) {
	fd := fl.decl
	fl.f = ir.NewFunc(fd.Name)
	fl.f.RetF = fd.Ret == TFloat
	fl.cur = fl.f.Blocks[0]
	fl.types = make(map[ir.Reg]Type)
	fl.pushScope()

	for _, p := range fd.Params {
		r := fl.f.NewReg()
		fl.f.Params = append(fl.f.Params, ir.Param{Name: p.Name, Float: p.Type == TFloat})
		fl.types[r] = p.Type
		if err := fl.declare(p.Pos, p.Name, localVar{reg: r, typ: p.Type}); err != nil {
			return nil, err
		}
	}

	if err := fl.lowerBlock(fd.Body); err != nil {
		return nil, err
	}
	fl.terminateOpenBlocks()
	fl.f.RecomputePreds()
	return fl.f, nil
}

// terminateOpenBlocks appends an implicit "return 0" to any block the
// lowering left open (fall-off-the-end paths and dead blocks).
func (fl *funcLowerer) terminateOpenBlocks() {
	for _, b := range fl.f.Blocks {
		if b.Terminator() != nil || len(b.Succs) != 0 {
			continue
		}
		code := ir.MovI
		if fl.decl.Ret == TFloat {
			code = ir.FMovI
		}
		z := fl.f.NewOp(code)
		z.Dest = fl.newTyped(fl.decl.Ret)
		ret := fl.f.NewOp(ir.Ret)
		ret.A = z.Dest
		b.Ops = append(b.Ops, z, ret)
	}
}

func (fl *funcLowerer) pushScope() {
	fl.scopes = append(fl.scopes, make(map[string]localVar))
}

func (fl *funcLowerer) popScope() {
	fl.scopes = fl.scopes[:len(fl.scopes)-1]
}

func (fl *funcLowerer) declare(pos Pos, name string, v localVar) error {
	top := fl.scopes[len(fl.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(pos, "%q redeclared in this scope", name)
	}
	top[name] = v
	return nil
}

func (fl *funcLowerer) lookup(name string) (localVar, bool) {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if v, ok := fl.scopes[i][name]; ok {
			return v, true
		}
	}
	return localVar{}, false
}

func (fl *funcLowerer) newTyped(t Type) ir.Reg {
	r := fl.f.NewReg()
	fl.types[r] = t
	return r
}

// emit2 appends an op with dest/a/b to the current block and returns it.
func (fl *funcLowerer) emit2(code ir.Opcode, dest, a, b ir.Reg) *ir.Op {
	op := fl.f.NewOp(code)
	op.Dest, op.A, op.B = dest, a, b
	fl.cur.Ops = append(fl.cur.Ops, op)
	return op
}

// jmpTo closes the current block with a jump and switches to target.
func (fl *funcLowerer) jmpTo(target *ir.Block) {
	op := fl.f.NewOp(ir.Jmp)
	fl.cur.Ops = append(fl.cur.Ops, op)
	fl.cur.Succs = []int{target.ID}
	fl.cur = target
}

// brTo closes the current block with a conditional branch.
func (fl *funcLowerer) brTo(cond ir.Reg, then, els *ir.Block) {
	op := fl.f.NewOp(ir.Br)
	op.A = cond
	fl.cur.Ops = append(fl.cur.Ops, op)
	fl.cur.Succs = []int{then.ID, els.ID}
}

func (fl *funcLowerer) lowerBlock(b *BlockStmt) error {
	fl.pushScope()
	defer fl.popScope()
	for _, s := range b.Stmts {
		if err := fl.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fl *funcLowerer) lowerStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return fl.lowerBlock(st)

	case *VarStmt:
		r, t, err := fl.lowerExpr(st.Init)
		if err != nil {
			return err
		}
		dst := fl.newTyped(t)
		mv := ir.Mov
		if t == TFloat {
			mv = ir.FMov
		}
		fl.emit2(mv, dst, r, ir.NoReg)
		return fl.declare(st.Pos, st.Name, localVar{reg: dst, typ: t})

	case *AssignStmt:
		v, vt, err := fl.lowerExpr(st.Value)
		if err != nil {
			return err
		}
		if lv, ok := fl.lookup(st.Name); ok {
			if lv.typ != vt {
				return errf(st.Pos, "cannot assign %s to %s %q", vt, lv.typ, st.Name)
			}
			mv := ir.Mov
			if vt == TFloat {
				mv = ir.FMov
			}
			fl.emit2(mv, lv.reg, v, ir.NoReg)
			return nil
		}
		g, ok := fl.globals[st.Name]
		if !ok {
			return errf(st.Pos, "undefined variable %q", st.Name)
		}
		if g.decl.IsArray {
			return errf(st.Pos, "cannot assign to array %q without an index", st.Name)
		}
		if g.decl.Elem != vt {
			return errf(st.Pos, "cannot assign %s to %s global %q", vt, g.decl.Elem, st.Name)
		}
		addr := fl.newTyped(TInt)
		lea := fl.emit2(ir.Lea, addr, ir.NoReg, ir.NoReg)
		lea.Sym = st.Name
		store := fl.emit2(ir.Store, ir.NoReg, addr, v)
		_ = store
		return nil

	case *StoreStmt:
		g, ok := fl.globals[st.Name]
		if !ok || !g.decl.IsArray {
			return errf(st.Pos, "%q is not a global array", st.Name)
		}
		idx, it, err := fl.lowerExpr(st.Index)
		if err != nil {
			return err
		}
		if it != TInt {
			return errf(st.Pos, "array index must be int, got %s", it)
		}
		v, vt, err := fl.lowerExpr(st.Value)
		if err != nil {
			return err
		}
		if g.decl.Elem != vt {
			return errf(st.Pos, "cannot store %s into %s array %q", vt, g.decl.Elem, st.Name)
		}
		addr := fl.lowerAddr(st.Name, idx)
		fl.emit2(ir.Store, ir.NoReg, addr, v)
		return nil

	case *IfStmt:
		cond, ct, err := fl.lowerExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct != TInt {
			return errf(st.Pos, "if condition must be int, got %s", ct)
		}
		thenB := fl.f.AddBlock()
		exitB := fl.f.AddBlock()
		elseB := exitB
		if st.Else != nil {
			elseB = fl.f.AddBlock()
		}
		fl.brTo(cond, thenB, elseB)
		fl.cur = thenB
		if err := fl.lowerBlock(st.Then); err != nil {
			return err
		}
		fl.jmpTo(exitB)
		if st.Else != nil {
			fl.cur = elseB
			if err := fl.lowerStmt(st.Else); err != nil {
				return err
			}
			// lowerStmt on *BlockStmt or *IfStmt; close whichever block is current.
			fl.jmpTo(exitB)
		}
		fl.cur = exitB
		return nil

	case *WhileStmt:
		condB := fl.f.AddBlock()
		bodyB := fl.f.AddBlock()
		exitB := fl.f.AddBlock()
		fl.jmpTo(condB)
		cond, ct, err := fl.lowerExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct != TInt {
			return errf(st.Pos, "while condition must be int, got %s", ct)
		}
		fl.brTo(cond, bodyB, exitB)
		fl.cur = bodyB
		fl.loops = append(fl.loops, loopCtx{contTarget: condB.ID, breakTarget: exitB.ID})
		if err := fl.lowerBlock(st.Body); err != nil {
			return err
		}
		fl.loops = fl.loops[:len(fl.loops)-1]
		fl.jmpTo(condB)
		fl.cur = exitB
		return nil

	case *ForStmt:
		fl.pushScope()
		defer fl.popScope()
		if st.Init != nil {
			if err := fl.lowerStmt(st.Init); err != nil {
				return err
			}
		}
		condB := fl.f.AddBlock()
		bodyB := fl.f.AddBlock()
		postB := fl.f.AddBlock()
		exitB := fl.f.AddBlock()
		fl.jmpTo(condB)
		cond, ct, err := fl.lowerExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct != TInt {
			return errf(st.Pos, "for condition must be int, got %s", ct)
		}
		fl.brTo(cond, bodyB, exitB)
		fl.cur = bodyB
		fl.loops = append(fl.loops, loopCtx{contTarget: postB.ID, breakTarget: exitB.ID})
		if err := fl.lowerBlock(st.Body); err != nil {
			return err
		}
		fl.loops = fl.loops[:len(fl.loops)-1]
		fl.jmpTo(postB)
		if st.Post != nil {
			if err := fl.lowerStmt(st.Post); err != nil {
				return err
			}
		}
		fl.jmpTo(condB)
		fl.cur = exitB
		return nil

	case *BreakStmt:
		if len(fl.loops) == 0 {
			return errf(st.Pos, "break outside loop")
		}
		fl.jmpTo(fl.f.Blocks[fl.loops[len(fl.loops)-1].breakTarget])
		// Continue lowering any trailing dead code into a fresh block.
		fl.cur = fl.f.AddBlock()
		return nil

	case *ContinueStmt:
		if len(fl.loops) == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		fl.jmpTo(fl.f.Blocks[fl.loops[len(fl.loops)-1].contTarget])
		fl.cur = fl.f.AddBlock()
		return nil

	case *ReturnStmt:
		op := fl.f.NewOp(ir.Ret)
		if st.Value != nil {
			v, vt, err := fl.lowerExpr(st.Value)
			if err != nil {
				return err
			}
			if vt != fl.decl.Ret {
				return errf(st.Pos, "return type %s, function returns %s", vt, fl.decl.Ret)
			}
			op.A = v
		} else if fl.decl.HasRet {
			return errf(st.Pos, "missing return value")
		}
		fl.cur.Ops = append(fl.cur.Ops, op)
		fl.cur = fl.f.AddBlock()
		return nil

	case *ExprStmt:
		_, _, err := fl.lowerExpr(st.X)
		return err

	default:
		return errf(s.stmtPos(), "unhandled statement %T", s)
	}
}

// lowerAddr computes &name[idx] into a fresh register.
func (fl *funcLowerer) lowerAddr(name string, idx ir.Reg) ir.Reg {
	base := fl.newTyped(TInt)
	lea := fl.emit2(ir.Lea, base, ir.NoReg, ir.NoReg)
	lea.Sym = name
	addr := fl.newTyped(TInt)
	fl.emit2(ir.Add, addr, base, idx)
	return addr
}

var intOnlyOps = map[tokKind]bool{
	tPercent: true, tShl: true, tShr: true, tAmp: true, tPipe: true, tCaret: true,
}

var intBinOp = map[tokKind]ir.Opcode{
	tPlus: ir.Add, tMinus: ir.Sub, tStar: ir.Mul, tSlash: ir.Div,
	tPercent: ir.Rem, tAmp: ir.And, tPipe: ir.Or, tCaret: ir.Xor,
	tShl: ir.Shl, tShr: ir.Shr,
	tEq: ir.CmpEQ, tNe: ir.CmpNE, tLt: ir.CmpLT, tLe: ir.CmpLE,
	tGt: ir.CmpGT, tGe: ir.CmpGE,
}

var floatBinOp = map[tokKind]ir.Opcode{
	tPlus: ir.FAdd, tMinus: ir.FSub, tStar: ir.FMul, tSlash: ir.FDiv,
	tEq: ir.FCmpEQ, tNe: ir.FCmpNE, tLt: ir.FCmpLT, tLe: ir.FCmpLE,
	tGt: ir.FCmpGT, tGe: ir.FCmpGE,
}

var cmpOps = map[tokKind]bool{
	tEq: true, tNe: true, tLt: true, tLe: true, tGt: true, tGe: true,
}

func (fl *funcLowerer) lowerExpr(e Expr) (ir.Reg, Type, error) {
	switch x := e.(type) {
	case *IntLit:
		r := fl.newTyped(TInt)
		op := fl.emit2(ir.MovI, r, ir.NoReg, ir.NoReg)
		op.Imm = x.V
		return r, TInt, nil

	case *FloatLit:
		r := fl.newTyped(TFloat)
		op := fl.emit2(ir.FMovI, r, ir.NoReg, ir.NoReg)
		op.FImm = x.V
		return r, TFloat, nil

	case *Ident:
		if lv, ok := fl.lookup(x.Name); ok {
			return lv.reg, lv.typ, nil
		}
		g, ok := fl.globals[x.Name]
		if !ok {
			return 0, TInt, errf(x.Pos, "undefined variable %q", x.Name)
		}
		if g.decl.IsArray {
			return 0, TInt, errf(x.Pos, "array %q used without index", x.Name)
		}
		addr := fl.newTyped(TInt)
		lea := fl.emit2(ir.Lea, addr, ir.NoReg, ir.NoReg)
		lea.Sym = x.Name
		dst := fl.newTyped(g.decl.Elem)
		fl.emit2(ir.Load, dst, addr, ir.NoReg)
		return dst, g.decl.Elem, nil

	case *IndexExpr:
		g, ok := fl.globals[x.Name]
		if !ok || !g.decl.IsArray {
			return 0, TInt, errf(x.Pos, "%q is not a global array", x.Name)
		}
		idx, it, err := fl.lowerExpr(x.Index)
		if err != nil {
			return 0, TInt, err
		}
		if it != TInt {
			return 0, TInt, errf(x.Pos, "array index must be int, got %s", it)
		}
		addr := fl.lowerAddr(x.Name, idx)
		dst := fl.newTyped(g.decl.Elem)
		fl.emit2(ir.Load, dst, addr, ir.NoReg)
		return dst, g.decl.Elem, nil

	case *ConvExpr:
		v, vt, err := fl.lowerExpr(x.X)
		if err != nil {
			return 0, TInt, err
		}
		if vt == x.To {
			return v, vt, nil
		}
		dst := fl.newTyped(x.To)
		if x.To == TFloat {
			fl.emit2(ir.I2F, dst, v, ir.NoReg)
		} else {
			fl.emit2(ir.F2I, dst, v, ir.NoReg)
		}
		return dst, x.To, nil

	case *UnaryExpr:
		v, vt, err := fl.lowerExpr(x.X)
		if err != nil {
			return 0, TInt, err
		}
		switch x.Op {
		case tMinus:
			dst := fl.newTyped(vt)
			if vt == TFloat {
				fl.emit2(ir.FNeg, dst, v, ir.NoReg)
			} else {
				fl.emit2(ir.Neg, dst, v, ir.NoReg)
			}
			return dst, vt, nil
		case tBang:
			if vt != TInt {
				return 0, TInt, errf(x.Pos, "! requires int operand, got %s", vt)
			}
			z := fl.newTyped(TInt)
			zi := fl.emit2(ir.MovI, z, ir.NoReg, ir.NoReg)
			zi.Imm = 0
			dst := fl.newTyped(TInt)
			fl.emit2(ir.CmpEQ, dst, v, z)
			return dst, TInt, nil
		case tTilde:
			if vt != TInt {
				return 0, TInt, errf(x.Pos, "~ requires int operand, got %s", vt)
			}
			dst := fl.newTyped(TInt)
			fl.emit2(ir.Not, dst, v, ir.NoReg)
			return dst, TInt, nil
		}
		return 0, TInt, errf(x.Pos, "unhandled unary operator")

	case *BinaryExpr:
		if x.Op == tAndAnd || x.Op == tOrOr {
			return fl.lowerShortCircuit(x)
		}
		l, lt, err := fl.lowerExpr(x.L)
		if err != nil {
			return 0, TInt, err
		}
		r, rt, err := fl.lowerExpr(x.R)
		if err != nil {
			return 0, TInt, err
		}
		if lt != rt {
			return 0, TInt, errf(x.Pos, "operand type mismatch: %s vs %s", lt, rt)
		}
		if intOnlyOps[x.Op] && lt != TInt {
			return 0, TInt, errf(x.Pos, "operator %s requires int operands", x.Op)
		}
		var code ir.Opcode
		var restype Type
		if lt == TFloat {
			c, ok := floatBinOp[x.Op]
			if !ok {
				return 0, TInt, errf(x.Pos, "operator %s not defined on float", x.Op)
			}
			code = c
			restype = TFloat
		} else {
			code = intBinOp[x.Op]
			restype = TInt
		}
		if cmpOps[x.Op] {
			restype = TInt
		}
		dst := fl.newTyped(restype)
		fl.emit2(code, dst, l, r)
		return dst, restype, nil

	case *CallExpr:
		return fl.lowerCall(x)
	}
	return 0, TInt, errf(e.exprPos(), "unhandled expression %T", e)
}

// lowerShortCircuit lowers && and || with control flow. The result register
// is written on both paths, then the paths merge.
func (fl *funcLowerer) lowerShortCircuit(x *BinaryExpr) (ir.Reg, Type, error) {
	l, lt, err := fl.lowerExpr(x.L)
	if err != nil {
		return 0, TInt, err
	}
	if lt != TInt {
		return 0, TInt, errf(x.Pos, "operator %s requires int operands", x.Op)
	}
	res := fl.newTyped(TInt)
	z := fl.newTyped(TInt)
	zi := fl.emit2(ir.MovI, z, ir.NoReg, ir.NoReg)
	zi.Imm = 0
	fl.emit2(ir.CmpNE, res, l, z) // normalized truth value of L

	rhsB := fl.f.AddBlock()
	exitB := fl.f.AddBlock()
	if x.Op == tAndAnd {
		fl.brTo(l, rhsB, exitB) // L true -> evaluate R; L false -> res already 0
	} else {
		fl.brTo(l, exitB, rhsB) // L true -> res already 1; L false -> evaluate R
	}
	fl.cur = rhsB
	r, rt, err := fl.lowerExpr(x.R)
	if err != nil {
		return 0, TInt, err
	}
	if rt != TInt {
		return 0, TInt, errf(x.Pos, "operator %s requires int operands", x.Op)
	}
	z2 := fl.newTyped(TInt)
	zi2 := fl.emit2(ir.MovI, z2, ir.NoReg, ir.NoReg)
	zi2.Imm = 0
	fl.emit2(ir.CmpNE, res, r, z2)
	fl.jmpTo(exitB)
	fl.cur = exitB
	return res, TInt, nil
}

func (fl *funcLowerer) lowerCall(x *CallExpr) (ir.Reg, Type, error) {
	// print/fprint intrinsics.
	if x.Name == "print" {
		if len(x.Args) != 1 {
			return 0, TInt, errf(x.Pos, "print takes exactly one argument")
		}
		a, at, err := fl.lowerExpr(x.Args[0])
		if err != nil {
			return 0, TInt, err
		}
		op := fl.f.NewOp(ir.Call)
		op.Sym = "print"
		if at == TFloat {
			op.Sym = "fprint"
		}
		op.Args = []ir.Reg{a}
		op.Dest = ir.NoReg
		fl.cur.Ops = append(fl.cur.Ops, op)
		return ir.NoReg, TInt, nil
	}

	sig, ok := fl.sigs[x.Name]
	if !ok {
		return 0, TInt, errf(x.Pos, "call to undefined function %q", x.Name)
	}
	if len(x.Args) != len(sig.params) {
		return 0, TInt, errf(x.Pos, "%q takes %d arguments, got %d", x.Name, len(sig.params), len(x.Args))
	}
	args := make([]ir.Reg, len(x.Args))
	for i, ax := range x.Args {
		a, at, err := fl.lowerExpr(ax)
		if err != nil {
			return 0, TInt, err
		}
		if at != sig.params[i] {
			return 0, TInt, errf(ax.exprPos(), "argument %d of %q has type %s, want %s",
				i+1, x.Name, at, sig.params[i])
		}
		args[i] = a
	}
	op := fl.f.NewOp(ir.Call)
	op.Sym = x.Name
	op.Args = args
	op.Dest = fl.newTyped(sig.ret)
	fl.cur.Ops = append(fl.cur.Ops, op)
	return op.Dest, sig.ret, nil
}
