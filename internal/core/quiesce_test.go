package core

import (
	"errors"
	"testing"

	"vliwvp/internal/machine"
)

// TestErrCycleLimitSentinel pins the budget-abort contract the serving
// layer branches on: a MaxCycles abort unwraps to ErrCycleLimit, a normal
// run does not see it, and the aborted simulator Reset()s to quiescence
// without waiting for its next Run.
func TestErrCycleLimitSentinel(t *testing.T) {
	img, schemes := decodeKernel(t, machine.W4)
	s := NewSimulatorFromImage(img, schemes)
	s.MaxCycles = 3
	_, err := s.Run("main")
	if err == nil {
		t.Fatal("run with MaxCycles=3 did not abort")
	}
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("abort error %v does not unwrap to ErrCycleLimit", err)
	}
	// Mid-run residue is expected before Reset; after it, none.
	s.Reset()
	if err := s.CheckQuiescent(); err != nil {
		t.Fatalf("after Reset: %v", err)
	}

	s.MaxCycles = DefaultMaxCycles
	if _, err := s.Run("main"); err != nil {
		t.Fatalf("run after reset: %v", err)
	}
	if err := s.CheckQuiescent(); err != nil {
		t.Fatalf("after full run: %v", err)
	}
}

// TestBatchRebindsPerItemCaps pins the per-item rebinding contract: one
// pooled simulator serves items with different CCB capacities and cycle
// budgets, and an item with no override restores the defaults rather
// than inheriting the previous item's caps.
func TestBatchRebindsPerItemCaps(t *testing.T) {
	img, schemes := decodeKernel(t, machine.W4)
	b := NewBatch()

	base := BatchItem{Name: "k", Img: img, Schemes: schemes}
	simA := b.SimFor(&base)
	if simA.CCBCapacity != DefaultCCBCapacity || simA.MaxCycles != DefaultMaxCycles {
		t.Fatalf("defaults: ccb=%d max=%d", simA.CCBCapacity, simA.MaxCycles)
	}

	tight := base
	tight.CCBCapacity, tight.MaxCycles = 2, 7
	simB := b.SimFor(&tight)
	if simB != simA {
		t.Fatal("same image produced a second simulator")
	}
	if simB.CCBCapacity != 2 || simB.MaxCycles != 7 {
		t.Fatalf("item override: ccb=%d max=%d, want 2, 7", simB.CCBCapacity, simB.MaxCycles)
	}
	if _, err := b.SimFor(&tight).Run("main"); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("tight item did not hit its cycle budget: %v", err)
	}
	b.SimFor(&tight).Reset()

	// Rebinding back to no override restores defaults — the stale-cap bug
	// a pooled server would otherwise carry between requests.
	simC := b.SimFor(&base)
	if simC.CCBCapacity != DefaultCCBCapacity || simC.MaxCycles != DefaultMaxCycles {
		t.Fatalf("rebind to defaults: ccb=%d max=%d", simC.CCBCapacity, simC.MaxCycles)
	}
	if _, err := simC.Run("main"); err != nil {
		t.Fatalf("default rerun: %v", err)
	}

	// Batch-level override sits between item override and defaults.
	b.CCBCapacity, b.MaxCycles = 4, 9999999
	simD := b.SimFor(&base)
	if simD.CCBCapacity != 4 || simD.MaxCycles != 9999999 {
		t.Fatalf("batch override: ccb=%d max=%d", simD.CCBCapacity, simD.MaxCycles)
	}
	simE := b.SimFor(&tight)
	if simE.CCBCapacity != 2 || simE.MaxCycles != 7 {
		t.Fatalf("item override over batch: ccb=%d max=%d", simE.CCBCapacity, simE.MaxCycles)
	}

	if b.NumSims() != 1 {
		t.Fatalf("NumSims = %d, want 1", b.NumSims())
	}
	b.SimFor(&base).Reset()
	if err := b.CheckQuiescent(); err != nil {
		t.Fatalf("batch quiescence: %v", err)
	}
}
