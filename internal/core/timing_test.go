package core_test

import (
	"testing"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

// paperSetup transforms the paper's worked example with both loads
// predicted and returns (original length, spec schedule, analysis).
func paperSetup(t *testing.T, d *machine.Desc) (int, *sched.BlockSched, *core.BlockAnalysis) {
	t.Helper()
	prog, f, err := core.PaperExample()
	if err != nil {
		t.Fatal(err)
	}
	l4, l7 := core.PaperExampleLoadIDs(f)

	// Fabricate the profile: both loads highly predictable, block hot.
	prof := &profile.Profile{
		Loads: map[profile.LoadKey]*profile.LoadProfile{
			{Func: "example", OpID: l4}: {Count: 1000, StrideRate: 0.9},
			{Func: "example", OpID: l7}: {Count: 1000, StrideRate: 0.9},
		},
		BlockFreq: map[profile.BlockKey]int64{{Func: "example", Block: 0}: 1000},
	}
	cfg := speculate.DefaultConfig(d)
	cfg.CriticalOnly = false // select both loads deterministically
	res, err := speculate.Transform(prog, prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	info := res.Blocks[profile.BlockKey{Func: "example", Block: 0}]
	if info == nil || len(info.SiteIDs) != 2 {
		t.Fatalf("expected 2 prediction sites, got %+v", info)
	}

	origBlock := prog.Func("example").Blocks[0]
	og := ddg.Build(origBlock, d.Latency, ddg.Options{})
	origLen := sched.ScheduleBlock(origBlock, og, d).Length()

	specBlock := res.Prog.Func("example").Blocks[0]
	sg := speculate.BuildGraph(specBlock, d, ddg.Options{})
	bs := sched.ScheduleBlock(specBlock, sg, d)
	if err := bs.Validate(sg, d); err != nil {
		t.Fatalf("spec schedule invalid: %v", err)
	}
	an, err := core.Analyze(specBlock)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Sites) != 2 {
		t.Fatalf("analysis found %d sites, want 2", len(an.Sites))
	}
	return origLen, bs, an
}

// TestPaperExampleAllOutcomes reproduces the qualitative claims of the
// paper's Figure 3: prediction improves the schedule in the all-correct
// case, and even with every prediction wrong the parallel compensation
// engine keeps the effective length at or below the original schedule.
func TestPaperExampleAllOutcomes(t *testing.T) {
	d := machine.W4
	origLen, bs, an := paperSetup(t, d)
	tm := core.NewTiming(d)

	results := map[uint32]core.BlockResult{}
	for mask := uint32(0); mask < 4; mask++ {
		r, err := tm.SimulateBlock(bs, an, mask)
		if err != nil {
			t.Fatalf("mask %02b: %v", mask, err)
		}
		results[mask] = r
		t.Logf("mask %02b: length %d (orig %d), CCE exec %d flush %d, stalls %d",
			mask, r.Length, origLen, r.CCEExecuted, r.CCEFlushed, r.StallCycles)
	}

	best := results[3]
	if best.Length >= origLen {
		t.Errorf("all-correct length %d, want < original %d", best.Length, origLen)
	}
	if best.CCEExecuted != 0 {
		t.Errorf("all-correct case executed %d compensation ops, want 0", best.CCEExecuted)
	}
	if best.CCEFlushed == 0 {
		t.Error("all-correct case must flush the buffered speculative ops")
	}
	for mask, r := range results {
		// Misprediction cases may pay a cycle or two for resource
		// contention on the narrow machine, but parallel compensation must
		// keep them far below the serial bound (original + one cycle per
		// re-executed operation + control transfers).
		if r.Length > origLen+2 {
			t.Errorf("mask %02b length %d far exceeds original %d — compensation is not overlapping", mask, r.Length, origLen)
		}
		serial := origLen + r.CCEExecuted + 2
		if r.CCEExecuted > 0 && r.Length >= serial {
			t.Errorf("mask %02b length %d >= serial recovery bound %d", mask, r.Length, serial)
		}
	}
	if results[0].CCEExecuted == 0 {
		t.Error("all-wrong case must re-execute compensation code")
	}

	// On the 8-wide machine resource contention vanishes: the all-correct
	// case improves sharply and even the all-wrong case stays within one
	// cycle of the original (this example's whole chain hangs off the two
	// loads, so full misprediction re-executes everything serially — the
	// paper's own Table 3 worst-case column likewise shows some blocks
	// slightly degrading).
	d8 := machine.W8
	origLen8, bs8, an8 := paperSetup(t, d8)
	tm8 := core.NewTiming(d8)
	for mask := uint32(0); mask < 4; mask++ {
		r, err := tm8.SimulateBlock(bs8, an8, mask)
		if err != nil {
			t.Fatal(err)
		}
		if r.Length > origLen8+1 {
			t.Errorf("8-wide mask %02b: length %d > original %d + 1", mask, r.Length, origLen8)
		}
	}
	// Figure 3(d) vs 3(c): mispredicting the first load (which feeds ops
	// 5, 6, 8, 9) re-executes at least as many operations as mispredicting
	// the second (which feeds only 8, 9).
	wrongFirst := results[0b10] // bit 0 = load4 site; mask bit set = correct
	wrongSecond := results[0b01]
	if wrongFirst.CCEExecuted < wrongSecond.CCEExecuted {
		t.Errorf("mispredicting load4 re-executed %d ops, load7 %d; expected >=",
			wrongFirst.CCEExecuted, wrongSecond.CCEExecuted)
	}
}

// TestPaperExampleWiderMachine: the paper's Table 4 claim — the benefit of
// prediction grows with issue width (the 8-wide machine gains at least as
// many cycles as the 4-wide).
func TestPaperExampleWiderMachine(t *testing.T) {
	gain := map[string]int{}
	for _, d := range []*machine.Desc{machine.W4, machine.W8} {
		origLen, bs, an := paperSetup(t, d)
		tm := core.NewTiming(d)
		r, err := tm.SimulateBlock(bs, an, an.FullMask())
		if err != nil {
			t.Fatal(err)
		}
		gain[d.Name] = origLen - r.Length
	}
	if gain["8-wide"] < gain["4-wide"] {
		t.Errorf("gain 8-wide %d < gain 4-wide %d", gain["8-wide"], gain["4-wide"])
	}
}

func TestTimingWorstNotShorterThanBest(t *testing.T) {
	d := machine.W4
	_, bs, an := paperSetup(t, d)
	tm := core.NewTiming(d)
	best, err := tm.SimulateBlock(bs, an, an.FullMask())
	if err != nil {
		t.Fatal(err)
	}
	worst, err := tm.SimulateBlock(bs, an, 0)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Length < best.Length {
		t.Errorf("worst %d < best %d", worst.Length, best.Length)
	}
	if worst.DrainCycle < best.DrainCycle {
		t.Errorf("worst drain %d < best drain %d", worst.DrainCycle, best.DrainCycle)
	}
}

func TestTimingOnUnspeculatedBlockMatchesSchedule(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	var s = 0
	for var i = 0; i < 4; i = i + 1 { s = s + i }
	return s
}`)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(prog)
	d := machine.W4
	tm := core.NewTiming(d)
	for _, b := range prog.Func("main").Blocks {
		g := ddg.Build(b, d.Latency, ddg.Options{})
		bs := sched.ScheduleBlock(b, g, d)
		an, err := core.Analyze(b)
		if err != nil {
			t.Fatal(err)
		}
		r, err := tm.SimulateBlock(bs, an, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Length != bs.Length() {
			t.Errorf("b%d: timed length %d != scheduled %d", b.ID, r.Length, bs.Length())
		}
		if r.CCEExecuted != 0 || r.CCEFlushed != 0 || r.StallCycles != 0 {
			t.Errorf("b%d: unspeculated block produced engine activity: %+v", b.ID, r)
		}
	}
}

func TestTinyCCBBehaviour(t *testing.T) {
	d := machine.W4
	_, bs, an := paperSetup(t, d)

	// With the checks scheduled ahead of most speculative issues, even a
	// single-entry buffer makes progress (draining as checks verify); it
	// just stalls more than the full-size buffer.
	tiny := core.NewTiming(d)
	tiny.CCBCapacity = 1
	tiny.MaxCycles = 100000
	rTiny, err := tiny.SimulateBlock(bs, an, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := core.NewTiming(d)
	rFull, err := full.SimulateBlock(bs, an, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rTiny.CCEExecuted == 0 {
		t.Error("compensation did not run with tiny buffer")
	}
	if rTiny.Length < rFull.Length {
		t.Errorf("tiny buffer length %d beats full buffer %d", rTiny.Length, rFull.Length)
	}
	if rTiny.StallCycles < rFull.StallCycles {
		t.Errorf("tiny buffer stalled %d < full buffer %d", rTiny.StallCycles, rFull.StallCycles)
	}
}

func TestAnalyzeRejectsMalformedBlocks(t *testing.T) {
	f := ir.NewFunc("bad")
	b := f.Blocks[0]
	lp := f.NewOp(ir.LdPred)
	lp.Dest = f.NewReg()
	lp.PredID = 7
	lp.SyncBit = 0
	ret := f.NewOp(ir.Ret)
	b.Ops = append(b.Ops, lp, ret)
	if _, err := core.Analyze(b); err == nil {
		t.Error("Analyze accepted LdPred without CheckLd")
	}
}

func TestAnalyzePredSets(t *testing.T) {
	d := machine.W4
	_, _, an := paperSetup(t, d)
	// Find the speculative ops and check their PredSets: ops 5 and 6
	// depend only on site of load4; ops 8 and 9 on both sites.
	var single, both int
	for i, op := range an.Block.Ops {
		if !op.Speculative {
			continue
		}
		switch an.Info[i].PredSet {
		case 0b01, 0b10:
			single++
		case 0b11:
			both++
		default:
			t.Errorf("spec op %v has empty PredSet", op)
		}
	}
	if single < 2 || both < 2 {
		t.Errorf("PredSet distribution: %d single, %d dual; want >=2 each", single, both)
	}
}
