package core

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"

	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/predict"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
)

// Simulator executes a whole program on the dual-engine machine with live
// value-predictor tables and full architectural state. Its results are
// validated against the sequential interpreter: same memory image, same
// output, same return value — only faster in cycles.
//
// This is the decode-once engine: NewSimulator lowers the program into a
// dense Image (see image.go) exactly once, and Run executes against flat
// arrays — a ring-buffer event wheel instead of a cycle-keyed closure map,
// pooled frames and block instances instead of per-call allocations, and a
// dense predictor slice instead of a map. With no Sink or Debug attached,
// the warmed steady state allocates nothing per cycle; the engine-diff
// suite pins it cycle-, event-, and state-identical to LegacySimulator.
//
// Pooling invariants (the Reset contract):
//   - a frame is recycled only when it is dead (popped or reset) AND no
//     in-flight wheel event still references it (pin count zero) — late
//     write-backs to a dead frame must still arbitrate and trace exactly
//     as the legacy engine's closures did;
//   - a block instance is recycled only when no frame runs it, no CCB
//     entry of it is live, and no check-resolve event references it;
//   - acquisition clears registers, scoreboard, sequence numbers, site
//     state, and CCB entry links, so no Synchronization bits, CCB state,
//     or predictor state can leak between Run calls (reset_test.go).
type Simulator struct {
	Prog     *ir.Program
	Sched    *sched.ProgSched
	D        *machine.Desc
	Analyses map[string][]*BlockAnalysis
	// Schemes selects the predictor family per prediction site ID.
	Schemes map[int]profile.Scheme
	// NewPredictor, when set, overrides Schemes: it is invoked once per
	// prediction site per Run to build that site's predictor. The
	// conformance harness uses it to record a site's value stream with
	// predict.Recorder and then replay it through predict.Replay as a
	// perfect predictor. Returning nil falls back to the Schemes choice.
	NewPredictor func(predID int) predict.Predictor

	// CCBCapacity bounds in-flight speculative operations.
	CCBCapacity int
	// MaxCycles aborts runaway simulations.
	MaxCycles int64
	// MemCfg selects the memory-hierarchy timing model (cache.go): nil is
	// the paper's flat model (every load costs its machine latency,
	// instruction fetch is free). Like CCBCapacity it is sim-time only —
	// it never affects compilation or architectural results (the
	// conformance suite pins that only cycle counts move).
	MemCfg *machine.MemConfig
	// MemRec, when set, records the next Run's per-access load latencies
	// and per-fetch stall penalties (truncated at reset, so each Run
	// records fresh). The memory engine-diff replays the trace through
	// the legacy oracle.
	MemRec *MemTrace
	// PredCfg parameterizes the hardware value predictors (table sizes for
	// the forced schemes) and enables runtime confidence gating when its
	// ConfThreshold is positive: each site carries a saturating counter
	// trained on its check outcomes, and a LdPred at an unconfident site
	// is suppressed — the datapath is unchanged (the predicted value is
	// still written and the Synchronization bit set, keeping the schedule
	// valid), but the site always takes the repair path at its check, so
	// dependents re-execute from the verified value and the site never
	// pays a misprediction recovery. Nil keeps the legacy behavior
	// (default-sized tables, no gating), byte-identical to PR-7 runs.
	// Like MemCfg it rebinds on pointer change; an unchanged binding
	// reuses the predictor tables allocation-free.
	PredCfg *predict.Config
	// Sink, when set, receives a typed obs.Event per engine event:
	// instruction issues, stalls, predictions, CCB captures, verification
	// verdicts, compensation flushes/re-executions, and register
	// write-backs. With neither Sink nor Debug attached, the issue/stall
	// path performs no event work at all.
	Sink obs.EventSink
	// Debug is the legacy text hook (a line per engine event), rendered
	// from the typed events by the obs narrator. Ignored when Sink is set.
	Debug func(cycle int64, msg string)

	// SerialRecovery switches the machine to the prior scheme the paper
	// compares against ([4]): no Compensation Code Engine — on a
	// misprediction the main engine branches to a statically scheduled
	// recovery block, executes it serially, and branches back. The
	// architectural effects are applied immediately; the cost is charged
	// as a front-end stall of 2*Control.BranchPenalty + RecoveryLen[site].
	SerialRecovery bool
	// RecoveryLen gives each prediction site's recovery-block schedule
	// length (from the baseline model). Sites absent from the map charge
	// one cycle.
	RecoveryLen map[int]int
	// Control is the control-speculation model (machine.ControlConfig):
	// the serial-recovery taken-branch penalty plus, when Control.Branch
	// selects a direction predictor, the redirect/flush latencies and the
	// flush of in-flight LdPred state on a mispredicted branch. The zero
	// value reproduces the pre-ControlConfig machine byte-for-byte. Like
	// PredCfg, the predictor rebinds on Branch pointer change; an
	// unchanged binding reuses the pooled tables allocation-free.
	Control machine.ControlConfig

	// FaultCCEWritebackXor, when nonzero, corrupts every compensation
	// re-execution result by XORing it with this mask before write-back.
	// It models a CCE write-back datapath bug and exists so the
	// conformance suite can prove it catches one (the architectural
	// results then diverge from the sequential interpreter whenever a
	// misprediction forces a re-execution). Never set outside tests.
	FaultCCEWritebackXor uint64
	// FaultConfidenceMisgate, when set, models a confidence-gating logic
	// bug: a suppressed site whose prediction turns out WRONG is treated
	// as verified correct — its dependents keep the stale predicted value
	// instead of re-executing. The conformance suite's predictor axis
	// must catch the resulting architectural divergence. Never set
	// outside tests.
	FaultConfidenceMisgate bool
	// FaultBranchFlushElide, when set, models a flush-logic bug: a
	// mispredicted branch fails to flush the terminating block's
	// unresolved LdPred sites. The flush is architecturally conservative
	// (flushed-correct sites re-execute to identical values), so this
	// fault is invisible to single-engine invariants — the branch
	// engine-diff teeth test catches it as a decoded-vs-legacy cycle and
	// event divergence instead. Never set outside tests.
	FaultBranchFlushElide bool

	// Results.
	Cycles      int64
	Instrs      int64 // long instructions issued
	Ops         int64 // operations issued on the VLIW engine
	StallSync   int64 // cycles stalled on the Synchronization register
	StallScore  int64 // cycles stalled on the register scoreboard
	StallCCB    int64 // cycles stalled on a full CCB
	StallBar    int64 // cycles stalled on call/return barriers
	CCEExecuted int64
	CCEFlushed  int64
	Mispredicts int64
	Predictions int64
	// Suppressed counts LdPred issues gated off by the confidence
	// counters (not included in Predictions); SuppressedWrong counts the
	// suppressed issues whose prediction would have been wrong — the
	// gate's true positives.
	Suppressed      int64
	SuppressedWrong int64
	// StallRecovery counts serial-mode cycles spent in recovery blocks
	// (including branch penalties).
	StallRecovery int64
	// Branch-predictor counters (all zero while Control.Branch is nil).
	BranchPredicts    int64 // conditional branches the direction predictor called
	BranchMispredicts int64 // of those, called wrong
	BranchFlushed     int64 // in-flight sites plus CCB entries flushed by branch mispredicts
	BranchSquashed    int64 // of BranchFlushed, verified CCB entries squashed before CCE dispatch
	StallRedirect     int64 // cycles stalled on fetch redirects and branch flushes
	// Memory-hierarchy counters (all zero under the flat model).
	DHits       int64 // demand loads that hit the first-level D-cache
	DMisses     int64 // demand loads that missed it (lower level or memory)
	IMisses     int64 // instruction fetches that missed the I-cache
	StallIFetch int64 // cycles stalled on instruction fetch
	PrefIssued  int64 // prefetch line fills issued
	PrefUseful  int64 // demand hits on lines a prefetch brought in
	// MaxCCBOccupancy is the peak number of in-flight CCB entries — the
	// empirical sizing requirement for the buffer (compare the E10 sweep).
	MaxCCBOccupancy int
	Output          []string
	// ccbOcc tallies the live CCB occupancy observed at each speculative
	// capture into power-of-two buckets (<=1, <=2, <=4, ... and overflow);
	// Metrics exports it as the "ccb.occupancy" histogram.
	ccbOcc [ccbOccBuckets]int64

	// internal state
	img           *Image
	msys          *memSys     // hierarchy state, nil under the flat model
	pf            *prefetcher // stride-stream prefetcher, nil when disabled
	stallUntil    int64       // serial-mode recovery stall horizon
	redirectUntil int64       // branch redirect/flush stall horizon
	seq           int64
	mem           *interp.Machine // reused for operation semantics + memory
	syncBusy      uint64
	cycle         int64
	wheel         eventWheel
	ccb           []ccbRef
	ccbHead       int
	stack         []*frame
	scratch       []uint64
	simErr        error
	callDepth     int
	finalRegs     []uint64

	// Predictor table, dense by prediction-site ID. predRun marks the run
	// epoch each slot was (re)initialized in, so reusable predictors are
	// Reset instead of reallocated and the NewPredictor hook still fires
	// once per site per Run.
	preds      []predict.Predictor
	predRun    []int64
	predCustom []bool
	predScheme []profile.Scheme
	runEpoch   int64
	// conf holds the per-site confidence counters (dense by site ID,
	// zeroed each reset); vtage is the run-shared tagged table the
	// SchemeVTAGE site views address, reset once per run; predsFor is the
	// PredCfg the current predictor table was built for (pointer
	// identity, like msys.cfg), so rebinding a different config rebuilds
	// the tables while an unchanged binding reuses them.
	conf     []predict.ConfCounter
	vtage    *predict.VTAGE
	predsFor *predict.Config
	// bp is the pooled branch-direction predictor (nil while
	// Control.Branch is nil); bpFor is the BranchConfig it was built for
	// (pointer identity, like predsFor) — rebinding rebuilds, an unchanged
	// binding Resets in place.
	bp    *predict.BranchPredictor
	bpFor *predict.BranchConfig
	// pending is the in-flight check list: one entry per issued, not yet
	// resolved CheckLd, in issue order from pendingHead. A branch
	// mispredict walks it to flush every in-flight prediction — the sites
	// live in other blocks' pinned instances, unreachable from the
	// branch's own frame. Entries pin their instance; resolveCheck sweeps
	// resolved entries from the head (resolution is near-FIFO, and the
	// final check of a run always drains the list). The backing array is
	// retained across runs, so steady state appends allocate nothing.
	pending     []pendingCheck
	pendingHead int

	// Pools (see the type comment for the recycling invariants).
	framePool []*frame
	instPool  []*blockInst
}

// pendingCheck names one in-flight check's site: the instance that owns
// it (pinned while listed) and the site's block-local index.
type pendingCheck struct {
	inst *blockInst
	li   int32
}

// ccbOccBuckets sizes the occupancy histogram: buckets <=1, <=2, <=4 ...
// <=1024 plus overflow.
const ccbOccBuckets = 12

const maxSimCallDepth = 1000

// frame is one activation record.
type frame struct {
	fn       *imgFunc
	regs     []uint64
	readyAt  []int64 // scoreboard: cycle each register's pending write lands
	lastSeq  []int64 // sequence number of the newest writer per register
	blockID  int
	instrIdx int
	inst     *blockInst // current block's speculation instance
	retDest  ir.Reg     // caller-side destination (stored on the CALLEE's frame)
	returned bool
	retVal   uint64

	// Instruction-fetch state (I-cache configs only): fetched marks the
	// current instruction's fetch as already probed; fetchUntil is the
	// cycle the fetch completes (stall until then).
	fetched    bool
	fetchUntil int64

	pins   int32 // in-flight wheel events referencing this frame
	dead   bool  // popped (or reset); recyclable once pins reach zero
	pooled bool
}

// blockInst is the per-dynamic-instance speculation state of a block. Its
// CCB entries live in a reusable slab addressed by index (entryOf stores
// index+1, 0 = none) so recycling never chases stale pointers.
type blockInst struct {
	blk     *imgBlock
	sites   []siteInst
	entries []dynEntry
	entryOf []int32 // block op index -> slab index + 1

	live   int32 // CCB entries of this instance not yet retired
	pins   int32 // in-flight check-resolve events referencing this instance
	active bool  // some frame's current instance
	pooled bool
}

// siteInst is one dynamic prediction.
type siteInst struct {
	predicted uint64
	resolved  bool
	correct   bool
	// suppressed marks a confidence-gated issue: the predicted value was
	// written (datapath unchanged) but the site takes the repair path at
	// its check regardless of the comparison, so dependents re-execute
	// from the verified value.
	suppressed bool
	// flushed marks a site whose prediction was discarded by a branch
	// mispredict while its check was still in flight: like a suppressed
	// site it takes the repair path regardless of the comparison
	// (conservative, so architecturally safe), but it is counted as a
	// branch flush, not a value mispredict.
	flushed bool
	actual  uint64
}

type operandRef struct {
	kind   srcKind
	reg    ir.Reg
	value  uint64 // value observed at VLIW issue
	siteLi int32  // srcLdPred: block-local site index
	srcIdx int32  // srcSpec: producer's slab index, -1 when it issued plain
}

// dynEntry is one Compensation Code Buffer entry (with its Operand Value
// Buffer slots inlined).
type dynEntry struct {
	op       *ir.Op
	opIdx    int32
	fr       *frame
	operands []operandRef
	seq      int64 // write sequence of the entry's own VLIW write
	issueErr error // fault observed executing speculatively on the VLIW engine

	recomputed bool
	newValue   uint64
	doneAt     int64
	bitCleared bool
}

// ccbRef addresses one buffered entry: the owning instance plus its slab
// index (stable across slab growth, unlike a pointer).
type ccbRef struct {
	inst *blockInst
	idx  int32
}

// NewSimulator wires a simulator for a scheduled (optionally transformed)
// program: it decodes the program into a dense image and binds an engine
// to it. Use NewSimulatorFromImage to share one decoded image across
// several simulators (or a Batch).
func NewSimulator(prog *ir.Program, ps *sched.ProgSched, d *machine.Desc,
	schemes map[int]profile.Scheme) (*Simulator, error) {

	img, err := DecodeImage(prog, ps, d)
	if err != nil {
		return nil, err
	}
	return NewSimulatorFromImage(img, schemes), nil
}

// NewSimulatorFromImage binds a fresh engine to an already-decoded image.
// The image is read-only and may be shared.
func NewSimulatorFromImage(img *Image, schemes map[int]profile.Scheme) *Simulator {
	s := &Simulator{
		Prog:        img.Prog,
		Sched:       img.Sched,
		D:           img.D,
		Analyses:    img.analyses,
		Schemes:     schemes,
		CCBCapacity: DefaultCCBCapacity,
		MaxCycles:   DefaultMaxCycles,
		img:         img,
		scratch:     make([]uint64, img.maxRegs),
		mem:         interp.New(img.Prog),
		preds:       make([]predict.Predictor, img.numSites),
		predRun:     make([]int64, img.numSites),
		predCustom:  make([]bool, img.numSites),
		predScheme:  make([]profile.Scheme, img.numSites),
		conf:        make([]predict.ConfCounter, img.numSites),
	}
	return s
}

// Image returns the decoded image the simulator executes.
func (s *Simulator) Image() *Image { return s.img }

// reset restores construction-time state so a reused Simulator's runs are
// independent and reproducible: statistics (including MaxCCBOccupancy and
// every stall counter), engine state, predictor tables, and the
// architectural memory image all start fresh. Frames and block instances
// from the previous run return to the pools; the event wheel drains
// unexecuted (drain-on-reset covers aborted runs).
func (s *Simulator) reset() {
	s.Cycles, s.Instrs, s.Ops = 0, 0, 0
	s.StallSync, s.StallScore, s.StallCCB, s.StallBar = 0, 0, 0, 0
	s.CCEExecuted, s.CCEFlushed, s.Mispredicts, s.Predictions = 0, 0, 0, 0
	s.Suppressed, s.SuppressedWrong = 0, 0
	s.StallRecovery = 0
	s.BranchPredicts, s.BranchMispredicts, s.BranchFlushed, s.BranchSquashed, s.StallRedirect = 0, 0, 0, 0, 0
	s.DHits, s.DMisses, s.IMisses, s.StallIFetch = 0, 0, 0, 0
	s.PrefIssued, s.PrefUseful = 0, 0
	s.resetMem()
	s.MaxCCBOccupancy = 0
	s.ccbOcc = [ccbOccBuckets]int64{}
	s.Output = nil
	s.stallUntil, s.redirectUntil, s.seq, s.cycle = 0, 0, 0, 0
	s.callDepth = 0
	s.syncBusy = 0
	s.simErr = nil
	s.wheel.reset()
	s.ccb, s.ccbHead = s.ccb[:0], 0
	// The pending-check list's pins die with the instances below; just
	// clear the references so pooled instances aren't retained.
	for i := range s.pending {
		s.pending[i] = pendingCheck{}
	}
	s.pending, s.pendingHead = s.pending[:0], 0
	for _, fr := range s.stack {
		if bi := fr.inst; bi != nil {
			fr.inst = nil
			bi.active = false
			bi.pins, bi.live = 0, 0 // references died with the wheel and CCB
			s.maybeReleaseInst(bi)
		}
		fr.dead = true
		fr.pins = 0
		s.maybeReleaseFrame(fr)
	}
	s.stack = s.stack[:0]
	s.runEpoch++ // lazily invalidates the whole predictor table
	// Predictor-config rebinding mirrors resetMem: a different binding
	// rebuilds the tables (their sizes are config-shaped); an unchanged
	// binding keeps them for epoch-based lazy reuse. The shared VTAGE
	// table resets here exactly once — site views reset lazily and must
	// not clear it mid-run (see predict.VTAGE).
	if s.predsFor != s.PredCfg {
		s.predsFor = s.PredCfg
		for i := range s.preds {
			s.preds[i] = nil
		}
		s.vtage = nil
	}
	if s.vtage != nil {
		s.vtage.Reset()
	}
	// Branch-predictor rebinding follows the same pattern: a different
	// Control.Branch binding rebuilds the tables (their sizes are
	// config-shaped); an unchanged binding Resets them in place — a reset
	// predictor is indistinguishable from a cold one, so steady-state
	// reuse allocates nothing.
	if s.bpFor != s.Control.Branch {
		s.bpFor = s.Control.Branch
		s.bp = predict.NewBranchPredictor(s.Control.Branch)
	} else if s.bp != nil {
		s.bp.Reset()
	}
	for i := range s.conf {
		s.conf[i] = 0
	}
	s.mem.Reset()
}

// resetMem reconciles the hierarchy state with MemCfg: (re)built on a
// config rebinding, reset in place (no allocation) when the binding is
// unchanged — the batch rebinding path stays zero-alloc in steady state.
func (s *Simulator) resetMem() {
	if s.MemRec != nil {
		s.MemRec.Loads = s.MemRec.Loads[:0]
		s.MemRec.Fetch = s.MemRec.Fetch[:0]
	}
	if s.MemCfg.Flat() {
		// A nil or explicitly flat config is the legacy fixed-latency
		// machine: no hierarchy state, no mem events, no counters — byte
		// identical to the pre-hierarchy engine, not merely cycle equal.
		s.msys, s.pf = nil, nil
		return
	}
	if s.msys == nil || s.msys.cfg != s.MemCfg {
		s.msys = newMemSys(s.MemCfg)
	} else {
		s.msys.reset()
	}
	if p := s.MemCfg.Prefetch; p.Degree > 0 {
		if s.pf == nil || s.pf.params != p || len(s.pf.streams) < s.img.numLoadSites {
			s.pf = newPrefetcher(p, s.img.numLoadSites)
		} else {
			s.pf.reset()
		}
	} else {
		s.pf = nil
	}
}

// loadAccess charges one D-hierarchy access for a load at word address
// addr (flat is the static latency returned when no hierarchy is
// configured). train gates prefetcher training: VLIW-path demand
// accesses train; compensation re-executions do not (their corrected
// addresses replay the past, not the stream's future).
func (s *Simulator) loadAccess(flat int64, site int32, addr int64, train bool) int64 {
	if s.msys == nil {
		return flat
	}
	lat, lvl, prefHit := s.msys.dAccess(addr, s.cycle)
	if lvl == 0 {
		s.DHits++
	} else {
		s.DMisses++
	}
	if prefHit {
		s.PrefUseful++
	}
	if s.tracing() {
		kind, served := obs.KindMemHit, lvl+1
		if lvl > 0 {
			kind = obs.KindMemMiss
			if lvl == len(s.msys.levels) {
				served = 0 // main memory
			}
		}
		s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW, Kind: kind,
			Bit: -1, Addr: addr, Lat: lat, Level: served})
	}
	if s.MemRec != nil {
		s.MemRec.Loads = append(s.MemRec.Loads, lat)
	}
	if train && s.pf != nil && site >= 0 {
		if confirmed, delta := s.pf.observe(site, addr); confirmed {
			for k := 1; k <= s.pf.params.Degree; k++ {
				pa := addr + delta*int64(k)
				if s.msys.prefetchFill(pa, s.cycle) {
					s.PrefIssued++
					if s.tracing() {
						s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
							Kind: obs.KindMemPrefetch, Bit: -1, Addr: pa, Site: int(site)})
					}
				}
			}
		}
	}
	return lat
}

// tracing reports whether any event consumer is attached; emitters guard
// on it so the disabled path builds no events.
func (s *Simulator) tracing() bool { return s.Sink != nil || s.Debug != nil }

// emit delivers one event to the typed sink, or narrates it into the
// legacy Debug hook.
func (s *Simulator) emit(e *obs.Event) {
	if s.Sink != nil {
		s.Sink.Event(e)
		return
	}
	if s.Debug != nil {
		s.Debug(e.Cycle, obs.Narrate(e))
	}
}

// Metrics returns the observability snapshot of the most recent Run (or
// the zeroed state before any run): every stall cause, prediction and
// compensation counter, plus the CCB occupancy histogram. Snapshots of
// identical runs are identical (see reset).
func (s *Simulator) Metrics() obs.Snapshot {
	reg := obs.NewRegistry()
	s.PublishMetrics(reg)
	return reg.Snapshot()
}

// PublishMetrics writes the run's counters and histograms into a shared
// registry (callers aggregating several simulators snapshot the registry
// once at the end).
func (s *Simulator) PublishMetrics(reg *obs.Registry) {
	set := func(name string, v int64) { reg.Counter(name).Set(v) }
	set("sim.cycles", s.Cycles)
	set("sim.instrs", s.Instrs)
	set("sim.ops", s.Ops)
	set("stall.sync", s.StallSync)
	set("stall.scoreboard", s.StallScore)
	set("stall.ccb", s.StallCCB)
	set("stall.barrier", s.StallBar)
	set("stall.recovery", s.StallRecovery)
	set("stall.redirect", s.StallRedirect)
	set("branch.predicts", s.BranchPredicts)
	set("branch.mispredicted", s.BranchMispredicts)
	set("branch.flushed", s.BranchFlushed)
	set("branch.squashed", s.BranchSquashed)
	set("pred.predictions", s.Predictions)
	set("pred.mispredicted", s.Mispredicts)
	set("pred.verified", s.Predictions-s.Mispredicts)
	set("pred.suppressed", s.Suppressed)
	set("pred.suppressed_wrong", s.SuppressedWrong)
	set("cce.flushed", s.CCEFlushed)
	set("cce.executed", s.CCEExecuted)
	set("ccb.max_occupancy", int64(s.MaxCCBOccupancy))
	set("mem.dhits", s.DHits)
	set("mem.dmisses", s.DMisses)
	set("mem.imisses", s.IMisses)
	set("stall.ifetch", s.StallIFetch)
	set("mem.prefetch.issued", s.PrefIssued)
	set("mem.prefetch.useful", s.PrefUseful)
	h := reg.Histogram("ccb.occupancy", obs.Pow2Bounds(ccbOccBuckets-1))
	for i, n := range s.ccbOcc {
		h.SetBucket(i, n)
	}
}

// Run executes the entry function and returns its result. Each call starts
// from a fresh architectural state: a Simulator may be reused, and every
// run reports independent statistics. After the first call, reuse hits the
// frame/instance pools and the retained predictor table, so an untraced
// steady-state Run performs no per-cycle heap allocation.
func (s *Simulator) Run(entry string, args ...uint64) (uint64, error) {
	fn := s.img.funcs[entry]
	if fn == nil {
		return 0, fmt.Errorf("core: no function %q", entry)
	}
	if s.MemCfg != nil {
		if err := s.MemCfg.Validate(); err != nil {
			return 0, err
		}
	}
	if err := s.PredCfg.Validate(); err != nil {
		return 0, err
	}
	if err := s.Control.Validate(); err != nil {
		return 0, err
	}
	s.reset()
	root := s.acquireFrame(fn, ir.NoReg)
	copy(root.regs, args)
	s.stack = append(s.stack, root)

	for {
		if s.cycle > s.MaxCycles {
			return 0, fmt.Errorf("core: exceeded %d cycles (deadlock?): %w", s.MaxCycles, ErrCycleLimit)
		}
		// 1. Apply this cycle's events (bit clears, register write-backs,
		// check resolutions).
		s.wheel.run(s.cycle, s.execEvent)
		if s.simErr != nil {
			return 0, s.simErr
		}

		// 2. VLIW Engine issue attempt.
		done, err := s.stepVLIW()
		if err != nil {
			return 0, err
		}

		// 3. Compensation Code Engine: dispatch at most one entry.
		s.stepCCE()
		if s.simErr != nil {
			return 0, s.simErr
		}

		if done {
			// Drain: let outstanding events (writes) land for determinism.
			for s.wheel.len() > 0 {
				s.cycle++
				s.wheel.run(s.cycle, s.execEvent)
			}
			s.Cycles = s.cycle + 1
			s.Output = s.mem.Output
			s.finalRegs = append(s.finalRegs[:0], root.regs...)
			return root.retVal, s.simErr
		}
		s.cycle++
	}
}

// FinalRegs returns the root frame's register file as of the end of the
// most recent successful Run (the architectural register state the
// engine-diff suite compares). The slice is reused across runs.
func (s *Simulator) FinalRegs() []uint64 { return s.finalRegs }

// acquireFrame takes a frame from the pool (or allocates the first time)
// and initializes it to the zero activation state of fn.
func (s *Simulator) acquireFrame(fn *imgFunc, retDest ir.Reg) *frame {
	var fr *frame
	if n := len(s.framePool); n > 0 {
		fr = s.framePool[n-1]
		s.framePool = s.framePool[:n-1]
	} else {
		fr = &frame{}
	}
	fr.fn = fn
	fr.regs = resizeU64(fr.regs, fn.numRegs)
	fr.readyAt = resizeI64(fr.readyAt, fn.numRegs)
	fr.lastSeq = resizeI64(fr.lastSeq, fn.numRegs)
	fr.blockID = fn.entry
	fr.instrIdx = 0
	fr.inst = nil
	fr.retDest = retDest
	fr.returned = false
	fr.retVal = 0
	fr.fetched = false
	fr.fetchUntil = 0
	fr.pins = 0
	fr.dead = false
	fr.pooled = false
	return fr
}

func (s *Simulator) maybeReleaseFrame(fr *frame) {
	if fr.dead && fr.pins == 0 && !fr.pooled {
		fr.pooled = true
		fr.fn = nil
		fr.inst = nil
		s.framePool = append(s.framePool, fr)
	}
}

// acquireInst takes a block instance from the pool and initializes it for
// blk: sites zeroed, entry slab emptied, entry links cleared.
func (s *Simulator) acquireInst(blk *imgBlock) *blockInst {
	var bi *blockInst
	if n := len(s.instPool); n > 0 {
		bi = s.instPool[n-1]
		s.instPool = s.instPool[:n-1]
	} else {
		bi = &blockInst{}
	}
	bi.blk = blk
	bi.sites = resizeSites(bi.sites, len(blk.an.Sites))
	bi.entryOf = resizeI32(bi.entryOf, len(blk.ops))
	bi.entries = bi.entries[:0]
	bi.live, bi.pins = 0, 0
	bi.active = true
	bi.pooled = false
	return bi
}

func (s *Simulator) maybeReleaseInst(bi *blockInst) {
	if !bi.active && bi.live == 0 && bi.pins == 0 && !bi.pooled {
		bi.pooled = true
		bi.blk = nil
		s.instPool = append(s.instPool, bi)
	}
}

// newEntry extends the instance's CCB slab by one zeroed entry (retaining
// its operand slice capacity) and returns the slab index. Callers must
// re-take entry pointers after any newEntry call: the slab may move.
func (bi *blockInst) newEntry() int32 {
	if len(bi.entries) < cap(bi.entries) {
		bi.entries = bi.entries[:len(bi.entries)+1]
	} else {
		bi.entries = append(bi.entries, dynEntry{})
	}
	e := &bi.entries[len(bi.entries)-1]
	ops := e.operands[:0]
	*e = dynEntry{}
	e.operands = ops
	return int32(len(bi.entries) - 1)
}

func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeSites(s []siteInst, n int) []siteInst {
	if cap(s) < n {
		return make([]siteInst, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = siteInst{}
	}
	return s
}

// schedule enqueues a typed event, pinning the pooled objects it
// references; cycles at or before the current one execute immediately
// (the legacy at() contract — unreachable with stock latencies, all >= 1).
func (s *Simulator) schedule(cycle int64, ev wev) {
	if cycle <= s.cycle {
		s.execEventBody(&ev)
		return
	}
	if ev.fr != nil {
		ev.fr.pins++
	}
	if ev.inst != nil {
		ev.inst.pins++
	}
	s.wheel.schedule(s.cycle, cycle, ev)
}

// execEvent runs one matured event and releases its pins.
func (s *Simulator) execEvent(ev *wev) {
	s.execEventBody(ev)
	if ev.fr != nil {
		ev.fr.pins--
		s.maybeReleaseFrame(ev.fr)
	}
	if ev.inst != nil {
		ev.inst.pins--
		s.maybeReleaseInst(ev.inst)
	}
}

// execEventBody applies an event's semantic action (the body of the
// closure the legacy engine would have scheduled).
func (s *Simulator) execEventBody(ev *wev) {
	switch ev.kind {
	case wevWrite:
		s.applyWrite(ev.fr, ev.reg, ev.val, ev.seq)
	case wevClearBits:
		s.syncBusy &^= ev.mask
	case wevCCEWriteback:
		s.syncBusy &^= ev.mask // mask is zero when verification already cleared the bit
		s.applyWrite(ev.fr, ev.reg, ev.val, ev.seq)
	case wevCheckResolve:
		s.resolveCheck(ev)
	}
}

// resolveCheck completes a check-prediction load: the body of the legacy
// engine's check closure, verbatim.
func (s *Simulator) resolveCheck(ev *wev) {
	si := &ev.inst.sites[ev.li]
	actual := ev.val
	si.resolved = true
	si.actual = actual
	correct := actual == si.predicted
	if s.tracing() {
		s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
			Kind: obs.KindCheckResolve, Op: ev.op, Bit: -1, Site: ev.op.PredID,
			Predicted: int64(si.predicted), Actual: int64(actual),
			Correct: correct, Gated: si.suppressed, Flushed: si.flushed})
	}
	s.syncBusy &^= ev.mask // the LdPred bit always clears
	// A suppressed site always takes the repair path, even when the
	// comparison happens to match: the machine committed to not trusting
	// the prediction at issue time, so dependents wait for the verified
	// value. The confidence counter still trains on the true outcome.
	// A branch-flushed site likewise repairs regardless of the comparison
	// — its prediction was discarded with the mispredicted path.
	verified := correct && !si.suppressed && !si.flushed
	if si.suppressed && !correct {
		s.SuppressedWrong++
		if s.FaultConfidenceMisgate {
			verified = true // injected bug: stale predicted value survives
		}
	}
	if verified {
		si.correct = true
		s.clearVerifiedBits()
	} else {
		if !si.suppressed && !correct {
			s.Mispredicts++
		}
		s.applyWrite(ev.fr, ev.reg, actual, ev.seq)
		if s.SerialRecovery {
			// Branch to the statically scheduled recovery block, run it
			// serially on the main engine, branch back. A suppressed or
			// flushed site charges only the recovery schedule: the compiler
			// lays the recovery code out as the fall-through path when the
			// prediction was never trusted, so no branches are taken.
			rl, ok := s.RecoveryLen[ev.op.PredID]
			if !ok {
				rl = 1
			}
			stall := int64(rl)
			if !si.suppressed && !correct {
				stall += int64(2 * s.Control.BranchPenalty)
			}
			until := s.cycle + stall
			if until > s.stallUntil {
				s.stallUntil = until
			}
		}
	}
	if s.SerialRecovery {
		s.drainResolvedSerial()
	}
	if s.PredCfg.Gating() {
		s.conf[ev.op.PredID].Train(correct, s.PredCfg.ConfMax())
	}
	p := s.sitePredictor(ev.op.PredID)
	p.Update(actual)
	// Sweep resolved entries off the pending-check list's head. Resolution
	// is near-FIFO (issue order plus bounded latency spread), and the last
	// check of a run always drains the list completely.
	for s.pendingHead < len(s.pending) {
		pc := s.pending[s.pendingHead]
		if !pc.inst.sites[pc.li].resolved {
			break
		}
		s.pending[s.pendingHead] = pendingCheck{}
		s.pendingHead++
		pc.inst.pins--
		s.maybeReleaseInst(pc.inst)
	}
	if s.pendingHead == len(s.pending) {
		s.pending, s.pendingHead = s.pending[:0], 0
	}
}

// stepVLIW attempts to issue the current long instruction of the top frame.
// It returns done=true when the root frame has returned.
func (s *Simulator) stepVLIW() (bool, error) {
	fr := s.stack[len(s.stack)-1]
	if fr.returned {
		return s.popFrame(fr)
	}
	if s.cycle < s.redirectUntil {
		s.StallRedirect++
		return false, nil
	}
	if s.cycle < s.stallUntil {
		s.StallRecovery++
		return false, nil
	}
	blk := &fr.fn.blocks[fr.blockID]
	if fr.inst == nil {
		fr.inst = s.acquireInst(blk)
	}
	if fr.instrIdx >= len(blk.instrs) {
		// Empty block (no terminator would be invalid; handled at build).
		return false, fmt.Errorf("core: ran off schedule of %s b%d", fr.fn.f.Name, fr.blockID)
	}
	in := &blk.instrs[fr.instrIdx]

	// Instruction fetch: probe the I-cache once per dynamic instruction,
	// then stall until the fetch completes.
	if s.msys != nil && s.msys.hasICache() {
		if !fr.fetched {
			fr.fetched = true
			pen, miss := s.msys.iAccess(in.fetchAddr, s.cycle)
			fr.fetchUntil = s.cycle + pen
			if miss {
				s.IMisses++
			}
			if s.MemRec != nil {
				s.MemRec.Fetch = append(s.MemRec.Fetch, pen)
			}
		}
		if s.cycle < fr.fetchUntil {
			s.StallIFetch++
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
					Kind: obs.KindStallIFetch, Bit: -1})
			}
			return false, nil
		}
	}

	// Synchronization-register stall.
	if in.waitBits&s.syncBusy != 0 {
		s.StallSync++
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindStallSync, Bit: -1, Wait: in.waitBits, Busy: s.syncBusy})
		}
		return false, nil
	}
	// Scoreboard stall: every source (and destination) register must have
	// its pending write landed.
	for _, idx := range in.ops {
		o := &blk.ops[idx]
		for _, u := range o.uses {
			if fr.readyAt[u] > s.cycle {
				s.StallScore++
				if s.tracing() {
					s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
						Kind: obs.KindStallScore, Op: o.op, Bit: -1, Reg: u})
				}
				return false, nil
			}
		}
		if d := o.def; d != ir.NoReg && fr.readyAt[d] > s.cycle {
			s.StallScore++
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
					Kind: obs.KindStallScore, Op: o.op, Bit: -1, Reg: d})
			}
			return false, nil
		}
	}
	// Structural stalls: Synchronization bit reuse, barriers, CCB space.
	for _, idx := range in.ops {
		o := &blk.ops[idx]
		if o.bitMask != 0 && o.op.Code != ir.CheckLd && s.syncBusy&o.bitMask != 0 {
			s.StallSync++
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
					Kind: obs.KindStallSync, Op: o.op, Bit: o.op.SyncBit,
					Wait: o.bitMask, Busy: s.syncBusy})
			}
			return false, nil
		}
		if o.op.Code == ir.Call || o.op.Code == ir.Ret {
			if s.syncBusy != 0 || s.ccbHead < len(s.ccb) {
				s.StallBar++
				if s.tracing() {
					s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
						Kind: obs.KindStallBarrier, Op: o.op, Bit: -1, Busy: s.syncBusy})
				}
				return false, nil
			}
		}
	}
	if in.spec > 0 && len(s.ccb)-s.ccbHead+in.spec > s.CCBCapacity {
		s.StallCCB++
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindStallCCB, Bit: -1})
		}
		return false, nil
	}

	if s.tracing() {
		s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW, Kind: obs.KindInstrIssue,
			Bit: -1, Func: fr.fn.f.Name, Block: fr.blockID, Instr: fr.instrIdx})
	}
	// Issue. Operations within one long instruction execute in program
	// order (the presorted issue list) so same-cycle anti-dependences
	// (reader packed with a later writer) read the old value.
	s.Instrs++
	var control *imgOp
	for _, idx := range in.sorted {
		o := &blk.ops[idx]
		s.Ops++
		if o.isControl {
			control = o // handled after data ops so same-cycle state is set
			continue
		}
		if err := s.issueDataOp(fr, blk, o); err != nil {
			return false, err
		}
	}
	fr.instrIdx++
	fr.fetched = false
	if control != nil {
		return s.issueControl(fr, blk, control)
	}
	return false, nil
}

// issueDataOp performs the VLIW-side execution of one non-control op.
func (s *Simulator) issueDataOp(fr *frame, blk *imgBlock, o *imgOp) error {
	op := o.op
	switch op.Code {
	case ir.LdPred:
		si := &fr.inst.sites[o.siteLocal]
		p := s.sitePredictor(op.PredID)
		v, _ := p.Predict() // cold predictors supply 0 (and mispredict)
		si.predicted = v
		// Confidence gate: an unconfident site's issue is suppressed. The
		// datapath is unchanged (same write, same Synchronization bit, so
		// the static schedule stays valid); only the check-time policy and
		// the accounting differ.
		si.suppressed = s.PredCfg.Gating() &&
			!s.conf[op.PredID].Confident(s.PredCfg.ConfThreshold)
		s.syncBusy |= o.bitMask
		if s.tracing() {
			kind := obs.KindLdPredIssue
			if si.suppressed {
				kind = obs.KindPredSuppress
			}
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: kind, Op: op, Bit: op.SyncBit, Predicted: int64(v)})
		}
		s.writeReg(fr, op.Dest, v, o.lat)
		if si.suppressed {
			s.Suppressed++
		} else {
			s.Predictions++
		}
		return nil

	case ir.CheckLd:
		li := o.siteLocal
		si := &fr.inst.sites[li]
		addr := int64(fr.regs[op.A]) + op.Imm
		if addr < 1 || addr >= int64(len(s.mem.Mem)) {
			return fmt.Errorf("core: %s: check load address %d out of range", fr.fn.f.Name, addr)
		}
		actual := s.mem.Mem[addr]
		bit := blk.siteMask[li]
		lat := s.loadAccess(o.lat, o.ldSite, addr, true)
		seq := s.nextSeq(fr, op.Dest)
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindCheckIssue, Op: op, Bit: -1, Done: s.cycle + lat,
				Site: op.PredID, Correct: actual == si.predicted})
		}
		s.schedule(s.cycle+lat, wev{kind: wevCheckResolve, fr: fr, inst: fr.inst,
			op: op, li: li, reg: op.Dest, val: actual, seq: seq, mask: bit})
		fr.inst.pins++ // pinned by the pending-check list until swept
		s.pending = append(s.pending, pendingCheck{inst: fr.inst, li: int32(li)})
		fr.readyAt[op.Dest] = s.cycle + lat
		return nil

	default:
		if op.Speculative {
			return s.issueSpecOp(fr, blk, o)
		}
		// Non-speculative: operands are verified correct; execute with
		// architectural state and real fault semantics.
		lat := o.lat
		if op.Code == ir.Load && s.msys != nil {
			lat = s.loadAccess(o.lat, o.ldSite, int64(fr.regs[op.A])+op.Imm, true)
		}
		v, err := s.execValue(fr.fn.f, op, fr.regs)
		if err != nil {
			return fmt.Errorf("core: %s b%d %s: %w", fr.fn.f.Name, fr.blockID, op, err)
		}
		if d := o.def; d != ir.NoReg {
			s.writeReg(fr, d, v, lat)
		}
		return nil
	}
}

// issueSpecOp executes a speculative op with (possibly predicted) register
// values and buffers it in the CCB for verification-driven flush/re-execute.
func (s *Simulator) issueSpecOp(fr *frame, blk *imgBlock, o *imgOp) error {
	op := o.op
	inst := fr.inst

	// If every prediction this op consumes has already verified correct,
	// its operands are plain correct values: issue it as an ordinary op.
	if s.predsVerifiedCorrect(inst, o.predSet) {
		lat := o.lat
		if op.Code == ir.Load && s.msys != nil {
			lat = s.loadAccess(o.lat, o.ldSite, int64(fr.regs[op.A])+op.Imm, true)
		}
		v, err := s.execValue(fr.fn.f, op, fr.regs)
		if err != nil {
			return fmt.Errorf("core: %s: %w", op, err)
		}
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindPlainIssue, Op: op, Bit: -1})
		}
		s.writeReg(fr, op.Dest, v, lat)
		return nil
	}

	ei := inst.newEntry()
	e := &inst.entries[ei]
	e.op, e.opIdx, e.fr = op, o.idx, fr
	for k, u := range o.uses {
		ref := operandRef{kind: o.srcKinds[k], reg: u, value: fr.regs[u], siteLi: -1, srcIdx: -1}
		switch ref.kind {
		case srcLdPred:
			ref.siteLi = o.prodSite[k]
		case srcSpec:
			// The producer only has an entry if it was itself buffered (it
			// may have issued plain after its predictions verified).
			if x := inst.entryOf[o.producers[k]]; x != 0 {
				ref.srcIdx = x - 1
			}
		}
		e.operands = append(e.operands, ref)
	}

	// Execute on the VLIW engine with current (predicted) values.
	// Speculative faults are deferred: a poison zero result stands in until
	// verification decides whether the fault was real. A speculative load
	// accesses the hierarchy with its (possibly mispredicted) address —
	// the cache model tolerates any address, it is tags only.
	lat := o.lat
	if op.Code == ir.Load && s.msys != nil {
		lat = s.loadAccess(o.lat, o.ldSite, int64(fr.regs[op.A])+op.Imm, true)
	}
	v, err := s.execValue(fr.fn.f, op, fr.regs)
	if err != nil {
		e.issueErr = err
		v = 0
	}
	s.syncBusy |= o.bitMask
	e.seq = s.nextSeq(fr, op.Dest)
	s.schedule(s.cycle+lat, wev{kind: wevWrite, fr: fr, reg: op.Dest, val: v, seq: e.seq})
	fr.readyAt[op.Dest] = s.cycle + lat

	inst.entryOf[o.idx] = ei + 1
	inst.live++
	s.ccb = append(s.ccb, ccbRef{inst: inst, idx: ei})
	live := len(s.ccb) - s.ccbHead
	if live > s.MaxCCBOccupancy {
		s.MaxCCBOccupancy = live
	}
	occ := bits.Len(uint(live - 1))
	if occ >= ccbOccBuckets {
		occ = ccbOccBuckets - 1
	}
	s.ccbOcc[occ]++
	if s.tracing() {
		s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
			Kind: obs.KindBufferCCB, Op: op, Bit: op.SyncBit,
			Operands: dynSiteStates(inst, o.predSet)})
	}
	return nil
}

// dynSiteStates renders the dynamic verification state of every prediction
// site a buffered op depends on, in the paper's notation: PN before the
// site's check resolves, then C or R (see DESIGN.md §8).
func dynSiteStates(inst *blockInst, set uint32) []obs.SiteState {
	var out []obs.SiteState
	for li := range inst.sites {
		if set&(1<<uint(li)) == 0 {
			continue
		}
		si := &inst.sites[li]
		state := obs.StatePN
		if si.resolved {
			if si.correct {
				state = obs.StateC
			} else {
				state = obs.StateR
			}
		}
		out = append(out, obs.SiteState{Site: li, State: state})
	}
	return out
}

// issueControl handles branches, calls, and returns (issued after the data
// ops of the same long instruction).
func (s *Simulator) issueControl(fr *frame, blk *imgBlock, o *imgOp) (bool, error) {
	op := o.op
	if s.pf != nil && (op.Code == ir.Call || op.Code == ir.Ret) {
		// Call/return barrier: the machine drains speculation here and the
		// working set changes — every prefetch stream retrains.
		s.pf.barrier()
	}
	switch op.Code {
	case ir.Jmp:
		s.enterBlock(fr, blk.succs[0])
		return false, nil
	case ir.Br:
		taken := fr.regs[op.A] != 0
		if s.Control.Dynamic() {
			pc := branchPC(fr.fn.f.Name, fr.blockID)
			pred := s.bp.Predict(pc)
			s.BranchPredicts++
			if pred != taken {
				s.BranchMispredicts++
				if s.tracing() {
					var p int64
					if pred {
						p = 1
					}
					s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
						Kind: obs.KindBranchMispredict, Bit: -1,
						Func: fr.fn.f.Name, Block: fr.blockID, Predicted: p})
				}
				// The wrong-path flush discards every in-flight value
				// prediction — the pending checks live in earlier blocks'
				// pinned instances, not the branch's own — and stalls
				// fetch for FlushLat.
				if !s.FaultBranchFlushElide {
					s.flushInFlight()
				}
				if until := s.cycle + int64(s.Control.FlushLat()); until > s.redirectUntil {
					s.redirectUntil = until
				}
			} else if taken {
				// Correctly predicted taken branch: the fetch-redirect
				// bubble still costs RedirectLat.
				if until := s.cycle + int64(s.Control.RedirectLat()); until > s.redirectUntil {
					s.redirectUntil = until
				}
			}
			s.bp.Update(pc, taken)
		}
		if taken {
			s.enterBlock(fr, blk.succs[0])
		} else {
			s.enterBlock(fr, blk.succs[1])
		}
		return false, nil
	case ir.Call:
		return false, s.issueCall(fr, op)
	case ir.Ret:
		var v uint64
		if op.A != ir.NoReg {
			v = fr.regs[op.A]
		}
		fr.returned = true
		fr.retVal = v
		return s.popFrame(fr)
	}
	return false, fmt.Errorf("core: unexpected control op %s", op)
}

// flushInFlight discards the machine's in-flight speculation on a
// mispredicted branch. Two populations go:
//
// Unresolved prediction sites (the pending-check list) are marked
// branch-flushed: their checks are still in the event wheel (which pins
// their instances), and each takes the repair path when it resolves.
// The Synchronization-register discipline drains most speculation before
// any control transfer, so this set is usually empty — it is the safety
// net for sites whose checks outlive their block.
//
// Verified compensation-buffer entries are squashed wholesale: the CCE
// would dispatch each as a one-cycle no-op flush, but the wrong-path
// flush discards that queued bookkeeping with the rest of the pipeline.
// Only the verified-correct head run retires early; an unresolved or
// mispredicted entry stops the sweep, since repairs must still execute.
//
// Both halves are conservative by construction — a flushed-correct site
// re-executes its dependents to identical values, and a squashed entry
// was a no-op — so the flush changes timing and accounting, never
// architectural state.
func (s *Simulator) flushInFlight() {
	for i := s.pendingHead; i < len(s.pending); i++ {
		pc := s.pending[i]
		si := &pc.inst.sites[pc.li]
		if si.resolved || si.flushed {
			continue
		}
		si.flushed = true
		s.BranchFlushed++
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindBranchFlush, Bit: -1, Site: pc.inst.blk.an.Sites[pc.li].PredID})
		}
	}
	for s.ccbHead < len(s.ccb) {
		r := s.ccb[s.ccbHead]
		e := &r.inst.entries[r.idx]
		if !s.predsVerifiedCorrect(r.inst, r.inst.blk.ops[e.opIdx].predSet) {
			break
		}
		// A deferred speculative fault on an all-correct path is a real
		// fault, exactly as on the CCE flush path.
		if e.issueErr != nil {
			s.simErr = fmt.Errorf("core: %s: %w", e.op, e.issueErr)
		}
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineCCE,
				Kind: obs.KindBranchFlush, Op: e.op, Bit: -1})
		}
		if !e.bitCleared {
			e.bitCleared = true
			s.schedule(s.cycle+1, wev{kind: wevClearBits, mask: r.inst.blk.ops[e.opIdx].bitMask})
		}
		s.BranchFlushed++
		s.BranchSquashed++
		s.retireHead(r.inst)
	}
	s.compactCCB()
}

// branchPC derives a stable, process-independent PC for the conditional
// branch terminating block blockID of fnName: an FNV-1a fold of the name
// and block ID. Both engines use it, so the shared BranchPredictor sees
// identical indices, and it allocates nothing.
func branchPC(fnName string, blockID int) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(fnName); i++ {
		h ^= uint64(fnName[i])
		h *= 1099511628211
	}
	h ^= uint64(blockID)
	h *= 1099511628211
	return h
}

func (s *Simulator) enterBlock(fr *frame, next int) {
	if bi := fr.inst; bi != nil {
		fr.inst = nil
		bi.active = false
		s.maybeReleaseInst(bi)
	}
	fr.blockID = next
	fr.instrIdx = 0
	fr.fetched = false
}

func (s *Simulator) issueCall(fr *frame, op *ir.Op) error {
	switch op.Sym {
	case "print":
		s.mem.Output = append(s.mem.Output, strconv.FormatInt(int64(fr.regs[op.Args[0]]), 10))
		return nil
	case "fprint":
		v := math.Float64frombits(fr.regs[op.Args[0]])
		s.mem.Output = append(s.mem.Output, strconv.FormatFloat(v, 'g', -1, 64))
		return nil
	}
	callee := s.img.funcs[op.Sym]
	if callee == nil {
		return fmt.Errorf("core: call to unknown %q", op.Sym)
	}
	if s.callDepth > maxSimCallDepth {
		return fmt.Errorf("core: call depth exceeded at %q", op.Sym)
	}
	s.callDepth++
	nf := s.acquireFrame(callee, op.Dest)
	for i, a := range op.Args {
		nf.regs[i] = fr.regs[a]
	}
	s.stack = append(s.stack, nf)
	return nil
}

// popFrame retires a returned frame, delivering the return value.
func (s *Simulator) popFrame(fr *frame) (bool, error) {
	if len(s.stack) == 1 {
		return true, nil // root function returned
	}
	s.stack = s.stack[:len(s.stack)-1]
	s.callDepth--
	caller := s.stack[len(s.stack)-1]
	if fr.retDest != ir.NoReg {
		s.writeReg(caller, fr.retDest, fr.retVal, 1)
	}
	if bi := fr.inst; bi != nil {
		fr.inst = nil
		bi.active = false
		s.maybeReleaseInst(bi)
	}
	fr.dead = true
	s.maybeReleaseFrame(fr)
	return false, nil
}

// drainResolvedSerial retires buffered speculative entries in the serial
// recovery machine: once every prediction an entry depends on is verified,
// the entry is either discarded (all correct) or architecturally
// re-executed immediately — the recovery block's serial execution time was
// already charged as a stall when the misprediction was detected.
func (s *Simulator) drainResolvedSerial() {
	for s.ccbHead < len(s.ccb) {
		r := s.ccb[s.ccbHead]
		e := &r.inst.entries[r.idx]
		need := r.inst.blk.ops[e.opIdx].predSet
		wrong := false
		resolved := true
		for li := range r.inst.sites {
			if need&(1<<uint(li)) == 0 {
				continue
			}
			si := &r.inst.sites[li]
			if !si.resolved {
				resolved = false
				break
			}
			if !si.correct {
				wrong = true
			}
		}
		if !resolved {
			return
		}
		bit := r.inst.blk.ops[e.opIdx].bitMask
		if wrong {
			for i := range e.operands {
				ref := &e.operands[i]
				s.scratch[ref.reg] = correctedValue(r.inst, ref)
			}
			v, err := s.execValue(e.fr.fn.f, e.op, s.scratch)
			if err != nil {
				s.simErr = fmt.Errorf("core: serial recovery of %s: %w", e.op, err)
				return
			}
			v ^= s.FaultCCEWritebackXor
			e.recomputed = true
			e.newValue = v
			e.doneAt = s.cycle
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineCCE,
					Kind: obs.KindCCEExecute, Op: e.op, Bit: e.op.SyncBit, Done: e.doneAt})
			}
			// Re-issue under a fresh sequence number: the recovery block's
			// write supersedes the original operation's still-in-flight
			// predicted-path writeback.
			seq := s.nextSeq(e.fr, e.op.Dest)
			s.applyWrite(e.fr, e.op.Dest, v, seq)
			s.CCEExecuted++
		} else {
			if e.issueErr != nil {
				s.simErr = fmt.Errorf("core: %s: %w", e.op, e.issueErr)
				return
			}
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineCCE,
					Kind: obs.KindCCEFlush, Op: e.op, Bit: -1})
			}
			s.CCEFlushed++
		}
		if !e.bitCleared {
			e.bitCleared = true
			s.syncBusy &^= bit
		}
		s.retireHead(r.inst)
	}
	s.compactCCB()
}

// retireHead advances past the CCB head entry and lets its owning
// instance return to the pool once nothing references it.
func (s *Simulator) retireHead(inst *blockInst) {
	s.ccbHead++
	inst.live--
	s.maybeReleaseInst(inst)
}

// stepCCE dispatches at most one Compensation Code Buffer entry per cycle.
func (s *Simulator) stepCCE() {
	if s.SerialRecovery {
		// No second engine in the [4] baseline machine: entries retire
		// inline as soon as their predictions are all verified (their cost
		// was charged as a recovery stall at misprediction time).
		s.drainResolvedSerial()
		return
	}
	if s.ccbHead >= len(s.ccb) {
		return
	}
	r := s.ccb[s.ccbHead]
	e := &r.inst.entries[r.idx]
	// All involved predictions must be verified.
	need := r.inst.blk.ops[e.opIdx].predSet
	wrong := false
	for li := range r.inst.sites {
		if need&(1<<uint(li)) == 0 {
			continue
		}
		si := &r.inst.sites[li]
		if !si.resolved {
			return // stall
		}
		if !si.correct {
			wrong = true
		}
	}

	defer s.compactCCB()
	bit := r.inst.blk.ops[e.opIdx].bitMask
	if !wrong {
		// Flush: the VLIW-computed value was correct. A deferred
		// speculative fault on an all-correct path is a real fault.
		if e.issueErr != nil {
			s.simErr = fmt.Errorf("core: %s: %w", e.op, e.issueErr)
		}
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineCCE,
				Kind: obs.KindCCEFlush, Op: e.op, Bit: -1})
		}
		if !e.bitCleared {
			e.bitCleared = true
			s.schedule(s.cycle+1, wev{kind: wevClearBits, mask: bit})
		}
		s.CCEFlushed++
		s.retireHead(r.inst)
		return
	}
	// Re-execute with corrected operand values once they are available.
	for i := range e.operands {
		ref := &e.operands[i]
		if ref.kind == srcSpec && ref.srcIdx >= 0 {
			src := &r.inst.entries[ref.srcIdx]
			if src.recomputed && src.doneAt > s.cycle {
				return // corrected producer value still in the pipeline
			}
		}
	}
	for i := range e.operands {
		ref := &e.operands[i]
		s.scratch[ref.reg] = correctedValue(r.inst, ref)
	}
	// A re-executed load accesses the hierarchy with its corrected
	// address (before execValue, which may overwrite scratch[A] when the
	// destination aliases a source). It does not train the prefetcher.
	lat := r.inst.blk.ops[e.opIdx].lat
	if e.op.Code == ir.Load && s.msys != nil {
		lat = s.loadAccess(lat, -1, int64(s.scratch[e.op.A])+e.op.Imm, false)
	}
	v, err := s.execValue(e.fr.fn.f, e.op, s.scratch)
	if err != nil {
		// Correct operands and still faulting: a real fault.
		s.simErr = fmt.Errorf("core: compensation re-execution of %s: %w", e.op, err)
		return
	}
	v ^= s.FaultCCEWritebackXor
	e.recomputed = true
	e.newValue = v
	e.doneAt = s.cycle + lat
	if s.tracing() {
		s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineCCE,
			Kind: obs.KindCCEExecute, Op: e.op, Bit: e.op.SyncBit, Done: e.doneAt})
	}
	mask := uint64(0)
	if !e.bitCleared {
		mask = bit
	}
	e.bitCleared = true
	s.schedule(e.doneAt, wev{kind: wevCCEWriteback, fr: e.fr, reg: e.op.Dest,
		val: v, seq: e.seq, mask: mask})
	s.CCEExecuted++
	s.retireHead(r.inst)
}

// predsVerifiedCorrect reports whether every site in the local predset has
// resolved as a correct prediction.
func (s *Simulator) predsVerifiedCorrect(inst *blockInst, set uint32) bool {
	for li := range inst.sites {
		if set&(1<<uint(li)) == 0 {
			continue
		}
		si := &inst.sites[li]
		if !si.resolved || !si.correct {
			return false
		}
	}
	return true
}

// clearVerifiedBits clears the Synchronization bits of buffered speculative
// ops whose every involved prediction has verified correct — the run-time
// effect of the check-prediction ClearBits encoding, generalized to
// multi-prediction dependents (cleared when the last involved check
// verifies).
func (s *Simulator) clearVerifiedBits() {
	for i := s.ccbHead; i < len(s.ccb); i++ {
		r := s.ccb[i]
		e := &r.inst.entries[r.idx]
		o := &r.inst.blk.ops[e.opIdx]
		if e.bitCleared || o.bitMask == 0 {
			continue
		}
		if s.predsVerifiedCorrect(r.inst, o.predSet) {
			s.syncBusy &^= o.bitMask
			e.bitCleared = true
		}
	}
}

// compactCCB reclaims retired entries occasionally (in place: the backing
// array is reused, so the steady state allocates nothing).
func (s *Simulator) compactCCB() {
	if s.ccbHead > 256 && s.ccbHead*2 > len(s.ccb) {
		n := copy(s.ccb, s.ccb[s.ccbHead:])
		s.ccb = s.ccb[:n]
		s.ccbHead = 0
	}
}

// correctedValue resolves an operand through the Operand Value Buffer
// semantics: predicted values are replaced by their verified values,
// speculatively computed values by their recomputed ones.
func correctedValue(inst *blockInst, r *operandRef) uint64 {
	switch r.kind {
	case srcLdPred:
		si := &inst.sites[r.siteLi]
		if si.resolved {
			return si.actual
		}
		return r.value
	case srcSpec:
		if r.srcIdx >= 0 {
			src := &inst.entries[r.srcIdx]
			if src.recomputed {
				return src.newValue
			}
		}
		return r.value
	default:
		return r.value
	}
}

// execValue runs one operation's semantics against the given register file
// and returns the destination value (0 for ops without one).
func (s *Simulator) execValue(f *ir.Func, op *ir.Op, regs []uint64) (uint64, error) {
	if err := s.mem.ExecOp(f, op, regs); err != nil {
		return 0, err
	}
	if d := op.Def(); d != ir.NoReg {
		return regs[d], nil
	}
	return 0, nil
}

// writeReg schedules a register write that lands lat cycles after issue.
func (s *Simulator) writeReg(fr *frame, r ir.Reg, v uint64, lat int64) {
	if r == ir.NoReg {
		return
	}
	seq := s.nextSeq(fr, r)
	s.schedule(s.cycle+lat, wev{kind: wevWrite, fr: fr, reg: r, val: v, seq: seq})
	fr.readyAt[r] = s.cycle + lat
}

func (s *Simulator) nextSeq(fr *frame, r ir.Reg) int64 {
	s.seq++
	if r != ir.NoReg {
		fr.lastSeq[r] = s.seq
	}
	return s.seq
}

// applyWrite commits a register value unless a newer writer has claimed the
// register (the write-port arbitration that keeps late compensation
// write-backs from clobbering younger definitions).
func (s *Simulator) applyWrite(fr *frame, r ir.Reg, v uint64, seq int64) {
	if r == ir.NoReg {
		return
	}
	if fr.lastSeq[r] != seq {
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindRegWriteSuppressed, Bit: -1, Reg: r,
				Value: int64(v), Seq: seq, LastSeq: fr.lastSeq[r]})
		}
		return
	}
	if s.tracing() {
		s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
			Kind: obs.KindRegWrite, Bit: -1, Reg: r, Value: int64(v), Seq: seq})
	}
	fr.regs[r] = v
}

// sitePredictor resolves (or lazily builds) the predictor of a site for
// the current run. Default-scheme predictors are recycled across runs via
// Reset — a reset predictor is indistinguishable from a cold one — while
// the NewPredictor hook, when set, is honored once per site per run
// exactly as the legacy engine's per-run map did.
func (s *Simulator) sitePredictor(predID int) predict.Predictor {
	if s.predRun[predID] == s.runEpoch {
		return s.preds[predID]
	}
	var p predict.Predictor
	custom := false
	scheme := s.Schemes[predID]
	if s.NewPredictor != nil {
		p = s.NewPredictor(predID)
		custom = p != nil
	}
	if p == nil {
		// Recycle the previous run's predictor when it was built by the
		// same default scheme: Reset restores the freshly-constructed state
		// (pinned by the predictor tests), so reuse is unobservable.
		if old := s.preds[predID]; old != nil && !s.predCustom[predID] && s.predScheme[predID] == scheme {
			old.Reset()
			p = old
		} else {
			switch scheme {
			case profile.SchemeFCM:
				p = predict.NewFCM(s.PredCfg.Order(), s.PredCfg.TableBits())
			case profile.SchemeLast:
				p = predict.NewLastValue()
			case profile.SchemeLNV:
				p = predict.NewLastN(s.PredCfg.Depth())
			case profile.SchemeHybrid:
				p = predict.NewHybrid(s.PredCfg.Order(), s.PredCfg.TableBits())
			case profile.SchemeVTAGE:
				// All VTAGE sites of a run share one tagged table — the
				// hardware structure — built lazily at first use and reset
				// once per run in reset().
				if s.vtage == nil {
					s.vtage = predict.NewVTAGE(s.PredCfg.TagTableBits())
				}
				p = s.vtage.Site(predID)
			default:
				p = predict.NewStride()
			}
		}
	}
	s.preds[predID] = p
	s.predRun[predID] = s.runEpoch
	s.predCustom[predID] = custom
	s.predScheme[predID] = scheme
	return p
}

// Memory returns the simulator's memory image (for state validation).
func (s *Simulator) Memory() []uint64 { return s.mem.Mem }
