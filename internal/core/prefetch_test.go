package core

// Edge-case battery for the stride-stream prefetcher's training logic:
// negative and wrapping deltas, the zero-delta stream drop, two-stride
// thrash, and retraining after a call barrier. The engine-level behavior
// (fills past the end of the heap, usefulness accounting) is covered by
// cache_test.go and memdiff_test.go.

import (
	"math"
	"testing"

	"vliwvp/internal/machine"
)

func trainSeq(p *prefetcher, site int32, addrs ...int64) (confirmed []bool, deltas []int64) {
	for _, a := range addrs {
		c, d := p.observe(site, a)
		confirmed = append(confirmed, c)
		deltas = append(deltas, d)
	}
	return
}

func TestPrefetcherTraining(t *testing.T) {
	params := machine.PrefetchParams{Degree: 2, Confidence: 2}
	tests := []struct {
		name  string
		addrs []int64
		// want is the per-access confirmation verdict; wantDelta the
		// trained stride at the first confirmation (0 = never confirms).
		want      []bool
		wantDelta int64
	}{
		{
			name:      "ascending stride",
			addrs:     []int64{100, 108, 116, 124},
			want:      []bool{false, false, true, true},
			wantDelta: 8,
		},
		{
			name:      "negative stride",
			addrs:     []int64{100, 90, 80, 70},
			want:      []bool{false, false, true, true},
			wantDelta: -10,
		},
		{
			name:      "zero delta drops the stream",
			addrs:     []int64{50, 50, 50, 50},
			want:      []bool{false, false, false, false},
			wantDelta: 0,
		},
		{
			name:      "zero delta then retrain",
			addrs:     []int64{50, 50, 60, 70, 80},
			want:      []bool{false, false, false, true, true},
			wantDelta: 10,
		},
		{
			name:  "two-stride thrash never confirms",
			addrs: []int64{0, 8, 32, 40, 64, 72, 96},
			// deltas alternate 8, 24, 8, 24, ...: confidence never
			// reaches 2 because each new delta restarts training.
			want:      []bool{false, false, false, false, false, false, false},
			wantDelta: 0,
		},
		{
			name: "wrapping delta",
			// math.MaxInt64 -> MinInt64+7 wraps the int64 delta to +8;
			// training must treat the wrapped value consistently (no
			// panic, confirmation on repetition).
			addrs:     []int64{math.MaxInt64 - 8, math.MaxInt64, math.MinInt64 + 7, math.MinInt64 + 15},
			want:      []bool{false, false, true, true},
			wantDelta: 8,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := newPrefetcher(params, 1)
			conf, deltas := trainSeq(p, 0, tc.addrs...)
			for i := range tc.want {
				if conf[i] != tc.want[i] {
					t.Fatalf("access %d (addr %d): confirmed=%v, want %v (deltas %v)",
						i, tc.addrs[i], conf[i], tc.want[i], deltas)
				}
			}
			if tc.wantDelta != 0 {
				for i, c := range conf {
					if c {
						if deltas[i] != tc.wantDelta {
							t.Fatalf("first confirmation trained delta %d, want %d", deltas[i], tc.wantDelta)
						}
						break
					}
				}
			}
		})
	}
}

func TestPrefetcherBarrierRetrains(t *testing.T) {
	p := newPrefetcher(machine.PrefetchParams{Degree: 2, Confidence: 2}, 2)
	if conf, _ := trainSeq(p, 0, 0, 8, 16); !conf[2] {
		t.Fatal("stream did not confirm before the barrier")
	}
	p.barrier()
	// After a call/return barrier the stream restarts from scratch: the
	// next access is a fresh first observation, and confirmation needs
	// two consistent deltas again.
	conf, _ := trainSeq(p, 0, 24, 32, 40)
	if conf[0] || conf[1] {
		t.Errorf("stream stayed confirmed across a barrier: %v", conf)
	}
	if !conf[2] {
		t.Errorf("stream failed to retrain after the barrier: %v", conf)
	}
}

func TestPrefetcherSiteIsolation(t *testing.T) {
	p := newPrefetcher(machine.PrefetchParams{Degree: 1, Confidence: 2}, 2)
	// Interleaved sites with different strides must not thrash each other
	// (that is the point of per-site streams).
	var conf0, conf1 bool
	for i := int64(0); i < 4; i++ {
		c0, _ := p.observe(0, 100+8*i)
		c1, _ := p.observe(1, 1000-3*i)
		conf0, conf1 = conf0 || c0, conf1 || c1
	}
	if !conf0 || !conf1 {
		t.Errorf("interleaved sites failed to confirm independently: site0=%v site1=%v", conf0, conf1)
	}
}
