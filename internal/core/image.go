package core

import (
	"fmt"
	"sort"

	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/sched"
)

// This file implements the decode-once half of the simulator split: a
// Compile/Link step (DecodeImage) lowers an ir.Program plus its schedule
// into a dense, immutable Image — flat per-block op arrays indexed by
// block-local op IDs, presorted instruction issue lists, precomputed
// operand/producer/latency/sync metadata, and a dense prediction-site
// space — so the execution engine touches no maps, runs no sorts, and
// calls no allocating helpers (op.Uses) in its cycle loop. An Image is
// read-only after decode and safe to share across Simulators and
// goroutines; all mutable run state lives in the Simulator.

// DecodeError is the typed refusal of the image decoder: the program or
// schedule violates an invariant the dense image format cannot represent
// (out-of-range registers, malformed sites, schedules that disagree with
// their blocks). The decoder either returns a DecodeError or an image
// that passes Validate — it never panics on malformed input.
type DecodeError struct {
	Func  string
	Block int
	Op    int // block op index, -1 when not op-specific
	Msg   string
}

func (e *DecodeError) Error() string {
	if e.Op >= 0 {
		return fmt.Sprintf("core: decode %s b%d op%d: %s", e.Func, e.Block, e.Op, e.Msg)
	}
	if e.Block >= 0 {
		return fmt.Sprintf("core: decode %s b%d: %s", e.Func, e.Block, e.Msg)
	}
	return fmt.Sprintf("core: decode %s: %s", e.Func, e.Msg)
}

// imgOp is the decoded form of one operation: everything the engines need
// per issue, precomputed once.
type imgOp struct {
	op   *ir.Op   // original op: semantics (interp.ExecOp) and tracing identity
	uses []ir.Reg // precomputed op.Uses()
	def  ir.Reg   // precomputed op.Def()
	lat  int64    // result latency on the image's machine

	idx       int32  // own block op index
	siteLocal int32  // block-local site index (LdPred/CheckLd), -1 otherwise
	ldSite    int32  // dense load-site ID (Load/CheckLd), -1 otherwise
	bitMask   uint64 // 1<<SyncBit, 0 when the op has no Synchronization bit
	predSet   uint32 // block-local sites this (speculative) op's value consumes

	// producers[k] is the block op index of the in-block producer of
	// uses[k] (-1 live-in); srcKinds[k] classifies it per the OVB operand
	// taxonomy; prodSite[k] is the producer's block-local site index when
	// srcKinds[k]==srcLdPred.
	producers []int32
	srcKinds  []srcKind
	prodSite  []int32

	isControl bool // terminator or call: issued after the data ops
}

// imgInstr is one decoded long instruction.
type imgInstr struct {
	waitBits uint64
	// fetchAddr is the instruction's address in the image-wide fetch
	// space (one word per long instruction, assigned in decode order) —
	// the I-cache indexes on it.
	fetchAddr int64
	// ops holds block op indexes in schedule order (the stall-check scan
	// order of the legacy engine); sorted holds the same indexes in
	// ascending block order (its issue order).
	ops    []int32
	sorted []int32
	// spec counts ops with Speculative set — the legacy engine's CCB
	// admission charge (levied whether or not the op later issues plain).
	spec int
}

// imgBlock is one decoded basic block.
type imgBlock struct {
	an     *BlockAnalysis
	bs     *sched.BlockSched
	ops    []imgOp // indexed by block op index
	instrs []imgInstr
	succs  []int
	// siteMask[li] is 1<<Sites[li].Bit — the Synchronization bit a
	// site's LdPred holds until its check resolves.
	siteMask []uint64
}

// imgFunc is one decoded function.
type imgFunc struct {
	f       *ir.Func
	fs      *sched.FuncSched
	blocks  []imgBlock
	numRegs int
	entry   int
}

// Image is the dense decoded program: the immutable product of the decode
// pass, shared by every Simulator (and every Batch item) built from it.
type Image struct {
	Prog  *ir.Program
	Sched *sched.ProgSched
	D     *machine.Desc

	funcs map[string]*imgFunc
	// analyses retains the per-block static decode in NewSimulator's
	// legacy-compatible map shape.
	analyses map[string][]*BlockAnalysis

	maxRegs      int
	numSites     int // dense predictor index space: max PredID + 1
	numOps       int // total decoded ops (validator bookkeeping)
	numLoadSites int // dense load-site space: one ID per static Load/CheckLd
	numInstrs    int // total long instructions: the fetch address space
}

// Analyses exposes the per-function block analyses (same shape the
// Simulator always published).
func (img *Image) Analyses() map[string][]*BlockAnalysis { return img.analyses }

// NumSites returns the dense prediction-site index space (max PredID+1).
func (img *Image) NumSites() int { return img.numSites }

// NumLoadSites returns the dense load-site space (one ID per static
// Load/CheckLd op) — the stride-stream prefetcher's table size.
func (img *Image) NumLoadSites() int { return img.numLoadSites }

// ImageFormatVersion names the decoded image layout; it participates in
// cache keys (the pipeline decode pass's Fingerprint) so caches invalidate
// when the format evolves.
const ImageFormatVersion = "image/v1"

// Fingerprint identifies the image's decode inputs for caching: the image
// format version and the machine (latencies enter every imgOp). Callers
// compose it with the plan key of the program/schedule the image was
// decoded from; see internal/exp.
func (img *Image) Fingerprint() string {
	return fmt.Sprintf("%s mach=%s", ImageFormatVersion, img.D.Name)
}

// DecodeImage lowers a scheduled program into its dense image. It returns
// a *DecodeError when the program or schedule cannot be represented.
func DecodeImage(prog *ir.Program, ps *sched.ProgSched, d *machine.Desc) (*Image, error) {
	if prog == nil || ps == nil || d == nil {
		return nil, &DecodeError{Func: "", Block: -1, Op: -1, Msg: "nil program, schedule, or machine"}
	}
	img := &Image{
		Prog:     prog,
		Sched:    ps,
		D:        d,
		funcs:    make(map[string]*imgFunc, len(prog.Funcs)),
		analyses: make(map[string][]*BlockAnalysis, len(prog.Funcs)),
	}
	for _, f := range prog.Funcs {
		fn, err := decodeFunc(img, f, ps.Funcs[f.Name], d)
		if err != nil {
			return nil, err
		}
		img.funcs[f.Name] = fn
		ans := make([]*BlockAnalysis, len(fn.blocks))
		for i := range fn.blocks {
			ans[i] = fn.blocks[i].an
		}
		img.analyses[f.Name] = ans
		if f.NumRegs > img.maxRegs {
			img.maxRegs = f.NumRegs
		}
	}
	return img, nil
}

func decodeFunc(img *Image, f *ir.Func, fs *sched.FuncSched, d *machine.Desc) (*imgFunc, error) {
	if f.NumRegs < 0 {
		return nil, &DecodeError{Func: f.Name, Block: -1, Op: -1, Msg: "negative register count"}
	}
	if fs == nil {
		return nil, &DecodeError{Func: f.Name, Block: -1, Op: -1, Msg: "no schedule for function"}
	}
	if len(fs.Blocks) != len(f.Blocks) {
		return nil, &DecodeError{Func: f.Name, Block: -1, Op: -1,
			Msg: fmt.Sprintf("schedule covers %d blocks, function has %d", len(fs.Blocks), len(f.Blocks))}
	}
	if f.Entry < 0 || f.Entry >= len(f.Blocks) {
		return nil, &DecodeError{Func: f.Name, Block: -1, Op: -1,
			Msg: fmt.Sprintf("entry block %d out of range", f.Entry)}
	}
	fn := &imgFunc{f: f, fs: fs, numRegs: f.NumRegs, entry: f.Entry, blocks: make([]imgBlock, len(f.Blocks))}
	for bi, b := range f.Blocks {
		if err := decodeBlock(img, fn, f, b, fs.Blocks[bi], d, bi); err != nil {
			return nil, err
		}
	}
	return fn, nil
}

func decodeBlock(img *Image, fn *imgFunc, f *ir.Func, b *ir.Block, bs *sched.BlockSched, d *machine.Desc, bi int) error {
	fail := func(op int, msg string) error {
		return &DecodeError{Func: f.Name, Block: bi, Op: op, Msg: msg}
	}
	if bs == nil {
		return fail(-1, "no schedule for block")
	}
	if bs.Block != b {
		return fail(-1, "schedule and block disagree")
	}
	an, err := Analyze(b)
	if err != nil {
		return fail(-1, err.Error())
	}
	for _, s := range b.Succs {
		if s < 0 || s >= len(f.Blocks) {
			return fail(-1, fmt.Sprintf("successor %d out of range", s))
		}
	}

	blk := &fn.blocks[bi]
	blk.an = an
	blk.bs = bs
	blk.succs = b.Succs
	blk.ops = make([]imgOp, len(b.Ops))
	blk.siteMask = make([]uint64, len(an.Sites))
	for li, site := range an.Sites {
		if site.Bit < 0 || site.Bit >= 64 {
			return fail(site.LdPredIdx, fmt.Sprintf("site bit %d out of range [0,64)", site.Bit))
		}
		blk.siteMask[li] = 1 << uint(site.Bit)
	}
	regOK := func(r ir.Reg) bool { return r == ir.NoReg || (r >= 0 && int(r) < f.NumRegs) }

	for i, op := range b.Ops {
		uses := op.Uses()
		if !regOK(op.Dest) || !regOK(op.A) || !regOK(op.B) || !regOK(op.C) {
			return fail(i, fmt.Sprintf("register out of range [0,%d)", f.NumRegs))
		}
		if op.SyncBit != ir.NoBit && (op.SyncBit < 0 || op.SyncBit >= 64) {
			return fail(i, fmt.Sprintf("Synchronization bit %d out of range [0,64)", op.SyncBit))
		}
		info := an.Info[i]
		if len(info.Producers) != len(uses) {
			return fail(i, "producer arity disagrees with uses")
		}
		o := imgOp{
			op:        op,
			uses:      uses,
			def:       op.Def(),
			lat:       int64(d.Latency(op)),
			idx:       int32(i),
			siteLocal: -1,
			ldSite:    -1,
			predSet:   info.PredSet,
			isControl: op.Code.IsTerminator() || op.Code == ir.Call,
		}
		if op.Code == ir.Load || op.Code == ir.CheckLd {
			o.ldSite = int32(img.numLoadSites)
			img.numLoadSites++
		}
		if op.SyncBit != ir.NoBit {
			o.bitMask = 1 << uint(op.SyncBit)
		}
		switch op.Code {
		case ir.LdPred, ir.CheckLd:
			li, ok := an.SiteLocal[op.PredID]
			if !ok {
				return fail(i, fmt.Sprintf("no site for prediction id %d", op.PredID))
			}
			o.siteLocal = int32(li)
			if op.PredID >= img.numSites {
				img.numSites = op.PredID + 1
			}
			if op.Code == ir.LdPred && op.SyncBit == ir.NoBit {
				return fail(i, "LdPred without a Synchronization bit")
			}
		case ir.Br:
			if len(b.Succs) < 2 {
				return fail(i, "branch in a block with fewer than two successors")
			}
		case ir.Jmp:
			if len(b.Succs) < 1 {
				return fail(i, "jump in a block with no successor")
			}
		case ir.Call:
			for _, a := range op.Args {
				if a == ir.NoReg || !regOK(a) {
					return fail(i, fmt.Sprintf("call argument register %v out of range", a))
				}
			}
		}
		o.producers = make([]int32, len(uses))
		o.srcKinds = make([]srcKind, len(uses))
		o.prodSite = make([]int32, len(uses))
		for k := range uses {
			p := info.Producers[k]
			o.producers[k] = int32(p)
			o.srcKinds[k] = srcCorrect
			o.prodSite[k] = -1
			if p < 0 {
				continue
			}
			if p >= len(b.Ops) {
				return fail(i, fmt.Sprintf("producer index %d out of range", p))
			}
			prod := b.Ops[p]
			switch {
			case prod.Code == ir.LdPred:
				o.srcKinds[k] = srcLdPred
				o.prodSite[k] = int32(an.SiteLocal[prod.PredID])
			case prod.Speculative:
				o.srcKinds[k] = srcSpec
			}
		}
		blk.ops[i] = o
	}

	blk.instrs = make([]imgInstr, len(bs.Instrs))
	for ii, in := range bs.Instrs {
		di := &blk.instrs[ii]
		di.waitBits = in.WaitBits
		di.fetchAddr = int64(img.numInstrs)
		img.numInstrs++
		di.ops = make([]int32, len(in.Ops))
		for k, op := range in.Ops {
			idx := an.IndexOf(op)
			if idx < 0 {
				return fail(-1, fmt.Sprintf("instruction %d carries an op not in the block", ii))
			}
			di.ops[k] = int32(idx)
			if op.Speculative {
				di.spec++
			}
		}
		di.sorted = append([]int32(nil), di.ops...)
		sort.Slice(di.sorted, func(a, b int) bool { return di.sorted[a] < di.sorted[b] })
		img.numOps += len(in.Ops)
	}
	return nil
}

// Validate re-checks the dense invariants of a decoded image: every index
// an engine dereferences without bounds checks (op indexes, producers,
// site locals, successors, registers) must be in range. DecodeImage output
// always validates; the fuzz harness holds the decoder to that contract.
func (img *Image) Validate() error {
	if img.Prog == nil || img.Sched == nil || img.D == nil {
		return fmt.Errorf("core: image missing program, schedule, or machine")
	}
	for _, f := range img.Prog.Funcs {
		fn := img.funcs[f.Name]
		if fn == nil {
			return fmt.Errorf("core: image missing function %q", f.Name)
		}
		if fn.entry < 0 || fn.entry >= len(fn.blocks) {
			return fmt.Errorf("core: image %s: entry %d out of range", f.Name, fn.entry)
		}
		for bi := range fn.blocks {
			blk := &fn.blocks[bi]
			if blk.an == nil || blk.bs == nil {
				return fmt.Errorf("core: image %s b%d: missing analysis or schedule", f.Name, bi)
			}
			nOps := len(blk.ops)
			nSites := len(blk.an.Sites)
			for _, s := range blk.succs {
				if s < 0 || s >= len(fn.blocks) {
					return fmt.Errorf("core: image %s b%d: successor %d out of range", f.Name, bi, s)
				}
			}
			for i := range blk.ops {
				o := &blk.ops[i]
				if o.op == nil {
					return fmt.Errorf("core: image %s b%d op%d: nil op", f.Name, bi, i)
				}
				if int(o.idx) != i {
					return fmt.Errorf("core: image %s b%d op%d: dense id %d misnumbered", f.Name, bi, i, o.idx)
				}
				if o.def != ir.NoReg && (o.def < 0 || int(o.def) >= fn.numRegs) {
					return fmt.Errorf("core: image %s b%d op%d: def register out of range", f.Name, bi, i)
				}
				for _, u := range o.uses {
					if u < 0 || int(u) >= fn.numRegs {
						return fmt.Errorf("core: image %s b%d op%d: use register out of range", f.Name, bi, i)
					}
				}
				if o.siteLocal >= 0 && int(o.siteLocal) >= nSites {
					return fmt.Errorf("core: image %s b%d op%d: site local %d out of range", f.Name, bi, i, o.siteLocal)
				}
				if o.ldSite >= 0 && int(o.ldSite) >= img.numLoadSites {
					return fmt.Errorf("core: image %s b%d op%d: load site %d outside dense space %d",
						f.Name, bi, i, o.ldSite, img.numLoadSites)
				}
				if (o.op.Code == ir.Load || o.op.Code == ir.CheckLd) && o.ldSite < 0 {
					return fmt.Errorf("core: image %s b%d op%d: load without a load-site ID", f.Name, bi, i)
				}
				if len(o.producers) != len(o.uses) || len(o.srcKinds) != len(o.uses) || len(o.prodSite) != len(o.uses) {
					return fmt.Errorf("core: image %s b%d op%d: operand metadata arity mismatch", f.Name, bi, i)
				}
				for k, p := range o.producers {
					if int(p) >= nOps {
						return fmt.Errorf("core: image %s b%d op%d: producer %d out of range", f.Name, bi, i, p)
					}
					if o.srcKinds[k] == srcLdPred && (o.prodSite[k] < 0 || int(o.prodSite[k]) >= nSites) {
						return fmt.Errorf("core: image %s b%d op%d: producer site out of range", f.Name, bi, i)
					}
				}
			}
			for ii := range blk.instrs {
				in := &blk.instrs[ii]
				if in.fetchAddr < 0 || int(in.fetchAddr) >= img.numInstrs {
					return fmt.Errorf("core: image %s b%d i%d: fetch address %d outside space %d",
						f.Name, bi, ii, in.fetchAddr, img.numInstrs)
				}
				if len(in.sorted) != len(in.ops) {
					return fmt.Errorf("core: image %s b%d i%d: sorted arity mismatch", f.Name, bi, ii)
				}
				for _, idx := range in.ops {
					if idx < 0 || int(idx) >= nOps {
						return fmt.Errorf("core: image %s b%d i%d: op id %d out of range", f.Name, bi, ii, idx)
					}
				}
				for k, idx := range in.sorted {
					if idx < 0 || int(idx) >= nOps {
						return fmt.Errorf("core: image %s b%d i%d: sorted op id %d out of range", f.Name, bi, ii, idx)
					}
					if k > 0 && in.sorted[k-1] > idx {
						return fmt.Errorf("core: image %s b%d i%d: issue order not sorted", f.Name, bi, ii)
					}
				}
			}
		}
		for i := range fn.blocks {
			blk := &fn.blocks[i]
			for _, o := range blk.ops {
				if o.op.PredID != ir.NoPred && o.op.PredID >= img.numSites {
					return fmt.Errorf("core: image %s b%d: prediction id %d outside dense site space %d",
						f.Name, i, o.op.PredID, img.numSites)
				}
			}
		}
	}
	return nil
}

// operand sources for CCB entries (the paper's OVB operand taxonomy).
type srcKind uint8

const (
	srcCorrect srcKind = iota
	srcLdPred
	srcSpec
)
