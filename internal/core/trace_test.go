package core_test

import (
	"strings"
	"testing"

	"vliwvp/internal/core"
	"vliwvp/internal/machine"
)

// TestTraceNarratesFigure7States checks that the timing trace reproduces
// the paper's Figure 7 narrative: operand states in PN/RN/C/R notation,
// verification verdicts, flushes, and recomputations.
func TestTraceNarratesFigure7States(t *testing.T) {
	d := machine.W4
	_, bs, an := paperSetup(t, d)
	tm := core.NewTiming(d)
	var lines []string
	tm.Trace = func(cycle int, event string) { lines = append(lines, event) }

	// Second load mispredicted (the paper's Figure 3(c)/7 case).
	if _, err := tm.SimulateBlock(bs, an, 0b01); err != nil {
		t.Fatal(err)
	}
	all := strings.Join(lines, "\n")
	for _, want := range []string{
		"predicted value loaded", // LdPred issue
		"buffered in CCB",        // speculative op capture
		":RN",                    // recompute-not-verified operand state
		"MISPREDICT",             // verification verdict
		"CCE flush",              // correctly speculated ops flushed
		"CCE execute",            // mis-speculated ops re-executed
		"verification completes", // check timing
	} {
		if !strings.Contains(all, want) {
			t.Errorf("trace missing %q:\n%s", want, all)
		}
	}
	// The all-correct case must narrate no recomputation.
	lines = nil
	if _, err := tm.SimulateBlock(bs, an, an.FullMask()); err != nil {
		t.Fatal(err)
	}
	all = strings.Join(lines, "\n")
	if strings.Contains(all, "CCE execute") {
		t.Error("all-correct trace shows recomputation")
	}
	if strings.Contains(all, "MISPREDICT") {
		t.Error("all-correct trace shows a misprediction")
	}
}

// TestCompensationOutlivesBlock demonstrates the architecture's central
// overlap property: on a misprediction, the Compensation Code Engine keeps
// working after the VLIW Engine has issued the block's last instruction
// (DrainCycle reaches past Length) instead of serializing in front of it.
func TestCompensationOutlivesBlock(t *testing.T) {
	d := machine.W8
	_, bs, an := paperSetup(t, d)
	tm := core.NewTiming(d)
	r, err := tm.SimulateBlock(bs, an, 0) // everything mispredicted
	if err != nil {
		t.Fatal(err)
	}
	if r.DrainCycle < r.Length-1 {
		t.Errorf("CCE drained at %d, before the block's last issue at %d — no overlap visible",
			r.DrainCycle, r.Length-1)
	}
	t.Logf("block length %d, CCE drained at cycle %d (%d ops re-executed)",
		r.Length, r.DrainCycle, r.CCEExecuted)
}
