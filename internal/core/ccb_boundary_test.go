package core_test

import (
	"strings"
	"testing"

	"vliwvp/internal/core"
	"vliwvp/internal/interp"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
)

// The strided kernel's loop block allocates a 6-bit speculative window
// with a peak runtime CCB occupancy of 4, which gives the capacity sweep
// below all three regimes: free-flowing (>= 4), stalling-but-live (2..3),
// and wedged (<= 1).

// TestCCBCapacityZeroWedges pins the dynamic simulator's convention at the
// empty-buffer boundary: capacity 0 is a literal refusal to capture, not
// "use the default". The first long instruction carrying a speculative
// operation can never issue, and the run must die on the cycle guard
// instead of looping forever.
func TestCCBCapacityZeroWedges(t *testing.T) {
	sim, _ := buildSim(t, stridedKernel, true, machine.W4)
	sim.CCBCapacity = 0
	sim.MaxCycles = 50000
	_, err := sim.Run("main")
	if err == nil {
		t.Fatal("capacity-0 run completed; expected a wedge")
	}
	if !strings.Contains(err.Error(), "cycles") {
		t.Errorf("wedge error %q does not mention the cycle guard", err)
	}
	if sim.StallCCB == 0 {
		t.Error("wedged run charged no CCB stalls")
	}
	if sim.CCEExecuted != 0 || sim.CCEFlushed != 0 {
		t.Errorf("capacity-0 run still drained entries: executed %d, flushed %d",
			sim.CCEExecuted, sim.CCEFlushed)
	}
	if sim.MaxCCBOccupancy != 0 {
		t.Errorf("capacity-0 run buffered %d entries", sim.MaxCCBOccupancy)
	}
}

// TestCCBCapacityOneWedgesAfterProgress: a single-entry buffer is big
// enough to start speculating (one entry captured, one prediction made)
// but too small for the kernel's multi-op speculative window, so the run
// wedges only after partial progress — distinct from the capacity-0 case,
// which never captures at all.
func TestCCBCapacityOneWedgesAfterProgress(t *testing.T) {
	sim, _ := buildSim(t, stridedKernel, true, machine.W4)
	sim.CCBCapacity = 1
	sim.MaxCycles = 50000
	if _, err := sim.Run("main"); err == nil {
		t.Fatal("capacity-1 run completed; expected a wedge")
	}
	if sim.MaxCCBOccupancy != 1 {
		t.Errorf("peak occupancy %d, want the single entry filled", sim.MaxCCBOccupancy)
	}
	if sim.Predictions == 0 {
		t.Error("capacity-1 run never got as far as a prediction")
	}
}

// TestCCBSmallestLiveCapacity: at capacity 2 the kernel stalls on buffer
// space every iteration yet completes with the architectural result, and
// the stall counter, the typed event stream, and the occupancy metric all
// agree.
func TestCCBSmallestLiveCapacity(t *testing.T) {
	sim, orig := buildSim(t, stridedKernel, true, machine.W4)
	sim.CCBCapacity = 2
	sink := &collectSink{}
	sim.Sink = sink
	got, err := sim.Run("main")
	if err != nil {
		t.Fatalf("capacity-2 run: %v", err)
	}
	want, err := interp.New(orig).RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("capacity-2 result %d, interpreter %d", got, want)
	}
	if sim.StallCCB == 0 {
		t.Error("two-entry buffer under a wider speculative window never stalled on CCB space")
	}
	var stallEvents int64
	for _, e := range sink.events {
		if e.Kind == obs.KindStallCCB {
			stallEvents++
		}
	}
	if stallEvents != sim.StallCCB {
		t.Errorf("%d stall.ccb events, counter says %d", stallEvents, sim.StallCCB)
	}
	if sim.MaxCCBOccupancy != 2 {
		t.Errorf("peak occupancy %d with a 2-entry buffer", sim.MaxCCBOccupancy)
	}
}

// TestCCBFullCapacityNeverStalls: at the default capacity the speculative
// window always fits, so the buffer must never be the limiting resource,
// and shrinking down to the peak occupancy must not change the cycle count.
func TestCCBFullCapacityNeverStalls(t *testing.T) {
	sim, _ := buildSim(t, stridedKernel, true, machine.W4)
	if _, err := sim.Run("main"); err != nil {
		t.Fatal(err)
	}
	if sim.StallCCB != 0 {
		t.Errorf("default-capacity run charged %d CCB stalls", sim.StallCCB)
	}
	peak, cycles := sim.MaxCCBOccupancy, sim.Cycles
	if peak <= 0 || peak > core.DefaultCCBCapacity {
		t.Errorf("peak occupancy %d outside (0, %d]", peak, core.DefaultCCBCapacity)
	}
	trim, _ := buildSim(t, stridedKernel, true, machine.W4)
	trim.CCBCapacity = peak
	if _, err := trim.Run("main"); err != nil {
		t.Fatal(err)
	}
	if trim.StallCCB != 0 || trim.Cycles != cycles {
		t.Errorf("capacity %d (the peak occupancy) ran %d cycles with %d stalls; default capacity ran %d with 0",
			peak, trim.Cycles, trim.StallCCB, cycles)
	}
}

// TestCCBDrainsFIFO pins the buffer discipline against the event stream:
// every captured entry is drained exactly once (flush or re-execute), and
// matching the i-th capture with the i-th drain never goes backwards in
// time — the definition of first-in, first-out.
func TestCCBDrainsFIFO(t *testing.T) {
	for _, capa := range []int{2, 3, core.DefaultCCBCapacity} {
		sim, _ := buildSim(t, stridedKernel, true, machine.W4)
		sim.CCBCapacity = capa
		sink := &collectSink{}
		sim.Sink = sink
		if _, err := sim.Run("main"); err != nil {
			t.Fatalf("capacity %d: %v", capa, err)
		}
		var captures, drains []obs.Event
		for _, e := range sink.events {
			switch e.Kind {
			case obs.KindBufferCCB:
				captures = append(captures, e)
			case obs.KindCCEFlush, obs.KindCCEExecute:
				drains = append(drains, e)
			}
		}
		if len(captures) == 0 {
			t.Fatalf("capacity %d: nothing was ever buffered", capa)
		}
		if len(captures) != len(drains) {
			t.Fatalf("capacity %d: %d captures but %d drains", capa, len(captures), len(drains))
		}
		for i := range captures {
			if drains[i].Cycle < captures[i].Cycle {
				t.Fatalf("capacity %d: drain %d at cycle %d precedes its capture at cycle %d",
					capa, i, drains[i].Cycle, captures[i].Cycle)
			}
		}
	}
}

// TestTimingCCBZeroMeansDefault pins the static Timing model's divergent
// convention: capacity <= 0 falls back to the default buffer size rather
// than refusing to capture, so a zero-capacity Timing run completes.
func TestTimingCCBZeroMeansDefault(t *testing.T) {
	d := machine.W4
	_, bs, an := paperSetup(t, d)
	zero := core.NewTiming(d)
	zero.CCBCapacity = 0
	rZero, err := zero.SimulateBlock(bs, an, 0)
	if err != nil {
		t.Fatalf("zero-capacity timing run: %v", err)
	}
	def := core.NewTiming(d)
	rDef, err := def.SimulateBlock(bs, an, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rZero.Length != rDef.Length {
		t.Errorf("capacity 0 length %d, default capacity length %d — <=0 must mean default",
			rZero.Length, rDef.Length)
	}
}
