package core

import (
	"fmt"

	"vliwvp/internal/machine"
	"vliwvp/internal/predict"
	"vliwvp/internal/profile"
)

// Batch runs a corpus of decoded programs through reusable simulators,
// amortizing the costs a one-shot NewSimulator+Run pays per program:
// every distinct Image gets exactly one Simulator, so repeat executions
// of the same image (sweep repetitions, warm benchmark loops, multi-arg
// corpora) hit the frame/instance pools, the retained predictor table,
// and the preallocated event wheel instead of reallocating them. The
// images themselves are decoded by the caller — typically once per
// program via the pipeline's decode pass and cached — so a corpus sweep
// decodes N programs once and simulates them M times at steady-state
// zero allocation per cycle.
//
// A Batch is not safe for concurrent use; callers that fan a corpus
// across goroutines use one Batch per worker (as exp.RunBatchCorpus
// does), which also keeps per-image predictor state deterministic.
type Batch struct {
	// CCBCapacity overrides the Compensation Code Buffer size on every
	// simulator the batch builds (0 = DefaultCCBCapacity).
	CCBCapacity int
	// MaxCycles overrides the runaway guard (0 = the simulator default).
	MaxCycles int64
	// Mem sets the memory hierarchy on every simulator the batch builds
	// (nil = flat fixed-latency loads); per-item Mem overrides it.
	Mem *machine.MemConfig
	// Pred sets the predictor configuration on every simulator the batch
	// builds (nil = legacy defaults, no gating); per-item Pred overrides
	// it.
	Pred *predict.Config
	// Ctrl sets the control-speculation configuration on every simulator
	// the batch builds (zero value = the pre-branch-predictor machine);
	// a non-zero per-item Ctrl overrides it.
	Ctrl machine.ControlConfig

	sims map[*Image]*Simulator
}

// BatchItem is one corpus execution: a decoded image, the predictor
// schemes of its sites, and the entry call.
type BatchItem struct {
	Name    string
	Img     *Image
	Schemes map[int]profile.Scheme
	// Entry is the function to run ("main" when empty).
	Entry string
	Args  []uint64
	// CCBCapacity overrides the batch/default CCB size for this item
	// (0 = inherit). Rebinding is per run: a pooled simulator picks the
	// item's capacity up each time it executes.
	CCBCapacity int
	// MaxCycles overrides the batch/default runaway guard for this item
	// (0 = inherit). Services use it as the per-request cycle budget.
	MaxCycles int64
	// Mem selects the memory-hierarchy model for this item (nil = the
	// batch's Mem, else flat fixed-latency loads). Like CCBCapacity it is
	// sim-time-only state: items differing only in Mem share one pooled
	// simulator and rebind per run.
	Mem *machine.MemConfig
	// Pred selects the predictor configuration for this item (nil = the
	// batch's Pred). Rebinds per run like Mem; an unchanged pointer reuses
	// the pooled predictor tables allocation-free.
	Pred *predict.Config
	// Ctrl selects the control-speculation configuration for this item
	// (zero value = the batch's Ctrl). Rebinds per run; an unchanged
	// Branch pointer reuses the pooled branch-predictor tables
	// allocation-free.
	Ctrl machine.ControlConfig
}

// BatchResult is one item's outcome and headline statistics.
type BatchResult struct {
	Name  string
	Value uint64
	Err   error

	Cycles      int64
	Instrs      int64
	Ops         int64
	Predictions int64
	Mispredicts int64
	CCEExecuted int64
	CCEFlushed  int64
	Output      []string
}

// NewBatch returns an empty batch.
func NewBatch() *Batch {
	return &Batch{sims: make(map[*Image]*Simulator)}
}

// simFor returns the batch's simulator for an image, building it on first
// use and rebinding its per-item configuration otherwise. CCB capacity and
// the cycle guard rebind on every call (item override, else batch override,
// else engine default), so one pooled simulator can serve items with
// different per-run budgets.
func (b *Batch) simFor(it *BatchItem) *Simulator {
	sim := b.sims[it.Img]
	if sim == nil {
		sim = NewSimulatorFromImage(it.Img, it.Schemes)
		b.sims[it.Img] = sim
	} else {
		// Same image, possibly different schemes: the predictor table
		// notices per-site scheme changes and rebuilds only those slots.
		sim.Schemes = it.Schemes
	}
	sim.CCBCapacity = DefaultCCBCapacity
	if b.CCBCapacity > 0 {
		sim.CCBCapacity = b.CCBCapacity
	}
	if it.CCBCapacity > 0 {
		sim.CCBCapacity = it.CCBCapacity
	}
	sim.MaxCycles = DefaultMaxCycles
	if b.MaxCycles > 0 {
		sim.MaxCycles = b.MaxCycles
	}
	if it.MaxCycles > 0 {
		sim.MaxCycles = it.MaxCycles
	}
	sim.MemCfg = b.Mem
	if it.Mem != nil {
		sim.MemCfg = it.Mem
	}
	sim.PredCfg = b.Pred
	if it.Pred != nil {
		sim.PredCfg = it.Pred
	}
	sim.Control = b.Ctrl
	if it.Ctrl != (machine.ControlConfig{}) {
		sim.Control = it.Ctrl
	}
	return sim
}

// SimFor exposes the pooled simulator RunAll would use for an item,
// configured exactly as a RunAll execution of the item would configure it.
// Callers that need direct simulator access — attaching an event sink,
// snapshotting per-run metrics — run the item themselves via sim.Run and
// still hit the batch's pools on the next request for the same image.
func (b *Batch) SimFor(it *BatchItem) *Simulator { return b.simFor(it) }

// NumSims reports how many pooled simulators the batch has built (one per
// distinct image it has executed).
func (b *Batch) NumSims() int { return len(b.sims) }

// CheckQuiescent verifies the pooled-state reset contract on every
// simulator the batch holds; see Simulator.CheckQuiescent. Only call it
// when no item is mid-run.
func (b *Batch) CheckQuiescent() error {
	for img, sim := range b.sims {
		if err := sim.CheckQuiescent(); err != nil {
			name := "<image>"
			if img.Prog != nil && len(img.Prog.Funcs) > 0 {
				name = img.Prog.Funcs[0].Name
			}
			return fmt.Errorf("batch sim %s: %w", name, err)
		}
	}
	return nil
}

// RunAll executes every item in order and returns one result per item. A
// failing item reports its error in its result; the batch continues.
func (b *Batch) RunAll(items []BatchItem) []BatchResult {
	return b.RunAllInto(make([]BatchResult, 0, len(items)), items)
}

// RunAllInto is RunAll appending into a caller-owned slice, so steady-state
// repeat sweeps (dst = prev[:0]) allocate nothing for the results either.
func (b *Batch) RunAllInto(dst []BatchResult, items []BatchItem) []BatchResult {
	for i := range items {
		it := &items[i]
		sim := b.simFor(it)
		entry := it.Entry
		if entry == "" {
			entry = "main"
		}
		v, err := sim.Run(entry, it.Args...)
		dst = append(dst, BatchResult{
			Name:        it.Name,
			Value:       v,
			Err:         err,
			Cycles:      sim.Cycles,
			Instrs:      sim.Instrs,
			Ops:         sim.Ops,
			Predictions: sim.Predictions,
			Mispredicts: sim.Mispredicts,
			CCEExecuted: sim.CCEExecuted,
			CCEFlushed:  sim.CCEFlushed,
			Output:      sim.Output,
		})
	}
	return dst
}
