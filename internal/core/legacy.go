package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"

	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/predict"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
)

// LegacySimulator is the original map-and-closure dual-engine stepper,
// retained verbatim as the differential oracle for the decode-once
// Simulator: the engine-diff suite (and the oracle/conform sweeps in
// legacy mode) assert that both engines produce byte-identical cycle
// counts, obs event streams, and architectural state. It allocates in the
// hot loop (cycle-keyed closure map, per-block entryOf maps, per-issue
// op sorting) and exists only as a semantic reference — new call sites
// should use Simulator.
type LegacySimulator struct {
	Prog     *ir.Program
	Sched    *sched.ProgSched
	D        *machine.Desc
	Analyses map[string][]*BlockAnalysis
	// Schemes selects the predictor family per prediction site ID.
	Schemes map[int]profile.Scheme
	// NewPredictor, when set, overrides Schemes: it is invoked once per
	// prediction site per Run to build that site's predictor. The
	// conformance harness uses it to record a site's value stream with
	// predict.Recorder and then replay it through predict.Replay as a
	// perfect predictor. Returning nil falls back to the Schemes choice.
	NewPredictor func(predID int) predict.Predictor

	// CCBCapacity bounds in-flight speculative operations.
	CCBCapacity int
	// MaxCycles aborts runaway simulations.
	MaxCycles int64
	// PredCfg parameterizes the hardware value predictors and enables
	// runtime confidence gating (see Simulator.PredCfg — the legacy
	// oracle mirrors its semantics exactly so the engine-diff holds on
	// gated runs). Nil keeps the original behavior.
	PredCfg *predict.Config
	// MemReplay, when set, drives this oracle with the per-access load
	// latencies and per-fetch stall penalties a decoded-engine run
	// recorded (Simulator.MemRec): the memory engine-diff's proof that a
	// cache hierarchy changes latency numbers and nothing else. The
	// legacy stepper has no cache model of its own.
	MemReplay *MemTrace
	// Sink, when set, receives a typed obs.Event per engine event:
	// instruction issues, stalls, predictions, CCB captures, verification
	// verdicts, compensation flushes/re-executions, and register
	// write-backs. With neither Sink nor Debug attached, the issue/stall
	// path performs no event work at all.
	Sink obs.EventSink
	// Debug is the legacy text hook (a line per engine event), rendered
	// from the typed events by the obs narrator. Ignored when Sink is set.
	Debug func(cycle int64, msg string)

	// SerialRecovery switches the machine to the prior scheme the paper
	// compares against ([4]): no Compensation Code Engine — on a
	// misprediction the main engine branches to a statically scheduled
	// recovery block, executes it serially, and branches back. The
	// architectural effects are applied immediately; the cost is charged
	// as a front-end stall of 2*BranchPenalty + RecoveryLen[site].
	SerialRecovery bool
	// RecoveryLen gives each prediction site's recovery-block schedule
	// length (from the baseline model). Sites absent from the map charge
	// one cycle.
	RecoveryLen map[int]int
	// Control is the control-speculation model (see Simulator.Control —
	// the legacy oracle mirrors its semantics exactly so the engine-diff
	// holds across the branch lattice). The legacy engine rebuilds the
	// branch predictor per run rather than pooling it.
	Control machine.ControlConfig

	// FaultCCEWritebackXor, when nonzero, corrupts every compensation
	// re-execution result by XORing it with this mask before write-back.
	// It models a CCE write-back datapath bug and exists so the
	// conformance suite can prove it catches one (the architectural
	// results then diverge from the sequential interpreter whenever a
	// misprediction forces a re-execution). Never set outside tests.
	FaultCCEWritebackXor uint64
	// FaultConfidenceMisgate mirrors Simulator.FaultConfidenceMisgate: a
	// suppressed site whose prediction turns out wrong is treated as
	// verified correct. Never set outside tests.
	FaultConfidenceMisgate bool
	// FaultBranchFlushElide mirrors Simulator.FaultBranchFlushElide: a
	// mispredicted branch fails to flush in-flight LdPred sites. Never
	// set outside tests.
	FaultBranchFlushElide bool

	// Results.
	Cycles      int64
	Instrs      int64 // long instructions issued
	Ops         int64 // operations issued on the VLIW engine
	StallSync   int64 // cycles stalled on the Synchronization register
	StallScore  int64 // cycles stalled on the register scoreboard
	StallCCB    int64 // cycles stalled on a full CCB
	StallBar    int64 // cycles stalled on call/return barriers
	CCEExecuted int64
	CCEFlushed  int64
	Mispredicts int64
	Predictions int64
	// Suppressed counts LdPred issues gated off by the confidence
	// counters (not included in Predictions); SuppressedWrong counts the
	// suppressed issues whose prediction would have been wrong.
	Suppressed      int64
	SuppressedWrong int64
	// StallRecovery counts serial-mode cycles spent in recovery blocks
	// (including branch penalties).
	StallRecovery int64
	// Branch-predictor counters (see Simulator; zero while Control.Branch
	// is nil).
	BranchPredicts    int64
	BranchMispredicts int64
	BranchFlushed     int64
	BranchSquashed    int64
	StallRedirect     int64
	// StallIFetch counts cycles stalled on replayed instruction-fetch
	// penalties (MemReplay runs only).
	StallIFetch int64
	// MaxCCBOccupancy is the peak number of in-flight CCB entries — the
	// empirical sizing requirement for the buffer (compare the E10 sweep).
	MaxCCBOccupancy int
	Output          []string
	// ccbOcc tallies the live CCB occupancy observed at each speculative
	// capture into power-of-two buckets (<=1, <=2, <=4, ... and overflow);
	// Metrics exports it as the "ccb.occupancy" histogram.
	ccbOcc [ccbOccBuckets]int64

	// internal state
	loadCur       int   // next MemReplay.Loads entry
	fetchCur      int   // next MemReplay.Fetch entry
	stallUntil    int64 // serial-mode recovery stall horizon
	redirectUntil int64 // branch redirect/flush stall horizon
	seq           int64
	bp            *predict.BranchPredictor // rebuilt each run from Control.Branch
	// pending is the in-flight check list (mirrors Simulator.pending):
	// appended at CheckLd issue, head-swept as checks resolve, walked by
	// a branch mispredict's flush.
	pending     []legacyPending
	pendingHead int
	mem         *interp.Machine // reused for operation semantics + memory
	preds       map[int]predict.Predictor
	conf        map[int]predict.ConfCounter
	vtage       *predict.VTAGE // run-shared SchemeVTAGE table
	syncBusy    uint64
	cycle       int64
	events      map[int64][]func()
	ccb         []*legacyDynEntry
	ccbHead     int
	stack       []*legacyFrame
	scratch     []uint64
	simErr      error
	callDepth   int
	finalRegs   []uint64
}

// legacyFrame is one activation record.
type legacyFrame struct {
	f        *ir.Func
	fs       *sched.FuncSched
	ans      []*BlockAnalysis
	regs     []uint64
	readyAt  []int64 // scoreboard: cycle each register's pending write lands
	lastSeq  []int64 // sequence number of the newest writer per register
	blockID  int
	instrIdx int
	inst     *legacyBlockInst // current block's speculation instance
	retDest  ir.Reg           // caller-side destination (stored on the CALLEE's legacyFrame)
	returned bool
	retVal   uint64

	// Replayed instruction-fetch state (MemReplay runs only).
	fetched    bool
	fetchUntil int64
}

// legacyBlockInst is the per-dynamic-instance speculation state of a block.
type legacyBlockInst struct {
	an    *BlockAnalysis
	sites []*legacySiteInst
	// entryOf maps op index -> CCB entry created by this instance.
	entryOf map[int]*legacyDynEntry
}

// legacyPending names one in-flight check (mirrors pendingCheck; the
// site instance is heap-allocated here, so no pinning is needed).
type legacyPending struct {
	si     *legacySiteInst
	predID int
}

// legacySiteInst is one dynamic prediction.
type legacySiteInst struct {
	predicted uint64
	resolved  bool
	correct   bool
	// suppressed marks a confidence-gated issue (see siteInst.suppressed).
	suppressed bool
	// flushed marks a site discarded by a branch mispredict while its
	// check was in flight (see siteInst.flushed).
	flushed bool
	actual  uint64
}

type legacyOperandRef struct {
	kind  srcKind
	reg   ir.Reg
	value uint64 // value observed at VLIW issue
	site  *legacySiteInst
	src   *legacyDynEntry
}

// legacyDynEntry is one Compensation Code Buffer entry (with its Operand Value
// Buffer slots inlined).
type legacyDynEntry struct {
	op       *ir.Op
	opIdx    int
	inst     *legacyBlockInst
	fr       *legacyFrame
	operands []legacyOperandRef
	seq      int64 // write sequence of the entry's own VLIW write
	issueErr error // fault observed executing speculatively on the VLIW engine

	recomputed bool
	newValue   uint64
	doneAt     int64
	bitCleared bool
}

// NewLegacySimulator wires a simulator for a scheduled (optionally transformed)
// program.
func NewLegacySimulator(prog *ir.Program, ps *sched.ProgSched, d *machine.Desc,
	schemes map[int]profile.Scheme) (*LegacySimulator, error) {

	s := &LegacySimulator{
		Prog:        prog,
		Sched:       ps,
		D:           d,
		Analyses:    map[string][]*BlockAnalysis{},
		Schemes:     schemes,
		CCBCapacity: DefaultCCBCapacity,
		MaxCycles:   1 << 34,
		preds:       map[int]predict.Predictor{},
		conf:        map[int]predict.ConfCounter{},
		events:      map[int64][]func(){},
	}
	maxRegs := 0
	for _, f := range prog.Funcs {
		ans := make([]*BlockAnalysis, len(f.Blocks))
		for i, b := range f.Blocks {
			an, err := Analyze(b)
			if err != nil {
				return nil, err
			}
			ans[i] = an
		}
		s.Analyses[f.Name] = ans
		if f.NumRegs > maxRegs {
			maxRegs = f.NumRegs
		}
	}
	s.scratch = make([]uint64, maxRegs)
	s.mem = interp.New(prog)
	return s, nil
}

// reset restores construction-time state so a reused LegacySimulator's runs are
// independent and reproducible: statistics (including MaxCCBOccupancy and
// every stall counter), engine state, predictor tables, and the
// architectural memory image all start fresh.
func (s *LegacySimulator) reset() {
	s.Cycles, s.Instrs, s.Ops = 0, 0, 0
	s.StallSync, s.StallScore, s.StallCCB, s.StallBar = 0, 0, 0, 0
	s.CCEExecuted, s.CCEFlushed, s.Mispredicts, s.Predictions = 0, 0, 0, 0
	s.Suppressed, s.SuppressedWrong = 0, 0
	s.StallRecovery = 0
	s.BranchPredicts, s.BranchMispredicts, s.BranchFlushed, s.BranchSquashed, s.StallRedirect = 0, 0, 0, 0, 0
	s.StallIFetch = 0
	s.loadCur, s.fetchCur = 0, 0
	s.MaxCCBOccupancy = 0
	s.ccbOcc = [ccbOccBuckets]int64{}
	s.Output = nil
	s.stallUntil, s.redirectUntil, s.seq, s.cycle = 0, 0, 0, 0
	s.callDepth = 0
	s.syncBusy = 0
	s.simErr = nil
	s.events = map[int64][]func(){}
	s.ccb, s.ccbHead = nil, 0
	s.stack = nil
	s.preds = map[int]predict.Predictor{}
	s.conf = map[int]predict.ConfCounter{}
	s.vtage = nil
	s.bp = predict.NewBranchPredictor(s.Control.Branch)
	s.pending, s.pendingHead = nil, 0
	s.mem.Reset()
}

// tracing reports whether any event consumer is attached; emitters guard
// on it so the disabled path builds no events.
func (s *LegacySimulator) tracing() bool { return s.Sink != nil || s.Debug != nil }

// emit delivers one event to the typed sink, or narrates it into the
// legacy Debug hook.
func (s *LegacySimulator) emit(e *obs.Event) {
	if s.Sink != nil {
		s.Sink.Event(e)
		return
	}
	if s.Debug != nil {
		s.Debug(e.Cycle, obs.Narrate(e))
	}
}

// Metrics returns the observability snapshot of the most recent Run (or
// the zeroed state before any run): every stall cause, prediction and
// compensation counter, plus the CCB occupancy histogram. Snapshots of
// identical runs are identical (see reset).
func (s *LegacySimulator) Metrics() obs.Snapshot {
	reg := obs.NewRegistry()
	s.PublishMetrics(reg)
	return reg.Snapshot()
}

// PublishMetrics writes the run's counters and histograms into a shared
// registry (callers aggregating several simulators snapshot the registry
// once at the end).
func (s *LegacySimulator) PublishMetrics(reg *obs.Registry) {
	set := func(name string, v int64) { reg.Counter(name).Set(v) }
	set("sim.cycles", s.Cycles)
	set("sim.instrs", s.Instrs)
	set("sim.ops", s.Ops)
	set("stall.sync", s.StallSync)
	set("stall.scoreboard", s.StallScore)
	set("stall.ccb", s.StallCCB)
	set("stall.barrier", s.StallBar)
	set("stall.recovery", s.StallRecovery)
	set("stall.redirect", s.StallRedirect)
	set("branch.predicts", s.BranchPredicts)
	set("branch.mispredicted", s.BranchMispredicts)
	set("branch.flushed", s.BranchFlushed)
	set("branch.squashed", s.BranchSquashed)
	set("stall.ifetch", s.StallIFetch)
	set("pred.predictions", s.Predictions)
	set("pred.mispredicted", s.Mispredicts)
	set("pred.verified", s.Predictions-s.Mispredicts)
	set("pred.suppressed", s.Suppressed)
	set("pred.suppressed_wrong", s.SuppressedWrong)
	set("cce.flushed", s.CCEFlushed)
	set("cce.executed", s.CCEExecuted)
	set("ccb.max_occupancy", int64(s.MaxCCBOccupancy))
	h := reg.Histogram("ccb.occupancy", obs.Pow2Bounds(ccbOccBuckets-1))
	for i, n := range s.ccbOcc {
		h.SetBucket(i, n)
	}
}

// Run executes the entry function and returns its result. Each call starts
// from a fresh architectural state: a LegacySimulator may be reused, and every
// run reports independent statistics.
func (s *LegacySimulator) Run(entry string, args ...uint64) (uint64, error) {
	f := s.Prog.Func(entry)
	if f == nil {
		return 0, fmt.Errorf("core: no function %q", entry)
	}
	if err := s.PredCfg.Validate(); err != nil {
		return 0, err
	}
	if err := s.Control.Validate(); err != nil {
		return 0, err
	}
	s.reset()
	root := s.newFrame(f, ir.NoReg)
	copy(root.regs, args)
	s.stack = append(s.stack, root)

	for {
		if s.cycle > s.MaxCycles {
			return 0, fmt.Errorf("core: exceeded %d cycles (deadlock?)", s.MaxCycles)
		}
		// 1. Apply this cycle's events (bit clears, register write-backs,
		// check resolutions).
		if evs, ok := s.events[s.cycle]; ok {
			for _, ev := range evs {
				ev()
			}
			delete(s.events, s.cycle)
		}
		if s.simErr != nil {
			return 0, s.simErr
		}

		// 2. VLIW Engine issue attempt.
		done, err := s.stepVLIW()
		if err != nil {
			return 0, err
		}

		// 3. Compensation Code Engine: dispatch at most one entry.
		s.stepCCE()
		if s.simErr != nil {
			return 0, s.simErr
		}

		if done {
			// Drain: let outstanding events (writes) land for determinism.
			for len(s.events) > 0 {
				s.cycle++
				if evs, ok := s.events[s.cycle]; ok {
					for _, ev := range evs {
						ev()
					}
					delete(s.events, s.cycle)
				}
			}
			s.Cycles = s.cycle + 1
			s.Output = s.mem.Output
			s.finalRegs = append(s.finalRegs[:0], root.regs...)
			return root.retVal, s.simErr
		}
		s.cycle++
	}
}

// FinalRegs returns the root frame's register file as of the end of the
// most recent successful Run — the legacy half of the engine-diff
// comparison. The slice is reused across runs.
func (s *LegacySimulator) FinalRegs() []uint64 { return s.finalRegs }

func (s *LegacySimulator) newFrame(f *ir.Func, retDest ir.Reg) *legacyFrame {
	return &legacyFrame{
		f:       f,
		fs:      s.Sched.Funcs[f.Name],
		ans:     s.Analyses[f.Name],
		regs:    make([]uint64, f.NumRegs),
		readyAt: make([]int64, f.NumRegs),
		lastSeq: make([]int64, f.NumRegs),
		blockID: f.Entry,
		retDest: retDest,
	}
}

// stepVLIW attempts to issue the current long instruction of the top legacyFrame.
// It returns done=true when the root legacyFrame has returned.
func (s *LegacySimulator) stepVLIW() (bool, error) {
	fr := s.stack[len(s.stack)-1]
	if fr.returned {
		return s.popFrame(fr)
	}
	if s.cycle < s.redirectUntil {
		s.StallRedirect++
		return false, nil
	}
	if s.cycle < s.stallUntil {
		s.StallRecovery++
		return false, nil
	}
	bs := fr.fs.Blocks[fr.blockID]
	if fr.inst == nil {
		fr.inst = s.newBlockInst(fr)
	}
	if fr.instrIdx >= len(bs.Instrs) {
		// Empty block (no terminator would be invalid; handled at build).
		return false, fmt.Errorf("core: ran off schedule of %s b%d", fr.f.Name, fr.blockID)
	}
	in := bs.Instrs[fr.instrIdx]

	// Replayed instruction fetch: consume one recorded penalty per
	// dynamic instruction (mirroring the decoded engine's I-cache probe)
	// and stall until the fetch completes.
	if s.MemReplay != nil && len(s.MemReplay.Fetch) > 0 {
		if !fr.fetched {
			fr.fetched = true
			pen := int64(0)
			if s.fetchCur < len(s.MemReplay.Fetch) {
				pen = s.MemReplay.Fetch[s.fetchCur]
				s.fetchCur++
			}
			fr.fetchUntil = s.cycle + pen
		}
		if s.cycle < fr.fetchUntil {
			s.StallIFetch++
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
					Kind: obs.KindStallIFetch, Bit: -1})
			}
			return false, nil
		}
	}

	// Synchronization-register stall.
	if in.WaitBits&s.syncBusy != 0 {
		s.StallSync++
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindStallSync, Bit: -1, Wait: in.WaitBits, Busy: s.syncBusy})
		}
		return false, nil
	}
	// Scoreboard stall: every source (and destination) register must have
	// its pending write landed.
	for _, op := range in.Ops {
		for _, u := range op.Uses() {
			if fr.readyAt[u] > s.cycle {
				s.StallScore++
				if s.tracing() {
					s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
						Kind: obs.KindStallScore, Op: op, Bit: -1, Reg: u})
				}
				return false, nil
			}
		}
		if d := op.Def(); d != ir.NoReg && fr.readyAt[d] > s.cycle {
			s.StallScore++
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
					Kind: obs.KindStallScore, Op: op, Bit: -1, Reg: d})
			}
			return false, nil
		}
	}
	// Structural stalls: CCB space, Synchronization bit reuse, barriers.
	specNeeded := 0
	for _, op := range in.Ops {
		if op.Speculative {
			specNeeded++
		}
		if op.SyncBit != ir.NoBit && op.Code != ir.CheckLd && s.syncBusy&(1<<uint(op.SyncBit)) != 0 {
			s.StallSync++
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
					Kind: obs.KindStallSync, Op: op, Bit: op.SyncBit,
					Wait: 1 << uint(op.SyncBit), Busy: s.syncBusy})
			}
			return false, nil
		}
		if op.Code == ir.Call || op.Code == ir.Ret {
			if s.syncBusy != 0 || s.ccbHead < len(s.ccb) {
				s.StallBar++
				if s.tracing() {
					s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
						Kind: obs.KindStallBarrier, Op: op, Bit: -1, Busy: s.syncBusy})
				}
				return false, nil
			}
		}
	}
	if specNeeded > 0 && len(s.ccb)-s.ccbHead+specNeeded > s.CCBCapacity {
		s.StallCCB++
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindStallCCB, Bit: -1})
		}
		return false, nil
	}

	if s.tracing() {
		s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW, Kind: obs.KindInstrIssue,
			Bit: -1, Func: fr.f.Name, Block: fr.blockID, Instr: fr.instrIdx})
	}
	// Issue. Operations within one long instruction execute in program
	// order so same-cycle anti-dependences (reader packed with a later
	// writer) read the old value.
	s.Instrs++
	an := fr.ans[fr.blockID]
	ops := append([]*ir.Op(nil), in.Ops...)
	sort.Slice(ops, func(i, j int) bool { return an.IndexOf(ops[i]) < an.IndexOf(ops[j]) })
	var control *ir.Op
	for _, op := range ops {
		s.Ops++
		if op.Code.IsTerminator() || op.Code == ir.Call {
			control = op // handled after data ops so same-cycle state is set
			continue
		}
		if err := s.issueDataOp(fr, op); err != nil {
			return false, err
		}
	}
	fr.instrIdx++
	fr.fetched = false
	if control != nil {
		return s.issueControl(fr, control)
	}
	return false, nil
}

// replayLoadLat consumes the next recorded demand-load latency, or returns
// the machine-description default when no replay is attached (or the trace
// is exhausted — the engine-diff separately asserts full consumption).
func (s *LegacySimulator) replayLoadLat(def int64) int64 {
	if s.MemReplay == nil || s.loadCur >= len(s.MemReplay.Loads) {
		return def
	}
	lat := s.MemReplay.Loads[s.loadCur]
	s.loadCur++
	return lat
}

func (s *LegacySimulator) newBlockInst(fr *legacyFrame) *legacyBlockInst {
	an := fr.ans[fr.blockID]
	bi := &legacyBlockInst{an: an, entryOf: map[int]*legacyDynEntry{}}
	for range an.Sites {
		bi.sites = append(bi.sites, &legacySiteInst{})
	}
	return bi
}

// issueDataOp performs the VLIW-side execution of one non-control op.
func (s *LegacySimulator) issueDataOp(fr *legacyFrame, op *ir.Op) error {
	an := fr.ans[fr.blockID]
	lat := int64(s.D.Latency(op))

	switch op.Code {
	case ir.LdPred:
		li := an.SiteLocal[op.PredID]
		si := fr.inst.sites[li]
		p := s.sitePredictor(op.PredID)
		v, _ := p.Predict() // cold predictors supply 0 (and mispredict)
		si.predicted = v
		si.suppressed = s.PredCfg.Gating() &&
			!s.conf[op.PredID].Confident(s.PredCfg.ConfThreshold)
		s.syncBusy |= 1 << uint(op.SyncBit)
		if s.tracing() {
			kind := obs.KindLdPredIssue
			if si.suppressed {
				kind = obs.KindPredSuppress
			}
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: kind, Op: op, Bit: op.SyncBit, Predicted: int64(v)})
		}
		s.writeReg(fr, op.Dest, v, lat)
		if si.suppressed {
			s.Suppressed++
		} else {
			s.Predictions++
		}
		return nil

	case ir.CheckLd:
		li := an.SiteLocal[op.PredID]
		si := fr.inst.sites[li]
		addr := int64(fr.regs[op.A]) + op.Imm
		if addr < 1 || addr >= int64(len(s.mem.Mem)) {
			return fmt.Errorf("core: %s: check load address %d out of range", fr.f.Name, addr)
		}
		actual := s.mem.Mem[addr]
		lat = s.replayLoadLat(lat)
		bit := uint64(1) << uint(an.Sites[li].Bit)
		seq := s.nextSeq(fr, op.Dest)
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindCheckIssue, Op: op, Bit: -1, Done: s.cycle + lat,
				Site: op.PredID, Correct: actual == si.predicted})
		}
		s.at(s.cycle+lat, func() {
			si.resolved = true
			si.actual = actual
			correct := actual == si.predicted
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
					Kind: obs.KindCheckResolve, Op: op, Bit: -1, Site: op.PredID,
					Predicted: int64(si.predicted), Actual: int64(actual),
					Correct: correct, Gated: si.suppressed, Flushed: si.flushed})
			}
			s.syncBusy &^= bit // the LdPred bit always clears
			verified := correct && !si.suppressed && !si.flushed
			if si.suppressed && !correct {
				s.SuppressedWrong++
				if s.FaultConfidenceMisgate {
					verified = true
				}
			}
			if verified {
				si.correct = true
				s.clearVerifiedBits()
			} else {
				if !si.suppressed && !correct {
					s.Mispredicts++
				}
				s.applyWrite(fr, op.Dest, actual, seq)
				if s.SerialRecovery {
					// Branch to the statically scheduled recovery block,
					// run it serially on the main engine, branch back. A
					// suppressed or flushed site charges only the recovery
					// schedule (the fall-through path, no taken branches).
					rl, ok := s.RecoveryLen[op.PredID]
					if !ok {
						rl = 1
					}
					stall := int64(rl)
					if !si.suppressed && !correct {
						stall += int64(2 * s.Control.BranchPenalty)
					}
					until := s.cycle + stall
					if until > s.stallUntil {
						s.stallUntil = until
					}
				}
			}
			if s.SerialRecovery {
				s.drainResolvedSerial()
			}
			if s.PredCfg.Gating() {
				c := s.conf[op.PredID]
				c.Train(correct, s.PredCfg.ConfMax())
				s.conf[op.PredID] = c
			}
			p := s.sitePredictor(op.PredID)
			p.Update(actual)
			// Sweep resolved entries off the pending-check list's head
			// (mirrors Simulator.resolveCheck).
			for s.pendingHead < len(s.pending) {
				if !s.pending[s.pendingHead].si.resolved {
					break
				}
				s.pending[s.pendingHead] = legacyPending{}
				s.pendingHead++
			}
			if s.pendingHead == len(s.pending) {
				s.pending, s.pendingHead = s.pending[:0], 0
			}
		})
		s.pending = append(s.pending, legacyPending{si: si, predID: op.PredID})
		fr.readyAt[op.Dest] = s.cycle + lat
		return nil

	default:
		if op.Speculative {
			return s.issueSpecOp(fr, an, op)
		}
		// Non-speculative: operands are verified correct; execute with
		// architectural state and real fault semantics. Load latencies
		// replay before execution, matching the decoded engine's
		// access-then-execute record order.
		if op.Code == ir.Load {
			lat = s.replayLoadLat(lat)
		}
		v, err := s.execValue(fr.f, op, fr.regs)
		if err != nil {
			return fmt.Errorf("core: %s b%d %s: %w", fr.f.Name, fr.blockID, op, err)
		}
		if d := op.Def(); d != ir.NoReg {
			s.writeReg(fr, d, v, lat)
		}
		return nil
	}
}

// issueSpecOp executes a speculative op with (possibly predicted) register
// values and buffers it in the CCB for verification-driven flush/re-execute.
func (s *LegacySimulator) issueSpecOp(fr *legacyFrame, an *BlockAnalysis, op *ir.Op) error {
	idx := an.IndexOf(op)
	uses := op.Uses()
	info := an.Info[idx]

	// If every prediction this op consumes has already verified correct,
	// its operands are plain correct values: issue it as an ordinary op.
	if s.predsVerifiedCorrect(fr.inst, info.PredSet) {
		lat := int64(s.D.Latency(op))
		if op.Code == ir.Load {
			lat = s.replayLoadLat(lat)
		}
		v, err := s.execValue(fr.f, op, fr.regs)
		if err != nil {
			return fmt.Errorf("core: %s: %w", op, err)
		}
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindPlainIssue, Op: op, Bit: -1})
		}
		s.writeReg(fr, op.Dest, v, lat)
		return nil
	}

	e := &legacyDynEntry{op: op, opIdx: idx, inst: fr.inst, fr: fr}
	for k, u := range uses {
		ref := legacyOperandRef{kind: srcCorrect, reg: u, value: fr.regs[u]}
		if p := info.Producers[k]; p >= 0 {
			prod := an.Block.Ops[p]
			switch {
			case prod.Code == ir.LdPred:
				ref.kind = srcLdPred
				ref.site = fr.inst.sites[an.SiteLocal[prod.PredID]]
			case prod.Speculative:
				ref.kind = srcSpec
				ref.src = fr.inst.entryOf[p]
			}
		}
		e.operands = append(e.operands, ref)
	}

	// Execute on the VLIW engine with current (predicted) values.
	// Speculative faults are deferred: a poison zero result stands in until
	// verification decides whether the fault was real.
	lat := int64(s.D.Latency(op))
	if op.Code == ir.Load {
		lat = s.replayLoadLat(lat)
	}
	v, err := s.execValue(fr.f, op, fr.regs)
	if err != nil {
		e.issueErr = err
		v = 0
	}
	s.syncBusy |= 1 << uint(op.SyncBit)
	e.seq = s.nextSeq(fr, op.Dest)
	s.applyWriteAt(fr, op.Dest, v, e.seq, s.cycle+lat)
	fr.readyAt[op.Dest] = s.cycle + lat

	fr.inst.entryOf[idx] = e
	s.ccb = append(s.ccb, e)
	live := len(s.ccb) - s.ccbHead
	if live > s.MaxCCBOccupancy {
		s.MaxCCBOccupancy = live
	}
	occ := bits.Len(uint(live - 1))
	if occ >= ccbOccBuckets {
		occ = ccbOccBuckets - 1
	}
	s.ccbOcc[occ]++
	if s.tracing() {
		s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
			Kind: obs.KindBufferCCB, Op: op, Bit: op.SyncBit,
			Operands: legacyDynSiteStates(fr.inst, info.PredSet)})
	}
	return nil
}

// legacyDynSiteStates renders the dynamic verification state of every prediction
// site a buffered op depends on, in the paper's notation: PN before the
// site's check resolves, then C or R (see DESIGN.md §8).
func legacyDynSiteStates(inst *legacyBlockInst, set uint32) []obs.SiteState {
	var out []obs.SiteState
	for li, si := range inst.sites {
		if set&(1<<uint(li)) == 0 {
			continue
		}
		state := obs.StatePN
		if si.resolved {
			if si.correct {
				state = obs.StateC
			} else {
				state = obs.StateR
			}
		}
		out = append(out, obs.SiteState{Site: li, State: state})
	}
	return out
}

// issueControl handles branches, calls, and returns (issued after the data
// ops of the same long instruction).
func (s *LegacySimulator) issueControl(fr *legacyFrame, op *ir.Op) (bool, error) {
	b := fr.f.Blocks[fr.blockID]
	switch op.Code {
	case ir.Jmp:
		s.enterBlock(fr, b.Succs[0])
		return false, nil
	case ir.Br:
		taken := fr.regs[op.A] != 0
		if s.Control.Dynamic() {
			pc := branchPC(fr.f.Name, fr.blockID)
			pred := s.bp.Predict(pc)
			s.BranchPredicts++
			if pred != taken {
				s.BranchMispredicts++
				if s.tracing() {
					var p int64
					if pred {
						p = 1
					}
					s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
						Kind: obs.KindBranchMispredict, Bit: -1,
						Func: fr.f.Name, Block: fr.blockID, Predicted: p})
				}
				if !s.FaultBranchFlushElide {
					s.flushInFlight()
				}
				if until := s.cycle + int64(s.Control.FlushLat()); until > s.redirectUntil {
					s.redirectUntil = until
				}
			} else if taken {
				if until := s.cycle + int64(s.Control.RedirectLat()); until > s.redirectUntil {
					s.redirectUntil = until
				}
			}
			s.bp.Update(pc, taken)
		}
		if taken {
			s.enterBlock(fr, b.Succs[0])
		} else {
			s.enterBlock(fr, b.Succs[1])
		}
		return false, nil
	case ir.Call:
		return false, s.issueCall(fr, op)
	case ir.Ret:
		var v uint64
		if op.A != ir.NoReg {
			v = fr.regs[op.A]
		}
		fr.returned = true
		fr.retVal = v
		return s.popFrame(fr)
	}
	return false, fmt.Errorf("core: unexpected control op %s", op)
}

// flushInFlight mirrors Simulator.flushInFlight: every in-flight
// (issued, unresolved) site is marked branch-flushed and will take the
// repair path when its check closure fires, and the verified-correct
// head run of the compensation buffer is squashed wholesale instead of
// draining through the CCE at one no-op flush per cycle.
func (s *LegacySimulator) flushInFlight() {
	for i := s.pendingHead; i < len(s.pending); i++ {
		pc := s.pending[i]
		if pc.si.resolved || pc.si.flushed {
			continue
		}
		pc.si.flushed = true
		s.BranchFlushed++
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindBranchFlush, Bit: -1, Site: pc.predID})
		}
	}
	for s.ccbHead < len(s.ccb) {
		e := s.ccb[s.ccbHead]
		if !s.predsVerifiedCorrect(e.inst, e.inst.an.Info[e.opIdx].PredSet) {
			break
		}
		// A deferred speculative fault on an all-correct path is a real
		// fault, exactly as on the CCE flush path.
		if e.issueErr != nil {
			s.simErr = fmt.Errorf("core: %s: %w", e.op, e.issueErr)
		}
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineCCE,
				Kind: obs.KindBranchFlush, Op: e.op, Bit: -1})
		}
		if !e.bitCleared {
			e.bitCleared = true
			bit := uint64(0)
			if e.op.SyncBit != ir.NoBit {
				bit = 1 << uint(e.op.SyncBit)
			}
			s.at(s.cycle+1, func() { s.syncBusy &^= bit })
		}
		s.BranchFlushed++
		s.BranchSquashed++
		s.ccbHead++
	}
	s.compactCCB()
}

func (s *LegacySimulator) enterBlock(fr *legacyFrame, next int) {
	fr.blockID = next
	fr.instrIdx = 0
	fr.inst = nil
	fr.fetched = false
}

func (s *LegacySimulator) issueCall(fr *legacyFrame, op *ir.Op) error {
	switch op.Sym {
	case "print":
		s.mem.Output = append(s.mem.Output, strconv.FormatInt(int64(fr.regs[op.Args[0]]), 10))
		return nil
	case "fprint":
		v := math.Float64frombits(fr.regs[op.Args[0]])
		s.mem.Output = append(s.mem.Output, strconv.FormatFloat(v, 'g', -1, 64))
		return nil
	}
	callee := s.Prog.Func(op.Sym)
	if callee == nil {
		return fmt.Errorf("core: call to unknown %q", op.Sym)
	}
	if s.callDepth > maxSimCallDepth {
		return fmt.Errorf("core: call depth exceeded at %q", op.Sym)
	}
	s.callDepth++
	nf := s.newFrame(callee, op.Dest)
	for i, a := range op.Args {
		nf.regs[i] = fr.regs[a]
	}
	s.stack = append(s.stack, nf)
	return nil
}

// popFrame retires a returned legacyFrame, delivering the return value.
func (s *LegacySimulator) popFrame(fr *legacyFrame) (bool, error) {
	if len(s.stack) == 1 {
		return true, nil // root function returned
	}
	s.stack = s.stack[:len(s.stack)-1]
	s.callDepth--
	caller := s.stack[len(s.stack)-1]
	if fr.retDest != ir.NoReg {
		s.writeReg(caller, fr.retDest, fr.retVal, 1)
	}
	return false, nil
}

// drainResolvedSerial retires buffered speculative entries in the serial
// recovery machine: once every prediction an entry depends on is verified,
// the entry is either discarded (all correct) or architecturally
// re-executed immediately — the recovery block's serial execution time was
// already charged as a stall when the misprediction was detected.
func (s *LegacySimulator) drainResolvedSerial() {
	for s.ccbHead < len(s.ccb) {
		e := s.ccb[s.ccbHead]
		need := e.inst.an.Info[e.opIdx].PredSet
		wrong := false
		resolved := true
		for li, si := range e.inst.sites {
			if need&(1<<uint(li)) == 0 {
				continue
			}
			if !si.resolved {
				resolved = false
				break
			}
			if !si.correct {
				wrong = true
			}
		}
		if !resolved {
			return
		}
		bit := uint64(0)
		if e.op.SyncBit != ir.NoBit {
			bit = 1 << uint(e.op.SyncBit)
		}
		if wrong {
			for _, ref := range e.operands {
				s.scratch[ref.reg] = ref.correctedValue()
			}
			v, err := s.execValue(e.fr.f, e.op, s.scratch)
			if err != nil {
				s.simErr = fmt.Errorf("core: serial recovery of %s: %w", e.op, err)
				return
			}
			v ^= s.FaultCCEWritebackXor
			e.recomputed = true
			e.newValue = v
			e.doneAt = s.cycle
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineCCE,
					Kind: obs.KindCCEExecute, Op: e.op, Bit: e.op.SyncBit, Done: e.doneAt})
			}
			// Re-issue under a fresh sequence number: the recovery block's
			// write supersedes the original operation's still-in-flight
			// predicted-path writeback.
			seq := s.nextSeq(e.fr, e.op.Dest)
			s.applyWrite(e.fr, e.op.Dest, v, seq)
			s.CCEExecuted++
		} else {
			if e.issueErr != nil {
				s.simErr = fmt.Errorf("core: %s: %w", e.op, e.issueErr)
				return
			}
			if s.tracing() {
				s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineCCE,
					Kind: obs.KindCCEFlush, Op: e.op, Bit: -1})
			}
			s.CCEFlushed++
		}
		if !e.bitCleared {
			e.bitCleared = true
			s.syncBusy &^= bit
		}
		s.ccbHead++
	}
	s.compactCCB()
}

// stepCCE dispatches at most one Compensation Code Buffer entry per cycle.
func (s *LegacySimulator) stepCCE() {
	if s.SerialRecovery {
		// No second engine in the [4] baseline machine: entries retire
		// inline as soon as their predictions are all verified (their cost
		// was charged as a recovery stall at misprediction time).
		s.drainResolvedSerial()
		return
	}
	if s.ccbHead >= len(s.ccb) {
		return
	}
	e := s.ccb[s.ccbHead]
	// All involved predictions must be verified.
	need := e.inst.an.Info[e.opIdx].PredSet
	wrong := false
	for li, si := range e.inst.sites {
		if need&(1<<uint(li)) == 0 {
			continue
		}
		if !si.resolved {
			return // stall
		}
		if !si.correct {
			wrong = true
		}
	}

	defer s.compactCCB()
	bit := uint64(0)
	if e.op.SyncBit != ir.NoBit {
		bit = 1 << uint(e.op.SyncBit)
	}
	if !wrong {
		// Flush: the VLIW-computed value was correct. A deferred
		// speculative fault on an all-correct path is a real fault.
		if e.issueErr != nil {
			s.simErr = fmt.Errorf("core: %s: %w", e.op, e.issueErr)
		}
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineCCE,
				Kind: obs.KindCCEFlush, Op: e.op, Bit: -1})
		}
		if !e.bitCleared {
			e.bitCleared = true
			s.at(s.cycle+1, func() { s.syncBusy &^= bit })
		}
		s.CCEFlushed++
		s.ccbHead++
		return
	}
	// Re-execute with corrected operand values once they are available.
	for _, ref := range e.operands {
		if ref.kind == srcSpec && ref.src != nil && ref.src.recomputed && ref.src.doneAt > s.cycle {
			return // corrected producer value still in the pipeline
		}
	}
	for _, ref := range e.operands {
		s.scratch[ref.reg] = ref.correctedValue()
	}
	lat := int64(s.D.Latency(e.op))
	if e.op.Code == ir.Load {
		lat = s.replayLoadLat(lat)
	}
	v, err := s.execValue(e.fr.f, e.op, s.scratch)
	if err != nil {
		// Correct operands and still faulting: a real fault.
		s.simErr = fmt.Errorf("core: compensation re-execution of %s: %w", e.op, err)
		return
	}
	v ^= s.FaultCCEWritebackXor
	e.recomputed = true
	e.newValue = v
	e.doneAt = s.cycle + lat
	if s.tracing() {
		s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineCCE,
			Kind: obs.KindCCEExecute, Op: e.op, Bit: e.op.SyncBit, Done: e.doneAt})
	}
	fr, op, seq := e.fr, e.op, e.seq
	cleared := e.bitCleared
	e.bitCleared = true
	s.at(e.doneAt, func() {
		if !cleared {
			s.syncBusy &^= bit
		}
		s.applyWrite(fr, op.Dest, v, seq)
	})
	s.CCEExecuted++
	s.ccbHead++
}

// predsVerifiedCorrect reports whether every site in the local predset has
// resolved as a correct prediction.
func (s *LegacySimulator) predsVerifiedCorrect(inst *legacyBlockInst, set uint32) bool {
	for li, si := range inst.sites {
		if set&(1<<uint(li)) == 0 {
			continue
		}
		if !si.resolved || !si.correct {
			return false
		}
	}
	return true
}

// clearVerifiedBits clears the Synchronization bits of buffered speculative
// ops whose every involved prediction has verified correct — the run-time
// effect of the check-prediction ClearBits encoding, generalized to
// multi-prediction dependents (cleared when the last involved check
// verifies).
func (s *LegacySimulator) clearVerifiedBits() {
	for i := s.ccbHead; i < len(s.ccb); i++ {
		e := s.ccb[i]
		if e.bitCleared || e.op.SyncBit == ir.NoBit {
			continue
		}
		if s.predsVerifiedCorrect(e.inst, e.inst.an.Info[e.opIdx].PredSet) {
			s.syncBusy &^= 1 << uint(e.op.SyncBit)
			e.bitCleared = true
		}
	}
}

// compactCCB reclaims retired entries occasionally.
func (s *LegacySimulator) compactCCB() {
	if s.ccbHead > 256 && s.ccbHead*2 > len(s.ccb) {
		s.ccb = append([]*legacyDynEntry(nil), s.ccb[s.ccbHead:]...)
		s.ccbHead = 0
	}
}

// correctedValue resolves an operand through the Operand Value Buffer
// semantics: predicted values are replaced by their verified values,
// speculatively computed values by their recomputed ones.
func (r *legacyOperandRef) correctedValue() uint64 {
	switch r.kind {
	case srcLdPred:
		if r.site.resolved {
			return r.site.actual
		}
		return r.value
	case srcSpec:
		if r.src != nil && r.src.recomputed {
			return r.src.newValue
		}
		return r.value
	default:
		return r.value
	}
}

// execValue runs one operation's semantics against the given register file
// and returns the destination value (0 for ops without one).
func (s *LegacySimulator) execValue(f *ir.Func, op *ir.Op, regs []uint64) (uint64, error) {
	if err := s.mem.ExecOp(f, op, regs); err != nil {
		return 0, err
	}
	if d := op.Def(); d != ir.NoReg {
		return regs[d], nil
	}
	return 0, nil
}

// writeReg schedules a register write that lands lat cycles after issue.
func (s *LegacySimulator) writeReg(fr *legacyFrame, r ir.Reg, v uint64, lat int64) {
	if r == ir.NoReg {
		return
	}
	seq := s.nextSeq(fr, r)
	s.applyWriteAt(fr, r, v, seq, s.cycle+lat)
	fr.readyAt[r] = s.cycle + lat
}

func (s *LegacySimulator) nextSeq(fr *legacyFrame, r ir.Reg) int64 {
	s.seq++
	if r != ir.NoReg {
		fr.lastSeq[r] = s.seq
	}
	return s.seq
}

func (s *LegacySimulator) applyWriteAt(fr *legacyFrame, r ir.Reg, v uint64, seq, when int64) {
	s.at(when, func() { s.applyWrite(fr, r, v, seq) })
}

// applyWrite commits a register value unless a newer writer has claimed the
// register (the write-port arbitration that keeps late compensation
// write-backs from clobbering younger definitions).
func (s *LegacySimulator) applyWrite(fr *legacyFrame, r ir.Reg, v uint64, seq int64) {
	if r == ir.NoReg {
		return
	}
	if fr.lastSeq[r] != seq {
		if s.tracing() {
			s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
				Kind: obs.KindRegWriteSuppressed, Bit: -1, Reg: r,
				Value: int64(v), Seq: seq, LastSeq: fr.lastSeq[r]})
		}
		return
	}
	if s.tracing() {
		s.emit(&obs.Event{Cycle: s.cycle, Engine: obs.EngineVLIW,
			Kind: obs.KindRegWrite, Bit: -1, Reg: r, Value: int64(v), Seq: seq})
	}
	fr.regs[r] = v
}

func (s *LegacySimulator) at(cycle int64, f func()) {
	if cycle <= s.cycle {
		f()
		return
	}
	s.events[cycle] = append(s.events[cycle], f)
}

func (s *LegacySimulator) sitePredictor(predID int) predict.Predictor {
	p := s.preds[predID]
	if p == nil {
		if s.NewPredictor != nil {
			p = s.NewPredictor(predID)
		}
		if p == nil {
			switch s.Schemes[predID] {
			case profile.SchemeFCM:
				p = predict.NewFCM(s.PredCfg.Order(), s.PredCfg.TableBits())
			case profile.SchemeLast:
				p = predict.NewLastValue()
			case profile.SchemeLNV:
				p = predict.NewLastN(s.PredCfg.Depth())
			case profile.SchemeHybrid:
				p = predict.NewHybrid(s.PredCfg.Order(), s.PredCfg.TableBits())
			case profile.SchemeVTAGE:
				if s.vtage == nil {
					s.vtage = predict.NewVTAGE(s.PredCfg.TagTableBits())
				}
				p = s.vtage.Site(predID)
			default:
				p = predict.NewStride()
			}
		}
		s.preds[predID] = p
	}
	return p
}

// Memory returns the simulator's memory image (for state validation).
func (s *LegacySimulator) Memory() []uint64 { return s.mem.Mem }
