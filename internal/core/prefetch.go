package core

import "vliwvp/internal/machine"

// The stride-stream (delta-pattern) prefetcher: a dense per-load-site
// table trained on the deltas between consecutive demand addresses of
// the same static load. Once a site repeats the same nonzero delta
// Confidence times in a row, every further access issues fills for the
// next Degree strides ahead into L1. Streams are invalidated at
// call/return barriers — the machine drains speculation there and the
// working set usually changes, so stale strides would only pollute.
//
// Like the cache model, the prefetcher is timing-only: it probes and
// fills tags, so a trained stride marching past the end of the heap is
// harmless.

// pfStream is one load site's training state.
type pfStream struct {
	last  int64 // previous demand address
	delta int64 // candidate stride
	conf  int32 // consecutive confirmations of delta
	valid bool  // last is meaningful
}

type prefetcher struct {
	params  machine.PrefetchParams
	streams []pfStream // indexed by dense load-site ID
}

func newPrefetcher(params machine.PrefetchParams, sites int) *prefetcher {
	return &prefetcher{params: params, streams: make([]pfStream, sites)}
}

func (p *prefetcher) reset() {
	for i := range p.streams {
		p.streams[i] = pfStream{}
	}
}

// barrier invalidates every stream (call/return retraining).
func (p *prefetcher) barrier() { p.reset() }

// observe trains site on a demand access to addr and reports whether the
// stream is confirmed (the caller then issues the fills, so it can emit
// one event per prefetched line). delta is the trained stride.
func (p *prefetcher) observe(site int32, addr int64) (confirmed bool, delta int64) {
	st := &p.streams[site]
	if !st.valid {
		st.valid = true
		st.last = addr
		st.delta = 0
		st.conf = 0
		return false, 0
	}
	d := addr - st.last
	st.last = addr
	if d == 0 {
		// Same address again: not a stream; drop any trained stride.
		st.delta = 0
		st.conf = 0
		return false, 0
	}
	if d == st.delta {
		if st.conf < 1<<30 {
			st.conf++
		}
	} else {
		st.delta = d
		st.conf = 1
	}
	if int(st.conf) >= p.params.Confidence {
		return true, d
	}
	return false, 0
}
