package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/ifconv"
	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/regions"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

// randomPipelineProgram emits a random but deterministic VL program mixing
// predictable loads (constant and strided arrays), unpredictable loads
// (pseudo-random contents and indices), stores, branches, and a helper
// call, so the full transform surface gets exercised.
func randomPipelineProgram(rng *rand.Rand) string {
	consts := []string{"3", "5", "7", "11", "13"}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	expr := func(vars []string, depth int) string {
		v := vars[rng.Intn(len(vars))]
		for i := 0; i < 1+rng.Intn(depth+1); i++ {
			v = "(" + v + " " + ops[rng.Intn(len(ops))] + " " + consts[rng.Intn(len(consts))] + ")"
		}
		return v
	}

	// Random straight-line body fragments over x, y, z, plus loads.
	vars := []string{"x", "y", "z"}
	var body string
	loads := []string{
		"steady[i & 63]",      // constant contents: highly predictable
		"ramp[i & 63]",        // strided contents: stride predictable
		"noisy[(x ^ i) & 63]", // data-dependent index: unpredictable
	}
	for i := 0; i < 2+rng.Intn(4); i++ {
		target := vars[rng.Intn(len(vars))]
		if rng.Intn(2) == 0 {
			body += fmt.Sprintf("\t\t%s = %s + %s\n", target, loads[rng.Intn(len(loads))], expr(vars, 1))
		} else {
			body += fmt.Sprintf("\t\t%s = %s\n", target, expr(vars, 2))
		}
	}
	// A conditional store and a data-dependent branch.
	body += fmt.Sprintf("\t\tout[i & 63] = %s\n", expr(vars, 1))
	body += fmt.Sprintf("\t\tif (%s) & 3 == 0 { z = z + helper(x & 15) } else { y = y ^ z }\n", expr(vars, 1))

	return fmt.Sprintf(`
var steady[64]
var ramp[64]
var noisy[64]
var out[64]
func helper(k) {
	var t = 0
	while k > 0 {
		t = t + k
		k = k - 1
	}
	return t
}
func main() {
	for var i = 0; i < 64; i = i + 1 {
		steady[i] = 42
		ramp[i] = i * 6
		noisy[i] = (i * 2654435761) %% 251
	}
	var x = 1
	var y = 2
	var z = 3
	for var i = 0; i < 96; i = i + 1 {
%s	}
	var chk = x + y * 31 + z * 1009
	for var i = 0; i < 64; i = i + 1 { chk = chk ^ (out[i] + i) }
	return chk
}`, body)
}

// TestPropertyFullPipelinePreservesSemantics is the repository's strongest
// invariant: for random programs, the complete pipeline — optionally
// if-conversion and superblock formation, then profile, speculate,
// schedule, and execute on the dual-engine machine with live predictors —
// must produce the same result, output, and memory image as the sequential
// interpreter, on every machine width.
func TestPropertyFullPipelinePreservesSemantics(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomPipelineProgram(rng)
		d := machine.Stock()[rng.Intn(len(machine.Stock()))]

		sim, orig := buildSimWithPasses(t, src, d, rng.Intn(2) == 0, rng.Intn(2) == 0)
		gotV, err := sim.Run("main")
		if err != nil {
			t.Logf("seed %d (%s): simulate: %v", seed, d.Name, err)
			return false
		}
		m := interp.New(orig)
		wantV, err := m.RunMain()
		if err != nil {
			t.Logf("seed %d: interp: %v", seed, err)
			return false
		}
		if gotV != wantV {
			t.Logf("seed %d (%s): result %d != %d\n%s", seed, d.Name, gotV, wantV, src)
			return false
		}
		simMem := sim.Memory()
		for i := range m.Mem {
			if simMem[i] != m.Mem[i] {
				t.Logf("seed %d (%s): memory[%d] %d != %d", seed, d.Name, i, simMem[i], m.Mem[i])
				return false
			}
		}
		return true
	}
	n := 25
	if testing.Short() {
		n = 5
	}
	if err := quick.Check(check, &quick.Config{MaxCount: n}); err != nil {
		t.Error(err)
	}
}

// TestOutcomeMaskAlignment pins the contract shared by three packages: bit
// i of a profile.Outcomes mask, position i in core.BlockAnalysis.Sites, and
// the i-th ascending-load-op-ID site of speculate's BlockInfo all denote
// the same prediction. A program whose first load (lower op ID) always hits
// after warmup and whose second always misses must tally masks of exactly
// 0b01.
func TestOutcomeMaskAlignment(t *testing.T) {
	src := `
var steady[64]
var chaos[64]
func main() {
	for var i = 0; i < 64; i = i + 1 {
		steady[i] = 7
		chaos[i] = (i * 40503) % 173
	}
	var s = 0
	var j = 1
	for var i = 0; i < 640; i = i + 1 {
		var a = steady[i & 63]
		var b = chaos[j]
		s = s + a * 3 + b * 5 + (a ^ b)
		j = (j * 37 + 11) % 64
	}
	return s
}`
	d := machine.W4
	sim, orig := buildSim(t, src, true, d)
	_ = sim

	// Re-derive the pipeline pieces to inspect the masks directly.
	// buildSim already validated schedules; here we want the Outcomes.
	prof, err := profile.Collect(orig, "main")
	if err != nil {
		t.Fatal(err)
	}
	res := transformForTest(t, orig, prof, d)
	var twoSite *profile.BlockKey
	for bk, info := range res.Blocks {
		if len(info.SiteIDs) == 2 {
			bk := bk
			twoSite = &bk
		}
	}
	if twoSite == nil {
		t.Skip("selection did not pick both loads in one block; predictability shifted")
	}
	out, err := profile.CollectOutcomes(orig, res.Selection, "main")
	if err != nil {
		t.Fatal(err)
	}
	info := res.Blocks[*twoSite]
	s0, s1 := res.Sites[info.SiteIDs[0]], res.Sites[info.SiteIDs[1]]
	if s0.LoadOpID >= s1.LoadOpID {
		t.Fatalf("site order not ascending by load op ID: %d, %d", s0.LoadOpID, s1.LoadOpID)
	}
	// steady (first load in source, lower op ID) hits; chaos misses.
	masks := out.MaskCounts[*twoSite]
	if masks[0b01] == 0 {
		t.Fatalf("expected dominant mask 0b01 (first site hits), got %v", masks)
	}
	if masks[0b01] < masks[0b10] {
		t.Errorf("mask bit order flipped: steady-hit mask %d < chaos-hit mask %d (all: %v)",
			masks[0b01], masks[0b10], masks)
	}
	// And the analysis must list the steady site first.
	blk := res.Prog.Func(twoSite.Func).Blocks[twoSite.Block]
	an, err := coreAnalyze(t, blk)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Sites) != 2 || an.Sites[0].PredID != s0.ID || an.Sites[1].PredID != s1.ID {
		t.Errorf("analysis site order diverges from BlockInfo: %+v vs [%d %d]",
			an.Sites, s0.ID, s1.ID)
	}
}

// buildSimWithPasses is buildSim plus optional if-conversion and region
// formation applied to BOTH the golden program and the simulated one.
func buildSimWithPasses(t *testing.T, src string, d *machine.Desc, useIfconv, useRegions bool) (*core.Simulator, *ir.Program) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	opt.Optimize(prog)
	if useIfconv {
		ifconv.Convert(prog, ifconv.DefaultConfig())
	}
	if useRegions {
		prof0, err := profile.Collect(prog, "main")
		if err != nil {
			t.Fatal(err)
		}
		regions.Form(prog, prof0, regions.DefaultConfig())
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid after passes: %v", err)
	}

	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	schemes := map[int]profile.Scheme{}
	for _, site := range res.Sites {
		schemes[site.ID] = site.Scheme
	}
	ps := &sched.ProgSched{Prog: res.Prog, Funcs: map[string]*sched.FuncSched{}}
	for _, f := range res.Prog.Funcs {
		fs := &sched.FuncSched{F: f, Blocks: make([]*sched.BlockSched, len(f.Blocks))}
		for i, b := range f.Blocks {
			g := speculate.BuildGraph(b, d, ddg.Options{})
			fs.Blocks[i] = sched.ScheduleBlock(b, g, d)
			if err := fs.Blocks[i].Validate(g, d); err != nil {
				t.Fatalf("%s b%d: %v", f.Name, i, err)
			}
		}
		ps.Funcs[f.Name] = fs
	}
	sim, err := core.NewSimulator(res.Prog, ps, d, schemes)
	if err != nil {
		t.Fatal(err)
	}
	return sim, prog
}

// transformForTest applies the speculation pass with the default config.
func transformForTest(t *testing.T, prog *ir.Program, prof *profile.Profile, d *machine.Desc) *speculate.Result {
	t.Helper()
	res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// coreAnalyze wraps core.Analyze for the alignment test.
func coreAnalyze(t *testing.T, b *ir.Block) (*core.BlockAnalysis, error) {
	t.Helper()
	return core.Analyze(b)
}
