package core_test

import (
	"reflect"
	"testing"

	"vliwvp/internal/core"
	"vliwvp/internal/machine"
)

// resetKernel mixes hits and misses so every statistic the simulator
// reports is nonzero: predictions, mispredictions, CCE activity, stalls,
// CCB occupancy, and printed output.
const resetKernel = `
var a[256]
var out[256]
func main() {
	for var i = 0; i < 256; i = i + 1 {
		if i % 8 < 7 { a[i] = 5 } else { a[i] = (i * 2654435761) % 1000 }
	}
	var s = 0
	for var i = 0; i < 256; i = i + 1 {
		var x = a[i]
		var y = x * 3 + 7
		out[i] = y
		s = s + y
	}
	print(s)
	return s
}`

type simStats struct {
	value                                     uint64
	cycles, instrs, ops                       int64
	stallSync, stallScore, stallCCB, stallBar int64
	cceExecuted, cceFlushed                   int64
	predictions, mispredicts, stallRecovery   int64
	maxCCBOccupancy                           int
	output                                    []string
}

func capture(t *testing.T, sim *core.Simulator) simStats {
	t.Helper()
	v, err := sim.Run("main")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return simStats{
		value:  v,
		cycles: sim.Cycles, instrs: sim.Instrs, ops: sim.Ops,
		stallSync: sim.StallSync, stallScore: sim.StallScore,
		stallCCB: sim.StallCCB, stallBar: sim.StallBar,
		cceExecuted: sim.CCEExecuted, cceFlushed: sim.CCEFlushed,
		predictions: sim.Predictions, mispredicts: sim.Mispredicts,
		stallRecovery:   sim.StallRecovery,
		maxCCBOccupancy: sim.MaxCCBOccupancy,
		output:          sim.Output,
	}
}

func assertStatsEqual(t *testing.T, label string, a, b simStats) {
	t.Helper()
	if a.value != b.value {
		t.Errorf("%s: value %d != %d", label, a.value, b.value)
	}
	if a.cycles != b.cycles || a.instrs != b.instrs || a.ops != b.ops {
		t.Errorf("%s: cycles/instrs/ops (%d,%d,%d) != (%d,%d,%d)",
			label, a.cycles, a.instrs, a.ops, b.cycles, b.instrs, b.ops)
	}
	if a.stallSync != b.stallSync || a.stallScore != b.stallScore ||
		a.stallCCB != b.stallCCB || a.stallBar != b.stallBar || a.stallRecovery != b.stallRecovery {
		t.Errorf("%s: stalls (%d,%d,%d,%d,%d) != (%d,%d,%d,%d,%d)", label,
			a.stallSync, a.stallScore, a.stallCCB, a.stallBar, a.stallRecovery,
			b.stallSync, b.stallScore, b.stallCCB, b.stallBar, b.stallRecovery)
	}
	if a.cceExecuted != b.cceExecuted || a.cceFlushed != b.cceFlushed {
		t.Errorf("%s: CCE (%d,%d) != (%d,%d)", label, a.cceExecuted, a.cceFlushed, b.cceExecuted, b.cceFlushed)
	}
	if a.predictions != b.predictions || a.mispredicts != b.mispredicts {
		t.Errorf("%s: predictions %d/%d != %d/%d", label, a.predictions, a.mispredicts, b.predictions, b.mispredicts)
	}
	if a.maxCCBOccupancy != b.maxCCBOccupancy {
		t.Errorf("%s: MaxCCBOccupancy %d != %d", label, a.maxCCBOccupancy, b.maxCCBOccupancy)
	}
	if len(a.output) != len(b.output) {
		t.Errorf("%s: output %v != %v", label, a.output, b.output)
	} else {
		for i := range a.output {
			if a.output[i] != b.output[i] {
				t.Errorf("%s: output[%d] %q != %q", label, i, a.output[i], b.output[i])
			}
		}
	}
}

// TestSimulatorRunsAreIndependent is the regression test for reused
// simulators: two back-to-back Run calls on one Simulator must report
// identical, independent results — statistics (including MaxCCBOccupancy
// and every stall counter), predictor tables, memory image, and output all
// reset at the top of Run. Before the reset was added, the second run
// inherited the first run's predictor tables and accumulated statistics.
func TestSimulatorRunsAreIndependent(t *testing.T) {
	sim, _ := buildSim(t, resetKernel, true, machine.W4)
	first := capture(t, sim)
	if first.predictions == 0 || first.mispredicts == 0 {
		t.Fatalf("kernel under-exercises the machine: %+v", first)
	}
	if first.maxCCBOccupancy == 0 {
		t.Fatalf("kernel never occupied the CCB; MaxCCBOccupancy reset cannot be observed")
	}
	second := capture(t, sim)
	assertStatsEqual(t, "rerun on same simulator", first, second)

	// A fresh simulator over the same program must agree too — the reused
	// simulator carries no hidden state a fresh one lacks.
	fresh, _ := buildSim(t, resetKernel, true, machine.W4)
	assertStatsEqual(t, "fresh simulator", first, capture(t, fresh))
}

// TestMetricsSnapshotAcrossRuns extends the reset contract to the
// observability layer: the metrics snapshot (every stall-cause counter,
// prediction/compensation counters, and the CCB occupancy histogram) of a
// rerun on the same simulator must equal the first run's, and equal a
// fresh simulator's — i.e. the occupancy tally and counters all reset.
func TestMetricsSnapshotAcrossRuns(t *testing.T) {
	sim, _ := buildSim(t, resetKernel, true, machine.W4)
	capture(t, sim)
	first := sim.Metrics()
	if first.Counters["pred.predictions"] == 0 || first.Counters["pred.mispredicted"] == 0 {
		t.Fatalf("kernel under-exercises the metrics: %+v", first.Counters)
	}
	occ := first.Histograms["ccb.occupancy"]
	var occTotal int64
	for _, n := range occ.Counts {
		occTotal += n
	}
	if occTotal == 0 {
		t.Fatal("occupancy histogram empty; reset cannot be observed")
	}

	capture(t, sim)
	second := sim.Metrics()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("metrics snapshot changed across reruns:\nfirst  %+v\nsecond %+v", first, second)
	}

	fresh, _ := buildSim(t, resetKernel, true, machine.W4)
	capture(t, fresh)
	if got := fresh.Metrics(); !reflect.DeepEqual(first, got) {
		t.Errorf("fresh simulator metrics differ:\nreused %+v\nfresh  %+v", first, got)
	}

	// The snapshot is consistent with the public statistics fields.
	if first.Counters["sim.cycles"] != sim.Cycles ||
		first.Counters["stall.sync"] != sim.StallSync ||
		first.Counters["cce.executed"] != sim.CCEExecuted ||
		first.Counters["ccb.max_occupancy"] != int64(sim.MaxCCBOccupancy) {
		t.Errorf("snapshot disagrees with simulator statistics: %+v", first.Counters)
	}
}

// TestSimulatorSerialRunsAreIndependent repeats the check in
// serial-recovery mode, whose stall bookkeeping (stallUntil, StallRecovery)
// also must reset between runs.
func TestSimulatorSerialRunsAreIndependent(t *testing.T) {
	sim, _ := buildSim(t, resetKernel, true, machine.W4)
	sim.SerialRecovery = true
	sim.Control = machine.DefaultControl()
	first := capture(t, sim)
	if first.mispredicts == 0 {
		t.Fatalf("kernel produced no mispredictions")
	}
	second := capture(t, sim)
	assertStatsEqual(t, "serial rerun", first, second)
}
