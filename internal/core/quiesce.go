package core

import (
	"errors"
	"fmt"
)

// DefaultMaxCycles is the runaway guard a freshly built Simulator starts
// with; per-run overrides (Simulator.MaxCycles, BatchItem.MaxCycles)
// replace it for one binding and rebinding restores it.
const DefaultMaxCycles = 1 << 34

// ErrCycleLimit marks a run aborted by the MaxCycles guard. Callers that
// impose per-request cycle budgets (the serving layer) unwrap it to
// distinguish a budget abort from a genuine execution failure.
var ErrCycleLimit = errors.New("cycle limit exceeded")

// Reset restores construction-time state without running anything: every
// frame and block instance returns to its pool, the event wheel drains,
// and statistics zero. Run performs this implicitly; hosts that abort a
// run (per-request cycle budgets) call it explicitly so pooled resources
// are returned — and CheckQuiescent passes — without waiting for the
// simulator's next reuse.
func (s *Simulator) Reset() { s.reset() }

// CheckQuiescent verifies the pooled-state reset contract on a simulator
// that is not mid-run: no Synchronization-register bit, live CCB entry,
// in-flight wheel event, leaked stack frame, or pinned pooled object may
// survive a completed (or reset) Run. It returns the first violation
// found, or nil.
//
// This is the exported twin of the white-box assertions the pooling tests
// introduced with the decode-once engine; long-running services call it
// after draining to prove their pooled simulators leak nothing.
func (s *Simulator) CheckQuiescent() error {
	if s.syncBusy != 0 {
		return fmt.Errorf("core: Synchronization register leaks bits %#x", s.syncBusy)
	}
	if live := len(s.ccb) - s.ccbHead; live != 0 {
		return fmt.Errorf("core: %d CCB entries survive", live)
	}
	if s.wheel.len() != 0 {
		return fmt.Errorf("core: %d events in flight", s.wheel.len())
	}
	if n := len(s.pending) - s.pendingHead; n != 0 {
		return fmt.Errorf("core: %d pending checks survive", n)
	}
	// A finished run leaves exactly its returned root frame on the stack
	// (released by the next Run's reset); anything deeper is a leak, and
	// the root must hold no event pins.
	switch {
	case len(s.stack) > 1:
		return fmt.Errorf("core: %d frames on the stack", len(s.stack))
	case len(s.stack) == 1:
		root := s.stack[0]
		if !root.returned || root.pins != 0 {
			return fmt.Errorf("core: root frame returned=%v pins=%d", root.returned, root.pins)
		}
	}
	for i, fr := range s.framePool {
		if fr.pins != 0 || !fr.pooled {
			return fmt.Errorf("core: framePool[%d] pins=%d pooled=%v", i, fr.pins, fr.pooled)
		}
		if fr.inst != nil {
			return fmt.Errorf("core: framePool[%d] still references a block instance", i)
		}
	}
	for i, bi := range s.instPool {
		if bi.pins != 0 || bi.live != 0 || bi.active || !bi.pooled {
			return fmt.Errorf("core: instPool[%d] pins=%d live=%d active=%v pooled=%v",
				i, bi.pins, bi.live, bi.active, bi.pooled)
		}
	}
	return nil
}
