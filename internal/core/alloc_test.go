package core_test

// Allocation-regression gates for the decode-once engine: once warmed, a
// full Run and a batched RunAllInto must perform zero heap allocations
// with no sink attached — the pooled frames, block instances, event
// wheel, and predictor tables are all reused. cmd/benchdiff enforces the
// same property on the pinned bench grid (sim/decoded-grid); these tests
// catch a regression at `go test` time with an exact zero.

import (
	"testing"

	"vliwvp/internal/core"
	"vliwvp/internal/machine"
	"vliwvp/internal/predict"
	"vliwvp/internal/profile"
)

// allocKernel exercises predictions, mispredictions, CCE re-execution,
// and calls, but never prints: print buffers output and would charge the
// steady state with allocations that are the program's, not the engine's.
const allocKernel = `
var a[128]
var out[128]
func bump(x) {
	return x * 3 + 7
}
func main() {
	for var i = 0; i < 128; i = i + 1 {
		if i % 8 < 7 { a[i] = 5 } else { a[i] = (i * 2654435761) % 1000 }
	}
	var s = 0
	for var i = 0; i < 128; i = i + 1 {
		var x = a[i]
		var y = x * 3 + 7
		out[i] = y
		s = s + y
	}
	for var i = 0; i < 16; i = i + 1 {
		s = s + bump(out[i])
	}
	return s
}`

func TestSimulatorRunZeroAllocSteadyState(t *testing.T) {
	sim, _ := buildSim(t, allocKernel, true, machine.W4)
	// Two warm runs size every pool, slab, and predictor table.
	var want uint64
	for i := 0; i < 2; i++ {
		v, err := sim.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		want = v
	}
	if sim.Mispredicts == 0 || sim.CCEExecuted == 0 {
		t.Fatalf("kernel under-exercises the engine: mispred=%d cce=%d",
			sim.Mispredicts, sim.CCEExecuted)
	}
	cycles := sim.Cycles
	allocs := testing.AllocsPerRun(5, func() {
		v, err := sim.Run("main")
		if err != nil || v != want {
			t.Fatalf("Run: v=%d err=%v", v, err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Run allocates %.1f objects over %d cycles, want 0",
			allocs, cycles)
	}
}

func TestSimulatorRunZeroAllocWithCache(t *testing.T) {
	// The memory hierarchy must preserve the steady-state guarantee for
	// every stock config: the tag arrays, prefetcher streams, and the
	// far-future miss latencies spilling past the event wheel all reuse
	// pooled storage. MemRec stays nil — recording is a diff tool and may
	// grow its trace.
	for _, mem := range machine.StockMem() {
		t.Run(mem.Name, func(t *testing.T) {
			sim, _ := buildSim(t, allocKernel, true, machine.W4)
			sim.MemCfg = mem
			var want uint64
			for i := 0; i < 2; i++ {
				v, err := sim.Run("main")
				if err != nil {
					t.Fatal(err)
				}
				want = v
			}
			allocs := testing.AllocsPerRun(5, func() {
				v, err := sim.Run("main")
				if err != nil || v != want {
					t.Fatalf("Run: v=%d err=%v", v, err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state Run with %s allocates %.1f objects, want 0", mem.Name, allocs)
			}
		})
	}
}

func TestSimulatorRunZeroAllocWithPredictors(t *testing.T) {
	// The predictor zoo and the confidence gate must preserve the
	// steady-state guarantee: the VTAGE tagged table, the LNV rings, and
	// the confidence counters all reuse pooled storage across runs when
	// the PredCfg binding is unchanged.
	for _, spec := range []string{
		"vtage", "lnv:depth=8", "fcm:conf=2", "vtage:conf=3,cbits=3", "profiled:conf=2",
	} {
		t.Run(spec, func(t *testing.T) {
			cfg, err := predict.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			sim, _ := buildSim(t, allocKernel, true, machine.W4)
			// Force every site onto the config's scheme so the forced
			// tables — not just the profile-chosen stride/FCM ones — are
			// exercised ("profiled" keeps the profile's choices).
			if sc, ok := profile.SchemeByName(cfg.SchemeName()); ok {
				for id := range sim.Schemes {
					sim.Schemes[id] = sc
				}
			}
			sim.PredCfg = cfg
			var want uint64
			for i := 0; i < 2; i++ {
				v, err := sim.Run("main")
				if err != nil {
					t.Fatal(err)
				}
				want = v
			}
			if cfg.Gating() && sim.Suppressed == 0 {
				t.Fatalf("gated config never suppressed an issue (pred=%d)", sim.Predictions)
			}
			allocs := testing.AllocsPerRun(5, func() {
				v, err := sim.Run("main")
				if err != nil || v != want {
					t.Fatalf("Run: v=%d err=%v", v, err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state Run with %s allocates %.1f objects, want 0", spec, allocs)
			}
		})
	}
}

func TestSimulatorRunZeroAllocWithBranch(t *testing.T) {
	// The branch-direction predictor must preserve the steady-state
	// guarantee: a stable Control.Branch pointer reuses the pooled TAGE /
	// bimodal tables (Reset clears them in place between runs), and the
	// mispredict flush walks retained pending-list and CCB storage.
	for _, spec := range []string{"taken", "nottaken", "bimodal", "tage", "tage:bits=4,hist=8,tables=2"} {
		t.Run(spec, func(t *testing.T) {
			bc, err := predict.ParseBranch(spec)
			if err != nil {
				t.Fatal(err)
			}
			sim, _ := buildSim(t, allocKernel, true, machine.W4)
			sim.Control = machine.ControlConfig{Branch: bc}
			var want uint64
			for i := 0; i < 2; i++ {
				v, err := sim.Run("main")
				if err != nil {
					t.Fatal(err)
				}
				want = v
			}
			if sim.BranchPredicts == 0 {
				t.Fatalf("kernel never exercised the branch predictor")
			}
			allocs := testing.AllocsPerRun(5, func() {
				v, err := sim.Run("main")
				if err != nil || v != want {
					t.Fatalf("Run: v=%d err=%v", v, err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state Run with branch=%s allocates %.1f objects, want 0", spec, allocs)
			}
		})
	}
}

func TestBatchRunAllZeroAllocSteadyState(t *testing.T) {
	sim, _ := buildSim(t, allocKernel, true, machine.W4)
	img := sim.Image()
	gated, err := predict.Parse("vtage:conf=2")
	if err != nil {
		t.Fatal(err)
	}
	sim2, _ := buildSim(t, allocKernel, true, machine.W4)
	// Two items bind the same image — the batch reuses one pooled
	// simulator across them, rebinding schemes per item. The third runs a
	// gated VTAGE config on its own image: a stable Pred pointer must
	// reuse the pooled tagged table and confidence counters.
	items := []core.BatchItem{
		{Name: "a", Img: img, Schemes: sim.Schemes},
		{Name: "b", Img: img, Schemes: sim.Schemes},
		{Name: "c", Img: sim2.Image(), Schemes: sim2.Schemes, Pred: gated},
	}
	batch := core.NewBatch()
	dst := make([]core.BatchResult, 0, len(items))
	for i := 0; i < 2; i++ {
		dst = batch.RunAllInto(dst[:0], items)
		for _, res := range dst {
			if res.Err != nil {
				t.Fatalf("%s: %v", res.Name, res.Err)
			}
		}
	}
	want := dst[0].Value
	allocs := testing.AllocsPerRun(5, func() {
		dst = batch.RunAllInto(dst[:0], items)
		if dst[0].Err != nil || dst[0].Value != want {
			t.Fatalf("batch: %+v", dst[0])
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Batch.RunAllInto allocates %.1f objects, want 0", allocs)
	}
}
