package core

import "vliwvp/internal/ir"

// The event wheel replaces the legacy engine's map[int64][]func() closure
// scheduler with a fixed ring of typed-event slots. Ordering contract
// (pinned by the engine-diff suite): events scheduled for the same cycle
// execute in insertion order, exactly like the legacy per-cycle closure
// slices. Far-future events past the wheel's horizon spill into an
// overflow list; because the current cycle only moves forward, every
// overflow event for a cycle was necessarily inserted before any ring
// event for that cycle, so draining overflow first preserves insertion
// order.

// wevKind discriminates the typed events the engine schedules.
type wevKind uint8

const (
	// wevWrite lands a register write (writeReg/applyWriteAt).
	wevWrite wevKind = iota
	// wevClearBits clears Synchronization bits (CCE flush completion).
	wevClearBits
	// wevCheckResolve completes a check-prediction load: verdict, bit
	// clear, predictor update, and (on a mispredict) the corrective write.
	wevCheckResolve
	// wevCCEWriteback lands a compensation re-execution result and clears
	// the entry's bit if verification has not already done so.
	wevCCEWriteback
)

// wev is one scheduled event. The meaning of the fields depends on kind;
// unused fields are zero. fr and inst pin their pooled objects while the
// event is in flight (see the pooling invariants in engine.go).
type wev struct {
	kind wevKind
	fr   *frame
	inst *blockInst
	op   *ir.Op // tracing identity (check resolve)
	li   int32  // block-local site index (check resolve)
	reg  ir.Reg
	val  uint64
	seq  int64
	mask uint64 // Synchronization bits to clear
}

// wheelSlots sizes the ring. It must be a power of two and exceed every
// machine latency plus one; stock latencies top out at 8 (Div/FDiv), so
// overflow is reserved for adversarial MaxCycles-scale schedules and
// tests.
const wheelSlots = 64

type eventWheel struct {
	slots   [wheelSlots][]wev
	pending int // scheduled but not yet executed events
	// overflow holds events scheduled past the ring horizon, in insertion
	// order (scanned linearly; empty in practice).
	overflow []farEvent
}

type farEvent struct {
	cycle int64
	ev    wev
}

// schedule enqueues ev for the given cycle; now is the engine's current
// cycle. The caller handles cycle <= now (immediate execution) itself,
// mirroring the legacy at() contract.
func (w *eventWheel) schedule(now, cycle int64, ev wev) {
	w.pending++
	if cycle-now < wheelSlots {
		i := cycle & (wheelSlots - 1)
		w.slots[i] = append(w.slots[i], ev)
		return
	}
	w.overflow = append(w.overflow, farEvent{cycle: cycle, ev: ev})
}

// run executes every event scheduled for the cycle, in insertion order,
// via f. Handlers must not schedule new events for the same cycle (the
// engine never does; immediate effects are applied directly).
func (w *eventWheel) run(cycle int64, f func(*wev)) {
	if len(w.overflow) > 0 {
		kept := w.overflow[:0]
		for i := range w.overflow {
			fe := &w.overflow[i]
			if fe.cycle == cycle {
				w.pending--
				f(&fe.ev)
				continue
			}
			kept = append(kept, *fe)
		}
		w.overflow = kept
	}
	slot := &w.slots[cycle&(wheelSlots-1)]
	for i := range *slot {
		w.pending--
		f(&(*slot)[i])
	}
	*slot = (*slot)[:0]
}

// len reports the number of in-flight events (drives the end-of-run drain
// loop, as len(events) did for the legacy map).
func (w *eventWheel) len() int { return w.pending }

// reset drains the wheel without executing anything: every slot is
// truncated (capacity retained for the zero-alloc steady state) and the
// overflow list emptied. Pin counts held by dropped events are the
// caller's problem — the engine reset releases or abandons the affected
// pooled objects itself.
func (w *eventWheel) reset() {
	for i := range w.slots {
		w.slots[i] = w.slots[i][:0]
	}
	w.overflow = w.overflow[:0]
	w.pending = 0
}
