package core

import (
	"math/bits"

	"vliwvp/internal/machine"
)

// This file is the memory-hierarchy timing model: a multi-level
// set-associative LRU D-cache, an optional I-cache, and the main-memory
// latency behind them. It is strictly a timing model — lookups and fills
// touch tag/stamp/ready arrays only, never architectural memory — so any
// address (including speculative garbage and prefetches past the end of
// the heap) is safe to probe. The conformance suite pins the contract:
// every configuration yields byte-identical architectural results, only
// cycle counts move.
//
// Addresses are word addresses (the interpreter's memory is a []uint64
// indexed directly); a line of LineWords words covers LineWords
// consecutive addresses. Instruction fetch uses a separate address space
// (one address per decoded long instruction) and a separate cache, so
// the two never alias.

// cacheLevel is one level's tag state. Slots are laid out set-major
// (set*assoc .. set*assoc+assoc-1); tag -1 is invalid.
type cacheLevel struct {
	lineShift uint  // log2(LineWords): word address -> line number
	setMask   int64 // sets-1 (sets is a power of two)
	assoc     int
	hitLat    int64
	tags      []int64
	stamp     []int64 // LRU clock value of the slot's last touch
	readyAt   []int64 // cycle the slot's in-flight fill completes
	pref      []bool  // filled by a prefetch, not yet demanded
}

func newCacheLevel(p *machine.CacheParams) cacheLevel {
	l := cacheLevel{
		lineShift: uint(bits.TrailingZeros(uint(p.LineWords))),
		setMask:   int64(p.Sets() - 1),
		assoc:     p.Assoc,
		hitLat:    int64(p.HitLat),
		tags:      make([]int64, p.Lines),
		stamp:     make([]int64, p.Lines),
		readyAt:   make([]int64, p.Lines),
		pref:      make([]bool, p.Lines),
	}
	for i := range l.tags {
		l.tags[i] = -1
	}
	return l
}

func (l *cacheLevel) reset() {
	for i := range l.tags {
		l.tags[i] = -1
		l.stamp[i] = 0
		l.readyAt[i] = 0
		l.pref[i] = false
	}
}

// lookup returns the slot holding line, or -1.
func (l *cacheLevel) lookup(line int64) int {
	base := int(line&l.setMask) * l.assoc
	for w := 0; w < l.assoc; w++ {
		if l.tags[base+w] == line {
			return base + w
		}
	}
	return -1
}

// fill inserts line into its set (reusing its slot if present, else an
// invalid slot, else the LRU victim) and returns the slot index.
func (l *cacheLevel) fill(line, tick int64) int {
	base := int(line&l.setMask) * l.assoc
	victim := base
	for w := 0; w < l.assoc; w++ {
		i := base + w
		if l.tags[i] == line || l.tags[i] == -1 {
			victim = i
			break
		}
		if l.stamp[i] < l.stamp[victim] {
			victim = i
		}
	}
	l.tags[victim] = line
	l.stamp[victim] = tick
	l.readyAt[victim] = 0
	l.pref[victim] = false
	return victim
}

// memSys is one simulator's hierarchy state. It is built once per
// (simulator, config) binding and reset in place between runs, so the
// steady state allocates nothing.
type memSys struct {
	cfg    *machine.MemConfig
	levels []cacheLevel
	icache []cacheLevel // 0 or 1 entries (slice avoids a nil-vs-value split)
	memLat int64
	tick   int64 // LRU clock, bumped per access
}

func newMemSys(cfg *machine.MemConfig) *memSys {
	m := &memSys{cfg: cfg, memLat: int64(cfg.MemLat)}
	for i := range cfg.Levels {
		m.levels = append(m.levels, newCacheLevel(&cfg.Levels[i]))
	}
	if cfg.ICache != nil {
		m.icache = append(m.icache, newCacheLevel(cfg.ICache))
	}
	return m
}

func (m *memSys) reset() {
	m.tick = 0
	for i := range m.levels {
		m.levels[i].reset()
	}
	for i := range m.icache {
		m.icache[i].reset()
	}
}

func (m *memSys) hasICache() bool { return len(m.icache) > 0 }

// dAccess charges one demand load at word address addr issued at cycle
// now. It returns the total latency, the serving level (0-based;
// len(levels) means main memory), and whether the access hit a line a
// prefetch brought in (the prefetcher's usefulness signal). The line is
// promoted into every level above the serving one.
func (m *memSys) dAccess(addr, now int64) (lat int64, level int, prefHit bool) {
	m.tick++
	for k := range m.levels {
		l := &m.levels[k]
		line := addr >> l.lineShift
		lat += l.hitLat
		if i := l.lookup(line); i >= 0 {
			l.stamp[i] = m.tick
			// A line still being filled (late prefetch, or a back-to-back
			// demand to a just-missed line) costs the residual fill time.
			if wait := l.readyAt[i] - (now + lat); wait > 0 {
				lat += wait
			}
			if l.pref[i] {
				l.pref[i] = false
				prefHit = true
			}
			m.fillAbove(k, addr, now+lat)
			return lat, k, prefHit
		}
	}
	lat += m.memLat
	m.fillAbove(len(m.levels), addr, now+lat)
	return lat, len(m.levels), false
}

// fillAbove installs addr's line into every level above the serving one,
// completing at readyAt.
func (m *memSys) fillAbove(serving int, addr, readyAt int64) {
	for j := 0; j < serving; j++ {
		l := &m.levels[j]
		i := l.fill(addr>>l.lineShift, m.tick)
		l.readyAt[i] = readyAt
	}
}

// prefetchFill brings addr's line into L1 ahead of demand, completing
// after the latency of wherever the line currently lives (probed without
// disturbing LRU state). Returns false when L1 already holds the line.
func (m *memSys) prefetchFill(addr, now int64) bool {
	l1 := &m.levels[0]
	line := addr >> l1.lineShift
	if l1.lookup(line) >= 0 {
		return false
	}
	lat := l1.hitLat
	found := false
	for k := 1; k < len(m.levels); k++ {
		ll := &m.levels[k]
		lat += ll.hitLat
		if ll.lookup(addr>>ll.lineShift) >= 0 {
			found = true
			break
		}
	}
	if !found {
		lat += m.memLat
	}
	m.tick++
	i := l1.fill(line, m.tick)
	l1.readyAt[i] = now + lat
	l1.pref[i] = true
	return true
}

// iAccess charges one instruction fetch at fetch address addr issued at
// cycle now. It returns the stall penalty beyond the pipeline's implicit
// single fetch cycle (0 for a ready hit with HitLat 1) and whether the
// tags missed. I-cache misses go straight to memory.
func (m *memSys) iAccess(addr, now int64) (pen int64, miss bool) {
	ic := &m.icache[0]
	m.tick++
	line := addr >> ic.lineShift
	if i := ic.lookup(line); i >= 0 {
		ic.stamp[i] = m.tick
		pen = ic.hitLat - 1
		if wait := ic.readyAt[i] - now; wait > pen {
			pen = wait // in-flight fill from an earlier miss
		}
		return pen, false
	}
	pen = ic.hitLat - 1 + m.memLat
	i := ic.fill(line, m.tick)
	ic.readyAt[i] = now + pen
	return pen, true
}

// MemTrace is the per-access timing record of one decoded-engine run
// under a memory hierarchy: the latency of every load (VLIW demand and
// CCE re-execution, in access order) and the stall penalty of every
// first-time instruction fetch. The memory engine-diff drives the legacy
// oracle with a recorded trace, pinning that dynamic latency is the only
// thing the hierarchy changes.
type MemTrace struct {
	Loads []int64
	Fetch []int64
}
