package core_test

// The memory-hierarchy engine-diff: the decoded engine runs each cell of
// the memory lattice recording its per-access load latencies and fetch
// penalties (Simulator.MemRec); the legacy oracle — which has no cache
// model — replays the recorded trace (LegacySimulator.MemReplay). The two
// runs must then agree on every observable: cycles, counters, the typed
// event stream (minus the decoded-only mem.hit/mem.miss/mem.prefetch
// events), final registers, memory, and output. That pins the tentpole
// contract from both sides: the hierarchy changes per-access latency and
// nothing else, and the decoded engine's scheduling of a dynamic latency
// is exactly the legacy machine's scheduling of the same latency.
//
// Seed count: -mem-seeds N overrides; the default is 40 (10 under
// -short). CI's memory-conformance job runs 200 under -race.

import (
	"flag"
	"fmt"
	"testing"

	"vliwvp/internal/conform"
	"vliwvp/internal/core"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/progen"
)

var memSeeds = flag.Int("mem-seeds", 0, "memory engine-diff corpus size (0 = 40, or 10 under -short)")

// memFilterSink records events like recSink but drops the mem-hierarchy
// kinds only the decoded engine emits (the oracle replays latencies, it
// does not model the cache that produced them).
type memFilterSink struct{ recSink }

func (m *memFilterSink) Event(e *obs.Event) {
	switch e.Kind {
	case obs.KindMemHit, obs.KindMemMiss, obs.KindMemPrefetch:
		return
	}
	m.recSink.Event(e)
}

// diffMemCell runs one compiled cell on the decoded engine (recording)
// and the legacy engine (replaying) and describes the first divergence.
func diffMemCell(cp *conform.CellPipeline, cell conform.Cell) string {
	dsim := cp.NewSim(cell)
	rec := &core.MemTrace{}
	dsim.MemRec = rec
	dsink := &memFilterSink{}
	dsim.Sink = dsink
	dv, derr := dsim.Run("main")

	lsim, err := core.NewLegacySimulator(cp.Img.Prog, cp.Img.Sched, cell.D, cp.Schemes)
	if err != nil {
		return fmt.Sprintf("%s: legacy construction: %v", cell.Name, err)
	}
	if cell.CCBCapacity > 0 {
		lsim.CCBCapacity = cell.CCBCapacity
	}
	lsim.SerialRecovery = cell.SerialRecovery
	lsim.Control = cell.Ctrl
	lsim.PredCfg = cell.Pred
	lsim.MemReplay = rec
	lsink := &recSink{}
	lsim.Sink = lsink
	lv, lerr := lsim.Run("main")

	if (derr == nil) != (lerr == nil) {
		return fmt.Sprintf("%s: decoded err=%v, legacy err=%v", cell.Name, derr, lerr)
	}
	if derr != nil {
		if derr.Error() != lerr.Error() {
			return fmt.Sprintf("%s: decoded err %q != legacy err %q", cell.Name, derr, lerr)
		}
		return "" // both refused identically; no state to compare
	}
	if dv != lv {
		return fmt.Sprintf("%s: result %d != legacy %d", cell.Name, dv, lv)
	}
	counters := []struct {
		name string
		d, l int64
	}{
		{"Cycles", dsim.Cycles, lsim.Cycles},
		{"Instrs", dsim.Instrs, lsim.Instrs},
		{"Ops", dsim.Ops, lsim.Ops},
		{"StallSync", dsim.StallSync, lsim.StallSync},
		{"StallScore", dsim.StallScore, lsim.StallScore},
		{"StallCCB", dsim.StallCCB, lsim.StallCCB},
		{"StallBar", dsim.StallBar, lsim.StallBar},
		{"StallRecovery", dsim.StallRecovery, lsim.StallRecovery},
		{"StallIFetch", dsim.StallIFetch, lsim.StallIFetch},
		{"StallRedirect", dsim.StallRedirect, lsim.StallRedirect},
		{"BranchPredicts", dsim.BranchPredicts, lsim.BranchPredicts},
		{"BranchMispredicts", dsim.BranchMispredicts, lsim.BranchMispredicts},
		{"BranchFlushed", dsim.BranchFlushed, lsim.BranchFlushed},
		{"BranchSquashed", dsim.BranchSquashed, lsim.BranchSquashed},
		{"CCEExecuted", dsim.CCEExecuted, lsim.CCEExecuted},
		{"CCEFlushed", dsim.CCEFlushed, lsim.CCEFlushed},
		{"Predictions", dsim.Predictions, lsim.Predictions},
		{"Mispredicts", dsim.Mispredicts, lsim.Mispredicts},
		{"Suppressed", dsim.Suppressed, lsim.Suppressed},
		{"SuppressedWrong", dsim.SuppressedWrong, lsim.SuppressedWrong},
		{"MaxCCBOccupancy", int64(dsim.MaxCCBOccupancy), int64(lsim.MaxCCBOccupancy)},
	}
	for _, c := range counters {
		if c.d != c.l {
			return fmt.Sprintf("%s: %s %d != legacy %d", cell.Name, c.name, c.d, c.l)
		}
	}
	if got := int64(len(rec.Loads)); got != dsim.DHits+dsim.DMisses {
		return fmt.Sprintf("%s: recorded %d load latencies, counters say %d accesses",
			cell.Name, got, dsim.DHits+dsim.DMisses)
	}
	if msg := diffStrings(cell.Name, "output", dsim.Output, lsim.Output); msg != "" {
		return msg
	}
	if msg := diffU64(cell.Name, "final regs", dsim.FinalRegs(), lsim.FinalRegs()); msg != "" {
		return msg
	}
	if msg := diffU64(cell.Name, "memory", dsim.Memory(), lsim.Memory()); msg != "" {
		return msg
	}
	return diffStrings(cell.Name, "event stream", dsink.lines, lsink.lines)
}

func diffMemSpec(spec progen.Spec, lattice []conform.Cell) string {
	src := progen.Render(spec)
	prog, prof, err := conform.Compile(src)
	if err != nil {
		return fmt.Sprintf("front end: %v", err)
	}
	for _, cell := range lattice {
		cp, err := conform.PrepareCell(prog, prof, cell)
		if err != nil {
			if pipeline.IsValidation(err) {
				continue
			}
			return fmt.Sprintf("%s: prepare: %v", cell.Name, err)
		}
		if msg := diffMemCell(cp, cell); msg != "" {
			return msg
		}
	}
	return ""
}

// TestMemEngineDiff pins record-and-replay equivalence over the corpus ×
// memory lattice grid.
func TestMemEngineDiff(t *testing.T) {
	n := *memSeeds
	if n <= 0 {
		n = 40
		if testing.Short() {
			n = 10
		}
	}
	lattice := conform.MemLattice()
	for i := 0; i < n; i++ {
		seed := int64(1 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := progen.Generate(seed, progen.Options{})
			msg := diffMemSpec(spec, lattice)
			if msg == "" {
				return
			}
			min := progen.Minimize(spec, func(s progen.Spec) bool {
				return diffMemSpec(s, lattice) != ""
			})
			t.Fatalf("engines diverge at seed %d: %s\nminimized divergence: %s\nminimized program:\n%s",
				seed, msg, diffMemSpec(min, lattice), progen.Render(min))
		})
	}
}

// TestMemFlatGolden is the flat-equivalence fixture: binding the explicit
// flat config must be byte-identical to binding no config at all — same
// cycles, same counters, same event stream, no mem events — on both a
// hand-written kernel and generated programs.
func TestMemFlatGolden(t *testing.T) {
	check := func(t *testing.T, name string, run func(mem *machine.MemConfig) (*core.Simulator, *recSink)) {
		nilSim, nilSink := run(nil)
		flatSim, flatSink := run(machine.MemFlat)
		if flatSim.Cycles != nilSim.Cycles {
			t.Errorf("%s: flat config took %d cycles, nil config %d", name, flatSim.Cycles, nilSim.Cycles)
		}
		if flatSim.DHits+flatSim.DMisses+flatSim.IMisses+flatSim.StallIFetch != 0 {
			t.Errorf("%s: flat config charged mem counters: hits=%d misses=%d imisses=%d ifetch=%d",
				name, flatSim.DHits, flatSim.DMisses, flatSim.IMisses, flatSim.StallIFetch)
		}
		if msg := diffStrings(name, "event stream", flatSink.lines, nilSink.lines); msg != "" {
			t.Error(msg)
		}
	}

	t.Run("kernel", func(t *testing.T) {
		sim, _ := buildSim(t, allocKernel, true, machine.W4)
		check(t, "kernel", func(mem *machine.MemConfig) (*core.Simulator, *recSink) {
			sink := &recSink{}
			sim.MemCfg = mem
			sim.Sink = sink
			if _, err := sim.Run("main"); err != nil {
				t.Fatal(err)
			}
			sim.Sink = nil
			return sim, sink
		})
	})

	for _, seed := range []int64{3, 11, 29} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := progen.Generate(seed, progen.Options{})
			prog, prof, err := conform.Compile(progen.Render(spec))
			if err != nil {
				t.Fatal(err)
			}
			cell := conform.Cell{Name: "w4", D: machine.W4}
			cp, err := conform.PrepareCell(prog, prof, cell)
			if err != nil {
				t.Fatal(err)
			}
			check(t, cell.Name, func(mem *machine.MemConfig) (*core.Simulator, *recSink) {
				cell.Mem = mem
				sim := cp.NewSim(cell)
				sink := &recSink{}
				sim.Sink = sink
				if _, err := sim.Run("main"); err != nil {
					t.Fatal(err)
				}
				return sim, sink
			})
		})
	}
}

// strideKernel marches a trained stride straight through the end of its
// array, so a confirmed prefetch stream issues fills past the last heap
// word — the timing-only contract says that must be harmless.
const strideKernel = `
var a[512]
func main() {
	for var i = 0; i < 512; i = i + 1 { a[i] = i * 3 }
	var s = 0
	for var i = 0; i < 512; i = i + 1 { s = s + a[i] }
	return s
}`

func TestPrefetchPastHeapEnd(t *testing.T) {
	sim, _ := buildSim(t, strideKernel, true, machine.W4)
	want, err := sim.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	for _, mem := range []*machine.MemConfig{machine.MemL1PF, machine.MemL2PF} {
		sim.MemCfg = mem
		v, err := sim.Run("main")
		if err != nil {
			t.Fatalf("%s: %v", mem.Name, err)
		}
		if v != want {
			t.Errorf("%s: result %d, flat model got %d", mem.Name, v, want)
		}
		if sim.PrefIssued == 0 {
			t.Errorf("%s: stride walk issued no prefetches", mem.Name)
		}
	}
}
