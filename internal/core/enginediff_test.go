package core_test

// The engine-diff suite: the decode-once engine (Simulator) run against
// the retained legacy stepper (LegacySimulator) over a generated corpus
// crossed with the conformance lattice. The two engines must agree on
// every observable — cycle counts, the full typed event stream, final
// architectural state, and every statistics counter — for every program.
// Any divergence is minimized with progen.Minimize before reporting, so a
// failure prints the smallest seed-reproducible program that splits the
// engines.
//
// Seed count: -diff-seeds N overrides; the default is 200 (40 under
// -short). CI runs the full sweep with the race detector on, which also
// exercises concurrent simulators sharing one immutable image.

import (
	"flag"
	"fmt"
	"sync"
	"testing"

	"vliwvp/internal/conform"
	"vliwvp/internal/core"
	"vliwvp/internal/obs"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/progen"
)

var diffSeeds = flag.Int("diff-seeds", 0, "engine-diff corpus size (0 = 200, or 40 under -short)")

// recSink records every event as its narrated trace line prefixed with
// cycle and engine, so two streams compare as string slices. Events must
// be rendered inside the call — emitters reuse the backing storage.
type recSink struct{ lines []string }

func (r *recSink) Event(e *obs.Event) {
	r.lines = append(r.lines, fmt.Sprintf("%d %s %s", e.Cycle, e.Engine, obs.Narrate(e)))
}

// runDecoded executes the cell on the decode-once engine.
func runDecoded(cp *conform.CellPipeline, cell conform.Cell) (uint64, error, *core.Simulator, *recSink) {
	sim := cp.NewSim(cell)
	sink := &recSink{}
	sim.Sink = sink
	v, err := sim.Run("main")
	return v, err, sim, sink
}

// runLegacy executes the cell on the legacy stepper with the identical
// knob assignment conform.CellPipeline.NewSim applies. rec, when non-nil,
// is a decoded-engine load-latency trace to replay (the legacy engine has
// no cache model of its own).
func runLegacy(cp *conform.CellPipeline, cell conform.Cell, rec *core.MemTrace) (uint64, error, *core.LegacySimulator, *recSink, error) {
	sim, err := core.NewLegacySimulator(cp.Img.Prog, cp.Img.Sched, cell.D, cp.Schemes)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	if cell.CCBCapacity > 0 {
		sim.CCBCapacity = cell.CCBCapacity
	}
	sim.SerialRecovery = cell.SerialRecovery
	sim.Control = cell.Ctrl
	sim.PredCfg = cell.Pred
	sim.MemReplay = rec
	sink := &recSink{}
	sim.Sink = sink
	v, runErr := sim.Run("main")
	return v, runErr, sim, sink, nil
}

// diffCell runs one compiled cell on both engines and returns a
// description of the first divergence, or "".
func diffCell(cp *conform.CellPipeline, cell conform.Cell) string {
	dv, derr, dsim, dsink := runDecoded(cp, cell)
	lv, lerr, lsim, lsink, err := runLegacy(cp, cell, nil)
	if err != nil {
		return fmt.Sprintf("%s: legacy construction: %v", cell.Name, err)
	}
	if (derr == nil) != (lerr == nil) {
		return fmt.Sprintf("%s: decoded err=%v, legacy err=%v", cell.Name, derr, lerr)
	}
	if derr != nil {
		if derr.Error() != lerr.Error() {
			return fmt.Sprintf("%s: decoded err %q != legacy err %q", cell.Name, derr, lerr)
		}
		return "" // both refused identically; no state to compare
	}
	if dv != lv {
		return fmt.Sprintf("%s: result %d != legacy %d", cell.Name, dv, lv)
	}
	counters := []struct {
		name string
		d, l int64
	}{
		{"Cycles", dsim.Cycles, lsim.Cycles},
		{"Instrs", dsim.Instrs, lsim.Instrs},
		{"Ops", dsim.Ops, lsim.Ops},
		{"StallSync", dsim.StallSync, lsim.StallSync},
		{"StallScore", dsim.StallScore, lsim.StallScore},
		{"StallCCB", dsim.StallCCB, lsim.StallCCB},
		{"StallBar", dsim.StallBar, lsim.StallBar},
		{"StallRecovery", dsim.StallRecovery, lsim.StallRecovery},
		{"StallRedirect", dsim.StallRedirect, lsim.StallRedirect},
		{"BranchPredicts", dsim.BranchPredicts, lsim.BranchPredicts},
		{"BranchMispredicts", dsim.BranchMispredicts, lsim.BranchMispredicts},
		{"BranchFlushed", dsim.BranchFlushed, lsim.BranchFlushed},
		{"BranchSquashed", dsim.BranchSquashed, lsim.BranchSquashed},
		{"CCEExecuted", dsim.CCEExecuted, lsim.CCEExecuted},
		{"CCEFlushed", dsim.CCEFlushed, lsim.CCEFlushed},
		{"Predictions", dsim.Predictions, lsim.Predictions},
		{"Mispredicts", dsim.Mispredicts, lsim.Mispredicts},
		{"Suppressed", dsim.Suppressed, lsim.Suppressed},
		{"SuppressedWrong", dsim.SuppressedWrong, lsim.SuppressedWrong},
		{"MaxCCBOccupancy", int64(dsim.MaxCCBOccupancy), int64(lsim.MaxCCBOccupancy)},
	}
	for _, c := range counters {
		if c.d != c.l {
			return fmt.Sprintf("%s: %s %d != legacy %d", cell.Name, c.name, c.d, c.l)
		}
	}
	if msg := diffStrings(cell.Name, "output", dsim.Output, lsim.Output); msg != "" {
		return msg
	}
	if msg := diffU64(cell.Name, "final regs", dsim.FinalRegs(), lsim.FinalRegs()); msg != "" {
		return msg
	}
	if msg := diffU64(cell.Name, "memory", dsim.Memory(), lsim.Memory()); msg != "" {
		return msg
	}
	return diffStrings(cell.Name, "event stream", dsink.lines, lsink.lines)
}

func diffStrings(cell, what string, d, l []string) string {
	if len(d) != len(l) {
		return fmt.Sprintf("%s: %s length %d != legacy %d", cell, what, len(d), len(l))
	}
	for i := range d {
		if d[i] != l[i] {
			return fmt.Sprintf("%s: %s[%d] %q != legacy %q", cell, what, i, d[i], l[i])
		}
	}
	return ""
}

func diffU64(cell, what string, d, l []uint64) string {
	if len(d) != len(l) {
		return fmt.Sprintf("%s: %s length %d != legacy %d", cell, what, len(d), len(l))
	}
	for i := range d {
		if d[i] != l[i] {
			return fmt.Sprintf("%s: %s[%d] %d != legacy %d", cell, what, i, d[i], l[i])
		}
	}
	return ""
}

// diffSpec compiles one generated program and diffs the engines across
// every lattice cell. Cells whose transform produces invalid IR are the
// conformance suite's problem, not an engine divergence — both engines
// get no program — so they are skipped here. Cells with a memory
// hierarchy diff through the record-and-replay protocol (the legacy
// engine has no cache model).
func diffSpec(spec progen.Spec, lattice []conform.Cell) string {
	src := progen.Render(spec)
	prog, prof, err := conform.Compile(src)
	if err != nil {
		return fmt.Sprintf("front end: %v", err)
	}
	for _, cell := range lattice {
		cp, err := conform.PrepareCell(prog, prof, cell)
		if err != nil {
			if pipeline.IsValidation(err) {
				continue
			}
			return fmt.Sprintf("%s: prepare: %v", cell.Name, err)
		}
		var msg string
		if cell.Mem.Flat() {
			msg = diffCell(cp, cell)
		} else {
			msg = diffMemCell(cp, cell)
		}
		if msg != "" {
			return msg
		}
	}
	return ""
}

// TestEngineDiff pins the decoded engine to the legacy engine over the
// full corpus × lattice grid.
func TestEngineDiff(t *testing.T) {
	n := *diffSeeds
	if n <= 0 {
		n = 200
		if testing.Short() {
			n = 40
		}
	}
	lattice := conform.DefaultLattice()
	for i := 0; i < n; i++ {
		seed := int64(1 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := progen.Generate(seed, progen.Options{})
			msg := diffSpec(spec, lattice)
			if msg == "" {
				return
			}
			min := progen.Minimize(spec, func(s progen.Spec) bool {
				return diffSpec(s, lattice) != ""
			})
			t.Fatalf("engines diverge at seed %d: %s\nminimized divergence: %s\nminimized program:\n%s",
				seed, msg, diffSpec(min, lattice), progen.Render(min))
		})
	}
}

// TestEngineDiffPredictors pins the decoded engine to the legacy engine
// across the predictor lattice: every zoo scheme and the confidence gate
// must agree on cycles, counters (including Suppressed/SuppressedWrong),
// the typed event stream (including the suppressed-issue narration and
// the Gated resolve flag via Narrate parity), and architectural state.
func TestEngineDiffPredictors(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 8
	}
	lattice := conform.PredLattice()
	for i := 0; i < n; i++ {
		seed := int64(1 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := progen.Generate(seed, progen.Options{})
			msg := diffSpec(spec, lattice)
			if msg == "" {
				return
			}
			min := progen.Minimize(spec, func(s progen.Spec) bool {
				return diffSpec(s, lattice) != ""
			})
			t.Fatalf("engines diverge at seed %d: %s\nminimized divergence: %s\nminimized program:\n%s",
				seed, msg, diffSpec(min, lattice), progen.Render(min))
		})
	}
}

// TestEngineDiffBranches pins the decoded engine to the legacy engine
// across the branch lattice: every stock branch-predictor scheme, the
// flush/redirect latency variants, and the combined value+branch cells
// must agree on cycles, the branch counters (BranchPredicts,
// BranchMispredicts, BranchFlushed, StallRedirect), the typed event
// stream (branch.mispredict and branch.flush narration parity), and
// architectural state.
func TestEngineDiffBranches(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 8
	}
	lattice := conform.BranchLattice()
	for i := 0; i < n; i++ {
		seed := int64(1 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := progen.Generate(seed, progen.Options{})
			msg := diffSpec(spec, lattice)
			if msg == "" {
				return
			}
			min := progen.Minimize(spec, func(s progen.Spec) bool {
				return diffSpec(s, lattice) != ""
			})
			t.Fatalf("engines diverge at seed %d: %s\nminimized divergence: %s\nminimized program:\n%s",
				seed, msg, diffSpec(min, lattice), progen.Render(min))
		})
	}
}

// TestEngineDiffCatchesFlushElision is the suite's teeth check for the
// branch-flush semantics: an injected fault that elides the mispredict
// flush on the decoded engine only (FaultBranchFlushElide) is invisible
// to single-engine architectural invariants — a flushed-but-correct site
// re-executes with identical values — but MUST split the engines on some
// seed (counters or event stream). If no seed diverges, the engine-diff
// suite has lost its power over flush behavior.
func TestEngineDiffCatchesFlushElision(t *testing.T) {
	lattice := conform.BranchLattice()
	diffOne := func(spec progen.Spec) string {
		src := progen.Render(spec)
		prog, prof, err := conform.Compile(src)
		if err != nil {
			return ""
		}
		for _, cell := range lattice {
			if !cell.Ctrl.Dynamic() {
				continue // no branch predictor, nothing to elide
			}
			cp, err := conform.PrepareCell(prog, prof, cell)
			if err != nil {
				continue
			}
			sim := cp.NewSim(cell)
			sim.FaultBranchFlushElide = true
			msink := &memFilterSink{}
			sim.Sink = msink
			sink := &msink.recSink
			var rec *core.MemTrace
			if !cell.Mem.Flat() {
				rec = &core.MemTrace{}
				sim.MemRec = rec
			}
			dv, derr := sim.Run("main")
			lv, lerr, lsim, lsink, err := runLegacy(cp, cell, rec)
			if err != nil || (derr == nil) != (lerr == nil) {
				return fmt.Sprintf("%s: run split: derr=%v lerr=%v err=%v", cell.Name, derr, lerr, err)
			}
			if derr != nil {
				continue
			}
			if dv != lv || sim.Cycles != lsim.Cycles ||
				sim.BranchFlushed != lsim.BranchFlushed ||
				sim.Mispredicts != lsim.Mispredicts {
				return fmt.Sprintf("%s: fault visible (cycles %d vs %d, flushed %d vs %d)",
					cell.Name, sim.Cycles, lsim.Cycles, sim.BranchFlushed, lsim.BranchFlushed)
			}
			if msg := diffStrings(cell.Name, "event stream", sink.lines, lsink.lines); msg != "" {
				return msg
			}
		}
		return ""
	}
	for i := 0; i < 60; i++ {
		spec := progen.Generate(int64(1+i), progen.Options{})
		if diffOne(spec) != "" {
			return // the fault split the engines: the suite has teeth
		}
	}
	t.Fatal("FaultBranchFlushElide never split the engines across 60 seeds; engine-diff has no teeth for branch flush")
}

// TestEngineDiffImageShared binds many decoded simulators to one image
// concurrently — the immutability contract DecodeImage documents. Under
// -race this is the suite's data-race probe for shared images.
func TestEngineDiffImageShared(t *testing.T) {
	spec := progen.Generate(7, progen.Options{})
	prog, prof, err := conform.Compile(progen.Render(spec))
	if err != nil {
		t.Fatal(err)
	}
	cell := conform.DefaultLattice()[1] // w4-dual
	cp, err := conform.PrepareCell(prog, prof, cell)
	if err != nil {
		t.Fatal(err)
	}
	want, werr, _, _ := runDecoded(cp, cell)
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				sim := cp.NewSim(cell)
				v, err := sim.Run("main")
				if (err == nil) != (werr == nil) || (err == nil && v != want) {
					errs[w] = fmt.Sprintf("worker %d rep %d: got (%d, %v), want (%d, %v)",
						w, rep, v, err, want, werr)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Error(e)
		}
	}
}
