package core_test

import (
	"testing"

	"vliwvp/internal/core"
	"vliwvp/internal/interp"
	"vliwvp/internal/machine"
	"vliwvp/internal/predict"
)

// The tests here pin down edge cases of the serial-recovery baseline
// machine ([4]): the per-mispredict stall is 2*BranchPenalty +
// RecoveryLen[site], sites absent from the RecoveryLen map charge one
// cycle, a zero branch penalty is legal, and recovery interacts correctly
// with call/return barriers.

// serialKernel mispredicts reliably: the array is ~87% constant with a
// pseudo-random value every eighth element, so its loads clear the
// selection threshold yet miss on the irregular elements.
const serialKernel = `
var a[256]
var out[256]
func main() {
	for var i = 0; i < 256; i = i + 1 {
		if i % 8 < 7 { a[i] = 5 } else { a[i] = (i * 2654435761) % 1000 }
	}
	var s = 0
	for var i = 0; i < 256; i = i + 1 {
		var x = a[i]
		var y = x * 3 + 1
		out[i] = y
		s = s + y
	}
	return s
}`

// runSerial wires a speculating simulator in serial-recovery mode, runs it,
// and validates the result against the sequential interpreter.
func runSerial(t *testing.T, src string, recLen map[int]int, branchPenalty int) *core.Simulator {
	t.Helper()
	sim, orig := buildSim(t, src, true, machine.W4)
	sim.SerialRecovery = true
	sim.RecoveryLen = recLen
	sim.Control = machine.ControlConfig{BranchPenalty: branchPenalty}
	got, err := sim.Run("main")
	if err != nil {
		t.Fatalf("serial sim (bp=%d): %v", branchPenalty, err)
	}
	want, err := interp.New(orig).RunMain()
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if got != want {
		t.Fatalf("serial sim (bp=%d) returned %d, interp %d", branchPenalty, got, want)
	}
	return sim
}

// TestSerialRecoveryAbsentSitesChargeOneCycle: a nil (or empty) RecoveryLen
// map must behave exactly like a map giving every site a one-cycle
// recovery block — that is the documented default for absent sites.
func TestSerialRecoveryAbsentSitesChargeOneCycle(t *testing.T) {
	absent := runSerial(t, serialKernel, nil, 1)
	if absent.Mispredicts == 0 {
		t.Fatalf("kernel produced no mispredictions; the default-charge path was not exercised")
	}

	ones := map[int]int{}
	for id := range absent.Schemes {
		ones[id] = 1
	}
	explicit := runSerial(t, serialKernel, ones, 1)
	if absent.Cycles != explicit.Cycles {
		t.Errorf("absent RecoveryLen charged %d cycles, explicit len=1 charged %d", absent.Cycles, explicit.Cycles)
	}
	if absent.StallRecovery != explicit.StallRecovery {
		t.Errorf("recovery stalls differ: absent %d, explicit %d", absent.StallRecovery, explicit.StallRecovery)
	}

	// A longer recovery block must cost strictly more.
	long := map[int]int{}
	for id := range absent.Schemes {
		long[id] = 9
	}
	slow := runSerial(t, serialKernel, long, 1)
	if slow.Cycles <= absent.Cycles {
		t.Errorf("RecoveryLen=9 ran in %d cycles, not more than default's %d", slow.Cycles, absent.Cycles)
	}
}

// TestSerialRecoveryZeroBranchPenalty: BranchPenalty=0 is legal (the stall
// degenerates to the recovery length alone), stays semantically correct,
// and never costs more than a positive penalty on the same program.
func TestSerialRecoveryZeroBranchPenalty(t *testing.T) {
	free := runSerial(t, serialKernel, nil, 0)
	if free.Mispredicts == 0 {
		t.Fatalf("kernel produced no mispredictions")
	}
	taxed := runSerial(t, serialKernel, nil, 2)
	if free.Mispredicts != taxed.Mispredicts {
		t.Fatalf("mispredict counts differ across penalties: %d vs %d", free.Mispredicts, taxed.Mispredicts)
	}
	if free.Cycles > taxed.Cycles {
		t.Errorf("bp=0 ran in %d cycles, more than bp=2's %d", free.Cycles, taxed.Cycles)
	}
	if free.StallRecovery >= taxed.StallRecovery {
		t.Errorf("bp=0 stalled %d recovery cycles, expected fewer than bp=2's %d",
			free.StallRecovery, taxed.StallRecovery)
	}
}

// TestSerialRecoveryGatedZeroPenalty pins the corner where the
// confidence gate meets the serial-recovery repair path: a suppressed
// issue (Gated) that turns out wrong still re-executes through the
// recovery schedule, but never pays the 2*BranchPenalty control tax —
// only unsuppressed mispredicts branch into compensation code. At
// BranchPenalty=0 the tax vanishes entirely, so raising the penalty must
// move the recovery-stall total by exactly 2*bp per unsuppressed
// mispredict and nothing more.
func TestSerialRecoveryGatedZeroPenalty(t *testing.T) {
	run := func(bp int) *core.Simulator {
		sim, orig := buildSim(t, serialKernel, true, machine.W4)
		pc, err := predict.Parse("profiled:conf=1,cbits=2")
		if err != nil {
			t.Fatal(err)
		}
		sim.PredCfg = pc
		sim.SerialRecovery = true
		sim.Control = machine.ControlConfig{BranchPenalty: bp}
		got, err := sim.Run("main")
		if err != nil {
			t.Fatalf("gated serial sim (bp=%d): %v", bp, err)
		}
		want, err := interp.New(orig).RunMain()
		if err != nil {
			t.Fatalf("interp: %v", err)
		}
		if got != want {
			t.Fatalf("gated serial sim (bp=%d) returned %d, interp %d", bp, got, want)
		}
		return sim
	}
	free := run(0)
	if free.Suppressed == 0 {
		t.Fatalf("gate suppressed nothing; the gated repair corner was not exercised")
	}
	if free.SuppressedWrong == 0 {
		t.Fatalf("no suppressed issue was wrong; the repair corner was not exercised")
	}
	if free.StallRecovery == 0 {
		t.Errorf("bp=0 charged no recovery stalls; suppressed-wrong repairs must still run the schedule")
	}
	taxed := run(2)
	if free.Suppressed != taxed.Suppressed || free.SuppressedWrong != taxed.SuppressedWrong ||
		free.Mispredicts != taxed.Mispredicts {
		t.Fatalf("gate behavior moved with the branch penalty: bp=0 %d/%d/%d vs bp=2 %d/%d/%d",
			free.Suppressed, free.SuppressedWrong, free.Mispredicts,
			taxed.Suppressed, taxed.SuppressedWrong, taxed.Mispredicts)
	}
	if d := taxed.StallRecovery - free.StallRecovery; d != 4*free.Mispredicts {
		t.Errorf("penalty moved %d stall cycles, want 2*bp per unsuppressed mispredict = %d (suppressed repairs must not pay the control tax)",
			d, 4*free.Mispredicts)
	}
}

// serialCallKernel feeds a speculated load's value straight into a call, so
// every mispredict resolves while the machine is parked at the call
// boundary: the compiler inserts Synchronization-register wait bits before
// the call, and the recovery stall must compose with that wait — not
// deadlock or corrupt state.
const serialCallKernel = `
var a[256]
func g(v) {
	return v * 2 + 3
}
func main() {
	for var i = 0; i < 256; i = i + 1 {
		if i % 8 < 7 { a[i] = 5 } else { a[i] = (i * 2654435761) % 1000 }
	}
	var s = 0
	for var i = 0; i < 256; i = i + 1 {
		var x = a[i]
		var y = x * 5 + 1
		s = s + g(y)
	}
	return s
}`

func TestSerialRecoveryMispredictAtCallBoundary(t *testing.T) {
	// Dual-engine reference: the call boundary forces full verification,
	// observable as Synchronization-register stalls.
	dual, orig := buildSim(t, serialCallKernel, true, machine.W4)
	got, err := dual.Run("main")
	if err != nil {
		t.Fatalf("dual sim: %v", err)
	}
	want, err := interp.New(orig).RunMain()
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if got != want {
		t.Fatalf("dual sim returned %d, interp %d", got, want)
	}
	if dual.Mispredicts == 0 {
		t.Fatalf("no mispredictions; call-boundary interaction not exercised")
	}
	if dual.StallSync == 0 {
		t.Errorf("dual engine recorded no Synchronization stalls at the call boundary")
	}

	// Serial mode must stay correct at every branch penalty, convert the
	// verification waits into recovery stalls, and agree with the dual
	// engine on what was predicted.
	for _, bp := range []int{0, 1, 2} {
		sim := runSerial(t, serialCallKernel, nil, bp)
		if sim.Predictions != dual.Predictions || sim.Mispredicts != dual.Mispredicts {
			t.Errorf("bp=%d: predictions %d/%d differ from dual engine's %d/%d",
				bp, sim.Predictions, sim.Mispredicts, dual.Predictions, dual.Mispredicts)
		}
		if bp > 0 && sim.StallRecovery == 0 {
			t.Errorf("bp=%d: mispredicts at the call boundary charged no recovery stalls", bp)
		}
	}
}
