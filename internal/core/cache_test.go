package core

// Unit tests for the memory-hierarchy timing model (cache.go): LRU
// set-associative levels, hierarchical demand-access latency charging,
// in-flight fill (late prefetch) residuals, and the I-cache penalty
// model. The end-to-end contracts — flat equivalence and cycles-only
// divergence — are pinned in memdiff_test.go and the conformance suite.

import (
	"testing"

	"vliwvp/internal/machine"
)

func TestCacheLevelLRU(t *testing.T) {
	// 8 lines, 2-way, 4 sets: lines with equal line&3 collide.
	p := machine.CacheParams{Lines: 8, Assoc: 2, LineWords: 4, HitLat: 1}
	l := newCacheLevel(&p)
	if l.lookup(0) != -1 {
		t.Fatal("fresh level reports a hit")
	}
	l.fill(0, 1) // set 0
	l.fill(4, 2) // set 0
	if l.lookup(0) < 0 || l.lookup(4) < 0 {
		t.Fatal("filled lines not found")
	}
	// Touch line 0 so line 4 is LRU, then overflow the set.
	l.stamp[l.lookup(0)] = 3
	l.fill(8, 4) // set 0: evicts line 4
	if l.lookup(4) != -1 {
		t.Error("LRU victim (line 4) still present")
	}
	if l.lookup(0) < 0 || l.lookup(8) < 0 {
		t.Error("MRU line or fresh fill missing after eviction")
	}
	// Refilling a resident line reuses its slot (no eviction).
	before := l.lookup(8)
	if got := l.fill(8, 5); got != before {
		t.Errorf("refill moved line 8: slot %d -> %d", before, got)
	}
	l.reset()
	if l.lookup(0) != -1 || l.lookup(8) != -1 {
		t.Error("reset did not invalidate tags")
	}
}

func TestMemSysDAccessSingleLevel(t *testing.T) {
	m := newMemSys(machine.MemL1) // L1 64/4/4 hit 3, memory 20
	lat, lvl, pref := m.dAccess(0, 0)
	if lat != 23 || lvl != 1 || pref {
		t.Fatalf("cold miss: lat=%d lvl=%d pref=%v, want 23, 1 (memory), false", lat, lvl, pref)
	}
	// Back-to-back demand to the same line pays the residual fill time:
	// the line is ready at cycle 23, so probing at cycle 0 costs 23 again.
	if lat, _, _ = m.dAccess(1, 0); lat != 23 {
		t.Errorf("same-cycle re-demand lat=%d, want 23 (residual fill)", lat)
	}
	// Once the fill lands it is a plain hit anywhere in the line.
	if lat, lvl, _ = m.dAccess(3, 23); lat != 3 || lvl != 0 {
		t.Errorf("post-fill hit lat=%d lvl=%d, want 3, 0", lat, lvl)
	}
}

func TestMemSysDAccessHierarchy(t *testing.T) {
	m := newMemSys(machine.MemL2) // L1 64/4/4 h3, L2 512/8/8 h9, memory 60
	lat, lvl, _ := m.dAccess(0, 0)
	if lat != 72 || lvl != 2 {
		t.Fatalf("cold miss: lat=%d lvl=%d, want 3+9+60=72 from memory", lat, lvl)
	}
	// Evict line 0 from L1 (16 sets, 4-way: five conflicting lines) while
	// it stays resident in L2; the re-demand is then an L2 hit.
	now := int64(100)
	for _, addr := range []int64{64, 128, 192, 256} {
		l, _, _ := m.dAccess(addr, now)
		now += l + 1
	}
	lat, lvl, _ = m.dAccess(0, now)
	if lat != 12 || lvl != 1 {
		t.Errorf("after L1 eviction: lat=%d lvl=%d, want 3+9=12 served by L2", lat, lvl)
	}
}

func TestMemSysPrefetchFill(t *testing.T) {
	m := newMemSys(machine.MemL1PF)
	if !m.prefetchFill(8, 0) {
		t.Fatal("prefetch of an absent line reported redundant")
	}
	if m.prefetchFill(9, 0) {
		t.Error("prefetch of a line already in flight reported issued")
	}
	// Late prefetch: the fill completes at 23, a demand at cycle 10
	// pays hit latency plus the residual 10 cycles.
	lat, lvl, pref := m.dAccess(8, 10)
	if lat != 13 || lvl != 0 || !pref {
		t.Errorf("late-prefetch demand: lat=%d lvl=%d pref=%v, want 13, 0, true", lat, lvl, pref)
	}
	// The usefulness bit reports once per prefetched line.
	if _, _, pref = m.dAccess(9, 40); pref {
		t.Error("second demand still flagged as a prefetch hit")
	}
	// Timing-only model: a prefetch far past any heap bound is safe, and
	// so are negative (wrapped-stride) line addresses.
	if !m.prefetchFill(1<<40, 50) {
		t.Error("prefetch past end of heap not issued")
	}
	if !m.prefetchFill(-64, 50) {
		t.Error("prefetch at a negative (wrapped) address not issued")
	}
}

func TestMemSysIAccess(t *testing.T) {
	m := newMemSys(machine.MemL2) // ICache 128/2/8 hit 1, memory 60
	pen, miss := m.iAccess(0, 0)
	if pen != 60 || !miss {
		t.Fatalf("cold fetch: pen=%d miss=%v, want 60, true", pen, miss)
	}
	// Same line while the fill is in flight: residual wait, tags hit.
	if pen, miss = m.iAccess(1, 10); pen != 50 || miss {
		t.Errorf("in-flight fetch: pen=%d miss=%v, want 50, false", pen, miss)
	}
	// After the fill lands, a HitLat-1 hit costs no stall at all.
	if pen, miss = m.iAccess(2, 100); pen != 0 || miss {
		t.Errorf("warm fetch: pen=%d miss=%v, want 0, false", pen, miss)
	}
}

func TestMemSysReset(t *testing.T) {
	m := newMemSys(machine.MemL2)
	m.dAccess(0, 0)
	m.iAccess(0, 0)
	m.reset()
	if lat, lvl, _ := m.dAccess(0, 0); lat != 72 || lvl != 2 {
		t.Errorf("post-reset demand lat=%d lvl=%d, want cold-miss 72 from memory", lat, lvl)
	}
	if pen, miss := m.iAccess(0, 0); pen != 60 || !miss {
		t.Errorf("post-reset fetch pen=%d miss=%v, want cold-miss 60", pen, miss)
	}
}
