package core_test

import (
	"bytes"
	"strings"
	"testing"

	"vliwvp/internal/core"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
)

// collectSink records events for assertions.
type collectSink struct {
	events []obs.Event
}

func (c *collectSink) Event(e *obs.Event) {
	cp := *e
	cp.Operands = append([]obs.SiteState(nil), e.Operands...)
	c.events = append(c.events, cp)
}

// TestTimingZeroAllocWithoutSink proves the acceptance property: with no
// sink attached, a warmed-up SimulateBlock performs zero allocations —
// the event path (formerly eager fmt.Sprintf) costs nothing when
// disabled.
func TestTimingZeroAllocWithoutSink(t *testing.T) {
	d := machine.W4
	_, bs, an := paperSetup(t, d)
	tm := core.NewTiming(d)
	// Warm the reusable scratch (first call sizes maps and slices).
	for mask := uint32(0); mask < 4; mask++ {
		if _, err := tm.SimulateBlock(bs, an, mask); err != nil {
			t.Fatal(err)
		}
	}
	mask := uint32(0)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := tm.SimulateBlock(bs, an, mask&3); err != nil {
			t.Fatal(err)
		}
		mask++
	})
	if allocs != 0 {
		t.Errorf("SimulateBlock with no sink allocates %.1f objects/run, want 0", allocs)
	}

	// Sanity: the same simulation WITH a sink does allocate (events are
	// real), so the zero above demonstrates sink-gating, not a vacuous
	// measurement.
	var sunk int
	tm.Sink = obs.TextFunc(func(int64, string) { sunk++ })
	withSink := testing.AllocsPerRun(20, func() {
		if _, err := tm.SimulateBlock(bs, an, 0); err != nil {
			t.Fatal(err)
		}
	})
	if withSink == 0 {
		t.Error("traced run reports zero allocations — sink path not exercised")
	}
	if sunk == 0 {
		t.Error("sink never received events")
	}
}

// TestTimingSinkMatchesLegacyTrace runs the same simulation through the
// legacy Trace hook and through a typed TextFunc sink and requires
// identical narration — the typed layer is a superset representation, not
// a rewording.
func TestTimingSinkMatchesLegacyTrace(t *testing.T) {
	d := machine.W4
	_, bs, an := paperSetup(t, d)
	for _, mask := range []uint32{0, 1, 2, 3} {
		tm := core.NewTiming(d)
		var legacy []string
		tm.Trace = func(cycle int, event string) { legacy = append(legacy, event) }
		if _, err := tm.SimulateBlock(bs, an, mask); err != nil {
			t.Fatal(err)
		}

		tm2 := core.NewTiming(d)
		var typed []string
		tm2.Sink = obs.TextFunc(func(cycle int64, line string) { typed = append(typed, line) })
		if _, err := tm2.SimulateBlock(bs, an, mask); err != nil {
			t.Fatal(err)
		}
		if strings.Join(legacy, "\n") != strings.Join(typed, "\n") {
			t.Errorf("mask %#x: legacy trace and typed narration diverge:\n--- legacy\n%s\n--- typed\n%s",
				mask, strings.Join(legacy, "\n"), strings.Join(typed, "\n"))
		}
	}
}

// TestTimingJSONLTrace drives the timing model into a JSONL sink and
// decodes the trace back, checking the Figure 7 narrative survives the
// wire: prediction loads, CCB captures with operand states, verification
// verdicts, flushes and re-executions.
func TestTimingJSONLTrace(t *testing.T) {
	d := machine.W4
	_, bs, an := paperSetup(t, d)
	tm := core.NewTiming(d)
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	tm.Sink = sink
	if _, err := tm.SimulateBlock(bs, an, 0b01); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.DecodeJSONL(&buf)
	if err != nil {
		t.Fatalf("DecodeJSONL: %v", err)
	}
	kinds := map[string]int{}
	sawOperands := false
	sawMispredict := false
	for _, r := range recs {
		kinds[r.Kind]++
		if len(r.Operands) > 0 {
			sawOperands = true
			for _, o := range r.Operands {
				if _, ok := obs.OperandStateFromString(o.State); !ok {
					t.Errorf("bad operand state %q", o.State)
				}
			}
		}
		if r.Kind == obs.KindCheckIssue.String() && r.Correct != nil && !*r.Correct {
			sawMispredict = true
		}
	}
	for _, want := range []obs.Kind{obs.KindLdPredIssue, obs.KindCheckIssue,
		obs.KindBufferCCB, obs.KindCCEFlush, obs.KindCCEExecute} {
		if kinds[want.String()] == 0 {
			t.Errorf("trace missing kind %s (have %v)", want, kinds)
		}
	}
	if !sawOperands {
		t.Error("no CCB capture carried operand states")
	}
	if !sawMispredict {
		t.Error("mispredicted check not flagged on the wire")
	}
}

// TestSimulatorSinkEvents runs the dynamic dual-engine simulator with a
// collecting sink over a mixed hit/miss kernel and checks the full event
// taxonomy shows up, and that Debug (the legacy hook) sees the narrated
// equivalents.
func TestSimulatorSinkEvents(t *testing.T) {
	sim, _ := buildSim(t, resetKernel, true, machine.W4)
	sink := &collectSink{}
	sim.Sink = sink
	if _, err := sim.Run("main"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sim.Mispredicts == 0 || sim.CCEExecuted == 0 {
		t.Fatalf("kernel not exercising mispredictions (mispredicts=%d cce=%d)",
			sim.Mispredicts, sim.CCEExecuted)
	}
	count := map[obs.Kind]int{}
	for i := range sink.events {
		count[sink.events[i].Kind]++
	}
	for _, want := range []obs.Kind{obs.KindInstrIssue, obs.KindLdPredIssue,
		obs.KindCheckIssue, obs.KindCheckResolve, obs.KindBufferCCB,
		obs.KindCCEFlush, obs.KindCCEExecute, obs.KindRegWrite} {
		if count[want] == 0 {
			t.Errorf("dynamic trace missing kind %s", want)
		}
	}
	// Cross-check the counted events against the run's own statistics.
	if got := count[obs.KindLdPredIssue]; int64(got) != sim.Predictions {
		t.Errorf("ldpred events %d != Predictions %d", got, sim.Predictions)
	}
	if got := count[obs.KindCCEExecute]; int64(got) != sim.CCEExecuted {
		t.Errorf("cce.execute events %d != CCEExecuted %d", got, sim.CCEExecuted)
	}
	if got := count[obs.KindCCEFlush]; int64(got) != sim.CCEFlushed {
		t.Errorf("cce.flush events %d != CCEFlushed %d", got, sim.CCEFlushed)
	}

	// The same run through the Debug hook narrates the same events.
	sim2, _ := buildSim(t, resetKernel, true, machine.W4)
	var lines []string
	sim2.Debug = func(cycle int64, msg string) { lines = append(lines, msg) }
	if _, err := sim2.Run("main"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(lines) != len(sink.events) {
		t.Fatalf("Debug narrated %d lines, sink saw %d events", len(lines), len(sink.events))
	}
	for i := range lines {
		if want := obs.Narrate(&sink.events[i]); lines[i] != want {
			t.Fatalf("line %d: Debug %q != narrated %q", i, lines[i], want)
		}
	}
}
