package core

// Boundary tests for the event wheel: ring wrap-around, same-cycle
// insertion ordering (the legacy map-of-slices contract), far-future
// scheduling past the ring horizon, and drain-on-reset. These pin the
// scheduler the decode-once engine runs every cycle on.

import "testing"

// wheelDrain advances cycle by cycle from `from` collecting executed event
// seq values in order; it stops once the wheel is empty or limit cycles
// pass.
func wheelDrain(w *eventWheel, from, limit int64) []int64 {
	var got []int64
	for c := from; w.len() > 0 && c < from+limit; c++ {
		w.run(c, func(ev *wev) { got = append(got, ev.seq) })
	}
	return got
}

func eqI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWheelSameCycleOrder(t *testing.T) {
	var w eventWheel
	// Ten events for one cycle must execute in insertion order — the
	// legacy engine appended closures to a per-cycle slice, and the
	// engine-diff suite compares event streams byte for byte.
	for i := int64(0); i < 10; i++ {
		w.schedule(0, 5, wev{seq: i})
	}
	got := wheelDrain(&w, 0, 16)
	if want := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}; !eqI64(got, want) {
		t.Fatalf("same-cycle order: got %v, want %v", got, want)
	}
	if w.len() != 0 {
		t.Fatalf("wheel not drained: %d pending", w.len())
	}
}

func TestWheelWrapAround(t *testing.T) {
	var w eventWheel
	// March the current cycle far past several ring revolutions,
	// scheduling at staggered offsets; every event must fire exactly at
	// its cycle, even as slot indices alias modulo wheelSlots.
	next := int64(0)
	var want, got []int64
	for now := int64(0); now < 5*wheelSlots; now++ {
		w.run(now, func(ev *wev) { got = append(got, ev.seq) })
		if now%3 == 0 {
			lat := 1 + now%int64(wheelSlots-1) // stays under the horizon
			w.schedule(now, now+lat, wev{seq: next})
			want = append(want, next)
			next++
		}
	}
	got = append(got, wheelDrain(&w, 5*wheelSlots, 2*wheelSlots)...)
	// Events fire in cycle order; ties are impossible here (one event per
	// schedule cycle), so the sequence must be a permutation consistent
	// with scheduling order per cycle — verify every event fired once.
	if len(got) != len(want) {
		t.Fatalf("fired %d events, scheduled %d", len(got), len(want))
	}
	seen := map[int64]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("event %d fired twice", s)
		}
		seen[s] = true
	}
	if w.len() != 0 {
		t.Fatalf("wheel not drained: %d pending", w.len())
	}
}

func TestWheelExactFireCycle(t *testing.T) {
	var w eventWheel
	fired := map[int64]int64{} // seq -> cycle
	w.schedule(0, 1, wev{seq: 1})
	w.schedule(0, wheelSlots-1, wev{seq: 2})
	w.schedule(0, wheelSlots+3, wev{seq: 3}) // overflow
	for c := int64(0); w.len() > 0; c++ {
		w.run(c, func(ev *wev) { fired[ev.seq] = c })
	}
	want := map[int64]int64{1: 1, 2: wheelSlots - 1, 3: wheelSlots + 3}
	for seq, cyc := range want {
		if fired[seq] != cyc {
			t.Errorf("event %d fired at cycle %d, want %d", seq, fired[seq], cyc)
		}
	}
}

func TestWheelFarFutureOverflow(t *testing.T) {
	var w eventWheel
	// Events past the ring horizon go to the overflow list and must still
	// fire at their exact cycle, before any ring event inserted later for
	// the same cycle (insertion order: the overflow event was necessarily
	// scheduled first, since the cycle counter only moves forward).
	far := int64(10 * wheelSlots)
	w.schedule(0, far, wev{seq: 100})
	w.schedule(0, far+7, wev{seq: 101})
	if len(w.overflow) != 2 {
		t.Fatalf("expected 2 overflow events, have %d", len(w.overflow))
	}
	// March the cycle forward monotonically (the engine's contract). Once
	// `now` is close enough, a ring insertion for the same cycle lands
	// behind the overflow event.
	var got []int64
	for c := int64(0); w.len() > 0 && c <= far+7; c++ {
		if c == far-1 {
			w.schedule(c, far, wev{seq: 102})
		}
		w.run(c, func(ev *wev) { got = append(got, ev.seq) })
	}
	if want := []int64{100, 102, 101}; !eqI64(got, want) {
		t.Fatalf("overflow ordering: got %v, want %v", got, want)
	}
	if len(w.overflow) != 0 {
		t.Fatalf("overflow not drained: %d left", len(w.overflow))
	}
}

func TestWheelResetDrains(t *testing.T) {
	var w eventWheel
	for i := int64(0); i < 8; i++ {
		w.schedule(0, i%4, wev{seq: i})
	}
	w.schedule(0, 3*wheelSlots, wev{seq: 99})
	if w.len() != 9 {
		t.Fatalf("pending = %d, want 9", w.len())
	}
	w.reset()
	if w.len() != 0 {
		t.Fatalf("pending after reset = %d, want 0", w.len())
	}
	ran := false
	for c := int64(0); c < 4*wheelSlots; c++ {
		w.run(c, func(*wev) { ran = true })
	}
	if ran {
		t.Fatal("reset wheel still executed an event")
	}
	// The wheel must be immediately reusable after reset.
	w.schedule(0, 2, wev{seq: 7})
	if got := wheelDrain(&w, 0, 8); !eqI64(got, []int64{7}) {
		t.Fatalf("post-reset schedule: got %v, want [7]", got)
	}
}
