// Package core implements the paper's proposed architecture: the extended
// VLIW Engine (Synchronization register, wait-mask stalling, LdPred and
// check-prediction execution) coupled to the Compensation Code Engine — an
// in-order pipeline fed by the FIFO Compensation Code Buffer (CCB) with an
// Operand Value Buffer (OVB) tracking per-operand type and state (§2.2–2.3
// of the paper).
//
// Two entry points exist:
//
//   - Timing: per-block cycle simulation under a forced prediction-outcome
//     mask. This is the measurement engine behind every table and figure.
//   - Simulator: full-program execution with live value-predictor tables
//     and architectural state, validated against the sequential
//     interpreter.
package core

import (
	"fmt"

	"vliwvp/internal/ir"
)

// SiteRef locates one prediction site inside a transformed block.
type SiteRef struct {
	PredID    int // global site ID
	LdPredIdx int // op index of the LdPred
	CheckIdx  int // op index of the CheckLd
	Bit       int // Synchronization bit of the LdPred value
	ClearBits uint64
}

// OpInfo carries the per-operation facts both engines need.
type OpInfo struct {
	// Producers[k] is the op index of the most recent in-block producer of
	// the k-th source register, or -1 when the value is live-in.
	Producers []int
	// PredSet is a bitset over the block-local site indices whose
	// predictions this (speculative) op's value transitively consumes.
	PredSet uint32
}

// BlockAnalysis is the static decode of one transformed block.
type BlockAnalysis struct {
	Block *ir.Block
	// Sites lists the block's prediction sites in LdPred order (which the
	// speculate pass emits in ascending original-load-op-ID order — the
	// same bit order profile.Outcomes masks use).
	Sites []SiteRef
	// SiteLocal maps global PredID -> local site index.
	SiteLocal map[int]int
	// Info is indexed by op position.
	Info []OpInfo

	opIdx map[*ir.Op]int
}

// IndexOf returns the position of op within the analyzed block.
func (an *BlockAnalysis) IndexOf(op *ir.Op) int {
	if i, ok := an.opIdx[op]; ok {
		return i
	}
	return -1
}

// Analyze decodes a block's speculation structure. It works on any block;
// blocks without speculation yield an analysis with no sites.
func Analyze(b *ir.Block) (*BlockAnalysis, error) {
	an := &BlockAnalysis{
		Block:     b,
		SiteLocal: map[int]int{},
		Info:      make([]OpInfo, len(b.Ops)),
		opIdx:     make(map[*ir.Op]int, len(b.Ops)),
	}
	for i, op := range b.Ops {
		an.opIdx[op] = i
	}
	// Pass 1: sites.
	for i, op := range b.Ops {
		if op.Code == ir.LdPred {
			if _, dup := an.SiteLocal[op.PredID]; dup {
				return nil, fmt.Errorf("core: duplicate LdPred for site %d", op.PredID)
			}
			an.SiteLocal[op.PredID] = len(an.Sites)
			an.Sites = append(an.Sites, SiteRef{PredID: op.PredID, LdPredIdx: i, CheckIdx: -1, Bit: op.SyncBit})
		}
	}
	for i, op := range b.Ops {
		if op.Code == ir.CheckLd {
			li, ok := an.SiteLocal[op.PredID]
			if !ok {
				return nil, fmt.Errorf("core: CheckLd for unknown site %d", op.PredID)
			}
			if an.Sites[li].CheckIdx != -1 {
				return nil, fmt.Errorf("core: duplicate CheckLd for site %d", op.PredID)
			}
			an.Sites[li].CheckIdx = i
			an.Sites[li].ClearBits = op.ClearBits
		}
	}
	for _, s := range an.Sites {
		if s.CheckIdx == -1 {
			return nil, fmt.Errorf("core: site %d has no CheckLd", s.PredID)
		}
	}

	// Pass 2: producers and predicted-value sets.
	lastDef := map[ir.Reg]int{}
	for i, op := range b.Ops {
		uses := op.Uses()
		info := OpInfo{Producers: make([]int, len(uses))}
		for k, u := range uses {
			if d, ok := lastDef[u]; ok {
				info.Producers[k] = d
			} else {
				info.Producers[k] = -1
			}
		}
		if op.Speculative {
			for _, p := range info.Producers {
				if p < 0 {
					continue
				}
				prod := b.Ops[p]
				switch {
				case prod.Code == ir.LdPred:
					info.PredSet |= 1 << uint(an.SiteLocal[prod.PredID])
				case prod.Speculative:
					info.PredSet |= an.Info[p].PredSet
				}
			}
		}
		an.Info[i] = info
		if d := op.Def(); d != ir.NoReg {
			lastDef[d] = i
		}
	}
	return an, nil
}

// HasSpeculation reports whether the block contains prediction sites.
func (an *BlockAnalysis) HasSpeculation() bool { return len(an.Sites) > 0 }

// FullMask is the outcome mask meaning "every prediction correct".
func (an *BlockAnalysis) FullMask() uint32 {
	return uint32(1)<<uint(len(an.Sites)) - 1
}
