package core

// White-box tests for the pooled-state reset contract: after any Run —
// successful or aborted mid-flight — no Synchronization-register bit, CCB
// entry, in-flight event, or pinned pooled object may survive into the
// next Run. These see the engine's internals; the black-box rerun checks
// live in reset_test.go and the cross-engine checks in enginediff_test.go.

import (
	"testing"

	"vliwvp/internal/ddg"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

// poolKernel forces predictions, mispredictions, and CCE work so the
// pools, CCB, and Synchronization register all see traffic.
const poolKernel = `
var a[128]
func main() {
	for var i = 0; i < 128; i = i + 1 {
		if i % 8 < 7 { a[i] = 5 } else { a[i] = (i * 2654435761) % 1000 }
	}
	var s = 0
	for var i = 0; i < 128; i = i + 1 {
		var x = a[i]
		s = s + x * 3 + 7
	}
	return s
}`

// decodeKernel compiles poolKernel through the speculative pipeline into
// an image, bypassing the pass manager (this is package core; the managed
// path is covered by the conform and exp suites).
func decodeKernel(t *testing.T, d *machine.Desc) (*Image, map[int]profile.Scheme) {
	t.Helper()
	prog, err := lang.Compile(poolKernel)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	opt.Optimize(prog)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(d))
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	schemes := map[int]profile.Scheme{}
	for _, site := range res.Sites {
		schemes[site.ID] = site.Scheme
	}
	ps := &sched.ProgSched{Prog: res.Prog, Funcs: map[string]*sched.FuncSched{}}
	for _, f := range res.Prog.Funcs {
		fs := &sched.FuncSched{F: f, Blocks: make([]*sched.BlockSched, len(f.Blocks))}
		for i, b := range f.Blocks {
			g := speculate.BuildGraph(b, d, ddg.Options{})
			fs.Blocks[i] = sched.ScheduleBlock(b, g, d)
		}
		ps.Funcs[f.Name] = fs
	}
	img, err := DecodeImage(res.Prog, ps, d)
	if err != nil {
		t.Fatalf("DecodeImage: %v", err)
	}
	return img, schemes
}

// assertQuiescent checks every piece of recycled state a finished (or
// reset) simulator must not carry into the next Run.
func assertQuiescent(t *testing.T, label string, s *Simulator) {
	t.Helper()
	// The exported contract check covers sync bits, CCB, wheel, stack, and
	// both pools (quiesce.go); the entry-table consistency probe below is
	// white-box-only.
	if err := s.CheckQuiescent(); err != nil {
		t.Errorf("%s: %v", label, err)
	}
	for i, bi := range s.instPool {
		if n := len(bi.entries) - int(countEntryRefs(bi)); len(bi.entryOf) != 0 && n < 0 {
			t.Errorf("%s: instPool[%d] inconsistent entry table", label, i)
		}
	}
}

func countEntryRefs(bi *blockInst) int32 {
	var n int32
	for _, e := range bi.entryOf {
		if e != 0 {
			n++
		}
	}
	return n
}

func TestPooledStateQuiescentAfterRun(t *testing.T) {
	img, schemes := decodeKernel(t, machine.W4)
	s := NewSimulatorFromImage(img, schemes)
	first, err := s.Run("main")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Mispredicts == 0 || s.CCEExecuted == 0 {
		t.Fatalf("kernel under-exercises the pools: mispred=%d cce=%d", s.Mispredicts, s.CCEExecuted)
	}
	assertQuiescent(t, "after run 1", s)
	cycles := s.Cycles
	for i := 2; i <= 4; i++ {
		v, err := s.Run("main")
		if err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
		if v != first || s.Cycles != cycles {
			t.Fatalf("run %d: (%d, %d cycles) != first (%d, %d cycles)", i, v, s.Cycles, first, cycles)
		}
		assertQuiescent(t, "after rerun", s)
	}
}

// TestPooledStateAfterAbortedRun kills a run mid-flight via MaxCycles —
// leaving live CCB entries, pinned frames, and in-flight events — and
// requires the next Run to produce the untainted result. This is the
// force-release path of reset().
func TestPooledStateAfterAbortedRun(t *testing.T) {
	img, schemes := decodeKernel(t, machine.W4)
	ref := NewSimulatorFromImage(img, schemes)
	want, err := ref.Run("main")
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	wantCycles, wantMispred := ref.Cycles, ref.Mispredicts

	s := NewSimulatorFromImage(img, schemes)
	// Abort at several depths: mid-loop, and at a point where CCB entries
	// and checks are guaranteed in flight.
	for _, limit := range []int64{5, 40, wantCycles / 2} {
		s.MaxCycles = limit
		if _, err := s.Run("main"); err == nil {
			t.Fatalf("run with MaxCycles=%d did not abort", limit)
		}
		s.MaxCycles = 1 << 34
		v, err := s.Run("main")
		if err != nil {
			t.Fatalf("run after abort(%d): %v", limit, err)
		}
		if v != want || s.Cycles != wantCycles || s.Mispredicts != wantMispred {
			t.Fatalf("after abort(%d): (%d, %d cycles, %d mispred) != reference (%d, %d, %d)",
				limit, v, s.Cycles, s.Mispredicts, want, wantCycles, wantMispred)
		}
		assertQuiescent(t, "after abort+rerun", s)
	}
}

// TestPredictorStateIsolatedAcrossRuns pins the predictor-table reset: a
// rerun must see virgin predictor state (identical mispredict trajectory),
// and rebinding Schemes on a reused simulator must rebuild predictors of
// the new family rather than recycling a stale one — the Batch rebind
// path.
func TestPredictorStateIsolatedAcrossRuns(t *testing.T) {
	img, schemes := decodeKernel(t, machine.W4)
	if len(schemes) == 0 {
		t.Skip("kernel selected no prediction sites")
	}
	flipped := map[int]profile.Scheme{}
	for id, sc := range schemes {
		if sc == profile.SchemeStride {
			flipped[id] = profile.SchemeFCM
		} else {
			flipped[id] = profile.SchemeStride
		}
	}
	fresh := NewSimulatorFromImage(img, flipped)
	wantV, err := fresh.Run("main")
	if err != nil {
		t.Fatalf("fresh flipped run: %v", err)
	}
	wantMispred := fresh.Mispredicts

	s := NewSimulatorFromImage(img, schemes)
	if _, err := s.Run("main"); err != nil {
		t.Fatalf("first run: %v", err)
	}
	s.Schemes = flipped
	v, err := s.Run("main")
	if err != nil {
		t.Fatalf("rebound run: %v", err)
	}
	if v != wantV || s.Mispredicts != wantMispred {
		t.Fatalf("rebound schemes: (%d, %d mispred) != fresh (%d, %d)",
			v, s.Mispredicts, wantV, wantMispred)
	}
}
