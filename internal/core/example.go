package core

import (
	"vliwvp/internal/ir"
)

// PaperExample reconstructs the 11-operation dependence graph of the
// paper's Figure 2: two latency-3 loads feeding a chain of unit-latency
// operations, with the final two operations left non-speculative (the
// paper's worked example speculates operations 5, 6, 8, and 9 but not 10
// and 11). The function body is a single block ending in a return, plus a
// small global array so the loads have addresses.
//
// Operation numbering (paper -> here):
//
//	1: lea  r1, data        address of the first load
//	2: movi r2, 8           offset
//	3: add  r3 = r1 + r2    address of the second load
//	4: load r4 = [r1]       predicted load #1
//	5: mov  r5 = r4         speculative
//	6: add  r6 = r4 + r5    speculative
//	7: load r7 = [r3]       predicted load #2
//	8: add  r8 = r6 + r7    speculative (depends on both predictions)
//	9: add  r9 = r7 + r8    speculative
//	10: add r10 = r8 + r9   non-speculative
//	11: store [r1] = r10    non-speculative
//
// The paper gives all of add/move/multiply unit latency; this builder uses
// adds throughout so the stock machine descriptions (where multiply takes
// three cycles) reproduce the same timing shape.
func PaperExample() (*ir.Program, *ir.Func, error) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{
		Name: "data",
		Size: 16,
		Init: []uint64{41, 0, 0, 0, 0, 0, 0, 0, 17},
	}); err != nil {
		return nil, nil, err
	}

	f := ir.NewFunc("example")
	b := f.Blocks[0]
	regs := make([]ir.Reg, 12) // 1-based like the paper
	for i := 1; i <= 11; i++ {
		regs[i] = f.NewReg()
	}
	emit := func(code ir.Opcode, dest, a, bb ir.Reg) *ir.Op {
		op := f.NewOp(code)
		op.Dest, op.A, op.B = dest, a, bb
		b.Ops = append(b.Ops, op)
		return op
	}

	lea := emit(ir.Lea, regs[1], ir.NoReg, ir.NoReg) // 1
	lea.Sym = "data"
	movi := emit(ir.MovI, regs[2], ir.NoReg, ir.NoReg) // 2
	movi.Imm = 8
	emit(ir.Add, regs[3], regs[1], regs[2])   // 3
	emit(ir.Load, regs[4], regs[1], ir.NoReg) // 4
	emit(ir.Mov, regs[5], regs[4], ir.NoReg)  // 5
	emit(ir.Add, regs[6], regs[4], regs[5])   // 6
	emit(ir.Load, regs[7], regs[3], ir.NoReg) // 7
	emit(ir.Add, regs[8], regs[6], regs[7])   // 8
	emit(ir.Add, regs[9], regs[7], regs[8])   // 9
	emit(ir.Add, regs[10], regs[8], regs[9])  // 10
	st := emit(ir.Store, ir.NoReg, regs[1], regs[10])
	st.B = regs[10] // 11: store [r1] = r10
	ret := f.NewOp(ir.Ret)
	ret.A = regs[10]
	b.Ops = append(b.Ops, ret)

	if err := p.AddFunc(f); err != nil {
		return nil, nil, err
	}
	p.Link()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	return p, f, nil
}

// PaperExampleLoadIDs returns the op IDs of the two loads (operations 4 and
// 7), in that order.
func PaperExampleLoadIDs(f *ir.Func) (load4, load7 int) {
	var ids []int
	for _, op := range f.Blocks[0].Ops {
		if op.Code == ir.Load {
			ids = append(ids, op.ID)
		}
	}
	return ids[0], ids[1]
}
