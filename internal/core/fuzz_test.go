package core_test

// FuzzDecodeImage: the decoder's robustness contract. For any program —
// progen-rendered, speculated or not — and any byte-driven corruption of
// its schedule, DecodeImage must either refuse with the typed *DecodeError
// (naming the function, block, and op) or return an image that passes
// Validate: never a panic, never an out-of-range dense ID. A deterministic
// sweep (TestDecodeImageMutations) runs a slice of the same corpus under
// plain `go test`; CI gives the fuzzer a pinned budget next to the oracle
// fuzz job.

import (
	"errors"
	"testing"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/progen"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

// fuzzBuild compiles a generated program (speculated when spec is set)
// and list-schedules it. Returns nil on any front-end failure — the
// fuzzer only cares about decode.
func fuzzBuild(seed int64, spec bool, d *machine.Desc) (*ir.Program, *sched.ProgSched) {
	src := progen.Render(progen.Generate(seed, progen.Options{}))
	prog, err := lang.Compile(src)
	if err != nil {
		return nil, nil
	}
	opt.Optimize(prog)
	if spec {
		prof, err := profile.Collect(prog, "main")
		if err != nil {
			return nil, nil
		}
		res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(d))
		if err != nil {
			return nil, nil
		}
		prog = res.Prog
	}
	ps := &sched.ProgSched{Prog: prog, Funcs: map[string]*sched.FuncSched{}}
	for _, f := range prog.Funcs {
		fs := &sched.FuncSched{F: f, Blocks: make([]*sched.BlockSched, len(f.Blocks))}
		for i, b := range f.Blocks {
			g := speculate.BuildGraph(b, d, ddg.Options{})
			fs.Blocks[i] = sched.ScheduleBlock(b, g, d)
		}
		ps.Funcs[f.Name] = fs
	}
	return prog, ps
}

// mutateSched applies one byte-driven corruption per input pair to the
// schedule in place: dropped or duplicated ops, swapped instructions,
// cross-block op leakage, truncated or deleted block schedules, wait-bit
// garbage — the malformed inputs decode validation exists for.
func mutateSched(ps *sched.ProgSched, raw []byte) {
	var blocks []*sched.BlockSched
	for _, fs := range ps.Funcs {
		blocks = append(blocks, fs.Blocks...)
	}
	if len(blocks) == 0 {
		return
	}
	for i := 0; i+1 < len(raw); i += 2 {
		sel, arg := raw[i], int(raw[i+1])
		bs := blocks[arg%len(blocks)]
		if bs == nil || len(bs.Instrs) == 0 {
			continue
		}
		in := &bs.Instrs[arg%len(bs.Instrs)]
		switch sel % 8 {
		case 0: // drop one op from an instruction
			if len(in.Ops) > 0 {
				in.Ops = in.Ops[:len(in.Ops)-1]
			}
		case 1: // duplicate an op within an instruction
			if len(in.Ops) > 0 {
				in.Ops = append(in.Ops, in.Ops[arg%len(in.Ops)])
			}
		case 2: // swap two instructions
			j, k := arg%len(bs.Instrs), (arg+1)%len(bs.Instrs)
			bs.Instrs[j], bs.Instrs[k] = bs.Instrs[k], bs.Instrs[j]
		case 3: // leak an op from another block's schedule
			other := blocks[(arg+1)%len(blocks)]
			if other != nil && other != bs && len(other.Instrs) > 0 {
				oin := other.Instrs[arg%len(other.Instrs)]
				if len(oin.Ops) > 0 {
					in.Ops = append(in.Ops, oin.Ops[arg%len(oin.Ops)])
				}
			}
		case 4: // truncate the block schedule
			bs.Instrs = bs.Instrs[:arg%len(bs.Instrs)]
		case 5: // scramble wait bits
			in.WaitBits ^= uint64(arg)<<32 | uint64(arg)
		case 6: // delete a whole function schedule
			for name := range ps.Funcs {
				delete(ps.Funcs, name)
				break
			}
		case 7: // nil out one block schedule
			for _, fs := range ps.Funcs {
				if len(fs.Blocks) > 0 {
					fs.Blocks[arg%len(fs.Blocks)] = nil
					break
				}
			}
		}
	}
}

// checkDecode asserts the contract on one (program, schedule) pair.
func checkDecode(t *testing.T, prog *ir.Program, ps *sched.ProgSched, d *machine.Desc) {
	t.Helper()
	img, err := core.DecodeImage(prog, ps, d)
	if err != nil {
		var de *core.DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("DecodeImage returned an untyped error: %v", err)
		}
		if de.Msg == "" {
			t.Fatalf("DecodeError without a message: %+v", de)
		}
		return
	}
	if img == nil {
		t.Fatal("DecodeImage returned neither image nor error")
	}
	if err := img.Validate(); err != nil {
		t.Fatalf("accepted image fails validation: %v", err)
	}
}

func FuzzDecodeImage(f *testing.F) {
	f.Add(int64(1), true, []byte(nil))
	f.Add(int64(2), false, []byte{0, 0})
	f.Add(int64(3), true, []byte{1, 3, 2, 0})
	f.Add(int64(7), true, []byte{3, 1, 4, 1, 5, 9})
	f.Add(int64(11), false, []byte{6, 0})
	f.Add(int64(13), true, []byte{7, 2, 0, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, seed int64, spec bool, raw []byte) {
		prog, ps := fuzzBuild(seed%4096, spec, machine.W4)
		if prog == nil {
			t.Skip("front end rejected the generated program")
		}
		mutateSched(ps, raw)
		checkDecode(t, prog, ps, machine.W4)
	})
}

// TestDecodeImageMutations is the deterministic slice of the fuzz corpus:
// every mutation selector applied across a handful of seeds, plus the
// pristine (unmutated) decode, run on every `go test`.
func TestDecodeImageMutations(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, spec := range []bool{false, true} {
			prog, ps := fuzzBuild(seed, spec, machine.W4)
			if prog == nil {
				t.Fatalf("seed %d: front end rejected a progen program", seed)
			}
			checkDecode(t, prog, ps, machine.W4)
			for sel := byte(0); sel < 8; sel++ {
				prog, ps := fuzzBuild(seed, spec, machine.W4)
				mutateSched(ps, []byte{sel, byte(seed), sel, byte(seed + 3)})
				checkDecode(t, prog, ps, machine.W4)
			}
		}
	}
}
