package core

import (
	"fmt"
	"math/bits"

	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/sched"
)

// Timing is the per-block dual-engine cycle model. Given a scheduled,
// transformed block and a forced outcome mask (bit i set = block's i-th
// prediction site correct), it plays the VLIW Engine and the Compensation
// Code Engine cycle by cycle and reports the effective block length.
//
// Synchronization-bit lifecycle (§2.1–2.3 of the paper):
//   - set when the LdPred or speculative op issues;
//   - a LdPred bit clears when its check-prediction op completes;
//   - a speculative op's bit clears as soon as every prediction its value
//     consumes is verified correct (the check-prediction ClearBits
//     encoding), or — after a misprediction — when the Compensation Code
//     Engine finishes re-executing it;
//   - a speculative op that issues after all its predictions verified
//     correct is issued as a plain operation (no bit, no CCB entry).
//
// A Timing reuses internal scratch buffers across SimulateBlock calls, so
// the untraced steady state allocates nothing; consequently a Timing is
// not safe for concurrent use (callers that share one across goroutines
// must serialize, as exp.BlockData does).
type Timing struct {
	D *machine.Desc
	// CCBCapacity bounds in-flight speculative operations; the VLIW Engine
	// stalls issuing further speculative ops when the buffer is full. It
	// must be at least the per-block Synchronization-bit budget or a block
	// whose speculative window exceeds the buffer deadlocks (reported as
	// an error).
	CCBCapacity int
	// MaxCycles guards against deadlock bugs.
	MaxCycles int
	// Sink, when set, receives a typed obs.Event per engine event — the
	// cycle-by-cycle CCB/OVB narrative of the paper's Figure 7. With no
	// sink attached the event path is skipped entirely (no rendering, no
	// allocation).
	Sink obs.EventSink
	// Trace is the legacy text hook: a line per engine event, rendered by
	// the obs narrator byte-for-byte as the original tracer did. Ignored
	// when Sink is set.
	Trace func(cycle int, event string)

	// Scratch reused across SimulateBlock calls (see the type comment).
	resolveAt []int
	ccb       []ccbEntry
	// clearWheel is a power-of-two ring of cycle -> Synchronization bits to
	// clear at the start of that cycle (replacing a map keyed by cycle):
	// slot cycle&(len-1), valid because every scheduled clear lands within
	// one operation latency of the current cycle, far below the ring size.
	// clearPending counts occupied slots (the old map's len()).
	clearWheel   []uint64
	clearPending int
	// valueReady is indexed by block op index: the cycle a recomputed
	// producer's corrected value becomes available, -1 when not recomputed.
	valueReady []int
}

// clearWheelSlots sizes the timing model's bit-clear ring. Power of two,
// and far larger than any operation latency (stock max is 8); insertion
// checks the horizon so an exotic machine description degrades to an error
// rather than silent bit merging.
const clearWheelSlots = 256

// DefaultCCBCapacity matches a small dedicated buffer (entries).
const DefaultCCBCapacity = 64

// NewTiming returns a timing model for the machine.
func NewTiming(d *machine.Desc) *Timing {
	return &Timing{D: d, CCBCapacity: DefaultCCBCapacity, MaxCycles: 1 << 20}
}

// BlockResult reports one simulated block instance.
type BlockResult struct {
	// Length is the effective schedule length: issue cycle of the final
	// long instruction plus one (the paper's schedule-length accounting).
	Length int
	// DrainCycle is when the Compensation Code Engine finished the last
	// entry (>= Length-1 when compensation outlives the block).
	DrainCycle int
	// StallCycles counts cycles the VLIW Engine spent stalled on the
	// Synchronization register or a full CCB.
	StallCycles int
	// CCEExecuted counts compensation operations actually re-executed.
	CCEExecuted int
	// CCEFlushed counts correctly-speculated operations flushed.
	CCEFlushed int
}

// ccbEntry is one buffered speculative operation in the timing model.
type ccbEntry struct {
	opIdx     int
	predSet   uint32
	recompute bool
	bit       int // sync bit, NoBit-free (always valid for buffered entries)
	bitLive   bool
	doneAt    int
}

// sink resolves the effective event sink for one simulation: the typed
// sink if attached, else the legacy text hook adapted through the
// narrator, else nil (tracing fully disabled).
func (t *Timing) sink() obs.EventSink {
	if t.Sink != nil {
		return t.Sink
	}
	if t.Trace != nil {
		trace := t.Trace
		return obs.TextFunc(func(cycle int64, line string) { trace(int(cycle), line) })
	}
	return nil
}

// SimulateBlock plays one instance of the block. bs must be the schedule of
// an.Block.
func (t *Timing) SimulateBlock(bs *sched.BlockSched, an *BlockAnalysis, outcome uint32) (BlockResult, error) {
	sink := t.sink()
	if bs.Block != an.Block {
		return BlockResult{}, fmt.Errorf("core: schedule and analysis disagree on block")
	}
	capacity := t.CCBCapacity
	if capacity <= 0 {
		capacity = DefaultCCBCapacity
	}
	maxCycles := t.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 1 << 20
	}

	var res BlockResult
	nSites := len(an.Sites)
	// Reset reused scratch.
	if cap(t.resolveAt) < nSites {
		t.resolveAt = make([]int, nSites)
	}
	resolveAt := t.resolveAt[:nSites] // cycle the site's check completes (-1 unknown)
	for i := range resolveAt {
		resolveAt[i] = -1
	}
	if t.clearWheel == nil {
		t.clearWheel = make([]uint64, clearWheelSlots)
	} else {
		for i := range t.clearWheel {
			t.clearWheel[i] = 0
		}
	}
	t.clearPending = 0
	clearHorizonErr := false
	// scheduleClear records bits to clear at the start of the given cycle.
	scheduleClear := func(now, cycle int, bitMask uint64) {
		if cycle-now >= clearWheelSlots {
			clearHorizonErr = true
			return
		}
		slot := &t.clearWheel[cycle&(clearWheelSlots-1)]
		if *slot == 0 {
			t.clearPending++
		}
		*slot |= bitMask
	}
	nOps := len(an.Block.Ops)
	if cap(t.valueReady) < nOps {
		t.valueReady = make([]int, nOps)
	}
	valueReady := t.valueReady[:nOps]
	for i := range valueReady {
		valueReady[i] = -1
	}
	t.ccb = t.ccb[:0]

	var syncBusy uint64
	head := 0
	live := 0 // undispatched entries

	resolvedCorrect := func(set uint32, cycle int) bool {
		for set != 0 {
			s := bits.TrailingZeros32(set)
			set &^= 1 << uint(s)
			if resolveAt[s] < 0 || cycle < resolveAt[s] || outcome&(1<<uint(s)) == 0 {
				return false
			}
		}
		return true
	}
	resolved := func(set uint32, cycle int) bool {
		for set != 0 {
			s := bits.TrailingZeros32(set)
			set &^= 1 << uint(s)
			if resolveAt[s] < 0 || cycle < resolveAt[s] {
				return false
			}
		}
		return true
	}
	operandsReady := func(e *ccbEntry, cycle int) bool {
		for _, p := range an.Info[e.opIdx].Producers {
			if p < 0 {
				continue
			}
			if r := valueReady[p]; r >= 0 && cycle < r {
				return false
			}
		}
		return true
	}

	instr := 0
	lastIssue := -1
	for cycle := 0; ; cycle++ {
		if cycle > maxCycles {
			return res, fmt.Errorf("core: block timing exceeded %d cycles (CCB capacity %d too small for the speculative window?)", maxCycles, capacity)
		}
		if clearHorizonErr {
			return res, fmt.Errorf("core: operation latency exceeds the %d-cycle clear horizon", clearWheelSlots)
		}
		if slot := &t.clearWheel[cycle&(clearWheelSlots-1)]; *slot != 0 {
			syncBusy &^= *slot
			*slot = 0
			t.clearPending--
		}
		// Clear bits of buffered speculative ops whose every prediction is
		// now verified correct (the paper's check-driven ClearBits).
		for i := head; i < len(t.ccb); i++ {
			e := &t.ccb[i]
			if e.bitLive && !e.recompute && resolvedCorrect(e.predSet, cycle) {
				syncBusy &^= 1 << uint(e.bit)
				e.bitLive = false
			}
		}

		// --- VLIW Engine: try to issue the next long instruction. ---
		if instr < len(bs.Instrs) {
			in := bs.Instrs[instr]
			specNeeded := 0
			for _, op := range in.Ops {
				if op.Speculative && !resolvedCorrect(an.Info[an.IndexOf(op)].PredSet, cycle) {
					specNeeded++
				}
			}
			switch {
			case in.WaitBits&syncBusy != 0:
				res.StallCycles++
				if sink != nil {
					sink.Event(&obs.Event{Cycle: int64(cycle), Engine: obs.EngineVLIW,
						Kind: obs.KindStallSync, Bit: -1, Wait: in.WaitBits, Busy: syncBusy})
				}
			case specNeeded > 0 && live+specNeeded > capacity:
				res.StallCycles++
				if sink != nil {
					sink.Event(&obs.Event{Cycle: int64(cycle), Engine: obs.EngineVLIW,
						Kind: obs.KindStallCCB, Bit: -1})
				}
			default:
				for _, op := range in.Ops {
					idx := an.IndexOf(op)
					switch {
					case op.Code == ir.LdPred:
						syncBusy |= 1 << uint(op.SyncBit)
						if sink != nil {
							sink.Event(&obs.Event{Cycle: int64(cycle), Engine: obs.EngineVLIW,
								Kind: obs.KindLdPredIssue, Op: op, Bit: op.SyncBit})
						}
					case op.Code == ir.CheckLd:
						li := an.SiteLocal[op.PredID]
						done := cycle + t.D.Latency(op)
						resolveAt[li] = done
						scheduleClear(cycle, done, 1<<uint(an.Sites[li].Bit))
						if sink != nil {
							correct := outcome&(1<<uint(li)) != 0
							sink.Event(&obs.Event{Cycle: int64(cycle), Engine: obs.EngineVLIW,
								Kind: obs.KindCheckIssue, Op: op, Bit: -1,
								Done: int64(done), Correct: correct, Site: li})
						}
					case op.Speculative:
						if resolvedCorrect(an.Info[idx].PredSet, cycle) {
							if sink != nil {
								sink.Event(&obs.Event{Cycle: int64(cycle), Engine: obs.EngineVLIW,
									Kind: obs.KindPlainIssue, Op: op, Bit: -1})
							}
							break // verified before issue: plain operation
						}
						syncBusy |= 1 << uint(op.SyncBit)
						t.ccb = append(t.ccb, ccbEntry{
							opIdx:     idx,
							predSet:   an.Info[idx].PredSet,
							recompute: an.Info[idx].PredSet&^outcome != 0,
							bit:       op.SyncBit,
							bitLive:   true,
						})
						live++
						if sink != nil {
							sink.Event(&obs.Event{Cycle: int64(cycle), Engine: obs.EngineVLIW,
								Kind: obs.KindBufferCCB, Op: op, Bit: op.SyncBit,
								Operands: operandSiteStates(an, idx, resolveAt, outcome, cycle)})
						}
					}
				}
				lastIssue = cycle
				instr++
			}
		}

		// --- Compensation Code Engine: dispatch at most one entry. ---
		if head < len(t.ccb) {
			e := &t.ccb[head]
			if resolved(e.predSet, cycle) {
				if !e.recompute {
					// Flush (bit already cleared by verification).
					if e.bitLive {
						scheduleClear(cycle, cycle+1, 1<<uint(e.bit))
						e.bitLive = false
					}
					if sink != nil {
						sink.Event(&obs.Event{Cycle: int64(cycle), Engine: obs.EngineCCE,
							Kind: obs.KindCCEFlush, Op: an.Block.Ops[e.opIdx], Bit: -1})
					}
					res.CCEFlushed++
					if cycle > res.DrainCycle {
						res.DrainCycle = cycle
					}
					head++
					live--
				} else if operandsReady(e, cycle) {
					op := an.Block.Ops[e.opIdx]
					lat := t.D.Latency(op)
					e.doneAt = cycle + lat
					valueReady[e.opIdx] = e.doneAt
					scheduleClear(cycle, e.doneAt, 1<<uint(e.bit))
					e.bitLive = false
					if sink != nil {
						sink.Event(&obs.Event{Cycle: int64(cycle), Engine: obs.EngineCCE,
							Kind: obs.KindCCEExecute, Op: op, Bit: e.bit, Done: int64(e.doneAt)})
					}
					res.CCEExecuted++
					if e.doneAt > res.DrainCycle {
						res.DrainCycle = e.doneAt
					}
					head++
					live--
				}
			}
		}

		if instr >= len(bs.Instrs) && head >= len(t.ccb) && syncBusy == 0 && t.clearPending == 0 {
			break
		}
	}
	res.Length = lastIssue + 1
	return res, nil
}

// operandSiteStates renders a speculative op's operand states in the
// paper's Table 1/2 notation (see obs.OperandState): only built when a
// sink is attached.
func operandSiteStates(an *BlockAnalysis, idx int, resolveAt []int, outcome uint32, cycle int) []obs.SiteState {
	set := an.Info[idx].PredSet
	if set == 0 {
		return nil
	}
	var out []obs.SiteState
	for li := range an.Sites {
		if set&(1<<uint(li)) == 0 {
			continue
		}
		state := obs.StateRN
		if resolveAt[li] >= 0 && cycle >= resolveAt[li] {
			if outcome&(1<<uint(li)) != 0 {
				state = obs.StateC
			} else {
				state = obs.StateR
			}
		}
		out = append(out, obs.SiteState{Site: li, State: state})
	}
	return out
}
