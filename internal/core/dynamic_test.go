package core_test

import (
	"testing"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/ifconv"
	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

// buildSim compiles, optimizes, optionally speculates, schedules, and wires
// a dynamic simulator for src.
func buildSim(t *testing.T, src string, specOn bool, d *machine.Desc) (*core.Simulator, *ir.Program) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	opt.Optimize(prog)

	runProg := prog
	schemes := map[int]profile.Scheme{}
	if specOn {
		prof, err := profile.Collect(prog, "main")
		if err != nil {
			t.Fatalf("profile: %v", err)
		}
		res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(d))
		if err != nil {
			t.Fatalf("Transform: %v", err)
		}
		runProg = res.Prog
		for _, site := range res.Sites {
			schemes[site.ID] = site.Scheme
		}
	}

	ps := &sched.ProgSched{Prog: runProg, Funcs: map[string]*sched.FuncSched{}}
	for _, f := range runProg.Funcs {
		fs := &sched.FuncSched{F: f, Blocks: make([]*sched.BlockSched, len(f.Blocks))}
		for i, b := range f.Blocks {
			g := speculate.BuildGraph(b, d, ddg.Options{})
			fs.Blocks[i] = sched.ScheduleBlock(b, g, d)
			if err := fs.Blocks[i].Validate(g, d); err != nil {
				t.Fatalf("%s b%d: %v", f.Name, i, err)
			}
		}
		ps.Funcs[f.Name] = fs
	}
	sim, err := core.NewSimulator(runProg, ps, d, schemes)
	if err != nil {
		t.Fatal(err)
	}
	return sim, prog
}

// checkEquivalence runs the simulator and the interpreter and compares
// return value, output, and final memory.
func checkEquivalence(t *testing.T, src string, specOn bool, d *machine.Desc) (*core.Simulator, uint64) {
	t.Helper()
	sim, orig := buildSim(t, src, specOn, d)
	gotV, err := sim.Run("main")
	if err != nil {
		t.Fatalf("simulate (spec=%v): %v", specOn, err)
	}
	m := interp.New(orig)
	wantV, err := m.RunMain()
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if gotV != wantV {
		t.Errorf("spec=%v: result %d, interp %d", specOn, gotV, wantV)
	}
	if len(sim.Output) != len(m.Output) {
		t.Errorf("spec=%v: output %v vs %v", specOn, sim.Output, m.Output)
	} else {
		for i := range m.Output {
			if sim.Output[i] != m.Output[i] {
				t.Errorf("spec=%v: output[%d] %q vs %q", specOn, i, sim.Output[i], m.Output[i])
			}
		}
	}
	simMem := sim.Memory()
	for i := range m.Mem {
		if simMem[i] != m.Mem[i] {
			t.Errorf("spec=%v: memory[%d] = %d, interp %d", specOn, i, simMem[i], m.Mem[i])
			break
		}
	}
	return sim, gotV
}

const stridedKernel = `
var a[512]
var out[512]
func main() {
	for var i = 0; i < 512; i = i + 1 { a[i] = i * 8 }
	var s = 0
	for var i = 0; i < 512; i = i + 1 {
		var x = a[i]
		var y = x * 3 + 7
		var z = y - x + (y >> 2)
		out[i] = z
		s = s + z
	}
	return s
}`

func TestDynamicMatchesInterpWithoutSpeculation(t *testing.T) {
	checkEquivalence(t, stridedKernel, false, machine.W4)
}

func TestDynamicMatchesInterpWithSpeculation(t *testing.T) {
	sim, _ := checkEquivalence(t, stridedKernel, true, machine.W4)
	if sim.Predictions == 0 {
		t.Error("no predictions made; speculation inactive")
	}
	if sim.CCEFlushed == 0 {
		t.Error("no compensation entries flushed")
	}
}

func TestSpeculationSpeedsUpPredictableKernel(t *testing.T) {
	base, _ := buildSim(t, stridedKernel, false, machine.W4)
	if _, err := base.Run("main"); err != nil {
		t.Fatal(err)
	}
	spec, _ := buildSim(t, stridedKernel, true, machine.W4)
	if _, err := spec.Run("main"); err != nil {
		t.Fatal(err)
	}
	if spec.Cycles >= base.Cycles {
		t.Errorf("speculated run %d cycles, baseline %d — expected a speedup", spec.Cycles, base.Cycles)
	}
	t.Logf("baseline %d cycles, speculated %d cycles (%.2fx), mispredicts %d/%d",
		base.Cycles, spec.Cycles, float64(base.Cycles)/float64(spec.Cycles),
		sim0(spec.Mispredicts), spec.Predictions)
}

func sim0(v int64) int64 { return v }

// mixedKernel has a load that is predictable about 70% of the time, so
// selection happens (threshold 0.65) and mispredictions exercise the full
// recovery path.
const mixedKernel = `
var a[512]
var out[512]
func main() {
	for var i = 0; i < 512; i = i + 1 {
		if i % 8 < 7 { a[i] = 5 } else { a[i] = (i * 2654435761) % 1000 }
	}
	var s = 0
	for var i = 0; i < 512; i = i + 1 {
		var x = a[i]
		var y = x * 3 + 1
		var z = y - x
		out[i] = z
		s = s + z
	}
	return s
}`

func TestDynamicCorrectUnderMispredictions(t *testing.T) {
	sim, _ := checkEquivalence(t, mixedKernel, true, machine.W4)
	if sim.Mispredicts == 0 {
		t.Error("kernel designed to mispredict never mispredicted")
	}
	if sim.CCEExecuted == 0 {
		t.Error("mispredictions must re-execute compensation ops")
	}
	t.Logf("predictions %d, mispredicts %d, CCE exec %d, flush %d",
		sim.Predictions, sim.Mispredicts, sim.CCEExecuted, sim.CCEFlushed)
}

func TestDynamicCorrectAcrossCallsAndBranches(t *testing.T) {
	src := `
var tbl[128]
func classify(v) {
	if v > 50 { return 2 }
	if v > 10 { return 1 }
	return 0
}
func main() {
	for var i = 0; i < 128; i = i + 1 { tbl[i] = (i * 37) % 100 }
	var counts = 0
	for var i = 0; i < 128; i = i + 1 {
		var x = tbl[i]
		counts = counts + classify(x) * 100 + 1
	}
	print(counts)
	return counts
}`
	checkEquivalence(t, src, true, machine.W4)
}

func TestDynamicFloatKernel(t *testing.T) {
	src := `
var v[256] float
func main() {
	for var i = 0; i < 256; i = i + 1 { v[i] = float(i) * 0.5 }
	var acc = 0.0
	for var i = 1; i < 255; i = i + 1 {
		var left = v[i - 1]
		var mid = v[i]
		var right = v[i + 1]
		acc = acc + (left + 2.0 * mid + right) * 0.25
	}
	return int(acc)
}`
	checkEquivalence(t, src, true, machine.W4)
}

func TestDynamicDeferredSpeculativeFaultIsBenign(t *testing.T) {
	// The first iteration's cold prediction supplies 0; x - 3 is then -3,
	// never 0, so no fault. A mispredicted value equal to 3 would fault
	// speculatively (divide by zero), be poisoned, and recover — either
	// way the architectural result must match the interpreter.
	src := `
var a[64]
func main() {
	for var i = 0; i < 64; i = i + 1 { a[i] = 5 + (i % 3) * 2 }
	var s = 0
	for var i = 0; i < 64; i = i + 1 {
		var x = a[i]
		var q = 1000 / (x - 3)
		s = s + q
	}
	return s
}`
	checkEquivalence(t, src, true, machine.W4)
}

func TestDynamicOnAllWidths(t *testing.T) {
	for _, d := range machine.Stock() {
		checkEquivalence(t, stridedKernel, true, d)
	}
}

func TestWiderMachinesRunFewerCycles(t *testing.T) {
	var prev int64
	for i, d := range machine.Stock() {
		sim, _ := buildSim(t, stridedKernel, true, d)
		if _, err := sim.Run("main"); err != nil {
			t.Fatal(err)
		}
		if i > 0 && sim.Cycles > prev {
			t.Errorf("%s ran %d cycles, narrower machine ran %d", d.Name, sim.Cycles, prev)
		}
		prev = sim.Cycles
	}
}

func TestDynamicStatsAccounting(t *testing.T) {
	sim, _ := buildSim(t, stridedKernel, true, machine.W4)
	if _, err := sim.Run("main"); err != nil {
		t.Fatal(err)
	}
	if sim.Instrs <= 0 || sim.Ops < sim.Instrs {
		t.Errorf("implausible instruction accounting: %d instrs, %d ops", sim.Instrs, sim.Ops)
	}
	if sim.Cycles < sim.Instrs {
		t.Errorf("cycles %d < issued instructions %d", sim.Cycles, sim.Instrs)
	}
	total := sim.Predictions
	if sim.Mispredicts > total {
		t.Errorf("mispredicts %d exceed predictions %d", sim.Mispredicts, total)
	}
	if sim.MaxCCBOccupancy <= 0 || sim.MaxCCBOccupancy > sim.CCBCapacity {
		t.Errorf("peak CCB occupancy %d outside (0, %d]", sim.MaxCCBOccupancy, sim.CCBCapacity)
	}
}

func TestDynamicRecursion(t *testing.T) {
	src := `
func fib(n) {
	if n < 2 { return n }
	return fib(n - 1) + fib(n - 2)
}
func main() { return fib(15) }`
	checkEquivalence(t, src, true, machine.W4)
}

// TestDynamicCorrectWithIfConversion is the regression for the
// setter/waiter packing bug: an if-converted hash-probe kernel whose
// Select feeds a table lookup in the next block. Before the fix, the
// Select could pack into the same long instruction as the block's
// terminator, letting the unverified hash index escape the block.
func TestDynamicCorrectWithIfConversion(t *testing.T) {
	src := `
var input[256]
var htab[512]
var codetab[512]
var sink = 0
func main() {
	var i = 0
	while i < 256 { input[i] = 97 + i % 7 i = i + 1 }
	i = 0
	while i < 512 { htab[i] = 0 - 1 i = i + 1 }
	var prefix = input[0]
	var nextcode = 256
	i = 1
	while i < 256 {
		var c = input[i]
		var key = prefix * 256 + c
		var h = (key * 40503) % 512
		if h < 0 { h = h + 512 }
		var found = 0 - 1
		var probes = 0
		while probes < 8 {
			var k = htab[h]
			if k == key { found = codetab[h] break }
			if k == 0 - 1 { break }
			h = (h + 1) % 512
			probes = probes + 1
		}
		if found >= 0 {
			prefix = found
		} else {
			sink = sink * 31 + prefix
			if nextcode < 512 { htab[h] = key codetab[h] = nextcode nextcode = nextcode + 1 }
			prefix = c
		}
		i = i + 1
	}
	return sink % 1000003
}`
	for _, d := range []*machine.Desc{machine.W4, machine.W8} {
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		opt.Optimize(prog)
		ifconv.Convert(prog, ifconv.DefaultConfig())

		m := interp.New(prog)
		want, err := m.RunMain()
		if err != nil {
			t.Fatal(err)
		}

		prof, err := profile.Collect(prog, "main")
		if err != nil {
			t.Fatal(err)
		}
		res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(d))
		if err != nil {
			t.Fatal(err)
		}
		schemes := map[int]profile.Scheme{}
		for _, site := range res.Sites {
			schemes[site.ID] = site.Scheme
		}
		ps := &sched.ProgSched{Prog: res.Prog, Funcs: map[string]*sched.FuncSched{}}
		for _, f := range res.Prog.Funcs {
			fs := &sched.FuncSched{F: f, Blocks: make([]*sched.BlockSched, len(f.Blocks))}
			for i, blk := range f.Blocks {
				g := speculate.BuildGraph(blk, d, ddg.Options{})
				fs.Blocks[i] = sched.ScheduleBlock(blk, g, d)
				if err := fs.Blocks[i].Validate(g, d); err != nil {
					t.Fatalf("%s b%d: %v", f.Name, i, err)
				}
			}
			ps.Funcs[f.Name] = fs
		}
		sim, err := core.NewSimulator(res.Prog, ps, d, schemes)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: if-converted speculated run %d != %d", d.Name, got, want)
		}
		if sim.Mispredicts == 0 {
			t.Errorf("%s: kernel must exercise misprediction recovery", d.Name)
		}
	}
}
