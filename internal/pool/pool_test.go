package pool_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"vliwvp/internal/pool"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, jobs := range []int{0, 1, 3, 8, 100} {
		n := 57
		counts := make([]int32, n)
		if err := pool.ForEach(jobs, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("jobs=%d: index %d visited %d times", jobs, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Fail at indices 40 and 7; index 7 must win on every schedule. The
	// high index finishes first (no sleep) to stress the determinism.
	for _, jobs := range []int{1, 2, 8} {
		err := pool.ForEach(jobs, 64, func(i int) error {
			switch i {
			case 7:
				time.Sleep(5 * time.Millisecond)
				return fmt.Errorf("err-7")
			case 40:
				return fmt.Errorf("err-40")
			}
			return nil
		})
		if err == nil || err.Error() != "err-7" {
			t.Errorf("jobs=%d: got %v, want err-7", jobs, err)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const jobs = 4
	var inFlight, peak atomic.Int32
	if err := pool.ForEach(jobs, 64, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Errorf("peak concurrency %d exceeds jobs=%d", p, jobs)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := pool.ForEach(8, 0, func(int) error { return fmt.Errorf("called") }); err != nil {
		t.Fatal(err)
	}
}
