// Package pool provides the bounded worker pool shared by the parallel
// experiment runner (internal/exp) and the differential-testing oracle
// (internal/oracle). Work items are indices into a caller-owned slice, so
// results land in deterministic positions regardless of completion order
// and aggregation can replay them in input order.
package pool

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn for every index in [0, n) on up to jobs concurrent
// workers. jobs <= 1 runs inline on the calling goroutine.
//
// The error contract is deterministic across schedules: if any invocation
// fails, ForEach returns the failure with the lowest index, regardless of
// which worker observed it first. (The serial path short-circuits at the
// first failing index, which is the same error the parallel path picks.)
func ForEach(jobs, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
