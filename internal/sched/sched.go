// Package sched implements the critical-path list scheduler that packs IR
// operations into VLIW long instructions subject to dependence latencies and
// functional-unit resource limits.
package sched

import (
	"fmt"
	"sort"

	"vliwvp/internal/ddg"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
)

// Instr is one long instruction: the operations issued in one cycle plus
// the Synchronization-register wait mask the decoder checks before issue.
type Instr struct {
	Ops      []*ir.Op
	WaitBits uint64
}

// BlockSched is the schedule of one basic block: Instrs[i] holds the
// operations issued in cycle i (an entry may be empty when every ready
// operation is still waiting on a latency).
type BlockSched struct {
	Block  *ir.Block
	Instrs []Instr
	// IssueCycle maps op ID -> cycle, for timing analysis and tests.
	IssueCycle map[int]int
}

// Length is the schedule length in cycles.
func (s *BlockSched) Length() int { return len(s.Instrs) }

// FuncSched holds the block schedules of one function, indexed by block ID.
type FuncSched struct {
	F      *ir.Func
	Blocks []*BlockSched
}

// ProgSched holds the schedules of a whole program.
type ProgSched struct {
	Prog  *ir.Program
	Funcs map[string]*FuncSched
}

// ScheduleBlock list-schedules one block onto the machine. Priority is the
// latency-weighted height (operations on long dependence chains first),
// breaking ties by original program order.
func ScheduleBlock(b *ir.Block, g *ddg.Graph, d *machine.Desc) *BlockSched {
	n := len(b.Ops)
	s := &BlockSched{Block: b, IssueCycle: make(map[int]int, n)}
	if n == 0 {
		return s
	}

	// earliest[i]: lower bound on issue cycle from already-scheduled preds.
	earliest := make([]int, n)
	unscheduledPreds := make([]int, n)
	for i, node := range g.Nodes {
		unscheduledPreds[i] = len(node.Preds)
	}

	// ready holds indices whose predecessors are all scheduled.
	var ready []int
	for i := range g.Nodes {
		if unscheduledPreds[i] == 0 {
			ready = append(ready, i)
		}
	}
	remaining := n

	for cycle := 0; remaining > 0; cycle++ {
		if cycle > 4*g.CriticalLength+4*n+16 {
			// Cannot happen with a well-formed graph; guard against cycles.
			panic(fmt.Sprintf("sched: no progress in block b%d", b.ID))
		}
		var used [machine.NumClasses]int
		slots := 0
		var issued []*ir.Op

		// Zero-latency edges (for example every-op -> terminator) allow a
		// successor released this cycle to issue this same cycle, so issue
		// and release alternate until a fixpoint.
		for {
			// Order ready ops by height desc, then program order.
			sort.SliceStable(ready, func(a, c int) bool {
				ha, hc := g.Nodes[ready[a]].Height, g.Nodes[ready[c]].Height
				if ha != hc {
					return ha > hc
				}
				return ready[a] < ready[c]
			})

			var issuedIdx []int
			for k := 0; k < len(ready); {
				i := ready[k]
				node := g.Nodes[i]
				cls := machine.ClassOf(node.Op)
				if earliest[i] > cycle || slots >= d.Width || used[cls] >= d.Units[cls] {
					k++
					continue
				}
				ready = append(ready[:k], ready[k+1:]...)
				remaining--
				slots++
				used[cls]++
				issued = append(issued, node.Op)
				issuedIdx = append(issuedIdx, i)
				s.IssueCycle[node.Op.ID] = cycle
			}
			if len(issuedIdx) == 0 {
				break
			}
			for _, i := range issuedIdx {
				for _, e := range g.Nodes[i].Succs {
					if t := cycle + e.Latency; t > earliest[e.To] {
						earliest[e.To] = t
					}
					unscheduledPreds[e.To]--
					if unscheduledPreds[e.To] == 0 {
						ready = append(ready, e.To)
					}
				}
			}
		}

		var wait uint64
		for _, op := range issued {
			wait |= op.WaitBits
		}
		s.Instrs = append(s.Instrs, Instr{Ops: issued, WaitBits: wait})
	}

	// Trim trailing empty instructions (possible when the last issue cycle
	// was followed by bookkeeping-only cycles — normally none).
	for len(s.Instrs) > 0 && len(s.Instrs[len(s.Instrs)-1].Ops) == 0 {
		s.Instrs = s.Instrs[:len(s.Instrs)-1]
	}
	return s
}

// ScheduleFunc schedules every block of a function.
func ScheduleFunc(f *ir.Func, d *machine.Desc, opts ddg.Options) *FuncSched {
	fs := &FuncSched{F: f, Blocks: make([]*BlockSched, len(f.Blocks))}
	for i, b := range f.Blocks {
		g := ddg.Build(b, d.Latency, opts)
		fs.Blocks[i] = ScheduleBlock(b, g, d)
	}
	return fs
}

// ScheduleProgram schedules every function of a program.
func ScheduleProgram(p *ir.Program, d *machine.Desc, opts ddg.Options) *ProgSched {
	ps := &ProgSched{Prog: p, Funcs: make(map[string]*FuncSched, len(p.Funcs))}
	for _, f := range p.Funcs {
		ps.Funcs[f.Name] = ScheduleFunc(f, d, opts)
	}
	return ps
}

// Validate checks that a block schedule respects program semantics: every
// operation issued exactly once, every dependence edge's latency honored,
// and no cycle oversubscribes the machine.
func (s *BlockSched) Validate(g *ddg.Graph, d *machine.Desc) error {
	count := 0
	for cycle, instr := range s.Instrs {
		var used [machine.NumClasses]int
		if len(instr.Ops) > d.Width {
			return fmt.Errorf("cycle %d: %d ops exceed width %d", cycle, len(instr.Ops), d.Width)
		}
		for _, op := range instr.Ops {
			cls := machine.ClassOf(op)
			used[cls]++
			if used[cls] > d.Units[cls] {
				return fmt.Errorf("cycle %d: class %v oversubscribed", cycle, cls)
			}
			if got, ok := s.IssueCycle[op.ID]; !ok || got != cycle {
				return fmt.Errorf("cycle %d: IssueCycle inconsistent for op %d", cycle, op.ID)
			}
			count++
		}
	}
	if count != len(s.Block.Ops) {
		return fmt.Errorf("scheduled %d ops, block has %d", count, len(s.Block.Ops))
	}
	for i, node := range g.Nodes {
		ci := s.IssueCycle[node.Op.ID]
		for _, e := range node.Succs {
			cj := s.IssueCycle[g.Nodes[e.To].Op.ID]
			if cj < ci+e.Latency {
				return fmt.Errorf("edge %d->%d (%v, lat %d) violated: issue %d then %d",
					i, e.To, e.Kind, e.Latency, ci, cj)
			}
		}
	}
	return nil
}
