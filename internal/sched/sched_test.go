package sched_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vliwvp/internal/ddg"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/sched"
)

func mustCompile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

const kernelSrc = `
var a[64]
var b[64]
func main() {
	var s = 0
	for var i = 0; i < 64; i = i + 1 {
		var x = a[i]
		var y = b[i]
		s = s + x * y + (x - y)
	}
	return s
}`

func TestAllBlocksScheduleValidOnAllMachines(t *testing.T) {
	prog := mustCompile(t, kernelSrc)
	for _, d := range machine.Stock() {
		for _, f := range prog.Funcs {
			for _, b := range f.Blocks {
				g := ddg.Build(b, d.Latency, ddg.Options{})
				s := sched.ScheduleBlock(b, g, d)
				if err := s.Validate(g, d); err != nil {
					t.Errorf("%s %s b%d: %v", d.Name, f.Name, b.ID, err)
				}
			}
		}
	}
}

func TestScheduleNotShorterThanCriticalPath(t *testing.T) {
	prog := mustCompile(t, kernelSrc)
	d := machine.W4
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if len(b.Ops) == 0 {
				continue
			}
			g := ddg.Build(b, d.Latency, ddg.Options{})
			s := sched.ScheduleBlock(b, g, d)
			// Length counts issue cycles; the last op issues at Length-1 and
			// the critical path bound includes its latency.
			minLen := g.CriticalLength - maxLatency(b, d) + 1
			if s.Length() < minLen {
				t.Errorf("%s b%d: length %d below dependence bound %d", f.Name, b.ID, s.Length(), minLen)
			}
		}
	}
}

func maxLatency(b *ir.Block, d *machine.Desc) int {
	m := 1
	for _, op := range b.Ops {
		if l := d.Latency(op); l > m {
			m = l
		}
	}
	return m
}

func TestWiderMachineNeverLengthensSchedule(t *testing.T) {
	prog := mustCompile(t, kernelSrc)
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			g4 := ddg.Build(b, machine.W4.Latency, ddg.Options{})
			g8 := ddg.Build(b, machine.W8.Latency, ddg.Options{})
			l4 := sched.ScheduleBlock(b, g4, machine.W4).Length()
			l8 := sched.ScheduleBlock(b, g8, machine.W8).Length()
			if l8 > l4 {
				t.Errorf("%s b%d: 8-wide longer (%d) than 4-wide (%d)", f.Name, b.ID, l8, l4)
			}
		}
	}
}

func TestParallelismExploited(t *testing.T) {
	// Eight independent movi ops + ret on a 4-wide machine with 2 IALUs:
	// the movis need >= 4 cycles; on 8-wide (4 IALUs) >= 2 cycles.
	f := ir.NewFunc("p")
	regs := make([]ir.Reg, 8)
	for i := range regs {
		regs[i] = f.NewReg()
		op := f.NewOp(ir.MovI)
		op.Dest, op.Imm = regs[i], int64(i)
		f.Blocks[0].Ops = append(f.Blocks[0].Ops, op)
	}
	ret := f.NewOp(ir.Ret)
	ret.A = regs[0]
	f.Blocks[0].Ops = append(f.Blocks[0].Ops, ret)

	g := ddg.Build(f.Blocks[0], machine.W4.Latency, ddg.Options{})
	s4 := sched.ScheduleBlock(f.Blocks[0], g, machine.W4)
	if s4.Length() != 4 {
		t.Errorf("4-wide length = %d, want 4 (2 IALU/cycle)", s4.Length())
	}
	g8 := ddg.Build(f.Blocks[0], machine.W8.Latency, ddg.Options{})
	s8 := sched.ScheduleBlock(f.Blocks[0], g8, machine.W8)
	if s8.Length() != 2 {
		t.Errorf("8-wide length = %d, want 2 (4 IALU/cycle)", s8.Length())
	}
}

func TestTerminatorPacksWithLastOps(t *testing.T) {
	// One movi + ret: both can issue in cycle 0 (ret has a latency-0 ctrl
	// edge and reads no result of the movi).
	f := ir.NewFunc("t")
	r := f.NewReg()
	op := f.NewOp(ir.MovI)
	op.Dest = r
	ret := f.NewOp(ir.Ret)
	f.Blocks[0].Ops = append(f.Blocks[0].Ops, op, ret)
	g := ddg.Build(f.Blocks[0], machine.W4.Latency, ddg.Options{})
	s := sched.ScheduleBlock(f.Blocks[0], g, machine.W4)
	if s.Length() != 1 {
		t.Errorf("length = %d, want 1", s.Length())
	}
}

func TestTerminatorWaitsForConditionLatency(t *testing.T) {
	// Branch on a loaded value: load(3) at cycle c means br no earlier than c+3.
	f := ir.NewFunc("brl")
	addr, v := f.NewReg(), f.NewReg()
	mi := f.NewOp(ir.MovI)
	mi.Dest, mi.Imm = addr, 1
	ld := f.NewOp(ir.Load)
	ld.Dest, ld.A = v, addr
	br := f.NewOp(ir.Br)
	br.A = v
	f.Blocks[0].Ops = append(f.Blocks[0].Ops, mi, ld, br)
	f.Blocks[0].Succs = []int{0, 0}

	g := ddg.Build(f.Blocks[0], machine.W4.Latency, ddg.Options{})
	s := sched.ScheduleBlock(f.Blocks[0], g, machine.W4)
	ldCycle := s.IssueCycle[ld.ID]
	brCycle := s.IssueCycle[br.ID]
	if brCycle < ldCycle+machine.LatLoad {
		t.Errorf("br at %d, load at %d: must wait %d cycles", brCycle, ldCycle, machine.LatLoad)
	}
}

func TestScheduleFuncCoversAllBlocks(t *testing.T) {
	prog := mustCompile(t, kernelSrc)
	fs := sched.ScheduleFunc(prog.Func("main"), machine.W4, ddg.Options{})
	if len(fs.Blocks) != len(prog.Func("main").Blocks) {
		t.Fatalf("scheduled %d blocks, want %d", len(fs.Blocks), len(prog.Func("main").Blocks))
	}
	for i, bs := range fs.Blocks {
		total := 0
		for _, in := range bs.Instrs {
			total += len(in.Ops)
		}
		if total != len(prog.Func("main").Blocks[i].Ops) {
			t.Errorf("block %d: %d ops scheduled, want %d", i, total, len(prog.Func("main").Blocks[i].Ops))
		}
	}
}

// TestPropertyRandomBlocksScheduleLegally generates random straight-line
// blocks and checks schedule legality on every stock machine.
func TestPropertyRandomBlocksScheduleLegally(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := ir.NewFunc("r")
		b := f.Blocks[0]
		nregs := 4 + rng.Intn(8)
		regs := make([]ir.Reg, nregs)
		for i := range regs {
			regs[i] = f.NewReg()
			op := f.NewOp(ir.MovI)
			op.Dest, op.Imm = regs[i], int64(i+1)
			b.Ops = append(b.Ops, op)
		}
		nops := 5 + rng.Intn(30)
		codes := []ir.Opcode{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.CmpLT, ir.Mov, ir.Load, ir.Store}
		for i := 0; i < nops; i++ {
			code := codes[rng.Intn(len(codes))]
			op := f.NewOp(code)
			switch code {
			case ir.Load:
				op.Dest = regs[rng.Intn(nregs)]
				op.A = regs[rng.Intn(nregs)]
			case ir.Store:
				op.A = regs[rng.Intn(nregs)]
				op.B = regs[rng.Intn(nregs)]
			case ir.Mov:
				op.Dest = regs[rng.Intn(nregs)]
				op.A = regs[rng.Intn(nregs)]
			default:
				op.Dest = regs[rng.Intn(nregs)]
				op.A = regs[rng.Intn(nregs)]
				op.B = regs[rng.Intn(nregs)]
			}
			b.Ops = append(b.Ops, op)
		}
		ret := f.NewOp(ir.Ret)
		ret.A = regs[0]
		b.Ops = append(b.Ops, ret)

		for _, d := range machine.Stock() {
			g := ddg.Build(b, d.Latency, ddg.Options{})
			s := sched.ScheduleBlock(b, g, d)
			if err := s.Validate(g, d); err != nil {
				t.Logf("seed %d on %s: %v", seed, d.Name, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
