package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"vliwvp/internal/core"
)

func coreIsCycleLimit(err error) bool { return errors.Is(err, core.ErrCycleLimit) }

// writeErr emits the error-body contract: the exact status, a JSON
// {"error":{code,message}} body, and Retry-After on 503s.
func writeErr(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(struct {
		Error ErrBody `json:"error"`
	}{ErrBody{Code: e.Code, Message: e.Message}})
}

// writeJSON emits a 2xx JSON body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// countErr tallies a rejection by code and writes it.
func (s *Server) countErr(w http.ResponseWriter, e *Error) {
	s.reg.Counter("serve.rejected." + e.Code).Inc()
	writeErr(w, e)
}

// streamEncoder writes NDJSON stream lines. Nil-safe: a nil encoder (the
// non-streaming path) ignores every call.
type streamEncoder struct {
	w     io.Writer
	flush func()
}

func (e *streamEncoder) line(l *StreamLine) {
	if e == nil {
		return
	}
	b, err := json.Marshal(l)
	if err != nil {
		return
	}
	e.w.Write(append(b, '\n'))
	if e.flush != nil {
		e.flush()
	}
}

func (e *streamEncoder) cell(c *CellResult) { e.line(&StreamLine{Cell: c}) }
func (e *streamEncoder) done(d *DoneLine)   { e.line(&StreamLine{Done: d}) }

// handleRun is POST /v1/run: decode, admission-check, enqueue with
// backpressure, wait for the worker, answer.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { s.hLatency.Observe(time.Since(t0).Microseconds()) }()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.countErr(w, errf(405, "method_not_allowed", "use POST"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.budgets.MaxBodyBytes))
	if err != nil {
		if isBodyTooLarge(err) {
			s.countErr(w, errf(413, "body_too_large", "body exceeds %d bytes", s.budgets.MaxBodyBytes))
		} else {
			s.countErr(w, errf(400, "bad_request", "reading body: %v", err))
		}
		return
	}
	req, apiErr := decodeRequest(body)
	if apiErr != nil {
		s.countErr(w, apiErr)
		return
	}
	spec, apiErr := validateRequest(req, s.budgets)
	if apiErr != nil {
		s.countErr(w, apiErr)
		return
	}

	j := &job{
		spec:     spec,
		accepted: make(chan struct{}),
		ready:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	streaming := req.Stream || req.Trace
	if streaming {
		j.w = w
		j.flush = func() {
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	} else {
		// Non-streaming jobs never touch the ResponseWriter from the
		// worker; the handler writes after completion.
		close(j.ready)
	}

	if apiErr := s.admitJob(); apiErr != nil {
		s.countErr(w, apiErr)
		return
	}
	if apiErr := s.enqueue(j); apiErr != nil {
		s.countErr(w, apiErr)
		return
	}
	s.mAccepted.Inc()

	if streaming {
		// Hold the 200 until a worker actually starts the job: a queued
		// job rejected by drain must still answer with a clean 503.
		select {
		case <-j.accepted:
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			close(j.ready)
			<-j.done
			s.mCompleted.Inc()
			return
		case <-j.done:
			// Rejected while queued (drain) — nothing streamed yet.
			s.countErr(w, j.apiErr)
			return
		}
	}

	<-j.done
	switch {
	case j.apiErr != nil:
		s.countErr(w, j.apiErr)
	default:
		s.mCompleted.Inc()
		writeJSON(w, http.StatusOK, j.resp)
	}
}

// healthBody is the /healthz response shape.
type healthBody struct {
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
	Workers    int    `json:"workers"`
	PooledSims int    `json:"pooled_sims"`
	UptimeS    int64  `json:"uptime_s"`
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it while in-flight work completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.countErr(w, errf(405, "method_not_allowed", "use GET"))
		return
	}
	h := healthBody{
		Status:     "ok",
		QueueDepth: len(s.jobs),
		Workers:    len(s.workers),
		PooledSims: s.NumPooledSims(),
		UptimeS:    int64(time.Since(s.start).Seconds()),
	}
	status := http.StatusOK
	if s.Draining() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// handleMetrics serves the server registry snapshot as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.countErr(w, errf(405, "method_not_allowed", "use GET"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	s.reg.Snapshot().WriteJSON(w)
}
