// Package serve is the compile-and-simulate daemon (vpexpd): a long-
// running HTTP/JSON service that accepts VL programs (inline source,
// stock benchmarks, or progen seeds) plus machine/config grids, compiles
// them through the pass-manager pipeline, executes each grid cell on a
// pooled decoded-engine simulator, and answers with schedules, cycle
// counts, stats snapshots, and optionally a streamed event trace.
//
// The serving spine, in the order a request crosses it:
//
//   - Admission control (request.go): every budget — body size, program
//     size, grid cells, cycle caps — is checked before any work is
//     admitted, with an exact status/error-code contract per rejection.
//   - Backpressure: a bounded queue in front of a fixed worker pool; an
//     enqueue past MaxQueue is an immediate 503 with Retry-After, never
//     an unbounded pile-up.
//   - Request coalescing (this file + internal/exp/serve.go): compiles go
//     through the single-flight pipeline cache keyed by cumulative pass
//     fingerprints, so N concurrent identical requests perform exactly
//     one compile and N-1 coalesced waits — pinned by counters the
//     /metrics endpoint exports.
//   - Pooled execution: each worker owns a core.Batch, so repeat requests
//     for an image reuse its simulator (frame pools, predictor tables,
//     event wheel) at steady-state zero allocation.
//   - Graceful drain: Drain stops admission, lets in-flight requests
//     complete, answers queued ones with 503 + Retry-After, and leaves
//     every pooled simulator quiescent (CheckQuiescent proves it).
//
// Endpoints: POST /v1/run, GET /healthz, GET /metrics.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vliwvp/internal/core"
	"vliwvp/internal/exp"
	"vliwvp/internal/exp/cache"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/predict"
)

// Server is one daemon instance. Create with New, mount Handler on an
// http.Server, and Shutdown on the way out.
type Server struct {
	budgets Budgets
	reg     *obs.SyncRegistry
	cache   *cache.Cache
	mux     *http.ServeMux
	start   time.Time

	jobs     chan *job
	stop     chan struct{}
	stopOnce sync.Once
	workers  []*worker
	workerWG sync.WaitGroup

	// admit guards the draining flag against jobWG.Add: a handler admits
	// (checks draining and registers with jobWG) under RLock; Drain flips
	// the flag under Lock, so after Drain acquires the lock no new job
	// can register and jobWG.Wait covers everything admitted.
	admit    sync.RWMutex
	draining bool
	jobWG    sync.WaitGroup

	// Metric handles (all concurrent-safe; exported via /metrics).
	mAccepted   *obs.SyncCounter
	mCompleted  *obs.SyncCounter
	mCompiled   *obs.SyncCounter
	mCoalesced  *obs.SyncCounter
	mCellsOK    *obs.SyncCounter
	mCellsErr   *obs.SyncCounter
	mQueueDepth *obs.SyncCounter
	mFlushes    *obs.SyncCounter
	hQueue      *obs.SyncHistogram
	hLatency    *obs.SyncHistogram

	// execGate, when non-nil, runs at the start of every job execution.
	// Test-only: the drain test parks a worker here to pin the in-flight
	// vs queued distinction.
	execGate func(*job)
}

// worker is one executor goroutine's state: its pooled simulator batch.
// nsims mirrors batch.NumSims for lock-free reads from /healthz (the
// batch itself is touched only by the worker goroutine and by
// CheckQuiescent after drain).
type worker struct {
	batch *core.Batch
	nsims atomic.Int64
}

// job carries one admitted request through the queue.
type job struct {
	spec *runSpec

	// Streaming plumbing. For stream/trace requests the worker writes the
	// body itself: it closes accepted when it dequeues the job past the
	// drain check, the handler then writes the 200 header and closes
	// ready, and the worker streams. Non-streaming jobs have ready
	// pre-closed and their result lands in resp/apiErr.
	w        http.ResponseWriter
	flush    func()
	accepted chan struct{}
	ready    chan struct{}
	done     chan struct{}

	resp   *RunResponse
	apiErr *Error
}

// New builds a server with started workers. Budgets are normalized.
func New(b Budgets) *Server {
	b = b.Normalize()
	s := &Server{
		budgets: b,
		reg:     obs.NewSyncRegistry(),
		cache:   cache.New(),
		jobs:    make(chan *job, b.MaxQueue),
		stop:    make(chan struct{}),
		start:   time.Now(),
	}
	s.mAccepted = s.reg.Counter("serve.requests.accepted")
	s.mCompleted = s.reg.Counter("serve.requests.completed")
	s.mCompiled = s.reg.Counter("serve.compile.computed")
	s.mCoalesced = s.reg.Counter("serve.compile.coalesced")
	s.mCellsOK = s.reg.Counter("serve.cells.ok")
	s.mCellsErr = s.reg.Counter("serve.cells.error")
	s.mQueueDepth = s.reg.Counter("serve.queue.depth")
	s.mFlushes = s.reg.Counter("serve.cache.flushes")
	s.hQueue = s.reg.Histogram("serve.queue.depth.observed", obs.Pow2Bounds(12))
	// Latency in microseconds; pow-2 bounds up to ~67s.
	s.hLatency = s.reg.Histogram("serve.request.latency_us", obs.Pow2Bounds(26))

	// Compile-vs-coalesced accounting: the cache hook sees every Do on
	// the server's pipeline cache; only full compiled products (the
	// "img|" keys) count — per-pass prefix entries would double-book.
	s.cache.Hook = func(key string, ran bool) {
		if !strings.HasPrefix(key, exp.CompiledPrefix) {
			return
		}
		if ran {
			s.mCompiled.Inc()
		} else {
			s.mCoalesced.Inc()
		}
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.countErr(w, errf(404, "not_found", "no handler for %s", r.URL.Path))
	})

	s.workers = make([]*worker, b.Workers)
	for i := range s.workers {
		w := &worker{batch: core.NewBatch()}
		s.workers[i] = w
		s.workerWG.Add(1)
		go s.workerLoop(w)
	}
	return s
}

// Handler returns the daemon's HTTP handler (mount it on any server or
// httptest fixture).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics snapshots the server registry (what /metrics serves).
func (s *Server) Metrics() obs.Snapshot { return s.reg.Snapshot() }

// Budgets returns the normalized limits the server admits against.
func (s *Server) Budgets() Budgets { return s.budgets }

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool {
	s.admit.RLock()
	defer s.admit.RUnlock()
	return s.draining
}

// Drain stops admission and waits (bounded by ctx) until every admitted
// request has been answered: in-flight requests complete normally, queued
// requests are answered 503 draining with Retry-After. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.admit.Lock()
	s.draining = true
	s.admit.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// Shutdown drains (bounded by ctx), then stops the worker pool. After a
// clean Shutdown, CheckQuiescent must pass.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.Drain(ctx)
	s.stopOnce.Do(func() { close(s.stop) })
	s.workerWG.Wait()
	// A timed-out drain may strand queued jobs with no worker left;
	// answer them so their handlers unblock.
	for {
		select {
		case j := <-s.jobs:
			s.rejectQueued(j)
		default:
			return err
		}
	}
}

// CheckQuiescent verifies every pooled simulator in every worker batch
// satisfies the reset contract (no leaked frames, CCB entries, events, or
// Synchronization bits). Only meaningful when no request is executing —
// i.e. after Drain or Shutdown.
func (s *Server) CheckQuiescent() error {
	for i, w := range s.workers {
		if err := w.batch.CheckQuiescent(); err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}
	return nil
}

// NumPooledSims reports the pooled simulators across all workers
// (observability for tests and the selfcheck report).
func (s *Server) NumPooledSims() int {
	n := int64(0)
	for _, w := range s.workers {
		n += w.nsims.Load()
	}
	return int(n)
}

var errDraining = &Error{Status: 503, Code: "draining",
	Message: "server is draining; retry against another instance", RetryAfter: 5}

var errQueueFull = &Error{Status: 503, Code: "queue_full",
	Message: "request queue is full; retry with backoff", RetryAfter: 1}

// admitJob registers an admitted job or reports the drain rejection.
func (s *Server) admitJob() *Error {
	s.admit.RLock()
	defer s.admit.RUnlock()
	if s.draining {
		return errDraining
	}
	s.jobWG.Add(1)
	return nil
}

// enqueue places an admitted job on the queue, applying backpressure.
func (s *Server) enqueue(j *job) *Error {
	select {
	case s.jobs <- j:
		depth := int64(len(s.jobs))
		s.mQueueDepth.Set(depth)
		s.hQueue.Observe(depth)
		return nil
	default:
		s.jobWG.Done()
		return errQueueFull
	}
}

// rejectQueued answers a queued job with the draining rejection.
func (s *Server) rejectQueued(j *job) {
	j.apiErr = errDraining
	close(j.done)
	s.jobWG.Done()
}

// workerLoop pulls jobs until the server stops. A job dequeued after
// draining began was queued, not in-flight: it gets the 503.
func (s *Server) workerLoop(w *worker) {
	defer s.workerWG.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.jobs:
			s.mQueueDepth.Set(int64(len(s.jobs)))
			if s.Draining() {
				s.rejectQueued(j)
				continue
			}
			close(j.accepted)
			<-j.ready
			s.execute(w, j)
			close(j.done)
			s.jobWG.Done()
		}
	}
}

// runnerFor builds the per-cell experiment runner: the server's shared
// single-flight cache plus the cell's machine and config knobs.
func (s *Server) runnerFor(c cellSpec) *exp.Runner {
	r := exp.NewRunner(c.d)
	r.Cache = s.cache
	r.Jobs = 1
	if c.cfg.Threshold != nil {
		r.Cfg.Threshold = *c.cfg.Threshold
	}
	if c.cfg.MaxPreds > 0 {
		r.Cfg.MaxPredsPerBlock = c.cfg.MaxPreds
	}
	r.IfConvert = c.cfg.IfConvert
	r.Regions = c.cfg.Regions
	// The predictor knob affects site selection, so it belongs to the
	// compile key; admission already validated the spec, so a parse error
	// here is impossible and the nil fallback is just defensive.
	if c.cfg.Predictor != "" {
		if pc, err := predict.Parse(c.cfg.Predictor); err == nil {
			r.Cfg.Predictor = pc
		}
	}
	// The branch knob enters the control config, which fingerprints into
	// the compile key, so branch variants compile apart (same defensive
	// nil fallback as the value predictor).
	if c.cfg.Branch != "" {
		if bc, err := predict.ParseBranch(c.cfg.Branch); err == nil {
			r.Cfg.Control = machine.DefaultControl()
			r.Cfg.Control.Branch = bc
		}
	}
	// CCBCapacity is sim-time only (BatchItem), deliberately not set here
	// so cells differing only in CCB share one compile.
	return r
}

// execute runs every cell of a job on the worker's pooled batch.
func (s *Server) execute(w *worker, j *job) {
	if s.execGate != nil {
		s.execGate(j)
	}
	t0 := time.Now()
	spec := j.spec
	resp := &RunResponse{Name: spec.bench.Name, Cells: make([]CellResult, 0, len(spec.cells))}

	var enc *streamEncoder
	if spec.req.Stream || spec.req.Trace {
		enc = &streamEncoder{w: j.w, flush: j.flush}
	}

	// Distinct compiles may repeat across cells (CCB-only sweeps);
	// schedule text is attached once per first use of a compile.
	seenSchedule := map[string]bool{}

	for _, c := range spec.cells {
		r := s.runnerFor(c)
		cell := CellResult{Machine: c.d.Name, Config: c.cfg}

		compiled, err := r.Compiled(spec.bench)
		if err != nil {
			// The program failed to compile for this cell. With no
			// successful cell yet and no bytes streamed, fail the whole
			// request (the common case: bad source fails every cell);
			// otherwise record a cell error and continue.
			if len(resp.Cells) == 0 && enc == nil {
				j.apiErr = errf(422, "compile_failed", "%v", err)
				return
			}
			cell.Error, cell.ErrorCode = err.Error(), "compile_failed"
			resp.Cells = append(resp.Cells, cell)
			s.mCellsErr.Inc()
			enc.cell(&cell)
			continue
		}
		s.maybeFlushCache()

		item := core.BatchItem{
			Name:        spec.bench.Name,
			Img:         compiled.Img,
			Schemes:     compiled.Schemes,
			Entry:       spec.entry,
			Args:        spec.args,
			CCBCapacity: c.cfg.CCBCapacity,
			Mem:         machine.MemByName(c.cfg.Cache),
			Pred:        r.Cfg.Predictor,
			Ctrl:        r.Cfg.Control,
			MaxCycles:   spec.maxCycles,
		}
		sim := w.batch.SimFor(&item)
		if spec.req.Trace {
			sink := obs.NewJSONLSink(j.w)
			sim.Sink = sink
			runCell(sim, spec, &cell)
			sim.Sink = nil
			if err := sink.Close(); err == nil {
				j.flush()
			}
		} else {
			runCell(sim, spec, &cell)
		}
		if spec.req.IncludeSchedule && !seenSchedule[r.CompiledKey(spec.bench)] {
			seenSchedule[r.CompiledKey(spec.bench)] = true
			cell.Schedule = compiled.Schedule
		}
		if spec.req.IncludeStats {
			snap := sim.Metrics()
			cell.Stats = &snap
		}
		if cell.Error == "" {
			s.mCellsOK.Inc()
		} else {
			s.mCellsErr.Inc()
		}
		resp.Cells = append(resp.Cells, cell)
		enc.cell(&cell)
	}

	resp.ElapsedUS = time.Since(t0).Microseconds()
	w.nsims.Store(int64(w.batch.NumSims()))
	if enc != nil {
		enc.done(&DoneLine{Cells: len(resp.Cells), ElapsedUS: resp.ElapsedUS})
	} else {
		j.resp = resp
	}
}

// runCell executes one simulation and fills the cell's result fields.
func runCell(sim *core.Simulator, spec *runSpec, cell *CellResult) {
	v, err := sim.Run(spec.entry, spec.args...)
	if err != nil {
		cell.Error = err.Error()
		if coreIsCycleLimit(err) {
			cell.ErrorCode = "cycle_limit"
		} else {
			cell.ErrorCode = "sim_failed"
		}
		// An aborted run holds frames and events until the next Run's
		// reset; return them now so drain leaves nothing leaked.
		sim.Reset()
		return
	}
	cell.Value = v
	cell.Cycles = sim.Cycles
	cell.Instrs = sim.Instrs
	cell.Ops = sim.Ops
	cell.Predictions = sim.Predictions
	cell.Mispredicts = sim.Mispredicts
	cell.CCEExecuted = sim.CCEExecuted
	cell.CCEFlushed = sim.CCEFlushed
	cell.Output = sim.Output
}

// maybeFlushCache enforces the compile-cache entry budget.
func (s *Server) maybeFlushCache() {
	if s.budgets.MaxCacheEntries > 0 && s.cache.Len() > s.budgets.MaxCacheEntries {
		s.cache.Flush()
		s.mFlushes.Inc()
	}
}
