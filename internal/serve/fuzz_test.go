package serve

import (
	"testing"
)

// FuzzServeRequest drives the exported decode+validate entry with
// arbitrary bytes: every input must produce either a valid request or a
// typed *Error from the contract table — never a panic, and never an
// error outside the contract. Admission is pure (no compile, no
// simulation), so the fuzzer explores the full wire surface cheaply.
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"benchmark":"compress"}`))
	f.Add([]byte(`{"source":"func main() { return 1 }"}`))
	f.Add([]byte(`{"seed":7,"machines":["4-wide","8-wide"],"configs":[{"threshold":0.5}]}`))
	f.Add([]byte(`{"seed":7,"configs":[{"ccb_capacity":8,"if_convert":true,"regions":true}]}`))
	f.Add([]byte(`{"benchmark":"li","entry":"main","args":[1,2],"max_cycles":1000}`))
	f.Add([]byte(`{"benchmark":"li","stream":true,"include_schedule":true,"include_stats":true}`))
	f.Add([]byte(`{"benchmark":"li","trace":true}`))
	f.Add([]byte(`{"benchmark":"li"} trailing`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"seed":-9223372036854775808,"max_cycles":9223372036854775807}`))

	valid := map[int]map[string]bool{
		400: {"malformed_json": true, "bad_request": true},
		413: {"program_too_large": true},
		422: {"grid_too_large": true, "cycle_budget": true},
	}
	budgets := DefaultBudgets()

	f.Fuzz(func(t *testing.T, data []byte) {
		req, apiErr := DecodeRequest(data, budgets)
		if apiErr == nil {
			if req == nil {
				t.Fatal("nil request with nil error")
			}
			return
		}
		codes, ok := valid[apiErr.Status]
		if !ok || !codes[apiErr.Code] {
			t.Fatalf("rejection outside the contract table: status=%d code=%q (%s)",
				apiErr.Status, apiErr.Code, apiErr.Message)
		}
		if apiErr.Message == "" {
			t.Fatalf("rejection with empty message: %+v", apiErr)
		}
	})
}
