package serve

import "runtime"

// Budgets is the daemon's admission-control configuration: every limit a
// request is checked against before any compile or simulation work is
// admitted on its behalf. The zero value of any field selects the default
// (Normalize). Rejections map to exact HTTP statuses — see request.go's
// error-code table — so clients can distinguish "shrink your request"
// (4xx) from "retry later" (503).
type Budgets struct {
	// MaxBodyBytes caps the HTTP request body (413 body_too_large).
	MaxBodyBytes int64
	// MaxSourceBytes caps an inline VL program (413 program_too_large).
	MaxSourceBytes int
	// MaxCells caps machines × configs per request (422 grid_too_large).
	MaxCells int
	// MaxCycles caps the per-cell simulated-cycle budget. Requesting more
	// is rejected at admission (422 cycle_budget); a run that exceeds the
	// effective cap is aborted and reported as a cell-level cycle_limit
	// error.
	MaxCycles int64
	// MaxArgs caps entry-function arguments (400 bad_request).
	MaxArgs int
	// Workers is the number of executor goroutines (each owns a pooled
	// simulator batch).
	Workers int
	// MaxQueue bounds requests queued beyond the executing ones; an
	// enqueue past it is backpressure (503 queue_full, Retry-After).
	MaxQueue int
	// MaxCacheEntries bounds the compile cache. When a compile pushes the
	// entry count past it, the whole cache is flushed (crude, but keeps a
	// cold-plan soak's memory bounded). 0 disables the bound.
	MaxCacheEntries int
}

// DefaultBudgets returns the stock limits vpexpd ships with.
func DefaultBudgets() Budgets {
	return Budgets{
		MaxBodyBytes:    1 << 20,
		MaxSourceBytes:  64 << 10,
		MaxCells:        64,
		MaxCycles:       1 << 26, // ~67M cycles: every stock kernel fits with room
		MaxArgs:         8,
		Workers:         runtime.NumCPU(),
		MaxQueue:        256,
		MaxCacheEntries: 4096,
	}
}

// Normalize fills zero fields from the defaults and clamps nonsense.
func (b Budgets) Normalize() Budgets {
	d := DefaultBudgets()
	if b.MaxBodyBytes <= 0 {
		b.MaxBodyBytes = d.MaxBodyBytes
	}
	if b.MaxSourceBytes <= 0 {
		b.MaxSourceBytes = d.MaxSourceBytes
	}
	if b.MaxCells <= 0 {
		b.MaxCells = d.MaxCells
	}
	if b.MaxCycles <= 0 {
		b.MaxCycles = d.MaxCycles
	}
	if b.MaxArgs <= 0 {
		b.MaxArgs = d.MaxArgs
	}
	if b.Workers <= 0 {
		b.Workers = d.Workers
	}
	if b.MaxQueue <= 0 {
		b.MaxQueue = d.MaxQueue
	}
	if b.MaxCacheEntries < 0 {
		b.MaxCacheEntries = 0
	}
	return b
}
