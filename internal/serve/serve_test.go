package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vliwvp/internal/exp"
	"vliwvp/internal/machine"
	"vliwvp/internal/workload"
)

// tinySrc is a fast deterministic kernel used throughout; distinct salt
// values produce distinct programs (and so distinct cache keys).
func tinySrc(salt int) string {
	return fmt.Sprintf(`
func main() {
	var i = 0
	var s = %d
	while i < 16 {
		s = s + i * 3
		i = i + 1
	}
	return s
}
`, salt)
}

func newTestServer(t *testing.T, b Budgets) *Server {
	t.Helper()
	s := New(b)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := s.CheckQuiescent(); err != nil {
			t.Errorf("post-shutdown quiescence: %v", err)
		}
	})
	return s
}

// post issues one in-process request and returns the recorder.
func post(s *Server, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// errCode decodes the error-body contract and returns the code.
func errCode(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Error ErrBody `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not the contract shape: %v (body %q)", err, rec.Body.String())
	}
	if body.Error.Message == "" {
		t.Errorf("error body has empty message")
	}
	return body.Error.Code
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBudgetRejections pins the exact HTTP status and error-code contract
// for every admission-control rejection.
func TestBudgetRejections(t *testing.T) {
	thr := func(v float64) *float64 { return &v }
	seed := int64(1)
	budgets := Budgets{
		MaxBodyBytes:   4 << 10,
		MaxSourceBytes: 512,
		MaxCells:       4,
		MaxCycles:      1 << 20,
		MaxArgs:        2,
		Workers:        1,
	}
	s := newTestServer(t, budgets)

	cases := []struct {
		name       string
		body       []byte
		wantStatus int
		wantCode   string
	}{
		{"malformed json", []byte(`{"benchmark":`), 400, "malformed_json"},
		{"unknown field", []byte(`{"benchmrk":"compress"}`), 400, "malformed_json"},
		{"wrong type", []byte(`{"benchmark":17}`), 400, "malformed_json"},
		{"trailing garbage", []byte(`{"benchmark":"compress"} extra`), 400, "malformed_json"},
		{"array not object", []byte(`[1,2,3]`), 400, "malformed_json"},
		{"no program", []byte(`{}`), 400, "bad_request"},
		{"two programs", mustJSON(t, Request{Benchmark: "compress", Seed: &seed}), 400, "bad_request"},
		{"unknown benchmark", mustJSON(t, Request{Benchmark: "nope"}), 400, "bad_request"},
		{"unknown machine", mustJSON(t, Request{Seed: &seed, Machines: []string{"5-wide"}}), 400, "bad_request"},
		{"bad threshold", mustJSON(t, Request{Seed: &seed, Configs: []Config{{Threshold: thr(1.5)}}}), 400, "bad_request"},
		{"bad max_preds", mustJSON(t, Request{Seed: &seed, Configs: []Config{{MaxPreds: 99}}}), 400, "bad_request"},
		{"bad ccb", mustJSON(t, Request{Seed: &seed, Configs: []Config{{CCBCapacity: 1 << 20}}}), 400, "bad_request"},
		{"bad cache", mustJSON(t, Request{Seed: &seed, Configs: []Config{{Cache: "l9"}}}), 400, "bad_request"},
		{"bad predictor", mustJSON(t, Request{Seed: &seed, Configs: []Config{{Predictor: "magic8ball"}}}), 400, "bad_request"},
		{"bad predictor option", mustJSON(t, Request{Seed: &seed, Configs: []Config{{Predictor: "vtage:bits=99"}}}), 400, "bad_request"},
		{"bad entry", mustJSON(t, Request{Seed: &seed, Entry: "1abc"}), 400, "bad_request"},
		{"too many args", mustJSON(t, Request{Seed: &seed, Args: []uint64{1, 2, 3}}), 400, "bad_request"},
		{"negative max_cycles", mustJSON(t, Request{Seed: &seed, MaxCycles: -1}), 400, "bad_request"},
		{"trace and stream", mustJSON(t, Request{Seed: &seed, Trace: true, Stream: true}), 400, "bad_request"},
		{"trace over grid", mustJSON(t, Request{Seed: &seed, Trace: true, Machines: []string{"2-wide", "4-wide"}}), 400, "bad_request"},
		{"oversized program", mustJSON(t, Request{Source: "func main() { return 0 }" + strings.Repeat("#", 600)}), 413, "program_too_large"},
		{"oversized body", mustJSON(t, Request{Source: "x", Configs: make([]Config, 4000)}), 413, "body_too_large"},
		{"grid too large", mustJSON(t, Request{Seed: &seed,
			Machines: []string{"2-wide", "4-wide", "8-wide"},
			Configs:  []Config{{}, {IfConvert: true}}}), 422, "grid_too_large"},
		{"cycle budget", mustJSON(t, Request{Seed: &seed, MaxCycles: 1 << 30}), 422, "cycle_budget"},
		{"compile failed", mustJSON(t, Request{Source: "func main( { nope"}), 422, "compile_failed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(s, "/v1/run", tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if code := errCode(t, rec); code != tc.wantCode {
				t.Errorf("error code = %q, want %q", code, tc.wantCode)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		rec := get(s, "/v1/run")
		if rec.Code != 405 {
			t.Fatalf("status = %d, want 405", rec.Code)
		}
		if code := errCode(t, rec); code != "method_not_allowed" {
			t.Errorf("error code = %q, want method_not_allowed", code)
		}
		if allow := rec.Header().Get("Allow"); allow != "POST" {
			t.Errorf("Allow = %q, want POST", allow)
		}
	})
	t.Run("not found", func(t *testing.T) {
		rec := get(s, "/v1/nope")
		if rec.Code != 404 {
			t.Fatalf("status = %d, want 404", rec.Code)
		}
		if code := errCode(t, rec); code != "not_found" {
			t.Errorf("error code = %q, want not_found", code)
		}
	})
}

// TestRunBasics runs a tiny grid and checks the response shape: values,
// schedule on request, stats on request, deterministic replay.
func TestRunBasics(t *testing.T) {
	s := newTestServer(t, Budgets{Workers: 2})
	body := mustJSON(t, Request{
		Source:          tinySrc(7),
		Machines:        []string{"2-wide", "4-wide"},
		Configs:         []Config{{}, {CCBCapacity: 4}},
		IncludeSchedule: true,
		IncludeStats:    true,
	})

	rec := post(s, "/v1/run", body)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(resp.Cells))
	}
	// Machine-major order.
	wantMachines := []string{"2-wide", "2-wide", "4-wide", "4-wide"}
	for i, c := range resp.Cells {
		if c.Error != "" {
			t.Fatalf("cell %d: %s (%s)", i, c.Error, c.ErrorCode)
		}
		if c.Machine != wantMachines[i] {
			t.Errorf("cell %d machine = %q, want %q", i, c.Machine, wantMachines[i])
		}
		if c.Value != resp.Cells[0].Value {
			t.Errorf("cell %d value = %d, want %d (all cells compute the same function)",
				i, c.Value, resp.Cells[0].Value)
		}
		if c.Cycles <= 0 {
			t.Errorf("cell %d cycles = %d, want > 0", i, c.Cycles)
		}
		if c.Stats == nil {
			t.Errorf("cell %d: include_stats set but stats missing", i)
		}
	}
	// The schedule is attached once per distinct compile: CCB-only cells
	// share a compile, so cells 0 and 2 (first per machine) carry it.
	if resp.Cells[0].Schedule == "" || resp.Cells[2].Schedule == "" {
		t.Errorf("schedule missing on first cell of a distinct compile")
	}
	if resp.Cells[1].Schedule != "" {
		t.Errorf("schedule duplicated on a coalesced compile cell")
	}
	if !strings.Contains(resp.Cells[0].Schedule, "func main") {
		t.Errorf("schedule does not render the entry function: %q", resp.Cells[0].Schedule[:min(80, len(resp.Cells[0].Schedule))])
	}

	// Deterministic replay: the same request answers byte-identically
	// (modulo the elapsed_us timing field).
	rec2 := post(s, "/v1/run", body)
	if rec2.Code != 200 {
		t.Fatalf("replay status = %d", rec2.Code)
	}
	norm := func(b []byte) string {
		var r RunResponse
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatal(err)
		}
		r.ElapsedUS = 0
		return string(mustJSON(t, r))
	}
	if a, b := norm(rec.Body.Bytes()), norm(rec2.Body.Bytes()); a != b {
		t.Errorf("replayed response differs:\n%s\nvs\n%s", a, b)
	}
}

// TestRunCacheGrid pins the memory-hierarchy knob's wire contract: cells
// differing only in cache share a compile and compute identical values
// (the hierarchy is timing-only), the cached cell costs more cycles than
// the flat one, and its stats snapshot exposes the miss counters.
func TestRunCacheGrid(t *testing.T) {
	s := newTestServer(t, Budgets{Workers: 1})
	src := `
var a[64]
func main() {
	var i = 0
	while i < 64 {
		a[i] = i * 7
		i = i + 1
	}
	var s = 0
	i = 0
	while i < 64 {
		s = s + a[i]
		i = i + 1
	}
	return s
}
`
	rec := post(s, "/v1/run", mustJSON(t, Request{
		Source:       src,
		Configs:      []Config{{}, {Cache: "l2-pf"}},
		IncludeStats: true,
	}))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(resp.Cells))
	}
	flat, cached := resp.Cells[0], resp.Cells[1]
	if flat.Error != "" || cached.Error != "" {
		t.Fatalf("cell errors: %q / %q", flat.Error, cached.Error)
	}
	if flat.Value != cached.Value {
		t.Errorf("cache changed the architectural result: flat %d, cached %d", flat.Value, cached.Value)
	}
	if cached.Cycles <= flat.Cycles {
		t.Errorf("cached cell cycles = %d, want > flat %d (the hierarchy charged nothing)",
			cached.Cycles, flat.Cycles)
	}
	if flat.Stats == nil || cached.Stats == nil {
		t.Fatal("include_stats set but stats missing")
	}
	if n := cached.Stats.Counters["mem.dmisses"]; n == 0 {
		t.Error("cached cell reports zero D-cache misses on a cold 64-word walk")
	}
	if n := flat.Stats.Counters["mem.dmisses"]; n != 0 {
		t.Errorf("flat cell reports %d D-cache misses, want 0", n)
	}
}

// TestRunPredictorGrid pins the predictor knob's wire contract: cells
// differing in predictor compile apart but stay architecturally
// identical, and a gated config surfaces the confidence-gate counters in
// its stats snapshot while the default config reports none.
func TestRunPredictorGrid(t *testing.T) {
	s := newTestServer(t, Budgets{Workers: 1})
	rec := post(s, "/v1/run", mustJSON(t, Request{
		Benchmark:    "compress",
		Configs:      []Config{{}, {Predictor: "vtage:conf=2"}},
		IncludeStats: true,
	}))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(resp.Cells))
	}
	plain, gated := resp.Cells[0], resp.Cells[1]
	if plain.Error != "" || gated.Error != "" {
		t.Fatalf("cell errors: %q / %q", plain.Error, gated.Error)
	}
	if plain.Value != gated.Value {
		t.Errorf("predictor changed the architectural result: plain %d, gated %d", plain.Value, gated.Value)
	}
	if plain.Predictions == 0 || gated.Predictions == 0 {
		t.Fatalf("a cell never predicted (plain %d, gated %d): the knob went untested",
			plain.Predictions, gated.Predictions)
	}
	if plain.Stats == nil || gated.Stats == nil {
		t.Fatal("include_stats set but stats missing")
	}
	if n := gated.Stats.Counters["pred.suppressed"]; n == 0 {
		t.Error("gated cell reports zero suppressed issues at conf=2")
	}
	if n := plain.Stats.Counters["pred.suppressed"]; n != 0 {
		t.Errorf("ungated cell reports %d suppressed issues, want 0", n)
	}
}

// TestCLIEquivalence pins the server's results against the same
// computation done directly through the experiment runner (what the
// vpexp CLI drives): value, cycles, and rendered schedule must agree
// exactly.
func TestCLIEquivalence(t *testing.T) {
	s := newTestServer(t, Budgets{Workers: 1})
	bench := workload.Generated(3, 1)[0]
	seed := int64(3)

	rec := post(s, "/v1/run", mustJSON(t, Request{
		Seed: &seed, Machines: []string{"4-wide"}, IncludeSchedule: true,
	}))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Name != bench.Name {
		t.Errorf("name = %q, want %q", resp.Name, bench.Name)
	}
	if len(resp.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(resp.Cells))
	}
	cell := resp.Cells[0]
	if cell.Error != "" {
		t.Fatalf("cell error: %s", cell.Error)
	}

	r := exp.NewRunner(machine.W4)
	compiled, err := r.Compiled(bench)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := r.SpecSim(bench)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if cell.Value != want {
		t.Errorf("value = %d, direct runner computed %d", cell.Value, want)
	}
	if cell.Cycles != sim.Cycles {
		t.Errorf("cycles = %d, direct runner computed %d", cell.Cycles, sim.Cycles)
	}
	if cell.Schedule != compiled.Schedule {
		t.Errorf("schedule differs from the direct runner's rendering")
	}
}

// TestCoalescing proves N identical concurrent requests for an uncached
// program cause exactly one compile: the computed counter pins at 1 and
// every other request coalesces onto it.
func TestCoalescing(t *testing.T) {
	const n = 8
	s := newTestServer(t, Budgets{Workers: 4, MaxQueue: n})
	body := mustJSON(t, Request{Source: tinySrc(991)})

	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = post(s, "/v1/run", body).Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != 200 {
			t.Fatalf("request %d: status %d", i, c)
		}
	}

	snap := s.Metrics()
	computed := snap.Counters["serve.compile.computed"]
	coalesced := snap.Counters["serve.compile.coalesced"]
	if computed != 1 {
		t.Errorf("serve.compile.computed = %d, want exactly 1", computed)
	}
	if coalesced != n-1 {
		t.Errorf("serve.compile.coalesced = %d, want %d", coalesced, n-1)
	}
	if got := snap.Counters["serve.requests.completed"]; got != n {
		t.Errorf("serve.requests.completed = %d, want %d", got, n)
	}
}

// TestCycleLimit checks that a per-request cycle budget below the
// program's need aborts the cell with the cycle_limit code — and that the
// same pooled simulator still answers an unlimited request correctly
// afterwards (the abort leaves no residue).
func TestCycleLimit(t *testing.T) {
	s := newTestServer(t, Budgets{Workers: 1})
	limited := mustJSON(t, Request{Source: tinySrc(5), MaxCycles: 3})
	rec := post(s, "/v1/run", limited)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 1 || resp.Cells[0].ErrorCode != "cycle_limit" {
		t.Fatalf("want one cycle_limit cell, got %+v", resp.Cells)
	}

	full := mustJSON(t, Request{Source: tinySrc(5)})
	rec = post(s, "/v1/run", full)
	if rec.Code != 200 {
		t.Fatalf("unlimited rerun status = %d", rec.Code)
	}
	var resp2 RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Cells[0].Error != "" {
		t.Fatalf("unlimited rerun on the same pooled sim failed: %s", resp2.Cells[0].Error)
	}
}

// TestStreaming checks the NDJSON contract: one cell line per grid cell,
// then a done line, with the x-ndjson content type.
func TestStreaming(t *testing.T) {
	s := newTestServer(t, Budgets{Workers: 1})
	rec := post(s, "/v1/run", mustJSON(t, Request{
		Source: tinySrc(12), Machines: []string{"2-wide", "4-wide"}, Stream: true,
	}))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (2 cells + done):\n%s", len(lines), rec.Body.String())
	}
	var cells int
	var done *DoneLine
	for i, ln := range lines {
		var sl StreamLine
		if err := json.Unmarshal([]byte(ln), &sl); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		switch {
		case sl.Cell != nil:
			cells++
			if sl.Cell.Error != "" {
				t.Errorf("cell error: %s", sl.Cell.Error)
			}
		case sl.Done != nil:
			done = sl.Done
		default:
			t.Errorf("line %d has no field set: %s", i, ln)
		}
	}
	if cells != 2 || done == nil || done.Cells != 2 {
		t.Errorf("cells = %d, done = %+v; want 2 cells and done.cells=2", cells, done)
	}
}

// TestTrace checks the event-trace stream: JSONL simulator events
// preceding the result cell line.
func TestTrace(t *testing.T) {
	s := newTestServer(t, Budgets{Workers: 1})
	rec := post(s, "/v1/run", mustJSON(t, Request{Source: tinySrc(13), Trace: true}))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("got %d lines, want events + cell + done", len(lines))
	}
	// Final two lines are the result cell and the done marker; everything
	// before them is simulator events.
	var cellLine, doneLine StreamLine
	if err := json.Unmarshal([]byte(lines[len(lines)-2]), &cellLine); err != nil || cellLine.Cell == nil {
		t.Fatalf("penultimate line is not a cell: %s", lines[len(lines)-2])
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &doneLine); err != nil || doneLine.Done == nil {
		t.Fatalf("final line is not done: %s", lines[len(lines)-1])
	}
	events := 0
	for _, ln := range lines[:len(lines)-2] {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("event line is not JSON: %s", ln)
		}
		events++
	}
	if events == 0 {
		t.Errorf("trace produced no simulator events")
	}
}

// TestGracefulDrain pins the drain contract with a parked worker:
// in-flight requests complete with 200, queued ones answer 503 draining
// with Retry-After, post-drain admissions answer 503 immediately,
// /healthz flips to 503, and the pools quiesce with zero leaked frames.
func TestGracefulDrain(t *testing.T) {
	s := New(Budgets{Workers: 1, MaxQueue: 4})
	// No newTestServer cleanup: this test shuts down explicitly.

	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.execGate = func(*job) {
		entered <- struct{}{}
		<-gate
	}

	body := mustJSON(t, Request{Source: tinySrc(21)})
	type result struct {
		code       int
		errCode    string
		retryAfter string
	}
	results := make(chan result, 2)
	fire := func() {
		rec := post(s, "/v1/run", body)
		r := result{code: rec.Code, retryAfter: rec.Header().Get("Retry-After")}
		if rec.Code != 200 {
			var b struct {
				Error ErrBody `json:"error"`
			}
			json.Unmarshal(rec.Body.Bytes(), &b)
			r.errCode = b.Error.Code
		}
		results <- r
	}

	go fire() // in-flight: parked at the gate
	<-entered
	go fire() // queued behind the parked worker

	// Wait until the second job is actually queued so drain sees it.
	deadline := time.After(5 * time.Second)
	for len(s.jobs) == 0 {
		select {
		case <-deadline:
			t.Fatal("second request never queued")
		case <-time.After(time.Millisecond):
		}
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused at admission while draining.
	rec := post(s, "/v1/run", body)
	if rec.Code != 503 {
		t.Fatalf("admission during drain: status = %d, want 503", rec.Code)
	}
	if code := errCode(t, rec); code != "draining" {
		t.Errorf("admission during drain: code = %q, want draining", code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("draining rejection missing Retry-After")
	}
	if hrec := get(s, "/healthz"); hrec.Code != 503 {
		t.Errorf("healthz during drain: status = %d, want 503", hrec.Code)
	}

	// Release the parked worker: the in-flight job completes, the queued
	// one is answered 503, and drain finishes.
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	var got [2]result
	for i := range got {
		select {
		case got[i] = <-results:
		case <-time.After(10 * time.Second):
			t.Fatal("request never answered")
		}
	}
	// One 200 (the in-flight job) and one 503 draining (the queued job),
	// in either completion order.
	if got[0].code > got[1].code {
		got[0], got[1] = got[1], got[0]
	}
	if got[0].code != 200 {
		t.Errorf("in-flight request: status = %d, want 200", got[0].code)
	}
	if got[1].code != 503 || got[1].errCode != "draining" {
		t.Errorf("queued request: status = %d code = %q, want 503 draining", got[1].code, got[1].errCode)
	}
	if got[1].retryAfter == "" {
		t.Errorf("queued rejection missing Retry-After")
	}

	// Pools quiesce: no leaked frames, CCB entries, or pending events.
	if err := s.CheckQuiescent(); err != nil {
		t.Errorf("quiescence after drain: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestQueueFull pins backpressure: with the worker parked and the queue
// at capacity, the next request answers 503 queue_full immediately.
func TestQueueFull(t *testing.T) {
	s := New(Budgets{Workers: 1, MaxQueue: 1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.execGate = func(*job) {
		entered <- struct{}{}
		<-gate
	}
	body := mustJSON(t, Request{Source: tinySrc(33)})

	done := make(chan int, 2)
	go func() { done <- post(s, "/v1/run", body).Code }()
	<-entered // worker parked on request 1
	go func() { done <- post(s, "/v1/run", body).Code }()
	deadline := time.After(5 * time.Second)
	for len(s.jobs) == 0 { // request 2 fills the queue
		select {
		case <-deadline:
			t.Fatal("second request never queued")
		case <-time.After(time.Millisecond):
		}
	}

	rec := post(s, "/v1/run", body) // request 3 overflows
	if rec.Code != 503 {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if code := errCode(t, rec); code != "queue_full" {
		t.Errorf("code = %q, want queue_full", code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("queue_full missing Retry-After")
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-done; code != 200 {
			t.Errorf("parked/queued request: status = %d, want 200", code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.CheckQuiescent(); err != nil {
		t.Errorf("quiescence: %v", err)
	}
}

// TestHealthzAndMetrics smoke-checks the observability endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, Budgets{Workers: 1})
	if rec := post(s, "/v1/run", mustJSON(t, Request{Source: tinySrc(44)})); rec.Code != 200 {
		t.Fatalf("run: status = %d", rec.Code)
	}

	rec := get(s, "/healthz")
	if rec.Code != 200 {
		t.Fatalf("healthz: status = %d", rec.Code)
	}
	var h struct {
		Status     string `json:"status"`
		Workers    int    `json:"workers"`
		PooledSims int    `json:"pooled_sims"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 1 || h.PooledSims < 1 {
		t.Errorf("healthz = %+v, want ok/1 worker/>=1 pooled sim", h)
	}

	rec = get(s, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("metrics: status = %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics body: %v", err)
	}
	if snap.Counters["serve.requests.completed"] != 1 {
		t.Errorf("metrics completed = %d, want 1", snap.Counters["serve.requests.completed"])
	}
}
