//go:build !race

package loadtest

import (
	"context"
	"testing"
	"time"

	"vliwvp/internal/serve"
)

// TestSustainedRPS is the throughput acceptance gate: the daemon must
// sustain at least 2000 requests/second on cached plans. The run is
// pure-warm (every request's compile is a cache hit) so what it measures
// is the serving spine — decode, admission, queueing, pooled simulation,
// encode. Excluded under -race: the detector's order-of-magnitude
// slowdown would measure the instrumentation, not the server (the -race
// soak asserts correctness instead; this test asserts speed).
func TestSustainedRPS(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput gate skipped in -short")
	}
	s := serve.New(serve.Budgets{Workers: 4, MaxQueue: 64})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := s.CheckQuiescent(); err != nil {
			t.Errorf("quiescence: %v", err)
		}
	}()

	rep := Run(s, Config{
		Concurrency: 8,
		Duration:    2 * time.Second,
		ColdFrac:    0,
		WarmKernels: 4,
		Seed:        1,
	})
	t.Logf("throughput: %s", rep)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.RPS < 2000 {
		t.Errorf("sustained %.0f RPS on cached plans, want >= 2000", rep.RPS)
	}
}
