// Package loadtest is the in-process load generator for the vpexpd
// serving spine. It drives a serve.Server's handler directly (no
// sockets), so what it measures is the daemon itself: admission control,
// the bounded queue, worker scheduling, compile coalescing, and pooled
// simulation — not kernel TCP behavior.
//
// Two uses: `vpexpd -selfcheck` runs a short mixed workload and reports,
// and the CI soak test asserts the report's invariants (zero dropped
// in-budget requests, zero value mismatches, bounded p99) under -race.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vliwvp/internal/pool"
	"vliwvp/internal/serve"
)

// Config shapes one load run.
type Config struct {
	// Concurrency is the number of closed-loop client goroutines. Keeping
	// it at or below the server's MaxQueue guarantees no in-budget request
	// can ever see queue_full, which is what the soak asserts.
	Concurrency int
	// Duration bounds the run by wall clock. If zero, Requests bounds it
	// by count instead.
	Duration time.Duration
	// Requests is the total request count when Duration is zero.
	Requests int
	// RPS, when positive, paces each client to Concurrency-way-split
	// open-loop arrivals instead of issuing back-to-back.
	RPS int
	// ColdFrac in [0,1] is the fraction of requests built from fresh
	// progen seeds (never-cached compiles); the rest replay a small warm
	// set that stays cache-hot.
	ColdFrac float64
	// WarmKernels is the size of the warm set (distinct cached programs).
	// Defaults to 4.
	WarmKernels int
	// Machines is the machine grid each request sweeps. Defaults to
	// ["4-wide"].
	Machines []string
	// Seed derives both the warm/cold progen kernels and the per-client
	// workload mix.
	Seed int64
}

func (c Config) normalize() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 && c.Requests <= 0 {
		c.Requests = 200
	}
	if c.WarmKernels <= 0 {
		c.WarmKernels = 4
	}
	if len(c.Machines) == 0 {
		c.Machines = []string{"4-wide"}
	}
	if c.ColdFrac < 0 {
		c.ColdFrac = 0
	}
	if c.ColdFrac > 1 {
		c.ColdFrac = 1
	}
	return c
}

// Report is the outcome of one load run.
type Report struct {
	Requests int            // requests issued
	OK       int            // HTTP 200 with every cell successful
	CellErrs int            // 200 responses containing at least one cell error
	Rejected map[string]int // non-200 responses by error code
	// Dropped counts in-budget requests that were refused (any non-200):
	// a closed-loop run within the server's queue budget must report 0.
	Dropped int
	// Mismatched counts responses whose per-cell (value, cycles) differ
	// from the first response observed for the same request body — the
	// determinism check. Must be 0.
	Mismatched int
	Elapsed    time.Duration
	RPS        float64 // achieved throughput (Requests / Elapsed)
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	Max        time.Duration
}

// String renders the report for -selfcheck output.
func (r Report) String() string {
	return fmt.Sprintf(
		"requests=%d ok=%d cell_errs=%d dropped=%d mismatched=%d rejected=%v\n"+
			"elapsed=%v rps=%.0f p50=%v p90=%v p99=%v max=%v",
		r.Requests, r.OK, r.CellErrs, r.Dropped, r.Mismatched, r.Rejected,
		r.Elapsed.Round(time.Millisecond), r.RPS, r.P50, r.P90, r.P99, r.Max)
}

// Err returns a non-nil error if the run violated an invariant the soak
// pins: dropped in-budget requests or nondeterministic results.
func (r Report) Err() error {
	if r.Dropped > 0 {
		return fmt.Errorf("loadtest: %d in-budget requests dropped (rejected=%v)", r.Dropped, r.Rejected)
	}
	if r.Mismatched > 0 {
		return fmt.Errorf("loadtest: %d responses mismatched the first-seen result", r.Mismatched)
	}
	if r.OK == 0 {
		return fmt.Errorf("loadtest: no successful requests (rejected=%v)", r.Rejected)
	}
	return nil
}

// reqBody is one prebuilt request: its serialized JSON and a key under
// which first-seen results are pinned for the determinism check.
type reqBody struct {
	key  string
	body []byte
}

// cellFact is the replay-stable portion of a cell result.
type cellFact struct {
	Machine string
	Value   uint64
	Cycles  int64
	Error   string
}

func buildBody(key string, req serve.Request) reqBody {
	b, err := json.Marshal(req)
	if err != nil {
		panic("loadtest: marshal request: " + err.Error())
	}
	return reqBody{key: key, body: b}
}

// warmSet builds the cached-plan working set: WarmKernels distinct tiny
// inline kernels (distinct sources, so distinct cache keys), each swept
// over the configured machine grid in one request. The kernels simulate
// in a few hundred cycles, so a warm request's cost is dominated by the
// serving spine itself — decode, admission, cache lookup, pooled sim
// dispatch, encode — which is what the throughput number should measure.
func warmSet(cfg Config) []reqBody {
	out := make([]reqBody, 0, cfg.WarmKernels)
	for i := 0; i < cfg.WarmKernels; i++ {
		src := fmt.Sprintf(`
func main() {
	var i = 0
	var s = %d
	while i < 32 {
		s = s + i * 3 + %d
		i = i + 1
	}
	return s
}
`, cfg.Seed+int64(i), i+1)
		out = append(out, buildBody(
			fmt.Sprintf("warm-%d-%d", cfg.Seed, i),
			serve.Request{Source: src, Machines: cfg.Machines},
		))
	}
	return out
}

// Run drives the server with cfg and reports. The server is used through
// its public handler, exactly as an HTTP client would use it.
func Run(s *serve.Server, cfg Config) Report {
	cfg = cfg.normalize()
	h := s.Handler()
	warm := warmSet(cfg)

	// Pre-touch every warm body once, serially, so the timed window
	// measures cached-plan serving (and so first-seen results exist
	// before concurrent replies race to publish them).
	var facts sync.Map // key → []cellFact
	for _, rb := range warm {
		resp, code := post(h, rb.body)
		if code == http.StatusOK && resp != nil {
			facts.Store(rb.key, factsOf(resp))
		}
	}

	var (
		issued     atomic.Int64
		okCount    atomic.Int64
		cellErrs   atomic.Int64
		dropped    atomic.Int64
		mismatched atomic.Int64
		coldSeq    atomic.Int64
		rejectedMu sync.Mutex
		rejected   = map[string]int{}
	)
	latencies := make([][]time.Duration, cfg.Concurrency)

	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	var pace time.Duration
	if cfg.RPS > 0 {
		pace = time.Duration(cfg.Concurrency) * time.Second / time.Duration(cfg.RPS)
	}

	t0 := time.Now()
	pool.ForEach(cfg.Concurrency, cfg.Concurrency, func(client int) error {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(client)*0x9e3779b9))
		next := time.Now()
		for {
			if cfg.Duration > 0 {
				if !time.Now().Before(deadline) {
					return nil
				}
			} else if issued.Add(1) > int64(cfg.Requests) {
				issued.Add(-1)
				return nil
			}
			if pace > 0 {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(pace)
			}

			rb := warm[rng.Intn(len(warm))]
			cold := rng.Float64() < cfg.ColdFrac
			if cold {
				// Fresh seed far from the warm range: an uncached compile.
				seed := cfg.Seed + 1_000_000 + coldSeq.Add(1)
				rb = buildBody(fmt.Sprintf("cold-%d", seed),
					serve.Request{Seed: &seed, Machines: cfg.Machines})
			}
			if cfg.Duration > 0 {
				issued.Add(1)
			}

			start := time.Now()
			resp, code := post(h, rb.body)
			latencies[client] = append(latencies[client], time.Since(start))

			if code != http.StatusOK {
				dropped.Add(1)
				rejectedMu.Lock()
				rejected[fmt.Sprintf("%d", code)]++
				rejectedMu.Unlock()
				continue
			}
			got := factsOf(resp)
			if anyCellErr(got) {
				cellErrs.Add(1)
			} else {
				okCount.Add(1)
			}
			if prev, loaded := facts.LoadOrStore(rb.key, got); loaded {
				if !sameFacts(prev.([]cellFact), got) {
					mismatched.Add(1)
				}
			}
		}
	})
	elapsed := time.Since(t0)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	rep := Report{
		Requests:   int(issued.Load()),
		OK:         int(okCount.Load()),
		CellErrs:   int(cellErrs.Load()),
		Dropped:    int(dropped.Load()),
		Mismatched: int(mismatched.Load()),
		Rejected:   rejected,
		Elapsed:    elapsed,
	}
	if elapsed > 0 {
		rep.RPS = float64(rep.Requests) / elapsed.Seconds()
	}
	if len(all) > 0 {
		rep.P50 = all[len(all)*50/100]
		rep.P90 = all[len(all)*90/100]
		rep.P99 = all[len(all)*99/100]
		rep.Max = all[len(all)-1]
	}
	return rep
}

// post issues one in-process request against the handler.
func post(h http.Handler, body []byte) (*serve.RunResponse, int) {
	req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, rec.Code
	}
	var resp serve.RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		return nil, http.StatusInternalServerError
	}
	return &resp, rec.Code
}

func factsOf(resp *serve.RunResponse) []cellFact {
	out := make([]cellFact, 0, len(resp.Cells))
	for _, c := range resp.Cells {
		out = append(out, cellFact{Machine: c.Machine, Value: c.Value, Cycles: c.Cycles, Error: c.Error})
	}
	return out
}

func anyCellErr(fs []cellFact) bool {
	for _, f := range fs {
		if f.Error != "" {
			return true
		}
	}
	return false
}

func sameFacts(a, b []cellFact) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
