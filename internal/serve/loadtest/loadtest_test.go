package loadtest

import (
	"context"
	"testing"
	"time"

	"vliwvp/internal/serve"
)

// TestSoak is the CI soak: a short closed-loop mixed cached/cold run
// under whatever instrumentation the job adds (-race in CI). With
// Concurrency at or below the server's queue budget, every request is
// in-budget by construction, so the run must drop none, every response
// must replay the first-seen result exactly, and p99 latency must stay
// bounded. Afterwards the server drains and its pools must be quiescent.
func TestSoak(t *testing.T) {
	s := serve.New(serve.Budgets{Workers: 2, MaxQueue: 16})
	cfg := Config{
		Concurrency: 4,
		Requests:    300,
		ColdFrac:    0.05,
		WarmKernels: 4,
		Seed:        1,
	}
	rep := Run(s, cfg)
	t.Logf("soak: %s", rep)

	if err := rep.Err(); err != nil {
		t.Error(err)
	}
	if rep.Requests < cfg.Requests {
		t.Errorf("issued %d requests, want %d", rep.Requests, cfg.Requests)
	}
	// The p99 bound is generous — CI runs this under -race on shared
	// runners and a cold compile can land in the tail — but it still
	// catches a wedged queue or a serialized worker pool.
	if limit := 10 * time.Second; rep.P99 > limit {
		t.Errorf("p99 latency %v exceeds %v", rep.P99, limit)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.CheckQuiescent(); err != nil {
		t.Errorf("post-soak quiescence: %v", err)
	}
}

// TestPacedSoak exercises the open-loop arrival path (RPS pacing) and the
// duration-bounded mode.
func TestPacedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("paced soak skipped in -short")
	}
	s := serve.New(serve.Budgets{Workers: 2, MaxQueue: 32})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	rep := Run(s, Config{
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		RPS:         200,
		Seed:        5,
	})
	t.Logf("paced: %s", rep)
	if err := rep.Err(); err != nil {
		t.Error(err)
	}
	// 200 RPS for 0.5s paced across 4 clients: allow wide scheduling
	// slack but require actual pacing (well under closed-loop rates).
	if rep.Requests < 20 {
		t.Errorf("paced run issued only %d requests", rep.Requests)
	}
}
