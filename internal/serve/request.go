package serve

// The request decoder and admission validator: bytes in, either a fully
// resolved runSpec (program, machine grid, config grid, caps) or a typed
// *Error carrying the exact HTTP status and error-code contract the
// handler tests and the fuzzer pin. Nothing here compiles or simulates —
// admission is cheap by construction.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/predict"
	"vliwvp/internal/workload"
)

// Config is one grid cell's knob set. The zero value is the paper's
// default configuration (65% threshold, default CCB, no if-conversion or
// region formation).
type Config struct {
	// Threshold overrides the profiled-prediction-rate selection
	// threshold (nil = 0.65).
	Threshold *float64 `json:"threshold,omitempty"`
	// MaxPreds overrides the LdPred-sites-per-block cap (0 = default 4).
	MaxPreds int `json:"max_preds,omitempty"`
	// CCBCapacity overrides the Compensation Code Buffer size at
	// simulation time (0 = default). It does not affect compilation, so
	// cells differing only here share one compile.
	CCBCapacity int `json:"ccb_capacity,omitempty"`
	// Cache names a stock memory hierarchy (flat, l1, l1-pf, l2, l2-pf;
	// "" = flat). Like CCBCapacity it is sim-time only: cells differing
	// only here share one compile.
	Cache string `json:"cache,omitempty"`
	// Predictor names a value-predictor config ("" = profiled): a stock
	// scheme name (profiled, auto, last, stride, fcm, hybrid, lnv, vtage)
	// with optional name:key=val options, e.g. "vtage:bits=12,conf=2".
	// It affects site selection, so cells differing here compile apart.
	Predictor string `json:"predictor,omitempty"`
	// Branch names a branch-predictor config ("" = none, static
	// fall-through fetch): a stock scheme name (taken, nottaken, bimodal,
	// tage) with optional name:key=val options, e.g. "tage:hist=32,bits=8".
	// The control config is part of the compile fingerprint, so cells
	// differing here compile apart.
	Branch string `json:"branch,omitempty"`
	// IfConvert enables Select-based if-conversion of small diamonds.
	IfConvert bool `json:"if_convert,omitempty"`
	// Regions enables profile-guided superblock formation.
	Regions bool `json:"regions,omitempty"`
}

// Request is the wire format of POST /v1/run. Exactly one of Benchmark,
// Source, or Seed names the program; Machines × Configs spans the grid.
type Request struct {
	// Benchmark names a stock kernel (compress, ijpeg, li, m88ksim,
	// vortex, hydro2d, swim, tomcatv).
	Benchmark string `json:"benchmark,omitempty"`
	// Source is an inline VL program.
	Source string `json:"source,omitempty"`
	// Seed generates a progen kernel (identical to `vpexp -progen-seed`).
	Seed *int64 `json:"seed,omitempty"`

	// Machines lists stock machine descriptions (default ["4-wide"]).
	Machines []string `json:"machines,omitempty"`
	// Configs lists config cells (default [{}]).
	Configs []Config `json:"configs,omitempty"`

	// Entry is the function to run (default "main").
	Entry string `json:"entry,omitempty"`
	// Args are the entry function's arguments.
	Args []uint64 `json:"args,omitempty"`
	// MaxCycles is the per-cell simulated-cycle budget (0 = the server
	// cap; above the cap is rejected).
	MaxCycles int64 `json:"max_cycles,omitempty"`

	// IncludeSchedule returns the rendered whole-program VLIW schedule
	// per distinct compile.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
	// IncludeStats returns the per-cell metrics snapshot (stall causes,
	// CCB occupancy histogram, prediction and compensation counters).
	IncludeStats bool `json:"include_stats,omitempty"`
	// Stream responds with chunked JSONL: one line per cell as it
	// completes, then a done line.
	Stream bool `json:"stream,omitempty"`
	// Trace streams the typed simulator event log (JSONL) before the
	// result line. Single-cell requests only.
	Trace bool `json:"trace,omitempty"`
}

// CellResult is one grid cell's outcome.
type CellResult struct {
	Machine string `json:"machine"`
	Config  Config `json:"config"`

	Value       uint64   `json:"value"`
	Cycles      int64    `json:"cycles"`
	Instrs      int64    `json:"instrs"`
	Ops         int64    `json:"ops"`
	Predictions int64    `json:"predictions"`
	Mispredicts int64    `json:"mispredicts"`
	CCEExecuted int64    `json:"cce_executed"`
	CCEFlushed  int64    `json:"cce_flushed"`
	Output      []string `json:"output,omitempty"`

	Schedule string        `json:"schedule,omitempty"`
	Stats    *obs.Snapshot `json:"stats,omitempty"`

	// Error reports a cell-level failure (the request itself was
	// admitted; other cells may have succeeded). ErrorCode is
	// "cycle_limit" for budget aborts, "sim_failed" otherwise.
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`
}

// RunResponse is the non-streaming response body of POST /v1/run.
type RunResponse struct {
	Name      string       `json:"name"`
	Cells     []CellResult `json:"cells"`
	ElapsedUS int64        `json:"elapsed_us"`
}

// StreamLine is one line of a streaming response: exactly one field set.
type StreamLine struct {
	Cell *CellResult `json:"cell,omitempty"`
	Err  *ErrBody    `json:"error,omitempty"`
	Done *DoneLine   `json:"done,omitempty"`
}

// DoneLine terminates a streaming response.
type DoneLine struct {
	Cells     int   `json:"cells"`
	ElapsedUS int64 `json:"elapsed_us"`
}

// ErrBody is the error object every non-2xx response carries.
type ErrBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error is a request rejection or failure with its HTTP contract.
type Error struct {
	Status     int // HTTP status code
	Code       string
	Message    string
	RetryAfter int // seconds; >0 emits a Retry-After header (503s)
}

// Error satisfies the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%d %s: %s", e.Status, e.Code, e.Message) }

// The full error-code table. Status and code are a contract: handler
// tests pin them, and clients branch on code, not message.
//
//	400 malformed_json       body is not a single well-formed Request object
//	400 bad_request          structurally valid but unusable (no program,
//	                         unknown benchmark/machine, bad knob, bad entry,
//	                         trace over a grid, too many args)
//	404 not_found            unknown path
//	405 method_not_allowed   wrong verb on a known path
//	413 body_too_large       HTTP body exceeded Budgets.MaxBodyBytes
//	413 program_too_large    inline source exceeded Budgets.MaxSourceBytes
//	422 grid_too_large       machines × configs exceeded Budgets.MaxCells
//	422 cycle_budget         max_cycles exceeded Budgets.MaxCycles
//	422 compile_failed       the program did not compile
//	500 internal             harness failure (a bug — never expected)
//	503 queue_full           backpressure: queue at MaxQueue (Retry-After)
//	503 draining             server is draining for shutdown (Retry-After)
func errf(status int, code, format string, args ...any) *Error {
	return &Error{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// runSpec is the validated, resolved form of a Request: everything the
// worker needs, nothing left to reject.
type runSpec struct {
	req   *Request
	bench *workload.Benchmark
	cells []cellSpec
	entry string
	args  []uint64
	// maxCycles is the effective per-cell cycle cap (request value
	// clamped into the budget; never zero).
	maxCycles int64
}

// cellSpec is one (machine, config) grid point, in response order.
type cellSpec struct {
	d   *machine.Desc
	cfg Config
}

// decodeRequest parses one Request object from body. Unknown fields,
// type mismatches, and trailing garbage are all malformed_json: the wire
// contract is strict so client bugs surface as 400s, not silent defaults.
func decodeRequest(body []byte) (*Request, *Error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, errf(400, "malformed_json", "decoding request: %v", err)
	}
	if dec.More() {
		return nil, errf(400, "malformed_json", "trailing data after request object")
	}
	return &req, nil
}

// validEntry constrains entry names to identifiers (the decoder's
// "no function" error would catch the rest, but a 400 here is clearer).
func validEntry(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validateRequest admission-checks a decoded Request against the budgets
// and resolves it into a runSpec.
func validateRequest(req *Request, b Budgets) (*runSpec, *Error) {
	// Exactly one program selector.
	n := 0
	if req.Benchmark != "" {
		n++
	}
	if req.Source != "" {
		n++
	}
	if req.Seed != nil {
		n++
	}
	if n != 1 {
		return nil, errf(400, "bad_request", "exactly one of benchmark, source, seed required (got %d)", n)
	}

	var bench *workload.Benchmark
	switch {
	case req.Benchmark != "":
		bench = workload.ByName(req.Benchmark)
		if bench == nil {
			return nil, errf(400, "bad_request", "unknown benchmark %q", req.Benchmark)
		}
	case req.Source != "":
		if len(req.Source) > b.MaxSourceBytes {
			return nil, errf(413, "program_too_large", "source is %d bytes (budget %d)",
				len(req.Source), b.MaxSourceBytes)
		}
		bench = &workload.Benchmark{
			Name:   "adhoc",
			Suite:  "serve",
			Source: req.Source,
		}
		// The cache key includes the source hash, so "adhoc" cannot alias.
		bench.Name = "adhoc-" + bench.SourceHash()
	default:
		bench = workload.Generated(*req.Seed, 1)[0]
	}

	machines := req.Machines
	if len(machines) == 0 {
		machines = []string{"4-wide"}
	}
	descs := make([]*machine.Desc, len(machines))
	for i, name := range machines {
		if descs[i] = machine.ByName(name); descs[i] == nil {
			return nil, errf(400, "bad_request", "unknown machine %q (stock: 2-wide, 4-wide, 8-wide, 16-wide)", name)
		}
	}

	configs := req.Configs
	if len(configs) == 0 {
		configs = []Config{{}}
	}
	for i, c := range configs {
		if c.Threshold != nil && (*c.Threshold < 0 || *c.Threshold > 1) {
			return nil, errf(400, "bad_request", "configs[%d]: threshold %v outside [0,1]", i, *c.Threshold)
		}
		if c.MaxPreds < 0 || c.MaxPreds > 16 {
			return nil, errf(400, "bad_request", "configs[%d]: max_preds %d outside [0,16]", i, c.MaxPreds)
		}
		if c.CCBCapacity < 0 || c.CCBCapacity > 1<<16 {
			return nil, errf(400, "bad_request", "configs[%d]: ccb_capacity %d outside [0,65536]", i, c.CCBCapacity)
		}
		if machine.MemByName(c.Cache) == nil {
			return nil, errf(400, "bad_request", "configs[%d]: unknown cache %q (stock: flat, l1, l1-pf, l2, l2-pf)", i, c.Cache)
		}
		if c.Predictor != "" {
			if _, err := predict.Parse(c.Predictor); err != nil {
				return nil, errf(400, "bad_request", "configs[%d]: %v", i, err)
			}
		}
		if c.Branch != "" {
			if _, err := predict.ParseBranch(c.Branch); err != nil {
				return nil, errf(400, "bad_request", "configs[%d]: %v", i, err)
			}
		}
	}

	cells := len(descs) * len(configs)
	if cells > b.MaxCells {
		return nil, errf(422, "grid_too_large", "%d machines x %d configs = %d cells (budget %d)",
			len(descs), len(configs), cells, b.MaxCells)
	}

	if req.MaxCycles < 0 {
		return nil, errf(400, "bad_request", "max_cycles %d is negative", req.MaxCycles)
	}
	if req.MaxCycles > b.MaxCycles {
		return nil, errf(422, "cycle_budget", "max_cycles %d exceeds the per-cell budget %d",
			req.MaxCycles, b.MaxCycles)
	}
	maxCycles := req.MaxCycles
	if maxCycles == 0 {
		maxCycles = b.MaxCycles
	}

	entry := req.Entry
	if entry == "" {
		entry = "main"
	}
	if !validEntry(entry) {
		return nil, errf(400, "bad_request", "entry %q is not an identifier", req.Entry)
	}
	if len(req.Args) > b.MaxArgs {
		return nil, errf(400, "bad_request", "%d args (budget %d)", len(req.Args), b.MaxArgs)
	}

	if req.Trace && req.Stream {
		return nil, errf(400, "bad_request", "trace and stream are mutually exclusive")
	}
	if req.Trace && cells != 1 {
		return nil, errf(400, "bad_request", "trace requires a single-cell grid (got %d cells)", cells)
	}

	spec := &runSpec{
		req:       req,
		bench:     bench,
		cells:     make([]cellSpec, 0, cells),
		entry:     entry,
		args:      req.Args,
		maxCycles: maxCycles,
	}
	// Machine-major cell order: all configs of machines[0], then
	// machines[1], ... — the order cells appear in the response.
	for _, d := range descs {
		for _, c := range configs {
			spec.cells = append(spec.cells, cellSpec{d: d, cfg: c})
		}
	}
	return spec, nil
}

// DecodeRequest is the exported decode+validate entry the fuzzer drives:
// any byte slice must produce either a valid spec or a typed *Error from
// the contract table, never a panic.
func DecodeRequest(body []byte, b Budgets) (*Request, *Error) {
	req, derr := decodeRequest(body)
	if derr != nil {
		return nil, derr
	}
	if _, verr := validateRequest(req, b.Normalize()); verr != nil {
		return nil, verr
	}
	return req, nil
}

// isBodyTooLarge detects http.MaxBytesReader truncation.
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}
