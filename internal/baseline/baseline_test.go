package baseline_test

import (
	"testing"

	"vliwvp/internal/baseline"
	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

const kernel = `
var a[512]
func main() {
	for var i = 0; i < 512; i = i + 1 { a[i] = i * 8 }
	var s = 0
	for var i = 0; i < 512; i = i + 1 {
		var x = a[i]
		var y = x * 3 + 7
		var z = y - x
		s = s + z
	}
	return s
}`

func buildModel(t *testing.T) (*baseline.Model, *speculate.Result, *machine.Desc) {
	t.Helper()
	prog, err := lang.Compile(kernel)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(prog)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	d := machine.W4
	res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) == 0 {
		t.Fatal("nothing speculated")
	}
	m, err := baseline.Build(res, d, ddg.Options{}, baseline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, res, d
}

func TestRecoveryBlocksExist(t *testing.T) {
	m, res, _ := buildModel(t)
	for bk, info := range res.Blocks {
		bm := m.Blocks[bk]
		if bm == nil {
			t.Fatalf("no baseline model for %v", bk)
		}
		if len(bm.RecoveryLen) != len(info.SiteIDs) {
			t.Errorf("%v: %d recovery blocks for %d sites", bk, len(bm.RecoveryLen), len(info.SiteIDs))
		}
		for i, rl := range bm.RecoveryLen {
			if rl < 1 {
				t.Errorf("%v site %d: recovery length %d, want >= 1 (at least the return jump)", bk, i, rl)
			}
		}
	}
	if m.CodeGrowthInstrs() == 0 {
		t.Error("baseline must grow the code image")
	}
}

func TestBestCaseCostsNothingExtra(t *testing.T) {
	m, res, _ := buildModel(t)
	for bk := range res.Blocks {
		bm := m.Blocks[bk]
		full := uint32(1)<<uint(len(bm.RecoveryLen)) - 1
		if got := m.EffectiveLength(bk, full); got != bm.SpecLen {
			t.Errorf("%v: all-correct baseline length %d != spec length %d", bk, got, bm.SpecLen)
		}
		if m.CompCycles(bk, full) != 0 {
			t.Errorf("%v: all-correct baseline charged compensation cycles", bk)
		}
	}
}

func TestMispredictionsSerializeInBaseline(t *testing.T) {
	m, res, d := buildModel(t)
	tm := core.NewTiming(d)
	for bk := range res.Blocks {
		bm := m.Blocks[bk]
		b := res.Prog.Func(bk.Func).Blocks[bk.Block]
		an, err := core.Analyze(b)
		if err != nil {
			t.Fatal(err)
		}
		g := speculate.BuildGraph(b, d, ddg.Options{})
		bs := sched.ScheduleBlock(b, g, d)

		worstBase := m.EffectiveLength(bk, 0)
		oursWorst, err := tm.SimulateBlock(bs, an, 0)
		if err != nil {
			t.Fatal(err)
		}
		if worstBase <= oursWorst.Length {
			t.Errorf("%v: baseline worst %d not worse than ours %d — serialization missing",
				bk, worstBase, oursWorst.Length)
		}
		// The baseline pays branch penalties per misprediction on top of
		// the serial recovery blocks.
		wantMin := bm.SpecLen + 2*m.Ctrl.BranchPenalty + 1
		if worstBase < wantMin {
			t.Errorf("%v: baseline worst %d below minimum %d", bk, worstBase, wantMin)
		}
	}
}

func TestCompCyclesMonotonicInMispredictions(t *testing.T) {
	m, res, _ := buildModel(t)
	for bk := range res.Blocks {
		bm := m.Blocks[bk]
		n := len(bm.RecoveryLen)
		full := uint32(1)<<uint(n) - 1
		for mask := uint32(0); mask <= full; mask++ {
			more := m.CompCycles(bk, mask&^1) // force site 0 wrong
			less := m.CompCycles(bk, mask|1)  // force site 0 right
			if more < less {
				t.Errorf("%v: comp cycles not monotone: wrong=%d right=%d", bk, more, less)
			}
		}
	}
}
