// Package baseline models the prior value-speculation recovery scheme the
// paper compares against ([4]: statically scheduled compensation blocks).
// The main-engine code is identical to the proposed architecture's (LdPred,
// check-prediction, speculative forms); the difference is recovery: on a
// misprediction the machine branches to a statically scheduled compensation
// block, executes it serially on the main engine while the original code
// waits, and branches back. The paper's §3 comparison shows this scheme
// spends a significant fraction of execution time in compensation code,
// inflates the code image, and pollutes the instruction cache.
package baseline

import (
	"fmt"
	"math/bits"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

// DefaultConfig uses a one-cycle taken-branch penalty (charitable to the
// baseline; the paper's critique holds even so). The baseline machine is
// parameterized by the shared machine.ControlConfig: BranchPenalty is the
// cost in cycles of each taken control transfer into and out of a
// compensation block.
func DefaultConfig() machine.ControlConfig { return machine.DefaultControl() }

// BlockModel is the baseline timing of one speculated block.
type BlockModel struct {
	Key profile.BlockKey
	// SpecLen is the main-code schedule length (identical ISA to ours).
	SpecLen int
	// RecoveryLen[i] is the schedule length of site i's compensation block
	// (the paper's [4] generates one per predicted operation).
	RecoveryLen []int
	// RecoveryInstrs is the total long-instruction count of all recovery
	// blocks (static code growth).
	RecoveryInstrs int
}

// Model is the baseline view of a transformed program.
type Model struct {
	Ctrl   machine.ControlConfig
	D      *machine.Desc
	Blocks map[profile.BlockKey]*BlockModel
}

// Build derives the baseline model from the speculation pass's output: the
// same transformed blocks, plus one statically scheduled recovery block per
// prediction site containing the operations speculated on that site.
func Build(res *speculate.Result, d *machine.Desc, opts ddg.Options, ctrl machine.ControlConfig) (*Model, error) {
	m := &Model{Ctrl: ctrl, D: d, Blocks: map[profile.BlockKey]*BlockModel{}}
	for bk := range res.Blocks {
		f := res.Prog.Func(bk.Func)
		b := f.Blocks[bk.Block]
		an, err := core.Analyze(b)
		if err != nil {
			return nil, fmt.Errorf("baseline: %v: %w", bk, err)
		}
		g := speculate.BuildGraph(b, d, opts)
		bm := &BlockModel{Key: bk, SpecLen: sched.ScheduleBlock(b, g, d).Length()}
		for li := range an.Sites {
			rl, err := recoveryLength(f, b, an, li, d, opts)
			if err != nil {
				return nil, fmt.Errorf("baseline: %v site %d: %w", bk, li, err)
			}
			bm.RecoveryLen = append(bm.RecoveryLen, rl)
			bm.RecoveryInstrs += rl
		}
		m.Blocks[bk] = bm
	}
	return m, nil
}

// recoveryLength schedules site li's compensation block: clones of every
// operation speculated (transitively) on that prediction, re-executed with
// the corrected value already in the registers.
func recoveryLength(f *ir.Func, b *ir.Block, an *core.BlockAnalysis, li int,
	d *machine.Desc, opts ddg.Options) (int, error) {

	tmp := ir.NewFunc(f.Name + "$rec")
	tmp.NumRegs = f.NumRegs
	rb := tmp.Blocks[0]
	for i, op := range b.Ops {
		if !op.Speculative || an.Info[i].PredSet&(1<<uint(li)) == 0 {
			continue
		}
		c := op.Clone()
		c.ID = tmp.NextOpID()
		tmp.SetNextOpID(c.ID + 1)
		c.Speculative = false
		c.SyncBit = ir.NoBit
		c.WaitBits = 0
		rb.Ops = append(rb.Ops, c)
	}
	// The return branch ends the compensation block.
	jmp := tmp.NewOp(ir.Jmp)
	rb.Ops = append(rb.Ops, jmp)
	rb.Succs = []int{0}

	g := ddg.Build(rb, d.Latency, opts)
	s := sched.ScheduleBlock(rb, g, d)
	if err := s.Validate(g, d); err != nil {
		return 0, err
	}
	return s.Length(), nil
}

// EffectiveLength is the baseline cycle count of one block instance under
// an outcome mask: the main schedule plus, for every mispredicted site, a
// taken branch into the compensation block, its serial execution, and the
// branch back. Nothing overlaps.
func (m *Model) EffectiveLength(bk profile.BlockKey, mask uint32) int {
	bm := m.Blocks[bk]
	if bm == nil {
		return 0
	}
	total := bm.SpecLen
	total += m.CompCycles(bk, mask)
	return total
}

// CompCycles is the recovery-only cycle cost of one instance.
func (m *Model) CompCycles(bk profile.BlockKey, mask uint32) int {
	bm := m.Blocks[bk]
	if bm == nil {
		return 0
	}
	cycles := 0
	wrong := ^mask & (uint32(1)<<uint(len(bm.RecoveryLen)) - 1)
	for wrong != 0 {
		li := bits.TrailingZeros32(wrong)
		wrong &^= 1 << uint(li)
		cycles += 2*m.Ctrl.BranchPenalty + bm.RecoveryLen[li]
	}
	return cycles
}

// CodeGrowthInstrs is the total static code added by recovery blocks.
func (m *Model) CodeGrowthInstrs() int {
	total := 0
	for _, bm := range m.Blocks {
		total += bm.RecoveryInstrs
	}
	return total
}
