package profile_test

import (
	"testing"

	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	opt.Optimize(p)
	return p
}

// findLoads returns the op IDs of all loads in the function, in order.
func findLoads(f *ir.Func) []struct{ Block, OpID int } {
	var out []struct{ Block, OpID int }
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Code == ir.Load {
				out = append(out, struct{ Block, OpID int }{b.ID, op.ID})
			}
		}
	}
	return out
}

func TestBlockFrequencies(t *testing.T) {
	src := `
func main() {
	var s = 0
	for var i = 0; i < 10; i = i + 1 {
		s = s + i
	}
	return s
}`
	prog := compile(t, src)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Func("main")
	// Find the loop body block: it should have executed exactly 10 times.
	// The condition block executes 11 times.
	var counts []int64
	for _, b := range main.Blocks {
		counts = append(counts, prof.Freq("main", b.ID))
	}
	has10, has11 := false, false
	for _, c := range counts {
		if c == 10 {
			has10 = true
		}
		if c == 11 {
			has11 = true
		}
	}
	if !has10 || !has11 {
		t.Errorf("block freqs = %v, want a 10 (body) and an 11 (condition)", counts)
	}
	if prof.Freq("main", main.Entry) != 1 {
		t.Errorf("entry freq = %d, want 1", prof.Freq("main", main.Entry))
	}
}

func TestStridePredictableLoadProfilesHigh(t *testing.T) {
	src := `
var a[256]
func main() {
	for var i = 0; i < 256; i = i + 1 { a[i] = i * 4 }
	var s = 0
	for var i = 0; i < 256; i = i + 1 { s = s + a[i] }
	return s
}`
	prog := compile(t, src)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	// The load in the second loop reads 0,4,8,... — stride predictable.
	best := 0.0
	var bestLP *profile.LoadProfile
	for _, lp := range prof.Loads {
		if lp.Count >= 256 && lp.Rate() > best {
			best = lp.Rate()
			bestLP = lp
		}
	}
	if bestLP == nil || best < 0.95 {
		t.Fatalf("no highly stride-predictable load found, best %v", best)
	}
	if bestLP.Best() != profile.SchemeStride {
		t.Errorf("best scheme = %v, want stride (stride %v vs fcm %v)",
			bestLP.Best(), bestLP.StrideRate, bestLP.FCMRate)
	}
}

func TestUnpredictableLoadProfilesLow(t *testing.T) {
	src := `
var a[509]
func main() {
	var x = 1
	for var i = 0; i < 509; i = i + 1 {
		x = (x * 1103515245 + 12345) % 509
		if x < 0 { x = x + 509 }
		a[i] = x
	}
	var s = 0
	var j = 1
	for var i = 0; i < 509; i = i + 1 {
		s = s + a[j]
		j = (j * 263 + 71) % 509
	}
	return s
}`
	prog := compile(t, src)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	// The pseudo-random-indexed load must profile below the paper's 65%
	// selection threshold.
	for _, lp := range prof.Loads {
		if lp.Count >= 500 && lp.Rate() > 0.65 {
			t.Errorf("pseudo-random load %v rate %v exceeds 0.65 (stride %v, fcm %v)",
				lp.Key, lp.Rate(), lp.StrideRate, lp.FCMRate)
		}
	}
}

func TestCollectOutcomesMaskTally(t *testing.T) {
	// One loop, one perfectly predictable load (constant value).
	src := `
var g = 5
func main() {
	var s = 0
	for var i = 0; i < 20; i = i + 1 {
		s = s + g
	}
	return s
}`
	prog := compile(t, src)
	main := prog.Func("main")
	loads := findLoads(main)
	if len(loads) != 1 {
		t.Fatalf("want exactly 1 load, got %d", len(loads))
	}
	sel := profile.NewSelection()
	sel.Add("main", loads[0].Block, loads[0].OpID, profile.SchemeStride)

	out, err := profile.CollectOutcomes(prog, sel, "main")
	if err != nil {
		t.Fatal(err)
	}
	bk := profile.BlockKey{Func: "main", Block: loads[0].Block}
	if out.Executions[bk] != 20 {
		t.Fatalf("executions = %d, want 20", out.Executions[bk])
	}
	correct := out.AllCorrectCount(bk, 1)
	wrong := out.AllWrongCount(bk)
	// First iteration is a cold miss; the remaining 19 hit.
	if correct != 19 || wrong != 1 {
		t.Errorf("correct=%d wrong=%d, want 19/1 (masks: %v)", correct, wrong, out.MaskCounts[bk])
	}
}

func TestCollectOutcomesJointMask(t *testing.T) {
	// Two loads in the same block: one constant (predictable after warmup),
	// one alternating 0/1 with period 2 — stride mispredicts it forever,
	// so per-instance masks must show exactly one of the two bits hitting.
	src := `
var c = 7
var toggle[2]
func main() {
	toggle[1] = 1
	var s = 0
	for var i = 0; i < 40; i = i + 1 {
		s = s + c + toggle[i % 2]
	}
	return s
}`
	prog := compile(t, src)
	main := prog.Func("main")
	loads := findLoads(main)
	if len(loads) < 2 {
		t.Fatalf("want >= 2 loads, got %d", len(loads))
	}
	// Select the two loads that share a block.
	byBlock := map[int][]int{}
	for _, l := range loads {
		byBlock[l.Block] = append(byBlock[l.Block], l.OpID)
	}
	var bk profile.BlockKey
	var ids []int
	for blk, ops := range byBlock {
		if len(ops) == 2 {
			bk = profile.BlockKey{Func: "main", Block: blk}
			ids = ops
		}
	}
	if ids == nil {
		t.Fatalf("no block with 2 loads: %v", byBlock)
	}
	sel := profile.NewSelection()
	for _, id := range ids {
		sel.Add("main", bk.Block, id, profile.SchemeStride)
	}
	out, err := profile.CollectOutcomes(prog, sel, "main")
	if err != nil {
		t.Fatal(err)
	}
	if out.Executions[bk] != 40 {
		t.Fatalf("executions = %d, want 40", out.Executions[bk])
	}
	// The constant load hits from iteration 2 on; the toggling load mostly
	// misses. So most instances have exactly one bit set.
	oneBit := out.MaskCounts[bk][1] + out.MaskCounts[bk][2]
	if oneBit < 30 {
		t.Errorf("one-bit masks = %d of 40, want most (masks %v)", oneBit, out.MaskCounts[bk])
	}
	if got := out.AllCorrectCount(bk, 2); got > 10 {
		t.Errorf("all-correct = %d, want few", got)
	}
}

func TestOutcomesAcrossCalls(t *testing.T) {
	// The selected load sits in a block that also calls a function which
	// itself executes blocks; the instance mask must still be attributed
	// to the caller's block.
	src := `
var g = 3
func work(x) {
	var t = 0
	for var i = 0; i < 3; i = i + 1 { t = t + x }
	return t
}
func main() {
	var s = 0
	for var i = 0; i < 10; i = i + 1 {
		s = s + work(g)
	}
	return s
}`
	prog := compile(t, src)
	main := prog.Func("main")
	loads := findLoads(main)
	if len(loads) != 1 {
		t.Fatalf("want 1 load in main, got %d", len(loads))
	}
	sel := profile.NewSelection()
	sel.Add("main", loads[0].Block, loads[0].OpID, profile.SchemeStride)
	out, err := profile.CollectOutcomes(prog, sel, "main")
	if err != nil {
		t.Fatal(err)
	}
	bk := profile.BlockKey{Func: "main", Block: loads[0].Block}
	if out.Executions[bk] != 10 {
		t.Fatalf("executions = %d, want 10", out.Executions[bk])
	}
	if got := out.AllCorrectCount(bk, 1); got != 9 {
		t.Errorf("all-correct = %d, want 9 (cold miss then hits)", got)
	}
}

func TestProfileRateAndBestAgree(t *testing.T) {
	lp := &profile.LoadProfile{StrideRate: 0.3, FCMRate: 0.8}
	if lp.Rate() != 0.8 || lp.Best() != profile.SchemeFCM {
		t.Errorf("Rate/Best inconsistent: %v %v", lp.Rate(), lp.Best())
	}
	lp = &profile.LoadProfile{StrideRate: 0.9, FCMRate: 0.2}
	if lp.Rate() != 0.9 || lp.Best() != profile.SchemeStride {
		t.Errorf("Rate/Best inconsistent: %v %v", lp.Rate(), lp.Best())
	}
	// Equal profiled rates tie-break to the stride scheme, matching the
	// runtime hybrid's tournament rule.
	lp = &profile.LoadProfile{StrideRate: 0.7, FCMRate: 0.7}
	if lp.Rate() != 0.7 || lp.Best() != profile.SchemeStride {
		t.Errorf("tied rates chose %v (rate %v), want stride", lp.Best(), lp.Rate())
	}
}
