package profile_test

import (
	"testing"

	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	opt.Optimize(p)
	return p
}

// findLoads returns the op IDs of all loads in the function, in order.
func findLoads(f *ir.Func) []struct{ Block, OpID int } {
	var out []struct{ Block, OpID int }
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Code == ir.Load {
				out = append(out, struct{ Block, OpID int }{b.ID, op.ID})
			}
		}
	}
	return out
}

func TestBlockFrequencies(t *testing.T) {
	src := `
func main() {
	var s = 0
	for var i = 0; i < 10; i = i + 1 {
		s = s + i
	}
	return s
}`
	prog := compile(t, src)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Func("main")
	// Find the loop body block: it should have executed exactly 10 times.
	// The condition block executes 11 times.
	var counts []int64
	for _, b := range main.Blocks {
		counts = append(counts, prof.Freq("main", b.ID))
	}
	has10, has11 := false, false
	for _, c := range counts {
		if c == 10 {
			has10 = true
		}
		if c == 11 {
			has11 = true
		}
	}
	if !has10 || !has11 {
		t.Errorf("block freqs = %v, want a 10 (body) and an 11 (condition)", counts)
	}
	if prof.Freq("main", main.Entry) != 1 {
		t.Errorf("entry freq = %d, want 1", prof.Freq("main", main.Entry))
	}
}

func TestStridePredictableLoadProfilesHigh(t *testing.T) {
	src := `
var a[256]
func main() {
	for var i = 0; i < 256; i = i + 1 { a[i] = i * 4 }
	var s = 0
	for var i = 0; i < 256; i = i + 1 { s = s + a[i] }
	return s
}`
	prog := compile(t, src)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	// The load in the second loop reads 0,4,8,... — stride predictable.
	best := 0.0
	var bestLP *profile.LoadProfile
	for _, lp := range prof.Loads {
		if lp.Count >= 256 && lp.Rate() > best {
			best = lp.Rate()
			bestLP = lp
		}
	}
	if bestLP == nil || best < 0.95 {
		t.Fatalf("no highly stride-predictable load found, best %v", best)
	}
	if bestLP.Best() != profile.SchemeStride {
		t.Errorf("best scheme = %v, want stride (stride %v vs fcm %v)",
			bestLP.Best(), bestLP.StrideRate, bestLP.FCMRate)
	}
}

func TestUnpredictableLoadProfilesLow(t *testing.T) {
	src := `
var a[509]
func main() {
	var x = 1
	for var i = 0; i < 509; i = i + 1 {
		x = (x * 1103515245 + 12345) % 509
		if x < 0 { x = x + 509 }
		a[i] = x
	}
	var s = 0
	var j = 1
	for var i = 0; i < 509; i = i + 1 {
		s = s + a[j]
		j = (j * 263 + 71) % 509
	}
	return s
}`
	prog := compile(t, src)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	// The pseudo-random-indexed load must profile below the paper's 65%
	// selection threshold.
	for _, lp := range prof.Loads {
		if lp.Count >= 500 && lp.Rate() > 0.65 {
			t.Errorf("pseudo-random load %v rate %v exceeds 0.65 (stride %v, fcm %v)",
				lp.Key, lp.Rate(), lp.StrideRate, lp.FCMRate)
		}
	}
}

func TestCollectOutcomesMaskTally(t *testing.T) {
	// One loop, one perfectly predictable load (constant value).
	src := `
var g = 5
func main() {
	var s = 0
	for var i = 0; i < 20; i = i + 1 {
		s = s + g
	}
	return s
}`
	prog := compile(t, src)
	main := prog.Func("main")
	loads := findLoads(main)
	if len(loads) != 1 {
		t.Fatalf("want exactly 1 load, got %d", len(loads))
	}
	sel := profile.NewSelection()
	sel.Add("main", loads[0].Block, loads[0].OpID, profile.SchemeStride)

	out, err := profile.CollectOutcomes(prog, sel, "main")
	if err != nil {
		t.Fatal(err)
	}
	bk := profile.BlockKey{Func: "main", Block: loads[0].Block}
	if out.Executions[bk] != 20 {
		t.Fatalf("executions = %d, want 20", out.Executions[bk])
	}
	correct := out.AllCorrectCount(bk, 1)
	wrong := out.AllWrongCount(bk)
	// First iteration is a cold miss; the remaining 19 hit.
	if correct != 19 || wrong != 1 {
		t.Errorf("correct=%d wrong=%d, want 19/1 (masks: %v)", correct, wrong, out.MaskCounts[bk])
	}
}

func TestCollectOutcomesJointMask(t *testing.T) {
	// Two loads in the same block: one constant (predictable after warmup),
	// one alternating 0/1 with period 2 — stride mispredicts it forever,
	// so per-instance masks must show exactly one of the two bits hitting.
	src := `
var c = 7
var toggle[2]
func main() {
	toggle[1] = 1
	var s = 0
	for var i = 0; i < 40; i = i + 1 {
		s = s + c + toggle[i % 2]
	}
	return s
}`
	prog := compile(t, src)
	main := prog.Func("main")
	loads := findLoads(main)
	if len(loads) < 2 {
		t.Fatalf("want >= 2 loads, got %d", len(loads))
	}
	// Select the two loads that share a block.
	byBlock := map[int][]int{}
	for _, l := range loads {
		byBlock[l.Block] = append(byBlock[l.Block], l.OpID)
	}
	var bk profile.BlockKey
	var ids []int
	for blk, ops := range byBlock {
		if len(ops) == 2 {
			bk = profile.BlockKey{Func: "main", Block: blk}
			ids = ops
		}
	}
	if ids == nil {
		t.Fatalf("no block with 2 loads: %v", byBlock)
	}
	sel := profile.NewSelection()
	for _, id := range ids {
		sel.Add("main", bk.Block, id, profile.SchemeStride)
	}
	out, err := profile.CollectOutcomes(prog, sel, "main")
	if err != nil {
		t.Fatal(err)
	}
	if out.Executions[bk] != 40 {
		t.Fatalf("executions = %d, want 40", out.Executions[bk])
	}
	// The constant load hits from iteration 2 on; the toggling load mostly
	// misses. So most instances have exactly one bit set.
	oneBit := out.MaskCounts[bk][1] + out.MaskCounts[bk][2]
	if oneBit < 30 {
		t.Errorf("one-bit masks = %d of 40, want most (masks %v)", oneBit, out.MaskCounts[bk])
	}
	if got := out.AllCorrectCount(bk, 2); got > 10 {
		t.Errorf("all-correct = %d, want few", got)
	}
}

func TestOutcomesAcrossCalls(t *testing.T) {
	// The selected load sits in a block that also calls a function which
	// itself executes blocks; the instance mask must still be attributed
	// to the caller's block.
	src := `
var g = 3
func work(x) {
	var t = 0
	for var i = 0; i < 3; i = i + 1 { t = t + x }
	return t
}
func main() {
	var s = 0
	for var i = 0; i < 10; i = i + 1 {
		s = s + work(g)
	}
	return s
}`
	prog := compile(t, src)
	main := prog.Func("main")
	loads := findLoads(main)
	if len(loads) != 1 {
		t.Fatalf("want 1 load in main, got %d", len(loads))
	}
	sel := profile.NewSelection()
	sel.Add("main", loads[0].Block, loads[0].OpID, profile.SchemeStride)
	out, err := profile.CollectOutcomes(prog, sel, "main")
	if err != nil {
		t.Fatal(err)
	}
	bk := profile.BlockKey{Func: "main", Block: loads[0].Block}
	if out.Executions[bk] != 10 {
		t.Fatalf("executions = %d, want 10", out.Executions[bk])
	}
	if got := out.AllCorrectCount(bk, 1); got != 9 {
		t.Errorf("all-correct = %d, want 9 (cold miss then hits)", got)
	}
}

func TestProfileRateAndBestAgree(t *testing.T) {
	lp := &profile.LoadProfile{StrideRate: 0.3, FCMRate: 0.8}
	if lp.Rate() != 0.8 || lp.Best() != profile.SchemeFCM {
		t.Errorf("Rate/Best inconsistent: %v %v", lp.Rate(), lp.Best())
	}
	lp = &profile.LoadProfile{StrideRate: 0.9, FCMRate: 0.2}
	if lp.Rate() != 0.9 || lp.Best() != profile.SchemeStride {
		t.Errorf("Rate/Best inconsistent: %v %v", lp.Rate(), lp.Best())
	}
	// Equal profiled rates tie-break to the stride scheme, matching the
	// runtime hybrid's tournament rule.
	lp = &profile.LoadProfile{StrideRate: 0.7, FCMRate: 0.7}
	if lp.Rate() != 0.7 || lp.Best() != profile.SchemeStride {
		t.Errorf("tied rates chose %v (rate %v), want stride", lp.Best(), lp.Rate())
	}
}

// TestSchemeNamesRoundTrip pins Scheme.String and SchemeByName as exact
// inverses over the whole zoo, and SchemeByName's rejection of anything
// else — the speculate pass and the CLIs both rely on the round trip.
func TestSchemeNamesRoundTrip(t *testing.T) {
	schemes := []profile.Scheme{
		profile.SchemeStride, profile.SchemeFCM, profile.SchemeLast,
		profile.SchemeLNV, profile.SchemeVTAGE, profile.SchemeHybrid,
	}
	seen := map[string]bool{}
	for _, s := range schemes {
		name := s.String()
		if seen[name] {
			t.Fatalf("duplicate scheme name %q", name)
		}
		seen[name] = true
		got, ok := profile.SchemeByName(name)
		if !ok || got != s {
			t.Errorf("SchemeByName(%q) = %v, %v; want %v, true", name, got, ok, s)
		}
	}
	for _, bad := range []string{"", "profiled", "auto", "tage", "STRIDE"} {
		if _, ok := profile.SchemeByName(bad); ok {
			t.Errorf("SchemeByName(%q) accepted a non-forceable name", bad)
		}
	}
}

// TestRateOfAndZooBest pins the zoo-wide argmax: RateOf must read the
// matching meter, and ZooBest must break ties toward the paper's
// families so "auto" degenerates to the legacy choice when the new
// schemes don't strictly win.
func TestRateOfAndZooBest(t *testing.T) {
	lp := &profile.LoadProfile{
		StrideRate: 0.5, FCMRate: 0.6, LastRate: 0.3,
		LNVRate: 0.4, VTAGERate: 0.7, HybridRate: 0.6,
	}
	want := map[profile.Scheme]float64{
		profile.SchemeStride: 0.5, profile.SchemeFCM: 0.6,
		profile.SchemeLast: 0.3, profile.SchemeLNV: 0.4,
		profile.SchemeVTAGE: 0.7, profile.SchemeHybrid: 0.6,
	}
	for s, r := range want {
		if got := lp.RateOf(s); got != r {
			t.Errorf("RateOf(%v) = %v, want %v", s, got, r)
		}
	}
	if s, r := lp.ZooBest(); s != profile.SchemeVTAGE || r != 0.7 {
		t.Errorf("ZooBest = %v, %v; want vtage, 0.7", s, r)
	}
	// A tie across every family must pick stride (zoo order head).
	tie := &profile.LoadProfile{
		StrideRate: 0.8, FCMRate: 0.8, LastRate: 0.8,
		LNVRate: 0.8, VTAGERate: 0.8, HybridRate: 0.8,
	}
	if s, r := tie.ZooBest(); s != profile.SchemeStride || r != 0.8 {
		t.Errorf("tied ZooBest = %v, %v; want stride, 0.8", s, r)
	}
	// The paper's pair beats an equal newcomer: fcm over vtage at 0.9.
	legacy := &profile.LoadProfile{FCMRate: 0.9, VTAGERate: 0.9}
	if s, _ := legacy.ZooBest(); s != profile.SchemeFCM {
		t.Errorf("fcm/vtage tie broke to %v, want fcm", s)
	}
}

// TestProfileCloneIsDeep pins Clone's independence contract: the
// predictor-family ablation rescopes rates on a clone, and the shared
// cached profile must never see it. Load and Edge are the accessors the
// rescoring path reads through.
func TestProfileCloneIsDeep(t *testing.T) {
	src := `
var a[8]
func main() {
	var s = 0
	for var i = 0; i < 8; i = i + 1 {
		a[i] = i
	}
	for var j = 0; j < 8; j = j + 1 {
		s = s + a[j]
	}
	return s
}
`
	prog := compile(t, src)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	loads := findLoads(prog.Funcs[0])
	if len(loads) == 0 {
		t.Fatal("kernel has no loads")
	}
	lp := prof.Load("main", loads[0].OpID)
	if lp == nil {
		t.Fatal("Load returned nil for an executed site")
	}
	clone := prof.Clone()
	if clone.DynOps != prof.DynOps || len(clone.Loads) != len(prof.Loads) {
		t.Fatalf("clone shape differs: %d/%d loads, %d/%d ops",
			len(clone.Loads), len(prof.Loads), clone.DynOps, prof.DynOps)
	}
	clp := clone.Load("main", loads[0].OpID)
	orig := lp.StrideRate
	clp.StrideRate = -1
	if lp.StrideRate != orig {
		t.Error("mutating a cloned LoadProfile reached the original")
	}
	for k, v := range prof.EdgeFreq {
		if clone.Edge(k.Func, k.From, k.To) != v {
			t.Errorf("edge %v: clone %d != original %d", k, clone.Edge(k.Func, k.From, k.To), v)
		}
		clone.EdgeFreq[k] = v + 1
		if prof.Edge(k.Func, k.From, k.To) != v {
			t.Error("mutating a cloned edge count reached the original")
		}
		break
	}
}
