// Package profile implements the two profiling passes of the paper's §3:
//
//  1. Value profiling of loads: each static load's dynamic value stream is
//     scored online against a stride predictor and an FCM predictor; its
//     predictability is the higher of the two rates. Block execution
//     frequencies are collected in the same run.
//  2. Outcome profiling: after the speculation pass has selected loads, a
//     second run replays the program and records, for every dynamic block
//     instance, exactly which selected predictions hit — tallied as a
//     per-block histogram over outcome bitmasks. The experiment drivers
//     combine these histograms with the dual-engine timing model to
//     estimate execution cycles, best cases ("all predictions correct"),
//     and worst cases ("all incorrect").
package profile

import (
	"fmt"
	"sort"

	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/predict"
)

// LoadKey names a static load site.
type LoadKey struct {
	Func string
	OpID int
}

// BlockKey names a static basic block.
type BlockKey struct {
	Func  string
	Block int
}

// EdgeKey names a CFG edge within one function.
type EdgeKey struct {
	Func     string
	From, To int
}

// Scheme names the predictor family chosen for a site.
type Scheme uint8

const (
	// SchemeStride selects the two-delta stride predictor.
	SchemeStride Scheme = iota
	// SchemeFCM selects the order-2 FCM predictor.
	SchemeFCM
	// SchemeLast selects the plain last-value predictor.
	SchemeLast
	// SchemeLNV selects the last-n-value (modal ring) predictor.
	SchemeLNV
	// SchemeVTAGE selects the tagged geometric-history context predictor
	// (a shared table; sites address it through views).
	SchemeVTAGE
	// SchemeHybrid selects the stride/FCM tournament predictor.
	SchemeHybrid
)

func (s Scheme) String() string {
	switch s {
	case SchemeFCM:
		return "fcm"
	case SchemeLast:
		return "last"
	case SchemeLNV:
		return "lnv"
	case SchemeVTAGE:
		return "vtage"
	case SchemeHybrid:
		return "hybrid"
	default:
		return "stride"
	}
}

// SchemeByName inverts Scheme.String for the forceable scheme names.
func SchemeByName(name string) (Scheme, bool) {
	switch name {
	case "stride":
		return SchemeStride, true
	case "fcm":
		return SchemeFCM, true
	case "last":
		return SchemeLast, true
	case "lnv":
		return SchemeLNV, true
	case "vtage":
		return SchemeVTAGE, true
	case "hybrid":
		return SchemeHybrid, true
	}
	return SchemeStride, false
}

// zooOrder fixes the tie-break order for zoo-wide argmax selection: the
// paper's two families first (so "auto" degenerates to the legacy choice
// when the new schemes don't strictly win), then the PR-8 additions.
var zooOrder = [...]Scheme{SchemeStride, SchemeFCM, SchemeHybrid, SchemeLast, SchemeLNV, SchemeVTAGE}

// LoadProfile is the value profile of one static load site. Collect
// always meters every scheme of the zoo, so cached profiles are
// predictor-config-independent; Rate and Best deliberately keep the
// paper's stride/FCM semantics.
type LoadProfile struct {
	Key        LoadKey
	Count      int64
	StrideRate float64
	FCMRate    float64
	LastRate   float64
	LNVRate    float64
	VTAGERate  float64
	HybridRate float64
}

// Rate is the site's predictability: max(stride, FCM), per the paper.
func (lp *LoadProfile) Rate() float64 {
	if lp.FCMRate > lp.StrideRate {
		return lp.FCMRate
	}
	return lp.StrideRate
}

// Best is the predictor family achieving Rate.
func (lp *LoadProfile) Best() Scheme {
	if lp.FCMRate > lp.StrideRate {
		return SchemeFCM
	}
	return SchemeStride
}

// RateOf returns the profiled rate of one scheme.
func (lp *LoadProfile) RateOf(s Scheme) float64 {
	switch s {
	case SchemeFCM:
		return lp.FCMRate
	case SchemeLast:
		return lp.LastRate
	case SchemeLNV:
		return lp.LNVRate
	case SchemeVTAGE:
		return lp.VTAGERate
	case SchemeHybrid:
		return lp.HybridRate
	default:
		return lp.StrideRate
	}
}

// ZooBest is the zoo-wide argmax: the scheme with the highest profiled
// rate across all five families, ties broken toward the earlier scheme in
// the fixed zoo order (stride, fcm, last, lnv, vtage).
func (lp *LoadProfile) ZooBest() (Scheme, float64) {
	best, rate := zooOrder[0], lp.RateOf(zooOrder[0])
	for _, s := range zooOrder[1:] {
		if r := lp.RateOf(s); r > rate {
			best, rate = s, r
		}
	}
	return best, rate
}

// Profile holds the results of the value-profiling pass.
type Profile struct {
	Loads     map[LoadKey]*LoadProfile
	BlockFreq map[BlockKey]int64
	// EdgeFreq counts traversals of each CFG edge (used by region
	// formation to pick likely successors).
	EdgeFreq map[EdgeKey]int64
	// DynOps is the total dynamic operation count of the run.
	DynOps int64
}

// Load returns the profile of a site (nil if never executed).
func (p *Profile) Load(fn string, opID int) *LoadProfile {
	return p.Loads[LoadKey{Func: fn, OpID: opID}]
}

// Clone deep-copies the profile. Callers that rescore or mask predictor
// rates (the predictor-family ablation) clone first, so a profile shared
// through the experiment front-end cache is never mutated.
func (p *Profile) Clone() *Profile {
	c := &Profile{
		Loads:     make(map[LoadKey]*LoadProfile, len(p.Loads)),
		BlockFreq: make(map[BlockKey]int64, len(p.BlockFreq)),
		EdgeFreq:  make(map[EdgeKey]int64, len(p.EdgeFreq)),
		DynOps:    p.DynOps,
	}
	for k, lp := range p.Loads {
		dup := *lp
		c.Loads[k] = &dup
	}
	for k, v := range p.BlockFreq {
		c.BlockFreq[k] = v
	}
	for k, v := range p.EdgeFreq {
		c.EdgeFreq[k] = v
	}
	return c
}

// Freq returns the execution count of a block.
func (p *Profile) Freq(fn string, block int) int64 {
	return p.BlockFreq[BlockKey{Func: fn, Block: block}]
}

// Edge returns the traversal count of a CFG edge.
func (p *Profile) Edge(fn string, from, to int) int64 {
	return p.EdgeFreq[EdgeKey{Func: fn, From: from, To: to}]
}

type siteMeters struct {
	stride predict.RateMeter
	fcm    predict.RateMeter
	last   predict.RateMeter
	lnv    predict.RateMeter
	vtage  predict.RateMeter
	hybrid predict.RateMeter
}

// Collect runs the program once and gathers value and frequency profiles.
func Collect(prog *ir.Program, entry string, args ...uint64) (*Profile, error) {
	m := interp.New(prog)
	sites := map[LoadKey]*siteMeters{}
	prof := &Profile{
		Loads:     map[LoadKey]*LoadProfile{},
		BlockFreq: map[BlockKey]int64{},
		EdgeFreq:  map[EdgeKey]int64{},
	}
	// prevBlock tracks the last block seen per call depth, to attribute
	// edges; a new block at depth d with the same function as the previous
	// block at depth d traversed the edge between them.
	prevBlock := map[int]BlockKey{}
	m.Hooks.OnBlock = func(f *ir.Func, b *ir.Block, depth int) {
		bk := BlockKey{Func: f.Name, Block: b.ID}
		prof.BlockFreq[bk]++
		if prev, ok := prevBlock[depth]; ok && prev.Func == f.Name {
			// Guard against false edges between consecutive invocations of
			// the same function at one depth: the edge must exist in the CFG.
			for _, s := range f.Blocks[prev.Block].Succs {
				if s == b.ID {
					prof.EdgeFreq[EdgeKey{Func: f.Name, From: prev.Block, To: b.ID}]++
					break
				}
			}
		}
		prevBlock[depth] = bk
	}
	m.Hooks.OnLoad = func(f *ir.Func, op *ir.Op, addr int, value uint64, depth int) {
		k := LoadKey{Func: f.Name, OpID: op.ID}
		s := sites[k]
		if s == nil {
			// Profiling meters every scheme of the zoo, whatever predictor
			// the simulation will run with: cached profiles must be
			// predictor-config-independent. The profiling VTAGE is a
			// private per-site table — the profile measures each site's
			// intrinsic predictability, not cross-site interference.
			s = &siteMeters{
				stride: predict.RateMeter{P: predict.NewStride()},
				fcm:    predict.RateMeter{P: predict.NewFCM(predict.DefaultFCMOrder, predict.DefaultFCMTableBits)},
				last:   predict.RateMeter{P: predict.NewLastValue()},
				lnv:    predict.RateMeter{P: predict.NewLastN(predict.DefaultLNVDepth)},
				vtage:  predict.RateMeter{P: predict.NewVTAGE(predict.DefaultVTAGEBits).Site(0)},
				hybrid: predict.RateMeter{P: predict.NewHybrid(predict.DefaultFCMOrder, predict.DefaultFCMTableBits)},
			}
			sites[k] = s
		}
		s.stride.Observe(value)
		s.fcm.Observe(value)
		s.last.Observe(value)
		s.lnv.Observe(value)
		s.vtage.Observe(value)
		s.hybrid.Observe(value)
	}
	if _, err := m.Run(entry, args...); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	for k, s := range sites {
		prof.Loads[k] = &LoadProfile{
			Key:        k,
			Count:      int64(s.stride.Total),
			StrideRate: s.stride.Rate(),
			FCMRate:    s.fcm.Rate(),
			LastRate:   s.last.Rate(),
			LNVRate:    s.lnv.Rate(),
			VTAGERate:  s.vtage.Rate(),
			HybridRate: s.hybrid.Rate(),
		}
	}
	prof.DynOps = m.Steps
	return prof, nil
}

// Selection maps each block to the ordered list of load sites chosen for
// prediction in it, plus each site's predictor family. It is produced by
// the speculate pass and consumed by outcome profiling.
type Selection struct {
	// PerBlock lists selected load op IDs per block, in ascending op-ID
	// order; the position of a load in this list is its bit position in
	// outcome masks.
	PerBlock map[BlockKey][]int
	// Schemes gives the chosen predictor family per site.
	Schemes map[LoadKey]Scheme
}

// NewSelection returns an empty selection.
func NewSelection() *Selection {
	return &Selection{
		PerBlock: map[BlockKey][]int{},
		Schemes:  map[LoadKey]Scheme{},
	}
}

// Add registers a selected load site.
func (s *Selection) Add(fn string, block, opID int, scheme Scheme) {
	bk := BlockKey{Func: fn, Block: block}
	s.PerBlock[bk] = append(s.PerBlock[bk], opID)
	sort.Ints(s.PerBlock[bk])
	s.Schemes[LoadKey{Func: fn, OpID: opID}] = scheme
}

// Outcomes tallies, per block, how many dynamic instances saw each
// prediction-outcome mask (bit i set = i-th selected load predicted
// correctly in that instance).
type Outcomes struct {
	// MaskCounts[block][mask] = number of instances.
	MaskCounts map[BlockKey]map[uint32]int64
	// Executions[block] = total instances (sum over masks).
	Executions map[BlockKey]int64
}

// AllCorrectCount returns instances of the block where every prediction hit.
func (o *Outcomes) AllCorrectCount(bk BlockKey, numSel int) int64 {
	full := uint32(1)<<uint(numSel) - 1
	return o.MaskCounts[bk][full]
}

// AllWrongCount returns instances where every prediction missed.
func (o *Outcomes) AllWrongCount(bk BlockKey) int64 {
	return o.MaskCounts[bk][0]
}

// openInstance is a block instance whose selected loads are still resolving.
type openInstance struct {
	bk    BlockKey
	depth int
	sel   []int // selected op IDs, mask bit order
	mask  uint32
}

// OutcomeHooks receive streaming events from StreamOutcomes.
type OutcomeHooks struct {
	// OnInstance fires when a block instance with selected loads has
	// resolved (at the next block boundary): its outcome mask (bit i set =
	// i-th selected load predicted correctly) and selection size.
	OnInstance func(bk BlockKey, mask uint32, numSel int)
	// OnBlock fires on every dynamic block entry, selected or not.
	OnBlock func(bk BlockKey)
}

// StreamOutcomes replays the program with one live predictor per selected
// site (of the profiled-best family) and streams per-instance outcome
// events. CollectOutcomes is the tallying wrapper most callers want.
func StreamOutcomes(prog *ir.Program, sel *Selection, entry string, hooks OutcomeHooks, args ...uint64) error {
	m := interp.New(prog)
	preds := map[LoadKey]predict.Predictor{}
	// VTAGE sites share one table per replay run, like the hardware they
	// model; site IDs are assigned in first-execution order (deterministic
	// for a deterministic program).
	var vtage *predict.VTAGE
	var stack []*openInstance

	finalize := func(inst *openInstance) {
		if hooks.OnInstance != nil {
			hooks.OnInstance(inst.bk, inst.mask, len(inst.sel))
		}
	}
	closeDeeper := func(depth int) {
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			finalize(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
		}
	}

	m.Hooks.OnBlock = func(f *ir.Func, b *ir.Block, depth int) {
		closeDeeper(depth)
		bk := BlockKey{Func: f.Name, Block: b.ID}
		if hooks.OnBlock != nil {
			hooks.OnBlock(bk)
		}
		selLoads := sel.PerBlock[bk]
		if len(selLoads) == 0 {
			return // nothing to track; instance boundaries don't matter
		}
		stack = append(stack, &openInstance{bk: bk, depth: depth, sel: selLoads})
	}
	m.Hooks.OnLoad = func(f *ir.Func, op *ir.Op, addr int, value uint64, depth int) {
		k := LoadKey{Func: f.Name, OpID: op.ID}
		scheme, selected := sel.Schemes[k]
		if !selected {
			return
		}
		p := preds[k]
		if p == nil {
			switch scheme {
			case SchemeFCM:
				p = predict.NewFCM(predict.DefaultFCMOrder, predict.DefaultFCMTableBits)
			case SchemeLast:
				p = predict.NewLastValue()
			case SchemeLNV:
				p = predict.NewLastN(predict.DefaultLNVDepth)
			case SchemeHybrid:
				p = predict.NewHybrid(predict.DefaultFCMOrder, predict.DefaultFCMTableBits)
			case SchemeVTAGE:
				if vtage == nil {
					vtage = predict.NewVTAGE(predict.DefaultVTAGEBits)
				}
				p = vtage.Site(len(preds))
			default:
				p = predict.NewStride()
			}
			preds[k] = p
		}
		hit := false
		if v, ok := p.Predict(); ok && v == value {
			hit = true
		}
		p.Update(value)

		// The owning instance is the deepest open instance at this call
		// depth (deeper callee instances may still sit above it until the
		// next block event closes them).
		for i := len(stack) - 1; i >= 0; i-- {
			inst := stack[i]
			if inst.depth > depth {
				continue
			}
			if inst.depth < depth || inst.bk.Func != f.Name {
				break
			}
			if hit {
				for j, id := range inst.sel {
					if id == op.ID {
						inst.mask |= 1 << uint(j)
						break
					}
				}
			}
			break
		}
	}
	if _, err := m.Run(entry, args...); err != nil {
		return fmt.Errorf("profile outcomes: %w", err)
	}
	closeDeeper(0)
	return nil
}

// CollectOutcomes tallies per-instance outcome masks per block.
func CollectOutcomes(prog *ir.Program, sel *Selection, entry string, args ...uint64) (*Outcomes, error) {
	out := &Outcomes{
		MaskCounts: map[BlockKey]map[uint32]int64{},
		Executions: map[BlockKey]int64{},
	}
	err := StreamOutcomes(prog, sel, entry, OutcomeHooks{
		OnInstance: func(bk BlockKey, mask uint32, numSel int) {
			out.Executions[bk]++
			mc := out.MaskCounts[bk]
			if mc == nil {
				mc = map[uint32]int64{}
				out.MaskCounts[bk] = mc
			}
			mc[mask]++
		},
	}, args...)
	if err != nil {
		return nil, err
	}
	return out, nil
}
