package predict

// VTAGE is a tagged geometric-history context predictor in the style of
// the value-TAGE family: a set of tagged component tables indexed by a
// hash of the prediction site and its last h values, with h growing
// geometrically per component (1, 2, 4, 8). The longest-history component
// whose tag matches provides the prediction; a per-site last-value base
// predictor backstops the misses. On a mispredict, an entry is allocated
// in the next-longer component, stealing a slot whose useful counter has
// decayed.
//
// One VTAGE table is SHARED by all prediction sites of a simulation —
// that is the hardware structure being modeled, and it makes cross-site
// tag aliasing a real (tested) phenomenon. Sites address it through
// VTAGESite views created with Site; the site ID is folded into every
// index and tag hash.
//
// Lifecycle contract: VTAGESite.Reset clears ONLY site-local state (the
// value history and base predictor). It must, because the engine resets
// site views lazily mid-run, after sibling sites have already trained the
// shared table. The table itself is cleared exactly once per run by
// VTAGE.Reset.
type VTAGE struct {
	bits  int
	mask  uint64
	comps [][]vtageEntry // comps[i] has history length vtageHistLens[i]
}

type vtageEntry struct {
	tag   uint16
	value uint64
	ctr   uint8 // prediction confidence; 0 marks a free entry
	u     uint8 // usefulness (allocation victim selection)
}

// DefaultVTAGEBits sizes each component table at 2^bits entries when a
// config leaves it unset.
const DefaultVTAGEBits = 10

// vtageHistLens are the geometric component history lengths.
var vtageHistLens = [...]int{1, 2, 4, 8}

const (
	vtageMaxHist = 8    // longest component history; sizes the site ring
	vtageTagMask = 0xff // 8-bit tags, realistic and alias-prone by design
	vtageCtrMax  = 3
	vtageUMax    = 3
)

// NewVTAGE returns a cold shared table with 2^bits entries per component;
// bits < 2 is clamped to 2.
func NewVTAGE(bits int) *VTAGE {
	if bits < 2 {
		bits = 2
	}
	t := &VTAGE{bits: bits, mask: (1 << bits) - 1}
	t.comps = make([][]vtageEntry, len(vtageHistLens))
	for i := range t.comps {
		t.comps[i] = make([]vtageEntry, 1<<bits)
	}
	return t
}

// Reset clears every component table in place (no allocation).
func (t *VTAGE) Reset() {
	for _, comp := range t.comps {
		for i := range comp {
			comp[i] = vtageEntry{}
		}
	}
}

// Site returns a predictor view of the shared table for one prediction
// site.
func (t *VTAGE) Site(id int) *VTAGESite {
	return &VTAGESite{t: t, id: id}
}

// VTAGESite is one prediction site's view of a shared VTAGE table plus
// its site-local state: the value-history ring the component hashes fold
// and the last-value base predictor. It implements Predictor.
type VTAGESite struct {
	t    *VTAGE
	id   int
	hist [vtageMaxHist]uint64 // ring of recent values, hist[head-1] newest
	n    int                  // values seen, saturating at vtageMaxHist
	head int
	last uint64
	seen bool
}

// histAt returns the i-th most recent value, i in [0, vtageMaxHist).
func (s *VTAGESite) histAt(i int) uint64 {
	return s.hist[((s.head-1-i)%vtageMaxHist+vtageMaxHist)%vtageMaxHist]
}

// hash folds the site ID and the last histLen values FNV-1a style and
// splits the result into a component-table index and an 8-bit tag.
func (s *VTAGESite) hash(histLen int) (idx uint64, tag uint16) {
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(uint64(s.id))
	for i := 0; i < histLen; i++ {
		mix(s.histAt(i))
	}
	return h & s.t.mask, uint16(h>>32) & vtageTagMask
}

// provider returns the longest-history component with a tag match, or
// -1 when no component hits (the base predictor provides).
func (s *VTAGESite) provider() (comp int, idx uint64) {
	for ci := len(vtageHistLens) - 1; ci >= 0; ci-- {
		if s.n < vtageHistLens[ci] {
			continue
		}
		i, tag := s.hash(vtageHistLens[ci])
		e := &s.t.comps[ci][i]
		if e.ctr > 0 && e.tag == tag {
			return ci, i
		}
	}
	return -1, 0
}

// Predict implements Predictor.
func (s *VTAGESite) Predict() (uint64, bool) {
	if ci, idx := s.provider(); ci >= 0 {
		return s.t.comps[ci][idx].value, true
	}
	return s.last, s.seen
}

// Update implements Predictor. The provider is recomputed rather than
// remembered from Predict: the in-order engine issues a site's next
// LdPred before the previous check has resolved, so Predict/Update calls
// do not pair up.
func (s *VTAGESite) Update(actual uint64) {
	ci, idx := s.provider()
	predicted, havePred := s.last, s.seen
	if ci >= 0 {
		e := &s.t.comps[ci][idx]
		predicted, havePred = e.value, true
		if e.value == actual {
			if e.ctr < vtageCtrMax {
				e.ctr++
			}
			if e.u < vtageUMax {
				e.u++
			}
		} else {
			if e.ctr > 1 {
				e.ctr--
			} else {
				e.value = actual // replace a low-confidence entry in place
				e.ctr = 1
			}
			if e.u > 0 {
				e.u--
			}
		}
	}
	if !havePred || predicted != actual {
		// Allocate into a longer-history component; decayed-useful entries
		// are the victims, live ones age toward eviction.
		for ai := ci + 1; ai < len(vtageHistLens); ai++ {
			if s.n < vtageHistLens[ai] {
				break
			}
			i, tag := s.hash(vtageHistLens[ai])
			e := &s.t.comps[ai][i]
			if e.ctr == 0 || e.u == 0 {
				*e = vtageEntry{tag: tag, value: actual, ctr: 1}
				break
			}
			e.u--
		}
	}
	s.hist[s.head] = actual
	s.head = (s.head + 1) % vtageMaxHist
	if s.n < vtageMaxHist {
		s.n++
	}
	s.last, s.seen = actual, true
}

// Name implements Predictor.
func (s *VTAGESite) Name() string { return "vtage" }

// Reset implements Predictor. Site-local state only — see the lifecycle
// contract in the VTAGE doc comment.
func (s *VTAGESite) Reset() {
	s.n, s.head = 0, 0
	s.last, s.seen = 0, false
}
