package predict

import (
	"errors"
	"strings"
	"testing"
)

// TestParsePredictorConfig drives the spec grammar through its accepting
// rows (asserting the canonical Key) and its rejecting rows (asserting the
// typed *ConfigError names the right field).
func TestParsePredictorConfig(t *testing.T) {
	valid := []struct {
		spec string
		key  string
	}{
		{"profiled", "profiled"},
		{"auto", "auto"},
		{"last", "last"},
		{"stride", "stride"},
		{"fcm", "fcm"},
		{"hybrid", "hybrid"},
		{"lnv", "lnv"},
		{"vtage", "vtage"},
		{"fcm:order=3,bits=10", "fcm:bits=10,order=3"},
		{"hybrid:bits=8", "hybrid:bits=8"},
		{"lnv:depth=8", "lnv:depth=8"},
		{"vtage:bits=12", "vtage:bits=12"},
		{"vtage:bits=12,conf=4", "vtage:bits=12,conf=4"},
		{"vtage:conf=4,bits=12", "vtage:bits=12,conf=4"},
		{"profiled:conf=3", "profiled:conf=3"},
		{"profiled:conf=3,cbits=2", "profiled:cbits=2,conf=3"},
		{"stride:conf=7", "stride:conf=7"},
		// Zero means "default" and defaults are omitted from the key, so
		// an explicit conf=0 keys identically to the bare name.
		{"lnv:conf=0", "lnv"},
	}
	for _, tc := range valid {
		c, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", tc.spec, err)
			continue
		}
		if got := c.Key(); got != tc.key {
			t.Errorf("Parse(%q).Key() = %q, want %q", tc.spec, got, tc.key)
		}
	}

	invalid := []struct {
		spec  string
		field string
	}{
		{"", "Scheme"},
		{"tage", "Scheme"},
		{"VTAGE", "Scheme"},
		{"vtage:", "Params"},
		{"vtage:bits", "Params"},
		{"vtage:=4", "Params"},
		{"vtage:zap=4", "Params"},
		{"vtage:bits=4,bits=5", "Params"},
		{"last:depth=4", "Params"}, // depth only applies to lnv
		{"stride:order=2", "Params"},
		{"vtage:bits=zap", "bits"},
		{"vtage:bits=1", "VTAGEBits"},
		{"vtage:bits=17", "VTAGEBits"},
		{"fcm:order=9", "FCMOrder"},
		{"fcm:bits=21", "FCMBits"},
		{"lnv:depth=65", "LNVDepth"},
		{"lnv:depth=-1", "LNVDepth"},
		{"vtage:cbits=9", "ConfBits"},
		{"vtage:conf=-1", "ConfThreshold"},
		{"vtage:conf=8", "ConfThreshold"},         // exceeds 3-bit default max 7
		{"vtage:conf=4,cbits=1", "ConfThreshold"}, // exceeds 1-bit max 1
	}
	for _, tc := range invalid {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q): accepted, want *ConfigError on %s", tc.spec, tc.field)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("Parse(%q): error %T is not *ConfigError", tc.spec, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("Parse(%q): error names field %q, want %q (%v)", tc.spec, ce.Field, tc.field, err)
		}
		if ce.Config != tc.spec {
			t.Errorf("Parse(%q): error names config %q, want the spec as written", tc.spec, ce.Config)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("Parse(%q): message %q does not name the field", tc.spec, err)
		}
	}
}

// TestConfigNilAndDefaults pins the nil-config contract the engine relies
// on: nil means "profiled" with gating off and package-default sizes.
func TestConfigNilAndDefaults(t *testing.T) {
	var c *Config
	if err := c.Validate(); err != nil {
		t.Errorf("nil config invalid: %v", err)
	}
	if c.Key() != "profiled" || c.SchemeName() != "profiled" {
		t.Errorf("nil config: Key %q SchemeName %q, want profiled", c.Key(), c.SchemeName())
	}
	if c.Gating() {
		t.Error("nil config claims gating")
	}
	if c.Order() != DefaultFCMOrder || c.TableBits() != DefaultFCMTableBits ||
		c.Depth() != DefaultLNVDepth || c.TagTableBits() != DefaultVTAGEBits ||
		c.ConfMax() != (1<<DefaultConfBits)-1 {
		t.Error("nil config does not report package defaults")
	}
	if !(&Config{Scheme: "vtage", ConfThreshold: 3}).Gating() {
		t.Error("conf=3 config does not claim gating")
	}
}

// TestStockNamesAllParse keeps the advertised stock list and the parser in
// lockstep.
func TestStockNamesAllParse(t *testing.T) {
	for _, name := range StockNames() {
		c, err := Parse(name)
		if err != nil {
			t.Errorf("stock name %q does not parse: %v", name, err)
			continue
		}
		if c.Key() != name {
			t.Errorf("stock name %q keys as %q", name, c.Key())
		}
	}
}

// FuzzPredictorConfig: arbitrary spec bytes must produce either a valid
// config or a typed *ConfigError naming a field — never a panic — and the
// canonical Key must be a fixed point of Parse.
func FuzzPredictorConfig(f *testing.F) {
	f.Add("profiled")
	f.Add("vtage:bits=12,conf=4")
	f.Add("fcm:order=3,bits=10")
	f.Add("lnv:depth=8")
	f.Add("hybrid:conf=7,cbits=3")
	f.Add("vtage:bits=999999999999999999999")
	f.Add("vtage:bits=4,bits=4")
	f.Add("stride:depth=1")
	f.Add(":::")
	f.Add("profiled:conf=0,cbits=8")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := Parse(spec)
		if err != nil {
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Parse(%q): error %T is not *ConfigError", spec, err)
			}
			if ce.Field == "" || ce.Error() == "" {
				t.Fatalf("Parse(%q): untyped error %v", spec, err)
			}
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid config: %v", spec, verr)
		}
		key := c.Key()
		c2, err2 := Parse(key)
		if err2 != nil {
			t.Fatalf("canonical key %q of %q does not reparse: %v", key, spec, err2)
		}
		if c2.Key() != key {
			t.Fatalf("Key not a fixed point: %q -> %q -> %q", spec, key, c2.Key())
		}
	})
}

// TestAccessorOverrides pins the non-default branch of every effective-
// parameter accessor: a set field wins over the package default. (The
// nil/zero branch is pinned by TestNilConfigDefaults.)
func TestAccessorOverrides(t *testing.T) {
	c := &Config{Scheme: "fcm", FCMOrder: 4, FCMBits: 8, LNVDepth: 7, VTAGEBits: 6}
	if c.SchemeName() != "fcm" {
		t.Errorf("SchemeName = %q, want fcm", c.SchemeName())
	}
	if c.Order() != 4 || c.TableBits() != 8 || c.Depth() != 7 || c.TagTableBits() != 6 {
		t.Errorf("accessors ignored set fields: order=%d bits=%d depth=%d vbits=%d",
			c.Order(), c.TableBits(), c.Depth(), c.TagTableBits())
	}
}

// TestPredictorNames pins every hardware predictor's Name — the label
// observability sinks and failure reports print.
func TestPredictorNames(t *testing.T) {
	if got := NewLastValue().Name(); got != "last" {
		t.Errorf("LastValue.Name = %q", got)
	}
	if got := NewStride().Name(); got != "stride" {
		t.Errorf("Stride.Name = %q", got)
	}
	if got := NewFCM(2, 4).Name(); got == "" {
		t.Error("FCM.Name is empty")
	}
	if got := NewHybrid(2, 4).Name(); got != "hybrid" {
		t.Errorf("Hybrid.Name = %q", got)
	}
	if got := NewLastN(4).Name(); got != "lnv" {
		t.Errorf("LastN.Name = %q", got)
	}
	if got := NewVTAGE(4).Site(1).Name(); got != "vtage" {
		t.Errorf("VTAGESite.Name = %q", got)
	}
}

// TestLastNReset pins the allocation-free reset contract: a reset ring
// forgets its history (back to the never-predicting cold state) without
// reallocating, exactly what pooled-simulator reuse relies on.
func TestLastNReset(t *testing.T) {
	p := NewLastN(4)
	for i := 0; i < 8; i++ {
		p.Update(42)
	}
	if v, ok := p.Predict(); !ok || v != 42 {
		t.Fatalf("trained ring predicts (%d, %v), want (42, true)", v, ok)
	}
	p.Reset()
	if v, ok := p.Predict(); ok {
		t.Fatalf("reset ring still predicts %d", v)
	}
	p.Update(7)
	if v, ok := p.Predict(); !ok || v != 7 {
		t.Errorf("retrained ring predicts (%d, %v), want (7, true)", v, ok)
	}
}
