package predict

// Branch-direction prediction: the control half of the combined
// control+value speculation model (Mitrevski/Gušev framing, PAPERS.md).
// BranchConfig mirrors Config for the value axis — one parsed grammar
// ("name" or "name:key=val,..."), typed *ConfigError rejections, and a
// canonical Key() safe to embed in compiled-plan cache keys — and
// BranchPredictor is the pooled runtime structure both engines share.
//
// Two baselines and a TAGE-style predictor are modeled:
//
//	taken / nottaken   static direction, no table state
//	bimodal:bits=N     2^N-entry PC-indexed table of direction +
//	                   saturating confidence (the classic Smith predictor,
//	                   expressed with the same ConfCounter the LdPred
//	                   confidence gate uses)
//	tage:hist=H,tables=T,bits=B
//	                   T tagged components indexed by a hash of the PC and
//	                   a geometrically growing slice of global history
//	                   (up to H bits), longest tag match provides, bimodal
//	                   base backstops — the direction-predictor analogue of
//	                   the VTAGE value predictor in vtage.go
//
// Confidence in every table entry is a predict.ConfCounter: branch
// confidence and LdPred gating deliberately share one mechanism.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// BranchConfig names and parameterizes the branch-direction predictor a
// simulation's control-speculation model runs with. A nil *BranchConfig
// means no modeled predictor (the legacy flat-penalty machine).
type BranchConfig struct {
	// Scheme is the stock scheme name: "taken", "nottaken", "bimodal", or
	// "tage".
	Scheme string

	// BimodalBits sizes the bimodal table at 2^bits entries ("bimodal",
	// and the TAGE base table); zero means DefaultBimodalBits.
	BimodalBits int

	// TageHist is the longest component's global-history length in bits
	// ("tage"); zero means DefaultBranchHist.
	TageHist int
	// TageTables is the number of tagged components ("tage"); zero means
	// DefaultBranchTables.
	TageTables int
	// TageBits sizes each tagged component at 2^bits entries ("tage");
	// zero means DefaultBranchTagBits.
	TageBits int
}

// Stock branch scheme names, in the order user-facing messages list them.
var stockBranchSchemes = []string{"taken", "nottaken", "bimodal", "tage"}

// StockBranchNames returns the accepted branch scheme names for error
// messages and request validation.
func StockBranchNames() []string {
	out := make([]string, len(stockBranchSchemes))
	copy(out, stockBranchSchemes)
	return out
}

func knownBranchScheme(name string) bool {
	for _, s := range stockBranchSchemes {
		if s == name {
			return true
		}
	}
	return false
}

// branchParamApplies maps each spec key to the schemes it parameterizes.
var branchParamApplies = map[string][]string{
	"bits":   {"bimodal", "tage"},
	"hist":   {"tage"},
	"tables": {"tage"},
}

// ParseBranch decodes a branch-predictor spec of the form "name" or
// "name:key=val,key=val". Accepted keys: bits (bimodal, tage), hist and
// tables (tage). Errors are *ConfigError values naming the field, never a
// panic, for any input bytes.
func ParseBranch(spec string) (*BranchConfig, error) {
	name, params, _ := strings.Cut(spec, ":")
	if !knownBranchScheme(name) {
		return nil, &ConfigError{Config: spec, Field: "Scheme", Value: name,
			Reason: "is not a stock branch scheme (" + strings.Join(stockBranchSchemes, ", ") + ")"}
	}
	c := &BranchConfig{Scheme: name}
	if params == "" {
		if strings.Contains(spec, ":") {
			return nil, &ConfigError{Config: spec, Field: "Params", Value: "",
				Reason: "empty parameter list after ':'"}
		}
		return c, c.Validate()
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || key == "" {
			return nil, &ConfigError{Config: spec, Field: "Params", Value: kv,
				Reason: "is not key=value"}
		}
		applies, known := branchParamApplies[key]
		if !known {
			return nil, &ConfigError{Config: spec, Field: "Params", Value: key,
				Reason: "is not a known parameter (bits, hist, tables)"}
		}
		if seen[key] {
			return nil, &ConfigError{Config: spec, Field: "Params", Value: key,
				Reason: "given more than once"}
		}
		seen[key] = true
		ok = false
		for _, s := range applies {
			if s == name {
				ok = true
				break
			}
		}
		if !ok {
			return nil, &ConfigError{Config: spec, Field: "Params", Value: key,
				Reason: "does not apply to scheme " + strconv.Quote(name)}
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, &ConfigError{Config: spec, Field: key, Value: val,
				Reason: "is not an integer"}
		}
		switch key {
		case "bits":
			if name == "tage" {
				c.TageBits = n
			} else {
				c.BimodalBits = n
			}
		case "hist":
			c.TageHist = n
		case "tables":
			c.TageTables = n
		}
	}
	if err := c.Validate(); err != nil {
		if ce, isCE := err.(*ConfigError); isCE {
			ce.Config = spec // report the spec as written, not the normalized name
		}
		return nil, err
	}
	return c, nil
}

// Validate checks every parameter range. A nil config is valid (it means
// no modeled branch predictor).
func (c *BranchConfig) Validate() error {
	if c == nil {
		return nil
	}
	fail := func(field string, value int, reason string) error {
		return &ConfigError{Config: c.Scheme, Field: field,
			Value: strconv.Itoa(value), Reason: reason}
	}
	if !knownBranchScheme(c.Scheme) {
		return &ConfigError{Config: c.Scheme, Field: "Scheme", Value: c.Scheme,
			Reason: "is not a stock branch scheme (" + strings.Join(stockBranchSchemes, ", ") + ")"}
	}
	if c.BimodalBits != 0 && (c.BimodalBits < 2 || c.BimodalBits > 16) {
		return fail("BimodalBits", c.BimodalBits, "must be between 2 and 16")
	}
	if c.TageHist != 0 && (c.TageHist < 2 || c.TageHist > 64) {
		return fail("TageHist", c.TageHist, "must be between 2 and 64")
	}
	if c.TageTables != 0 && (c.TageTables < 1 || c.TageTables > 8) {
		return fail("TageTables", c.TageTables, "must be between 1 and 8")
	}
	if c.TageBits != 0 && (c.TageBits < 2 || c.TageBits > 14) {
		return fail("TageBits", c.TageBits, "must be between 2 and 14")
	}
	if c.TageHist != 0 && c.TageHist < c.Tables() {
		return fail("TageHist", c.TageHist,
			fmt.Sprintf("must cover the %d tagged components (>= tables)", c.Tables()))
	}
	return nil
}

// Defaults for unset BranchConfig parameters.
const (
	DefaultBimodalBits   = 10
	DefaultBranchHist    = 16
	DefaultBranchTables  = 4
	DefaultBranchTagBits = 9
)

// BaseBits returns the effective bimodal table size exponent.
func (c *BranchConfig) BaseBits() int {
	if c == nil || c.BimodalBits == 0 {
		return DefaultBimodalBits
	}
	return c.BimodalBits
}

// Hist returns the effective longest global-history length.
func (c *BranchConfig) Hist() int {
	if c == nil || c.TageHist == 0 {
		return DefaultBranchHist
	}
	return c.TageHist
}

// Tables returns the effective tagged-component count.
func (c *BranchConfig) Tables() int {
	if c == nil || c.TageTables == 0 {
		return DefaultBranchTables
	}
	return c.TageTables
}

// TagBits returns the effective tagged-component table size exponent.
func (c *BranchConfig) TagBits() int {
	if c == nil || c.TageBits == 0 {
		return DefaultBranchTagBits
	}
	return c.TageBits
}

// SchemeName returns the effective scheme name; nil means "none".
func (c *BranchConfig) SchemeName() string {
	if c == nil {
		return "none"
	}
	return c.Scheme
}

// Key renders the canonical cache-key form: scheme name plus every
// non-default parameter in a fixed order. Two configs with equal keys
// behave identically; the nil config's key is "none". Pass fingerprints
// and compiled-plan caches embed this key, so its format is load-bearing.
func (c *BranchConfig) Key() string {
	if c == nil {
		return "none"
	}
	var parts []string
	add := func(k string, v int) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.Itoa(v))
		}
	}
	switch c.Scheme {
	case "bimodal":
		add("bits", c.BimodalBits)
	case "tage":
		add("bits", c.TageBits)
		add("hist", c.TageHist)
		add("tables", c.TageTables)
	}
	if len(parts) == 0 {
		return c.Scheme
	}
	sort.Strings(parts)
	return c.Scheme + ":" + strings.Join(parts, ",")
}

// branchConfMax saturates table confidence at the LdPred gate's default
// counter ceiling would be overkill for 2-level direction tables; the
// classic 2-bit hysteresis is modeled with a 3-state ConfCounter cap.
const branchConfMax = 3

// bimodalEntry is one PC-indexed direction entry: the last-established
// direction plus a shared-mechanism confidence counter. A mispredict
// drains confidence (ConfCounter resets), and only a zero-confidence
// entry flips direction — the standard hysteresis.
type bimodalEntry struct {
	dir  bool
	conf ConfCounter
}

func (e *bimodalEntry) train(taken bool) {
	if taken == e.dir {
		e.conf.Train(true, branchConfMax)
		return
	}
	if e.conf == 0 {
		e.dir = taken
		e.conf = 1
		return
	}
	e.conf.Train(false, branchConfMax)
}

// btageEntry is one tagged-component entry; conf == 0 marks a free slot
// (an allocated entry always holds conf >= 1, mirroring vtageEntry.ctr).
type btageEntry struct {
	tag  uint16
	dir  bool
	conf ConfCounter
	u    uint8
}

const (
	btageTagMask = 0xfff // 12-bit tags
	btageUMax    = 3
)

// BranchPredictor is the pooled runtime direction predictor. One instance
// is shared by every branch of a simulation (the hardware structure being
// modeled); branches address it by a stable PC hash.
//
// Call contract: the in-order engines resolve every branch in the cycle
// it issues, so Predict(pc) and Update(pc, taken) are strictly paired —
// each Predict is followed by the matching Update before the next
// Predict. Update recomputes the provider rather than caching it (same
// rationale as VTAGESite.Update), so the pairing is a timing contract,
// not a correctness precondition.
//
// Reset clears all table state and the global history in place; steady-
// state reuse allocates nothing.
type BranchPredictor struct {
	scheme string
	ghr    uint64

	base     []bimodalEntry
	baseMask uint64

	comps    [][]btageEntry
	compMask uint64
	histLens []int
}

// NewBranchPredictor builds a cold predictor for a validated config.
// A nil config yields a nil predictor (no modeled control speculation).
func NewBranchPredictor(c *BranchConfig) *BranchPredictor {
	if c == nil {
		return nil
	}
	p := &BranchPredictor{scheme: c.Scheme}
	switch c.Scheme {
	case "bimodal", "tage":
		p.base = make([]bimodalEntry, 1<<c.BaseBits())
		p.baseMask = uint64(len(p.base) - 1)
	}
	if c.Scheme == "tage" {
		n := c.Tables()
		p.comps = make([][]btageEntry, n)
		p.histLens = make([]int, n)
		p.compMask = (1 << c.TagBits()) - 1
		for i := range p.comps {
			p.comps[i] = make([]btageEntry, 1<<c.TagBits())
			// Geometric history lengths ending at Hist(): Hist, Hist/2, ...
			// reversed so histLens grows with the component index.
			l := c.Hist() >> (n - 1 - i)
			if l < 1 {
				l = 1
			}
			p.histLens[i] = l
		}
	}
	return p
}

// Reset clears every table and the global history in place.
func (p *BranchPredictor) Reset() {
	p.ghr = 0
	for i := range p.base {
		p.base[i] = bimodalEntry{}
	}
	for _, comp := range p.comps {
		for i := range comp {
			comp[i] = btageEntry{}
		}
	}
}

// hash folds the PC and histLen bits of global history FNV-1a style and
// splits the result into a component index and tag.
func (p *BranchPredictor) hash(pc uint64, histLen int) (idx uint64, tag uint16) {
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(pc)
	mix(p.ghr & (uint64(1)<<uint(histLen) - 1))
	return h & p.compMask, uint16(h>>32) & btageTagMask
}

// provider returns the longest-history tagged component with a tag match,
// or -1 when the bimodal base provides.
func (p *BranchPredictor) provider(pc uint64) (comp int, idx uint64) {
	for ci := len(p.comps) - 1; ci >= 0; ci-- {
		i, tag := p.hash(pc, p.histLens[ci])
		e := &p.comps[ci][i]
		if e.conf > 0 && e.tag == tag {
			return ci, i
		}
	}
	return -1, 0
}

// Predict returns the predicted direction of the branch at pc.
func (p *BranchPredictor) Predict(pc uint64) bool {
	switch p.scheme {
	case "taken":
		return true
	case "nottaken":
		return false
	}
	if ci, idx := p.provider(pc); ci >= 0 {
		return p.comps[ci][idx].dir
	}
	return p.base[pc&p.baseMask].dir
}

// Update trains the predictor with the branch's resolved direction and
// shifts it into the global history. See the type's call contract.
func (p *BranchPredictor) Update(pc uint64, taken bool) {
	switch p.scheme {
	case "taken", "nottaken":
		return
	case "bimodal":
		p.base[pc&p.baseMask].train(taken)
		return
	}
	ci, idx := p.provider(pc)
	predicted := p.base[pc&p.baseMask].dir
	if ci >= 0 {
		e := &p.comps[ci][idx]
		predicted = e.dir
		if e.dir == taken {
			e.conf.Train(true, branchConfMax)
			if e.u < btageUMax {
				e.u++
			}
		} else {
			if e.conf > 1 {
				e.conf--
			} else {
				e.dir = taken // replace a low-confidence entry in place
				e.conf = 1
			}
			if e.u > 0 {
				e.u--
			}
		}
	} else {
		p.base[pc&p.baseMask].train(taken)
	}
	if predicted != taken {
		// Allocate into a longer-history component; decayed-useful entries
		// are the victims, live ones age toward eviction.
		for ai := ci + 1; ai < len(p.comps); ai++ {
			i, tag := p.hash(pc, p.histLens[ai])
			e := &p.comps[ai][i]
			if e.conf == 0 || e.u == 0 {
				*e = btageEntry{tag: tag, dir: taken, conf: 1}
				break
			}
			e.u--
		}
	}
	p.ghr = p.ghr<<1 | b2u(taken)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
