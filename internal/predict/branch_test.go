package predict

import (
	"strings"
	"testing"
)

// TestParseBranchKeyFixedPoint checks that Key() is canonical: parsing a
// spec and re-parsing its key lands on the same key, and defaults are
// omitted from the rendered form.
func TestParseBranchKeyFixedPoint(t *testing.T) {
	specs := map[string]string{
		"taken":                        "taken",
		"nottaken":                     "nottaken",
		"bimodal":                      "bimodal",
		"bimodal:bits=8":               "bimodal:bits=8",
		"tage":                         "tage",
		"tage:hist=32":                 "tage:hist=32",
		"tage:tables=2,hist=8,bits=10": "tage:bits=10,hist=8,tables=2",
	}
	for spec, want := range specs {
		c, err := ParseBranch(spec)
		if err != nil {
			t.Fatalf("ParseBranch(%q): %v", spec, err)
		}
		if got := c.Key(); got != want {
			t.Errorf("ParseBranch(%q).Key() = %q, want %q", spec, got, want)
		}
		c2, err := ParseBranch(c.Key())
		if err != nil {
			t.Fatalf("re-parse of key %q: %v", c.Key(), err)
		}
		if c2.Key() != c.Key() {
			t.Errorf("key %q is not a fixed point: re-parse gives %q", c.Key(), c2.Key())
		}
	}
}

// TestParseBranchRejects checks that every malformed spec comes back as a
// typed *ConfigError naming the offending field, never a panic.
func TestParseBranchRejects(t *testing.T) {
	bad := []struct {
		spec  string
		field string
	}{
		{"gshare", "Scheme"},
		{"", "Scheme"},
		{"tage:", "Params"},
		{"tage:hist", "Params"},
		{"tage:loop=3", "Params"},
		{"tage:hist=8,hist=8", "Params"},
		{"taken:bits=4", "Params"},   // bits does not apply to taken
		{"bimodal:hist=8", "Params"}, // hist does not apply to bimodal
		{"tage:hist=eight", "hist"},  // not an integer
		{"bimodal:bits=40", "BimodalBits"},
		{"tage:hist=1", "TageHist"},
		{"tage:tables=12", "TageTables"},
		{"tage:bits=64", "TageBits"},
		{"tage:hist=2,tables=4", "TageHist"}, // history shorter than the components
	}
	for _, tc := range bad {
		c, err := ParseBranch(tc.spec)
		if err == nil {
			t.Errorf("ParseBranch(%q) = %+v, want error", tc.spec, c)
			continue
		}
		ce, ok := err.(*ConfigError)
		if !ok {
			t.Errorf("ParseBranch(%q) error is %T, want *ConfigError", tc.spec, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("ParseBranch(%q) blamed field %q, want %q", tc.spec, ce.Field, tc.field)
		}
	}
}

// TestBranchNilConfig pins the nil contract: valid, key "none", default
// accessors, and no constructed predictor.
func TestBranchNilConfig(t *testing.T) {
	var c *BranchConfig
	if err := c.Validate(); err != nil {
		t.Errorf("nil config Validate() = %v", err)
	}
	if got := c.Key(); got != "none" {
		t.Errorf("nil config Key() = %q, want \"none\"", got)
	}
	if got := c.SchemeName(); got != "none" {
		t.Errorf("nil config SchemeName() = %q, want \"none\"", got)
	}
	if c.BaseBits() != DefaultBimodalBits || c.Hist() != DefaultBranchHist ||
		c.Tables() != DefaultBranchTables || c.TagBits() != DefaultBranchTagBits {
		t.Errorf("nil config accessors = %d/%d/%d/%d, want package defaults",
			c.BaseBits(), c.Hist(), c.Tables(), c.TagBits())
	}
	if p := NewBranchPredictor(nil); p != nil {
		t.Errorf("NewBranchPredictor(nil) = %v, want nil", p)
	}
	if !strings.Contains(strings.Join(StockBranchNames(), ","), "tage") {
		t.Errorf("StockBranchNames() = %v, missing tage", StockBranchNames())
	}
}

// TestBranchStaticSchemes pins the stateless baselines.
func TestBranchStaticSchemes(t *testing.T) {
	taken := NewBranchPredictor(&BranchConfig{Scheme: "taken"})
	not := NewBranchPredictor(&BranchConfig{Scheme: "nottaken"})
	for pc := uint64(0); pc < 8; pc++ {
		if !taken.Predict(pc) {
			t.Fatalf("taken predicted not-taken at pc %d", pc)
		}
		if not.Predict(pc) {
			t.Fatalf("nottaken predicted taken at pc %d", pc)
		}
		taken.Update(pc, pc%2 == 0) // training must be a no-op
		not.Update(pc, pc%2 == 0)
	}
	if !taken.Predict(3) || not.Predict(3) {
		t.Error("static schemes changed direction after training")
	}
}

// TestBimodalLearnsBias trains a bimodal predictor on a heavily biased
// branch and checks it converges, with hysteresis across single flips.
func TestBimodalLearnsBias(t *testing.T) {
	p := NewBranchPredictor(&BranchConfig{Scheme: "bimodal"})
	const pc = 0x1234
	for i := 0; i < 8; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("bimodal did not learn an always-taken branch")
	}
	p.Update(pc, false) // one anomaly must not flip a confident entry
	if !p.Predict(pc) {
		t.Fatal("bimodal flipped on a single anomaly (no hysteresis)")
	}
	for i := 0; i < 8; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Fatal("bimodal did not relearn after the bias inverted")
	}
}

// TestTageLearnsHistoryPattern runs a strictly alternating branch — the
// worst case for a PC-indexed bimodal table, trivial with global history —
// and checks the tagged components beat the bimodal baseline on it.
func TestTageLearnsHistoryPattern(t *testing.T) {
	accuracy := func(p *BranchPredictor) float64 {
		const pc, n = 0x42, 400
		hits := 0
		for i := 0; i < n; i++ {
			taken := i%2 == 0
			if i >= n/2 && p.Predict(pc) == taken {
				hits++
			}
			p.Update(pc, taken)
		}
		return float64(hits) / float64(n/2)
	}
	tage := accuracy(NewBranchPredictor(&BranchConfig{Scheme: "tage"}))
	bimodal := accuracy(NewBranchPredictor(&BranchConfig{Scheme: "bimodal"}))
	if tage < 0.95 {
		t.Errorf("tage accuracy %.2f on an alternating branch, want >= 0.95", tage)
	}
	if tage <= bimodal {
		t.Errorf("tage accuracy %.2f does not beat bimodal %.2f on a history pattern", tage, bimodal)
	}
}

// TestBranchPredictorReset checks Reset returns the predictor to its cold
// state: trained directions and global history are gone.
func TestBranchPredictorReset(t *testing.T) {
	for _, spec := range []string{"bimodal", "tage:hist=8,tables=2,bits=6"} {
		c, err := ParseBranch(spec)
		if err != nil {
			t.Fatal(err)
		}
		p := NewBranchPredictor(c)
		cold := make(map[uint64]bool)
		for pc := uint64(0); pc < 64; pc++ {
			cold[pc] = p.Predict(pc)
		}
		for i := 0; i < 200; i++ {
			p.Update(uint64(i%64), true)
		}
		p.Reset()
		for pc := uint64(0); pc < 64; pc++ {
			if p.Predict(pc) != cold[pc] {
				t.Fatalf("%s: pc %d predicts %v after Reset, cold predictor said %v",
					spec, pc, p.Predict(pc), cold[pc])
			}
		}
		if p.ghr != 0 {
			t.Fatalf("%s: Reset left global history %#x", spec, p.ghr)
		}
	}
}
