package predict

// DefaultConfBits is the confidence-counter width used when a config
// leaves it unset: 3 bits, saturating at 7.
const DefaultConfBits = 3

// ConfCounter is one site's saturating confidence counter for runtime
// LdPred gating: a correct prediction increments toward saturation, a
// wrong one resets to zero (the standard reset-on-mispredict policy,
// which makes a site re-earn trust after every miss). The zero value is
// the cold state, so a slice of ConfCounter is reset by zeroing.
type ConfCounter uint8

// Train records one resolved prediction outcome.
func (c *ConfCounter) Train(correct bool, max int) {
	if !correct {
		*c = 0
		return
	}
	if int(*c) < max {
		*c++
	}
}

// Confident reports whether the counter has reached the issue threshold.
func (c ConfCounter) Confident(threshold int) bool { return int(c) >= threshold }
