package predict

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seqConst(n int, v uint64) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func seqStride(n int, start, stride uint64) []uint64 {
	s := make([]uint64, n)
	v := start
	for i := range s {
		s[i] = v
		v += stride
	}
	return s
}

func seqPeriodic(n int, pattern []uint64) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = pattern[i%len(pattern)]
	}
	return s
}

func TestLastValueOnConstantSequence(t *testing.T) {
	r := MeasureRate(NewLastValue(), seqConst(100, 42))
	if r < 0.98 {
		t.Errorf("last-value rate on constant seq = %v, want ~0.99", r)
	}
}

func TestLastValueFailsOnStride(t *testing.T) {
	r := MeasureRate(NewLastValue(), seqStride(100, 0, 8))
	if r > 0.05 {
		t.Errorf("last-value rate on stride seq = %v, want ~0", r)
	}
}

func TestStrideOnStrideSequence(t *testing.T) {
	for _, stride := range []uint64{1, 8, 1 << 40, ^uint64(0) /* -1 */} {
		r := MeasureRate(NewStride(), seqStride(200, 5, stride))
		if r < 0.97 {
			t.Errorf("stride rate with stride %d = %v, want >= 0.97", int64(stride), r)
		}
	}
}

func TestStrideOnConstantSequence(t *testing.T) {
	// Constant sequences are stride-0 sequences.
	r := MeasureRate(NewStride(), seqConst(100, 7))
	if r < 0.97 {
		t.Errorf("stride rate on constant seq = %v, want >= 0.97", r)
	}
}

func TestTwoDeltaSurvivesOneOffJump(t *testing.T) {
	// A single discontinuity must cost O(1) mispredictions, not retrain.
	seq := append(seqStride(50, 0, 4), seqStride(50, 1000, 4)...)
	r := MeasureRate(NewStride(), seq)
	if r < 0.9 {
		t.Errorf("two-delta stride rate with one jump = %v, want >= 0.9", r)
	}
}

func TestFCMOnPeriodicSequence(t *testing.T) {
	// Period-4 pattern: order-2 context disambiguates, stride cannot track.
	pattern := []uint64{3, 17, 3, 99}
	seq := seqPeriodic(400, pattern)
	fcm := MeasureRate(NewFCM(DefaultFCMOrder, DefaultFCMTableBits), seq)
	stride := MeasureRate(NewStride(), seq)
	if fcm < 0.9 {
		t.Errorf("FCM rate on periodic seq = %v, want >= 0.9", fcm)
	}
	if fcm <= stride {
		t.Errorf("FCM (%v) should beat stride (%v) on periodic data", fcm, stride)
	}
}

func TestFCMFailsOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := make([]uint64, 1000)
	for i := range seq {
		seq[i] = rng.Uint64()
	}
	r := MeasureRate(NewFCM(DefaultFCMOrder, DefaultFCMTableBits), seq)
	if r > 0.02 {
		t.Errorf("FCM rate on random seq = %v, want ~0", r)
	}
}

func TestStrideBeatsFCMOnLongStride(t *testing.T) {
	// Strided addresses never repeat, so context prediction cannot help.
	seq := seqStride(500, 0, 24)
	stride := MeasureRate(NewStride(), seq)
	fcm := MeasureRate(NewFCM(DefaultFCMOrder, DefaultFCMTableBits), seq)
	if stride <= fcm {
		t.Errorf("stride (%v) should beat FCM (%v) on strided data", stride, fcm)
	}
}

func TestHybridTracksBestComponent(t *testing.T) {
	cases := []struct {
		name string
		seq  []uint64
	}{
		{"stride", seqStride(300, 9, 16)},
		{"periodic", seqPeriodic(300, []uint64{1, 5, 2, 5, 9})},
		{"constant", seqConst(300, 123)},
	}
	for _, tc := range cases {
		hybrid := MeasureRate(NewHybrid(DefaultFCMOrder, DefaultFCMTableBits), tc.seq)
		stride := MeasureRate(NewStride(), tc.seq)
		fcm := MeasureRate(NewFCM(DefaultFCMOrder, DefaultFCMTableBits), tc.seq)
		best := stride
		if fcm > best {
			best = fcm
		}
		if hybrid < best-0.1 {
			t.Errorf("%s: hybrid %v far below best component %v", tc.name, hybrid, best)
		}
	}
}

func TestColdPredictorsDecline(t *testing.T) {
	for _, p := range []Predictor{NewLastValue(), NewStride(), NewFCM(2, 8), NewHybrid(2, 8)} {
		if _, ok := p.Predict(); ok {
			t.Errorf("%s: cold predictor claims a prediction", p.Name())
		}
	}
}

func TestResetReturnsToCold(t *testing.T) {
	for _, p := range []Predictor{NewLastValue(), NewStride(), NewFCM(2, 8), NewHybrid(2, 8)} {
		for _, v := range seqStride(20, 0, 4) {
			p.Update(v)
		}
		if _, ok := p.Predict(); !ok {
			t.Errorf("%s: trained predictor has no prediction", p.Name())
		}
		p.Reset()
		if _, ok := p.Predict(); ok {
			t.Errorf("%s: Reset did not return predictor to cold state", p.Name())
		}
	}
}

func TestRateMeterCountsExactly(t *testing.T) {
	m := RateMeter{P: NewLastValue()}
	m.Observe(5) // no prediction yet: miss
	m.Observe(5) // predicted 5: hit
	m.Observe(5) // hit
	m.Observe(9) // miss
	if m.Total != 4 || m.Hits != 2 {
		t.Errorf("meter = %d/%d, want 2/4", m.Hits, m.Total)
	}
	if r := m.Rate(); r != 0.5 {
		t.Errorf("Rate() = %v, want 0.5", r)
	}
}

func TestEmptyRateIsZero(t *testing.T) {
	m := RateMeter{P: NewStride()}
	if m.Rate() != 0 {
		t.Error("empty meter rate must be 0")
	}
}

// TestPropertyRatesAreValidFractions checks that every predictor yields a
// rate in [0,1] on arbitrary sequences and never panics.
func TestPropertyRatesAreValidFractions(t *testing.T) {
	check := func(vals []uint64) bool {
		for _, p := range []Predictor{NewLastValue(), NewStride(), NewFCM(2, 6), NewHybrid(2, 6)} {
			r := MeasureRate(p, vals)
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStridePerfectAfterWarmup: for any start/stride, after the
// two-delta warmup every prediction on a pure stride sequence hits.
func TestPropertyStridePerfectAfterWarmup(t *testing.T) {
	check := func(start, stride uint64) bool {
		p := NewStride()
		v := start
		for i := 0; i < 3; i++ { // warmup
			p.Update(v)
			v += stride
		}
		for i := 0; i < 50; i++ {
			pred, ok := p.Predict()
			if !ok || pred != v {
				return false
			}
			p.Update(v)
			v += stride
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFCMDeterministic: an FCM fed the same sequence twice from
// Reset produces identical predictions.
func TestPropertyFCMDeterministic(t *testing.T) {
	check := func(vals []uint64) bool {
		p := NewFCM(3, 8)
		var first []uint64
		var firstOK []bool
		for _, v := range vals {
			pv, ok := p.Predict()
			first = append(first, pv)
			firstOK = append(firstOK, ok)
			p.Update(v)
		}
		p.Reset()
		for i, v := range vals {
			pv, ok := p.Predict()
			if pv != first[i] || ok != firstOK[i] {
				return false
			}
			p.Update(v)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
