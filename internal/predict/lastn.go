package predict

// DefaultLNVDepth is the last-n-value ring depth used when a config leaves
// it unset.
const DefaultLNVDepth = 4

// LastN is the last-n-value predictor: it remembers the most recent N
// values of the sequence and predicts the most frequent one, breaking ties
// toward the most recently observed. Depth 1 degenerates to last-value;
// larger depths ride out short excursions in mostly-constant streams
// (e.g. a pointer that alternates between two arenas) that would thrash a
// pure last-value predictor.
type LastN struct {
	depth int
	ring  []uint64
	n     int // values stored, <= depth
	head  int // next write slot
}

// NewLastN returns a cold last-n-value predictor; depth < 1 is clamped
// to 1.
func NewLastN(depth int) *LastN {
	if depth < 1 {
		depth = 1
	}
	return &LastN{depth: depth, ring: make([]uint64, depth)}
}

// at returns the i-th most recent value, i in [0, p.n).
func (p *LastN) at(i int) uint64 {
	return p.ring[((p.head-1-i)%p.depth+p.depth)%p.depth]
}

// Predict implements Predictor: the modal value of the ring, ties broken
// toward recency. Quadratic in depth, which is small by construction.
func (p *LastN) Predict() (uint64, bool) {
	if p.n == 0 {
		return 0, false
	}
	best, bestCount := p.at(0), 0
	for i := 0; i < p.n; i++ {
		v := p.at(i)
		count := 0
		for j := 0; j < p.n; j++ {
			if p.at(j) == v {
				count++
			}
		}
		// Strict > keeps the earliest (most recent) candidate on ties.
		if count > bestCount {
			best, bestCount = v, count
		}
	}
	return best, true
}

// Update implements Predictor.
func (p *LastN) Update(actual uint64) {
	p.ring[p.head] = actual
	p.head = (p.head + 1) % p.depth
	if p.n < p.depth {
		p.n++
	}
}

// Name implements Predictor.
func (p *LastN) Name() string { return "lnv" }

// Reset implements Predictor. The ring is retained (no allocation).
func (p *LastN) Reset() { p.n, p.head = 0, 0 }
