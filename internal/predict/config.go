package predict

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Config names and parameterizes the dynamic value-prediction scheme a
// simulation runs with, mirroring machine.MemConfig for the memory axis: a
// nil *Config means the legacy behavior (per-site profile-selected
// stride/FCM, no runtime confidence gating), named stock configs cover the
// zoo, and Key() renders a canonical string safe to embed in compiled-plan
// cache keys.
//
// The scheme is a compile-side knob: it steers which loads the speculate
// pass selects and which hardware predictor each site gets. Confidence
// gating is the run-time half: per-site saturating counters suppress LdPred
// issue at sites the hardware has recently mispredicted.
type Config struct {
	// Scheme is the stock scheme name: "profiled" (legacy profile argmax
	// over stride/FCM), "auto" (argmax over the full zoo), or a forced
	// scheme for every site: "last", "stride", "fcm", "hybrid", "lnv",
	// "vtage".
	Scheme string

	// FCMOrder and FCMBits size the FCM component ("fcm" and "hybrid");
	// zero means the package defaults.
	FCMOrder int
	FCMBits  int

	// LNVDepth is the last-n-value ring depth ("lnv"); zero means
	// DefaultLNVDepth.
	LNVDepth int

	// VTAGEBits sizes each tagged component table at 2^bits entries
	// ("vtage"); zero means DefaultVTAGEBits.
	VTAGEBits int

	// ConfBits is the width of the per-site saturating confidence counter;
	// zero means DefaultConfBits. ConfThreshold is the count a site must
	// reach before its LdPred issues a prediction; zero disables gating
	// entirely (every selected site always predicts — the legacy
	// behavior). Gating composes with any scheme, including "profiled".
	ConfBits      int
	ConfThreshold int
}

// ConfigError is a typed predictor-config validation failure naming the
// offending field, mirroring machine.ConfigError for memory configs.
type ConfigError struct {
	Config string // scheme spec as given, e.g. "vtage:bits=99"
	Field  string // e.g. "Scheme", "VTAGEBits", "ConfThreshold"
	Value  string // offending value as written
	Reason string // e.g. "must be between 2 and 16"
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("predictor config %q: %s = %s %s", e.Config, e.Field, e.Value, e.Reason)
}

// Stock scheme names, in the order user-facing messages list them.
var stockSchemes = []string{"profiled", "auto", "last", "stride", "fcm", "hybrid", "lnv", "vtage"}

// StockNames returns the accepted scheme names for error messages and
// request validation.
func StockNames() []string {
	out := make([]string, len(stockSchemes))
	copy(out, stockSchemes)
	return out
}

func knownScheme(name string) bool {
	for _, s := range stockSchemes {
		if s == name {
			return true
		}
	}
	return false
}

// paramApplies maps each spec key to the schemes it parameterizes. The
// confidence keys apply to every scheme.
var paramApplies = map[string][]string{
	"order": {"fcm", "hybrid"},
	"bits":  {"fcm", "hybrid", "vtage"},
	"depth": {"lnv"},
	"conf":  stockSchemes,
	"cbits": stockSchemes,
}

// Parse decodes a predictor spec of the form "name" or
// "name:key=val,key=val". Accepted keys: order and bits (fcm, hybrid),
// bits (vtage), depth (lnv), and conf / cbits (any scheme; conf > 0
// enables runtime confidence gating with the given issue threshold, cbits
// sets the counter width). Errors are *ConfigError values naming the
// field, never a panic, for any input bytes.
func Parse(spec string) (*Config, error) {
	name, params, _ := strings.Cut(spec, ":")
	if !knownScheme(name) {
		return nil, &ConfigError{Config: spec, Field: "Scheme", Value: name,
			Reason: "is not a stock scheme (" + strings.Join(stockSchemes, ", ") + ")"}
	}
	c := &Config{Scheme: name}
	if params == "" {
		if strings.Contains(spec, ":") {
			return nil, &ConfigError{Config: spec, Field: "Params", Value: "",
				Reason: "empty parameter list after ':'"}
		}
		return c, c.Validate()
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || key == "" {
			return nil, &ConfigError{Config: spec, Field: "Params", Value: kv,
				Reason: "is not key=value"}
		}
		applies, known := paramApplies[key]
		if !known {
			return nil, &ConfigError{Config: spec, Field: "Params", Value: key,
				Reason: "is not a known parameter (order, bits, depth, conf, cbits)"}
		}
		if seen[key] {
			return nil, &ConfigError{Config: spec, Field: "Params", Value: key,
				Reason: "given more than once"}
		}
		seen[key] = true
		ok = false
		for _, s := range applies {
			if s == name {
				ok = true
				break
			}
		}
		if !ok {
			return nil, &ConfigError{Config: spec, Field: "Params", Value: key,
				Reason: "does not apply to scheme " + strconv.Quote(name)}
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, &ConfigError{Config: spec, Field: key, Value: val,
				Reason: "is not an integer"}
		}
		switch key {
		case "order":
			c.FCMOrder = n
		case "bits":
			if name == "vtage" {
				c.VTAGEBits = n
			} else {
				c.FCMBits = n
			}
		case "depth":
			c.LNVDepth = n
		case "conf":
			c.ConfThreshold = n
		case "cbits":
			c.ConfBits = n
		}
	}
	if err := c.Validate(); err != nil {
		if ce, isCE := err.(*ConfigError); isCE {
			ce.Config = spec // report the spec as written, not the normalized name
		}
		return nil, err
	}
	return c, nil
}

// Validate checks every parameter range. A nil config is valid (it means
// "profiled" with gating off).
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	fail := func(field string, value int, reason string) error {
		return &ConfigError{Config: c.Scheme, Field: field,
			Value: strconv.Itoa(value), Reason: reason}
	}
	if !knownScheme(c.Scheme) {
		return &ConfigError{Config: c.Scheme, Field: "Scheme", Value: c.Scheme,
			Reason: "is not a stock scheme (" + strings.Join(stockSchemes, ", ") + ")"}
	}
	if c.FCMOrder != 0 && (c.FCMOrder < 1 || c.FCMOrder > 8) {
		return fail("FCMOrder", c.FCMOrder, "must be between 1 and 8")
	}
	if c.FCMBits != 0 && (c.FCMBits < 2 || c.FCMBits > 20) {
		return fail("FCMBits", c.FCMBits, "must be between 2 and 20")
	}
	if c.LNVDepth != 0 && (c.LNVDepth < 1 || c.LNVDepth > 64) {
		return fail("LNVDepth", c.LNVDepth, "must be between 1 and 64")
	}
	if c.VTAGEBits != 0 && (c.VTAGEBits < 2 || c.VTAGEBits > 16) {
		return fail("VTAGEBits", c.VTAGEBits, "must be between 2 and 16")
	}
	if c.ConfBits != 0 && (c.ConfBits < 1 || c.ConfBits > 8) {
		return fail("ConfBits", c.ConfBits, "must be between 1 and 8")
	}
	if c.ConfThreshold < 0 {
		return fail("ConfThreshold", c.ConfThreshold, "must be non-negative")
	}
	if max := c.ConfMax(); c.ConfThreshold > max {
		return fail("ConfThreshold", c.ConfThreshold,
			fmt.Sprintf("exceeds the %d-bit counter maximum %d", c.confBits(), max))
	}
	return nil
}

func (c *Config) confBits() int {
	if c == nil || c.ConfBits == 0 {
		return DefaultConfBits
	}
	return c.ConfBits
}

// ConfMax is the saturation value of the configured confidence counter.
func (c *Config) ConfMax() int { return (1 << c.confBits()) - 1 }

// Gating reports whether runtime confidence gating is enabled.
func (c *Config) Gating() bool { return c != nil && c.ConfThreshold > 0 }

// SchemeName returns the effective scheme name; nil means "profiled".
func (c *Config) SchemeName() string {
	if c == nil || c.Scheme == "" {
		return "profiled"
	}
	return c.Scheme
}

// Order returns the effective FCM order.
func (c *Config) Order() int {
	if c == nil || c.FCMOrder == 0 {
		return DefaultFCMOrder
	}
	return c.FCMOrder
}

// TableBits returns the effective FCM table size exponent.
func (c *Config) TableBits() int {
	if c == nil || c.FCMBits == 0 {
		return DefaultFCMTableBits
	}
	return c.FCMBits
}

// Depth returns the effective last-n-value ring depth.
func (c *Config) Depth() int {
	if c == nil || c.LNVDepth == 0 {
		return DefaultLNVDepth
	}
	return c.LNVDepth
}

// TagTableBits returns the effective VTAGE component table size exponent.
func (c *Config) TagTableBits() int {
	if c == nil || c.VTAGEBits == 0 {
		return DefaultVTAGEBits
	}
	return c.VTAGEBits
}

// Key renders the canonical cache-key form: scheme name plus every
// non-default parameter in a fixed order. Two configs with equal keys
// behave identically; the nil config's key is "profiled". Compiled-plan
// caches embed this key, so its format is load-bearing — change it only
// with a cache-version bump.
func (c *Config) Key() string {
	if c == nil {
		return "profiled"
	}
	var parts []string
	add := func(k string, v int) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.Itoa(v))
		}
	}
	switch c.SchemeName() {
	case "fcm", "hybrid":
		add("order", c.FCMOrder)
		add("bits", c.FCMBits)
	case "lnv":
		add("depth", c.LNVDepth)
	case "vtage":
		add("bits", c.VTAGEBits)
	}
	if c.ConfThreshold > 0 {
		add("conf", c.ConfThreshold)
		add("cbits", c.ConfBits)
	}
	if len(parts) == 0 {
		return c.SchemeName()
	}
	sort.Strings(parts)
	return c.SchemeName() + ":" + strings.Join(parts, ",")
}
