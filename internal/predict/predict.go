// Package predict implements the value predictors the paper profiles with:
// last-value, stride (two-delta), and finite-context-method (FCM, two-level)
// predictors, plus the hybrid selector the paper uses ("the final value
// prediction rate for each operation ... was chosen to be the higher value
// out of these two prediction rates", §3).
//
// The same implementations serve two roles: per-site instances measure
// profiled predictability of load-value sequences, and table-backed
// instances act as the hardware value predictor in the dynamic dual-engine
// simulation.
package predict

// Predictor produces a prediction for the next value in a sequence and is
// then trained with the actual outcome.
type Predictor interface {
	// Predict returns the predicted next value. ok is false when the
	// predictor has no basis yet (cold start); hardware would still supply
	// the value (and usually mispredict), so accounting treats !ok as a
	// miss.
	Predict() (value uint64, ok bool)
	// Update trains the predictor with the actual value.
	Update(actual uint64)
	// Name identifies the scheme.
	Name() string
	// Reset returns the predictor to its cold state.
	Reset()
}

// LastValue predicts the previous value.
type LastValue struct {
	last uint64
	seen bool
}

// NewLastValue returns a cold last-value predictor.
func NewLastValue() *LastValue { return &LastValue{} }

// Predict implements Predictor.
func (p *LastValue) Predict() (uint64, bool) { return p.last, p.seen }

// Update implements Predictor.
func (p *LastValue) Update(actual uint64) { p.last, p.seen = actual, true }

// Name implements Predictor.
func (p *LastValue) Name() string { return "last" }

// Reset implements Predictor.
func (p *LastValue) Reset() { *p = LastValue{} }

// Stride is the classic two-delta stride predictor: the stride is committed
// only when the same delta is observed twice in a row, which keeps one-off
// jumps from destroying a stable stride.
type Stride struct {
	last      uint64
	stride    uint64
	lastDelta uint64
	count     int // values seen
}

// NewStride returns a cold two-delta stride predictor.
func NewStride() *Stride { return &Stride{} }

// Predict implements Predictor.
func (p *Stride) Predict() (uint64, bool) {
	if p.count == 0 {
		return 0, false
	}
	return p.last + p.stride, true
}

// Update implements Predictor.
func (p *Stride) Update(actual uint64) {
	if p.count > 0 {
		delta := actual - p.last
		if delta == p.lastDelta {
			p.stride = delta
		}
		p.lastDelta = delta
	}
	p.last = actual
	p.count++
}

// Name implements Predictor.
func (p *Stride) Name() string { return "stride" }

// Reset implements Predictor.
func (p *Stride) Reset() { *p = Stride{} }

// FCM is an order-N finite context method predictor: a value history
// register is hashed into a prediction table whose entries hold the value
// that followed that context last time.
type FCM struct {
	order   int
	mask    uint64
	history []uint64
	filled  int
	table   []fcmEntry
	name    string
}

type fcmEntry struct {
	value uint64
	valid bool
}

// DefaultFCMOrder is the context depth used by the profiling runs.
const DefaultFCMOrder = 2

// DefaultFCMTableBits sizes the profiling FCM tables (2^bits entries).
const DefaultFCMTableBits = 12

// NewFCM returns a cold FCM predictor with 2^tableBits entries.
func NewFCM(order, tableBits int) *FCM {
	if order < 1 {
		order = 1
	}
	if tableBits < 2 {
		tableBits = 2
	}
	return &FCM{
		order:   order,
		mask:    (1 << tableBits) - 1,
		history: make([]uint64, 0, order),
		table:   make([]fcmEntry, 1<<tableBits),
		name:    "fcm",
	}
}

func (p *FCM) hash() uint64 {
	var h uint64 = 14695981039346656037 // FNV offset basis
	for _, v := range p.history {
		// Fold each value and mix (FNV-1a over the 8 bytes, unrolled).
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return h & p.mask
}

// Predict implements Predictor.
func (p *FCM) Predict() (uint64, bool) {
	if len(p.history) < p.order {
		return 0, false
	}
	e := p.table[p.hash()]
	return e.value, e.valid
}

// Update implements Predictor.
func (p *FCM) Update(actual uint64) {
	if len(p.history) == p.order {
		idx := p.hash()
		p.table[idx] = fcmEntry{value: actual, valid: true}
		copy(p.history, p.history[1:])
		p.history[p.order-1] = actual
		return
	}
	p.history = append(p.history, actual)
}

// Name implements Predictor.
func (p *FCM) Name() string { return p.name }

// Reset implements Predictor.
func (p *FCM) Reset() {
	p.history = p.history[:0]
	for i := range p.table {
		p.table[i] = fcmEntry{}
	}
}

// Hybrid runs a stride and an FCM predictor side by side and predicts with
// whichever has the higher running hit count, mirroring the paper's
// max(stride, FCM) profile selection as a runtime tournament.
type Hybrid struct {
	stride *Stride
	fcm    *FCM
	sHits  int
	fHits  int
}

// NewHybrid returns a cold hybrid predictor.
func NewHybrid(order, tableBits int) *Hybrid {
	return &Hybrid{stride: NewStride(), fcm: NewFCM(order, tableBits)}
}

// Predict implements Predictor.
func (p *Hybrid) Predict() (uint64, bool) {
	sv, sok := p.stride.Predict()
	fv, fok := p.fcm.Predict()
	switch {
	case sok && (!fok || p.sHits >= p.fHits):
		return sv, true
	case fok:
		return fv, true
	default:
		return 0, false
	}
}

// Update implements Predictor.
func (p *Hybrid) Update(actual uint64) {
	if v, ok := p.stride.Predict(); ok && v == actual {
		p.sHits++
	}
	if v, ok := p.fcm.Predict(); ok && v == actual {
		p.fHits++
	}
	p.stride.Update(actual)
	p.fcm.Update(actual)
}

// Name implements Predictor.
func (p *Hybrid) Name() string { return "hybrid" }

// Reset implements Predictor.
func (p *Hybrid) Reset() {
	p.stride.Reset()
	p.fcm.Reset()
	p.sHits, p.fHits = 0, 0
}

// Recorder wraps a predictor and logs every training value in Update
// order. The conformance harness records a site's dynamic value stream on
// one simulation, then replays it through a Replay predictor to model a
// perfect (oracle) value predictor on the next.
type Recorder struct {
	P   Predictor
	Log []uint64
}

// Predict implements Predictor.
func (r *Recorder) Predict() (uint64, bool) { return r.P.Predict() }

// Update implements Predictor.
func (r *Recorder) Update(actual uint64) {
	r.Log = append(r.Log, actual)
	r.P.Update(actual)
}

// Name implements Predictor.
func (r *Recorder) Name() string { return "record(" + r.P.Name() + ")" }

// Reset implements Predictor.
func (r *Recorder) Reset() {
	r.P.Reset()
	r.Log = nil
}

// Replay predicts a prerecorded value sequence — the conformance
// harness's perfect predictor. Unlike the trained predictors it advances
// on Predict, not Update: the in-order engine issues the i-th LdPred of a
// site before the (i-1)-th check has resolved (and trained), so aligning
// on prediction order is what makes every prediction correct.
type Replay struct {
	Seq []uint64
	i   int
}

// Predict implements Predictor. It consumes the next recorded value; an
// exhausted sequence reports cold (ok=false).
func (p *Replay) Predict() (uint64, bool) {
	if p.i >= len(p.Seq) {
		return 0, false
	}
	v := p.Seq[p.i]
	p.i++
	return v, true
}

// Update implements Predictor (no training; the sequence is the truth).
func (p *Replay) Update(actual uint64) {}

// Name implements Predictor.
func (p *Replay) Name() string { return "replay" }

// Reset implements Predictor.
func (p *Replay) Reset() { p.i = 0 }

// RateMeter measures a predictor's hit rate over a streamed value sequence.
type RateMeter struct {
	P     Predictor
	Hits  int
	Total int
}

// Observe feeds one value: score the current prediction, then train.
func (m *RateMeter) Observe(actual uint64) {
	if v, ok := m.P.Predict(); ok && v == actual {
		m.Hits++
	}
	m.Total++
	m.P.Update(actual)
}

// Rate returns the hit fraction observed so far (0 for an empty stream).
func (m *RateMeter) Rate() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Total)
}

// MeasureRate scores a predictor over a complete sequence.
func MeasureRate(p Predictor, seq []uint64) float64 {
	m := RateMeter{P: p}
	for _, v := range seq {
		m.Observe(v)
	}
	return m.Rate()
}
