package predict

import "testing"

// TestStrideEdgeTable drives the two-delta stride predictor through the
// numeric edges: zero stride, negative strides (two's-complement deltas),
// and sequences that wrap the uint64 boundary in both directions. All
// arithmetic is mod 2^64, so a locked stride must keep hitting straight
// through the wrap.
func TestStrideEdgeTable(t *testing.T) {
	neg := func(v uint64) uint64 { return -v }
	cases := []struct {
		name    string
		start   uint64
		stride  uint64
		n       int
		minRate float64
	}{
		{"zero-stride", 7, 0, 100, 0.97},
		{"negative-small", 1 << 20, neg(5), 100, 0.97},
		{"negative-one", 50, neg(1), 100, 0.97},
		{"wrap-ascending", ^uint64(0) - 10, 3, 100, 0.97},
		{"wrap-descending", 10, neg(7), 100, 0.97},
		{"wrap-huge-stride", 5, 1 << 63, 100, 0.97},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if r := MeasureRate(NewStride(), seqStride(tc.n, tc.start, tc.stride)); r < tc.minRate {
				t.Errorf("rate %.3f, want >= %.2f", r, tc.minRate)
			}
		})
	}
}

// TestStrideExactAcrossWrap pins exact predictions, not just a rate:
// once the delta repeats, every prediction equals last+stride even as the
// sequence crosses the uint64 boundary.
func TestStrideExactAcrossWrap(t *testing.T) {
	p := NewStride()
	v := ^uint64(0) - 5 // three steps of +4 from here wrap past zero
	for i := 0; i < 3; i++ {
		p.Update(v)
		v += 4
	}
	for i := 0; i < 8; i++ {
		pred, ok := p.Predict()
		if !ok || pred != v {
			t.Fatalf("step %d: predicted (%d, %v), want (%d, true)", i, pred, ok, v)
		}
		p.Update(v)
		v += 4
	}
}

// TestFCMPeriodEdges covers the degenerate and oversized context periods:
// a period-1 (constant) stream is the smallest learnable context, and a
// period longer than the table has more distinct contexts than slots, so
// the predictor degrades (collisions evict) but must stay a valid
// predictor. The table rows vary order and table size together.
func TestFCMPeriodEdges(t *testing.T) {
	period16 := make([]uint64, 16)
	for i := range period16 {
		period16[i] = uint64(1000 + 37*i)
	}
	cases := []struct {
		name      string
		order     int
		tableBits int
		seq       []uint64
		minRate   float64
		maxRate   float64
	}{
		{"period-1-order-1", 1, 4, seqConst(100, 42), 0.9, 1},
		{"period-1-default", DefaultFCMOrder, DefaultFCMTableBits, seqConst(100, 42), 0.9, 1},
		{"period-16-big-table", 2, 12, seqPeriodic(320, period16), 0.9, 1},
		// 16 distinct order-2 contexts hashed into 4 slots: collisions are
		// guaranteed, perfection is impossible, validity is required.
		{"period-16-tiny-table", 2, 2, seqPeriodic(320, period16), 0, 0.9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := MeasureRate(NewFCM(tc.order, tc.tableBits), tc.seq)
			if r < tc.minRate || r > tc.maxRate {
				t.Errorf("rate %.3f outside [%.2f, %.2f]", r, tc.minRate, tc.maxRate)
			}
		})
	}
}

// TestFCMTinyTableStillBeatenByBigTable pins that the degradation in the
// oversized-period row above really is collision damage: the same stream
// through a table large enough to hold every context predicts strictly
// better.
func TestFCMTinyTableStillBeatenByBigTable(t *testing.T) {
	period := make([]uint64, 16)
	for i := range period {
		period[i] = uint64(i * i)
	}
	seq := seqPeriodic(320, period)
	big := MeasureRate(NewFCM(2, 12), seq)
	tiny := MeasureRate(NewFCM(2, 2), seq)
	if big <= tiny {
		t.Errorf("big table %.3f not above tiny table %.3f on a period-16 stream", big, tiny)
	}
}

// TestFCMConstructorClampsDegenerateSizes: order < 1 and tableBits < 2 are
// clamped, not rejected, and the clamped predictor still learns.
func TestFCMConstructorClampsDegenerateSizes(t *testing.T) {
	p := NewFCM(0, 0)
	if r := MeasureRate(p, seqConst(50, 9)); r < 0.9 {
		t.Errorf("clamped FCM rate %.3f on constant stream, want >= 0.9", r)
	}
}

// TestHybridTieBreaksToStride pins the tournament's tie rule: with equal
// hit counts and both components offering (different) predictions, the
// hybrid sides with stride — the cheaper of the paper's two hardware
// schemes. Tipping the count by a single FCM hit flips the choice.
func TestHybridTieBreaksToStride(t *testing.T) {
	h := NewHybrid(1, 4)
	// Stride component: locked on +10, will predict 40.
	for _, v := range []uint64{10, 20, 30} {
		h.stride.Update(v)
	}
	// FCM component (order 1): context 7 maps to 99, history sits at 7,
	// so it will predict 99.
	for _, v := range []uint64{7, 99, 7} {
		h.fcm.Update(v)
	}
	if sv, ok := h.stride.Predict(); !ok || sv != 40 {
		t.Fatalf("stride component predicts (%d, %v), want (40, true)", sv, ok)
	}
	if fv, ok := h.fcm.Predict(); !ok || fv != 99 {
		t.Fatalf("fcm component predicts (%d, %v), want (99, true)", fv, ok)
	}

	h.sHits, h.fHits = 3, 3
	if v, ok := h.Predict(); !ok || v != 40 {
		t.Errorf("tied tournament predicted (%d, %v), want stride's (40, true)", v, ok)
	}
	h.fHits++
	if v, ok := h.Predict(); !ok || v != 99 {
		t.Errorf("fcm-ahead tournament predicted (%d, %v), want fcm's (99, true)", v, ok)
	}
}

// TestRecorderLogsUpdateOrder: the Recorder passes predictions through
// untouched and logs exactly the training stream, which is what the
// conformance harness replays as a perfect predictor.
func TestRecorderLogsUpdateOrder(t *testing.T) {
	r := &Recorder{P: NewStride()}
	seq := seqStride(10, 3, 5)
	for _, v := range seq {
		r.Update(v)
	}
	if len(r.Log) != len(seq) {
		t.Fatalf("logged %d values, trained with %d", len(r.Log), len(seq))
	}
	for i, v := range seq {
		if r.Log[i] != v {
			t.Fatalf("log[%d] = %d, want %d", i, r.Log[i], v)
		}
	}
	want, wantOK := r.P.Predict()
	got, gotOK := r.Predict()
	if got != want || gotOK != wantOK {
		t.Errorf("Recorder.Predict = (%d, %v), inner = (%d, %v)", got, gotOK, want, wantOK)
	}
	r.Reset()
	if len(r.Log) != 0 {
		t.Error("Reset kept the log")
	}
}

// TestLastNTieBreakTable pins the last-n-value selection rule: the modal
// ring value wins, and an exact frequency tie goes to the most recently
// observed candidate. The final row pins that a new observation flips a
// tie the other way.
func TestLastNTieBreakTable(t *testing.T) {
	cases := []struct {
		name  string
		depth int
		feed  []uint64
		want  uint64
	}{
		{"majority-wins", 4, []uint64{5, 5, 5, 7}, 5},
		{"majority-wins-late", 4, []uint64{7, 5, 5, 5}, 5},
		{"tie-to-most-recent", 4, []uint64{5, 5, 7, 7}, 7},
		{"tie-flips-on-update", 4, []uint64{5, 5, 7, 7, 5}, 5},
		{"depth-1-is-last-value", 1, []uint64{9, 3, 8}, 8},
		{"clamped-depth", 0, []uint64{9, 3, 8}, 8},
		{"ring-evicts-oldest", 3, []uint64{5, 5, 7, 7, 7}, 7},
		{"partial-fill", 8, []uint64{4, 4, 6}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewLastN(tc.depth)
			for _, v := range tc.feed {
				p.Update(v)
			}
			if v, ok := p.Predict(); !ok || v != tc.want {
				t.Errorf("predicted (%d, %v), want (%d, true)", v, ok, tc.want)
			}
		})
	}
	if _, ok := NewLastN(4).Predict(); ok {
		t.Error("cold last-n predictor claims a prediction")
	}
}

// TestLastNBeatsLastValueOnAlternation: the motivating stream — a value
// that mostly repeats but takes periodic one-cycle excursions — thrashes
// last-value (every excursion costs two misses) while the modal ring
// predicts the dominant value throughout.
func TestLastNBeatsLastValueOnAlternation(t *testing.T) {
	seq := make([]uint64, 0, 120)
	for i := 0; i < 30; i++ {
		seq = append(seq, 100, 100, 100, 777) // 1-in-4 excursion
	}
	lnv := MeasureRate(NewLastN(4), seq)
	last := MeasureRate(NewLastValue(), seq)
	if lnv <= last {
		t.Errorf("lnv %.3f not above last-value %.3f on excursion stream", lnv, last)
	}
}

// TestVTAGEPeriodicAcrossRingWrap: a periodic stream longer than the
// site's 8-deep history ring forces the ring to wrap continuously; since
// every value in the pattern is distinct, the order-1 component alone
// determines each successor, so the predictor must stay accurate through
// the wraps — the pin that histAt indexing is consistent mod the ring
// size.
func TestVTAGEPeriodicAcrossRingWrap(t *testing.T) {
	pattern := make([]uint64, 12) // period > vtageMaxHist
	for i := range pattern {
		pattern[i] = uint64(5000 + 31*i)
	}
	site := NewVTAGE(DefaultVTAGEBits).Site(0)
	if r := MeasureRate(site, seqPeriodic(480, pattern)); r < 0.85 {
		t.Errorf("rate %.3f on period-12 stream, want >= 0.85", r)
	}
}

// TestVTAGETinyTableStillBeatenByBigTable mirrors the FCM pin: a stream
// with more distinct contexts than a tiny table has slots degrades under
// collisions and eviction, and a table large enough to hold every context
// must predict strictly better.
func TestVTAGETinyTableStillBeatenByBigTable(t *testing.T) {
	pattern := make([]uint64, 64)
	for i := range pattern {
		pattern[i] = uint64(i*i + 17)
	}
	seq := seqPeriodic(640, pattern)
	big := MeasureRate(NewVTAGE(12).Site(0), seq)
	tiny := MeasureRate(NewVTAGE(2).Site(0), seq)
	if big <= tiny {
		t.Errorf("big table %.3f not above tiny table %.3f on a period-64 stream", big, tiny)
	}
}

// TestVTAGETagAliasingBetweenSites pins that the table really is shared
// hardware: with 4-entry components and 8-bit tags, some other site's
// (index, tag) pair collides with a trained site's entry, and the aliased
// site then reads a value it never observed. The colliding site is found
// by searching site IDs with the same hash the predictor uses.
func TestVTAGETagAliasingBetweenSites(t *testing.T) {
	tab := NewVTAGE(2)
	a := tab.Site(0)
	// A constant stream never leaves the base predictor, so alternate two
	// values: the base mispredicts every step and the order-1 component
	// learns [99] -> 42 and [42] -> 99.
	for i := 0; i < 20; i++ {
		a.Update(42)
		a.Update(99)
	}
	wantIdx, wantTag := a.hash(1) // context [99], entry holds 42
	if e := &tab.comps[0][wantIdx]; e.ctr == 0 || e.tag != wantTag || e.value != 42 {
		t.Fatalf("site 0 order-1 entry not trained: %+v", e)
	}
	for id := 1; id < 1<<20; id++ {
		b := tab.Site(id)
		b.Update(7) // one observation: base state only, no allocation yet
		if idx, tag := b.hash(1); idx == wantIdx && tag == wantTag {
			v, ok := b.Predict()
			if !ok || v != 42 {
				t.Fatalf("aliased site %d predicted (%d, %v), want site 0's (42, true)", id, v, ok)
			}
			return
		}
	}
	t.Fatal("no aliasing site ID found in 2^20 candidates (hash changed?)")
}

// TestVTAGESiteResetKeepsSharedTable pins the lifecycle contract the
// engine's lazy epoch reset depends on: resetting one site view clears
// only its local history, never the shared table another site trained.
func TestVTAGESiteResetKeepsSharedTable(t *testing.T) {
	tab := NewVTAGE(6)
	a, b := tab.Site(1), tab.Site(2)
	for i := 0; i < 30; i++ {
		a.Update(11)
		a.Update(33) // alternate so the shared table actually trains
		b.Update(22)
	}
	aIdx, aTag := a.hash(1)
	before := tab.comps[0][aIdx]
	if before.ctr == 0 || before.tag != aTag {
		t.Fatalf("site 1 order-1 entry not trained: %+v", before)
	}
	b.Reset()
	if got := tab.comps[0][aIdx]; got != before {
		t.Errorf("sibling Reset changed a trained entry: %+v -> %+v", before, got)
	}
	if _, ok := b.Predict(); ok {
		t.Error("reset site still claims a base prediction")
	}
	for i := 0; i < 30; i++ {
		b.Update(22)
	}
	if v, ok := b.Predict(); !ok || v != 22 {
		t.Errorf("retrained site predicted (%d, %v), want (22, true)", v, ok)
	}
	tab.Reset()
	if got := tab.comps[0][aIdx]; got.ctr != 0 {
		t.Errorf("table Reset left a live entry: %+v", got)
	}
}

// TestConfCounterSaturationAndDecay drives the gating counter through its
// edges: monotone climb to saturation (no overflow past max), threshold
// crossing exactly at the configured count, and the reset-on-mispredict
// decay that makes a site re-earn trust from zero.
func TestConfCounterSaturationAndDecay(t *testing.T) {
	var c ConfCounter
	for i := 0; i < 20; i++ {
		c.Train(true, 7)
		if int(c) > 7 {
			t.Fatalf("counter overflowed saturation: %d", c)
		}
	}
	if int(c) != 7 {
		t.Errorf("counter = %d after 20 correct, want saturated 7", c)
	}
	if !c.Confident(7) || !c.Confident(1) {
		t.Error("saturated counter not confident")
	}
	c.Train(false, 7)
	if int(c) != 0 {
		t.Errorf("counter = %d after mispredict, want 0", c)
	}
	if c.Confident(1) {
		t.Error("reset counter still confident at threshold 1")
	}
	for i := 0; i < 3; i++ {
		c.Train(true, 7)
	}
	if c.Confident(4) || !c.Confident(3) {
		t.Errorf("counter = %d: threshold crossing off by one", c)
	}
	// A 1-bit counter saturates at 1 and still obeys both policies.
	var one ConfCounter
	one.Train(true, 1)
	one.Train(true, 1)
	if int(one) != 1 || !one.Confident(1) {
		t.Errorf("1-bit counter = %d, want 1 and confident", one)
	}
	one.Train(false, 1)
	if int(one) != 0 {
		t.Errorf("1-bit counter = %d after mispredict, want 0", one)
	}
}

// TestReplayAdvancesOnPredict: Replay consumes its sequence on Predict
// (prediction order, not training order), ignores Update, reports cold
// when exhausted, and rewinds on Reset.
func TestReplayAdvancesOnPredict(t *testing.T) {
	p := &Replay{Seq: []uint64{4, 8, 15}}
	for i, want := range p.Seq {
		p.Update(uint64(1000 + i)) // must not advance or disturb anything
		v, ok := p.Predict()
		if !ok || v != want {
			t.Fatalf("predict %d = (%d, %v), want (%d, true)", i, v, ok, want)
		}
	}
	if _, ok := p.Predict(); ok {
		t.Error("exhausted replay still claims a prediction")
	}
	p.Reset()
	if v, ok := p.Predict(); !ok || v != 4 {
		t.Errorf("after Reset, predict = (%d, %v), want (4, true)", v, ok)
	}
}
