package predict

import "testing"

// TestStrideEdgeTable drives the two-delta stride predictor through the
// numeric edges: zero stride, negative strides (two's-complement deltas),
// and sequences that wrap the uint64 boundary in both directions. All
// arithmetic is mod 2^64, so a locked stride must keep hitting straight
// through the wrap.
func TestStrideEdgeTable(t *testing.T) {
	neg := func(v uint64) uint64 { return -v }
	cases := []struct {
		name    string
		start   uint64
		stride  uint64
		n       int
		minRate float64
	}{
		{"zero-stride", 7, 0, 100, 0.97},
		{"negative-small", 1 << 20, neg(5), 100, 0.97},
		{"negative-one", 50, neg(1), 100, 0.97},
		{"wrap-ascending", ^uint64(0) - 10, 3, 100, 0.97},
		{"wrap-descending", 10, neg(7), 100, 0.97},
		{"wrap-huge-stride", 5, 1 << 63, 100, 0.97},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if r := MeasureRate(NewStride(), seqStride(tc.n, tc.start, tc.stride)); r < tc.minRate {
				t.Errorf("rate %.3f, want >= %.2f", r, tc.minRate)
			}
		})
	}
}

// TestStrideExactAcrossWrap pins exact predictions, not just a rate:
// once the delta repeats, every prediction equals last+stride even as the
// sequence crosses the uint64 boundary.
func TestStrideExactAcrossWrap(t *testing.T) {
	p := NewStride()
	v := ^uint64(0) - 5 // three steps of +4 from here wrap past zero
	for i := 0; i < 3; i++ {
		p.Update(v)
		v += 4
	}
	for i := 0; i < 8; i++ {
		pred, ok := p.Predict()
		if !ok || pred != v {
			t.Fatalf("step %d: predicted (%d, %v), want (%d, true)", i, pred, ok, v)
		}
		p.Update(v)
		v += 4
	}
}

// TestFCMPeriodEdges covers the degenerate and oversized context periods:
// a period-1 (constant) stream is the smallest learnable context, and a
// period longer than the table has more distinct contexts than slots, so
// the predictor degrades (collisions evict) but must stay a valid
// predictor. The table rows vary order and table size together.
func TestFCMPeriodEdges(t *testing.T) {
	period16 := make([]uint64, 16)
	for i := range period16 {
		period16[i] = uint64(1000 + 37*i)
	}
	cases := []struct {
		name      string
		order     int
		tableBits int
		seq       []uint64
		minRate   float64
		maxRate   float64
	}{
		{"period-1-order-1", 1, 4, seqConst(100, 42), 0.9, 1},
		{"period-1-default", DefaultFCMOrder, DefaultFCMTableBits, seqConst(100, 42), 0.9, 1},
		{"period-16-big-table", 2, 12, seqPeriodic(320, period16), 0.9, 1},
		// 16 distinct order-2 contexts hashed into 4 slots: collisions are
		// guaranteed, perfection is impossible, validity is required.
		{"period-16-tiny-table", 2, 2, seqPeriodic(320, period16), 0, 0.9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := MeasureRate(NewFCM(tc.order, tc.tableBits), tc.seq)
			if r < tc.minRate || r > tc.maxRate {
				t.Errorf("rate %.3f outside [%.2f, %.2f]", r, tc.minRate, tc.maxRate)
			}
		})
	}
}

// TestFCMTinyTableStillBeatenByBigTable pins that the degradation in the
// oversized-period row above really is collision damage: the same stream
// through a table large enough to hold every context predicts strictly
// better.
func TestFCMTinyTableStillBeatenByBigTable(t *testing.T) {
	period := make([]uint64, 16)
	for i := range period {
		period[i] = uint64(i * i)
	}
	seq := seqPeriodic(320, period)
	big := MeasureRate(NewFCM(2, 12), seq)
	tiny := MeasureRate(NewFCM(2, 2), seq)
	if big <= tiny {
		t.Errorf("big table %.3f not above tiny table %.3f on a period-16 stream", big, tiny)
	}
}

// TestFCMConstructorClampsDegenerateSizes: order < 1 and tableBits < 2 are
// clamped, not rejected, and the clamped predictor still learns.
func TestFCMConstructorClampsDegenerateSizes(t *testing.T) {
	p := NewFCM(0, 0)
	if r := MeasureRate(p, seqConst(50, 9)); r < 0.9 {
		t.Errorf("clamped FCM rate %.3f on constant stream, want >= 0.9", r)
	}
}

// TestHybridTieBreaksToStride pins the tournament's tie rule: with equal
// hit counts and both components offering (different) predictions, the
// hybrid sides with stride — the cheaper of the paper's two hardware
// schemes. Tipping the count by a single FCM hit flips the choice.
func TestHybridTieBreaksToStride(t *testing.T) {
	h := NewHybrid(1, 4)
	// Stride component: locked on +10, will predict 40.
	for _, v := range []uint64{10, 20, 30} {
		h.stride.Update(v)
	}
	// FCM component (order 1): context 7 maps to 99, history sits at 7,
	// so it will predict 99.
	for _, v := range []uint64{7, 99, 7} {
		h.fcm.Update(v)
	}
	if sv, ok := h.stride.Predict(); !ok || sv != 40 {
		t.Fatalf("stride component predicts (%d, %v), want (40, true)", sv, ok)
	}
	if fv, ok := h.fcm.Predict(); !ok || fv != 99 {
		t.Fatalf("fcm component predicts (%d, %v), want (99, true)", fv, ok)
	}

	h.sHits, h.fHits = 3, 3
	if v, ok := h.Predict(); !ok || v != 40 {
		t.Errorf("tied tournament predicted (%d, %v), want stride's (40, true)", v, ok)
	}
	h.fHits++
	if v, ok := h.Predict(); !ok || v != 99 {
		t.Errorf("fcm-ahead tournament predicted (%d, %v), want fcm's (99, true)", v, ok)
	}
}

// TestRecorderLogsUpdateOrder: the Recorder passes predictions through
// untouched and logs exactly the training stream, which is what the
// conformance harness replays as a perfect predictor.
func TestRecorderLogsUpdateOrder(t *testing.T) {
	r := &Recorder{P: NewStride()}
	seq := seqStride(10, 3, 5)
	for _, v := range seq {
		r.Update(v)
	}
	if len(r.Log) != len(seq) {
		t.Fatalf("logged %d values, trained with %d", len(r.Log), len(seq))
	}
	for i, v := range seq {
		if r.Log[i] != v {
			t.Fatalf("log[%d] = %d, want %d", i, r.Log[i], v)
		}
	}
	want, wantOK := r.P.Predict()
	got, gotOK := r.Predict()
	if got != want || gotOK != wantOK {
		t.Errorf("Recorder.Predict = (%d, %v), inner = (%d, %v)", got, gotOK, want, wantOK)
	}
	r.Reset()
	if len(r.Log) != 0 {
		t.Error("Reset kept the log")
	}
}

// TestReplayAdvancesOnPredict: Replay consumes its sequence on Predict
// (prediction order, not training order), ignores Update, reports cold
// when exhausted, and rewinds on Reset.
func TestReplayAdvancesOnPredict(t *testing.T) {
	p := &Replay{Seq: []uint64{4, 8, 15}}
	for i, want := range p.Seq {
		p.Update(uint64(1000 + i)) // must not advance or disturb anything
		v, ok := p.Predict()
		if !ok || v != want {
			t.Fatalf("predict %d = (%d, %v), want (%d, true)", i, v, ok, want)
		}
	}
	if _, ok := p.Predict(); ok {
		t.Error("exhausted replay still claims a prediction")
	}
	p.Reset()
	if v, ok := p.Predict(); !ok || v != 4 {
		t.Errorf("after Reset, predict = (%d, %v), want (4, true)", v, ok)
	}
}
