// Package regions implements profile-guided superblock formation — the
// extension the paper's §3 anticipates: "For larger regions such as
// hyperblocks and superblocks, we expect to see a further improvement for
// the machine."
//
// A superblock is a single-entry multiple-exit trace: starting from a hot
// seed block, the most likely successor is appended while its branch
// probability clears a threshold. Successors with other predecessors are
// TAIL-DUPLICATED into the trace (copied, leaving the original in place for
// the side entries), so the grown block has exactly one entry and the
// scheduler — and the value-speculation pass — see longer straight-line
// regions with more distant predictable loads to hoist across.
//
// The representation keeps traces as ordinary basic blocks: appending block
// c to block b splices c's operations behind b's (dropping the connecting
// jump) and retargets b's successors, so every downstream pass (DDG,
// speculation, scheduling, both engines) works unchanged.
package regions

import (
	"sort"

	"vliwvp/internal/ir"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
)

// Config bounds the formation.
type Config struct {
	// MinProb is the minimum successor probability to extend a trace.
	MinProb float64
	// MaxOps caps a formed block's operation count.
	MaxOps int
	// MaxGrowth caps total code growth from tail duplication, as a factor
	// of the function's original operation count.
	MaxGrowth float64
	// MinSeedFreq skips cold seeds.
	MinSeedFreq int64
}

// DefaultConfig follows the classic superblock settings (Hwu et al.):
// extend along edges taken at least ~70% of the time.
func DefaultConfig() Config {
	return Config{MinProb: 0.7, MaxOps: 120, MaxGrowth: 1.5, MinSeedFreq: 16}
}

// Stats reports what formation did to one function.
type Stats struct {
	Merged     int // straight-line merges (no duplication needed)
	Duplicated int // tail duplications
	GrownOps   int // operations added by duplication
}

// Form grows superblocks in every function of the program, in place.
// The profile must come from the SAME program (op IDs are invalidated for
// duplicated code, so callers re-profile before value speculation).
func Form(p *ir.Program, prof *profile.Profile, cfg Config) map[string]Stats {
	out := map[string]Stats{}
	for _, f := range p.Funcs {
		st := formFunc(f, prof, cfg)
		if st.Merged+st.Duplicated > 0 {
			opt.OptimizeFunc(f) // clean up across the new block boundaries
		}
		out[f.Name] = st
	}
	return out
}

func formFunc(f *ir.Func, prof *profile.Profile, cfg Config) Stats {
	var st Stats
	origOps := 0
	for _, b := range f.Blocks {
		origOps += len(b.Ops)
	}
	budget := int(float64(origOps) * (cfg.MaxGrowth - 1))

	// Hot-first seed order, stable across runs.
	seeds := make([]int, len(f.Blocks))
	for i := range seeds {
		seeds[i] = i
	}
	sort.SliceStable(seeds, func(a, b int) bool {
		return prof.Freq(f.Name, seeds[a]) > prof.Freq(f.Name, seeds[b])
	})

	inTrace := make([]bool, len(f.Blocks)) // block already part of a trace
	for _, seed := range seeds {
		if seed >= len(f.Blocks) || inTrace[seed] {
			continue
		}
		if prof.Freq(f.Name, seed) < cfg.MinSeedFreq {
			break // seeds are frequency-sorted
		}
		growTrace(f, prof, cfg, seed, inTrace, &st, &budget)
	}
	if st.Merged+st.Duplicated > 0 {
		f.RecomputePreds()
	}
	return st
}

// growTrace extends the block at index head while a likely successor exists.
// tail tracks which original block's profiled edges describe the trace's
// current exit (the head block absorbs other blocks, so its own edge
// profile stops matching after the first extension).
func growTrace(f *ir.Func, prof *profile.Profile, cfg Config, head int, inTrace []bool, st *Stats, budget *int) {
	tail := head
	for {
		b := f.Blocks[head]
		if len(b.Ops) >= cfg.MaxOps {
			return
		}
		next, prob := likelySuccessor(f, prof, tail, b.Succs)
		if next < 0 || prob < cfg.MinProb {
			return
		}
		c := f.Blocks[next]
		if next == head || next == f.Entry || inTrace[next] {
			return // no self-loops, no entry consumption, no re-consumption
		}
		if containsCall(c) {
			return // calls barrier the engines; stop the trace there
		}
		if len(b.Ops)+len(c.Ops) > cfg.MaxOps {
			return
		}
		if b.Terminator() == nil || b.Terminator().Code != ir.Jmp {
			// The trace can only extend through an unconditional hop; a
			// conditional branch ends the superblock (its off-trace arm is
			// the side exit).
			return
		}

		// The trace participates now; protect both ends from later traces.
		inTrace[head] = true
		if len(c.Preds) == 1 && c.Preds[0] == head {
			mergeInto(f, b, c)
			st.Merged++
			inTrace[next] = true
		} else {
			// Tail duplication: append a copy of c; the original stays for
			// the other predecessors.
			if *budget < len(c.Ops) {
				return
			}
			appendCopy(f, b, c)
			*budget -= len(c.Ops)
			st.Duplicated++
			st.GrownOps += len(c.Ops)
		}
		tail = next
	}
}

// likelySuccessor picks the most frequent successor of the trace tail and
// its probability. succs is the current successor list of the trace block
// (identical to the tail block's).
func likelySuccessor(f *ir.Func, prof *profile.Profile, tail int, succs []int) (int, float64) {
	if len(succs) == 0 {
		return -1, 0
	}
	var total int64
	best, bestN := -1, int64(-1)
	for _, s := range succs {
		n := prof.Edge(f.Name, tail, s)
		total += n
		if n > bestN {
			best, bestN = s, n
		}
	}
	if total == 0 {
		return -1, 0
	}
	return best, float64(bestN) / float64(total)
}

func containsCall(b *ir.Block) bool {
	for _, op := range b.Ops {
		if op.Code == ir.Call {
			return true
		}
	}
	return false
}

// mergeInto splices block c's operations behind b (dropping b's jump); c
// becomes unreachable and is left for unreachable-block elimination.
func mergeInto(f *ir.Func, b, c *ir.Block) {
	b.Ops = b.Ops[:len(b.Ops)-1] // drop the Jmp
	b.Ops = append(b.Ops, c.Ops...)
	b.Succs = append([]int(nil), c.Succs...)
	cJmp := f.NewOp(ir.Jmp)
	c.Ops = []*ir.Op{cJmp}
	c.Succs = []int{c.ID} // self-looping unreachable husk
	f.RecomputePreds()
}

// appendCopy splices a fresh copy of c's operations behind b; the original
// block keeps serving its other predecessors.
func appendCopy(f *ir.Func, b, c *ir.Block) {
	b.Ops = b.Ops[:len(b.Ops)-1] // drop the Jmp into c
	for _, op := range c.Ops {
		cp := op.Clone()
		cp.ID = f.NextOpID()
		f.SetNextOpID(cp.ID + 1)
		b.Ops = append(b.Ops, cp)
	}
	b.Succs = append([]int(nil), c.Succs...)
	f.RecomputePreds()
}
