package regions_test

import (
	"testing"

	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/regions"
	"vliwvp/internal/workload"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(p)
	return p
}

func runVal(t *testing.T, p *ir.Program) (uint64, []uint64) {
	t.Helper()
	m := interp.New(p)
	v, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	return v, m.Mem
}

func form(t *testing.T, p *ir.Program) map[string]regions.Stats {
	t.Helper()
	prof, err := profile.Collect(p, "main")
	if err != nil {
		t.Fatal(err)
	}
	st := regions.Form(p, prof, regions.DefaultConfig())
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid after formation: %v", err)
	}
	return st
}

// biasedSrc has an 87.5%-taken branch inside a hot loop: a classic
// superblock candidate requiring tail duplication (the join block has two
// predecessors).
const biasedSrc = `
var a[256]
func main() {
	var s = 0
	for var i = 0; i < 256; i = i + 1 {
		var x = i * 3
		if i % 8 != 0 {
			x = x + 7      # taken 7/8 of the time
		} else {
			x = x - 100
		}
		a[i] = x           # join block: two predecessors
		s = s + x
	}
	return s
}`

func TestFormationPreservesSemantics(t *testing.T) {
	plain := build(t, biasedSrc)
	wantV, wantMem := runVal(t, plain)

	formed := build(t, biasedSrc)
	st := form(t, formed)
	gotV, gotMem := runVal(t, formed)
	if gotV != wantV {
		t.Fatalf("formed result %d != %d", gotV, wantV)
	}
	for i := range wantMem {
		if gotMem[i] != wantMem[i] {
			t.Fatalf("memory[%d] differs after formation", i)
		}
	}
	total := st["main"]
	if total.Merged+total.Duplicated == 0 {
		t.Error("formation did nothing on a biased-branch loop")
	}
	if total.Duplicated == 0 {
		t.Error("the two-predecessor join must be tail-duplicated")
	}
}

func TestFormationGrowsTraces(t *testing.T) {
	plain := build(t, biasedSrc)
	formed := build(t, biasedSrc)
	form(t, formed)
	// Tail duplication adds operations overall (each if-arm absorbs its own
	// copy of the join code) and enlarges the hot arms.
	if countOps(formed) <= countOps(plain) {
		t.Errorf("total ops %d -> %d, want duplication growth", countOps(plain), countOps(formed))
	}
	if avgHotArm(formed) <= avgHotArm(plain) {
		t.Errorf("hot arm size %.1f -> %.1f, want growth", avgHotArm(plain), avgHotArm(formed))
	}
}

// avgHotArm averages block sizes over blocks bigger than a jump stub.
func avgHotArm(p *ir.Program) float64 {
	total, n := 0, 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if len(b.Ops) > 2 {
				total += len(b.Ops)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

func TestGrowthBudgetRespected(t *testing.T) {
	formed := build(t, biasedSrc)
	before := countOps(formed)
	prof, err := profile.Collect(formed, "main")
	if err != nil {
		t.Fatal(err)
	}
	cfg := regions.DefaultConfig()
	cfg.MaxGrowth = 1.1
	regions.Form(formed, prof, cfg)
	after := countOps(formed)
	// Optimization may shrink the result; the growth cap applies to raw
	// duplication, so allow the optimizer headroom but catch runaways.
	if float64(after) > float64(before)*1.3 {
		t.Errorf("ops %d -> %d exceeds growth budget", before, after)
	}
}

func countOps(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Ops)
		}
	}
	return n
}

func TestColdSeedsSkipped(t *testing.T) {
	src := `
func main() {
	var s = 0
	if s == 0 { s = 1 } else { s = 2 }   # executes once: too cold to form
	return s
}`
	p := build(t, src)
	prof, err := profile.Collect(p, "main")
	if err != nil {
		t.Fatal(err)
	}
	st := regions.Form(p, prof, regions.DefaultConfig())
	if st["main"].Merged+st["main"].Duplicated != 0 {
		t.Errorf("cold code was formed: %+v", st["main"])
	}
}

func TestUnbiasedBranchNotFormed(t *testing.T) {
	src := `
var a[256]
func main() {
	var s = 0
	for var i = 0; i < 256; i = i + 1 {
		var x = i
		if i % 2 == 0 { x = x + 1 } else { x = x - 1 }   # 50/50
		a[i] = x
		s = s + x
	}
	return s
}`
	p := build(t, src)
	prof, err := profile.Collect(p, "main")
	if err != nil {
		t.Fatal(err)
	}
	st := regions.Form(p, prof, regions.DefaultConfig())
	// The 50/50 branch must not be duplicated through; merging straight
	// chains around it is fine.
	if st["main"].Duplicated > 2 {
		t.Errorf("unbiased branch drove %d duplications", st["main"].Duplicated)
	}
}

func TestFormationOnAllBenchmarks(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			plain, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			wantV, wantMem := runVal(t, plain)

			formed, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			st := form(t, formed)
			gotV, gotMem := runVal(t, formed)
			if gotV != wantV {
				t.Fatalf("%s: formed checksum %d != %d", b.Name, gotV, wantV)
			}
			for i := range wantMem {
				if gotMem[i] != wantMem[i] {
					t.Fatalf("%s: memory[%d] differs after formation", b.Name, i)
				}
			}
			var merged, dup int
			for _, s := range st {
				merged += s.Merged
				dup += s.Duplicated
			}
			t.Logf("%s: %d merges, %d duplications", b.Name, merged, dup)
		})
	}
}
