package progen

import (
	"strings"
	"testing"

	"vliwvp/internal/interp"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/speculate"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := Render(Generate(seed, Options{}))
		b := Render(Generate(seed, Options{}))
		if a != b {
			t.Fatalf("seed %d: two generations differ:\n%s\n----\n%s", seed, a, b)
		}
	}
	if Render(Generate(1, Options{})) == Render(Generate(2, Options{})) {
		t.Error("seeds 1 and 2 rendered identical programs")
	}
}

func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	withSites := 0
	for seed := int64(1); seed <= 40; seed++ {
		s := Generate(seed, Options{})
		src := Render(s)
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		opt.Optimize(prog)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: validate: %v", seed, err)
		}
		m := interp.New(prog)
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
		}
		prof, err := profile.Collect(prog, "main")
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(machine.W4))
		if err != nil {
			t.Fatalf("seed %d: speculate: %v", seed, err)
		}
		if len(res.Sites) > 0 {
			withSites++
		}
	}
	// The generator exists to feed the speculation machinery: most
	// programs must offer at least one selected prediction site.
	if withSites < 30 {
		t.Errorf("only %d/40 generated programs produced speculation sites", withSites)
	}
}

// locality builds a one-load spec over the given array and returns that
// load's measured profile rates.
func locality(t *testing.T, a Array) *profile.LoadProfile {
	t.Helper()
	s := Spec{
		Seed:   0,
		Trip:   128,
		Arrays: []Array{a},
		Frags: []Frag{{
			Kind: FragLoad, Target: "x", Arr: a.Name, Index: "i & 63",
		}},
	}
	src := Render(s)
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	opt.Optimize(prog)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	var best *profile.LoadProfile
	for _, lp := range prof.Loads {
		if best == nil || lp.Count > best.Count {
			best = lp
		}
	}
	if best == nil {
		t.Fatalf("no load profiled in:\n%s", src)
	}
	return best
}

// TestPatternsShapeLocality pins the generator's contract: the declared
// pattern controls the value-locality profile the predictors measure.
func TestPatternsShapeLocality(t *testing.T) {
	con := locality(t, Array{Name: "a0", Size: 64, Pattern: PatConst, Base: 5})
	if con.StrideRate < 0.9 {
		t.Errorf("const array: stride rate %.2f, want >= 0.9", con.StrideRate)
	}
	str := locality(t, Array{Name: "a0", Size: 64, Pattern: PatStride, Base: 3, Step: 7})
	if str.StrideRate < 0.9 {
		t.Errorf("stride array: stride rate %.2f, want >= 0.9", str.StrideRate)
	}
	per := locality(t, Array{Name: "a0", Size: 64, Pattern: PatPeriodic, Base: 1, Step: 5, Period: 3})
	if per.FCMRate < 0.8 {
		t.Errorf("periodic array: FCM rate %.2f, want >= 0.8", per.FCMRate)
	}
	if per.StrideRate >= per.FCMRate {
		t.Errorf("periodic array: stride rate %.2f not below FCM rate %.2f",
			per.StrideRate, per.FCMRate)
	}
	rnd := locality(t, Array{Name: "a0", Size: 64, Pattern: PatRandom})
	if rnd.StrideRate > 0.3 {
		t.Errorf("random array: stride rate %.2f, want <= 0.3", rnd.StrideRate)
	}
}

// TestChasePermutation checks the pointer-chase array is a permutation,
// so p = c0[p] can never escape the array.
func TestChasePermutation(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		s := Generate(seed, Options{})
		for _, a := range s.Arrays {
			if a.Pattern != PatChase {
				continue
			}
			seen := make([]bool, a.Size)
			for i := 0; i < a.Size; i++ {
				v := (int64(i)*a.Step + a.Base) % int64(a.Size)
				if v < 0 || v >= int64(a.Size) || seen[v] {
					t.Fatalf("seed %d: chase array not a permutation at %d -> %d", seed, i, v)
				}
				seen[v] = true
			}
		}
	}
}

func hasKind(fs []Frag, k FragKind) bool {
	for _, f := range fs {
		if f.Kind == k || hasKind(f.Then, k) || hasKind(f.Else, k) {
			return true
		}
	}
	return false
}

// TestMinimizeShrinksToCore drives the shrinker with a structural failure
// predicate ("the program still contains a load fragment") and checks it
// reaches the minimal program satisfying it.
func TestMinimizeShrinksToCore(t *testing.T) {
	var s Spec
	for seed := int64(1); ; seed++ {
		s = Generate(seed, Options{})
		if len(s.Frags) >= 4 && len(s.Arrays) >= 2 {
			break
		}
	}
	fails := func(sp Spec) bool { return hasKind(sp.Frags, FragLoad) }
	min := Minimize(s, fails)
	if !fails(min) {
		t.Fatal("minimized spec no longer satisfies the failure predicate")
	}
	if len(min.Frags) != 1 {
		t.Errorf("minimized to %d fragments, want 1", len(min.Frags))
	}
	if min.Trip != 8 {
		t.Errorf("minimized trip %d, want 8", min.Trip)
	}
	if len(min.Arrays) != 1 {
		t.Errorf("minimized to %d arrays, want 1", len(min.Arrays))
	}
	// The minimized program must still be runnable.
	src := Render(min)
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("minimized program does not compile: %v\n%s", err, src)
	}
	opt.Optimize(prog)
	if _, err := interp.New(prog).Run("main"); err != nil {
		t.Fatalf("minimized program does not run: %v\n%s", err, src)
	}
	if !strings.Contains(src, "# progen seed=") {
		t.Error("rendered source missing the seed banner")
	}
}
