// Package progen is the deterministic, seed-driven workload generator
// behind the metamorphic conformance suite (internal/conform). It
// synthesizes VL programs with controllable value-locality profiles —
// constant, strided, and FCM-periodic load streams, data-dependent
// (unpredictable) accesses, pointer-chase chains, branchy regions, and
// call barriers — so generated kernels exercise the predictor, CCB, and
// CCE state space far beyond the hand-written corpus in internal/workload.
//
// Generation is split into two pure stages so counterexamples shrink:
// Generate(seed) derives a typed Spec from its own rand.Rand (no global
// RNG state), and Render turns a Spec into VL source as a pure function
// of the Spec. Minimize greedily deletes fragments, arrays, and loop
// iterations while a caller-supplied failure predicate keeps holding, so
// a failing seed is reported alongside the smallest program that still
// reproduces it.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Pattern classifies an array's initialization contents, which — scanned
// sequentially — become the value stream a load site exposes to the
// predictors.
type Pattern uint8

const (
	// PatConst fills the array with one value (last-value predictable).
	PatConst Pattern = iota
	// PatStride fills a[i] = Base + i*Step (stride predictable).
	PatStride
	// PatPeriodic fills a[i] = Base + (i%Period)*Step (FCM predictable,
	// stride hostile for Period > 1).
	PatPeriodic
	// PatRandom fills a hash of the index (predictor hostile).
	PatRandom
	// PatChase fills a permutation of [0,Size): p = a[p] is a full-cycle
	// pointer chase with a load-to-load dependence.
	PatChase
)

func (p Pattern) String() string {
	switch p {
	case PatConst:
		return "const"
	case PatStride:
		return "stride"
	case PatPeriodic:
		return "periodic"
	case PatRandom:
		return "random"
	case PatChase:
		return "chase"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// Array is one generated global array.
type Array struct {
	Name    string
	Size    int // power of two
	Pattern Pattern
	Base    int64
	Step    int64 // stride/periodic step; chase multiplier (odd)
	Period  int   // PatPeriodic only
}

// FragKind classifies one loop-body fragment.
type FragKind uint8

const (
	// FragLoad is a load-use chain: Target = Arr[Index], Chain dependent
	// ops, then an accumulate (guaranteeing the load a true dependent, so
	// the speculation pass can select it).
	FragLoad FragKind = iota
	// FragArith assigns a pure scalar expression.
	FragArith
	// FragStore writes the out array (stores are never speculated and
	// force check placement).
	FragStore
	// FragChase advances the pointer chase: p = Arr[p]; acc = acc + p.
	FragChase
	// FragBranch is a two-armed conditional region.
	FragBranch
	// FragCall accumulates through the helper function (a call barrier
	// that drains the CCB and Synchronization register).
	FragCall
)

// Frag is one loop-body fragment. Which fields are meaningful depends on
// Kind; expression fields hold rendered VL snippets chosen at generation
// time, so rendering is a pure function of the Spec.
type Frag struct {
	Kind   FragKind
	Target string // scalar written (FragLoad/FragArith/FragCall)
	Arr    string // array read (FragLoad/FragChase)
	Index  string // index expression (FragLoad)
	Chain  int    // dependent ops after the load (FragLoad)
	RHS    string // right-hand side (FragArith/FragStore)
	Cond   string // condition (FragBranch)
	Then   []Frag // FragBranch arms
	Else   []Frag
}

// Spec is a complete generated program description. Render is pure over
// it, so any Spec-level shrink (dropping fragments, arrays, iterations)
// yields a runnable smaller program.
type Spec struct {
	Seed      int64
	Trip      int // main loop iterations
	Arrays    []Array
	Frags     []Frag
	UseHelper bool
}

// Options bounds generation. The zero value means defaults.
type Options struct {
	MaxFrags  int // top-level loop-body fragments (default 6)
	MaxArrays int // data arrays before the optional chase array (default 3)
	TripMin   int // main loop iteration range (default 64..160)
	TripMax   int
	NoCall    bool // suppress helper-call fragments
	NoBranch  bool // suppress branch fragments
	NoChase   bool // suppress the pointer-chase array
}

func (o Options) withDefaults() Options {
	if o.MaxFrags <= 0 {
		o.MaxFrags = 6
	}
	if o.MaxArrays <= 0 {
		o.MaxArrays = 3
	}
	if o.TripMin <= 0 {
		o.TripMin = 64
	}
	if o.TripMax < o.TripMin {
		o.TripMax = o.TripMin + 96
	}
	return o
}

// outSize is the fixed result-array length every generated program folds
// into its checksum.
const outSize = 64

// scalars is the fixed local working set; every generated program
// declares all of them so fragments can be dropped independently.
var scalars = []string{"x", "y", "z"}

// Generate derives a program spec from the seed. Equal seeds and options
// give equal specs; the generator owns its rand.Rand, so results are
// independent of call order and of any other generator running in the
// process.
func Generate(seed int64, opt Options) Spec {
	o := opt.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	s := Spec{
		Seed: seed,
		Trip: o.TripMin + rng.Intn(o.TripMax-o.TripMin+1),
	}

	// Data arrays. The first is always predictor friendly so every
	// program offers at least one speculation candidate.
	n := 1 + rng.Intn(o.MaxArrays)
	for i := 0; i < n; i++ {
		s.Arrays = append(s.Arrays, randomArray(rng, fmt.Sprintf("a%d", i), i == 0))
	}
	var chase string
	if !o.NoChase && rng.Intn(2) == 0 {
		a := chaseArray(rng)
		s.Arrays = append(s.Arrays, a)
		chase = a.Name
	}

	// Loop body: the first fragment is a load-use chain over the
	// predictable array; the rest mix kinds.
	nf := 2 + rng.Intn(o.MaxFrags-1)
	s.Frags = append(s.Frags, loadFrag(rng, s.Arrays[0]))
	for len(s.Frags) < nf {
		s.Frags = append(s.Frags, randomFrag(rng, &s, chase, o, true))
	}
	return s
}

func randomArray(rng *rand.Rand, name string, predictable bool) Array {
	sizes := []int{64, 128, 256}
	a := Array{
		Name: name,
		Size: sizes[rng.Intn(len(sizes))],
		Base: rng.Int63n(1000),
		Step: 1 + rng.Int63n(9),
	}
	if rng.Intn(4) == 0 {
		a.Step = -a.Step
	}
	switch w := rng.Intn(10); {
	case w < 2:
		a.Pattern = PatConst
	case w < 5:
		a.Pattern = PatStride
	case w < 8:
		a.Pattern = PatPeriodic
		periods := []int{2, 3, 4, 6, 8}
		a.Period = periods[rng.Intn(len(periods))]
	default:
		a.Pattern = PatRandom
	}
	if predictable && a.Pattern == PatRandom {
		a.Pattern = PatStride
	}
	return a
}

func chaseArray(rng *rand.Rand) Array {
	sizes := []int{64, 128}
	size := sizes[rng.Intn(len(sizes))]
	// An odd multiplier is coprime with the power-of-two size, so
	// i -> (i*Step+Base) mod Size is a permutation and p = c0[p] walks a
	// cycle without ever leaving [0,Size).
	return Array{
		Name:    "c0",
		Size:    size,
		Pattern: PatChase,
		Step:    int64(2*rng.Intn(size/2) + 1),
		Base:    int64(rng.Intn(size)),
	}
}

func loadFrag(rng *rand.Rand, a Array) Frag {
	mask := a.Size - 1
	idx := []string{
		fmt.Sprintf("i & %d", mask),
		fmt.Sprintf("(i * 2) & %d", mask),
		fmt.Sprintf("(i + %d) & %d", rng.Intn(16), mask),
	}
	// A data-dependent index makes the value stream predictor hostile;
	// keep it a minority choice so most loads stay speculable.
	if rng.Intn(4) == 0 {
		idx = append(idx, fmt.Sprintf("(x ^ i) & %d", mask))
	}
	return Frag{
		Kind:   FragLoad,
		Target: scalars[rng.Intn(len(scalars))],
		Arr:    a.Name,
		Index:  idx[rng.Intn(len(idx))],
		Chain:  rng.Intn(3),
	}
}

func arithFrag(rng *rand.Rand) Frag {
	ops := []string{"+", "-", "*", "^", "&", "|"}
	terms := []string{"x", "y", "z", "i"}
	lhs := terms[rng.Intn(len(terms))]
	rhs := terms[rng.Intn(len(terms))]
	return Frag{
		Kind:   FragArith,
		Target: scalars[rng.Intn(len(scalars))],
		RHS: fmt.Sprintf("%s %s %s + %d", lhs,
			ops[rng.Intn(len(ops))], rhs, rng.Intn(100)),
	}
}

func storeFrag(rng *rand.Rand) Frag {
	exprs := []string{"x + y", "x ^ z", "y * 3 + z", "acc & 1023", "x"}
	return Frag{
		Kind: FragStore,
		RHS:  exprs[rng.Intn(len(exprs))],
	}
}

func condExpr(rng *rand.Rand) string {
	conds := []string{
		"(i & 3) == 0",
		"x > y",
		"(z & 1) == 1",
		"i % 5 < 2",
		"acc > 100000",
	}
	return conds[rng.Intn(len(conds))]
}

// randomFrag picks one fragment. Branch fragments recurse exactly one
// level (their arms hold only flat fragments).
func randomFrag(rng *rand.Rand, s *Spec, chase string, o Options, top bool) Frag {
	for {
		switch w := rng.Intn(20); {
		case w < 7:
			return loadFrag(rng, s.Arrays[rng.Intn(len(s.Arrays))])
		case w < 11:
			return arithFrag(rng)
		case w < 14:
			return storeFrag(rng)
		case w < 16:
			if chase == "" {
				continue
			}
			return Frag{Kind: FragChase, Arr: chase}
		case w < 19:
			if !top || o.NoBranch {
				continue
			}
			f := Frag{Kind: FragBranch, Cond: condExpr(rng)}
			for i := 0; i < 1+rng.Intn(2); i++ {
				f.Then = append(f.Then, randomFrag(rng, s, chase, o, false))
			}
			for i := 0; i < 1+rng.Intn(2); i++ {
				f.Else = append(f.Else, randomFrag(rng, s, chase, o, false))
			}
			return f
		default:
			if o.NoCall {
				continue
			}
			s.UseHelper = true
			return Frag{
				Kind:   FragCall,
				Target: scalars[rng.Intn(len(scalars))],
			}
		}
	}
}

// Render emits the spec as VL source. It is a pure function of the spec:
// equal specs render byte-identical programs.
func Render(s Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# progen seed=%d\n", s.Seed)
	for _, a := range s.Arrays {
		fmt.Fprintf(&b, "var %s[%d]\n", a.Name, a.Size)
	}
	fmt.Fprintf(&b, "var out[%d]\n", outSize)
	if s.UseHelper {
		b.WriteString("func helper(a) {\n\treturn a * 2 + 3\n}\n")
	}
	b.WriteString("func main() {\n")
	for _, a := range s.Arrays {
		renderInit(&b, a)
	}
	b.WriteString("\tvar x = 1\n\tvar y = 2\n\tvar z = 3\n\tvar acc = 0\n\tvar p = 0\n")
	fmt.Fprintf(&b, "\tfor var i = 0; i < %d; i = i + 1 {\n", s.Trip)
	for _, f := range s.Frags {
		renderFrag(&b, f, 2)
	}
	b.WriteString("\t}\n")
	b.WriteString("\tvar chk = acc + x + y * 3 + z * 5 + p * 7\n")
	fmt.Fprintf(&b, "\tfor var i = 0; i < %d; i = i + 1 {\n\t\tchk = chk + out[i]\n\t}\n", outSize)
	b.WriteString("\tprint(chk)\n\treturn chk\n}\n")
	return b.String()
}

func renderInit(b *strings.Builder, a Array) {
	fmt.Fprintf(b, "\tfor var i = 0; i < %d; i = i + 1 {\n", a.Size)
	switch a.Pattern {
	case PatConst:
		fmt.Fprintf(b, "\t\t%s[i] = %d\n", a.Name, a.Base)
	case PatStride:
		fmt.Fprintf(b, "\t\t%s[i] = %d + i * %d\n", a.Name, a.Base, a.Step)
	case PatPeriodic:
		fmt.Fprintf(b, "\t\t%s[i] = %d + i %% %d * %d\n", a.Name, a.Base, a.Period, a.Step)
	case PatRandom:
		// Quadratic in i: consecutive deltas never repeat, so the
		// two-delta stride predictor cannot lock on.
		fmt.Fprintf(b, "\t\t%s[i] = i * i * 2654435761 %% 16381\n", a.Name)
	case PatChase:
		fmt.Fprintf(b, "\t\t%s[i] = (i * %d + %d) %% %d\n", a.Name, a.Step, a.Base, a.Size)
	}
	b.WriteString("\t}\n")
}

func renderFrag(b *strings.Builder, f Frag, depth int) {
	ind := strings.Repeat("\t", depth)
	switch f.Kind {
	case FragLoad:
		fmt.Fprintf(b, "%s%s = %s[%s]\n", ind, f.Target, f.Arr, f.Index)
		for i := 0; i < f.Chain; i++ {
			fmt.Fprintf(b, "%s%s = %s * 3 + 7\n", ind, f.Target, f.Target)
		}
		fmt.Fprintf(b, "%sacc = acc + %s\n", ind, f.Target)
	case FragArith:
		fmt.Fprintf(b, "%s%s = %s\n", ind, f.Target, f.RHS)
	case FragStore:
		fmt.Fprintf(b, "%sout[i & %d] = %s\n", ind, outSize-1, f.RHS)
	case FragChase:
		fmt.Fprintf(b, "%sp = %s[p]\n", ind, f.Arr)
		fmt.Fprintf(b, "%sacc = acc + p\n", ind)
	case FragBranch:
		fmt.Fprintf(b, "%sif %s {\n", ind, f.Cond)
		for _, t := range f.Then {
			renderFrag(b, t, depth+1)
		}
		fmt.Fprintf(b, "%s} else {\n", ind)
		for _, e := range f.Else {
			renderFrag(b, e, depth+1)
		}
		fmt.Fprintf(b, "%s}\n", ind)
	case FragCall:
		fmt.Fprintf(b, "%s%s = %s + helper(%s & 15)\n", ind, f.Target, f.Target, f.Target)
	}
}

// clone deep-copies a spec so Minimize's trial mutations never alias the
// caller's fragments.
func clone(s Spec) Spec {
	c := s
	c.Arrays = append([]Array(nil), s.Arrays...)
	c.Frags = cloneFrags(s.Frags)
	return c
}

func cloneFrags(fs []Frag) []Frag {
	out := make([]Frag, len(fs))
	for i, f := range fs {
		out[i] = f
		out[i].Then = cloneFrags(f.Then)
		out[i].Else = cloneFrags(f.Else)
	}
	return out
}

// arraysUsed collects the array names fragments still reference.
func arraysUsed(fs []Frag) map[string]bool {
	used := map[string]bool{}
	var walk func([]Frag)
	walk = func(fs []Frag) {
		for _, f := range fs {
			if f.Arr != "" {
				used[f.Arr] = true
			}
			walk(f.Then)
			walk(f.Else)
		}
	}
	walk(fs)
	return used
}

func usesHelper(fs []Frag) bool {
	for _, f := range fs {
		if f.Kind == FragCall || usesHelper(f.Then) || usesHelper(f.Else) {
			return true
		}
	}
	return false
}

// Minimize greedily shrinks a failing spec while fails keeps returning
// true: it deletes loop-body fragments (outer and branch-arm), drops
// arrays no fragment references, halves the trip count, and removes the
// helper, iterating to a fixpoint. fails must be a pure predicate of the
// spec (typically: "the conformance invariant still breaks").
func Minimize(s Spec, fails func(Spec) bool) Spec {
	best := clone(s)
	for {
		trial, ok := shrinkOnce(best, fails)
		if !ok {
			break
		}
		best = trial
	}
	return tidy(best)
}

// shrinkOnce tries every single-step reduction of the spec and returns
// the first that still fails; searching restarts from the reduced spec so
// fragment indices never go stale.
func shrinkOnce(best Spec, fails func(Spec) bool) (Spec, bool) {
	// Drop one top-level fragment.
	for i := range best.Frags {
		if len(best.Frags) == 1 {
			break
		}
		trial := clone(best)
		trial.Frags = append(trial.Frags[:i], trial.Frags[i+1:]...)
		trial = tidy(trial)
		if fails(trial) {
			return trial, true
		}
	}
	// Drop one branch-arm fragment (removing the branch outright once
	// both arms are empty).
	for i := range best.Frags {
		f := best.Frags[i]
		if f.Kind != FragBranch {
			continue
		}
		for arm := 0; arm < 2; arm++ {
			n := len(f.Then)
			if arm == 1 {
				n = len(f.Else)
			}
			for j := 0; j < n; j++ {
				trial := clone(best)
				tf := &trial.Frags[i]
				af := &tf.Then
				if arm == 1 {
					af = &tf.Else
				}
				*af = append((*af)[:j], (*af)[j+1:]...)
				if len(tf.Then)+len(tf.Else) == 0 {
					if len(trial.Frags) == 1 {
						continue
					}
					trial.Frags = append(trial.Frags[:i], trial.Frags[i+1:]...)
				}
				trial = tidy(trial)
				if fails(trial) {
					return trial, true
				}
			}
		}
	}
	// Halve the trip count.
	if best.Trip > 8 {
		trial := clone(best)
		trial.Trip = best.Trip / 2
		if trial.Trip < 8 {
			trial.Trip = 8
		}
		if fails(trial) {
			return trial, true
		}
	}
	return best, false
}

// tidy drops arrays and the helper once no fragment references them.
func tidy(s Spec) Spec {
	used := arraysUsed(s.Frags)
	kept := s.Arrays[:0:0]
	for _, a := range s.Arrays {
		if used[a.Name] {
			kept = append(kept, a)
		}
	}
	s.Arrays = kept
	s.UseHelper = usesHelper(s.Frags)
	return s
}
