package ir

// Opcode identifies the operation performed by an Op. Registers are untyped
// 64-bit containers; integer opcodes interpret them as int64 and the F*
// opcodes as float64 (bit patterns via math.Float64bits). Memory is
// word-addressed: one address names one 64-bit word.
type Opcode uint8

const (
	Nop Opcode = iota

	// Integer arithmetic and logic. Dest <- A op B (or Imm for MovI).
	MovI // Dest <- Imm
	Mov  // Dest <- A
	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Neg // Dest <- -A
	Not // Dest <- ^A

	// Comparisons produce 0 or 1 in Dest.
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE

	// Floating point. Registers hold float64 bit patterns.
	FMovI // Dest <- FImm
	FMov
	FAdd
	FSub
	FMul
	FDiv
	FNeg
	FCmpEQ
	FCmpNE
	FCmpLT
	FCmpLE
	FCmpGT
	FCmpGE
	I2F // Dest <- float64(int64(A))
	F2I // Dest <- int64(float64(A))

	// Memory. Addresses are word indices into the flat program memory.
	Lea   // Dest <- address of global Sym + Imm
	Load  // Dest <- mem[A + Imm]
	Store // mem[A + Imm] <- B

	// Control. Branch targets live in the enclosing Block's Succs:
	// Br: if A != 0 goto Succs[0] else Succs[1]; Jmp: goto Succs[0].
	Br
	Jmp
	Call // Dest <- Sym(Args...); Dest may be NoReg
	Ret  // return A (A may be NoReg)

	// Select is a predicated move introduced by if-conversion:
	// Dest <- A != 0 ? B : C. It is the PlayDoh-style predication primitive
	// that lets diamonds collapse into straight-line (hyperblock-like) code.
	Select

	// Value-speculation forms, introduced by the speculate pass.
	LdPred  // Dest <- value predictor entry PredID; sets Synchronization bit SyncBit
	CheckLd // Dest <- mem[A + Imm]; compare with prediction PredID; clears bits

	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	Nop: "nop", MovI: "movi", Mov: "mov", Add: "add", Sub: "sub", Mul: "mul",
	Div: "div", Rem: "rem", And: "and", Or: "or", Xor: "xor", Shl: "shl",
	Shr: "shr", Neg: "neg", Not: "not",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
	CmpGT: "cmpgt", CmpGE: "cmpge",
	FMovI: "fmovi", FMov: "fmov", FAdd: "fadd", FSub: "fsub", FMul: "fmul",
	FDiv: "fdiv", FNeg: "fneg",
	FCmpEQ: "fcmpeq", FCmpNE: "fcmpne", FCmpLT: "fcmplt", FCmpLE: "fcmple",
	FCmpGT: "fcmpgt", FCmpGE: "fcmpge", I2F: "i2f", F2I: "f2i",
	Lea: "lea", Load: "load", Store: "store",
	Br: "br", Jmp: "jmp", Call: "call", Ret: "ret",
	Select: "select",
	LdPred: "ldpred", CheckLd: "checkld",
}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return "op?"
}

// IsBranch reports whether the opcode transfers control within a function.
func (o Opcode) IsBranch() bool { return o == Br || o == Jmp }

// IsTerminator reports whether the opcode must end a basic block.
func (o Opcode) IsTerminator() bool { return o == Br || o == Jmp || o == Ret }

// IsMemory reports whether the opcode touches program memory.
func (o Opcode) IsMemory() bool {
	return o == Load || o == Store || o == CheckLd
}

// IsLoad reports whether the opcode reads program memory into a register.
func (o Opcode) IsLoad() bool { return o == Load || o == CheckLd }

// IsFloat reports whether the opcode's computation is floating point.
func (o Opcode) IsFloat() bool {
	return o >= FMovI && o <= F2I
}

// HasDest reports whether the opcode writes a destination register.
func (o Opcode) HasDest() bool {
	switch o {
	case Nop, Store, Br, Jmp, Ret:
		return false
	case Call:
		return true // caller may still pass NoReg
	}
	return true
}

// IsPure reports whether the operation has no side effects beyond writing
// Dest and therefore may be value-speculated (re-executed safely).
func (o Opcode) IsPure() bool {
	switch o {
	case Store, Br, Jmp, Call, Ret, Nop, CheckLd, LdPred:
		return false
	}
	return true
}
