package ir

import (
	"strings"
	"testing"
)

// buildSmallFunc assembles: r2 = r0 + r1; if r2 != 0 goto b1 else b2;
// b1: ret r2; b2: ret r0.
func buildSmallFunc() *Func {
	f := NewFunc("small")
	f.Params = []Param{{Name: "a"}, {Name: "b"}}
	r0, r1 := f.NewReg(), f.NewReg()
	r2 := f.NewReg()

	add := f.NewOp(Add)
	add.Dest, add.A, add.B = r2, r0, r1
	br := f.NewOp(Br)
	br.A = r2
	b0 := f.Blocks[0]
	b0.Ops = append(b0.Ops, add, br)

	b1 := f.AddBlock()
	ret1 := f.NewOp(Ret)
	ret1.A = r2
	b1.Ops = append(b1.Ops, ret1)

	b2 := f.AddBlock()
	ret2 := f.NewOp(Ret)
	ret2.A = r0
	b2.Ops = append(b2.Ops, ret2)

	b0.Succs = []int{b1.ID, b2.ID}
	f.RecomputePreds()
	return f
}

func TestFuncValidateOK(t *testing.T) {
	f := buildSmallFunc()
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateCatchesOutOfRangeReg(t *testing.T) {
	f := buildSmallFunc()
	f.Blocks[0].Ops[0].A = Reg(99)
	if err := f.Validate(); err == nil {
		t.Fatal("Validate() accepted out-of-range register")
	}
}

func TestValidateCatchesMisplacedTerminator(t *testing.T) {
	f := buildSmallFunc()
	b0 := f.Blocks[0]
	b0.Ops[0], b0.Ops[1] = b0.Ops[1], b0.Ops[0] // br now mid-block
	if err := f.Validate(); err == nil {
		t.Fatal("Validate() accepted mid-block terminator")
	}
}

func TestValidateCatchesBadSuccessorCount(t *testing.T) {
	f := buildSmallFunc()
	f.Blocks[0].Succs = f.Blocks[0].Succs[:1]
	if err := f.Validate(); err == nil {
		t.Fatal("Validate() accepted br with one successor")
	}
}

func TestValidateCatchesDuplicateOpIDs(t *testing.T) {
	f := buildSmallFunc()
	f.Blocks[1].Ops[0].ID = f.Blocks[0].Ops[0].ID
	if err := f.Validate(); err == nil {
		t.Fatal("Validate() accepted duplicate op IDs")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := buildSmallFunc()
	c := f.Clone()
	c.Blocks[0].Ops[0].Dest = Reg(0)
	c.Blocks[0].Succs[0] = 2
	if f.Blocks[0].Ops[0].Dest == Reg(0) {
		t.Error("op mutation leaked into original")
	}
	if f.Blocks[0].Succs[0] == 2 {
		t.Error("succs mutation leaked into original")
	}
	if err := f.Validate(); err != nil {
		t.Errorf("original invalid after clone mutation: %v", err)
	}
}

func TestCloneKeepsOpIDWatermark(t *testing.T) {
	f := buildSmallFunc()
	c := f.Clone()
	op := c.NewOp(Nop)
	if op.ID != f.NextOpID() {
		t.Errorf("clone NewOp ID = %d, want %d", op.ID, f.NextOpID())
	}
}

func TestProgramLinkAssignsDisjointAddresses(t *testing.T) {
	p := NewProgram()
	if err := p.AddGlobal(&Global{Name: "a", Size: 10}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGlobal(&Global{Name: "b", Size: 5}); err != nil {
		t.Fatal(err)
	}
	p.Link()
	a, b := p.Global("a"), p.Global("b")
	if a.Addr == 0 || b.Addr == 0 {
		t.Fatal("address 0 must stay reserved")
	}
	if a.Addr+a.Size > b.Addr {
		t.Errorf("globals overlap: a@%d+%d, b@%d", a.Addr, a.Size, b.Addr)
	}
	if p.MemWords < b.Addr+b.Size {
		t.Errorf("MemWords %d too small", p.MemWords)
	}
}

func TestProgramRejectsDuplicates(t *testing.T) {
	p := NewProgram()
	if err := p.AddFunc(NewFunc("f")); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc(NewFunc("f")); err == nil {
		t.Error("duplicate function accepted")
	}
	if err := p.AddGlobal(&Global{Name: "g", Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGlobal(&Global{Name: "g", Size: 1}); err == nil {
		t.Error("duplicate global accepted")
	}
}

func TestProgramValidateChecksCallArity(t *testing.T) {
	p := NewProgram()
	callee := NewFunc("callee")
	callee.Params = []Param{{Name: "x"}}
	r := callee.NewReg()
	ret := callee.NewOp(Ret)
	ret.A = r
	callee.Blocks[0].Ops = append(callee.Blocks[0].Ops, ret)
	if err := p.AddFunc(callee); err != nil {
		t.Fatal(err)
	}

	caller := NewFunc("caller")
	call := caller.NewOp(Call)
	call.Sym = "callee"
	call.Dest = caller.NewReg()
	retc := caller.NewOp(Ret)
	retc.A = call.Dest
	caller.Blocks[0].Ops = append(caller.Blocks[0].Ops, call, retc)
	if err := p.AddFunc(caller); err != nil {
		t.Fatal(err)
	}

	if err := p.Validate(); err == nil {
		t.Error("Validate() accepted arity mismatch")
	}
}

func TestOpStringForms(t *testing.T) {
	f := NewFunc("s")
	r := f.NewReg()
	a := f.NewReg()

	ld := f.NewOp(Load)
	ld.Dest, ld.A, ld.Imm = r, a, 4
	if got := ld.String(); !strings.Contains(got, "[r1+4]") {
		t.Errorf("load string = %q, want address form", got)
	}

	lp := f.NewOp(LdPred)
	lp.Dest, lp.PredID, lp.SyncBit = r, 3, 5
	got := lp.String()
	if !strings.Contains(got, "pred=3") || !strings.Contains(got, "!set=5") {
		t.Errorf("ldpred string = %q, want pred and set annotations", got)
	}

	sp := f.NewOp(Add)
	sp.Dest, sp.A, sp.B = r, a, a
	sp.Speculative = true
	sp.WaitBits = 0x6
	got = sp.String()
	if !strings.Contains(got, "!spec") || !strings.Contains(got, "!wait=0x6") {
		t.Errorf("spec add string = %q, want spec and wait annotations", got)
	}
}

func TestUsesAndDef(t *testing.T) {
	f := NewFunc("u")
	r0, r1, r2 := f.NewReg(), f.NewReg(), f.NewReg()
	st := f.NewOp(Store)
	st.A, st.B = r0, r1
	if d := st.Def(); d != NoReg {
		t.Errorf("store Def() = %v, want NoReg", d)
	}
	if u := st.Uses(); len(u) != 2 {
		t.Errorf("store Uses() = %v, want 2 regs", u)
	}
	call := f.NewOp(Call)
	call.Dest = r2
	call.Args = []Reg{r0, r1}
	if u := call.Uses(); len(u) != 2 {
		t.Errorf("call Uses() = %v, want args", u)
	}
	if d := call.Def(); d != r2 {
		t.Errorf("call Def() = %v, want %v", d, r2)
	}
}
