package ir

// Clone returns a deep copy of the operation.
func (o *Op) Clone() *Op {
	c := *o
	if o.Args != nil {
		c.Args = append([]Reg(nil), o.Args...)
	}
	return &c
}

// Clone returns a deep copy of the function. Transforming passes clone the
// input so the un-speculated program remains available for baselines.
func (f *Func) Clone() *Func {
	c := &Func{
		Name:     f.Name,
		Params:   append([]Param(nil), f.Params...),
		RetF:     f.RetF,
		NumRegs:  f.NumRegs,
		Entry:    f.Entry,
		nextOpID: f.nextOpID,
	}
	c.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{
			ID:    b.ID,
			Succs: append([]int(nil), b.Succs...),
			Preds: append([]int(nil), b.Preds...),
		}
		nb.Ops = make([]*Op, len(b.Ops))
		for j, op := range b.Ops {
			nb.Ops[j] = op.Clone()
		}
		c.Blocks[i] = nb
	}
	return c
}

// Clone returns a deep copy of the program, including the memory image.
func (p *Program) Clone() *Program {
	c := NewProgram()
	for _, f := range p.Funcs {
		c.Funcs = append(c.Funcs, f.Clone())
	}
	for _, g := range p.Globals {
		ng := &Global{Name: g.Name, Size: g.Size, Addr: g.Addr}
		if g.Init != nil {
			ng.Init = append([]uint64(nil), g.Init...)
		}
		c.Globals = append(c.Globals, ng)
	}
	c.MemWords = p.MemWords
	c.reindex()
	return c
}
