package ir

import (
	"strings"
	"testing"
)

// specFunc builds a minimal function whose single speculative site is
// well-formed: a LdPred/CheckLd pair plus one speculative consumer, the
// shape the transform emits. Tests then break one invariant at a time.
func specFunc() (*Func, *Op, *Op, *Op) {
	f := NewFunc("spec")
	addr, pred, arch, use := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()

	lea := f.NewOp(Lea)
	lea.Dest, lea.Sym = addr, "g"

	lp := f.NewOp(LdPred)
	lp.Dest, lp.A = pred, addr
	lp.PredID, lp.SyncBit = 0, 3

	sp := f.NewOp(Add)
	sp.Dest, sp.A, sp.B = use, pred, pred
	sp.Speculative, sp.SyncBit = true, 3

	ck := f.NewOp(CheckLd)
	ck.Dest, ck.A = arch, addr
	ck.PredID, ck.SyncBit = 0, 3
	ck.ClearBits = 1 << 3

	ret := f.NewOp(Ret)
	ret.A = arch

	b := f.Blocks[0]
	b.Ops = append(b.Ops, lea, lp, sp, ck, ret)
	return f, lp, sp, ck
}

func TestValidateAcceptsWellFormedSpeculation(t *testing.T) {
	f, _, _, _ := specFunc()
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

// TestValidateSpecFormTable breaks each speculation-metadata invariant in
// turn and checks the validator names the breakage.
func TestValidateSpecFormTable(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(lp, sp, ck *Op)
		want   string
	}{
		{"ldpred-no-site", func(lp, sp, ck *Op) { lp.PredID = NoPred }, "without prediction site"},
		{"ldpred-no-sync-bit", func(lp, sp, ck *Op) { lp.SyncBit = NoBit }, "without sync bit"},
		{"ldpred-no-dest", func(lp, sp, ck *Op) { lp.Dest = NoReg }, "without destination"},
		{"checkld-no-site", func(lp, sp, ck *Op) { ck.PredID = NoPred }, "without prediction site"},
		{"checkld-no-dest", func(lp, sp, ck *Op) { ck.Dest = NoReg }, "without destination"},
		{"checkld-no-addr", func(lp, sp, ck *Op) { ck.A = NoReg }, "without address base"},
		{"clear-bits-leak", func(lp, sp, ck *Op) { sp.ClearBits = 1 }, "clear-bits encoding"},
		{"sync-bit-overflow", func(lp, sp, ck *Op) { lp.SyncBit = 64 }, "out of range"},
		{"speculative-no-bit", func(lp, sp, ck *Op) { sp.SyncBit = NoBit }, "without sync bit"},
		{
			"speculative-impure",
			func(lp, sp, ck *Op) { sp.Code = Store; sp.Dest = NoReg },
			"impure op marked speculative",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, lp, sp, ck := specFunc()
			tc.break_(lp, sp, ck)
			err := f.Validate()
			if err == nil {
				t.Fatal("Validate() accepted the malformed op")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
