package ir

import (
	"fmt"
	"strings"
)

// String renders the operation in a compact assembly-like syntax.
func (o *Op) String() string {
	var sb strings.Builder
	sb.WriteString(o.Code.String())
	switch o.Code {
	case Nop:
	case MovI:
		fmt.Fprintf(&sb, " %v, %d", o.Dest, o.Imm)
	case FMovI:
		fmt.Fprintf(&sb, " %v, %g", o.Dest, o.FImm)
	case Mov, FMov, Neg, Not, FNeg, I2F, F2I:
		fmt.Fprintf(&sb, " %v, %v", o.Dest, o.A)
	case Lea:
		fmt.Fprintf(&sb, " %v, &%s+%d", o.Dest, o.Sym, o.Imm)
	case Load:
		fmt.Fprintf(&sb, " %v, [%v+%d]", o.Dest, o.A, o.Imm)
	case CheckLd:
		fmt.Fprintf(&sb, " %v, [%v+%d] pred=%d clear=%#x", o.Dest, o.A, o.Imm, o.PredID, o.ClearBits)
	case Store:
		fmt.Fprintf(&sb, " [%v+%d], %v", o.A, o.Imm, o.B)
	case Br:
		fmt.Fprintf(&sb, " %v", o.A)
	case Jmp:
	case Call:
		args := make([]string, len(o.Args))
		for i, a := range o.Args {
			args[i] = a.String()
		}
		fmt.Fprintf(&sb, " %v, %s(%s)", o.Dest, o.Sym, strings.Join(args, ", "))
	case Ret:
		if o.A != NoReg {
			fmt.Fprintf(&sb, " %v", o.A)
		}
	case LdPred:
		fmt.Fprintf(&sb, " %v, pred=%d", o.Dest, o.PredID)
	case Select:
		fmt.Fprintf(&sb, " %v, %v ? %v : %v", o.Dest, o.A, o.B, o.C)
	case Shl, Shr:
		if o.B == NoReg {
			fmt.Fprintf(&sb, " %v, %v, %d", o.Dest, o.A, o.Imm)
		} else {
			fmt.Fprintf(&sb, " %v, %v, %v", o.Dest, o.A, o.B)
		}
	default:
		fmt.Fprintf(&sb, " %v, %v, %v", o.Dest, o.A, o.B)
	}
	if o.SyncBit != NoBit {
		fmt.Fprintf(&sb, " !set=%d", o.SyncBit)
	}
	if o.Speculative {
		sb.WriteString(" !spec")
	}
	if o.WaitBits != 0 {
		fmt.Fprintf(&sb, " !wait=%#x", o.WaitBits)
	}
	return sb.String()
}

// String renders the function as labeled blocks.
func (f *Func) String() string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		t := "int"
		if p.Float {
			t = "float"
		}
		params[i] = fmt.Sprintf("%s %s", p.Name, t)
	}
	fmt.Fprintf(&sb, "func %s(%s):\n", f.Name, strings.Join(params, ", "))
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if len(b.Succs) > 0 {
			fmt.Fprintf(&sb, " ; succs=%v", b.Succs)
		}
		sb.WriteByte('\n')
		for _, op := range b.Ops {
			fmt.Fprintf(&sb, "\t%s\n", op)
		}
	}
	return sb.String()
}

// String renders the whole program.
func (p *Program) String() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s[%d] @%d\n", g.Name, g.Size, g.Addr)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}
