// Package ir defines the register-based intermediate representation shared
// by the VL front end, the optimizer, the value-speculation pass, the VLIW
// scheduler, and both execution engines.
//
// The representation is deliberately close to the operation model of the
// paper's Trimaran/PlayDoh substrate: a function is a control-flow graph of
// basic blocks; each block is a straight-line sequence of three-address
// operations over virtual registers; memory is a flat word-addressed array
// shared by all functions.
package ir

import "fmt"

// Reg names a virtual register within a function. Registers are untyped
// 64-bit containers.
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", int32(r))
}

// NoPred marks an operation that is not a value-prediction site.
const NoPred = -1

// NoBit marks an operation whose result has no Synchronization-register bit.
const NoBit = -1

// Op is a single operation. The speculation-related fields (PredID, SyncBit,
// Speculative, ClearBits, WaitBits) are zero-valued on ordinary code and are
// populated by the speculate pass.
type Op struct {
	ID   int // unique within the function; stable across passes
	Code Opcode

	Dest Reg   // destination register, NoReg if none
	A, B Reg   // source registers, NoReg if unused
	C    Reg   // third source register (Select's false-value), NoReg if unused
	Imm  int64 // immediate: MovI value, Lea/Load/Store/CheckLd word offset, Shl/Shr amount when B==NoReg

	FImm float64 // FMovI value

	Sym  string // Lea global name, Call target
	Args []Reg  // Call arguments

	// Value-speculation metadata.
	PredID      int    // prediction-site ID for LdPred/CheckLd; NoPred otherwise
	SyncBit     int    // Synchronization-register bit set when this op's predicted value is produced; NoBit if none
	Speculative bool   // operation consumes a predicted value (directly or transitively)
	ClearBits   uint64 // CheckLd only: dependent speculative bits cleared on a correct prediction
	WaitBits    uint64 // non-speculative form: bits that must be clear before issue
}

// Uses returns the registers read by the operation.
func (o *Op) Uses() []Reg {
	var u []Reg
	if o.A != NoReg {
		u = append(u, o.A)
	}
	if o.B != NoReg {
		u = append(u, o.B)
	}
	if o.C != NoReg {
		u = append(u, o.C)
	}
	for _, a := range o.Args {
		if a != NoReg {
			u = append(u, a)
		}
	}
	return u
}

// Def returns the register written by the operation, or NoReg.
func (o *Op) Def() Reg {
	if !o.Code.HasDest() {
		return NoReg
	}
	return o.Dest
}

// Block is a basic block: a straight-line run of operations ending in at
// most one terminator. Successor blocks are named by index into the
// enclosing function's Blocks slice. For Br the convention is
// Succs[0] = taken (condition != 0) and Succs[1] = fall-through.
type Block struct {
	ID    int
	Ops   []*Op
	Succs []int
	Preds []int
}

// Terminator returns the block's final operation if it is a terminator.
func (b *Block) Terminator() *Op {
	if len(b.Ops) == 0 {
		return nil
	}
	last := b.Ops[len(b.Ops)-1]
	if last.Code.IsTerminator() {
		return last
	}
	return nil
}

// Func is a function body: a CFG of basic blocks plus its register space.
// Parameters arrive in registers 0..len(Params)-1.
type Func struct {
	Name    string
	Params  []Param
	RetF    bool // result is floating point
	NumRegs int  // virtual registers in use; Reg values are < NumRegs
	Blocks  []*Block
	Entry   int // index of the entry block

	nextOpID int
}

// Param describes one formal parameter.
type Param struct {
	Name  string
	Float bool
}

// NewFunc returns an empty function with an entry block.
func NewFunc(name string) *Func {
	f := &Func{Name: name, Entry: 0}
	f.AddBlock()
	return f
}

// AddBlock appends a new empty block and returns it.
func (f *Func) AddBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// NewOp allocates an operation with a fresh function-unique ID.
func (f *Func) NewOp(code Opcode) *Op {
	op := &Op{ID: f.nextOpID, Code: code, Dest: NoReg, A: NoReg, B: NoReg, C: NoReg,
		PredID: NoPred, SyncBit: NoBit}
	f.nextOpID++
	return op
}

// NextOpID exposes the ID watermark so passes that clone functions can keep
// allocating unique IDs.
func (f *Func) NextOpID() int { return f.nextOpID }

// SetNextOpID adjusts the ID watermark; used when reconstructing functions.
func (f *Func) SetNextOpID(n int) { f.nextOpID = n }

// RecomputePreds rebuilds every block's predecessor list from the successor
// lists.
func (f *Func) RecomputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			f.Blocks[s].Preds = append(f.Blocks[s].Preds, b.ID)
		}
	}
}

// Global is a statically allocated region of program memory.
type Global struct {
	Name string
	Size int      // words
	Init []uint64 // initial words (len <= Size); remainder zero
	Addr int      // word address, assigned by Program.Link
}

// Program is a linked set of functions plus the global memory image.
type Program struct {
	Funcs    []*Func
	Globals  []*Global
	MemWords int // total memory size in words, valid after Link

	funcIndex   map[string]*Func
	globalIndex map[string]*Global
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		funcIndex:   make(map[string]*Func),
		globalIndex: make(map[string]*Global),
	}
}

// AddFunc registers a function. It returns an error on duplicate names.
func (p *Program) AddFunc(f *Func) error {
	if _, dup := p.funcIndex[f.Name]; dup {
		return fmt.Errorf("duplicate function %q", f.Name)
	}
	p.Funcs = append(p.Funcs, f)
	p.funcIndex[f.Name] = f
	return nil
}

// AddGlobal registers a global. It returns an error on duplicate names.
func (p *Program) AddGlobal(g *Global) error {
	if _, dup := p.globalIndex[g.Name]; dup {
		return fmt.Errorf("duplicate global %q", g.Name)
	}
	p.Globals = append(p.Globals, g)
	p.globalIndex[g.Name] = g
	return nil
}

// Func looks up a function by name.
func (p *Program) Func(name string) *Func { return p.funcIndex[name] }

// Global looks up a global by name.
func (p *Program) Global(name string) *Global { return p.globalIndex[name] }

// Link assigns word addresses to every global. Address 0 is reserved so
// that a zero register used as a pointer faults distinctly in tests.
func (p *Program) Link() {
	addr := 1
	for _, g := range p.Globals {
		g.Addr = addr
		addr += g.Size
	}
	p.MemWords = addr
}

// reindex rebuilds the lookup maps; used after cloning.
func (p *Program) reindex() {
	p.funcIndex = make(map[string]*Func, len(p.Funcs))
	for _, f := range p.Funcs {
		p.funcIndex[f.Name] = f
	}
	p.globalIndex = make(map[string]*Global, len(p.Globals))
	for _, g := range p.Globals {
		p.globalIndex[g.Name] = g
	}
}
