package ir

import "fmt"

// Validate checks the structural invariants every pass must preserve:
// register indices in range, successor indices in range, terminators only at
// block ends, every non-entry block reachable via Succs having consistent
// Preds, and unique operation IDs.
func (f *Func) Validate() error {
	seen := make(map[int]bool)
	for _, b := range f.Blocks {
		for i, op := range b.Ops {
			if seen[op.ID] {
				return fmt.Errorf("%s b%d: duplicate op id %d", f.Name, b.ID, op.ID)
			}
			seen[op.ID] = true
			if op.Code.IsTerminator() && i != len(b.Ops)-1 {
				return fmt.Errorf("%s b%d: terminator %s not at block end", f.Name, b.ID, op)
			}
			if err := f.checkRegs(op); err != nil {
				return fmt.Errorf("%s b%d: %w", f.Name, b.ID, err)
			}
			if err := checkSpecForm(op); err != nil {
				return fmt.Errorf("%s b%d: %w", f.Name, b.ID, err)
			}
		}
		switch t := b.Terminator(); {
		case t == nil && len(b.Succs) != 1:
			return fmt.Errorf("%s b%d: fallthrough block needs exactly 1 successor, has %d", f.Name, b.ID, len(b.Succs))
		case t != nil && t.Code == Br && len(b.Succs) != 2:
			return fmt.Errorf("%s b%d: br needs 2 successors, has %d", f.Name, b.ID, len(b.Succs))
		case t != nil && t.Code == Jmp && len(b.Succs) != 1:
			return fmt.Errorf("%s b%d: jmp needs 1 successor, has %d", f.Name, b.ID, len(b.Succs))
		case t != nil && t.Code == Ret && len(b.Succs) != 0:
			return fmt.Errorf("%s b%d: ret block must have no successors", f.Name, b.ID)
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(f.Blocks) {
				return fmt.Errorf("%s b%d: successor %d out of range", f.Name, b.ID, s)
			}
		}
	}
	if f.Entry < 0 || f.Entry >= len(f.Blocks) {
		return fmt.Errorf("%s: entry %d out of range", f.Name, f.Entry)
	}
	return nil
}

func (f *Func) checkRegs(op *Op) error {
	check := func(r Reg, what string) error {
		if r == NoReg {
			return nil
		}
		if r < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("op %s: %s register %v out of range [0,%d)", op, what, r, f.NumRegs)
		}
		return nil
	}
	if err := check(op.Dest, "dest"); err != nil {
		return err
	}
	if err := check(op.A, "src A"); err != nil {
		return err
	}
	if err := check(op.B, "src B"); err != nil {
		return err
	}
	if err := check(op.C, "src C"); err != nil {
		return err
	}
	for _, a := range op.Args {
		if err := check(a, "arg"); err != nil {
			return err
		}
	}
	return nil
}

// checkSpecForm enforces the speculation-metadata invariants the transform
// establishes and every later pass (scheduler, simulators) relies on: a
// LdPred carries a site ID, a Synchronization bit, and a destination; a
// CheckLd carries the site ID, the address base, and the architectural
// destination; a Speculative op owns a Synchronization bit and must be
// pure (stores, calls, and control flow are never issued speculatively);
// ClearBits is check-prediction encoding only.
func checkSpecForm(op *Op) error {
	switch op.Code {
	case LdPred:
		if op.PredID == NoPred {
			return fmt.Errorf("op %s: ldpred without prediction site", op)
		}
		if op.SyncBit == NoBit {
			return fmt.Errorf("op %s: ldpred without sync bit", op)
		}
		if op.Dest == NoReg {
			return fmt.Errorf("op %s: ldpred without destination", op)
		}
	case CheckLd:
		if op.PredID == NoPred {
			return fmt.Errorf("op %s: checkld without prediction site", op)
		}
		if op.Dest == NoReg {
			return fmt.Errorf("op %s: checkld without destination", op)
		}
		if op.A == NoReg {
			return fmt.Errorf("op %s: checkld without address base", op)
		}
	default:
		if op.ClearBits != 0 {
			return fmt.Errorf("op %s: clear-bits encoding on non-check op", op)
		}
	}
	if op.SyncBit != NoBit && (op.SyncBit < 0 || op.SyncBit >= 64) {
		return fmt.Errorf("op %s: sync bit %d out of range [0,64)", op, op.SyncBit)
	}
	if op.Speculative {
		if op.SyncBit == NoBit {
			return fmt.Errorf("op %s: speculative op without sync bit", op)
		}
		if !op.Code.IsPure() {
			return fmt.Errorf("op %s: impure op marked speculative", op)
		}
	}
	return nil
}

// Validate checks every function plus cross-references: call targets exist
// with matching arity, Lea symbols exist.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		if err := f.Validate(); err != nil {
			return err
		}
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				switch op.Code {
				case Call:
					callee := p.Func(op.Sym)
					if callee == nil {
						if op.Sym == "print" || op.Sym == "fprint" {
							continue // interpreter intrinsics
						}
						return fmt.Errorf("%s: call to unknown function %q", f.Name, op.Sym)
					}
					if len(op.Args) != len(callee.Params) {
						return fmt.Errorf("%s: call %q with %d args, want %d",
							f.Name, op.Sym, len(op.Args), len(callee.Params))
					}
				case Lea:
					if p.Global(op.Sym) == nil {
						return fmt.Errorf("%s: lea of unknown global %q", f.Name, op.Sym)
					}
				}
			}
		}
	}
	return nil
}
