// Package cache implements a set-associative instruction cache with LRU
// replacement. The baseline-comparison experiment uses it to quantify how
// statically scheduled compensation blocks pollute the instruction cache —
// one of the costs the paper's dynamically generated compensation code
// avoids entirely (§1).
package cache

import "fmt"

// Cache is a set-associative cache over word addresses.
type Cache struct {
	sets      int
	ways      int
	lineWords int

	tags  [][]int64 // [set][way], -1 = invalid
	age   [][]int64 // LRU timestamps
	clock int64

	Hits   int64
	Misses int64
}

// New builds a cache of totalWords capacity with the given line size (in
// words) and associativity. totalWords must be divisible by lineWords*ways.
func New(totalWords, lineWords, ways int) (*Cache, error) {
	if totalWords <= 0 || lineWords <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: sizes must be positive")
	}
	lines := totalWords / lineWords
	if lines*lineWords != totalWords {
		return nil, fmt.Errorf("cache: %d words not divisible by line size %d", totalWords, lineWords)
	}
	sets := lines / ways
	if sets == 0 || sets*ways != lines {
		return nil, fmt.Errorf("cache: %d lines not divisible by %d ways", lines, ways)
	}
	c := &Cache{sets: sets, ways: ways, lineWords: lineWords}
	c.tags = make([][]int64, sets)
	c.age = make([][]int64, sets)
	for i := range c.tags {
		c.tags[i] = make([]int64, ways)
		c.age[i] = make([]int64, ways)
		for w := range c.tags[i] {
			c.tags[i][w] = -1
		}
	}
	return c, nil
}

// Access touches the word at addr, returning whether it hit.
func (c *Cache) Access(addr int64) bool {
	c.clock++
	line := addr / int64(c.lineWords)
	set := int(line % int64(c.sets))
	tag := line / int64(c.sets)

	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == tag {
			c.age[set][w] = c.clock
			c.Hits++
			return true
		}
	}
	c.Misses++
	victim := 0
	for w := 1; w < c.ways; w++ {
		if c.age[set][w] < c.age[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.age[set][victim] = c.clock
	return false
}

// AccessRange touches every line covering [addr, addr+words) and returns
// the number of misses incurred — the shape of a block fetch.
func (c *Cache) AccessRange(addr int64, words int) int {
	misses := 0
	first := addr / int64(c.lineWords)
	last := (addr + int64(words) - 1) / int64(c.lineWords)
	for line := first; line <= last; line++ {
		if !c.Access(line * int64(c.lineWords)) {
			misses++
		}
	}
	return misses
}

// MissRate returns the miss fraction observed so far.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.clock, c.Hits, c.Misses = 0, 0, 0
	for i := range c.tags {
		for w := range c.tags[i] {
			c.tags[i][w] = -1
			c.age[i][w] = 0
		}
	}
}
