package cache

import (
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c, err := New(1024, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(100) {
		t.Error("cold access hit")
	}
	if !c.Access(100) {
		t.Error("warm access missed")
	}
	if !c.Access(101) {
		t.Error("same-line access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", c.Hits, c.Misses)
	}
}

func TestConflictEviction(t *testing.T) {
	// Direct-mapped, 4 lines of 4 words: addresses 0 and 64 share set 0.
	c, err := New(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0)
	c.Access(64)
	if c.Access(0) {
		t.Error("0 should have been evicted by 64 in a direct-mapped cache")
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	// 2-way: 0 and 64 can coexist.
	c, err := New(32, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0)
	c.Access(64)
	if !c.Access(0) {
		t.Error("2-way cache evicted a coresident line")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way set: touch A, B, re-touch A, then C evicts B (the LRU way).
	c, err := New(32, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const a, b, x = 0, 64, 128 // same set in a 4-set config
	c.Access(a)
	c.Access(b)
	c.Access(a)
	c.Access(x)
	if !c.Access(a) {
		t.Error("MRU line A evicted")
	}
	if c.Access(b) {
		t.Error("LRU line B survived")
	}
}

func TestAccessRangeCountsLineMisses(t *testing.T) {
	c, err := New(1024, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m := c.AccessRange(0, 10); m != 3 { // words 0..9 = lines 0,1,2
		t.Errorf("cold range misses = %d, want 3", m)
	}
	if m := c.AccessRange(0, 10); m != 0 {
		t.Errorf("warm range misses = %d, want 0", m)
	}
	if m := c.AccessRange(2, 4); m != 0 { // words 2..5 within lines 0,1
		t.Errorf("overlap range misses = %d, want 0", m)
	}
}

func TestResetClears(t *testing.T) {
	c, err := New(64, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("counters survive Reset")
	}
	if c.Access(0) {
		t.Error("contents survive Reset")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	if _, err := New(0, 4, 1); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := New(10, 4, 1); err == nil {
		t.Error("accepted capacity not divisible by line size")
	}
	if _, err := New(16, 4, 8); err == nil {
		t.Error("accepted more ways than lines")
	}
}

func TestMissRateBounds(t *testing.T) {
	c, _ := New(64, 4, 1)
	if c.MissRate() != 0 {
		t.Error("empty cache miss rate must be 0")
	}
	c.Access(0)
	if r := c.MissRate(); r != 1 {
		t.Errorf("one cold access: rate %v, want 1", r)
	}
}

// Property: a cache never reports a hit for a line it has never seen, and
// repeating any access sequence twice yields at least as many hits the
// second time when the footprint fits in the cache.
func TestPropertySmallFootprintFullyCaches(t *testing.T) {
	check := func(seed []byte) bool {
		c, err := New(256, 4, 2)
		if err != nil {
			return false
		}
		// Footprint of at most 128 words < 256-word capacity... but a
		// direct conflict could still evict within a set in pathological
		// patterns; use addresses within one 128-word window so all fit.
		var addrs []int64
		for _, b := range seed {
			addrs = append(addrs, int64(b)%128)
		}
		for _, a := range addrs {
			c.Access(a)
		}
		// Second pass must be all hits: 2-way x 32 sets covers any 128-word
		// window (each set holds 2 of the 2 lines mapping to it... exactly).
		missesBefore := c.Misses
		for _, a := range addrs {
			c.Access(a)
		}
		return c.Misses == missesBefore
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
