package ddg

import (
	"testing"

	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
)

// chainBlock builds: r1=movi 1; r2=load [r1]; r3=add r2,r1; store [r1],r3; jmp.
func chainBlock(t *testing.T) (*ir.Func, *ir.Block) {
	t.Helper()
	f := ir.NewFunc("t")
	b := f.Blocks[0]
	r1, r2, r3 := f.NewReg(), f.NewReg(), f.NewReg()

	mi := f.NewOp(ir.MovI)
	mi.Dest, mi.Imm = r1, 5
	ld := f.NewOp(ir.Load)
	ld.Dest, ld.A = r2, r1
	add := f.NewOp(ir.Add)
	add.Dest, add.A, add.B = r3, r2, r1
	st := f.NewOp(ir.Store)
	st.A, st.B = r1, r3
	jmp := f.NewOp(ir.Jmp)
	b.Ops = append(b.Ops, mi, ld, add, st, jmp)
	b.Succs = []int{0}
	return f, b
}

func lat(op *ir.Op) int { return machine.W4.Latency(op) }

func hasEdge(g *Graph, from, to int, kind DepKind) bool {
	for _, e := range g.Nodes[from].Succs {
		if e.To == to && e.Kind == kind {
			return true
		}
	}
	return false
}

func TestTrueDependences(t *testing.T) {
	_, b := chainBlock(t)
	g := Build(b, lat, Options{})
	if !hasEdge(g, 0, 1, True) {
		t.Error("missing movi->load true dep")
	}
	if !hasEdge(g, 1, 2, True) {
		t.Error("missing load->add true dep")
	}
	if !hasEdge(g, 2, 3, True) {
		t.Error("missing add->store true dep")
	}
}

func TestCriticalLength(t *testing.T) {
	_, b := chainBlock(t)
	g := Build(b, lat, Options{})
	// movi(1) -> load(3) -> add(1) -> store, store issues >= 5.
	// Critical path: movi@0, load@1, add@4, store@5, length 5+lat(store)=6.
	if g.CriticalLength != 6 {
		t.Errorf("CriticalLength = %d, want 6", g.CriticalLength)
	}
	if !g.OnCriticalPath(1) {
		t.Error("load should be on the critical path")
	}
}

func TestMemOrdering(t *testing.T) {
	f := ir.NewFunc("m")
	b := f.Blocks[0]
	r1, r2, r3 := f.NewReg(), f.NewReg(), f.NewReg()
	mi := f.NewOp(ir.MovI)
	mi.Dest, mi.Imm = r1, 8
	ld1 := f.NewOp(ir.Load)
	ld1.Dest, ld1.A = r2, r1
	st := f.NewOp(ir.Store)
	st.A, st.B = r1, r2
	ld2 := f.NewOp(ir.Load)
	ld2.Dest, ld2.A = r3, r1
	ret := f.NewOp(ir.Ret)
	ret.A = r3
	b.Ops = append(b.Ops, mi, ld1, st, ld2, ret)

	g := Build(b, lat, Options{})
	if !hasEdge(g, 1, 2, Mem) {
		t.Error("missing load->store mem edge")
	}
	if !hasEdge(g, 2, 3, Mem) {
		t.Error("missing store->load mem edge")
	}
	if hasEdge(g, 1, 3, Mem) {
		t.Error("load->load must not have a mem edge")
	}
}

func TestDisambiguationSplitsDistinctGlobals(t *testing.T) {
	p := ir.NewProgram()
	_ = p.AddGlobal(&ir.Global{Name: "a", Size: 8})
	_ = p.AddGlobal(&ir.Global{Name: "b", Size: 8})
	f := ir.NewFunc("d")
	blk := f.Blocks[0]
	ra, rb, v := f.NewReg(), f.NewReg(), f.NewReg()
	leaA := f.NewOp(ir.Lea)
	leaA.Dest, leaA.Sym = ra, "a"
	leaB := f.NewOp(ir.Lea)
	leaB.Dest, leaB.Sym = rb, "b"
	mi := f.NewOp(ir.MovI)
	mi.Dest, mi.Imm = v, 1
	stA := f.NewOp(ir.Store)
	stA.A, stA.B = ra, v
	stB := f.NewOp(ir.Store)
	stB.A, stB.B = rb, v
	ret := f.NewOp(ir.Ret)
	blk.Ops = append(blk.Ops, leaA, leaB, mi, stA, stB, ret)

	conservative := Build(blk, lat, Options{})
	if !hasEdge(conservative, 3, 4, Mem) {
		t.Error("conservative build must order the two stores")
	}
	relaxed := Build(blk, lat, Options{Disambiguate: true})
	if hasEdge(relaxed, 3, 4, Mem) {
		t.Error("disambiguated build must not order stores to distinct globals")
	}
}

func TestDisambiguationSameGlobalDistinctConstIndex(t *testing.T) {
	f := ir.NewFunc("d2")
	blk := f.Blocks[0]
	base, i1, i2, a1, a2, v := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	lea := f.NewOp(ir.Lea)
	lea.Dest, lea.Sym = base, "g"
	m1 := f.NewOp(ir.MovI)
	m1.Dest, m1.Imm = i1, 3
	m2 := f.NewOp(ir.MovI)
	m2.Dest, m2.Imm = i2, 4
	add1 := f.NewOp(ir.Add)
	add1.Dest, add1.A, add1.B = a1, base, i1
	add2 := f.NewOp(ir.Add)
	add2.Dest, add2.A, add2.B = a2, base, i2
	mv := f.NewOp(ir.MovI)
	mv.Dest, mv.Imm = v, 9
	st1 := f.NewOp(ir.Store)
	st1.A, st1.B = a1, v
	st2 := f.NewOp(ir.Store)
	st2.A, st2.B = a2, v
	ret := f.NewOp(ir.Ret)
	blk.Ops = append(blk.Ops, lea, m1, m2, add1, add2, mv, st1, st2, ret)

	relaxed := Build(blk, lat, Options{Disambiguate: true})
	if hasEdge(relaxed, 6, 7, Mem) {
		t.Error("stores to g[3] and g[4] must not conflict under disambiguation")
	}
}

func TestCallIsBarrier(t *testing.T) {
	f := ir.NewFunc("c")
	b := f.Blocks[0]
	r1, r2 := f.NewReg(), f.NewReg()
	mi := f.NewOp(ir.MovI)
	mi.Dest, mi.Imm = r1, 1
	call := f.NewOp(ir.Call)
	call.Sym, call.Dest = "x", r2
	mi2 := f.NewOp(ir.MovI)
	mi2.Dest, mi2.Imm = r1, 2
	ret := f.NewOp(ir.Ret)
	ret.A = r2
	b.Ops = append(b.Ops, mi, call, mi2, ret)

	g := Build(b, lat, Options{})
	if !hasEdge(g, 0, 1, Ctrl) {
		t.Error("missing pre-call barrier edge")
	}
	if !hasEdge(g, 1, 2, Ctrl) {
		t.Error("missing post-call barrier edge")
	}
}

func TestTerminatorOrderedLast(t *testing.T) {
	_, b := chainBlock(t)
	g := Build(b, lat, Options{})
	term := len(b.Ops) - 1
	for j := 0; j < term; j++ {
		if !hasEdge(g, j, term, Ctrl) && !hasEdge(g, j, term, True) {
			t.Errorf("op %d not ordered before terminator", j)
		}
	}
}

func TestAntiAndOutputDeps(t *testing.T) {
	f := ir.NewFunc("ao")
	b := f.Blocks[0]
	r1, r2 := f.NewReg(), f.NewReg()
	m1 := f.NewOp(ir.MovI)
	m1.Dest, m1.Imm = r1, 1
	use := f.NewOp(ir.Mov)
	use.Dest, use.A = r2, r1
	m2 := f.NewOp(ir.MovI) // redefines r1: output dep on m1, anti dep on use
	m2.Dest, m2.Imm = r1, 2
	ret := f.NewOp(ir.Ret)
	ret.A = r1
	b.Ops = append(b.Ops, m1, use, m2, ret)

	g := Build(b, lat, Options{})
	if !hasEdge(g, 0, 2, Output) {
		t.Error("missing output dep movi->movi")
	}
	if !hasEdge(g, 1, 2, Anti) {
		t.Error("missing anti dep mov->movi")
	}
	// The ret must read the SECOND movi's value.
	if !hasEdge(g, 2, 3, True) {
		t.Error("ret must depend on the redefinition")
	}
}

func TestTransitiveDependents(t *testing.T) {
	_, b := chainBlock(t)
	g := Build(b, lat, Options{})
	deps := g.TransitiveDependents([]int{1}) // from the load
	if !deps[2] {
		t.Error("add must be a transitive dependent of the load")
	}
	if !deps[3] {
		t.Error("store must be a transitive dependent of the load")
	}
	if deps[0] {
		t.Error("movi precedes the load and cannot depend on it")
	}
}

func TestLiveness(t *testing.T) {
	// b0: r0=movi; br r0 -> b1,b2 ; b1: r1=movi; jmp b3; b2: r1=movi; jmp b3;
	// b3: ret r1. r1 live-in at b3, live-out of b1/b2.
	f := ir.NewFunc("lv")
	r0, r1 := f.NewReg(), f.NewReg()
	b0 := f.Blocks[0]
	m := f.NewOp(ir.MovI)
	m.Dest = r0
	br := f.NewOp(ir.Br)
	br.A = r0
	b0.Ops = append(b0.Ops, m, br)
	b1, b2, b3 := f.AddBlock(), f.AddBlock(), f.AddBlock()
	for _, b := range []*ir.Block{b1, b2} {
		mv := f.NewOp(ir.MovI)
		mv.Dest = r1
		j := f.NewOp(ir.Jmp)
		b.Ops = append(b.Ops, mv, j)
		b.Succs = []int{b3.ID}
	}
	ret := f.NewOp(ir.Ret)
	ret.A = r1
	b3.Ops = append(b3.Ops, ret)
	b0.Succs = []int{b1.ID, b2.ID}
	f.RecomputePreds()

	lv := ComputeLiveness(f)
	if !lv.In[b3.ID][r1] {
		t.Error("r1 must be live-in at b3")
	}
	if !lv.Out[b1.ID][r1] || !lv.Out[b2.ID][r1] {
		t.Error("r1 must be live-out of b1 and b2")
	}
	if lv.Out[b3.ID][r1] {
		t.Error("r1 must not be live-out of the exit block")
	}
	if lv.In[b0.ID][r1] {
		t.Error("r1 must not be live-in at entry")
	}

	// Within b1, r1 is live after its def (position 0).
	if !lv.LiveOutAfter(b1, 0, r1) {
		t.Error("LiveOutAfter(b1, 0, r1) = false, want true")
	}
	// r0 dead after the branch in b0.
	if lv.LiveOutAfter(b0, 1, r0) {
		t.Error("r0 must be dead after the branch")
	}
}
