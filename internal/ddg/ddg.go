// Package ddg builds per-block data-dependence graphs over IR operations.
// The graphs carry latency-weighted edges so the list scheduler and the
// value-speculation pass can compute critical paths exactly as the paper's
// Trimaran substrate did. Memory dependences are computed conservatively by
// default — the sequentialization of memory operations is precisely the
// scheduling bottleneck the paper attacks — with an optional trivial
// disambiguation for provably distinct static addresses.
package ddg

import (
	"vliwvp/internal/ir"
)

// DepKind classifies a dependence edge.
type DepKind uint8

const (
	// True is a read-after-write register dependence.
	True DepKind = iota
	// Anti is a write-after-read register dependence.
	Anti
	// Output is a write-after-write register dependence.
	Output
	// Mem orders memory operations that may alias.
	Mem
	// Ctrl orders side-effecting operations and block terminators.
	Ctrl
)

func (k DepKind) String() string {
	switch k {
	case True:
		return "true"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case Mem:
		return "mem"
	default:
		return "ctrl"
	}
}

// Edge is a dependence from one node to another with a minimum issue-cycle
// separation.
type Edge struct {
	To      int // node index within the graph
	Kind    DepKind
	Latency int
}

// Node wraps one operation with its dependence edges and path metrics.
type Node struct {
	Index  int // position within the block
	Op     *ir.Op
	Succs  []Edge
	Preds  []Edge
	Height int // latency-weighted longest path from this node's issue to block exit, inclusive
	Depth  int // earliest possible issue cycle given dependences alone
}

// Graph is the dependence graph of one basic block. Nodes appear in
// original program order.
type Graph struct {
	Block *ir.Block
	Nodes []*Node
	// CriticalLength is the dependence-height of the block: the minimum
	// schedule length on an infinitely wide machine.
	CriticalLength int
}

// LatencyFunc supplies operation latencies (typically machine.Desc.Latency).
type LatencyFunc func(op *ir.Op) int

// Options configures graph construction.
type Options struct {
	// Disambiguate enables the trivial static memory disambiguator:
	// accesses to different globals, or to the same global at provably
	// distinct constant indices, do not conflict. Off by default — the
	// paper's setting is conservative memory dependences.
	Disambiguate bool
}

// Build constructs the dependence graph for one block.
func Build(b *ir.Block, lat LatencyFunc, opts Options) *Graph {
	g := &Graph{Block: b, Nodes: make([]*Node, len(b.Ops))}
	for i, op := range b.Ops {
		g.Nodes[i] = &Node{Index: i, Op: op}
	}

	addEdge := func(from, to int, kind DepKind, latency int) {
		if from == to {
			return
		}
		// Skip duplicate edges with no stronger constraint.
		for i, e := range g.Nodes[from].Succs {
			if e.To == to && e.Kind == kind {
				if latency > e.Latency {
					g.Nodes[from].Succs[i].Latency = latency
					for j, pe := range g.Nodes[to].Preds {
						if pe.To == from && pe.Kind == kind {
							g.Nodes[to].Preds[j].Latency = latency
						}
					}
				}
				return
			}
		}
		g.Nodes[from].Succs = append(g.Nodes[from].Succs, Edge{To: to, Kind: kind, Latency: latency})
		g.Nodes[to].Preds = append(g.Nodes[to].Preds, Edge{To: from, Kind: kind, Latency: latency})
	}

	lastDef := map[ir.Reg]int{} // register -> defining node index
	lastUses := map[ir.Reg][]int{}
	var memOps []int     // indices of prior loads/stores, in order
	var lastBarrier = -1 // most recent call

	for i, op := range b.Ops {
		// Register dependences.
		for _, u := range op.Uses() {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i, True, lat(b.Ops[d]))
			}
		}
		if d := op.Def(); d != ir.NoReg {
			for _, u := range lastUses[d] {
				// A check-prediction op may rewrite a register while
				// speculative consumers of the predicted value are still
				// reading it: they tolerate observing the corrected value
				// early (the CCB/OVB machinery re-executes them if needed),
				// so no anti ordering is required.
				if op.Code == ir.CheckLd && b.Ops[u].Speculative {
					continue
				}
				addEdge(u, i, Anti, 0)
			}
			if prev, ok := lastDef[d]; ok {
				l := lat(b.Ops[prev]) - lat(op) + 1
				if l < 1 {
					l = 1
				}
				addEdge(prev, i, Output, l)
			}
		}

		// Memory dependences: loads read at issue, stores write at issue;
		// a strict one-cycle separation keeps ordering unambiguous.
		if op.Code.IsMemory() {
			isStore := op.Code == ir.Store
			for _, j := range memOps {
				prev := b.Ops[j]
				prevStore := prev.Code == ir.Store
				if !isStore && !prevStore {
					continue // load-load never conflicts
				}
				if opts.Disambiguate && provablyDistinct(b, j, i) {
					continue
				}
				addEdge(j, i, Mem, 1)
			}
			memOps = append(memOps, i)
		}

		// Calls are full barriers: ordered against everything before and
		// after (they may touch memory and have side effects).
		if op.Code == ir.Call {
			for j := 0; j < i; j++ {
				addEdge(j, i, Ctrl, lat(b.Ops[j]))
			}
			lastBarrier = i
		} else if lastBarrier >= 0 {
			addEdge(lastBarrier, i, Ctrl, lat(b.Ops[lastBarrier]))
		}

		// The terminator issues no earlier than every other operation.
		if op.Code.IsTerminator() {
			for j := 0; j < i; j++ {
				addEdge(j, i, Ctrl, 0)
			}
		}

		// Update def/use tracking after edges are drawn.
		for _, u := range op.Uses() {
			lastUses[u] = append(lastUses[u], i)
		}
		if d := op.Def(); d != ir.NoReg {
			lastDef[d] = i
			lastUses[d] = nil
		}
	}

	g.computePaths(lat)
	return g
}

// computePaths fills Depth, Height, and CriticalLength. Nodes are already
// topologically ordered (edges only go forward in program order).
func (g *Graph) computePaths(lat LatencyFunc) {
	for _, n := range g.Nodes {
		n.Depth = 0
		for _, e := range n.Preds {
			if d := g.Nodes[e.To].Depth + e.Latency; d > n.Depth {
				n.Depth = d
			}
		}
	}
	g.CriticalLength = 0
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := g.Nodes[i]
		n.Height = lat(n.Op)
		for _, e := range n.Succs {
			if h := g.Nodes[e.To].Height + e.Latency; h > n.Height {
				n.Height = h
			}
		}
		if n.Depth+n.Height > g.CriticalLength {
			g.CriticalLength = n.Depth + n.Height
		}
	}
}

// AddEdge inserts an extra dependence edge and recomputes path metrics.
// The speculation pass uses it to force non-speculative consumers of
// predicted values to schedule no earlier than the verifying
// check-prediction operation completes. Edges must point forward in program
// order (from < to) to preserve the topological node order.
func (g *Graph) AddEdge(from, to int, kind DepKind, latency int, lat LatencyFunc) {
	if from >= to {
		panic("ddg: AddEdge requires from < to")
	}
	g.Nodes[from].Succs = append(g.Nodes[from].Succs, Edge{To: to, Kind: kind, Latency: latency})
	g.Nodes[to].Preds = append(g.Nodes[to].Preds, Edge{To: from, Kind: kind, Latency: latency})
	g.computePaths(lat)
}

// OnCriticalPath reports whether node i lies on a longest dependence path.
func (g *Graph) OnCriticalPath(i int) bool {
	n := g.Nodes[i]
	return n.Depth+n.Height == g.CriticalLength
}

// TransitiveDependents returns the set of node indices reachable from roots
// via true-dependence edges (the candidates for value speculation).
func (g *Graph) TransitiveDependents(roots []int) map[int]bool {
	seen := make(map[int]bool)
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Nodes[i].Succs {
			if e.Kind != True || seen[e.To] {
				continue
			}
			seen[e.To] = true
			stack = append(stack, e.To)
		}
	}
	return seen
}

// provablyDistinct reports whether two memory ops in the block access
// addresses that cannot alias: distinct globals, or the same global at
// different constant offsets. It resolves each address register through the
// block's defs (Lea, Lea+constant Add).
func provablyDistinct(b *ir.Block, i, j int) bool {
	si, oki := staticAddr(b, i)
	sj, okj := staticAddr(b, j)
	if !oki || !okj {
		return false
	}
	if si.sym != sj.sym {
		return true
	}
	return si.constOff && sj.constOff && si.off != sj.off
}

type addrInfo struct {
	sym      string
	constOff bool
	off      int64
}

// staticAddr resolves the address of memory op at index idx by walking the
// block's earlier defs. It handles Lea and Add(Lea, MovI) patterns.
func staticAddr(b *ir.Block, idx int) (addrInfo, bool) {
	op := b.Ops[idx]
	base := op.A
	extra := op.Imm
	def := findDef(b, idx, base)
	if def == nil {
		return addrInfo{}, false
	}
	switch def.Code {
	case ir.Lea:
		return addrInfo{sym: def.Sym, constOff: true, off: def.Imm + extra}, true
	case ir.Add:
		l := findDef(b, indexOf(b, def), def.A)
		r := findDef(b, indexOf(b, def), def.B)
		if l != nil && l.Code == ir.Lea {
			if r != nil && r.Code == ir.MovI {
				return addrInfo{sym: l.Sym, constOff: true, off: l.Imm + r.Imm + extra}, true
			}
			return addrInfo{sym: l.Sym}, true
		}
		if r != nil && r.Code == ir.Lea {
			if l != nil && l.Code == ir.MovI {
				return addrInfo{sym: r.Sym, constOff: true, off: r.Imm + l.Imm + extra}, true
			}
			return addrInfo{sym: r.Sym}, true
		}
	}
	return addrInfo{}, false
}

func indexOf(b *ir.Block, op *ir.Op) int {
	for i, o := range b.Ops {
		if o == op {
			return i
		}
	}
	return -1
}

// findDef returns the last def of r before position idx, or nil if r is
// live-in or redefined ambiguously.
func findDef(b *ir.Block, idx int, r ir.Reg) *ir.Op {
	if r == ir.NoReg || idx < 0 {
		return nil
	}
	for i := idx - 1; i >= 0; i-- {
		if b.Ops[i].Def() == r {
			return b.Ops[i]
		}
	}
	return nil
}
