package ddg

import "vliwvp/internal/ir"

// Liveness holds per-block live-in/live-out register sets for one function.
type Liveness struct {
	In  []map[ir.Reg]bool // indexed by block ID
	Out []map[ir.Reg]bool
}

// ComputeLiveness runs the standard backward dataflow over the CFG. The
// speculation pass uses it to decide which speculated values escape their
// block and therefore must be verified before the block's terminator.
func ComputeLiveness(f *ir.Func) *Liveness {
	n := len(f.Blocks)
	lv := &Liveness{In: make([]map[ir.Reg]bool, n), Out: make([]map[ir.Reg]bool, n)}
	use := make([]map[ir.Reg]bool, n)
	def := make([]map[ir.Reg]bool, n)
	for i, b := range f.Blocks {
		use[i] = make(map[ir.Reg]bool)
		def[i] = make(map[ir.Reg]bool)
		lv.In[i] = make(map[ir.Reg]bool)
		lv.Out[i] = make(map[ir.Reg]bool)
		for _, op := range b.Ops {
			for _, u := range op.Uses() {
				if !def[i][u] {
					use[i][u] = true
				}
			}
			if d := op.Def(); d != ir.NoReg {
				def[i][d] = true
			}
		}
	}

	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.Out[i]
			for _, s := range b.Succs {
				for r := range lv.In[s] {
					if !out[r] {
						out[r] = true
						changed = true
					}
				}
			}
			in := lv.In[i]
			for r := range use[i] {
				if !in[r] {
					in[r] = true
					changed = true
				}
			}
			for r := range out {
				if !def[i][r] && !in[r] {
					in[r] = true
					changed = true
				}
			}
		}
	}
	return lv
}

// LiveOutAfter reports whether register r is live after position idx in
// block b: either some later op in the block reads it before any redefinition,
// or it is in the block's live-out set with no later redefinition.
func (lv *Liveness) LiveOutAfter(b *ir.Block, idx int, r ir.Reg) bool {
	for i := idx + 1; i < len(b.Ops); i++ {
		op := b.Ops[i]
		for _, u := range op.Uses() {
			if u == r {
				return true
			}
		}
		if op.Def() == r {
			return false
		}
	}
	return lv.Out[b.ID][r]
}
