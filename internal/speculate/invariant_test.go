package speculate_test

import (
	"math/bits"
	"testing"

	"vliwvp/internal/ddg"
	"vliwvp/internal/ifconv"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
	"vliwvp/internal/workload"
)

// TestStructuralInvariantsOnBenchmarks verifies, over every transformed
// block of every benchmark on every stock machine, the properties the
// dual-engine machine's liveness and correctness proofs rest on:
//
//  1. every CheckLd precedes every wait-masked operation in program order;
//  2. every LdPred precedes its CheckLd, and both exist exactly once;
//  3. a block's Synchronization-bit usage stays within the budget and no
//     bit is set by two operations;
//  4. wait masks reference only bits set within the block;
//  5. speculative ops are pure non-loads;
//  6. no CheckLd reads a predicted or speculative value;
//  7. ClearBits of distinct sites are disjoint and cover only speculative
//     bits of the same block;
//  8. no LdPred is preceded by a call in its block.
func TestStructuralInvariantsOnBenchmarks(t *testing.T) {
	for _, d := range machine.Stock() {
		for _, w := range workload.All() {
			prog, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			prof, err := profile.Collect(prog, "main")
			if err != nil {
				t.Fatal(err)
			}
			res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(d))
			if err != nil {
				t.Fatalf("%s %s: %v", d.Name, w.Name, err)
			}
			for bk := range res.Blocks {
				b := res.Prog.Func(bk.Func).Blocks[bk.Block]
				checkBlockInvariants(t, d.Name+"/"+w.Name, bk.Block, b, res)
			}
		}
	}
}

func checkBlockInvariants(t *testing.T, tag string, blockID int, b *ir.Block, res *speculate.Result) {
	t.Helper()
	lastCheck := -1
	firstWaiter := len(b.Ops)
	ldpredPos := map[int]int{}
	checkPos := map[int]int{}
	bitSetters := map[int]int{}
	var blockBits uint64
	callSeen := false
	lastProducer := map[ir.Reg]*ir.Op{}

	for i, op := range b.Ops {
		if op.Code == ir.Call {
			callSeen = true
		}
		switch op.Code {
		case ir.LdPred:
			if callSeen {
				t.Errorf("%s b%d: LdPred after a call (invariant 8)", tag, blockID)
			}
			if _, dup := ldpredPos[op.PredID]; dup {
				t.Errorf("%s b%d: duplicate LdPred for site %d", tag, blockID, op.PredID)
			}
			ldpredPos[op.PredID] = i
		case ir.CheckLd:
			if _, dup := checkPos[op.PredID]; dup {
				t.Errorf("%s b%d: duplicate CheckLd for site %d", tag, blockID, op.PredID)
			}
			checkPos[op.PredID] = i
			if i > lastCheck {
				lastCheck = i
			}
			for _, u := range op.Uses() {
				if p, ok := lastProducer[u]; ok && (p.Speculative || p.Code == ir.LdPred) {
					t.Errorf("%s b%d: CheckLd reads predicted value from %v (invariant 6)", tag, blockID, p)
				}
			}
		}
		if op.WaitBits != 0 && i < firstWaiter {
			firstWaiter = i
		}
		if op.SyncBit != ir.NoBit && op.Code != ir.CheckLd {
			if prev, dup := bitSetters[op.SyncBit]; dup {
				t.Errorf("%s b%d: bit %d set by ops %d and %d (invariant 3)", tag, blockID, op.SyncBit, prev, i)
			}
			bitSetters[op.SyncBit] = i
			blockBits |= 1 << uint(op.SyncBit)
		}
		if op.Speculative {
			if !op.Code.IsPure() || op.Code == ir.Load {
				t.Errorf("%s b%d: impure/load op marked speculative: %v (invariant 5)", tag, blockID, op)
			}
		}
		if d := op.Def(); d != ir.NoReg {
			lastProducer[d] = op
		}
	}

	// 1. checks before waiters.
	if lastCheck >= 0 && firstWaiter < lastCheck {
		t.Errorf("%s b%d: waiter at %d precedes check at %d (invariant 1)", tag, blockID, firstWaiter, lastCheck)
	}
	// 2. LdPred before its check, both present.
	for pred, lp := range ldpredPos {
		cp, ok := checkPos[pred]
		if !ok {
			t.Errorf("%s b%d: site %d has no CheckLd (invariant 2)", tag, blockID, pred)
			continue
		}
		if lp >= cp {
			t.Errorf("%s b%d: LdPred at %d not before CheckLd at %d (invariant 2)", tag, blockID, lp, cp)
		}
	}
	for pred := range checkPos {
		if _, ok := ldpredPos[pred]; !ok {
			t.Errorf("%s b%d: CheckLd for site %d lacks its LdPred", tag, blockID, pred)
		}
	}
	// 3. budget.
	if n := bits.OnesCount64(blockBits); n > 64 {
		t.Errorf("%s b%d: %d bits used (invariant 3)", tag, blockID, n)
	}
	// 4. wait masks reference block-local bits.
	for _, op := range b.Ops {
		if op.WaitBits&^blockBits != 0 {
			t.Errorf("%s b%d: %v waits on bits %#x outside block set %#x (invariant 4)",
				tag, blockID, op, op.WaitBits, blockBits)
		}
	}
	// 7. ClearBits disjoint across this block's sites, covering spec bits only.
	specBits := uint64(0)
	for _, op := range b.Ops {
		if op.Speculative && op.SyncBit != ir.NoBit {
			specBits |= 1 << uint(op.SyncBit)
		}
	}
	var seen uint64
	for pred := range checkPos {
		site := res.Sites[pred]
		if site.ClearBits&seen != 0 {
			t.Errorf("%s b%d: ClearBits overlap across sites (invariant 7)", tag, blockID)
		}
		if site.ClearBits&^specBits != 0 {
			t.Errorf("%s b%d: site %d clears non-speculative bits %#x (invariant 7)",
				tag, blockID, pred, site.ClearBits&^specBits)
		}
		seen |= site.ClearBits
	}
}

// TestTightBudgetsStillSatisfyInvariants squeezes the Synchronization-bit
// budget down to the minimum and re-checks the structural invariants — the
// regime where the planner must shed sites rather than un-speculate ops.
func TestTightBudgetsStillSatisfyInvariants(t *testing.T) {
	d := machine.W4
	for _, budget := range []int{2, 3, 4, 6} {
		for _, w := range workload.All() {
			prog, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			prof, err := profile.Collect(prog, "main")
			if err != nil {
				t.Fatal(err)
			}
			cfg := speculate.DefaultConfig(d)
			cfg.MaxSyncBits = budget
			res, err := speculate.Transform(prog, prof, cfg)
			if err != nil {
				t.Fatalf("budget %d, %s: %v", budget, w.Name, err)
			}
			for bk, info := range res.Blocks {
				b := res.Prog.Func(bk.Func).Blocks[bk.Block]
				checkBlockInvariants(t, w.Name, bk.Block, b, res)
				n := bits.OnesCount64(info.BitsUsed)
				if n > budget {
					t.Errorf("budget %d, %s b%d: %d bits used", budget, w.Name, bk.Block, n)
				}
			}
		}
	}
}

// TestNoWaiterPacksWithItsSetter pins the schedule-level liveness rule the
// engines rely on: the decoder samples the Synchronization register before
// an instruction issues, so no long instruction may contain both an op that
// SETS bit b and an op that WAITS on b — the waiter would slip past its own
// guard with the bit not yet visible. (Regression: an if-converted Select
// packed into the same cycle as its block's terminator let unverified
// values escape.)
func TestNoWaiterPacksWithItsSetter(t *testing.T) {
	for _, d := range machine.Stock() {
		for _, w := range workload.All() {
			prog, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			ifconv.Convert(prog, ifconv.DefaultConfig())
			prof, err := profile.Collect(prog, "main")
			if err != nil {
				t.Fatal(err)
			}
			res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(d))
			if err != nil {
				t.Fatal(err)
			}
			for bk := range res.Blocks {
				b := res.Prog.Func(bk.Func).Blocks[bk.Block]
				g := speculate.BuildGraph(b, d, ddg.Options{})
				s := sched.ScheduleBlock(b, g, d)
				for cyc, in := range s.Instrs {
					var set uint64
					for _, op := range in.Ops {
						if op.SyncBit != ir.NoBit && op.Code != ir.CheckLd {
							set |= 1 << uint(op.SyncBit)
						}
					}
					for _, op := range in.Ops {
						if op.WaitBits&set != 0 {
							t.Errorf("%s %s %v cycle %d: %v waits on bits %#x set in the same instruction",
								d.Name, w.Name, bk, cyc, op, op.WaitBits&set)
						}
					}
				}
			}
		}
	}
}
