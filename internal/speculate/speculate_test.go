package speculate_test

import (
	"testing"

	"vliwvp/internal/ddg"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

// kernel has one hot loop whose load feeds a long dependence chain.
const kernel = `
var a[512]
func main() {
	for var i = 0; i < 512; i = i + 1 { a[i] = i * 8 }
	var s = 0
	for var i = 0; i < 512; i = i + 1 {
		var x = a[i]
		var y = x * 3 + 7
		var z = y - x
		s = s + z
	}
	return s
}`

func prep(t *testing.T, src string) (*ir.Program, *profile.Profile) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	opt.Optimize(prog)
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return prog, prof
}

func transform(t *testing.T, src string) (*ir.Program, *profile.Profile, *speculate.Result) {
	t.Helper()
	prog, prof := prep(t, src)
	res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(machine.W4))
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	return prog, prof, res
}

func TestTransformSelectsHotPredictableLoad(t *testing.T) {
	_, _, res := transform(t, kernel)
	if len(res.Sites) == 0 {
		t.Fatal("no prediction sites selected; the strided load should qualify")
	}
	found := false
	for _, s := range res.Sites {
		if s.Rate >= 0.65 && s.Scheme == profile.SchemeStride {
			found = true
		}
	}
	if !found {
		t.Errorf("no stride-predictable site among %+v", res.Sites)
	}
}

func TestOriginalProgramUntouched(t *testing.T) {
	prog, prof := prep(t, kernel)
	before := prog.String()
	if _, err := speculate.Transform(prog, prof, speculate.DefaultConfig(machine.W4)); err != nil {
		t.Fatal(err)
	}
	if prog.String() != before {
		t.Error("Transform mutated its input program")
	}
}

func TestTransformedStructure(t *testing.T) {
	_, _, res := transform(t, kernel)
	for bk, info := range res.Blocks {
		f := res.Prog.Func(bk.Func)
		b := f.Blocks[bk.Block]

		var ldpreds, checks, specs int
		seenNonLdPred := false
		checkSeen := map[int]bool{}
		for _, op := range b.Ops {
			switch op.Code {
			case ir.LdPred:
				if seenNonLdPred {
					t.Errorf("%v: LdPred not at block head", bk)
				}
				if op.SyncBit == ir.NoBit {
					t.Errorf("%v: LdPred without sync bit", bk)
				}
				ldpreds++
			case ir.CheckLd:
				checks++
				checkSeen[op.PredID] = true
				seenNonLdPred = true
			default:
				seenNonLdPred = true
				if op.Speculative {
					specs++
					if op.SyncBit == ir.NoBit {
						t.Errorf("%v: speculative op without sync bit: %v", bk, op)
					}
				}
			}
		}
		if ldpreds != len(info.SiteIDs) || checks != len(info.SiteIDs) {
			t.Errorf("%v: %d LdPred / %d CheckLd for %d sites", bk, ldpreds, checks, len(info.SiteIDs))
		}
		if specs == 0 {
			t.Errorf("%v: no speculative ops marked", bk)
		}
		if term := b.Terminator(); term == nil {
			t.Errorf("%v: block lost its terminator", bk)
		}
		for _, sid := range info.SiteIDs {
			if !checkSeen[res.Sites[sid].ID] {
				t.Errorf("%v: site %d has no CheckLd", bk, sid)
			}
		}
	}
}

func TestCheckPlacedBeforeFirstStore(t *testing.T) {
	src := `
var a[256]
var out[256]
func main() {
	for var i = 0; i < 256; i = i + 1 { a[i] = i }
	for var i = 0; i < 256; i = i + 1 {
		var x = a[i]
		out[i] = x * 2 + 1
	}
	return out[7]
}`
	_, _, res := transform(t, src)
	if len(res.Blocks) == 0 {
		t.Fatal("nothing speculated")
	}
	for bk := range res.Blocks {
		b := res.Prog.Func(bk.Func).Blocks[bk.Block]
		storeSeen := false
		for _, op := range b.Ops {
			if op.Code == ir.Store {
				storeSeen = true
			}
			if op.Code == ir.CheckLd && storeSeen {
				t.Errorf("%v: CheckLd after a store would read the wrong memory version", bk)
			}
		}
	}
}

func TestWaitBitsOnNonSpeculativeConsumers(t *testing.T) {
	_, _, res := transform(t, kernel)
	anyWait := false
	for bk := range res.Blocks {
		b := res.Prog.Func(bk.Func).Blocks[bk.Block]
		bits := res.Blocks[bk].BitsUsed
		for _, op := range b.Ops {
			if op.WaitBits != 0 {
				anyWait = true
				if op.Speculative {
					t.Errorf("%v: speculative op carries wait bits: %v", bk, op)
				}
				if op.WaitBits&^bits != 0 {
					t.Errorf("%v: op waits on bits %#x outside block's set %#x", bk, op.WaitBits, bits)
				}
			}
		}
	}
	if !anyWait {
		t.Error("no non-speculative op waits on any bit; the store or terminator should")
	}
}

func TestClearBitsAreSingleSiteOnly(t *testing.T) {
	// Two independent predictable loads feeding a shared consumer: the
	// shared consumer's bit must not appear in either check's ClearBits.
	src := `
var a[256]
var b[256]
func main() {
	for var i = 0; i < 256; i = i + 1 { a[i] = i b[i] = i * 2 }
	var s = 0
	for var i = 0; i < 256; i = i + 1 {
		var x = a[i]
		var y = b[i]
		var both = x * y    # depends on both predictions
		var onlyx = x * 3   # depends on a[] only
		s = s + both + onlyx
	}
	return s
}`
	_, _, res := transform(t, src)
	var twoSiteBlocks int
	for bk, info := range res.Blocks {
		if len(info.SiteIDs) < 2 {
			continue
		}
		twoSiteBlocks++
		blk := res.Prog.Func(bk.Func).Blocks[bk.Block]
		// Collect per-op sync bits of speculative ops.
		specBit := map[int]uint64{}
		for _, op := range blk.Ops {
			if op.Speculative && op.SyncBit != ir.NoBit {
				specBit[op.ID] = 1 << uint(op.SyncBit)
			}
		}
		var clearUnion uint64
		for _, sid := range info.SiteIDs {
			clearUnion |= res.Sites[sid].ClearBits
		}
		// At least one spec op (the shared consumer) must be cleared by the
		// CCE, not by either check.
		cceCleared := false
		for _, bit := range specBit {
			if clearUnion&bit == 0 {
				cceCleared = true
			}
		}
		if !cceCleared {
			t.Errorf("%v: every spec bit is in some check's ClearBits; the shared consumer must be CCE-cleared", bk)
		}
		// No bit may be cleared by two different checks.
		for i, s1 := range info.SiteIDs {
			for _, s2 := range info.SiteIDs[i+1:] {
				if res.Sites[s1].ClearBits&res.Sites[s2].ClearBits != 0 {
					t.Errorf("%v: sites %d and %d share ClearBits", bk, s1, s2)
				}
			}
		}
	}
	if twoSiteBlocks == 0 {
		t.Skip("no block selected two sites; selection too conservative for this source")
	}
}

func TestSelectedLoadsMutuallyIndependent(t *testing.T) {
	// A pointer-chase: second load's address depends on the first load.
	// Both may be predictable, but only independent ones may be selected.
	src := `
var next[128]
func main() {
	for var i = 0; i < 128; i = i + 1 { next[i] = (i + 1) % 128 }
	var p = 0
	var s = 0
	for var i = 0; i < 2000; i = i + 1 {
		var q = next[p]
		var r = next[q]    # address depends on q
		s = s + r
		p = q
	}
	return s
}`
	_, _, res := transform(t, src)
	for bk, info := range res.Blocks {
		if len(info.SiteIDs) < 2 {
			continue
		}
		b := res.Prog.Func(bk.Func).Blocks[bk.Block]
		// No CheckLd operand may carry wait bits or read a speculative
		// producer: verification must use correct operands.
		lastProducer := map[ir.Reg]*ir.Op{}
		for _, op := range b.Ops {
			if op.Code == ir.CheckLd {
				for _, u := range op.Uses() {
					if p, ok := lastProducer[u]; ok && (p.Speculative || p.Code == ir.LdPred) {
						t.Errorf("%v: CheckLd address produced by predicted op %v", bk, p)
					}
				}
			}
			if d := op.Def(); d != ir.NoReg {
				lastProducer[d] = op
			}
		}
	}
}

func TestTransformedBlocksScheduleLegally(t *testing.T) {
	_, _, res := transform(t, kernel)
	d := machine.W4
	for _, f := range res.Prog.Funcs {
		for _, b := range f.Blocks {
			g := speculate.BuildGraph(b, d, ddg.Options{})
			s := sched.ScheduleBlock(b, g, d)
			if err := s.Validate(g, d); err != nil {
				t.Errorf("%s b%d: %v", f.Name, b.ID, err)
			}
		}
	}
}

func TestSpeculationShortensBestCaseSchedule(t *testing.T) {
	prog, _, res := transform(t, kernel)
	d := machine.W4
	improved := false
	for bk := range res.Blocks {
		orig := prog.Func(bk.Func).Blocks[bk.Block]
		og := ddg.Build(orig, d.Latency, ddg.Options{})
		ol := sched.ScheduleBlock(orig, og, d).Length()

		spec := res.Prog.Func(bk.Func).Blocks[bk.Block]
		sg := speculate.BuildGraph(spec, d, ddg.Options{})
		sl := sched.ScheduleBlock(spec, sg, d).Length()
		if sl < ol {
			improved = true
		}
		if sl > ol+2 {
			t.Errorf("%v: speculated schedule %d much longer than original %d", bk, sl, ol)
		}
	}
	if !improved {
		t.Error("speculation shortened no block schedule")
	}
}

func TestNoSitesWhenNothingPredictable(t *testing.T) {
	src := `
var a[509]
func main() {
	var x = 1
	for var i = 0; i < 509; i = i + 1 {
		x = (x * 1103515245 + 12345) % 509
		if x < 0 { x = x + 509 }
		a[i] = x
	}
	var s = 0
	var j = 1
	for var i = 0; i < 509; i = i + 1 {
		s = s + a[j] * 3 + 1
		j = (j * 263 + 71) % 509
	}
	return s
}`
	_, _, res := transform(t, src)
	for _, s := range res.Sites {
		if s.Rate < 0.65 {
			t.Errorf("site %+v selected below threshold", s)
		}
	}
}

func TestSyncBitBudgetRespected(t *testing.T) {
	prog, prof := prep(t, kernel)
	cfg := speculate.DefaultConfig(machine.W4)
	cfg.MaxSyncBits = 3 // very tight: 1 LdPred bit + 2 spec bits
	res, err := speculate.Transform(prog, prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for bk, info := range res.Blocks {
		n := 0
		for bit := 0; bit < 64; bit++ {
			if info.BitsUsed&(1<<uint(bit)) != 0 {
				n++
			}
		}
		if n > 3 {
			t.Errorf("%v uses %d bits, budget 3", bk, n)
		}
	}
}

func TestSemanticEquivalencePreservedOutsideSpeculation(t *testing.T) {
	// Blocks without speculation must be byte-identical between original
	// and transformed programs.
	prog, _, res := transform(t, kernel)
	for _, f := range prog.Funcs {
		tf := res.Prog.Func(f.Name)
		for i, b := range f.Blocks {
			bk := profile.BlockKey{Func: f.Name, Block: i}
			if _, speculated := res.Blocks[bk]; speculated {
				continue
			}
			if len(tf.Blocks[i].Ops) != len(b.Ops) {
				t.Errorf("%s b%d changed without speculation", f.Name, i)
			}
		}
	}
}
