// Package speculate implements the compiler half of the paper: selecting
// predictable loads on each block's critical path, rewriting the block with
// LdPred and check-prediction operation forms, marking speculative and
// non-speculative forms, and statically allocating Synchronization-register
// bits and per-instruction wait masks (§2.1 of the paper).
//
// The transformed block layout is:
//
//	LdPred ops (one per selected load, no input dependences, issue early)
//	original operations, selected loads removed, dependents marked
//	  speculative where safe
//	CheckLd placed at the latest memory-safe point (before the first
//	  store/call that followed the original load, so the re-executed load
//	  observes the same memory version)
//	terminator (waits on live-out speculated values)
//
// Consumers between a LdPred and its CheckLd read the predicted register
// value; consumers after the CheckLd read the verified value and need no
// synchronization.
package speculate

import (
	"fmt"
	"sort"

	"vliwvp/internal/ddg"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/predict"
	"vliwvp/internal/profile"
)

// Config controls load selection and transformation.
type Config struct {
	// Threshold is the minimum profiled prediction rate for a load to be
	// selected. The paper uses 0.65.
	Threshold float64
	// MaxPredsPerBlock caps LdPred sites per block (outcome masks use one
	// bit per site).
	MaxPredsPerBlock int
	// MaxSyncBits caps Synchronization-register bits allocated per block.
	MaxSyncBits int
	// Machine supplies operation latencies for critical-path analysis.
	Machine *machine.Desc
	// DDG configures dependence construction.
	DDG ddg.Options
	// CriticalOnly restricts selection to loads on (or within Slack cycles
	// of) the longest critical path — the paper's policy. When false, any
	// sufficiently predictable load with in-block dependents qualifies.
	CriticalOnly bool
	// Slack widens the critical-path test: a load qualifies when its
	// longest path through the block is within Slack cycles of the block's
	// critical length, or when its dependent chain alone spans at least
	// half of it (a deep chain is worth compressing even slightly off the
	// single longest path).
	Slack int
	// MinCount ignores loads executed fewer times in the profile (noise).
	MinCount int64
	// Predictor selects the value-prediction scheme per site. Nil (or
	// scheme "profiled") keeps the paper's policy: each site gets the
	// better of stride and FCM from the profile. Scheme "auto" takes the
	// zoo-wide profiled argmax per site; any other stock scheme forces
	// that family on every site, gated by its own profiled rate against
	// Threshold. The config also carries the runtime confidence-gating
	// parameters the engine consumes.
	Predictor *predict.Config
	// Control carries the control-speculation configuration (taken-branch
	// penalty, redirect/flush latencies, optional dynamic branch predictor)
	// through to the engines. The transform itself does not consult it; it
	// rides the config so one value parameterizes compile and simulate, and
	// so cache fingerprints distinguish control variants.
	Control machine.ControlConfig
}

// siteRate applies the configured scheme policy to one profiled load,
// returning the rate that competes against Threshold and the scheme the
// site would run with.
func siteRate(lp *profile.LoadProfile, cfg *Config) (float64, profile.Scheme) {
	switch cfg.Predictor.SchemeName() {
	case "profiled":
		return lp.Rate(), lp.Best()
	case "auto":
		s, r := lp.ZooBest()
		return r, s
	default:
		s, _ := profile.SchemeByName(cfg.Predictor.SchemeName())
		return lp.RateOf(s), s
	}
}

// DefaultConfig returns the paper's experimental settings on the given
// machine.
func DefaultConfig(d *machine.Desc) Config {
	return Config{
		Threshold:        0.65,
		MaxPredsPerBlock: 4,
		MaxSyncBits:      64,
		Machine:          d,
		CriticalOnly:     true,
		Slack:            6,
		MinCount:         4,
	}
}

// Site is one static prediction site (a selected load).
type Site struct {
	ID        int // global prediction-site ID (Op.PredID)
	Func      string
	Block     int
	LoadOpID  int // original load's op ID (preserved on the CheckLd)
	LdPredID  int // op ID of the inserted LdPred
	Scheme    profile.Scheme
	Rate      float64
	SyncBit   int
	ClearBits uint64
}

// BlockInfo summarizes the transformation of one block.
type BlockInfo struct {
	Key profile.BlockKey
	// SiteIDs lists this block's prediction sites in ascending original
	// load op-ID order — the same order profile.Outcomes masks use.
	SiteIDs []int
	// SpecOpIDs lists ops marked speculative.
	SpecOpIDs []int
	// BitsUsed is the set of Synchronization-register bits the block sets.
	BitsUsed uint64
}

// Result is the outcome of the speculation pass.
type Result struct {
	// Prog is the transformed program (a clone; the input is untouched).
	Prog *ir.Program
	// Sites indexes prediction sites by ID.
	Sites []*Site
	// Blocks maps transformed blocks to their metadata.
	Blocks map[profile.BlockKey]*BlockInfo
	// Selection feeds profile.CollectOutcomes (original op IDs).
	Selection *profile.Selection
}

// Transform applies the speculation pass to every block of every function.
func Transform(prog *ir.Program, prof *profile.Profile, cfg Config) (*Result, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("speculate: Config.Machine is required")
	}
	if err := cfg.Predictor.Validate(); err != nil {
		return nil, fmt.Errorf("speculate: %w", err)
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.65
	}
	if cfg.MaxPredsPerBlock <= 0 {
		cfg.MaxPredsPerBlock = 4
	}
	if cfg.MaxPredsPerBlock > 30 {
		cfg.MaxPredsPerBlock = 30 // outcome masks are uint32
	}
	if cfg.MaxSyncBits <= 0 || cfg.MaxSyncBits > 64 {
		cfg.MaxSyncBits = 64
	}

	res := &Result{
		Prog:      prog.Clone(),
		Blocks:    map[profile.BlockKey]*BlockInfo{},
		Selection: profile.NewSelection(),
	}
	for _, f := range res.Prog.Funcs {
		lv := ddg.ComputeLiveness(f)
		for _, b := range f.Blocks {
			if err := transformBlock(res, f, b, lv, prof, cfg); err != nil {
				return nil, fmt.Errorf("speculate: %s b%d: %w", f.Name, b.ID, err)
			}
		}
	}
	return res, nil
}

// candidate is a load considered for prediction.
type candidate struct {
	node   int
	op     *ir.Op
	rate   float64
	scheme profile.Scheme
	height int
}

func transformBlock(res *Result, f *ir.Func, b *ir.Block, lv *ddg.Liveness,
	prof *profile.Profile, cfg Config) error {

	lat := cfg.Machine.Latency
	g := ddg.Build(b, lat, cfg.DDG)

	cands := selectCandidates(f, b, g, prof, cfg)
	if len(cands) == 0 {
		return nil
	}

	// Reject candidates that are transitive dependents of a selected one:
	// check-prediction operands must never themselves be predicted.
	var chosen []candidate
	taken := map[int]bool{}
	for _, c := range cands {
		if len(chosen) >= cfg.MaxPredsPerBlock {
			break
		}
		dependent := false
		for sel := range taken {
			if g.TransitiveDependents([]int{sel})[c.node] {
				dependent = true
				break
			}
		}
		if dependent {
			continue
		}
		// Also reject a candidate the already-chosen ones depend on.
		deps := g.TransitiveDependents([]int{c.node})
		for sel := range taken {
			if deps[sel] {
				dependent = true
				break
			}
		}
		if dependent {
			continue
		}
		taken[c.node] = true
		chosen = append(chosen, c)
	}
	if len(chosen) == 0 {
		return nil
	}
	// chosen stays in priority (height) order through planning so that bit
	// pressure sheds the least valuable site first; the commit below sorts
	// the survivors into mask-bit order (ascending original op ID).

	// Plan placements before committing to anything. Deadlock-freedom of
	// the in-order dual-engine machine requires that EVERY check-prediction
	// op precede EVERY waiter (an op whose wait mask can stall the VLIW
	// Engine) in program order: a stalled waiter blocks all later issues,
	// including any check that would have cleared its bits — and a blocked
	// check can in turn wedge the in-order Compensation Code Engine behind
	// an unresolved entry. So every check position is capped at the block's
	// first waiter, and a site whose speculative window collapses under the
	// cap is dropped.
	type sitePlan struct {
		cand     candidate
		specSet  map[int]bool
		checkPos int
	}
	var plans []*sitePlan
	for _, c := range chosen {
		plans = append(plans, &sitePlan{
			cand:     c,
			specSet:  map[int]bool{},
			checkPos: checkPlacement(b, c.node),
		})
	}
	for iter := 0; ; iter++ {
		if iter > 4*len(b.Ops)+8 {
			return fmt.Errorf("check-placement planning did not converge")
		}
		for _, p := range plans {
			for n := range p.specSet {
				delete(p.specSet, n)
			}
			markSpeculative(g, p.cand.node, p.checkPos, p.specSet)
		}
		firstWaiter := len(b.Ops)
		for _, p := range plans {
			if m := firstNonSpecConsumer(b, p.cand.node, p.specSet, p.checkPos); m < firstWaiter {
				firstWaiter = m
			}
		}
		changed := false
		kept := plans[:0]
		for _, p := range plans {
			pos := p.checkPos
			if firstWaiter < pos {
				pos = firstWaiter
			}
			if pos <= p.cand.node {
				changed = true // dropping a site changes the waiter set
				continue
			}
			if pos != p.checkPos {
				p.checkPos = pos
				changed = true
			}
			kept = append(kept, p)
		}
		plans = kept
		// Synchronization-bit demand: one bit per site plus one per
		// speculative op (shared dependents counted once). If the budget
		// is exceeded, shed the lowest-priority site and re-plan — bits
		// cannot be taken from individual speculative ops later, because
		// un-speculating an op after placement would put a waiter in
		// front of the checks and re-open the deadlock window.
		if len(plans) > 0 {
			union := map[int]bool{}
			for _, p := range plans {
				for n := range p.specSet {
					union[n] = true
				}
			}
			if len(plans)+len(union) > cfg.MaxSyncBits {
				plans = plans[:len(plans)-1]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if len(plans) == 0 {
		return nil
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].cand.op.ID < plans[j].cand.op.ID })

	// Commit: register sites and allocate Synchronization bits.
	bk := profile.BlockKey{Func: f.Name, Block: b.ID}
	info := &BlockInfo{Key: bk}
	nextBit := 0
	allocBit := func() (int, bool) {
		if nextBit >= cfg.MaxSyncBits {
			return 0, false
		}
		bit := nextBit
		nextBit++
		info.BitsUsed |= 1 << uint(bit)
		return bit, true
	}

	type siteWork struct {
		cand    candidate
		site    *Site
		specSet map[int]bool // node indices speculated for this site
	}
	var work []*siteWork
	checkPos := make([]int, 0, len(plans))
	for _, p := range plans {
		bit, ok := allocBit()
		if !ok {
			return fmt.Errorf("site bits exhausted after planning (budget %d)", cfg.MaxSyncBits)
		}
		site := &Site{
			ID:       len(res.Sites),
			Func:     f.Name,
			Block:    b.ID,
			LoadOpID: p.cand.op.ID,
			Scheme:   p.cand.scheme,
			Rate:     p.cand.rate,
			SyncBit:  bit,
		}
		res.Sites = append(res.Sites, site)
		res.Selection.Add(f.Name, b.ID, p.cand.op.ID, p.cand.scheme)
		info.SiteIDs = append(info.SiteIDs, site.ID)
		work = append(work, &siteWork{cand: p.cand, site: site, specSet: p.specSet})
		checkPos = append(checkPos, p.checkPos)
	}
	if len(work) == 0 {
		return nil
	}

	// specPredSets[node] = bitset over work indices whose prediction the
	// node's value transitively consumes.
	specPredSets := map[int]uint32{}
	for wi, w := range work {
		for n := range w.specSet {
			specPredSets[n] |= 1 << uint(wi)
		}
	}

	// Allocate sync bits for speculative ops. The planning loop already
	// shed sites until demand fits the budget, so exhaustion here means a
	// bookkeeping bug, not an input condition.
	specBit := map[int]int{} // node -> sync bit
	order := make([]int, 0, len(specPredSets))
	for n := range specPredSets {
		order = append(order, n)
	}
	sort.Ints(order)
	for _, n := range order {
		bit, ok := allocBit()
		if !ok {
			return fmt.Errorf("synchronization bits exhausted after planning (budget %d)", cfg.MaxSyncBits)
		}
		specBit[n] = bit
	}

	// ClearBits per site: bits of spec ops depending solely on that site.
	for wi, w := range work {
		for n, set := range specPredSets {
			if set == 1<<uint(wi) {
				w.site.ClearBits |= 1 << uint(specBit[n])
			}
		}
	}

	// ---- Rewrite the block ----
	oldOps := b.Ops
	specByOp := map[*ir.Op]int{} // original op -> sync bit
	for n, bit := range specBit {
		specByOp[g.Nodes[n].Op] = bit
	}

	// Build LdPred ops.
	var newOps []*ir.Op
	for _, w := range work {
		lp := f.NewOp(ir.LdPred)
		lp.Dest = w.cand.op.Dest
		lp.PredID = w.site.ID
		lp.SyncBit = w.site.SyncBit
		w.site.LdPredID = lp.ID
		newOps = append(newOps, lp)
	}

	// Copy body, dropping selected loads, inserting CheckLds at their
	// placement points, and marking speculative forms.
	checkAt := map[int][]*siteWork{} // original node index -> checks to insert before it
	for wi, w := range work {
		checkAt[checkPos[wi]] = append(checkAt[checkPos[wi]], w)
	}
	isSelected := map[*ir.Op]bool{}
	for _, w := range work {
		isSelected[w.cand.op] = true
	}

	for n, op := range oldOps {
		for _, w := range checkAt[n] {
			chk := w.cand.op // reuse the original load op object (keeps its ID)
			chk.Code = ir.CheckLd
			chk.PredID = w.site.ID
			chk.ClearBits = w.site.ClearBits
			newOps = append(newOps, chk)
		}
		if isSelected[op] {
			continue // moved to its check position
		}
		if bit, ok := specByOp[op]; ok {
			op.Speculative = true
			op.SyncBit = bit
			info.SpecOpIDs = append(info.SpecOpIDs, op.ID)
		}
		newOps = append(newOps, op)
	}
	// Checks that belong at the very end (placement == len(oldOps)).
	for _, w := range checkAt[len(oldOps)] {
		chk := w.cand.op
		chk.Code = ir.CheckLd
		chk.PredID = w.site.ID
		chk.ClearBits = w.site.ClearBits
		newOps = append(newOps, chk)
	}
	// Keep the terminator last.
	newOps = moveTerminatorLast(newOps)
	b.Ops = newOps

	computeWaitBits(f, b, lv)
	res.Blocks[bk] = info
	return nil
}

// selectCandidates finds predictable loads worth speculating, ordered by
// descending dependence height (deepest chains first).
func selectCandidates(f *ir.Func, b *ir.Block, g *ddg.Graph,
	prof *profile.Profile, cfg Config) []candidate {

	var cands []candidate
	for i, node := range g.Nodes {
		op := node.Op
		if op.Code != ir.Load {
			continue
		}
		lp := prof.Load(f.Name, op.ID)
		if lp == nil || lp.Count < cfg.MinCount {
			continue
		}
		rate, scheme := siteRate(lp, &cfg)
		if rate < cfg.Threshold {
			continue
		}
		if cfg.CriticalOnly &&
			node.Depth+node.Height < g.CriticalLength-cfg.Slack &&
			node.Height*2 < g.CriticalLength {
			continue
		}
		if !eligible(b, g, i) {
			continue
		}
		cands = append(cands, candidate{
			node: i, op: op, rate: rate, scheme: scheme, height: node.Height,
		})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].height > cands[j].height })
	return cands
}

// eligible checks the structural preconditions for predicting the load at
// node i: its destination register must be written exactly once in the
// block (by the load), never read before the load, and the load must have
// at least one true dependent inside the block.
func eligible(b *ir.Block, g *ddg.Graph, i int) bool {
	op := b.Ops[i]
	dest := op.Dest
	if dest == ir.NoReg {
		return false
	}
	// A call preceding the load would stall (calls barrier on an empty
	// Synchronization register) while the hoisted LdPred's bit is set,
	// before the check could ever issue to clear it.
	for j := 0; j < i; j++ {
		if b.Ops[j].Code == ir.Call {
			return false
		}
	}
	for j, other := range b.Ops {
		if j == i {
			continue
		}
		if other.Def() == dest {
			return false // multiple writers of dest in block
		}
		if j < i {
			for _, u := range other.Uses() {
				if u == dest {
					return false // live-in value of dest read before the load
				}
			}
		}
	}
	hasDependent := false
	for _, e := range g.Nodes[i].Succs {
		if e.Kind == ddg.True {
			hasDependent = true
			break
		}
	}
	return hasDependent
}

// checkPlacement returns the node index before which the CheckLd must be
// inserted: the first store/call after the load (so the re-executed load
// reads the same memory version), or the terminator position.
func checkPlacement(b *ir.Block, loadNode int) int {
	for j := loadNode + 1; j < len(b.Ops); j++ {
		code := b.Ops[j].Code
		if code == ir.Store || code == ir.Call || code.IsTerminator() {
			return j
		}
	}
	return len(b.Ops)
}

// firstNonSpecConsumer returns the index of the earliest operation before
// bound that reads a value produced by the predicted load or its
// speculative set without itself being speculative, or bound if none.
func firstNonSpecConsumer(b *ir.Block, loadNode int, spec map[int]bool, bound int) int {
	predicted := map[ir.Reg]bool{}
	if d := b.Ops[loadNode].Def(); d != ir.NoReg {
		predicted[d] = true
	}
	for j := loadNode + 1; j < bound; j++ {
		if spec[j] {
			if d := b.Ops[j].Def(); d != ir.NoReg {
				predicted[d] = true
			}
			continue
		}
		for _, u := range b.Ops[j].Uses() {
			if predicted[u] {
				return j
			}
		}
		// A non-speculative redefinition stops the predicted value.
		if d := b.Ops[j].Def(); d != ir.NoReg {
			delete(predicted, d)
		}
	}
	return bound
}

// markSpeculative walks true-dependence edges from the load, marking pure
// ops positioned before the check placement as speculative, and stopping
// propagation at impure ops or ops at/after the check (those read verified
// values).
func markSpeculative(g *ddg.Graph, loadNode, checkPos int, spec map[int]bool) {
	stack := []int{loadNode}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Nodes[n].Succs {
			if e.Kind != ddg.True || spec[e.To] {
				continue
			}
			to := g.Nodes[e.To]
			if e.To >= checkPos {
				continue // reads the verified value
			}
			if !to.Op.Code.IsPure() || to.Op.Code == ir.Load {
				// Impure ops stay non-speculative (wait bits cover them).
				// Loads do too: re-executing a load in the Compensation
				// Code Engine could observe memory stores that program
				// order places after it, so a dependent load instead waits
				// for verification and reads the correct address once.
				continue
			}
			spec[e.To] = true
			stack = append(stack, e.To)
		}
	}
}

// escapesBlock reports whether the value written into r at position idx is
// still in r when the block exits and some successor block may read it.
// Uses inside the block are irrelevant here: in-block consumers carry their
// own wait bits or are speculative themselves.
func escapesBlock(b *ir.Block, idx int, r ir.Reg, lv *ddg.Liveness) bool {
	for i := idx + 1; i < len(b.Ops); i++ {
		if b.Ops[i].Def() == r {
			return false
		}
	}
	return lv.Out[b.ID][r]
}

// moveTerminatorLast restores the invariant that the terminator ends the
// block (check insertion at the terminator position would otherwise place
// the check after it).
func moveTerminatorLast(ops []*ir.Op) []*ir.Op {
	ti := -1
	for i, op := range ops {
		if op.Code.IsTerminator() {
			ti = i
			break
		}
	}
	if ti < 0 || ti == len(ops)-1 {
		return ops
	}
	term := ops[ti]
	out := append(ops[:ti:ti], ops[ti+1:]...)
	return append(out, term)
}

// computeWaitBits fills Op.WaitBits for every non-speculative operation:
// for each source operand, the Synchronization bit of the most recent
// in-block producer whose value is predicted (a LdPred or a speculative
// op). Terminators additionally wait on every speculated value that is
// live-out of the block, and calls/returns act as full barriers at run
// time (the engine enforces that; no static bits needed).
func computeWaitBits(f *ir.Func, b *ir.Block, lv *ddg.Liveness) {
	lastProducer := map[ir.Reg]*ir.Op{}
	for _, op := range b.Ops {
		op.WaitBits = 0
		if !op.Speculative && op.Code != ir.LdPred {
			for _, u := range op.Uses() {
				if p, ok := lastProducer[u]; ok && p.SyncBit != ir.NoBit {
					op.WaitBits |= 1 << uint(p.SyncBit)
				}
			}
		}
		if d := op.Def(); d != ir.NoReg {
			lastProducer[d] = op
		}
	}
	// Terminator waits for live-out speculated values.
	if term := b.Terminator(); term != nil {
		for idx, op := range b.Ops {
			if op.SyncBit == ir.NoBit || op.Code == ir.CheckLd {
				continue
			}
			d := op.Def()
			if d == ir.NoReg {
				continue
			}
			// The LdPred destination is always rewritten by its CheckLd, so
			// only speculative ops can leak live-out predicted values.
			if op.Code == ir.LdPred {
				continue
			}
			if escapesBlock(b, idx, d, lv) {
				term.WaitBits |= 1 << uint(op.SyncBit)
			}
		}
	}
}
