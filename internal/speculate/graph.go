package speculate

import (
	"vliwvp/internal/ddg"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
)

// BuildGraph constructs the dependence graph of a transformed block and
// injects the synchronization edges the plain builder cannot see: an
// operation whose wait mask includes a Synchronization bit cannot issue
// before the check-prediction operation that clears that bit (on a correct
// prediction) completes. The list scheduler therefore places waiting
// operations where the paper's Figure 3(b) places them, instead of packing
// them early and leaving the whole delay to run-time stalls.
func BuildGraph(b *ir.Block, d *machine.Desc, opts ddg.Options) *ddg.Graph {
	g := ddg.Build(b, d.Latency, opts)

	// Map each Synchronization bit to the check that clears it on the
	// correct-prediction path.
	clearerOf := map[int]int{} // bit -> node index of CheckLd
	var checks []int
	for i, op := range b.Ops {
		if op.Code != ir.CheckLd {
			continue
		}
		checks = append(checks, i)
		for bit := 0; bit < 64; bit++ {
			if op.ClearBits&(1<<uint(bit)) != 0 {
				clearerOf[bit] = i
			}
		}
		// The LdPred bit of the same prediction site is always cleared by
		// this check.
		for _, lp := range b.Ops {
			if lp.Code == ir.LdPred && lp.PredID == op.PredID && lp.SyncBit != ir.NoBit {
				clearerOf[lp.SyncBit] = i
			}
		}
	}
	if len(checks) == 0 {
		return g
	}

	// Map each Synchronization bit to the op that sets it.
	setterOf := map[int]int{}
	for i, op := range b.Ops {
		if op.SyncBit != ir.NoBit && op.Code != ir.CheckLd {
			setterOf[op.SyncBit] = i
		}
	}

	for wi, op := range b.Ops {
		if op.WaitBits == 0 {
			continue
		}
		// Every check must be scheduled strictly before every waiter: a
		// stalled waiter blocks the in-order VLIW Engine, so any check
		// still behind it could never issue (the transform guarantees the
		// required program order; this edge carries it into the schedule).
		for _, ci := range checks {
			if ci < wi {
				g.AddEdge(ci, wi, ddg.Ctrl, 1, d.Latency)
			}
		}
		// A waiter must issue strictly after the op that SETS each bit it
		// waits on: the decoder's wait-mask check samples the
		// Synchronization register before the instruction issues, so a
		// setter packed into the same long instruction would be invisible
		// and the waiter would slip past its own guard.
		for bit := 0; bit < 64; bit++ {
			if op.WaitBits&(1<<uint(bit)) == 0 {
				continue
			}
			if si, ok := setterOf[bit]; ok && si < wi {
				g.AddEdge(si, wi, ddg.Ctrl, 1, d.Latency)
			}
		}
		for bit := 0; bit < 64; bit++ {
			if op.WaitBits&(1<<uint(bit)) == 0 {
				continue
			}
			if ci, ok := clearerOf[bit]; ok {
				if ci < wi {
					g.AddEdge(ci, wi, ddg.Ctrl, d.Latency(b.Ops[ci]), d.Latency)
				}
				continue
			}
			// A bit owned by a multi-prediction speculative op clears when
			// the last involved check verifies (correct-prediction path);
			// conservatively order after every check.
			for _, ci := range checks {
				if ci < wi {
					g.AddEdge(ci, wi, ddg.Ctrl, d.Latency(b.Ops[ci]), d.Latency)
				}
			}
		}
	}
	return g
}
