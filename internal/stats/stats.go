// Package stats provides the small numeric and rendering helpers the
// experiment drivers share: weighted aggregates, bucketed histograms, and
// aligned text tables shaped like the paper's.
package stats

import (
	"fmt"
	"strings"
)

// Table is an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// F formats a ratio/fraction with two decimals, the paper's style.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// WeightedMean accumulates Σw·v / Σw.
type WeightedMean struct {
	sum, weight float64
}

// Add contributes one observation.
func (m *WeightedMean) Add(v, w float64) {
	m.sum += v * w
	m.weight += w
}

// Mean returns the weighted mean (0 when empty).
func (m *WeightedMean) Mean() float64 {
	if m.weight == 0 {
		return 0
	}
	return m.sum / m.weight
}

// Weight returns the accumulated weight.
func (m *WeightedMean) Weight() float64 { return m.weight }

// Bucket is one histogram bin.
type Bucket struct {
	Label string
	// Match reports whether a value belongs to the bin.
	Match func(v int) bool
	Count float64
}

// Histogram distributes weighted integer observations over ordered buckets;
// the first matching bucket wins.
type Histogram struct {
	Buckets []Bucket
	Total   float64
}

// DeltaBuckets are the Figure 8 bins: change in schedule length in cycles
// (positive = improvement).
func DeltaBuckets() []Bucket {
	return []Bucket{
		{Label: "degraded", Match: func(v int) bool { return v < 0 }},
		{Label: "0", Match: func(v int) bool { return v == 0 }},
		{Label: "1-2", Match: func(v int) bool { return v >= 1 && v <= 2 }},
		{Label: "3-4", Match: func(v int) bool { return v >= 3 && v <= 4 }},
		{Label: "5-8", Match: func(v int) bool { return v >= 5 && v <= 8 }},
		{Label: ">8", Match: func(v int) bool { return v > 8 }},
	}
}

// Add records an observation with the given weight.
func (h *Histogram) Add(v int, w float64) {
	h.Total += w
	for i := range h.Buckets {
		if h.Buckets[i].Match(v) {
			h.Buckets[i].Count += w
			return
		}
	}
}

// Fraction returns bucket i's share of the total.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return h.Buckets[i].Count / h.Total
}
