package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "long-header"}}
	tb.AddRow("wide-cell", "x")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, row
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if len(lines[1]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Errorf("columns not aligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Errorf("missing title: %q", lines[0])
	}
}

func TestFormatters(t *testing.T) {
	if F(0.825) != "0.82" && F(0.825) != "0.83" {
		t.Errorf("F(0.825) = %q", F(0.825))
	}
	if Pct(0.5) != "50.0%" {
		t.Errorf("Pct(0.5) = %q", Pct(0.5))
	}
}

func TestWeightedMean(t *testing.T) {
	var m WeightedMean
	if m.Mean() != 0 {
		t.Error("empty mean must be 0")
	}
	m.Add(10, 1)
	m.Add(20, 3)
	if got := m.Mean(); got != 17.5 {
		t.Errorf("mean = %v, want 17.5", got)
	}
	if m.Weight() != 4 {
		t.Errorf("weight = %v, want 4", m.Weight())
	}
}

func TestDeltaBucketsPartitionIntegers(t *testing.T) {
	h := &Histogram{Buckets: DeltaBuckets()}
	for v := -10; v <= 20; v++ {
		matches := 0
		for _, b := range h.Buckets {
			if b.Match(v) {
				matches++
			}
		}
		if matches != 1 {
			t.Errorf("value %d matched %d buckets, want exactly 1", v, matches)
		}
	}
}

func TestHistogramFractions(t *testing.T) {
	h := &Histogram{Buckets: DeltaBuckets()}
	h.Add(0, 2)  // "0"
	h.Add(1, 1)  // "1-2"
	h.Add(-3, 1) // "degraded"
	if h.Total != 4 {
		t.Fatalf("total = %v", h.Total)
	}
	if got := h.Fraction(1); got != 0.5 {
		t.Errorf("fraction('0') = %v, want 0.5", got)
	}
	if got := h.Fraction(0); got != 0.25 {
		t.Errorf("fraction(degraded) = %v, want 0.25", got)
	}
	empty := &Histogram{Buckets: DeltaBuckets()}
	if empty.Fraction(0) != 0 {
		t.Error("empty histogram fraction must be 0")
	}
}
