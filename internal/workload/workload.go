// Package workload provides the eight benchmark kernels the experiments
// run, standing in for the paper's SPEC95 programs (compress, ijpeg, li,
// m88ksim, vortex, hydro2d, swim, tomcatv). Each kernel is written in VL
// and mimics its namesake's dominant loop character and value-locality
// profile:
//
//   - compress: LZW-style hash-probe compression of skewed synthetic text —
//     moderately predictable table loads on long dependence chains.
//   - ijpeg: blocked integer DCT-like transform with shift quantization —
//     strided pixel loads, highly repetitive quantization-table loads.
//   - li: cons-cell list traversal and interpretation — pointer chasing
//     whose sequential allocation makes cdr links largely stride-predictable.
//   - m88ksim: table-driven instruction-set simulation — the simulated
//     program loops, so fetched "instructions" recur (FCM-friendly).
//   - vortex: record/index object store with cyclic queries — mixed
//     predictability over index and field loads.
//   - hydro2d, swim, tomcatv: floating-point stencils over 2-D grids —
//     regular strided access, but FP latency chains dominate, so value
//     prediction buys less (the paper's Table 3 shows swim/tomcatv ratios
//     near 0.95-0.98).
//
// Every kernel returns a checksum so simulator runs can be validated
// against the sequential interpreter.
package workload

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"vliwvp/internal/ir"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/progen"
)

// Benchmark is one runnable kernel.
type Benchmark struct {
	Name        string
	Suite       string // "SPECint95-like" or "SPECfp95-like"
	Description string
	Source      string
}

// SourceHash fingerprints the kernel source. Cache keys use it alongside
// the name so an ad-hoc Benchmark reusing a stock name cannot alias a
// cached pipeline.
func (b *Benchmark) SourceHash() string {
	h := fnv.New64a()
	h.Write([]byte(b.Source))
	return strconv.FormatUint(h.Sum64(), 16)
}

// compilePlan is the kernel compile flow: lower, then optimize (validated
// by the pass manager — opt is a structural pass).
var compilePlan = pipeline.Plan{Name: "workload", Passes: []pipeline.Pass{
	pipeline.Lower{}, pipeline.Opt{},
}}

// Compile parses, lowers, and optimizes the kernel through the standard
// compile pipeline. The returned program is freshly built (never
// cache-shared), so callers may mutate it.
func (b *Benchmark) Compile() (*ir.Program, error) {
	ctx := &pipeline.Ctx{Source: b.Source}
	if err := pipeline.NewManager().Run(compilePlan, ctx); err != nil {
		return nil, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	return ctx.Prog, nil
}

// All returns the benchmarks in the paper's table order.
func All() []*Benchmark {
	return []*Benchmark{
		Compress, Ijpeg, Li, M88ksim, Vortex, Hydro2d, Swim, Tomcatv,
	}
}

// Generated returns n synthetic kernels from the progen generator,
// derived from consecutive seeds starting at seed. Each kernel's
// generation owns an explicit per-kernel rand.Rand seeded from its own
// position — no RNG state is shared across entries — so the corpus is a
// pure function of (seed, index): order-independent, stable under
// `go test -shuffle=on`, and any prefix of a longer corpus equals the
// shorter one.
func Generated(seed int64, n int) []*Benchmark {
	out := make([]*Benchmark, 0, n)
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		out = append(out, &Benchmark{
			Name:        fmt.Sprintf("gen%d", s),
			Suite:       "progen",
			Description: fmt.Sprintf("synthetic kernel generated from progen seed %d", s),
			Source:      progen.Render(progen.Generate(s, progen.Options{})),
		})
	}
	return out
}

// ByName returns a benchmark by name, or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Compress is the LZW-style kernel.
var Compress = &Benchmark{
	Name:  "compress",
	Suite: "SPECint95-like",
	Description: "LZW-style compression: hash-probe dictionary over skewed " +
		"synthetic text; long hash chains gate the loop.",
	Source: `
# compress: LZW-ish dictionary compression of synthetic text.
var input[4096]
var htab[4096]
var codetab[4096]
var output[4200]
var outn = 0

func gen() {
	# Skewed text: repeated phrases with pseudo-random interruptions.
	var seed = 123456789
	var i = 0
	while i < 4096 {
		seed = (seed * 1103515245 + 12345) % 2147483647
		var r = seed % 100
		if r < 70 {
			# Common phrase: "the " pattern of 4 symbols.
			input[i] = 116
			if i + 3 < 4096 {
				input[i + 1] = 104
				input[i + 2] = 101
				input[i + 3] = 32
				i = i + 4
			} else { i = i + 1 }
		} else {
			input[i] = 97 + (seed % 26)
			i = i + 1
		}
	}
	return 0
}

func main() {
	var g = gen()
	var i = 0
	while i < 4096 {
		htab[i] = 0 - 1
		i = i + 1
	}
	var prefix = input[0]
	var nextcode = 256
	i = 1
	while i < 4096 {
		var c = input[i]
		var key = prefix * 256 + c
		var h = (key * 40503) % 4096
		if h < 0 { h = h + 4096 }
		var found = 0 - 1
		var probes = 0
		while probes < 8 {
			var k = htab[h]
			if k == key {
				found = codetab[h]
				break
			}
			if k == 0 - 1 {
				break
			}
			h = (h + 1) % 4096
			probes = probes + 1
		}
		if found >= 0 {
			prefix = found
		} else {
			output[outn] = prefix
			outn = outn + 1
			if nextcode < 4096 {
				htab[h] = key
				codetab[h] = nextcode
				nextcode = nextcode + 1
			}
			prefix = c
		}
		i = i + 1
	}
	output[outn] = prefix
	outn = outn + 1
	var sum = 0
	var j = 0
	while j < outn {
		sum = (sum * 31 + output[j]) % 1000000007
		j = j + 1
	}
	return sum + g
}
`,
}

// Ijpeg is the blocked integer DCT-like kernel.
var Ijpeg = &Benchmark{
	Name:  "ijpeg",
	Suite: "SPECint95-like",
	Description: "Blocked integer DCT-like transform and shift quantization " +
		"over a smooth 64x64 image; strided pixel loads, repetitive " +
		"quantization-table loads.",
	Source: `
# ijpeg: 8x8 blocked transform + quantization of a synthetic image.
var img[4096]
var coef[4096]
var qtab[64]
var qbias = 1

func main() {
	# Smooth gradient image with texture.
	var y = 0
	while y < 64 {
		var x = 0
		while x < 64 {
			img[y * 64 + x] = (x * 3 + y * 2) % 256
			x = x + 1
		}
		y = y + 1
	}
	var k = 0
	while k < 64 {
		qtab[k] = 1 + (k / 16)
		k = k + 1
	}

	# Per 8x8 block: butterfly rows then columns, quantize by shifting.
	var by = 0
	while by < 8 {
		var bx = 0
		while bx < 8 {
			var base = by * 8 * 64 + bx * 8
			var r = 0
			while r < 8 {
				var row = base + r * 64
				var a0 = img[row]
				var a1 = img[row + 1]
				var a2 = img[row + 2]
				var a3 = img[row + 3]
				var a4 = img[row + 4]
				var a5 = img[row + 5]
				var a6 = img[row + 6]
				var a7 = img[row + 7]
				var s0 = a0 + a7
				var s1 = a1 + a6
				var s2 = a2 + a5
				var s3 = a3 + a4
				var d0 = a0 - a7
				var d1 = a1 - a6
				var d2 = a2 - a5
				var d3 = a3 - a4
				coef[row] = s0 + s1 + s2 + s3
				coef[row + 1] = d0 * 2 + d1
				coef[row + 2] = s0 - s3 + (s1 - s2)
				coef[row + 3] = d0 - d2
				coef[row + 4] = s0 - s1 - s2 + s3
				coef[row + 5] = d1 - d3
				coef[row + 6] = s1 - s2
				coef[row + 7] = d2 + d3
				r = r + 1
			}
			var q = 0
			while q < 64 {
				var rr = q >> 3
				var cc = q & 7
				var idx = base + rr * 64 + cc
				var v = coef[idx]
				var shift = qtab[q]
				var bias = qbias
				# Branch-free signed quantization: classic sign-mask trick.
				var sign = v >> 63
				var mag = ((v ^ sign) - sign) + bias
				var qv = mag >> shift
				coef[idx] = (qv ^ sign) - sign
				q = q + 1
			}
			bx = bx + 1
		}
		by = by + 1
	}

	var sum = 0
	var i = 0
	while i < 4096 {
		sum = (sum + coef[i] * (i % 13 + 1)) % 1000000007
		i = i + 1
	}
	return sum
}
`,
}

// Li is the cons-cell interpreter kernel.
var Li = &Benchmark{
	Name:  "li",
	Suite: "SPECint95-like",
	Description: "Cons-cell list building and traversal with a small " +
		"eval-style dispatch loop; sequentially allocated cdr links chase " +
		"with near-unit stride.",
	Source: `
# li: cons cells, list traversal, tag-dispatched reduction.
var car[8192]
var cdr[8192]
var tag[8192]
var free = 1        # cell 0 is nil

func cons(a, d) {
	var c = free
	free = free + 1
	car[c] = a
	cdr[c] = d
	tag[c] = 1
	return c
}

func buildlist(n, mul) {
	var lst = 0
	var i = n
	while i > 0 {
		lst = cons(i * mul % 97, lst)
		i = i - 1
	}
	return lst
}

func sumlist(lst) {
	var s = 0
	var p = lst
	while p != 0 {
		s = s + car[p]
		p = cdr[p]
	}
	return s
}

func maplist(lst, k) {
	# Destructive map: car = car * k % 251.
	var p = lst
	while p != 0 {
		car[p] = car[p] * k % 251
		p = cdr[p]
	}
	return lst
}

func filtercount(lst, limit) {
	var n = 0
	var p = lst
	while p != 0 {
		if car[p] < limit { n = n + 1 }
		p = cdr[p]
	}
	return n
}

func main() {
	var l1 = buildlist(900, 3)
	var l2 = buildlist(700, 7)
	var l3 = buildlist(500, 11)
	var acc = 0
	var round = 0
	while round < 12 {
		var m = maplist(l1, 2 + round % 3)
		acc = acc + sumlist(m)
		acc = acc + sumlist(l2) * 2
		acc = acc + filtercount(l3, 60 + round)
		round = round + 1
	}
	return acc % 1000000007
}
`,
}

// M88ksim is the table-driven ISA simulator kernel.
var M88ksim = &Benchmark{
	Name:  "m88ksim",
	Suite: "SPECint95-like",
	Description: "Table-driven CPU simulator running a small looping guest " +
		"program: fetched instruction words recur every iteration, making " +
		"them highly context-predictable.",
	Source: `
# m88ksim: fetch/decode/execute loop over an encoded guest program.
# Encoding: opcode*100000000 + rd*1000000 + rs*10000 + imm (4-digit imm).
var progmem[64]
var gregs[16]
var datamem[512]

func main() {
	# Guest program: a loop summing memory and updating a counter.
	#  0: li   r1, 0        (op1 rd=1 imm=0)
	#  1: li   r2, 0        (acc)
	#  2: li   r3, 200      (limit)
	#  3: load r4, [r1]     (op4: r4 = datamem[r1 % 512])
	#  4: add  r2, r4       (op2 rd=2 rs=4)
	#  5: addi r1, 1        (op3 rd=1 imm=1)
	#  6: blt  r1, r3, -4   (op5: if r1 < r3 jump back 4)
	#  7: halt              (op0)
	progmem[0] = 1 * 100000000 + 1 * 1000000
	progmem[1] = 1 * 100000000 + 2 * 1000000
	progmem[2] = 1 * 100000000 + 3 * 1000000 + 400
	progmem[3] = 4 * 100000000 + 4 * 1000000 + 1 * 10000
	progmem[4] = 2 * 100000000 + 2 * 1000000 + 4 * 10000
	progmem[5] = 3 * 100000000 + 1 * 1000000 + 1
	progmem[6] = 5 * 100000000 + 1 * 1000000 + 3 * 10000 + 4
	progmem[7] = 0

	var i = 0
	while i < 512 {
		datamem[i] = (i * 37 + 11) % 256
		i = i + 1
	}

	var total = 0
	var run = 0
	while run < 6 {
		var r = 0
		while r < 16 {
			gregs[r] = 0
			r = r + 1
		}
		var pc = 0
		var steps = 0
		while steps < 4000 {
			var inst = progmem[pc]
			var op = inst / 100000000
			var rest = inst % 100000000
			var rd = rest / 1000000
			var rs = (rest % 1000000) / 10000
			var imm = rest % 10000
			if op == 0 { break }
			if op == 1 {
				gregs[rd] = imm
				pc = pc + 1
			} else { if op == 2 {
				gregs[rd] = gregs[rd] + gregs[rs]
				pc = pc + 1
			} else { if op == 3 {
				gregs[rd] = gregs[rd] + imm
				pc = pc + 1
			} else { if op == 4 {
				gregs[rd] = datamem[gregs[1] % 512]
				pc = pc + 1
			} else {
				# op 5: conditional backward branch
				if gregs[rd] < gregs[rs] {
					pc = pc - imm
				} else {
					pc = pc + 1
				}
			} } } }
			steps = steps + 1
		}
		total = total + gregs[2] + steps
		run = run + 1
	}
	return total % 1000000007
}
`,
}

// Vortex is the object-store kernel.
var Vortex = &Benchmark{
	Name:  "vortex",
	Suite: "SPECint95-like",
	Description: "Record/index object store with cyclic queries: index " +
		"lookups, field reads, parent-chain walks, counter updates.",
	Source: `
# vortex: record store with an id index and parent links.
# Record layout (stride 8): [id, parent, kind, weight, c0, c1, c2, c3]
var recs[8192]
var index[1024]

func main() {
	var n = 1000
	var i = 0
	while i < n {
		var base = i * 8
		recs[base] = i
		recs[base + 1] = i / 3
		recs[base + 2] = i % 5
		recs[base + 3] = (i * 17) % 101
		index[i] = base
		i = i + 1
	}

	var acc = 0
	var q = 0
	while q < 6000 {
		var id = (q * 61 + 17) % n
		var base = index[id]
		var kind = recs[base + 2]
		var weight = recs[base + 3]
		# Walk the parent chain to the root, accumulating weights.
		var depth = 0
		var cur = base
		while depth < 12 {
			var parent = recs[cur + 1]
			if parent == 0 { break }
			var pbase = index[parent]
			acc = acc + recs[pbase + 3]
			cur = pbase
			depth = depth + 1
		}
		# Update a per-kind counter field on the queried record.
		recs[base + 4 + kind % 4] = recs[base + 4 + kind % 4] + 1
		acc = acc + kind * weight
		q = q + 1
	}

	var sum = acc
	i = 0
	while i < n {
		sum = sum + recs[i * 8 + 4] + recs[i * 8 + 5]
		i = i + 1
	}
	return sum % 1000000007
}
`,
}

// Hydro2d is the FP hydrodynamics stencil kernel.
var Hydro2d = &Benchmark{
	Name:  "hydro2d",
	Suite: "SPECfp95-like",
	Description: "2-D hydrodynamics-style 5-point stencil with flux terms " +
		"over a 64x64 grid; strided FP loads on FP-latency-bound chains.",
	Source: `
# hydro2d: damped diffusion with flux terms. Simulation parameters live in
# memory-resident global scalars (as a register-poor 1990s compilation
# would), so every inner-loop use is a highly predictable load on the
# critical address/compute chains.
var u[4356] float
var v[4356] float
var unew[4356] float
var nn = 66
var diffk float = 0.2
var fluxk float = 0.1

func main() {
	var i = 0
	while i < nn * nn {
		u[i] = float(i % 97) * 0.01
		v[i] = float(i % 53) * 0.02
		i = i + 1
	}
	var step = 0
	while step < 8 {
		var y = 1
		while y < nn - 1 {
			var x = 1
			while x < nn - 1 {
				var stride = nn
				var c = y * stride + x
				var un = u[c - stride]
				var us = u[c + stride]
				var uw = u[c - 1]
				var ue = u[c + 1]
				var uc = u[c]
				var flux = v[c] * (ue - uw) * 0.5
				unew[c] = uc + diffk * (un + us + ue + uw - 4.0 * uc) - flux * fluxk
				x = x + 1
			}
			y = y + 1
		}
		y = 1
		while y < nn - 1 {
			var x = 1
			while x < nn - 1 {
				var c = y * nn + x
				u[c] = unew[c]
				x = x + 1
			}
			y = y + 1
		}
		step = step + 1
	}
	var acc = 0.0
	i = 0
	while i < nn * nn {
		acc = acc + u[i]
		i = i + 1
	}
	return int(acc * 1000.0)
}
`,
}

// Swim is the shallow-water stencil kernel.
var Swim = &Benchmark{
	Name:  "swim",
	Suite: "SPECfp95-like",
	Description: "Shallow-water equations: three coupled grids updated with " +
		"neighbor differences; extremely regular access, wide independent " +
		"FP work per iteration.",
	Source: `
# swim: shallow-water style updates on u, v, p grids.
var u[4356] float
var v[4356] float
var p[4356] float
var un[4356] float
var vn[4356] float
var pn[4356] float
var cor[66] float
var nn2 = 66
var dtg float = 0.01
var grav float = 100.0

func main() {
	var i = 0
	while i < nn2 * nn2 {
		u[i] = float((i * 3) % 89) * 0.011
		v[i] = float((i * 7) % 71) * 0.013
		p[i] = 50.0 + float(i % 31) * 0.1
		i = i + 1
	}
	i = 0
	while i < nn2 {
		cor[i] = 0.5 + float(i) * 0.01
		i = i + 1
	}
	var step = 0
	while step < 7 {
		var y = 1
		while y < nn2 - 1 {
			var x = 1
			while x < nn2 - 1 {
				var stride = nn2
				var dt = dtg
				var c = y * stride + x
				var f = cor[y]
				var dpx = (p[c + 1] - p[c - 1]) * 0.5
				var dpy = (p[c + stride] - p[c - stride]) * 0.5
				var dux = (u[c + 1] - u[c - 1]) * 0.5
				var dvy = (v[c + stride] - v[c - stride]) * 0.5
				un[c] = u[c] - dt * dpx + f * v[c] * dt
				vn[c] = v[c] - dt * dpy - f * u[c] * dt
				pn[c] = p[c] - dt * grav * (dux + dvy)
				x = x + 1
			}
			y = y + 1
		}
		y = 1
		while y < nn2 - 1 {
			var x = 1
			while x < nn2 - 1 {
				var c = y * nn2 + x
				u[c] = un[c]
				v[c] = vn[c]
				p[c] = pn[c]
				x = x + 1
			}
			y = y + 1
		}
		step = step + 1
	}
	var acc = 0.0
	i = 0
	while i < nn2 * nn2 {
		acc = acc + p[i] * 0.001 + u[i] - v[i]
		i = i + 1
	}
	return int(acc * 100.0)
}
`,
}

// Tomcatv is the mesh-generation kernel.
var Tomcatv = &Benchmark{
	Name:  "tomcatv",
	Suite: "SPECfp95-like",
	Description: "Mesh-generation residual sweep: 9-point stencils over " +
		"coordinate grids with longer FP dependence chains than swim.",
	Source: `
# tomcatv: residual computation over x/y coordinate grids.
var xg[4356] float
var yg[4356] float
var rx[4356] float
var ry[4356] float
var relax[66] float
var meshn = 66

func main() {
	var n = meshn
	var i = 0
	while i < n * n {
		var r = i / 66
		var c = i % 66
		xg[i] = float(c) + float((r * c) % 13) * 0.05
		yg[i] = float(r) + float((r + c) % 11) * 0.04
		i = i + 1
	}
	i = 0
	while i < n {
		relax[i] = 0.001
		i = i + 1
	}
	var step = 0
	while step < 7 {
		var y = 1
		while y < n - 1 {
			var x = 1
			while x < n - 1 {
				var stride = meshn
				var c = y * stride + x
				var xe = xg[c + 1]
				var xw = xg[c - 1]
				var xn = xg[c - stride]
				var xs = xg[c + stride]
				var ye = yg[c + 1]
				var yw = yg[c - 1]
				var ynn = yg[c - stride]
				var ys = yg[c + stride]
				var xx = (xe - xw) * 0.5
				var yx = (ye - yw) * 0.5
				var xy = (xs - xn) * 0.5
				var yy = (ys - ynn) * 0.5
				var a = xy * xy + yy * yy
				var b = xx * xx + yx * yx
				var cc = xx * xy + yx * yy
				var dxx = xe - 2.0 * xg[c] + xw
				var dyy = xs - 2.0 * xg[c] + xn
				rx[c] = a * dxx - 2.0 * cc * 0.25 + b * dyy
				var exx = ye - 2.0 * yg[c] + yw
				var eyy = ys - 2.0 * yg[c] + ynn
				ry[c] = a * exx - 2.0 * cc * 0.25 + b * eyy
				x = x + 1
			}
			y = y + 1
		}
		y = 1
		while y < n - 1 {
			var x = 1
			while x < n - 1 {
				var c = y * n + x
				var w = relax[x]
				xg[c] = xg[c] + rx[c] * w
				yg[c] = yg[c] + ry[c] * w
				x = x + 1
			}
			y = y + 1
		}
		step = step + 1
	}
	var acc = 0.0
	i = 0
	while i < n * n {
		acc = acc + xg[i] * 0.01 - yg[i] * 0.005
		i = i + 1
	}
	return int(acc)
}
`,
}
