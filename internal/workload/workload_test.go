package workload_test

import (
	"testing"

	"vliwvp/internal/interp"
	"vliwvp/internal/machine"
	"vliwvp/internal/profile"
	"vliwvp/internal/speculate"
	"vliwvp/internal/workload"
)

func TestAllBenchmarksCompileAndRun(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m := interp.New(prog)
			m.MaxSteps = 50_000_000
			v, err := m.RunMain()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			t.Logf("%s: checksum %d, %d dynamic ops", b.Name, int64(v), m.Steps)
			if m.Steps < 50_000 {
				t.Errorf("only %d dynamic ops; kernel too small to profile meaningfully", m.Steps)
			}
			if m.Steps > 20_000_000 {
				t.Errorf("%d dynamic ops; kernel too large for the experiment suite", m.Steps)
			}
		})
	}
}

func TestBenchmarksAreDeterministic(t *testing.T) {
	for _, b := range workload.All() {
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		v1, err := interp.New(prog).RunMain()
		if err != nil {
			t.Fatal(err)
		}
		v2, err := interp.New(prog).RunMain()
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Errorf("%s: nondeterministic checksums %d vs %d", b.Name, v1, v2)
		}
	}
}

func TestBenchmarksOfferPredictableLoads(t *testing.T) {
	// Every kernel must give the speculation pass something to work with:
	// at least one load meeting the paper's 65% threshold.
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			prof, err := profile.Collect(prog, "main")
			if err != nil {
				t.Fatal(err)
			}
			hot := 0
			for _, lp := range prof.Loads {
				if lp.Count >= 100 && lp.Rate() >= 0.65 {
					hot++
				}
			}
			if hot == 0 {
				t.Errorf("%s: no load with rate >= 0.65; speculation would be a no-op", b.Name)
			}

			res, err := speculate.Transform(prog, prof, speculate.DefaultConfig(machine.W4))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Sites) == 0 {
				t.Errorf("%s: transform selected no sites", b.Name)
			}
			t.Logf("%s: %d predictable loads, %d sites selected in %d blocks",
				b.Name, hot, len(res.Sites), len(res.Blocks))
		})
	}
}

// TestGeneratedCorpusIsOrderIndependent pins the explicit per-kernel RNG
// threading: two calls agree exactly, and a longer corpus extends a
// shorter one without perturbing it (no RNG state shared across table
// entries), which is what keeps `go test -shuffle=on` deterministic.
func TestGeneratedCorpusIsOrderIndependent(t *testing.T) {
	a := workload.Generated(7, 5)
	b := workload.Generated(7, 5)
	long := workload.Generated(7, 9)
	if len(a) != 5 || len(long) != 9 {
		t.Fatalf("corpus sizes %d, %d; want 5, 9", len(a), len(long))
	}
	for i := range a {
		if a[i].Source != b[i].Source || a[i].Name != b[i].Name {
			t.Errorf("entry %d differs between identical calls", i)
		}
		if a[i].Source != long[i].Source {
			t.Errorf("entry %d differs between Generated(7,5) and Generated(7,9)", i)
		}
	}
	if workload.Generated(8, 1)[0].Source == a[0].Source {
		t.Error("different seeds produced identical kernels")
	}
}

func TestGeneratedKernelsCompileAndRun(t *testing.T) {
	for _, b := range workload.Generated(1, 6) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if _, err := interp.New(prog).RunMain(); err != nil {
				t.Fatalf("run: %v", err)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if workload.ByName("compress") != workload.Compress {
		t.Error("ByName(compress) wrong")
	}
	if workload.ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
	if len(workload.All()) != 8 {
		t.Errorf("expected 8 benchmarks, got %d", len(workload.All()))
	}
}
