// Package pipeline is the single spine every compile flow in this
// repository runs on: a pass manager where each IR transformation —
// lowering, optimization, if-conversion, region formation, value
// profiling, speculation insertion, VLIW scheduling — is a named Pass with
// a uniform Run(*Ctx, *ir.Program) error interface, composed into
// declarative Plans.
//
// The façade (vliwvp.System), the experiment harness (internal/exp and its
// ablation variants), the metamorphic conformance suite (internal/conform)
// and the differential oracle (internal/oracle) all describe their compile
// flows as Plans and execute them through a Manager, which provides
// uniformly what each of those callers used to hand-roll:
//
//   - per-pass ir.Validate: structure-changing passes are always checked
//     (matching the historical validation points); Manager.ValidateEach
//     extends the check to every pass and defaults to on under `go test`
//     (flag-controlled in vpexp via -validate-ir).
//   - per-pass observability: an optional obs.PassSink receives one typed
//     event per pass (duration, cache disposition, failure), preserving
//     the zero-allocation no-sink guarantee of the simulator's event
//     layer.
//   - per-pass memoization: cacheable prefixes of a plan are memoized in
//     an internal/exp/cache single-flight cache under content-hash keys,
//     one entry per pass, so plans that share a prefix (an ablation sweep,
//     the conformance lattice, the experiment harness) reuse partial
//     compiles instead of whole-plan cache entries. A failing pass leaves
//     no cache entry at all.
//   - post-pass IR dumps for debugging (vpexp -dump-ir).
//
// Errors are reported as *PassError, naming the plan and the offending
// pass.
package pipeline

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"vliwvp/internal/core"
	"vliwvp/internal/exp/cache"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

// Ctx is the state a plan threads through its passes. Passes read the
// artifacts earlier passes produced and publish their own; Prog is also
// handed to each pass's Run as the explicit program argument.
type Ctx struct {
	// Source is the VL source text the lower pass compiles (plans rooted
	// at an already-lowered program leave it empty and set Prog).
	Source string
	// Key, when non-empty, enables per-pass memoization: it must
	// fingerprint the plan's input content (e.g. a source hash). Derived
	// cache keys append each pass's name and configuration fingerprint.
	Key string
	// Machine is the target description back-end passes require.
	Machine *machine.Desc

	// Prog is the working program. Passes mutate it in place or replace
	// it (the speculation pass publishes its transformed clone).
	Prog *ir.Program
	// Prof is the value/frequency profile (set by the profile pass).
	Prof *profile.Profile
	// Spec is the speculation pass's full result.
	Spec *speculate.Result
	// Schemes maps prediction-site IDs to their predictor scheme
	// (derived from Spec by the speculation pass).
	Schemes map[int]profile.Scheme
	// Sched is the whole-program VLIW schedule (set by the schedule
	// pass).
	Sched *sched.ProgSched
	// Image is the decoded simulator image (set by the decode pass).
	Image *core.Image
	// Shared reports that Prog/Prof are cache-shared state: read-only,
	// potentially referenced by other goroutines and configurations.
	Shared bool
}

// Pass is one named IR transformation.
type Pass interface {
	// Name is the pass's stable identifier (cache keys, events, errors).
	Name() string
	// Run executes the pass. p is ctx.Prog at entry (nil only for the
	// plan's root pass); passes that rebuild the program must publish it
	// on ctx.
	Run(ctx *Ctx, p *ir.Program) error
}

// The optional capability interfaces below refine how the manager treats
// a pass; absence picks the conservative default.

// cacheable passes are pure functions of the plan input and their
// fingerprint, and produce only (Prog, Prof) state — the manager may
// memoize the pass's product and share it across plans and goroutines.
type cacheable interface{ Cacheable() bool }

// fingerprinted passes contribute their configuration to cache keys.
type fingerprinted interface{ Fingerprint() string }

// structural passes change IR structure; ir.Validate always runs after
// them, regardless of Manager.ValidateEach (these are the validation
// points the pre-pipeline code hardwired).
type structural interface{ Structural() bool }

// mutator passes modify the incoming program in place. After restoring a
// cache-shared prefix the manager clones before running one; passes that
// only read (schedule) or clone internally (speculate) opt out.
type mutator interface{ Mutates() bool }

func isCacheable(p Pass) bool {
	c, ok := p.(cacheable)
	return ok && c.Cacheable()
}

func fingerprintOf(p Pass) string {
	if f, ok := p.(fingerprinted); ok {
		return p.Name() + "=" + f.Fingerprint()
	}
	return p.Name()
}

func isStructural(p Pass) bool {
	s, ok := p.(structural)
	return ok && s.Structural()
}

func mutates(p Pass) bool {
	m, ok := p.(mutator)
	return !ok || m.Mutates()
}

// Plan is a named, ordered pass composition.
type Plan struct {
	Name   string
	Passes []Pass
}

// Key derives the cumulative cache key of the plan's first n passes over
// a content-hash base: base + "/" + each pass's name=fingerprint. Two
// plans agreeing on a prefix share its per-pass cache entries.
func (pl Plan) Key(base string, n int) string {
	for _, p := range pl.Passes[:n] {
		base += "/" + fingerprintOf(p)
	}
	return base
}

// PassError reports a failing pass: which plan, which pass, at which
// position, and whether the failure was the between-pass IR validator
// rather than the pass itself.
type PassError struct {
	Plan  string
	Pass  string
	Index int
	// Validation marks an ir.Validate failure on the pass's output (the
	// pass "succeeded" but produced invalid IR).
	Validation bool
	Err        error
}

// Error names the offending pass.
func (e *PassError) Error() string {
	if e.Validation {
		return fmt.Sprintf("pipeline: plan %q pass %q (#%d): invalid IR after pass: %v",
			e.Plan, e.Pass, e.Index, e.Err)
	}
	return fmt.Sprintf("pipeline: plan %q pass %q (#%d): %v", e.Plan, e.Pass, e.Index, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *PassError) Unwrap() error { return e.Err }

// IsValidation reports whether err is a between-pass IR validation
// failure (consumers like the conformance harness treat those as
// invariant violations of the pass under test, not harness breakage).
func IsValidation(err error) bool {
	var pe *PassError
	return errors.As(err, &pe) && pe.Validation
}

// DumpFunc receives the IR after each pass (vpexp -dump-ir). Dumping
// bypasses the per-pass cache so every pass genuinely runs.
type DumpFunc func(plan, pass string, index int, prog *ir.Program)

// Manager executes plans. The zero value is ready to use; NewManager
// additionally turns ValidateEach on under `go test`.
//
// A Manager is safe for concurrent Run calls (the experiment harness
// shares one across its worker pool) as long as Sink and Dump are.
type Manager struct {
	// ValidateEach runs ir.Validate after every pass. Structural passes
	// are validated regardless.
	ValidateEach bool
	// Cache enables per-pass memoization of cacheable plan prefixes for
	// ctx.Key-carrying runs.
	Cache *cache.Cache
	// Sink receives one obs.PassEvent per pass (nil: zero-cost).
	Sink obs.PassSink
	// Dump receives post-pass IR (nil: disabled). Non-nil disables the
	// cache so dumps reflect a full recompute.
	Dump DumpFunc
}

// NewManager returns a Manager with the testing default: between-pass
// validation on under `go test`, off otherwise (vpexp -validate-ir turns
// it on in production binaries).
func NewManager() *Manager {
	return &Manager{ValidateEach: testing.Testing()}
}

// state is the memoized product of a cacheable plan prefix. Immutable
// after publication; shared across goroutines and configurations.
type state struct {
	prog *ir.Program
	prof *profile.Profile
}

// Run executes the plan over ctx. When ctx.Key is set and a cache is
// attached, the longest cacheable prefix is served per-pass from the
// cache (computing and publishing missing entries); remaining passes run
// live. On success ctx holds the final artifacts; on failure ctx is
// unspecified and the error is a *PassError.
func (m *Manager) Run(plan Plan, ctx *Ctx) error {
	start := 0
	if m.Cache != nil && ctx.Key != "" && m.Dump == nil {
		n := 0
		for n < len(plan.Passes) && isCacheable(plan.Passes[n]) {
			n++
		}
		if n > 0 {
			st, err := m.prefixState(plan, n, ctx)
			if err != nil {
				return err
			}
			ctx.Prog, ctx.Prof, ctx.Shared = st.prog, st.prof, true
			start = n
		}
	}
	for i := start; i < len(plan.Passes); i++ {
		p := plan.Passes[i]
		if ctx.Shared && mutates(p) {
			ctx.Prog = ctx.Prog.Clone()
			if ctx.Prof != nil {
				ctx.Prof = ctx.Prof.Clone()
			}
			ctx.Shared = false
		}
		if err := m.runPass(plan, i, ctx, false); err != nil {
			return err
		}
	}
	return nil
}

// prefixState returns the memoized state after plan.Passes[:n], computing
// missing entries recursively: the entry for pass i clones the state for
// passes [:i], runs pass i on the clone, and publishes the result
// immutably. A failing pass forgets its key, so no entry — not even a
// memoized error — outlives a failed computation.
func (m *Manager) prefixState(plan Plan, n int, ctx0 *Ctx) (*state, error) {
	key := plan.Key(ctx0.Key, n)
	computed := false
	v, err := m.Cache.Do(key, func() (any, error) {
		computed = true
		cur := &Ctx{Source: ctx0.Source, Machine: ctx0.Machine}
		if n > 1 {
			prev, err := m.prefixState(plan, n-1, ctx0)
			if err != nil {
				return nil, err
			}
			cur.Prog = prev.prog.Clone()
			if prev.prof != nil {
				cur.Prof = prev.prof.Clone()
			}
		}
		if err := m.runPass(plan, n-1, cur, false); err != nil {
			return nil, err
		}
		return &state{prog: cur.Prog, prof: cur.Prof}, nil
	})
	if err != nil {
		m.Cache.Forget(key)
		return nil, err
	}
	st := v.(*state)
	if m.Sink != nil && !computed {
		// Narrate the cache-served prefix end so traces show the
		// disposition; passes that actually ran narrated from runPass.
		m.emit(plan, n-1, 0, true, nil)
	}
	return st, nil
}

// runPass executes one pass with validation, dump, and event handling.
func (m *Manager) runPass(plan Plan, i int, ctx *Ctx, fromCache bool) error {
	p := plan.Passes[i]
	var t0 time.Time
	if m.Sink != nil {
		t0 = time.Now()
	}
	err := p.Run(ctx, ctx.Prog)
	validation := false
	if err == nil && (m.ValidateEach || isStructural(p)) && ctx.Prog != nil {
		if verr := ctx.Prog.Validate(); verr != nil {
			err, validation = verr, true
		}
	}
	if m.Sink != nil {
		m.emit(plan, i, time.Since(t0), fromCache, err)
	}
	if err != nil {
		return &PassError{Plan: plan.Name, Pass: p.Name(), Index: i, Validation: validation, Err: err}
	}
	if m.Dump != nil && ctx.Prog != nil {
		m.Dump(plan.Name, p.Name(), i, ctx.Prog)
	}
	return nil
}

// emit builds and sends one pass event. Only called with a sink attached,
// so the no-sink path never constructs an event (zero allocations).
func (m *Manager) emit(plan Plan, i int, d time.Duration, hit bool, err error) {
	e := obs.PassEvent{
		Plan:     plan.Name,
		Pass:     plan.Passes[i].Name(),
		Index:    i,
		Duration: d,
		CacheHit: hit,
	}
	if err != nil {
		e.Err = err.Error()
	}
	m.Sink.PassEvent(&e)
}
