package pipeline

// The concrete passes. Each is a thin, named adapter over the pure
// transformation packages (lang, opt, ifconv, regions, profile, speculate,
// sched); policy — ordering, validation, caching, observability — lives in
// the Manager, not here.

import (
	"fmt"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/ifconv"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/regions"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

// Lower compiles ctx.Source into the IR (the plan root for source-rooted
// plans).
type Lower struct{}

// Name implements Pass.
func (Lower) Name() string { return "lower" }

// Cacheable marks the pass memoizable.
func (Lower) Cacheable() bool { return true }

// Mutates reports that the pass replaces rather than mutates ctx.Prog.
func (Lower) Mutates() bool { return false }

// Run implements Pass.
func (Lower) Run(ctx *Ctx, _ *ir.Program) error {
	prog, err := lang.Compile(ctx.Source)
	if err != nil {
		return err
	}
	ctx.Prog = prog
	return nil
}

// Opt is the machine-independent optimizer.
type Opt struct{}

// Name implements Pass.
func (Opt) Name() string { return "opt" }

// Cacheable marks the pass memoizable.
func (Opt) Cacheable() bool { return true }

// Structural: the optimizer rewrites blocks, so its output is always
// validated.
func (Opt) Structural() bool { return true }

// Run implements Pass.
func (Opt) Run(_ *Ctx, p *ir.Program) error {
	opt.Optimize(p)
	return nil
}

// IfConvert folds small branch diamonds into Select-predicated straight-line
// code.
type IfConvert struct{ Cfg ifconv.Config }

// Name implements Pass.
func (IfConvert) Name() string { return "ifconv" }

// Cacheable marks the pass memoizable.
func (IfConvert) Cacheable() bool { return true }

// Structural: if-conversion deletes blocks and rewrites branches.
func (IfConvert) Structural() bool { return true }

// Fingerprint keys the cache on the pass configuration.
func (c IfConvert) Fingerprint() string { return fmt.Sprintf("%+v", c.Cfg) }

// Run implements Pass.
func (c IfConvert) Run(_ *Ctx, p *ir.Program) error {
	ifconv.Convert(p, c.Cfg)
	return nil
}

// Regions forms profile-guided superblocks. Region formation duplicates
// code (fresh op IDs), so it collects its own edge profile; the value
// profile downstream passes consume must be collected afterwards (the
// Profile pass).
type Regions struct{ Cfg regions.Config }

// Name implements Pass.
func (Regions) Name() string { return "regions" }

// Cacheable marks the pass memoizable.
func (Regions) Cacheable() bool { return true }

// Structural: superblock formation duplicates and rewires blocks.
func (Regions) Structural() bool { return true }

// Fingerprint keys the cache on the pass configuration.
func (c Regions) Fingerprint() string { return fmt.Sprintf("%+v", c.Cfg) }

// Run implements Pass.
func (c Regions) Run(_ *Ctx, p *ir.Program) error {
	prof, err := profile.Collect(p, "main")
	if err != nil {
		return err
	}
	regions.Form(p, prof, c.Cfg)
	return nil
}

// Profile collects the value/frequency profile of the current program and
// publishes it as ctx.Prof.
type Profile struct{}

// Name implements Pass.
func (Profile) Name() string { return "profile" }

// Cacheable marks the pass memoizable.
func (Profile) Cacheable() bool { return true }

// Mutates: profiling interprets the program read-only.
func (Profile) Mutates() bool { return false }

// Run implements Pass.
func (Profile) Run(ctx *Ctx, p *ir.Program) error {
	prof, err := profile.Collect(p, "main")
	if err != nil {
		return err
	}
	ctx.Prof = prof
	return nil
}

// Speculate selects prediction sites from ctx.Prof and inserts
// LdPred/CheckLd pairs, publishing the transformed clone as ctx.Prog, the
// full result as ctx.Spec, and the per-site predictor schemes as
// ctx.Schemes. The incoming program is left untouched (speculate.Transform
// clones internally), so a cache-shared program flows in without copying.
type Speculate struct{ Cfg speculate.Config }

// Name implements Pass.
func (Speculate) Name() string { return "speculate" }

// Structural: the transform inserts ops and rewrites uses, so its output
// program is always validated.
func (Speculate) Structural() bool { return true }

// Mutates reports that the incoming program is read, not modified.
func (Speculate) Mutates() bool { return false }

// Fingerprint keys events/keys on the pass configuration (the pass is not
// cacheable — its product is configuration-dependent measurement state —
// but plans embed the fingerprint in derived keys). The machine enters by
// name: the pointer identity of a Desc is process-local and two runs with
// the same named machine must fingerprint identically.
func (c Speculate) Fingerprint() string {
	cfg := c.Cfg
	mach := "none"
	if cfg.Machine != nil {
		mach = cfg.Machine.Name
	}
	cfg.Machine = nil
	// The predictor config enters by canonical key for the same reason the
	// machine enters by name: %+v on a pointer field would render a
	// process-local address, not the configuration.
	pred := cfg.Predictor.Key()
	cfg.Predictor = nil
	// The control config also holds a pointer (the branch-predictor spec),
	// so it too enters by canonical key rather than %+v.
	ctrl := cfg.Control.Key()
	cfg.Control = machine.ControlConfig{}
	return fmt.Sprintf("mach=%s pred=%s ctrl=%s %+v", mach, pred, ctrl, cfg)
}

// Run implements Pass.
func (c Speculate) Run(ctx *Ctx, p *ir.Program) error {
	if ctx.Prof == nil {
		return fmt.Errorf("speculate: no value profile on ctx (missing profile pass?)")
	}
	res, err := speculate.Transform(p, ctx.Prof, c.Cfg)
	if err != nil {
		return err
	}
	ctx.Spec = res
	ctx.Prog = res.Prog
	ctx.Schemes = make(map[int]profile.Scheme, len(res.Sites))
	for _, site := range res.Sites {
		ctx.Schemes[site.ID] = site.Scheme
	}
	return nil
}

// Schedule list-schedules every block of the current program for
// ctx.Machine and publishes the whole-program schedule as ctx.Sched. It
// reads the program (speculation-aware DDG construction) without mutating
// it.
type Schedule struct{ DDG ddg.Options }

// Name implements Pass.
func (Schedule) Name() string { return "schedule" }

// Mutates reports that scheduling reads the program without modifying it.
func (Schedule) Mutates() bool { return false }

// Fingerprint keys events/keys on the DDG options.
func (s Schedule) Fingerprint() string { return fmt.Sprintf("%+v", s.DDG) }

// Run implements Pass.
func (s Schedule) Run(ctx *Ctx, p *ir.Program) error {
	if ctx.Machine == nil {
		return fmt.Errorf("schedule: no machine description on ctx")
	}
	ps := &sched.ProgSched{Prog: p, Funcs: map[string]*sched.FuncSched{}}
	for _, f := range p.Funcs {
		fs := &sched.FuncSched{F: f, Blocks: make([]*sched.BlockSched, len(f.Blocks))}
		for i, b := range f.Blocks {
			g := speculate.BuildGraph(b, ctx.Machine, s.DDG)
			fs.Blocks[i] = sched.ScheduleBlock(b, g, ctx.Machine)
			if err := fs.Blocks[i].Validate(g, ctx.Machine); err != nil {
				return fmt.Errorf("%s b%d: %w", f.Name, i, err)
			}
		}
		ps.Funcs[f.Name] = fs
	}
	ctx.Sched = ps
	return nil
}

// Decode lowers the scheduled program into the simulator's dense execution
// image (core.Image): flat per-block op arrays, precomputed operand lists
// and Synchronization-bit masks, dense prediction-site IDs. It runs after
// Schedule and publishes ctx.Image. The image is immutable and safe to
// share — callers cache it per (program, schedule, machine) and bind any
// number of simulators or batches to it.
//
// Decode is deliberately not Cacheable: the manager's memoized prefix
// state carries only (Prog, Prof), so an image must be produced by a live
// pass (or cached by the caller under the plan key, as internal/exp does).
type Decode struct{}

// Name implements Pass.
func (Decode) Name() string { return "decode" }

// Mutates reports that decoding reads the program without modifying it.
func (Decode) Mutates() bool { return false }

// Fingerprint contributes the image format version to derived cache keys,
// so caller-side image caches invalidate when the format evolves.
func (Decode) Fingerprint() string { return core.ImageFormatVersion }

// Run implements Pass.
func (Decode) Run(ctx *Ctx, p *ir.Program) error {
	if ctx.Machine == nil {
		return fmt.Errorf("decode: no machine description on ctx")
	}
	if ctx.Sched == nil {
		return fmt.Errorf("decode: no schedule on ctx (run the schedule pass first)")
	}
	img, err := core.DecodeImage(p, ctx.Sched, ctx.Machine)
	if err != nil {
		return err
	}
	ctx.Image = img
	return nil
}
