package pipeline

import (
	"errors"
	"fmt"
	"testing"

	"vliwvp/internal/exp/cache"
	"vliwvp/internal/ifconv"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/progen"
	"vliwvp/internal/speculate"
)

// testSource is a deterministic generated program; every test compiles the
// same source so cache keys are meaningful across sub-tests.
func testSource() string {
	return progen.Render(progen.Generate(7, progen.Options{}))
}

// fullPlan is the complete compile flow: source → schedules.
func fullPlan(d *machine.Desc) Plan {
	return Plan{Name: "full", Passes: []Pass{
		Lower{}, Opt{}, IfConvert{Cfg: ifconv.DefaultConfig()}, Profile{},
		Speculate{Cfg: speculate.DefaultConfig(d)}, Schedule{},
	}}
}

func TestFullPlanEndToEnd(t *testing.T) {
	d := machine.W4
	m := NewManager()
	m.Cache = cache.New()
	ctx := &Ctx{Source: testSource(), Key: "t|full", Machine: d}
	if err := m.Run(fullPlan(d), ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Prog == nil || ctx.Prof == nil || ctx.Spec == nil || ctx.Sched == nil {
		t.Fatalf("missing artifacts: prog=%v prof=%v spec=%v sched=%v",
			ctx.Prog != nil, ctx.Prof != nil, ctx.Spec != nil, ctx.Sched != nil)
	}
	if ctx.Prog != ctx.Spec.Prog {
		t.Error("ctx.Prog is not the speculated program")
	}
	if len(ctx.Schemes) != len(ctx.Spec.Sites) {
		t.Errorf("schemes: %d entries, %d sites", len(ctx.Schemes), len(ctx.Spec.Sites))
	}
	// The cacheable prefix (lower, opt, ifconv, profile) memoized per pass.
	if got := m.Cache.Len(); got != 4 {
		t.Errorf("cache entries = %d, want 4 (one per cacheable pass)", got)
	}
	// A second run serves the prefix shared and read-only.
	ctx2 := &Ctx{Source: testSource(), Key: "t|full", Machine: d}
	if err := m.Run(fullPlan(d), ctx2); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Len() != 4 {
		t.Errorf("second run grew the cache to %d entries", m.Cache.Len())
	}
}

// nopPass is the hot-path stand-in for the zero-allocation test.
type nopPass struct{ name string }

func (p nopPass) Name() string              { return p.name }
func (nopPass) Run(*Ctx, *ir.Program) error { return nil }
func (nopPass) Mutates() bool               { return false }

// TestManagerZeroAllocWithoutSink pins the pipeline half of the repo's
// no-sink guarantee: running a plan with no sink, no cache and no dump
// allocates nothing, so production binaries pay nothing for the
// observability hooks (mirrors core's TestTimingZeroAllocWithoutSink).
func TestManagerZeroAllocWithoutSink(t *testing.T) {
	m := &Manager{}
	plan := Plan{Name: "hot", Passes: []Pass{nopPass{"a"}, nopPass{"b"}, nopPass{"c"}}}
	ctx := &Ctx{}
	if avg := testing.AllocsPerRun(200, func() {
		if err := m.Run(plan, ctx); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("no-sink Run allocates %.1f/op, want 0", avg)
	}

	// Sanity: with a sink attached the same plan does allocate (events are
	// built) and every pass is narrated.
	var events []obs.PassEvent
	m.Sink = obs.PassFunc(func(e *obs.PassEvent) { events = append(events, *e) })
	if avg := testing.AllocsPerRun(10, func() {
		events = events[:0]
		if err := m.Run(plan, ctx); err != nil {
			t.Fatal(err)
		}
	}); avg == 0 {
		t.Error("sink path reports 0 allocs/op; the no-sink result proves nothing")
	}
	if len(events) != 3 {
		t.Fatalf("sink saw %d events, want 3", len(events))
	}
	for i, e := range events {
		if e.Plan != "hot" || e.Index != i || e.CacheHit || e.Err != "" {
			t.Errorf("event %d = %+v", i, e)
		}
	}
}

// TestPrefixCacheSharedAcrossPlans proves per-pass (not per-plan)
// memoization: two plans that agree on a leading pass sequence share those
// entries, and cache-served prefixes are flagged on the event stream.
func TestPrefixCacheSharedAcrossPlans(t *testing.T) {
	src := testSource()
	m := NewManager()
	m.Cache = cache.New()
	var events []obs.PassEvent
	m.Sink = obs.PassFunc(func(e *obs.PassEvent) { events = append(events, *e) })

	planA := Plan{Name: "A", Passes: []Pass{Lower{}, Opt{}, Profile{}}}
	if err := m.Run(planA, &Ctx{Source: src, Key: "t|share"}); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Len() != 3 {
		t.Fatalf("after plan A: %d entries, want 3", m.Cache.Len())
	}
	for _, e := range events {
		if e.CacheHit {
			t.Errorf("cold run reported cache hit: %+v", e)
		}
	}

	// Plan B diverges after [lower, opt]: only its new suffix computes.
	events = events[:0]
	planB := Plan{Name: "B", Passes: []Pass{
		Lower{}, Opt{}, IfConvert{Cfg: ifconv.DefaultConfig()}, Profile{},
	}}
	if err := m.Run(planB, &Ctx{Source: src, Key: "t|share"}); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Len() != 5 {
		t.Fatalf("after plan B: %d entries, want 5 (2 shared + 2 new)", m.Cache.Len())
	}
	var hits, runs []string
	for _, e := range events {
		if e.CacheHit {
			hits = append(hits, e.Pass)
		} else {
			runs = append(runs, e.Pass)
		}
	}
	if len(hits) != 1 || hits[0] != "opt" {
		t.Errorf("cache hits %v, want the shared prefix end [opt]", hits)
	}
	if len(runs) != 2 || runs[0] != "ifconv" || runs[1] != "profile" {
		t.Errorf("computed passes %v, want [ifconv profile]", runs)
	}

	// Re-running plan B is a pure prefix hit: one event, no new entries.
	events = events[:0]
	ctx := &Ctx{Source: src, Key: "t|share"}
	if err := m.Run(planB, ctx); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Len() != 5 || len(events) != 1 || !events[0].CacheHit || events[0].Pass != "profile" {
		t.Errorf("warm rerun: %d entries, events %+v", m.Cache.Len(), events)
	}
	if !ctx.Shared {
		t.Error("cache-served state not marked Shared")
	}
}

// failingPass is a cacheable pass that always errors, counting attempts.
type failingPass struct{ runs *int }

func (failingPass) Name() string    { return "explode" }
func (failingPass) Cacheable() bool { return true }
func (f failingPass) Run(*Ctx, *ir.Program) error {
	*f.runs++
	return errors.New("boom")
}

// TestFailingPassLeavesNoPartialCacheEntry pins the manager's error
// contract: a pass erroring mid-plan reports a *PassError naming it, the
// successfully computed prefix stays cached, and the failing pass's own
// key is absent — not even the error is memoized, so a retry re-executes
// it.
func TestFailingPassLeavesNoPartialCacheEntry(t *testing.T) {
	m := NewManager()
	m.Cache = cache.New()
	runs := 0
	plan := Plan{Name: "doomed", Passes: []Pass{
		Lower{}, Opt{}, failingPass{&runs}, Profile{},
	}}
	ctx := &Ctx{Source: testSource(), Key: "t|fail"}
	err := m.Run(plan, ctx)
	var pe *PassError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PassError", err)
	}
	if pe.Plan != "doomed" || pe.Pass != "explode" || pe.Index != 2 || pe.Validation {
		t.Errorf("PassError = %+v", pe)
	}
	if runs != 1 {
		t.Fatalf("failing pass ran %d times, want 1", runs)
	}
	// The two successful prefix passes stay memoized; the failing pass's
	// key — and everything after it — is absent.
	if got := m.Cache.Len(); got != 2 {
		t.Errorf("cache entries after failure = %d, want 2 (lower, opt)", got)
	}

	// Retry: the prefix is served from cache, the failing pass re-executes
	// (no memoized error), and the cache is unchanged.
	err = m.Run(plan, &Ctx{Source: testSource(), Key: "t|fail"})
	if !errors.As(err, &pe) || pe.Pass != "explode" {
		t.Fatalf("retry error = %v", err)
	}
	if runs != 2 {
		t.Errorf("failing pass ran %d times across two attempts, want 2", runs)
	}
	if got := m.Cache.Len(); got != 2 {
		t.Errorf("cache entries after retry = %d, want 2", got)
	}
}

// corruptPass breaks the program's IR without reporting an error — the
// between-pass validator must catch it and name this pass.
type corruptPass struct{}

func (corruptPass) Name() string { return "corrupt" }
func (corruptPass) Run(_ *Ctx, p *ir.Program) error {
	p.Funcs[0].Blocks[0].Ops[0].A = ir.Reg(9999)
	return nil
}

// TestValidationNamesPassAndMinimizesRepro pins the debugging workflow the
// pass manager enables: when ir.Validate trips between passes, the error
// names the offending pass, IsValidation distinguishes it from pass
// failures, and progen.Minimize shrinks the triggering program to a
// minimal repro whose seed the report carries.
func TestValidationNamesPassAndMinimizesRepro(t *testing.T) {
	const seed = 7
	m := NewManager()
	plan := Plan{Name: "corruptor", Passes: []Pass{Lower{}, Opt{}, corruptPass{}}}
	failsWith := func(s progen.Spec) bool {
		err := m.Run(plan, &Ctx{Source: progen.Render(s)})
		var pe *PassError
		return errors.As(err, &pe) && pe.Pass == "corrupt" && pe.Validation
	}

	spec := progen.Generate(seed, progen.Options{})
	if !failsWith(spec) {
		t.Fatal("corrupting pass did not trip the between-pass validator")
	}
	err := m.Run(plan, &Ctx{Source: progen.Render(spec)})
	if !IsValidation(err) {
		t.Fatalf("IsValidation(%v) = false", err)
	}
	var pe *PassError
	errors.As(err, &pe)
	if pe.Pass != "corrupt" || pe.Index != 2 {
		t.Errorf("validation PassError = %+v, want pass %q at #2", pe, "corrupt")
	}
	if IsValidation(errors.New("plain")) {
		t.Error("IsValidation accepted a non-pipeline error")
	}

	// The repro report: the minimized spec still fails identically and is
	// reproducible from its seed alone.
	min := progen.Minimize(spec, failsWith)
	if !failsWith(min) {
		t.Fatal("minimized spec no longer fails")
	}
	if min.Seed != seed {
		t.Errorf("minimized spec lost its seed: %d, want %d", min.Seed, seed)
	}
	if len(min.Frags) > len(spec.Frags) {
		t.Errorf("minimize grew the program: %d frags from %d", len(min.Frags), len(spec.Frags))
	}
	t.Logf("repro: seed=%d frags=%d→%d trip=%d→%d\n%s",
		min.Seed, len(spec.Frags), len(min.Frags), spec.Trip, min.Trip,
		fmt.Sprintf("pass %s: %v", pe.Pass, pe.Err))
}

// TestDumpDisablesCacheAndSeesEveryPass pins -dump-ir semantics: with a
// dump hook attached every pass genuinely runs (no cache serving) and the
// hook sees the program after each program-producing pass.
func TestDumpDisablesCacheAndSeesEveryPass(t *testing.T) {
	m := NewManager()
	m.Cache = cache.New()
	var dumped []string
	m.Dump = func(plan, pass string, index int, prog *ir.Program) {
		dumped = append(dumped, fmt.Sprintf("%s/%s#%d", plan, pass, index))
	}
	plan := Plan{Name: "D", Passes: []Pass{Lower{}, Opt{}, Profile{}}}
	if err := m.Run(plan, &Ctx{Source: testSource(), Key: "t|dump"}); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Len() != 0 {
		t.Errorf("dump run populated the cache (%d entries)", m.Cache.Len())
	}
	want := []string{"D/lower#0", "D/opt#1", "D/profile#2"}
	if len(dumped) != len(want) {
		t.Fatalf("dumped %v, want %v", dumped, want)
	}
	for i := range want {
		if dumped[i] != want[i] {
			t.Fatalf("dumped %v, want %v", dumped, want)
		}
	}
}

// TestSharedPrefixCloneForMutators proves a mutating suffix pass never
// writes through cache-shared state: the memoized program is cloned first.
type touchPass struct{}

func (touchPass) Name() string { return "touch" }
func (touchPass) Run(_ *Ctx, p *ir.Program) error {
	p.Funcs[0].Name = p.Funcs[0].Name + "_touched"
	return nil
}

func TestSharedPrefixCloneForMutators(t *testing.T) {
	src := testSource()
	m := &Manager{Cache: cache.New()}
	base := Plan{Name: "base", Passes: []Pass{Lower{}, Opt{}}}
	ctx0 := &Ctx{Source: src, Key: "t|mut"}
	if err := m.Run(base, ctx0); err != nil {
		t.Fatal(err)
	}
	cachedName := ctx0.Prog.Funcs[0].Name

	mutating := Plan{Name: "mut", Passes: []Pass{Lower{}, Opt{}, touchPass{}}}
	ctx := &Ctx{Source: src, Key: "t|mut"}
	if err := m.Run(mutating, ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Shared {
		t.Error("ctx still marked Shared after a mutating pass")
	}
	if ctx.Prog == ctx0.Prog {
		t.Fatal("mutating pass ran directly on the cache-shared program")
	}
	if ctx0.Prog.Funcs[0].Name != cachedName {
		t.Errorf("cache-shared program mutated: %q", ctx0.Prog.Funcs[0].Name)
	}
}
