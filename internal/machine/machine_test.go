package machine

import (
	"testing"

	"vliwvp/internal/ir"
)

func TestStockConfigsValidate(t *testing.T) {
	for _, d := range Stock() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := &Desc{Name: "bad", Width: 0, Units: [NumClasses]int{1, 1, 1, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted width 0")
	}
	bad = &Desc{Name: "bad", Width: 4, Units: [NumClasses]int{IALU: 2, MEM: 0, FPU: 1, BR: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted class with no units")
	}
	bad = &Desc{Name: "bad", Width: 8, Units: [NumClasses]int{1, 1, 1, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted undersubscribed width")
	}
}

func TestClassAssignment(t *testing.T) {
	f := ir.NewFunc("c")
	mk := func(code ir.Opcode) *ir.Op { return f.NewOp(code) }
	cases := []struct {
		code ir.Opcode
		want Class
	}{
		{ir.Add, IALU}, {ir.MovI, IALU}, {ir.Lea, IALU}, {ir.LdPred, IALU},
		{ir.Load, MEM}, {ir.Store, MEM}, {ir.CheckLd, MEM},
		{ir.FAdd, FPU}, {ir.FDiv, FPU}, {ir.I2F, FPU},
		{ir.Br, BR}, {ir.Jmp, BR}, {ir.Ret, BR}, {ir.Call, BR},
	}
	for _, tc := range cases {
		if got := ClassOf(mk(tc.code)); got != tc.want {
			t.Errorf("ClassOf(%v) = %v, want %v", tc.code, got, tc.want)
		}
	}
}

func TestPaperLatencies(t *testing.T) {
	f := ir.NewFunc("l")
	d := W4
	cases := []struct {
		code ir.Opcode
		want int
	}{
		{ir.Add, 1}, {ir.Mov, 1}, {ir.LdPred, 1}, {ir.Lea, 1},
		{ir.Load, 3}, {ir.CheckLd, 3}, {ir.Store, 1},
		{ir.Mul, 3}, {ir.Div, 8},
		{ir.FAdd, 3}, {ir.FMul, 3}, {ir.FDiv, 8}, {ir.FMov, 1},
		{ir.Br, 1},
	}
	for _, tc := range cases {
		op := f.NewOp(tc.code)
		if got := d.Latency(op); got != tc.want {
			t.Errorf("Latency(%v) = %d, want %d", tc.code, got, tc.want)
		}
	}
}

func TestCheckLoadSharesMemoryUnitSemantics(t *testing.T) {
	// Per §3 of the paper: check prediction executes on a memory unit with
	// load latency; LdPred on an integer unit with move latency.
	f := ir.NewFunc("s")
	chk := f.NewOp(ir.CheckLd)
	lp := f.NewOp(ir.LdPred)
	if ClassOf(chk) != MEM || W4.Latency(chk) != LatLoad {
		t.Error("CheckLd must behave as a load on a memory unit")
	}
	if ClassOf(lp) != IALU || W4.Latency(lp) != LatInt {
		t.Error("LdPred must behave as a move on an integer unit")
	}
}

func TestByName(t *testing.T) {
	if ByName("4-wide") != W4 {
		t.Error("ByName(4-wide) != W4")
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestWidthMonotonic(t *testing.T) {
	stock := Stock()
	for i := 1; i < len(stock); i++ {
		if stock[i].Width <= stock[i-1].Width {
			t.Errorf("stock configs not in increasing width order at %d", i)
		}
		for c := Class(0); c < NumClasses; c++ {
			if stock[i].Units[c] < stock[i-1].Units[c] {
				t.Errorf("%s has fewer %v units than %s", stock[i].Name, c, stock[i-1].Name)
			}
		}
	}
}
