package machine

import (
	"errors"
	"testing"

	"vliwvp/internal/predict"
)

// TestControlZeroValue pins the compatibility contract: the zero
// ControlConfig is the pre-refactor machine — free taken branches, no
// modeled predictor, no redirect or flush charges.
func TestControlZeroValue(t *testing.T) {
	var c ControlConfig
	if c.Dynamic() {
		t.Error("zero ControlConfig reports a dynamic predictor")
	}
	if c.RedirectLat() != 0 || c.FlushLat() != 0 {
		t.Errorf("zero ControlConfig charges redirect=%d flush=%d, want 0/0",
			c.RedirectLat(), c.FlushLat())
	}
	if got := c.Key(); got != "bp=0" {
		t.Errorf("zero ControlConfig Key() = %q, want \"bp=0\"", got)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("zero ControlConfig Validate() = %v", err)
	}
	if got := DefaultControl().Key(); got != "bp=1" {
		t.Errorf("DefaultControl().Key() = %q, want \"bp=1\"", got)
	}
}

// TestControlDynamicLatencies checks the effective latencies: package
// defaults while unset, explicit values otherwise, and inert fields while
// no predictor is bound.
func TestControlDynamicLatencies(t *testing.T) {
	bc, err := predict.ParseBranch("tage")
	if err != nil {
		t.Fatal(err)
	}
	dyn := ControlConfig{Branch: bc}
	if !dyn.Dynamic() {
		t.Fatal("config with a branch predictor is not Dynamic")
	}
	if dyn.RedirectLat() != DefaultRedirectLat || dyn.FlushLat() != DefaultFlushLat {
		t.Errorf("default dynamic latencies = %d/%d, want %d/%d",
			dyn.RedirectLat(), dyn.FlushLat(), DefaultRedirectLat, DefaultFlushLat)
	}
	tuned := ControlConfig{Branch: bc, Redirect: 2, Flush: 6}
	if tuned.RedirectLat() != 2 || tuned.FlushLat() != 6 {
		t.Errorf("tuned latencies = %d/%d, want 2/6", tuned.RedirectLat(), tuned.FlushLat())
	}
	inert := ControlConfig{Redirect: 2, Flush: 6} // no predictor: fields are inert
	if inert.RedirectLat() != 0 || inert.FlushLat() != 0 {
		t.Errorf("latencies without a predictor = %d/%d, want 0/0",
			inert.RedirectLat(), inert.FlushLat())
	}
}

// TestControlKeyForms pins the canonical key grammar baseline-run caches
// and pass fingerprints embed.
func TestControlKeyForms(t *testing.T) {
	bim, err := predict.ParseBranch("bimodal:bits=8")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		c    ControlConfig
		want string
	}{
		{ControlConfig{BranchPenalty: 3}, "bp=3"},
		{ControlConfig{Branch: bim}, "bp=0,branch=bimodal:bits=8"},
		{ControlConfig{Branch: bim, Flush: 6}, "bp=0,branch=bimodal:bits=8,flush=6"},
		{ControlConfig{Branch: bim, Flush: 6, Redirect: 2}, "bp=0,branch=bimodal:bits=8,flush=6,redir=2"},
		{ControlConfig{BranchPenalty: 1, Branch: bim, Redirect: 2}, "bp=1,branch=bimodal:bits=8,redir=2"},
	}
	for _, tc := range cases {
		if got := tc.c.Key(); got != tc.want {
			t.Errorf("Key() = %q, want %q", got, tc.want)
		}
	}
}

// TestControlValidate checks range enforcement on every field and that
// branch-predictor errors surface as the predictor's own typed error.
func TestControlValidate(t *testing.T) {
	bad := []struct {
		c     ControlConfig
		field string
	}{
		{ControlConfig{BranchPenalty: -1}, "BranchPenalty"},
		{ControlConfig{BranchPenalty: 65}, "BranchPenalty"},
		{ControlConfig{Redirect: -1}, "Redirect"},
		{ControlConfig{Redirect: 65}, "Redirect"},
		{ControlConfig{Flush: 257}, "Flush"},
	}
	for _, tc := range bad {
		err := tc.c.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want %s range error", tc.c, tc.field)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != tc.field {
			t.Errorf("Validate(%+v) = %v, want *ConfigError on %s", tc.c, err, tc.field)
		}
	}
	broken := ControlConfig{Branch: &predict.BranchConfig{Scheme: "gshare"}}
	var pe *predict.ConfigError
	if err := broken.Validate(); !errors.As(err, &pe) {
		t.Errorf("Validate with a bad branch scheme = %v, want *predict.ConfigError", err)
	}
}
