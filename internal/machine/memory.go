// Memory-hierarchy descriptions. The paper's experiments charge every
// load a flat LatLoad cycles; the configs here generalise that into a
// parameterised I$/D$ cache model (per-level size/associativity/line
// size/hit latency, LRU replacement) plus an optional PC-indexed
// stride-stream prefetcher, so load latency becomes dynamic per access.
//
// The hierarchy is strictly a *timing* model: it never changes
// architectural state (registers, memory, output). The conformance suite
// pins that contract — every cache configuration must produce
// byte-identical architectural results, only cycle counts may move.
package machine

import "fmt"

// CacheParams describes one cache level. All size knobs must be powers
// of two: the simulator indexes sets and slices line offsets with shift
// and mask arithmetic, and silently rounding a user's 48-line request to
// 32 or 64 would make reported cycle counts lie about the configuration.
// Validate rejects non-powers-of-two with a typed error instead.
type CacheParams struct {
	Lines     int // total cache lines (power of two)
	Assoc     int // ways per set (power of two, <= Lines)
	LineWords int // 64-bit words per line (power of two)
	HitLat    int // cycles to serve a hit at this level (>= 1)
}

// Sets returns the number of sets (Lines / Assoc).
func (c *CacheParams) Sets() int { return c.Lines / c.Assoc }

// PrefetchParams configures the stride-stream prefetcher. Degree == 0
// disables prefetching entirely.
type PrefetchParams struct {
	Degree     int // lines fetched ahead per trained stream (0 = off)
	Confidence int // consecutive equal deltas required before issuing
}

// MemConfig is a full memory-hierarchy description: zero or more D-cache
// levels (nearest first), an optional instruction cache, the
// latency to main memory behind the last level, and the prefetcher. A
// nil *MemConfig, or MemFlat(), reproduces the paper's flat model: every
// load costs LatLoad cycles and instruction fetch is free.
type MemConfig struct {
	Name     string
	Levels   []CacheParams  // D-cache levels, L1 first; empty = no D-cache
	ICache   *CacheParams   // optional instruction cache
	MemLat   int            // cycles to main memory behind the last level
	Prefetch PrefetchParams // stride-stream prefetcher (L1 fills)
}

// ConfigError is the typed validation failure for memory configs. Field
// names the offending knob, Value its rejected setting.
type ConfigError struct {
	Config string // config name
	Field  string // e.g. "L1.Lines", "ICache.Assoc", "MemLat"
	Value  int
	Reason string // e.g. "must be a power of two"
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("memory config %q: %s = %d %s", e.Config, e.Field, e.Value, e.Reason)
}

// powerOfTwo reports whether v is a positive power of two.
func powerOfTwo(v int) bool { return v > 0 && v&(v-1) == 0 }

// validateLevel checks one cache level's parameters.
func (m *MemConfig) validateLevel(prefix string, c *CacheParams) error {
	fail := func(field string, value int, reason string) error {
		return &ConfigError{Config: m.Name, Field: prefix + "." + field, Value: value, Reason: reason}
	}
	if !powerOfTwo(c.Lines) {
		return fail("Lines", c.Lines, "must be a power of two")
	}
	if !powerOfTwo(c.Assoc) {
		return fail("Assoc", c.Assoc, "must be a power of two")
	}
	if c.Assoc > c.Lines {
		return fail("Assoc", c.Assoc, fmt.Sprintf("exceeds Lines = %d", c.Lines))
	}
	if !powerOfTwo(c.LineWords) {
		return fail("LineWords", c.LineWords, "must be a power of two")
	}
	if c.HitLat < 1 {
		return fail("HitLat", c.HitLat, "must be >= 1")
	}
	return nil
}

// levelPrefix names D-cache level i (0-based) in validation errors. The
// static table keeps the success path allocation-free: Validate runs on
// every simulator Run, and an eager Sprintf per level would break the
// engine's zero-alloc steady state.
func levelPrefix(i int) string {
	switch i {
	case 0:
		return "L1"
	case 1:
		return "L2"
	case 2:
		return "L3"
	default:
		return fmt.Sprintf("L%d", i+1)
	}
}

// Validate checks the configuration. Every rejection is a *ConfigError.
func (m *MemConfig) Validate() error {
	for i := range m.Levels {
		if err := m.validateLevel(levelPrefix(i), &m.Levels[i]); err != nil {
			return err
		}
	}
	if m.ICache != nil {
		if err := m.validateLevel("ICache", m.ICache); err != nil {
			return err
		}
	}
	if m.MemLat < 1 {
		return &ConfigError{Config: m.Name, Field: "MemLat", Value: m.MemLat, Reason: "must be >= 1"}
	}
	if m.Prefetch.Degree < 0 {
		return &ConfigError{Config: m.Name, Field: "Prefetch.Degree", Value: m.Prefetch.Degree, Reason: "must be >= 0"}
	}
	if m.Prefetch.Degree > 0 {
		if len(m.Levels) == 0 {
			return &ConfigError{Config: m.Name, Field: "Prefetch.Degree", Value: m.Prefetch.Degree,
				Reason: "requires at least one D-cache level to fill"}
		}
		if m.Prefetch.Confidence < 1 {
			return &ConfigError{Config: m.Name, Field: "Prefetch.Confidence", Value: m.Prefetch.Confidence, Reason: "must be >= 1"}
		}
	}
	return nil
}

// Flat reports whether the configuration is timing-equivalent to the
// paper's flat model: no cache levels, no I-cache, LatLoad to memory.
func (m *MemConfig) Flat() bool {
	return m == nil || (len(m.Levels) == 0 && m.ICache == nil && m.MemLat == LatLoad)
}

// Key returns a canonical identity string for cache-keying baselines and
// compiled products. Unlike %+v it never prints pointer addresses.
func (m *MemConfig) Key() string {
	if m == nil {
		return "flat"
	}
	s := fmt.Sprintf("mem[lat=%d", m.MemLat)
	for i := range m.Levels {
		c := &m.Levels[i]
		s += fmt.Sprintf(";L%d=%d/%d/%d/%d", i+1, c.Lines, c.Assoc, c.LineWords, c.HitLat)
	}
	if m.ICache != nil {
		s += fmt.Sprintf(";I=%d/%d/%d/%d", m.ICache.Lines, m.ICache.Assoc, m.ICache.LineWords, m.ICache.HitLat)
	}
	if m.Prefetch.Degree > 0 {
		s += fmt.Sprintf(";pf=%d/%d", m.Prefetch.Degree, m.Prefetch.Confidence)
	}
	return s + "]"
}

// Stock memory configurations. MemFlat reproduces today's cycle counts
// exactly (the conformance suite pins this); the others trace the
// generalised Fig. 10 axis from fast hits to slow memory.
var (
	// MemFlat: every load costs the paper's flat LatLoad cycles.
	MemFlat = &MemConfig{Name: "flat", MemLat: LatLoad}

	// MemL1: a small L1 D-cache in front of a 20-cycle memory.
	MemL1 = &MemConfig{
		Name:   "l1",
		Levels: []CacheParams{{Lines: 64, Assoc: 4, LineWords: 4, HitLat: LatLoad}},
		MemLat: 20,
	}

	// MemL1PF: MemL1 plus the stride-stream prefetcher.
	MemL1PF = &MemConfig{
		Name:     "l1-pf",
		Levels:   []CacheParams{{Lines: 64, Assoc: 4, LineWords: 4, HitLat: LatLoad}},
		MemLat:   20,
		Prefetch: PrefetchParams{Degree: 2, Confidence: 2},
	}

	// MemL2: two D-cache levels, an I-cache, and a 60-cycle memory —
	// the slow-memory point where value prediction earns its keep.
	MemL2 = &MemConfig{
		Name: "l2",
		Levels: []CacheParams{
			{Lines: 64, Assoc: 4, LineWords: 4, HitLat: LatLoad},
			{Lines: 512, Assoc: 8, LineWords: 8, HitLat: 9},
		},
		ICache: &CacheParams{Lines: 128, Assoc: 2, LineWords: 8, HitLat: 1},
		MemLat: 60,
	}

	// MemL2PF: MemL2 plus the prefetcher.
	MemL2PF = &MemConfig{
		Name: "l2-pf",
		Levels: []CacheParams{
			{Lines: 64, Assoc: 4, LineWords: 4, HitLat: LatLoad},
			{Lines: 512, Assoc: 8, LineWords: 8, HitLat: 9},
		},
		ICache:   &CacheParams{Lines: 128, Assoc: 2, LineWords: 8, HitLat: 1},
		MemLat:   60,
		Prefetch: PrefetchParams{Degree: 4, Confidence: 2},
	}
)

// StockMem lists the built-in memory configurations, flat first.
func StockMem() []*MemConfig {
	return []*MemConfig{MemFlat, MemL1, MemL1PF, MemL2, MemL2PF}
}

// MemByName returns the stock memory configuration with the given name,
// or nil. The empty string resolves to MemFlat.
func MemByName(name string) *MemConfig {
	if name == "" {
		return MemFlat
	}
	for _, m := range StockMem() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
