package machine

import (
	"errors"
	"testing"
)

// TestMemConfigValidate is the satellite-task table: non-power-of-two
// sizes and associativities must be rejected with a typed *ConfigError
// naming the offending field, never silently rounded.
func TestMemConfigValidate(t *testing.T) {
	l1 := func(lines, assoc, words, hit int) []CacheParams {
		return []CacheParams{{Lines: lines, Assoc: assoc, LineWords: words, HitLat: hit}}
	}
	tests := []struct {
		name      string
		cfg       MemConfig
		wantField string // "" = valid
		wantValue int
	}{
		{name: "flat", cfg: MemConfig{Name: "f", MemLat: 3}},
		{name: "l1 ok", cfg: MemConfig{Name: "c", Levels: l1(64, 4, 4, 3), MemLat: 20}},
		{name: "direct-mapped ok", cfg: MemConfig{Name: "c", Levels: l1(32, 1, 2, 1), MemLat: 10}},
		{name: "fully-assoc ok", cfg: MemConfig{Name: "c", Levels: l1(16, 16, 4, 2), MemLat: 10}},
		{name: "lines not pow2", cfg: MemConfig{Name: "c", Levels: l1(48, 4, 4, 3), MemLat: 20},
			wantField: "L1.Lines", wantValue: 48},
		{name: "lines zero", cfg: MemConfig{Name: "c", Levels: l1(0, 1, 4, 3), MemLat: 20},
			wantField: "L1.Lines", wantValue: 0},
		{name: "lines negative", cfg: MemConfig{Name: "c", Levels: l1(-64, 4, 4, 3), MemLat: 20},
			wantField: "L1.Lines", wantValue: -64},
		{name: "assoc not pow2", cfg: MemConfig{Name: "c", Levels: l1(64, 3, 4, 3), MemLat: 20},
			wantField: "L1.Assoc", wantValue: 3},
		{name: "assoc exceeds lines", cfg: MemConfig{Name: "c", Levels: l1(4, 8, 4, 3), MemLat: 20},
			wantField: "L1.Assoc", wantValue: 8},
		{name: "linewords not pow2", cfg: MemConfig{Name: "c", Levels: l1(64, 4, 5, 3), MemLat: 20},
			wantField: "L1.LineWords", wantValue: 5},
		{name: "hitlat zero", cfg: MemConfig{Name: "c", Levels: l1(64, 4, 4, 0), MemLat: 20},
			wantField: "L1.HitLat", wantValue: 0},
		{name: "second level not pow2", cfg: MemConfig{Name: "c",
			Levels: append(l1(64, 4, 4, 3), CacheParams{Lines: 100, Assoc: 4, LineWords: 8, HitLat: 9}),
			MemLat: 60}, wantField: "L2.Lines", wantValue: 100},
		{name: "icache assoc not pow2", cfg: MemConfig{Name: "c", Levels: l1(64, 4, 4, 3),
			ICache: &CacheParams{Lines: 64, Assoc: 6, LineWords: 8, HitLat: 1}, MemLat: 20},
			wantField: "ICache.Assoc", wantValue: 6},
		{name: "memlat zero", cfg: MemConfig{Name: "c", Levels: l1(64, 4, 4, 3)},
			wantField: "MemLat", wantValue: 0},
		{name: "prefetch negative degree", cfg: MemConfig{Name: "c", Levels: l1(64, 4, 4, 3),
			MemLat: 20, Prefetch: PrefetchParams{Degree: -1, Confidence: 2}},
			wantField: "Prefetch.Degree", wantValue: -1},
		{name: "prefetch without cache", cfg: MemConfig{Name: "c", MemLat: 20,
			Prefetch: PrefetchParams{Degree: 2, Confidence: 2}},
			wantField: "Prefetch.Degree", wantValue: 2},
		{name: "prefetch zero confidence", cfg: MemConfig{Name: "c", Levels: l1(64, 4, 4, 3),
			MemLat: 20, Prefetch: PrefetchParams{Degree: 2}},
			wantField: "Prefetch.Confidence", wantValue: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.wantField == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v, want *ConfigError", err)
			}
			if ce.Field != tt.wantField || ce.Value != tt.wantValue {
				t.Fatalf("ConfigError field=%q value=%d, want field=%q value=%d (%v)",
					ce.Field, ce.Value, tt.wantField, tt.wantValue, err)
			}
			if ce.Config != tt.cfg.Name {
				t.Fatalf("ConfigError config=%q, want %q", ce.Config, tt.cfg.Name)
			}
			if ce.Error() == "" {
				t.Fatal("empty error string")
			}
		})
	}
}

func TestStockMemValid(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range StockMem() {
		if err := m.Validate(); err != nil {
			t.Errorf("stock config %q invalid: %v", m.Name, err)
		}
		if seen[m.Name] {
			t.Errorf("duplicate stock config name %q", m.Name)
		}
		seen[m.Name] = true
		if got := MemByName(m.Name); got != m {
			t.Errorf("MemByName(%q) = %v, want the stock pointer", m.Name, got)
		}
	}
	if !MemFlat.Flat() {
		t.Error("MemFlat.Flat() = false")
	}
	var nilCfg *MemConfig
	if !nilCfg.Flat() {
		t.Error("(*MemConfig)(nil).Flat() = false")
	}
	if MemL1.Flat() {
		t.Error("MemL1.Flat() = true")
	}
	if MemByName("") != MemFlat {
		t.Error(`MemByName("") != MemFlat`)
	}
	if MemByName("no-such") != nil {
		t.Error(`MemByName("no-such") != nil`)
	}
}

// TestMemConfigKey pins that Key is canonical (no pointer addresses) and
// distinguishes every stock config — it keys cached baseline runs.
func TestMemConfigKey(t *testing.T) {
	var nilCfg *MemConfig
	if nilCfg.Key() != "flat" {
		t.Errorf("nil Key() = %q, want \"flat\"", nilCfg.Key())
	}
	keys := map[string]string{}
	for _, m := range StockMem() {
		k := m.Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("configs %q and %q share key %q", prev, m.Name, k)
		}
		keys[k] = m.Name
	}
	// Two structurally identical configs share a key even across copies.
	a := *MemL2
	if a.Key() != MemL2.Key() {
		t.Errorf("copy key %q != original %q", a.Key(), MemL2.Key())
	}
}
