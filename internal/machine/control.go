package machine

// ControlConfig is the single typed control-speculation model: it replaces
// the per-package BranchPenalty scalars that used to be duplicated across
// baseline, both core engines, conform, oracle, and serve. The zero value
// reproduces the pre-refactor machine exactly — a free taken branch
// (BranchPenalty 0) and no modeled direction predictor — so existing
// configurations and goldens are unchanged by construction.
//
// Two regimes coexist:
//
//   - Branch == nil: control flow is abstract. BranchPenalty is the only
//     live field — the serial-recovery machine's taken-branch cost, the
//     same scalar the paper's [4] comparison charges.
//   - Branch != nil: a direction predictor (predict.BranchPredictor) is
//     modeled in both engines. Every conditional branch consults it;
//     Redirect cycles are charged per taken branch (the fetch bubble), and
//     a mispredicted direction costs Flush cycles and flushes the
//     terminating block's unresolved LdPred/CCB state (DESIGN.md §15).

import (
	"strconv"
	"strings"

	"vliwvp/internal/predict"
)

// ControlConfig parameterizes control speculation. The struct is
// comparable (pointer + ints), so "is this the zero value" and "did the
// config change since last run" are plain == checks.
type ControlConfig struct {
	// BranchPenalty is the cost in cycles of each taken control transfer
	// in the serial-recovery machine (2*BranchPenalty per mispredict: into
	// and out of the compensation block). Zero is legal and means free
	// transfers.
	BranchPenalty int
	// Redirect is the fetch-redirect bubble in cycles charged per taken
	// branch when a direction predictor is modeled. Zero selects
	// DefaultRedirectLat; the field is inert while Branch is nil.
	Redirect int
	// Flush is the misprediction penalty in cycles when a direction
	// predictor is modeled. Zero selects DefaultFlushLat; inert while
	// Branch is nil.
	Flush int
	// Branch selects the direction predictor (predict.ParseBranch specs:
	// taken, nottaken, bimodal:bits=N, tage:hist=H,tables=T,bits=B).
	// Nil models no predictor — the legacy flat-penalty machine.
	Branch *predict.BranchConfig
}

// Default control-speculation latencies, active only when a direction
// predictor is modeled.
const (
	DefaultRedirectLat = 1
	DefaultFlushLat    = 3
)

// DefaultControl is the paper's charitable serial-recovery setting: a
// one-cycle taken-branch penalty, no modeled predictor.
func DefaultControl() ControlConfig { return ControlConfig{BranchPenalty: 1} }

// Dynamic reports whether a direction predictor is modeled.
func (c ControlConfig) Dynamic() bool { return c.Branch != nil }

// RedirectLat is the effective per-taken-branch fetch bubble: zero unless
// a predictor is modeled, then Redirect with the package default.
func (c ControlConfig) RedirectLat() int {
	if c.Branch == nil {
		return 0
	}
	if c.Redirect > 0 {
		return c.Redirect
	}
	return DefaultRedirectLat
}

// FlushLat is the effective misprediction penalty: zero unless a
// predictor is modeled, then Flush with the package default.
func (c ControlConfig) FlushLat() int {
	if c.Branch == nil {
		return 0
	}
	if c.Flush > 0 {
		return c.Flush
	}
	return DefaultFlushLat
}

// Validate checks every parameter range; branch-predictor errors are the
// predictor's own typed *predict.ConfigError.
func (c ControlConfig) Validate() error {
	fail := func(field string, value int, reason string) error {
		return &ConfigError{Config: c.Key(), Field: field, Value: value, Reason: reason}
	}
	if c.BranchPenalty < 0 || c.BranchPenalty > 64 {
		return fail("BranchPenalty", c.BranchPenalty, "must be between 0 and 64")
	}
	if c.Redirect < 0 || c.Redirect > 64 {
		return fail("Redirect", c.Redirect, "must be between 0 and 64")
	}
	if c.Flush < 0 || c.Flush > 256 {
		return fail("Flush", c.Flush, "must be between 0 and 256")
	}
	return c.Branch.Validate()
}

// Key renders the canonical cache-key form: the branch penalty plus, when
// a predictor is modeled, its spec and any non-default latencies, in a
// fixed order. The zero value's key is "bp=0". Pass fingerprints and
// baseline-run caches embed this key, so its format is load-bearing.
func (c ControlConfig) Key() string {
	var sb strings.Builder
	sb.WriteString("bp=")
	sb.WriteString(strconv.Itoa(c.BranchPenalty))
	if c.Branch != nil {
		sb.WriteString(",branch=")
		sb.WriteString(c.Branch.Key())
		if c.Flush != 0 {
			sb.WriteString(",flush=")
			sb.WriteString(strconv.Itoa(c.Flush))
		}
		if c.Redirect != 0 {
			sb.WriteString(",redir=")
			sb.WriteString(strconv.Itoa(c.Redirect))
		}
	}
	return sb.String()
}
