// Package machine defines PlayDoh-like VLIW machine descriptions: issue
// width, functional-unit classes and counts, and operation latencies. The
// paper's experiments use 4-wide and 8-wide configurations; the stock
// descriptions here add 2- and 16-wide points for width sweeps.
//
// Following §3 of the paper, no functional units are added for the new
// operation forms: LdPred behaves like a move and occupies an integer unit
// (its source is the value-predictor table), and the check-prediction form
// of a load occupies a memory unit with the compare folded into the access.
package machine

import (
	"fmt"

	"vliwvp/internal/ir"
)

// Class names a functional-unit class.
type Class uint8

const (
	IALU Class = iota // integer ALUs (also LdPred, Lea, moves)
	MEM               // memory ports (loads, stores, check-prediction loads)
	FPU               // floating-point units
	BR                // branch units (also calls/returns)
	NumClasses
)

func (c Class) String() string {
	switch c {
	case IALU:
		return "IALU"
	case MEM:
		return "MEM"
	case FPU:
		return "FPU"
	case BR:
		return "BR"
	}
	return "?"
}

// Latencies used throughout the paper's worked examples: unit-latency
// integer operations, 3-cycle loads.
const (
	LatInt    = 1
	LatMul    = 3
	LatDiv    = 8
	LatLoad   = 3
	LatStore  = 1
	LatFALU   = 3
	LatFDiv   = 8
	LatBranch = 1
)

// Desc describes one VLIW machine configuration.
type Desc struct {
	Name  string
	Width int // operations per long instruction
	Units [NumClasses]int
}

// ClassOf maps an operation to the functional-unit class it occupies.
func ClassOf(op *ir.Op) Class {
	switch {
	case op.Code.IsMemory():
		return MEM
	case op.Code.IsTerminator() || op.Code == ir.Call:
		return BR
	case op.Code.IsFloat():
		return FPU
	default:
		return IALU // includes LdPred, Lea, moves, compares, Nop
	}
}

// Latency returns the operation's result latency in cycles.
func (d *Desc) Latency(op *ir.Op) int {
	switch op.Code {
	case ir.Load, ir.CheckLd:
		return LatLoad
	case ir.Store:
		return LatStore
	case ir.Mul:
		return LatMul
	case ir.Div, ir.Rem:
		return LatDiv
	case ir.FAdd, ir.FSub, ir.FMul, ir.FNeg, ir.FMov, ir.FMovI,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE,
		ir.I2F, ir.F2I:
		if op.Code == ir.FMov || op.Code == ir.FMovI {
			return LatInt
		}
		return LatFALU
	case ir.FDiv:
		return LatFDiv
	case ir.Br, ir.Jmp, ir.Ret, ir.Call:
		return LatBranch
	default:
		return LatInt
	}
}

// Validate checks that the description is internally consistent.
func (d *Desc) Validate() error {
	if d.Width < 1 {
		return fmt.Errorf("machine %q: width %d < 1", d.Name, d.Width)
	}
	total := 0
	for c := Class(0); c < NumClasses; c++ {
		if d.Units[c] < 1 {
			return fmt.Errorf("machine %q: class %v has no units", d.Name, c)
		}
		total += d.Units[c]
	}
	if total < d.Width {
		// Not fatal in principle, but our stock configs never undersubscribe.
		return fmt.Errorf("machine %q: %d units cannot fill width %d", d.Name, total, d.Width)
	}
	return nil
}

// Stock configurations. Unit mixes follow the usual Trimaran defaults:
// half the width in integer ALUs, a quarter in memory ports, a quarter in
// FP units, plus a branch unit.
var (
	W2  = &Desc{Name: "2-wide", Width: 2, Units: [NumClasses]int{IALU: 1, MEM: 1, FPU: 1, BR: 1}}
	W4  = &Desc{Name: "4-wide", Width: 4, Units: [NumClasses]int{IALU: 2, MEM: 1, FPU: 1, BR: 1}}
	W8  = &Desc{Name: "8-wide", Width: 8, Units: [NumClasses]int{IALU: 4, MEM: 2, FPU: 2, BR: 1}}
	W16 = &Desc{Name: "16-wide", Width: 16, Units: [NumClasses]int{IALU: 8, MEM: 4, FPU: 4, BR: 2}}
)

// Stock lists the built-in configurations in increasing width order.
func Stock() []*Desc { return []*Desc{W2, W4, W8, W16} }

// ByName returns the stock description with the given name, or nil.
func ByName(name string) *Desc {
	for _, d := range Stock() {
		if d.Name == name {
			return d
		}
	}
	return nil
}
