package oracle

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/profile"
	"vliwvp/internal/speculate"
	"vliwvp/internal/workload"
)

// mixedSrc speculates well but mispredicts often — the kind of program
// where a recovery bug in the simulator would surface.
const mixedSrc = `
var a[256]
var out[256]
func main() {
	for var i = 0; i < 256; i = i + 1 {
		if i % 8 < 7 { a[i] = 5 } else { a[i] = (i * 2654435761) % 1000 }
	}
	var s = 0
	for var i = 0; i < 256; i = i + 1 {
		var x = a[i]
		var y = x * 3 + 7
		out[i] = y
		s = s + y
	}
	print(s)
	return s
}`

func TestCheckSourceAgrees(t *testing.T) {
	for _, cfg := range []Config{
		DefaultConfig(machine.W4),
		{D: machine.W4, CCBCapacity: 2},
		{D: machine.W8, SerialRecovery: true, Ctrl: machine.ControlConfig{BranchPenalty: 1}},
		{D: machine.W4, SerialRecovery: true},
	} {
		div, err := CheckSource("mixed", mixedSrc, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if div != nil {
			t.Errorf("unexpected divergence: %v", div)
		}
	}
}

// TestEngineSelection pins Config.Engine: both engines must clear the
// interpreter oracle independently (the decoded engine is the default;
// the legacy stepper stays available as the retained differential
// oracle), and an unknown engine is a harness error, not a divergence.
func TestEngineSelection(t *testing.T) {
	for _, engine := range []string{"", "decoded", "legacy"} {
		for _, cfg := range []Config{
			DefaultConfig(machine.W4),
			{D: machine.W4, SerialRecovery: true, Ctrl: machine.ControlConfig{BranchPenalty: 1}},
		} {
			cfg.Engine = engine
			div, err := CheckSource("mixed", mixedSrc, cfg)
			if err != nil {
				t.Fatalf("engine %q %+v: %v", engine, cfg, err)
			}
			if div != nil {
				t.Errorf("engine %q: unexpected divergence: %v", engine, div)
			}
		}
	}
	cfg := DefaultConfig(machine.W4)
	cfg.Engine = "warp"
	if _, err := CheckSource("mixed", mixedSrc, cfg); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestDiffDetectsAndMinimizes drives the failure path with a doctored
// reference, since the simulator (correctly) agrees with the real one: the
// diff must flag the mismatch, and minimization must shrink the scheme map
// while preserving the divergence.
func TestDiffDetectsAndMinimizes(t *testing.T) {
	cfg := DefaultConfig(machine.W4)
	prog, err := lang.Compile(mixedSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refRun(prog)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	res, err := speculate.Transform(prog, prof, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	schemes := map[int]profile.Scheme{}
	for _, site := range res.Sites {
		schemes[site.ID] = site.Scheme
	}

	kind, _, err := diff(ref, res.Prog, schemes, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "" {
		t.Fatalf("honest diff diverged: %s", kind)
	}

	doctored := &refResult{value: ref.value + 1, output: ref.output, mem: ref.mem}
	kind, detail, err := diff(doctored, res.Prog, schemes, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "value" {
		t.Fatalf("doctored value diff: kind %q (%s), want \"value\"", kind, detail)
	}

	div := &Divergence{
		Repro: Repro{Benchmark: "mixed", Machine: cfg.D.Name, CCBCapacity: effectiveCCB(cfg), Schemes: schemes},
		Kind:  kind,
	}
	minimize(div, doctored, res.Prog, nil, cfg)
	// A wrong return value reproduces under every scheme map, so greedy
	// pruning must strip the map to nothing, and the CCB search must find a
	// capacity below the default that still reproduces the same kind of
	// divergence (without wedging the machine).
	if len(div.Repro.Schemes) != 0 {
		t.Errorf("minimization left %d scheme entries: %v", len(div.Repro.Schemes), div.Repro.Schemes)
	}
	if div.Repro.CCBCapacity >= effectiveCCB(cfg) {
		t.Errorf("minimization reported CCB %d, want below the default %d", div.Repro.CCBCapacity, effectiveCCB(cfg))
	}

	doctoredOut := &refResult{value: ref.value, output: append([]string{"bogus"}, ref.output...), mem: ref.mem}
	if kind, _, _ = diff(doctoredOut, res.Prog, schemes, nil, cfg); kind != "output" {
		t.Errorf("doctored output diff: kind %q, want \"output\"", kind)
	}
	memCopy := append([]uint64(nil), ref.mem...)
	memCopy[len(memCopy)-1]++
	doctoredMem := &refResult{value: ref.value, output: ref.output, mem: memCopy}
	if kind, _, _ = diff(doctoredMem, res.Prog, schemes, nil, cfg); kind != "memory" {
		t.Errorf("doctored memory diff: kind %q, want \"memory\"", kind)
	}
}

// TestCheckGridBenchmarks sweeps real workloads across the standard grid in
// parallel; the simulator must agree everywhere, at any worker count.
func TestCheckGridBenchmarks(t *testing.T) {
	benches := workload.All()
	if testing.Short() {
		benches = benches[:2]
	}
	cells := StandardCells(benches, []*machine.Desc{machine.W4})
	for _, jobs := range []int{1, 8} {
		divs, err := CheckGrid(cells, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, d := range divs {
			if d != nil {
				t.Errorf("jobs=%d cell %s/%s: %v", jobs, cells[i].Bench.Name, cells[i].Label, d)
			}
		}
	}
}

// randomOracleProgram is the oracle's program generator: the same surface
// as core's pipeline property test (predictable and unpredictable loads,
// stores, branches, a helper call) with generator-chosen array mixes so
// scheme maps vary between stride- and FCM-favoring sites.
func randomOracleProgram(rng *rand.Rand) string {
	consts := []string{"3", "5", "7", "11", "13"}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	expr := func(vars []string, depth int) string {
		v := vars[rng.Intn(len(vars))]
		for i := 0; i < 1+rng.Intn(depth+1); i++ {
			v = "(" + v + " " + ops[rng.Intn(len(ops))] + " " + consts[rng.Intn(len(consts))] + ")"
		}
		return v
	}
	vars := []string{"x", "y", "z"}
	loads := []string{
		"steady[i & 63]",      // constant contents: stride- and FCM-friendly
		"ramp[i & 63]",        // strided contents: stride predictable
		"cycle[i & 7]",        // short repeating pattern: FCM-friendly
		"noisy[(x ^ i) & 63]", // data-dependent index: unpredictable
	}
	var body string
	for i := 0; i < 2+rng.Intn(4); i++ {
		target := vars[rng.Intn(len(vars))]
		if rng.Intn(2) == 0 {
			body += fmt.Sprintf("\t\t%s = %s + %s\n", target, loads[rng.Intn(len(loads))], expr(vars, 1))
		} else {
			body += fmt.Sprintf("\t\t%s = %s\n", target, expr(vars, 2))
		}
	}
	body += fmt.Sprintf("\t\tout[i & 63] = %s\n", expr(vars, 1))
	body += fmt.Sprintf("\t\tif (%s) & 3 == 0 { z = z + helper(x & 15) } else { y = y ^ z }\n", expr(vars, 1))

	return fmt.Sprintf(`
var steady[64]
var ramp[64]
var cycle[8]
var noisy[64]
var out[64]
func helper(k) {
	var t = 0
	while k > 0 {
		t = t + k
		k = k - 1
	}
	return t
}
func main() {
	for var i = 0; i < 64; i = i + 1 {
		steady[i] = 42
		ramp[i] = i * 6
		noisy[i] = (i * 2654435761) %% 251
	}
	for var i = 0; i < 8; i = i + 1 { cycle[i] = (i * 37) %% 11 }
	var x = 1
	var y = 2
	var z = 3
	for var i = 0; i < 96; i = i + 1 {
%s	}
	var chk = x + y * 31 + z * 1009
	for var i = 0; i < 64; i = i + 1 { chk = chk ^ (out[i] + i) }
	if chk & 7 == 0 { print(chk) }
	return chk
}`, body)
}

// randomConfig draws the machine-side fuzz dimensions: width, speculation
// threshold, CCB capacity (down to a single entry), and recovery mode.
func randomConfig(rng *rand.Rand) Config {
	stock := machine.Stock()
	cfg := Config{D: stock[rng.Intn(len(stock))]}
	cfg.Spec = speculate.DefaultConfig(cfg.D)
	cfg.Spec.Threshold = []float64{0.50, 0.65, 0.80}[rng.Intn(3)]
	cfg.CCBCapacity = []int{0, 1, 2, 3, 4, 8, 64}[rng.Intn(7)]
	if rng.Intn(2) == 1 {
		cfg.SerialRecovery = true
		cfg.Ctrl.BranchPenalty = rng.Intn(3)
	}
	return cfg
}

func checkSeed(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src := randomOracleProgram(rng)
	cfg := randomConfig(rng)
	div, err := CheckSource(fmt.Sprintf("fuzz-%d", seed), src, cfg)
	if err != nil {
		t.Fatalf("seed %d (%+v): %v\n%s", seed, cfg, err, src)
	}
	if div != nil {
		t.Errorf("seed %d: %v\n%s", seed, div, src)
	}
}

// TestOracleFuzzSweep is the property-based differential sweep: for random
// programs and random machine configurations the simulator must match the
// interpreter exactly. ORACLE_FUZZ_N overrides the seed budget (CI pins it
// for a fixed-cost corpus).
func TestOracleFuzzSweep(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 4
	}
	if s := os.Getenv("ORACLE_FUZZ_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad ORACLE_FUZZ_N %q: %v", s, err)
		}
		n = v
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		checkSeed(t, seed)
	}
}

// FuzzOracleDifferential exposes the same property to `go test -fuzz`, with
// the sweep's first seeds as corpus.
func FuzzOracleDifferential(f *testing.F) {
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkSeed(t, seed)
	})
}
