// Package oracle is the differential-testing harness for the dual-engine
// machine: it runs the full pipeline (profile → speculate → schedule →
// core.Simulator) and the sequential reference interpreter on the same
// program, then compares the final return value, the printed output, and
// the complete memory image. Any mismatch is a simulator or compiler bug by
// definition — the interpreter defines the architecture's semantics.
//
// A reported divergence carries a minimized reproduction: the predictor
// scheme map is greedily pruned to the entries that still reproduce the
// mismatch, and the Compensation Code Buffer capacity is shrunk to the
// smallest size that still diverges. Grid checks fan out across the same
// bounded worker pool (internal/pool) the experiment drivers use.
package oracle

import (
	"fmt"
	"sort"

	"vliwvp/internal/baseline"
	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/pool"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
	"vliwvp/internal/workload"
)

// mgr executes the oracle's pipeline runs. The oracle shares the pass
// spine (internal/pipeline) with the experiment harness but none of the
// harness's caching or preparation plumbing — no cache or key is attached,
// so every check compiles and schedules from scratch and cross-checks what
// internal/exp serves from its cache.
var mgr = pipeline.NewManager()

// Config fixes one differential-check configuration.
type Config struct {
	// D is the machine description (required).
	D *machine.Desc
	// DDG configures dependence-graph construction.
	DDG ddg.Options
	// Spec configures the speculation pass. A zero Threshold selects
	// speculate.DefaultConfig(D).
	Spec speculate.Config
	// CCBCapacity overrides the Compensation Code Buffer size (0 = default).
	CCBCapacity int
	// SerialRecovery checks the serial-recovery baseline machine instead of
	// the dual-engine one (recovery lengths come from baseline.Build).
	SerialRecovery bool
	// Ctrl is the control-speculation configuration (taken-branch cost,
	// flush/redirect latencies, optional dynamic branch predictor). The zero
	// value is the pre-branch-predictor machine.
	Ctrl machine.ControlConfig
	// Engine selects the simulator implementation under test: "" or
	// "decoded" drives the decode-once core.Simulator, "legacy" drives the
	// retained core.LegacySimulator — so the oracle cross-checks BOTH
	// engines against the interpreter, independently of the engine-diff
	// suite that pins them against each other.
	Engine string
	// trialMaxCycles bounds minimization trials: shrinking the CCB under a
	// program compiled for a larger speculative window can wedge the
	// machine, and a wedged trial must abort fast, not run to the
	// simulator's 2^34-cycle runaway limit.
	trialMaxCycles int64
}

// DefaultConfig checks the dual-engine machine at the paper's settings.
func DefaultConfig(d *machine.Desc) Config {
	return Config{D: d, Spec: speculate.DefaultConfig(d)}
}

func (c Config) withDefaults() Config {
	if c.Spec.Threshold == 0 {
		c.Spec = speculate.DefaultConfig(c.D)
	}
	// The Synchronization-bit budget is co-designed to the CCB size: a
	// speculative window larger than the buffer wedges the in-order
	// engines, so the compiler must never create one (mirrors the CCB
	// ablation in internal/exp).
	if c.CCBCapacity > 0 && c.Spec.MaxSyncBits > c.CCBCapacity {
		c.Spec.MaxSyncBits = c.CCBCapacity
	}
	return c
}

// Repro pins down a failing run precisely enough to replay it.
type Repro struct {
	// Benchmark is the program's name (a workload name, or a caller label).
	Benchmark      string
	Machine        string
	SerialRecovery bool
	Ctrl           machine.ControlConfig
	// CCBCapacity is the smallest capacity that still diverges.
	CCBCapacity int
	// SiteIDs lists every prediction site of the transformed program.
	SiteIDs []int
	// Schemes is the minimized scheme map: the non-default (FCM) entries
	// whose presence is necessary to reproduce the divergence. Sites absent
	// from the map fall back to the stride predictor.
	Schemes map[int]profile.Scheme
}

func (r Repro) String() string {
	mode := "dual-engine"
	if r.SerialRecovery {
		mode = fmt.Sprintf("serial(%s)", r.Ctrl.Key())
	}
	return fmt.Sprintf("%s on %s %s ccb=%d sites=%v schemes=%v",
		r.Benchmark, r.Machine, mode, r.CCBCapacity, r.SiteIDs, r.Schemes)
}

// Divergence is one observed disagreement between the simulator and the
// sequential interpreter.
type Divergence struct {
	Repro Repro
	// Kind is "value", "output", "memory", or "sim-error".
	Kind   string
	Detail string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("%s divergence [%s]: %s", d.Kind, d.Repro, d.Detail)
}

// refResult is the interpreter's ground truth for one program.
type refResult struct {
	value  uint64
	output []string
	mem    []uint64
}

func refRun(prog *ir.Program) (*refResult, error) {
	m := interp.New(prog)
	v, err := m.RunMain()
	if err != nil {
		return nil, fmt.Errorf("oracle: reference interp: %w", err)
	}
	return &refResult{value: v, output: m.Output, mem: m.Mem}, nil
}

// scheduleFor runs the oracle's own schedule plan — independent of
// internal/exp's cached preparation — so the oracle cross-checks the
// experiment harness rather than trusting its plumbing.
func scheduleFor(prog *ir.Program, cfg Config) (*sched.ProgSched, error) {
	plan := pipeline.Plan{Name: "oracle-schedule", Passes: []pipeline.Pass{
		pipeline.Schedule{DDG: cfg.DDG},
	}}
	ctx := &pipeline.Ctx{Prog: prog, Machine: cfg.D, Shared: true}
	if err := mgr.Run(plan, ctx); err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	return ctx.Sched, nil
}

// simRun is the architectural outcome of one simulator run, from either
// engine implementation.
type simRun struct {
	value  uint64
	err    error
	output []string
	mem    []uint64
}

// runEngine schedules the transformed program and executes it on the
// configured engine (decoded by default, legacy on request).
func runEngine(prog *ir.Program, schemes map[int]profile.Scheme, recLen map[int]int, cfg Config) (simRun, error) {
	ps, err := scheduleFor(prog, cfg)
	if err != nil {
		return simRun{}, err
	}
	switch cfg.Engine {
	case "", "decoded":
		sim, err := core.NewSimulator(prog, ps, cfg.D, schemes)
		if err != nil {
			return simRun{}, err
		}
		if cfg.CCBCapacity > 0 {
			sim.CCBCapacity = cfg.CCBCapacity
		}
		sim.Control = cfg.Ctrl
		if cfg.SerialRecovery {
			sim.SerialRecovery = true
			sim.RecoveryLen = recLen
		}
		if cfg.trialMaxCycles > 0 {
			sim.MaxCycles = cfg.trialMaxCycles
		}
		v, err := sim.Run("main")
		return simRun{value: v, err: err, output: sim.Output, mem: sim.Memory()}, nil
	case "legacy":
		sim, err := core.NewLegacySimulator(prog, ps, cfg.D, schemes)
		if err != nil {
			return simRun{}, err
		}
		if cfg.CCBCapacity > 0 {
			sim.CCBCapacity = cfg.CCBCapacity
		}
		sim.Control = cfg.Ctrl
		if cfg.SerialRecovery {
			sim.SerialRecovery = true
			sim.RecoveryLen = recLen
		}
		if cfg.trialMaxCycles > 0 {
			sim.MaxCycles = cfg.trialMaxCycles
		}
		v, err := sim.Run("main")
		return simRun{value: v, err: err, output: sim.Output, mem: sim.Memory()}, nil
	default:
		return simRun{}, fmt.Errorf("oracle: unknown engine %q (want \"decoded\" or \"legacy\")", cfg.Engine)
	}
}

// diff runs the simulator once and compares every architectural observable
// against the reference. A simulator execution error is itself a
// divergence (kind "sim-error"), not a check failure: the reference ran.
func diff(ref *refResult, prog *ir.Program, schemes map[int]profile.Scheme, recLen map[int]int, cfg Config) (kind, detail string, err error) {
	run, err := runEngine(prog, schemes, recLen, cfg)
	if err != nil {
		return "", "", err
	}
	if run.err != nil {
		return "sim-error", run.err.Error(), nil
	}
	if run.value != ref.value {
		return "value", fmt.Sprintf("simulator returned %d, interpreter %d", run.value, ref.value), nil
	}
	if len(run.output) != len(ref.output) {
		return "output", fmt.Sprintf("simulator printed %d lines, interpreter %d", len(run.output), len(ref.output)), nil
	}
	for i := range ref.output {
		if run.output[i] != ref.output[i] {
			return "output", fmt.Sprintf("line %d: simulator %q, interpreter %q", i, run.output[i], ref.output[i]), nil
		}
	}
	if len(run.mem) != len(ref.mem) {
		return "memory", fmt.Sprintf("memory size %d != %d", len(run.mem), len(ref.mem)), nil
	}
	for i := range ref.mem {
		if run.mem[i] != ref.mem[i] {
			return "memory", fmt.Sprintf("word %d: simulator %d, interpreter %d", i, run.mem[i], ref.mem[i]), nil
		}
	}
	return "", "", nil
}

// CheckProgram differentially tests one compiled program under cfg. It
// returns nil when simulator and interpreter agree on return value, output,
// and memory image; otherwise a Divergence with a minimized reproduction.
// The input program is not mutated (the speculation pass clones it).
func CheckProgram(name string, prog *ir.Program, cfg Config) (*Divergence, error) {
	cfg = cfg.withDefaults()
	ref, err := refRun(prog)
	if err != nil {
		return nil, err
	}
	plan := pipeline.Plan{Name: "oracle-speculate", Passes: []pipeline.Pass{
		pipeline.Profile{}, pipeline.Speculate{Cfg: cfg.Spec},
	}}
	ctx := &pipeline.Ctx{Prog: prog, Machine: cfg.D, Shared: true}
	if err := mgr.Run(plan, ctx); err != nil {
		return nil, fmt.Errorf("oracle: %s: %w", name, err)
	}
	res, schemes := ctx.Spec, ctx.Schemes
	siteIDs := make([]int, 0, len(res.Sites))
	for _, site := range res.Sites {
		siteIDs = append(siteIDs, site.ID)
	}
	sort.Ints(siteIDs)

	var recLen map[int]int
	if cfg.SerialRecovery {
		bm, err := baseline.Build(res, cfg.D, cfg.DDG, cfg.Ctrl)
		if err != nil {
			return nil, fmt.Errorf("oracle: baseline %s: %w", name, err)
		}
		recLen = map[int]int{}
		for bk, info := range res.Blocks {
			bmB := bm.Blocks[bk]
			for i, sid := range info.SiteIDs {
				if bmB != nil && i < len(bmB.RecoveryLen) {
					recLen[sid] = bmB.RecoveryLen[i]
				}
			}
		}
	}

	kind, detail, err := diff(ref, res.Prog, schemes, recLen, cfg)
	if err != nil {
		return nil, err
	}
	if kind == "" {
		return nil, nil
	}
	div := &Divergence{
		Repro: Repro{
			Benchmark:      name,
			Machine:        cfg.D.Name,
			SerialRecovery: cfg.SerialRecovery,
			Ctrl:           cfg.Ctrl,
			CCBCapacity:    effectiveCCB(cfg),
			SiteIDs:        siteIDs,
			Schemes:        schemes,
		},
		Kind:   kind,
		Detail: detail,
	}
	minimize(div, ref, res.Prog, recLen, cfg)
	return div, nil
}

func effectiveCCB(cfg Config) int {
	if cfg.CCBCapacity > 0 {
		return cfg.CCBCapacity
	}
	return core.DefaultCCBCapacity
}

// minimize shrinks the reproduction in place: first greedily prune scheme
// entries (a pruned site falls back to the stride predictor), then find the
// smallest CCB capacity that still reproduces some divergence. Every trial
// re-runs the simulator; minimization therefore only runs on the rare
// failing path.
func minimize(div *Divergence, ref *refResult, prog *ir.Program, recLen map[int]int, cfg Config) {
	cfg.trialMaxCycles = 1 << 24
	// A trial counts only if it reproduces the SAME kind of divergence: a
	// smaller CCB that merely wedges the machine (sim-error) is a different
	// failure, not a smaller reproduction of this one.
	stillDiverges := func(schemes map[int]profile.Scheme, c Config) bool {
		kind, _, err := diff(ref, prog, schemes, recLen, c)
		return err == nil && kind == div.Kind
	}

	keys := make([]int, 0, len(div.Repro.Schemes))
	for k := range div.Repro.Schemes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	min := div.Repro.Schemes
	for _, k := range keys {
		trial := make(map[int]profile.Scheme, len(min))
		for kk, v := range min {
			if kk != k {
				trial[kk] = v
			}
		}
		if stillDiverges(trial, cfg) {
			min = trial
		}
	}
	div.Repro.Schemes = min

	for _, pt := range []int{1, 2, 4, 8, 16, 32} {
		if pt >= effectiveCCB(cfg) {
			break
		}
		c := cfg
		c.CCBCapacity = pt
		if stillDiverges(min, c) {
			div.Repro.CCBCapacity = pt
			break
		}
	}
}

// CheckSource compiles VL source (unoptimized, so the oracle also covers
// pre-optimizer programs) and differentially tests it.
func CheckSource(name, src string, cfg Config) (*Divergence, error) {
	plan := pipeline.Plan{Name: "oracle-lower", Passes: []pipeline.Pass{pipeline.Lower{}}}
	ctx := &pipeline.Ctx{Source: src}
	if err := mgr.Run(plan, ctx); err != nil {
		return nil, fmt.Errorf("oracle: compile %s: %w", name, err)
	}
	return CheckProgram(name, ctx.Prog, cfg)
}

// CheckBenchmark differentially tests one workload benchmark.
func CheckBenchmark(b *workload.Benchmark, cfg Config) (*Divergence, error) {
	prog, err := b.Compile()
	if err != nil {
		return nil, err
	}
	return CheckProgram(b.Name, prog, cfg)
}

// Cell names one (benchmark, configuration) point of a check grid.
type Cell struct {
	Bench *workload.Benchmark
	Label string
	Cfg   Config
}

// CheckGrid fans every cell across a bounded worker pool (jobs workers) and
// returns the divergences in cell order. The error, if any, is the
// lowest-indexed cell's check failure (a divergence is a result, not an
// error).
func CheckGrid(cells []Cell, jobs int) ([]*Divergence, error) {
	divs := make([]*Divergence, len(cells))
	err := pool.ForEach(jobs, len(cells), func(i int) error {
		d, err := CheckBenchmark(cells[i].Bench, cells[i].Cfg)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", cells[i].Bench.Name, cells[i].Label, err)
		}
		divs[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return divs, nil
}

// StandardCells builds the default check grid over the given benchmarks:
// the dual-engine machine at full and minimal CCB capacity, plus the
// serial-recovery machine, at every given machine width.
func StandardCells(benches []*workload.Benchmark, descs []*machine.Desc) []Cell {
	var cells []Cell
	for _, d := range descs {
		for _, b := range benches {
			cells = append(cells,
				Cell{Bench: b, Label: "dual/" + d.Name, Cfg: DefaultConfig(d)},
				Cell{Bench: b, Label: "dual-ccb4/" + d.Name, Cfg: Config{D: d, CCBCapacity: 4}},
				Cell{Bench: b, Label: "serial/" + d.Name, Cfg: Config{D: d, SerialRecovery: true, Ctrl: machine.DefaultControl()}},
			)
		}
	}
	return cells
}
