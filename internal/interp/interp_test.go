package interp_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/opt"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func TestHooksFireWithDepth(t *testing.T) {
	src := `
var g = 5
func leaf(x) { return x + g }
func main() {
	var s = 0
	for var i = 0; i < 3; i = i + 1 { s = s + leaf(i) }
	return s
}`
	prog := compile(t, src)
	m := interp.New(prog)
	depths := map[string]map[int]bool{}
	m.Hooks.OnBlock = func(f *ir.Func, b *ir.Block, depth int) {
		if depths[f.Name] == nil {
			depths[f.Name] = map[int]bool{}
		}
		depths[f.Name][depth] = true
	}
	loads := 0
	loadDepths := map[int]bool{}
	m.Hooks.OnLoad = func(f *ir.Func, op *ir.Op, addr int, value uint64, depth int) {
		loads++
		loadDepths[depth] = true
		if value != 5 {
			t.Errorf("loaded %d, want 5", value)
		}
	}
	ops := 0
	m.Hooks.OnOp = func(f *ir.Func, op *ir.Op) { ops++ }

	if _, err := m.RunMain(); err != nil {
		t.Fatal(err)
	}
	if !depths["main"][0] {
		t.Error("main must run at depth 0")
	}
	if !depths["leaf"][1] {
		t.Error("leaf must run at depth 1")
	}
	if loads != 3 || !loadDepths[1] {
		t.Errorf("loads = %d at depths %v, want 3 at depth 1", loads, loadDepths)
	}
	if int64(ops) != m.Steps {
		t.Errorf("OnOp fired %d times, Steps = %d", ops, m.Steps)
	}
}

func TestExecOpAllIntOpcodes(t *testing.T) {
	f := ir.NewFunc("t")
	a, b, d := f.NewReg(), f.NewReg(), f.NewReg()
	prog := ir.NewProgram()
	_ = prog.AddFunc(f)
	prog.Link()
	m := interp.New(prog)

	cases := []struct {
		code ir.Opcode
		av   int64
		bv   int64
		want int64
	}{
		{ir.Add, 7, 3, 10}, {ir.Sub, 7, 3, 4}, {ir.Mul, -7, 3, -21},
		{ir.Div, -7, 2, -3}, {ir.Rem, -7, 2, -1},
		{ir.And, 0b1100, 0b1010, 0b1000}, {ir.Or, 0b1100, 0b1010, 0b1110},
		{ir.Xor, 0b1100, 0b1010, 0b0110},
		{ir.Shl, 3, 4, 48}, {ir.Shr, -16, 2, -4},
		{ir.Neg, 9, 0, -9}, {ir.Not, 0, 0, -1},
		{ir.CmpEQ, 4, 4, 1}, {ir.CmpNE, 4, 4, 0},
		{ir.CmpLT, -1, 0, 1}, {ir.CmpLE, 0, 0, 1},
		{ir.CmpGT, 1, 2, 0}, {ir.CmpGE, 2, 2, 1},
	}
	for _, tc := range cases {
		op := f.NewOp(tc.code)
		op.Dest, op.A, op.B = d, a, b
		regs := make([]uint64, f.NumRegs)
		regs[a], regs[b] = uint64(tc.av), uint64(tc.bv)
		if err := m.ExecOp(f, op, regs); err != nil {
			t.Fatalf("%v: %v", tc.code, err)
		}
		if got := int64(regs[d]); got != tc.want {
			t.Errorf("%v(%d, %d) = %d, want %d", tc.code, tc.av, tc.bv, got, tc.want)
		}
	}
}

func TestExecOpAllFloatOpcodes(t *testing.T) {
	f := ir.NewFunc("t")
	a, b, d := f.NewReg(), f.NewReg(), f.NewReg()
	prog := ir.NewProgram()
	_ = prog.AddFunc(f)
	prog.Link()
	m := interp.New(prog)

	fcases := []struct {
		code ir.Opcode
		av   float64
		bv   float64
		want float64
	}{
		{ir.FAdd, 1.5, 2.25, 3.75}, {ir.FSub, 1.5, 2.25, -0.75},
		{ir.FMul, 1.5, 2.0, 3.0}, {ir.FDiv, 3.0, 2.0, 1.5},
		{ir.FNeg, 4.5, 0, -4.5},
	}
	for _, tc := range fcases {
		op := f.NewOp(tc.code)
		op.Dest, op.A, op.B = d, a, b
		regs := make([]uint64, f.NumRegs)
		regs[a], regs[b] = math.Float64bits(tc.av), math.Float64bits(tc.bv)
		if err := m.ExecOp(f, op, regs); err != nil {
			t.Fatalf("%v: %v", tc.code, err)
		}
		if got := math.Float64frombits(regs[d]); got != tc.want {
			t.Errorf("%v(%v, %v) = %v, want %v", tc.code, tc.av, tc.bv, got, tc.want)
		}
	}

	ccases := []struct {
		code ir.Opcode
		av   float64
		bv   float64
		want uint64
	}{
		{ir.FCmpEQ, 1, 1, 1}, {ir.FCmpNE, 1, 1, 0}, {ir.FCmpLT, -1, 0, 1},
		{ir.FCmpLE, 2, 2, 1}, {ir.FCmpGT, 2, 3, 0}, {ir.FCmpGE, 3, 3, 1},
	}
	for _, tc := range ccases {
		op := f.NewOp(tc.code)
		op.Dest, op.A, op.B = d, a, b
		regs := make([]uint64, f.NumRegs)
		regs[a], regs[b] = math.Float64bits(tc.av), math.Float64bits(tc.bv)
		if err := m.ExecOp(f, op, regs); err != nil {
			t.Fatalf("%v: %v", tc.code, err)
		}
		if regs[d] != tc.want {
			t.Errorf("%v(%v, %v) = %d, want %d", tc.code, tc.av, tc.bv, regs[d], tc.want)
		}
	}
}

func TestConversionsRoundTrip(t *testing.T) {
	check := func(v int32) bool {
		f := ir.NewFunc("c")
		a, d := f.NewReg(), f.NewReg()
		prog := ir.NewProgram()
		_ = prog.AddFunc(f)
		prog.Link()
		m := interp.New(prog)

		i2f := f.NewOp(ir.I2F)
		i2f.Dest, i2f.A = d, a
		regs := make([]uint64, f.NumRegs)
		regs[a] = uint64(int64(v))
		if err := m.ExecOp(f, i2f, regs); err != nil {
			return false
		}
		f2i := f.NewOp(ir.F2I)
		f2i.Dest, f2i.A = a, d
		if err := m.ExecOp(f, f2i, regs); err != nil {
			return false
		}
		return int64(regs[a]) == int64(v)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestLdPredRejectedInSequentialCode(t *testing.T) {
	f := ir.NewFunc("bad")
	d := f.NewReg()
	prog := ir.NewProgram()
	_ = prog.AddFunc(f)
	prog.Link()
	m := interp.New(prog)
	op := f.NewOp(ir.LdPred)
	op.Dest = d
	regs := make([]uint64, f.NumRegs)
	if err := m.ExecOp(f, op, regs); err == nil {
		t.Error("LdPred must not execute sequentially")
	}
}

func TestMemoryImageInitialization(t *testing.T) {
	src := `
var a = 7
var b[3]
var c float = 2.5
func main() { return a }`
	prog := compile(t, src)
	m := interp.New(prog)
	ga, gc := prog.Global("a"), prog.Global("c")
	if m.Mem[ga.Addr] != 7 {
		t.Errorf("a initialized to %d, want 7", m.Mem[ga.Addr])
	}
	if math.Float64frombits(m.Mem[gc.Addr]) != 2.5 {
		t.Error("float global c not initialized")
	}
	gb := prog.Global("b")
	for i := 0; i < gb.Size; i++ {
		if m.Mem[gb.Addr+i] != 0 {
			t.Errorf("array element b[%d] not zeroed", i)
		}
	}
}

func TestCheckLdBehavesAsLoadSequentially(t *testing.T) {
	// The interpreter treats CheckLd as a plain load so that transformed
	// programs with speculation stripped still validate.
	f := ir.NewFunc("t")
	a, d := f.NewReg(), f.NewReg()
	prog := ir.NewProgram()
	_ = prog.AddGlobal(&ir.Global{Name: "g", Size: 2, Init: []uint64{0, 99}})
	_ = prog.AddFunc(f)
	prog.Link()
	m := interp.New(prog)
	op := f.NewOp(ir.CheckLd)
	op.Dest, op.A, op.Imm = d, a, 1
	regs := make([]uint64, f.NumRegs)
	regs[a] = uint64(prog.Global("g").Addr)
	if err := m.ExecOp(f, op, regs); err != nil {
		t.Fatal(err)
	}
	if regs[d] != 99 {
		t.Errorf("checkld loaded %d, want 99", regs[d])
	}
}

func TestRunUnknownFunction(t *testing.T) {
	prog := compile(t, `func main() { return 1 }`)
	m := interp.New(prog)
	if _, err := m.Run("nope"); err == nil || !strings.Contains(err.Error(), "no function") {
		t.Errorf("err = %v", err)
	}
	if _, err := m.Run("main", 1, 2); err == nil || !strings.Contains(err.Error(), "takes 0 args") {
		t.Errorf("err = %v", err)
	}
}

func TestStepsCountsEveryOp(t *testing.T) {
	prog := compile(t, `func main() { var x = 1 var y = x + 2 return y }`)
	opt.OptimizeFunc(prog.Func("main")) // drop the unreachable implicit-return block
	m := interp.New(prog)
	if _, err := m.RunMain(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			total += len(b.Ops)
		}
	}
	if m.Steps != int64(total) {
		t.Errorf("Steps = %d, static ops = %d (straight-line program)", m.Steps, total)
	}
}
