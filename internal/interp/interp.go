// Package interp executes IR programs with sequential semantics. It is the
// golden reference model: the optimizer, the speculation pass, and the
// dual-engine simulator are all validated against it. It also drives value
// and frequency profiling via its hooks.
package interp

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"vliwvp/internal/ir"
)

// ErrStepLimit reports that execution exceeded Machine.MaxSteps.
var ErrStepLimit = errors.New("interp: dynamic step limit exceeded")

// DebugStore, when set, observes every memory store (debugging aid).
var DebugStore func(addr int, value uint64)

// Hooks receive events during execution. Any field may be nil.
type Hooks struct {
	// OnBlock fires when control enters a basic block. depth is the call
	// depth (0 for the entry function), letting profilers attribute events
	// to block instances across calls.
	OnBlock func(f *ir.Func, b *ir.Block, depth int)
	// OnLoad fires after each Load/CheckLd with the loaded value.
	OnLoad func(f *ir.Func, op *ir.Op, addr int, value uint64, depth int)
	// OnOp fires after every executed operation.
	OnOp func(f *ir.Func, op *ir.Op)
}

// Machine interprets one program instance: a memory image plus output.
type Machine struct {
	Prog     *ir.Program
	Mem      []uint64
	Output   []string
	Steps    int64
	MaxSteps int64 // 0 means DefaultMaxSteps
	Hooks    Hooks
}

// DefaultMaxSteps bounds runaway programs in tests and profiling runs.
const DefaultMaxSteps = 1 << 30

// New builds a machine with the program's linked memory image.
func New(p *ir.Program) *Machine {
	m := &Machine{Prog: p, Mem: make([]uint64, p.MemWords)}
	for _, g := range p.Globals {
		copy(m.Mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	return m
}

// Reset restores the machine to its initial state — the program's linked
// memory image, empty output, zero step count — so one Machine can serve
// several independent runs (the dual-engine simulator resets its embedded
// machine between reused-Simulator runs).
func (m *Machine) Reset() {
	for i := range m.Mem {
		m.Mem[i] = 0
	}
	for _, g := range m.Prog.Globals {
		copy(m.Mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	m.Output = nil
	m.Steps = 0
}

// Run executes the named function with integer arguments and returns its
// result register value.
func (m *Machine) Run(name string, args ...uint64) (uint64, error) {
	f := m.Prog.Func(name)
	if f == nil {
		return 0, fmt.Errorf("interp: no function %q", name)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: %q takes %d args, got %d", name, len(f.Params), len(args))
	}
	return m.call(f, args, 0)
}

const maxCallDepth = 1000

func (m *Machine) call(f *ir.Func, args []uint64, depth int) (uint64, error) {
	if depth > maxCallDepth {
		return 0, fmt.Errorf("interp: call depth exceeded in %q", f.Name)
	}
	maxSteps := m.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	regs := make([]uint64, f.NumRegs)
	copy(regs, args)

	bi := f.Entry
	for {
		b := f.Blocks[bi]
		if m.Hooks.OnBlock != nil {
			m.Hooks.OnBlock(f, b, depth)
		}
		next := -1
		for _, op := range b.Ops {
			m.Steps++
			if m.Steps > maxSteps {
				return 0, ErrStepLimit
			}
			switch op.Code {
			case ir.Br:
				if regs[op.A] != 0 {
					next = b.Succs[0]
				} else {
					next = b.Succs[1]
				}
			case ir.Jmp:
				next = b.Succs[0]
			case ir.Ret:
				var v uint64
				if op.A != ir.NoReg {
					v = regs[op.A]
				}
				if m.Hooks.OnOp != nil {
					m.Hooks.OnOp(f, op)
				}
				return v, nil
			case ir.Call:
				v, err := m.execCall(f, op, regs, depth)
				if err != nil {
					return 0, err
				}
				if op.Dest != ir.NoReg {
					regs[op.Dest] = v
				}
			default:
				if err := m.execOpAt(f, op, regs, depth); err != nil {
					return 0, fmt.Errorf("%s b%d %s: %w", f.Name, b.ID, op, err)
				}
			}
			if m.Hooks.OnOp != nil {
				m.Hooks.OnOp(f, op)
			}
		}
		if next == -1 {
			if len(b.Succs) != 1 {
				return 0, fmt.Errorf("interp: block b%d of %q fell through without successor", b.ID, f.Name)
			}
			next = b.Succs[0]
		}
		bi = next
	}
}

func (m *Machine) execCall(f *ir.Func, op *ir.Op, regs []uint64, depth int) (uint64, error) {
	switch op.Sym {
	case "print":
		v := int64(regs[op.Args[0]])
		m.Output = append(m.Output, strconv.FormatInt(v, 10))
		return 0, nil
	case "fprint":
		v := math.Float64frombits(regs[op.Args[0]])
		m.Output = append(m.Output, strconv.FormatFloat(v, 'g', -1, 64))
		return 0, nil
	}
	callee := m.Prog.Func(op.Sym)
	if callee == nil {
		return 0, fmt.Errorf("interp: call to unknown %q", op.Sym)
	}
	args := make([]uint64, len(op.Args))
	for i, a := range op.Args {
		args[i] = regs[a]
	}
	return m.call(callee, args, depth+1)
}

// ExecOp executes a single non-control operation against regs and memory.
// It is shared with the dual-engine simulator, which needs identical
// operation semantics on both engines.
func (m *Machine) ExecOp(f *ir.Func, op *ir.Op, regs []uint64) error {
	return m.execOpAt(f, op, regs, 0)
}

func (m *Machine) execOpAt(f *ir.Func, op *ir.Op, regs []uint64, depth int) error {
	ia := func() int64 { return int64(regs[op.A]) }
	ib := func() int64 { return int64(regs[op.B]) }
	fa := func() float64 { return math.Float64frombits(regs[op.A]) }
	fb := func() float64 { return math.Float64frombits(regs[op.B]) }
	setI := func(v int64) { regs[op.Dest] = uint64(v) }
	setF := func(v float64) { regs[op.Dest] = math.Float64bits(v) }
	setB := func(c bool) {
		if c {
			regs[op.Dest] = 1
		} else {
			regs[op.Dest] = 0
		}
	}

	switch op.Code {
	case ir.Nop:
	case ir.MovI:
		setI(op.Imm)
	case ir.Mov:
		regs[op.Dest] = regs[op.A]
	case ir.Add:
		setI(ia() + ib())
	case ir.Sub:
		setI(ia() - ib())
	case ir.Mul:
		setI(ia() * ib())
	case ir.Div:
		if ib() == 0 {
			return errors.New("integer divide by zero")
		}
		setI(ia() / ib())
	case ir.Rem:
		if ib() == 0 {
			return errors.New("integer remainder by zero")
		}
		setI(ia() % ib())
	case ir.And:
		setI(ia() & ib())
	case ir.Or:
		setI(ia() | ib())
	case ir.Xor:
		setI(ia() ^ ib())
	case ir.Shl:
		setI(ia() << (m.shiftAmount(op, regs) & 63))
	case ir.Shr:
		setI(ia() >> (m.shiftAmount(op, regs) & 63))
	case ir.Neg:
		setI(-ia())
	case ir.Not:
		setI(^ia())
	case ir.CmpEQ:
		setB(ia() == ib())
	case ir.CmpNE:
		setB(ia() != ib())
	case ir.CmpLT:
		setB(ia() < ib())
	case ir.CmpLE:
		setB(ia() <= ib())
	case ir.CmpGT:
		setB(ia() > ib())
	case ir.CmpGE:
		setB(ia() >= ib())
	case ir.FMovI:
		setF(op.FImm)
	case ir.FMov:
		regs[op.Dest] = regs[op.A]
	case ir.FAdd:
		setF(fa() + fb())
	case ir.FSub:
		setF(fa() - fb())
	case ir.FMul:
		setF(fa() * fb())
	case ir.FDiv:
		setF(fa() / fb())
	case ir.FNeg:
		setF(-fa())
	case ir.FCmpEQ:
		setB(fa() == fb())
	case ir.FCmpNE:
		setB(fa() != fb())
	case ir.FCmpLT:
		setB(fa() < fb())
	case ir.FCmpLE:
		setB(fa() <= fb())
	case ir.FCmpGT:
		setB(fa() > fb())
	case ir.FCmpGE:
		setB(fa() >= fb())
	case ir.I2F:
		setF(float64(ia()))
	case ir.F2I:
		setI(int64(fa()))
	case ir.Select:
		if regs[op.A] != 0 {
			regs[op.Dest] = regs[op.B]
		} else {
			regs[op.Dest] = regs[op.C]
		}
	case ir.Lea:
		g := m.Prog.Global(op.Sym)
		if g == nil {
			return fmt.Errorf("lea of unknown global %q", op.Sym)
		}
		setI(int64(g.Addr) + op.Imm)
	case ir.Load, ir.CheckLd:
		addr := ia() + op.Imm
		if addr < 1 || addr >= int64(len(m.Mem)) {
			return fmt.Errorf("load address %d out of range [1,%d)", addr, len(m.Mem))
		}
		regs[op.Dest] = m.Mem[addr]
		if m.Hooks.OnLoad != nil {
			m.Hooks.OnLoad(f, op, int(addr), m.Mem[addr], depth)
		}
	case ir.Store:
		addr := ia() + op.Imm
		if addr < 1 || addr >= int64(len(m.Mem)) {
			return fmt.Errorf("store address %d out of range [1,%d)", addr, len(m.Mem))
		}
		m.Mem[addr] = regs[op.B]
		if DebugStore != nil {
			DebugStore(int(addr), regs[op.B])
		}
	case ir.LdPred:
		// LdPred has no sequential meaning; the speculate pass only adds it
		// to scheduled code, never to code the interpreter runs.
		return errors.New("interp: LdPred in sequential code")
	default:
		return fmt.Errorf("unhandled opcode %s", op.Code)
	}
	return nil
}

func (m *Machine) shiftAmount(op *ir.Op, regs []uint64) int64 {
	if op.B == ir.NoReg {
		return op.Imm
	}
	return int64(regs[op.B])
}

// RunMain is a convenience wrapper for the common no-argument entry point.
func (m *Machine) RunMain() (uint64, error) { return m.Run("main") }
