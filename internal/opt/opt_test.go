package opt_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/opt"
)

func compileOpt(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	opt.Optimize(p)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate after opt: %v", err)
	}
	return p
}

func runProg(t *testing.T, p *ir.Program) (uint64, []string) {
	t.Helper()
	m := interp.New(p)
	v, err := m.RunMain()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v, m.Output
}

func countOps(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Ops)
		}
	}
	return n
}

func countCode(p *ir.Program, code ir.Opcode) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Code == code {
					n++
				}
			}
		}
	}
	return n
}

func TestOptimizePreservesResult(t *testing.T) {
	srcs := []string{
		`func main() { return 2 + 3 * 4 }`,
		`func main() { var x = 10 var y = x * 8 return y - x }`,
		`var a[16]
		 func main() {
			for var i = 0; i < 16; i = i + 1 { a[i] = i * 3 }
			var s = 0
			for var i = 0; i < 16; i = i + 1 { s = s + a[i] }
			return s
		 }`,
		`func f(x) { return x * x }
		 func main() { return f(3) + f(4) }`,
		`func main() {
			var x = 1.5
			var y = x * 2.0 + 0.5
			return int(y * 4.0)
		 }`,
	}
	for _, src := range srcs {
		plain, err := lang.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		wantV, wantOut := runProg(t, plain)
		optd := compileOpt(t, src)
		gotV, gotOut := runProg(t, optd)
		if gotV != wantV {
			t.Errorf("optimized result = %d, want %d\nsrc: %s", gotV, wantV, src)
		}
		if len(gotOut) != len(wantOut) {
			t.Errorf("output rows differ: %v vs %v", gotOut, wantOut)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	p := compileOpt(t, `func main() { return 2 + 3 * 4 }`)
	// The whole body should fold to movi 14; ret.
	main := p.Func("main")
	ops := main.Blocks[0].Ops
	if len(ops) != 2 || ops[0].Code != ir.MovI || ops[0].Imm != 14 {
		t.Errorf("body not folded to movi 14: %v", main)
	}
}

func TestCopyPropagationRemovesMoves(t *testing.T) {
	src := `func main() { var x = 5 var y = x var z = y return z }`
	p := compileOpt(t, src)
	if n := countCode(p, ir.Mov); n != 0 {
		t.Errorf("%d mov ops survive copy propagation + DCE:\n%s", n, p.Func("main"))
	}
}

func TestLeaCSE(t *testing.T) {
	src := `
var a[8]
func main() {
	a[0] = 1
	a[1] = 2
	a[2] = 3
	return a[0] + a[1] + a[2]
}`
	plain, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	before := countCode(plain, ir.Lea)
	p := compileOpt(t, src)
	after := countCode(p, ir.Lea)
	if after >= before {
		t.Errorf("lea count %d -> %d, want reduction", before, after)
	}
	if after != 1 {
		t.Errorf("after CSE %d leas remain in main's block, want 1:\n%s", after, p.Func("main"))
	}
}

func TestLoadCSEBlockedByStore(t *testing.T) {
	src := `
var g = 7
func main() {
	var a = g
	g = a + 1
	var b = g  # must reload: store intervenes
	return b
}`
	p := compileOpt(t, src)
	v, _ := runProg(t, p)
	if v != 8 {
		t.Errorf("result = %d, want 8 (load CSE must respect the store)", v)
	}
}

func TestRedundantLoadEliminated(t *testing.T) {
	src := `
var g = 7
func main() {
	var a = g
	var b = g   # same memory version: may reuse
	return a + b
}`
	p := compileOpt(t, src)
	if n := countCode(p, ir.Load); n != 1 {
		t.Errorf("load count = %d, want 1:\n%s", n, p.Func("main"))
	}
	v, _ := runProg(t, p)
	if v != 14 {
		t.Errorf("result = %d, want 14", v)
	}
}

func TestStrengthReduceMulByPow2(t *testing.T) {
	src := `func main(){ var s = 0 for var i = 0; i < 4; i = i + 1 { s = s + i * 8 } return s }`
	p := compileOpt(t, src)
	if n := countCode(p, ir.Mul); n != 0 {
		t.Errorf("mul by 8 not reduced to shift:\n%s", p.Func("main"))
	}
	v, _ := runProg(t, p)
	if v != 48 {
		t.Errorf("result = %d, want 48", v)
	}
}

func TestDeadCodeEliminated(t *testing.T) {
	src := `func main() { var dead = 3 * 7 var live = 2 return live }`
	p := compileOpt(t, src)
	main := p.Func("main")
	total := 0
	for _, b := range main.Blocks {
		total += len(b.Ops)
	}
	if total != 2 { // movi 2; ret
		t.Errorf("dead code survives, %d ops:\n%s", total, main)
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	// Folding 1/0 at compile time would turn a runtime trap into wrong code.
	src := `func main() { var z = 0 return 1 / z }`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(p)
	m := interp.New(p)
	if _, err := m.RunMain(); err == nil {
		t.Error("optimized program no longer traps on divide by zero")
	}
}

func TestOptimizeShrinksRealKernel(t *testing.T) {
	src := `
var data[128]
func main() {
	var h = 0
	for var i = 0; i < 128; i = i + 1 {
		data[i] = (i * 2654435761) % 1009
	}
	for var i = 0; i < 128; i = i + 1 {
		h = (h * 31 + data[i]) % 65536
	}
	return h
}`
	plain, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	wantV, _ := runProg(t, plain)
	before := countOps(plain)

	p := compileOpt(t, src)
	after := countOps(p)
	gotV, _ := runProg(t, p)
	if gotV != wantV {
		t.Fatalf("optimized kernel result %d != %d", gotV, wantV)
	}
	if after >= before {
		t.Errorf("op count %d -> %d, want shrink", before, after)
	}
}

// randomProgram builds a random but well-defined VL source whose output is
// deterministic, used for the equivalence property test.
func randomProgram(rng *rand.Rand) string {
	// A loop mixing arithmetic over a few scalars and one array, with
	// data-dependent branches. All operations are total (no division).
	consts := []string{"3", "5", "7", "11", "13", "17"}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	expr := func(vars []string) string {
		v := vars[rng.Intn(len(vars))]
		for i := 0; i < 1+rng.Intn(3); i++ {
			v = "(" + v + " " + ops[rng.Intn(len(ops))] + " " + consts[rng.Intn(len(consts))] + ")"
		}
		return v
	}
	vars := []string{"x", "y", "z", "i"}
	body := ""
	for i := 0; i < 3+rng.Intn(5); i++ {
		target := vars[rng.Intn(3)]
		body += "\t\t" + target + " = " + expr(vars) + "\n"
	}
	return `
var buf[32]
func main() {
	var x = 1
	var y = 2
	var z = 3
	for var i = 0; i < 32; i = i + 1 {
` + body + `
		buf[i & 31] = x + y
		if (x ^ y) & 1 == 0 { z = z + buf[(i * 7) & 31] } else { z = z - y }
	}
	return x + y * 31 + z * 1009
}`
}

func TestPropertyOptimizePreservesSemantics(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomProgram(rng)
		plain, err := lang.Compile(src)
		if err != nil {
			t.Logf("seed %d: compile failed: %v", seed, err)
			return false
		}
		m1 := interp.New(plain)
		want, err1 := m1.RunMain()

		optd, err := lang.Compile(src)
		if err != nil {
			return false
		}
		opt.Optimize(optd)
		if err := optd.Validate(); err != nil {
			t.Logf("seed %d: invalid after opt: %v", seed, err)
			return false
		}
		m2 := interp.New(optd)
		got, err2 := m2.RunMain()

		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: error behavior differs: %v vs %v", seed, err1, err2)
			return false
		}
		if err1 == nil && got != want {
			t.Logf("seed %d: result %d != %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSelectCSEDistinguishesFalseOperand(t *testing.T) {
	// Two Selects agreeing on condition and true-value but differing in
	// false-value must NOT be unified — the CSE key includes the third
	// operand. Build directly in IR (the front end never emits Select).
	f := ir.NewFunc("sel")
	cond, tv, f1, f2 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	d1, d2 := f.NewReg(), f.NewReg()
	b := f.Blocks[0]
	mk := func(code ir.Opcode, dest ir.Reg, imm int64) *ir.Op {
		op := f.NewOp(code)
		op.Dest, op.Imm = dest, imm
		b.Ops = append(b.Ops, op)
		return op
	}
	mk(ir.MovI, cond, 0) // condition false: selects take the C operand
	mk(ir.MovI, tv, 10)
	mk(ir.MovI, f1, 20)
	mk(ir.MovI, f2, 30)
	s1 := f.NewOp(ir.Select)
	s1.Dest, s1.A, s1.B, s1.C = d1, cond, tv, f1
	s2 := f.NewOp(ir.Select)
	s2.Dest, s2.A, s2.B, s2.C = d2, cond, tv, f2
	sum := f.NewOp(ir.Add)
	sum.Dest, sum.A, sum.B = f.NewReg(), d1, d2
	ret := f.NewOp(ir.Ret)
	ret.A = sum.Dest
	b.Ops = append(b.Ops, s1, s2, sum, ret)

	p := ir.NewProgram()
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	p.Link()

	// Reference result before optimization.
	m := interp.New(p)
	want, err := m.Run("sel")
	if err != nil {
		t.Fatal(err)
	}
	if want != 50 { // 20 + 30
		t.Fatalf("reference = %d, want 50", want)
	}
	opt.Optimize(p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m2 := interp.New(p)
	got, err := m2.Run("sel")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("optimized = %d, want %d (Select CSE merged distinct C operands?)", got, want)
	}
}

func TestSelectConstantConditionFolds(t *testing.T) {
	f := ir.NewFunc("selc")
	cond, tv, fv, d := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b := f.Blocks[0]
	c := f.NewOp(ir.MovI)
	c.Dest, c.Imm = cond, 1
	tvo := f.NewOp(ir.MovI)
	tvo.Dest, tvo.Imm = tv, 111
	fvo := f.NewOp(ir.MovI)
	fvo.Dest, fvo.Imm = fv, 222
	sel := f.NewOp(ir.Select)
	sel.Dest, sel.A, sel.B, sel.C = d, cond, tv, fv
	ret := f.NewOp(ir.Ret)
	ret.A = d
	b.Ops = append(b.Ops, c, tvo, fvo, sel, ret)

	p := ir.NewProgram()
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	p.Link()
	opt.Optimize(p)
	// The whole chain must fold to movi 111; ret.
	ops := p.Func("selc").Blocks[0].Ops
	if len(ops) != 2 || ops[0].Code != ir.MovI || ops[0].Imm != 111 {
		t.Errorf("constant-condition select not folded:\n%s", p.Func("selc"))
	}
}
