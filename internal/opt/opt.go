// Package opt implements the block-local optimizations that run before
// scheduling: constant propagation and folding, copy propagation, local
// common-subexpression elimination (including redundant Lea and Load
// elimination with memory versioning), simple strength reduction, and a
// liveness-driven dead-code elimination.
//
// The paper's blocks were "optimized to the highest level" by Trimaran
// before value profiling; this package plays that role so the scheduled
// blocks have realistic dependence structure rather than the front end's
// temp-heavy output.
package opt

import (
	"math"

	"vliwvp/internal/ddg"
	"vliwvp/internal/ir"
)

// Optimize runs the pass pipeline on every function until it reaches a
// fixpoint (bounded by a few iterations). It mutates the program in place.
func Optimize(p *ir.Program) {
	for _, f := range p.Funcs {
		OptimizeFunc(f)
	}
}

// MaxPasses bounds the local-opt fixpoint iteration.
const MaxPasses = 4

// OptimizeFunc optimizes a single function in place.
func OptimizeFunc(f *ir.Func) {
	removeUnreachable(f)
	for i := 0; i < MaxPasses; i++ {
		changed := false
		for _, b := range f.Blocks {
			changed = localOptimize(f, b) || changed
		}
		changed = eliminateDeadCode(f) || changed
		if !changed {
			return
		}
	}
}

// removeUnreachable drops blocks not reachable from the entry and renumbers
// the survivors. Unreachable blocks (dead paths after return/break lowering)
// would otherwise pollute static schedule statistics.
func removeUnreachable(f *ir.Func) {
	reachable := make([]bool, len(f.Blocks))
	stack := []int{f.Entry}
	reachable[f.Entry] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[i].Succs {
			if !reachable[s] {
				reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	all := true
	for _, r := range reachable {
		all = all && r
	}
	if all {
		return
	}
	newID := make([]int, len(f.Blocks))
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if !reachable[i] {
			newID[i] = -1
			continue
		}
		newID[i] = len(kept)
		kept = append(kept, b)
	}
	for _, b := range kept {
		b.ID = newID[b.ID]
		for j, s := range b.Succs {
			b.Succs[j] = newID[s]
		}
	}
	f.Blocks = kept
	f.Entry = newID[f.Entry]
	f.RecomputePreds()
}

// constVal is a known register value within a block.
type constVal struct {
	bits    uint64
	isFloat bool
}

// exprKey identifies a pure computation for CSE.
type exprKey struct {
	code       ir.Opcode
	a, b, c    ir.Reg
	imm        int64
	fimm       uint64
	sym        string
	memVersion int // loads only: invalidated by stores/calls
}

// localOptimize runs constant/copy propagation, folding, strength reduction,
// and CSE over one block in a single forward scan. Returns whether anything
// changed.
func localOptimize(f *ir.Func, b *ir.Block) bool {
	changed := false
	consts := map[ir.Reg]constVal{}
	copies := map[ir.Reg]ir.Reg{} // dst -> original source
	avail := map[exprKey]ir.Reg{} // expression -> register holding it
	availKeysByReg := map[ir.Reg][]exprKey{}
	memVersion := 0

	invalidateReg := func(r ir.Reg) {
		delete(consts, r)
		delete(copies, r)
		for dst, src := range copies {
			if src == r {
				delete(copies, dst)
			}
		}
		for _, k := range availKeysByReg[r] {
			delete(avail, k)
		}
		delete(availKeysByReg, r)
	}
	recordExpr := func(k exprKey, dest ir.Reg) {
		avail[k] = dest
		availKeysByReg[dest] = append(availKeysByReg[dest], k)
		if k.a != ir.NoReg {
			availKeysByReg[k.a] = append(availKeysByReg[k.a], k)
		}
		if k.b != ir.NoReg && k.b != k.a {
			availKeysByReg[k.b] = append(availKeysByReg[k.b], k)
		}
		if k.c != ir.NoReg && k.c != k.a && k.c != k.b {
			availKeysByReg[k.c] = append(availKeysByReg[k.c], k)
		}
	}
	resolve := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return r
		}
		if src, ok := copies[r]; ok {
			return src
		}
		return r
	}

	for _, op := range b.Ops {
		// Rewrite sources through the copy map.
		if na := resolve(op.A); na != op.A {
			op.A, changed = na, true
		}
		if nb := resolve(op.B); nb != op.B {
			op.B, changed = nb, true
		}
		if nc := resolve(op.C); nc != op.C {
			op.C, changed = nc, true
		}
		for i, a := range op.Args {
			if na := resolve(a); na != a {
				op.Args[i], changed = na, true
			}
		}

		// Constant folding.
		if folded := foldOp(op, consts); folded {
			changed = true
		}
		// Strength reduction after folding (operands may now be constant).
		if reduced := reduceOp(op, consts); reduced {
			changed = true
		}

		// CSE for pure ops (loads participate via the memory version).
		if op.Code.IsPure() && op.Dest != ir.NoReg {
			k := exprKey{code: op.Code, a: op.A, b: op.B, c: op.C, imm: op.Imm,
				fimm: math.Float64bits(op.FImm), sym: op.Sym}
			if op.Code == ir.Load {
				k.memVersion = memVersion
			}
			if prev, ok := avail[k]; ok && prev != op.Dest {
				// Replace the computation with a copy from the prior result.
				op.Code = ir.Mov
				op.A, op.B, op.C = prev, ir.NoReg, ir.NoReg
				op.Imm, op.FImm, op.Sym = 0, 0, ""
				changed = true
			}
			// New expressions are recorded below, after the destination's
			// old value information is invalidated.
		}

		// Track effects.
		switch {
		case op.Code == ir.Store || op.Code == ir.Call:
			memVersion++
		}
		if d := op.Def(); d != ir.NoReg {
			invalidateReg(d)
			switch op.Code {
			case ir.MovI:
				consts[d] = constVal{bits: uint64(op.Imm)}
			case ir.FMovI:
				consts[d] = constVal{bits: math.Float64bits(op.FImm), isFloat: true}
			case ir.Mov, ir.FMov:
				if op.A != d {
					copies[d] = op.A
					if c, ok := consts[op.A]; ok {
						consts[d] = c
					}
				}
			}
			if op.Code.IsPure() {
				k := exprKey{code: op.Code, a: op.A, b: op.B, c: op.C, imm: op.Imm,
					fimm: math.Float64bits(op.FImm), sym: op.Sym}
				if op.Code == ir.Load {
					k.memVersion = memVersion
				}
				// Self-referencing defs (d == a source) are not reusable.
				if op.A != d && op.B != d && op.C != d {
					recordExpr(k, d)
				}
			}
		}
	}
	return changed
}

// foldOp rewrites op into MovI/FMovI when its inputs are known constants.
// Returns whether it changed the op.
func foldOp(op *ir.Op, consts map[ir.Reg]constVal) bool {
	ca, okA := lookupConst(consts, op.A)
	cb, okB := lookupConst(consts, op.B)

	setI := func(v int64) bool {
		op.Code = ir.MovI
		op.A, op.B = ir.NoReg, ir.NoReg
		op.Imm, op.FImm, op.Sym = v, 0, ""
		return true
	}
	setF := func(v float64) bool {
		op.Code = ir.FMovI
		op.A, op.B = ir.NoReg, ir.NoReg
		op.Imm, op.Sym = 0, ""
		op.FImm = v
		return true
	}

	switch op.Code {
	case ir.Select:
		if okA {
			src := op.B
			if int64(ca.bits) == 0 {
				src = op.C
			}
			op.Code = ir.Mov
			op.A, op.B, op.C = src, ir.NoReg, ir.NoReg
			return true
		}
	case ir.Mov:
		if okA {
			return setI(int64(ca.bits))
		}
	case ir.FMov:
		if okA {
			return setF(math.Float64frombits(ca.bits))
		}
	case ir.Neg:
		if okA {
			return setI(-int64(ca.bits))
		}
	case ir.Not:
		if okA {
			return setI(^int64(ca.bits))
		}
	case ir.FNeg:
		if okA {
			return setF(-math.Float64frombits(ca.bits))
		}
	case ir.I2F:
		if okA {
			return setF(float64(int64(ca.bits)))
		}
	case ir.F2I:
		if okA {
			return setI(int64(math.Float64frombits(ca.bits)))
		}
	case ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE:
		if okA && okB {
			return setI(foldInt(op.Code, int64(ca.bits), int64(cb.bits)))
		}
	case ir.Div:
		if okA && okB && int64(cb.bits) != 0 {
			return setI(int64(ca.bits) / int64(cb.bits))
		}
	case ir.Rem:
		if okA && okB && int64(cb.bits) != 0 {
			return setI(int64(ca.bits) % int64(cb.bits))
		}
	case ir.Shl:
		if okA && (op.B == ir.NoReg || okB) {
			amt := op.Imm
			if op.B != ir.NoReg {
				amt = int64(cb.bits)
			}
			return setI(int64(ca.bits) << (uint64(amt) & 63))
		}
	case ir.Shr:
		if okA && (op.B == ir.NoReg || okB) {
			amt := op.Imm
			if op.B != ir.NoReg {
				amt = int64(cb.bits)
			}
			return setI(int64(ca.bits) >> (uint64(amt) & 63))
		}
	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		if okA && okB {
			fa, fb := math.Float64frombits(ca.bits), math.Float64frombits(cb.bits)
			switch op.Code {
			case ir.FAdd:
				return setF(fa + fb)
			case ir.FSub:
				return setF(fa - fb)
			case ir.FMul:
				return setF(fa * fb)
			case ir.FDiv:
				return setF(fa / fb)
			default:
				return setI(foldFCmp(op.Code, fa, fb))
			}
		}
	}
	return false
}

func lookupConst(consts map[ir.Reg]constVal, r ir.Reg) (constVal, bool) {
	if r == ir.NoReg {
		return constVal{}, false
	}
	c, ok := consts[r]
	return c, ok
}

func foldInt(code ir.Opcode, a, b int64) int64 {
	switch code {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.CmpEQ:
		return b2i(a == b)
	case ir.CmpNE:
		return b2i(a != b)
	case ir.CmpLT:
		return b2i(a < b)
	case ir.CmpLE:
		return b2i(a <= b)
	case ir.CmpGT:
		return b2i(a > b)
	case ir.CmpGE:
		return b2i(a >= b)
	}
	return 0
}

func foldFCmp(code ir.Opcode, a, b float64) int64 {
	switch code {
	case ir.FCmpEQ:
		return b2i(a == b)
	case ir.FCmpNE:
		return b2i(a != b)
	case ir.FCmpLT:
		return b2i(a < b)
	case ir.FCmpLE:
		return b2i(a <= b)
	case ir.FCmpGT:
		return b2i(a > b)
	case ir.FCmpGE:
		return b2i(a >= b)
	}
	return 0
}

func b2i(c bool) int64 {
	if c {
		return 1
	}
	return 0
}

// reduceOp strength-reduces expensive operations with one constant operand:
// multiply by a power of two becomes a shift; shifts by constant amounts
// move the amount into the immediate field; x+0, x*1, x*0 simplify.
func reduceOp(op *ir.Op, consts map[ir.Reg]constVal) bool {
	ca, okA := lookupConst(consts, op.A)
	cb, okB := lookupConst(consts, op.B)
	switch op.Code {
	case ir.Mul:
		if okB {
			if n := int64(cb.bits); n > 0 && n&(n-1) == 0 {
				op.Code = ir.Shl
				op.B = ir.NoReg
				op.Imm = log2(n)
				return true
			}
		}
		if okA {
			if n := int64(ca.bits); n > 0 && n&(n-1) == 0 {
				op.Code = ir.Shl
				op.A = op.B
				op.B = ir.NoReg
				op.Imm = log2(n)
				return true
			}
		}
	case ir.Add:
		if okB && int64(cb.bits) == 0 {
			op.Code, op.B = ir.Mov, ir.NoReg
			return true
		}
		if okA && int64(ca.bits) == 0 {
			op.Code, op.A, op.B = ir.Mov, op.B, ir.NoReg
			return true
		}
	case ir.Sub:
		if okB && int64(cb.bits) == 0 {
			op.Code, op.B = ir.Mov, ir.NoReg
			return true
		}
	case ir.Shl, ir.Shr:
		if op.B != ir.NoReg && okB {
			op.Imm = int64(cb.bits)
			op.B = ir.NoReg
			return true
		}
	}
	return false
}

func log2(n int64) int64 {
	var k int64
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// eliminateDeadCode removes pure operations whose results are never used,
// using global liveness. Returns whether anything was removed.
func eliminateDeadCode(f *ir.Func) bool {
	lv := ddg.ComputeLiveness(f)
	changed := false
	for _, b := range f.Blocks {
		live := map[ir.Reg]bool{}
		for r := range lv.Out[b.ID] {
			live[r] = true
		}
		kept := make([]*ir.Op, 0, len(b.Ops))
		for i := len(b.Ops) - 1; i >= 0; i-- {
			op := b.Ops[i]
			d := op.Def()
			if op.Code.IsPure() && d != ir.NoReg && !live[d] {
				changed = true
				continue // drop dead op
			}
			kept = append(kept, op)
			if d != ir.NoReg {
				delete(live, d)
			}
			for _, u := range op.Uses() {
				live[u] = true
			}
		}
		// kept is reversed.
		for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
			kept[i], kept[j] = kept[j], kept[i]
		}
		b.Ops = kept
	}
	return changed
}
