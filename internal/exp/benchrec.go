package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/machine"
	"vliwvp/internal/predict"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
	"vliwvp/internal/workload"
)

// BenchSchema identifies the perf-record format version; cmd/benchdiff
// refuses to compare records with mismatched schemas.
const BenchSchema = "vliwvp-bench/v1"

// BenchEntry is one pinned benchmark's measurement. Cycles (simulated) and
// AllocsPerOp are deterministic for a given Go release, so CI gates on
// them; WallNS is hardware-dependent and is compared only when explicitly
// asked.
type BenchEntry struct {
	Name        string `json:"name"`
	Cycles      int64  `json:"cycles,omitempty"`
	WallNS      int64  `json:"wall_ns"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// BenchRecord is the machine-readable perf trajectory artifact
// (BENCH_*.json): the pinned micro+experiment benchmark grid under one
// machine description.
type BenchRecord struct {
	Schema    string       `json:"schema"`
	GoVersion string       `json:"go_version"`
	Machine   string       `json:"machine"`
	Count     int          `json:"count"`
	Entries   []BenchEntry `json:"entries"`
}

// WriteJSON renders the record.
func (r *BenchRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchRecord parses a perf record and checks its schema.
func ReadBenchRecord(rd io.Reader) (*BenchRecord, error) {
	var rec BenchRecord
	if err := json.NewDecoder(rd).Decode(&rec); err != nil {
		return nil, err
	}
	if rec.Schema != BenchSchema {
		return nil, fmt.Errorf("unsupported bench schema %q (want %q)", rec.Schema, BenchSchema)
	}
	return &rec, nil
}

// Entry returns the named entry, or nil.
func (r *BenchRecord) Entry(name string) *BenchEntry {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			return &r.Entries[i]
		}
	}
	return nil
}

// measure runs f count times and keeps the best (minimum) wall time and
// per-run allocation figures — min is the standard noise-robust statistic
// for a deterministic workload. Allocation counts come from MemStats
// deltas, so measured sections must not run concurrent allocators.
func measure(count int, f func() error) (BenchEntry, error) {
	if count < 1 {
		count = 1
	}
	var e BenchEntry
	var ms runtime.MemStats
	for i := 0; i < count; i++ {
		runtime.ReadMemStats(&ms)
		m0, b0 := ms.Mallocs, ms.TotalAlloc
		t0 := time.Now()
		if err := f(); err != nil {
			return e, err
		}
		wall := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&ms)
		allocs, bytes := int64(ms.Mallocs-m0), int64(ms.TotalAlloc-b0)
		if i == 0 || wall < e.WallNS {
			e.WallNS = wall
		}
		if i == 0 || allocs < e.AllocsPerOp {
			e.AllocsPerOp = allocs
		}
		if i == 0 || bytes < e.BytesPerOp {
			e.BytesPerOp = bytes
		}
	}
	return e, nil
}

// paperTiming builds the dual-engine timing model over the paper's worked
// example block (the BenchmarkTimingModel setup).
func paperTiming(d *machine.Desc) (*core.Timing, *sched.BlockSched, *core.BlockAnalysis, error) {
	prog, f, err := core.PaperExample()
	if err != nil {
		return nil, nil, nil, err
	}
	l4, l7 := core.PaperExampleLoadIDs(f)
	prof := &profile.Profile{
		Loads: map[profile.LoadKey]*profile.LoadProfile{
			{Func: "example", OpID: l4}: {Count: 1000, StrideRate: 0.9},
			{Func: "example", OpID: l7}: {Count: 1000, StrideRate: 0.9},
		},
		BlockFreq: map[profile.BlockKey]int64{{Func: "example", Block: 0}: 1000},
	}
	cfg := speculate.DefaultConfig(d)
	cfg.CriticalOnly = false
	res, err := speculate.Transform(prog, prof, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	blk := res.Prog.Func("example").Blocks[0]
	g := speculate.BuildGraph(blk, d, ddg.Options{})
	bs := sched.ScheduleBlock(blk, g, d)
	an, err := core.Analyze(blk)
	if err != nil {
		return nil, nil, nil, err
	}
	return core.NewTiming(d), bs, an, nil
}

// benchSims is the pinned end-to-end simulation subset: small enough for a
// -count=5 CI run, varied enough to cover predictor-friendly (compress),
// pointer-chasing (li) and state-machine (m88ksim) behavior.
var benchSims = []string{"compress", "li", "m88ksim"}

// RunBenchGrid measures the pinned micro+experiment benchmark grid count
// times each and returns the perf record. log, when non-nil, receives one
// progress line per entry.
func RunBenchGrid(d *machine.Desc, count int, log io.Writer) (*BenchRecord, error) {
	rec := &BenchRecord{
		Schema:    BenchSchema,
		GoVersion: runtime.Version(),
		Machine:   d.Name,
		Count:     count,
	}
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	add := func(name string, cycles int64, f func() error) error {
		e, err := measure(count, f)
		if err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		e.Name, e.Cycles = name, cycles
		rec.Entries = append(rec.Entries, e)
		logf("bench %-22s %12d ns  %9d allocs  %12d cycles\n",
			name, e.WallNS, e.AllocsPerOp, e.Cycles)
		return nil
	}

	// End-to-end dual-engine simulations (speculative machine, live
	// predictors). The simulator is built once outside the measured
	// section — the entry times simulation, not compilation — and cycles
	// are recorded from the deterministic run.
	r := NewRunner(d)
	for _, name := range benchSims {
		w := workload.ByName(name)
		if w == nil {
			return nil, fmt.Errorf("bench: unknown workload %q", name)
		}
		sim, err := r.SpecSim(w)
		if err != nil {
			return nil, err
		}
		var cycles int64
		warm := func() error {
			if _, err := sim.Run("main"); err != nil {
				return err
			}
			cycles = sim.Cycles
			return nil
		}
		if err := warm(); err != nil {
			return nil, fmt.Errorf("bench sim/%s: %w", name, err)
		}
		if err := add("sim/"+name, cycles, warm); err != nil {
			return nil, err
		}
	}

	// Generated-corpus row: a pinned progen slice through the same
	// dual-engine pipeline, so the perf trajectory also tracks the
	// synthetic workloads the conformance suite exercises.
	gen := workload.Generated(1, 4)
	genSims := make([]*core.Simulator, len(gen))
	for i, w := range gen {
		sim, err := r.SpecSim(w)
		if err != nil {
			return nil, fmt.Errorf("bench sim/gen-corpus (%s): %w", w.Name, err)
		}
		genSims[i] = sim
	}
	var genCycles int64
	runGen := func() error {
		genCycles = 0
		for i, sim := range genSims {
			if _, err := sim.Run("main"); err != nil {
				return fmt.Errorf("%s: %w", gen[i].Name, err)
			}
			genCycles += sim.Cycles
		}
		return nil
	}
	if err := runGen(); err != nil {
		return nil, fmt.Errorf("bench sim/gen-corpus: %w", err)
	}
	if err := add("sim/gen-corpus", genCycles, runGen); err != nil {
		return nil, err
	}

	// Engine-comparison rows: the pinned simulation subset run back-to-back
	// through the decoded batched engine and through the retained legacy
	// stepper over identical compile products. cmd/benchdiff gates the
	// decoded row's allocation count (steady-state pooling must hold at
	// zero) and the wall-clock ratio between the two rows.
	gridItems := make([]core.BatchItem, 0, len(benchSims))
	gridLegacy := make([]*core.LegacySimulator, 0, len(benchSims))
	for _, name := range benchSims {
		si, err := r.specImageFor(workload.ByName(name))
		if err != nil {
			return nil, fmt.Errorf("bench sim/decoded-grid (%s): %w", name, err)
		}
		gridItems = append(gridItems, core.BatchItem{Name: name, Img: si.Img, Schemes: si.Schemes})
		leg, err := core.NewLegacySimulator(si.Img.Prog, si.Img.Sched, d, si.Schemes)
		if err != nil {
			return nil, fmt.Errorf("bench sim/legacy-grid (%s): %w", name, err)
		}
		gridLegacy = append(gridLegacy, leg)
	}
	batch := core.NewBatch()
	gridResults := make([]core.BatchResult, 0, len(gridItems))
	var decodedCycles int64
	runDecoded := func() error {
		decodedCycles = 0
		gridResults = batch.RunAllInto(gridResults[:0], gridItems)
		for i := range gridResults {
			if gridResults[i].Err != nil {
				return fmt.Errorf("%s: %w", gridResults[i].Name, gridResults[i].Err)
			}
			decodedCycles += gridResults[i].Cycles
		}
		return nil
	}
	// One warm pass primes the simulator pools and predictor tables so the
	// measured runs see the steady state the allocation gate pins.
	if err := runDecoded(); err != nil {
		return nil, fmt.Errorf("bench sim/decoded-grid: %w", err)
	}
	if err := add("sim/decoded-grid", decodedCycles, runDecoded); err != nil {
		return nil, err
	}
	var legacyCycles int64
	runLegacy := func() error {
		legacyCycles = 0
		for i, sim := range gridLegacy {
			if _, err := sim.Run("main"); err != nil {
				return fmt.Errorf("%s: %w", benchSims[i], err)
			}
			legacyCycles += sim.Cycles
		}
		return nil
	}
	if err := runLegacy(); err != nil {
		return nil, fmt.Errorf("bench sim/legacy-grid: %w", err)
	}
	if err := add("sim/legacy-grid", legacyCycles, runLegacy); err != nil {
		return nil, err
	}
	if decodedCycles != legacyCycles {
		return nil, fmt.Errorf("bench: engine divergence: decoded grid %d cycles != legacy grid %d",
			decodedCycles, legacyCycles)
	}

	// Cached-grid row: the same batch and compile products with the
	// L1+prefetcher hierarchy bound per item. The allocation gate holds
	// here too — tag arrays and prefetcher streams are pooled with the
	// simulator — and the architectural results must match the flat grid
	// exactly (the hierarchy is timing-only).
	cachedItems := make([]core.BatchItem, len(gridItems))
	for i, it := range gridItems {
		it.Mem = machine.MemL1PF
		cachedItems[i] = it
	}
	var cachedCycles int64
	runCached := func() error {
		cachedCycles = 0
		gridResults = batch.RunAllInto(gridResults[:0], cachedItems)
		for i := range gridResults {
			if gridResults[i].Err != nil {
				return fmt.Errorf("%s: %w", gridResults[i].Name, gridResults[i].Err)
			}
			cachedCycles += gridResults[i].Cycles
		}
		return nil
	}
	if err := runCached(); err != nil {
		return nil, fmt.Errorf("bench sim/cached-grid: %w", err)
	}
	if err := add("sim/cached-grid", cachedCycles, runCached); err != nil {
		return nil, err
	}
	if cachedCycles <= decodedCycles {
		return nil, fmt.Errorf("bench: cached grid %d cycles not above flat grid %d: the hierarchy charged nothing",
			cachedCycles, decodedCycles)
	}

	// Branch-grid row: the same batch with a TAGE direction predictor
	// bound per item, so the perf trajectory tracks the control-speculation
	// path — prediction, redirect accounting, and mispredict flushes. The
	// allocation gate holds here too (the predictor is pooled and reset in
	// place), and the flat rows above are unaffected: a zero ControlConfig
	// reproduces the pre-branch machine exactly.
	branchCfg, err := predict.ParseBranch("tage")
	if err != nil {
		return nil, err
	}
	branchItems := make([]core.BatchItem, len(gridItems))
	for i, it := range gridItems {
		it.Ctrl = machine.ControlConfig{Branch: branchCfg}
		branchItems[i] = it
	}
	var branchCycles int64
	runBranch := func() error {
		branchCycles = 0
		gridResults = batch.RunAllInto(gridResults[:0], branchItems)
		for i := range gridResults {
			if gridResults[i].Err != nil {
				return fmt.Errorf("%s: %w", gridResults[i].Name, gridResults[i].Err)
			}
			branchCycles += gridResults[i].Cycles
		}
		return nil
	}
	if err := runBranch(); err != nil {
		return nil, fmt.Errorf("bench sim/branch-grid: %w", err)
	}
	if err := add("sim/branch-grid", branchCycles, runBranch); err != nil {
		return nil, err
	}
	if branchCycles <= decodedCycles {
		return nil, fmt.Errorf("bench: branch grid %d cycles not above flat grid %d: control speculation charged nothing",
			branchCycles, decodedCycles)
	}

	// Pipeline component micro-benchmarks.
	vortex, err := workload.Vortex.Compile()
	if err != nil {
		return nil, err
	}
	if err := add("compile/vortex", 0, func() error {
		_, err := workload.Vortex.Compile()
		return err
	}); err != nil {
		return nil, err
	}
	if err := add("profile/m88ksim", 0, func() error {
		prog, err := workload.M88ksim.Compile()
		if err != nil {
			return err
		}
		_, err = profile.Collect(prog, "main")
		return err
	}); err != nil {
		return nil, err
	}
	if err := add("schedule/vortex", 0, func() error {
		for _, f := range vortex.Funcs {
			for _, blk := range f.Blocks {
				g := ddg.Build(blk, d.Latency, ddg.Options{})
				sched.ScheduleBlock(blk, g, d)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	vortexProf, err := profile.Collect(vortex, "main")
	if err != nil {
		return nil, err
	}
	specCfg := speculate.DefaultConfig(d)
	if err := add("speculate/vortex", 0, func() error {
		_, err := speculate.Transform(vortex, vortexProf, specCfg)
		return err
	}); err != nil {
		return nil, err
	}
	tm, bs, an, err := paperTiming(d)
	if err != nil {
		return nil, err
	}
	var mask uint32
	if err := add("timing/example", 0, func() error {
		for i := 0; i < 1024; i++ {
			if _, err := tm.SimulateBlock(bs, an, mask&3); err != nil {
				return err
			}
			mask++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := add("predict/stride", 0, func() error {
		p := predict.NewStride()
		for i := 0; i < 1<<16; i++ {
			p.Predict()
			p.Update(uint64(i * 8))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := add("predict/fcm", 0, func() error {
		p := predict.NewFCM(predict.DefaultFCMOrder, predict.DefaultFCMTableBits)
		for i := 0; i < 1<<16; i++ {
			p.Predict()
			p.Update(uint64(i % 17))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rec, nil
}
