package exp

// This file is the caching layer between the experiment drivers and the
// compile pipeline. Every product stored here is immutable after
// publication and is shared read-only across worker goroutines and across
// runner configurations:
//
//   - frontEnd: the machine-independent pipeline prefix (compile →
//     if-convert → region formation → value profile), keyed by benchmark
//     source hash and the pass configurations.
//   - origLens: original schedule lengths of every block, keyed by front
//     end + machine description + DDG options.
//   - interp run: the sequential reference result of the front-end program.
//   - base run: the baseline (no-speculation) dual-engine cycle count,
//     validated against the interp run when computed.
//
// Anything downstream of speculate.Transform is configuration-dependent and
// deliberately NOT cached here. See DESIGN.md ("Compile-cache keying").

import (
	"fmt"

	"vliwvp/internal/exp/cache"
	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/profile"
	"vliwvp/internal/workload"
)

// sharedCache serves every Runner whose Cache field is nil, so independent
// drivers in one process (e.g. the ablation suite) share front ends.
var sharedCache = cache.New()

// frontEnd is the machine-independent pipeline prefix for one benchmark
// under one (IfConvert, Regions) configuration. Prog and Prof are read-only
// after construction.
type frontEnd struct {
	Prog *ir.Program
	Prof *profile.Profile
}

// baseRun is the cached baseline (no value speculation) end-to-end run.
type baseRun struct {
	Cycles int64
	Value  uint64
}

func (r *Runner) cacheFor() *cache.Cache {
	if r.Cache != nil {
		return r.Cache
	}
	return sharedCache
}

// manager wires a pass manager over the runner's configuration: the
// runner's cache (per-pass memoization), optional pass-event sink, optional
// IR dump hook, and between-pass validation (always on when ValidateIR is
// set; the manager itself defaults it on under `go test`).
func (r *Runner) manager() *pipeline.Manager {
	m := pipeline.NewManager()
	if r.ValidateIR {
		m.ValidateEach = true
	}
	m.Cache = r.cacheFor()
	m.Sink = r.PassSink
	m.Dump = r.DumpIR
	return m
}

// frontBase fingerprints the front end's input: the program source (by
// hash, so workload edits invalidate). Pass configurations enter the key
// per pass, via the plan. The machine description is deliberately absent —
// the front end is machine-independent.
func (r *Runner) frontBase(b *workload.Benchmark) string {
	return "fe|" + b.Name + "|" + b.SourceHash()
}

// frontKey is the cumulative per-pass cache key of the full front-end
// plan; the lens/interp/base caches key off it.
func (r *Runner) frontKey(b *workload.Benchmark) string {
	pl := r.FrontPlan()
	return pl.Key(r.frontBase(b), len(pl.Passes))
}

// FrontPlan is the machine-independent pipeline prefix the runner's
// configuration selects: compile, optimize, optional if-conversion and
// region formation, value profile. Every pass in it is cacheable, so runs
// that agree on a prefix share its per-pass cache entries.
func (r *Runner) FrontPlan() pipeline.Plan {
	passes := []pipeline.Pass{pipeline.Lower{}, pipeline.Opt{}}
	name := "frontend"
	if r.IfConvert {
		passes = append(passes, pipeline.IfConvert{Cfg: r.IfConvCfg})
		name += "+ifconv"
	}
	if r.Regions {
		// Region formation duplicates code (fresh op IDs), so the pass uses
		// its own edge profile and the value profile is collected afterwards.
		passes = append(passes, pipeline.Regions{Cfg: r.RegionsCfg})
		name += "+regions"
	}
	passes = append(passes, pipeline.Profile{})
	return pipeline.Plan{Name: name, Passes: passes}
}

// SpeculatePlan is the configuration-dependent speculation step: select
// prediction sites and insert LdPred/CheckLd pairs. Its product is not
// cached (it varies with every swept knob), so it runs live downstream of
// the cached front end.
func (r *Runner) SpeculatePlan() pipeline.Plan {
	return pipeline.Plan{Name: "speculate", Passes: []pipeline.Pass{
		pipeline.Speculate{Cfg: r.Cfg},
	}}
}

// SchedulePlan is the back-end scheduling step: list-schedule every block
// of the current program for the runner's machine and DDG options, then
// decode the result into the simulator's dense image.
func (r *Runner) SchedulePlan() pipeline.Plan {
	return pipeline.Plan{Name: "schedule", Passes: []pipeline.Pass{
		pipeline.Schedule{DDG: r.DDG}, pipeline.Decode{},
	}}
}

// SpecPlan is speculation followed by whole-program scheduling and image
// decode — the suffix the speedup and trace drivers run after the front
// end.
func (r *Runner) SpecPlan() pipeline.Plan {
	return pipeline.Plan{Name: "speculate+schedule", Passes: []pipeline.Pass{
		pipeline.Speculate{Cfg: r.Cfg}, pipeline.Schedule{DDG: r.DDG}, pipeline.Decode{},
	}}
}

// Plans lists every plan the runner's current configuration composes, in
// execution order (vpexp -passes prints these).
func (r *Runner) Plans() []pipeline.Plan {
	return []pipeline.Plan{r.FrontPlan(), r.SpeculatePlan(), r.SchedulePlan()}
}

// frontEndFor compiles, optionally if-converts and forms regions, and value
// profiles the benchmark — once per (pass, key) per cache.
func (r *Runner) frontEndFor(b *workload.Benchmark) (*frontEnd, error) {
	ctx := &pipeline.Ctx{Source: b.Source, Key: r.frontBase(b), Machine: r.D}
	if err := r.manager().Run(r.FrontPlan(), ctx); err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return &frontEnd{Prog: ctx.Prog, Prof: ctx.Prof}, nil
}

// specImageFor returns the benchmark's compiled product (decoded image,
// per-site schemes, rendered schedule) under the runner's speculative
// configuration, computed once per cache. The key composes the front-end
// key with every SpecPlan pass fingerprint (speculation config, DDG
// options, image format version) and the machine description, so images
// cache exactly as finely as the pipeline products they decode.
func (r *Runner) specImageFor(b *workload.Benchmark) (*Compiled, error) {
	key := r.CompiledKey(b)
	v, err := r.cacheFor().Do(key, func() (any, error) {
		ctx, err := r.specRun(b)
		if err != nil {
			return nil, err
		}
		if ctx.Image == nil {
			return nil, fmt.Errorf("%s: spec plan produced no image", b.Name)
		}
		return &Compiled{
			Img:      ctx.Image,
			Schemes:  ctx.Schemes,
			Schedule: RenderSchedule(ctx.Prog, ctx.Sched),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Compiled), nil
}

// origLensFor returns the original schedule length of every block of the
// front-end program, shared across configurations that agree on machine and
// DDG options. The returned map is read-only.
func (r *Runner) origLensFor(b *workload.Benchmark, fe *frontEnd) (map[profile.BlockKey]int, error) {
	key := fmt.Sprintf("lens|%s|d=%+v|g=%+v", r.frontKey(b), *r.D, r.DDG)
	v, err := r.cacheFor().Do(key, func() (any, error) {
		return r.computeOrigLens(fe.Prog), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(map[profile.BlockKey]int), nil
}

// interpRunFor returns the sequential reference result of the front-end
// program — the value every simulated run must reproduce.
func (r *Runner) interpRunFor(b *workload.Benchmark, fe *frontEnd) (uint64, error) {
	key := "interp|" + r.frontKey(b)
	v, err := r.cacheFor().Do(key, func() (any, error) {
		got, err := interp.New(fe.Prog).RunMain()
		if err != nil {
			return nil, fmt.Errorf("%s interp: %w", b.Name, err)
		}
		return got, nil
	})
	if err != nil {
		return 0, err
	}
	return v.(uint64), nil
}

// baseRunFor returns the baseline end-to-end dual-engine run (the program
// without value speculation), validated against the interpreter the first
// time it is computed. The untransformed program issues no predictions, so
// the run is independent of CCB capacity and speculation config; sweeps
// over those knobs all share one baseline run per (front end, machine,
// DDG, memory hierarchy, control config). The hierarchy and control
// config are part of the key: baseline cycles move with cache latency
// and branch handling even though the architectural result does not.
func (r *Runner) baseRunFor(b *workload.Benchmark, fe *frontEnd) (baseRun, error) {
	key := fmt.Sprintf("base|%s|d=%+v|g=%+v|m=%s|c=%s", r.frontKey(b), *r.D, r.DDG, r.Mem.Key(), r.Cfg.Control.Key())
	v, err := r.cacheFor().Do(key, func() (any, error) {
		sim, err := r.NewSimulatorFor(fe.Prog, nil)
		if err != nil {
			return nil, err
		}
		got, err := sim.Run("main")
		if err != nil {
			return nil, fmt.Errorf("%s baseline sim: %w", b.Name, err)
		}
		want, err := r.interpRunFor(b, fe)
		if err != nil {
			return nil, err
		}
		if got != want {
			return nil, fmt.Errorf("%s: baseline sim result %d != interp %d", b.Name, got, want)
		}
		return baseRun{Cycles: sim.Cycles, Value: got}, nil
	})
	if err != nil {
		return baseRun{}, err
	}
	return v.(baseRun), nil
}
