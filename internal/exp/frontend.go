package exp

// This file is the caching layer between the experiment drivers and the
// compile pipeline. Every product stored here is immutable after
// publication and is shared read-only across worker goroutines and across
// runner configurations:
//
//   - frontEnd: the machine-independent pipeline prefix (compile →
//     if-convert → region formation → value profile), keyed by benchmark
//     source hash and the pass configurations.
//   - origLens: original schedule lengths of every block, keyed by front
//     end + machine description + DDG options.
//   - interp run: the sequential reference result of the front-end program.
//   - base run: the baseline (no-speculation) dual-engine cycle count,
//     validated against the interp run when computed.
//
// Anything downstream of speculate.Transform is configuration-dependent and
// deliberately NOT cached here. See DESIGN.md ("Compile-cache keying").

import (
	"fmt"

	"vliwvp/internal/exp/cache"
	"vliwvp/internal/ifconv"
	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/profile"
	"vliwvp/internal/regions"
	"vliwvp/internal/workload"
)

// sharedCache serves every Runner whose Cache field is nil, so independent
// drivers in one process (e.g. the ablation suite) share front ends.
var sharedCache = cache.New()

// frontEnd is the machine-independent pipeline prefix for one benchmark
// under one (IfConvert, Regions) configuration. Prog and Prof are read-only
// after construction.
type frontEnd struct {
	Prog *ir.Program
	Prof *profile.Profile
}

// baseRun is the cached baseline (no value speculation) end-to-end run.
type baseRun struct {
	Cycles int64
	Value  uint64
}

func (r *Runner) cacheFor() *cache.Cache {
	if r.Cache != nil {
		return r.Cache
	}
	return sharedCache
}

// frontKey fingerprints everything the front end depends on: the program
// source (by hash, so workload edits invalidate) and the two front-end pass
// configurations. The machine description is deliberately absent — the
// front end is machine-independent.
func (r *Runner) frontKey(b *workload.Benchmark) string {
	return fmt.Sprintf("fe|%s|%s|ifc=%v:%+v|reg=%v:%+v",
		b.Name, b.SourceHash(), r.IfConvert, r.IfConvCfg, r.Regions, r.RegionsCfg)
}

// frontEndFor compiles, optionally if-converts and forms regions, and value
// profiles the benchmark — once per front-end key per cache.
func (r *Runner) frontEndFor(b *workload.Benchmark) (*frontEnd, error) {
	v, err := r.cacheFor().Do(r.frontKey(b), func() (any, error) {
		prog, err := b.Compile()
		if err != nil {
			return nil, err
		}
		if r.IfConvert {
			ifconv.Convert(prog, r.IfConvCfg)
			if err := prog.Validate(); err != nil {
				return nil, fmt.Errorf("%s after if-conversion: %w", b.Name, err)
			}
		}
		if r.Regions {
			// Region formation duplicates code (fresh op IDs), so it uses its
			// own edge profile and the value profile is collected afterwards.
			prof0, err := profile.Collect(prog, "main")
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			regions.Form(prog, prof0, r.RegionsCfg)
			if err := prog.Validate(); err != nil {
				return nil, fmt.Errorf("%s after region formation: %w", b.Name, err)
			}
		}
		prof, err := profile.Collect(prog, "main")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		return &frontEnd{Prog: prog, Prof: prof}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*frontEnd), nil
}

// origLensFor returns the original schedule length of every block of the
// front-end program, shared across configurations that agree on machine and
// DDG options. The returned map is read-only.
func (r *Runner) origLensFor(b *workload.Benchmark, fe *frontEnd) (map[profile.BlockKey]int, error) {
	key := fmt.Sprintf("lens|%s|d=%+v|g=%+v", r.frontKey(b), *r.D, r.DDG)
	v, err := r.cacheFor().Do(key, func() (any, error) {
		return r.computeOrigLens(fe.Prog), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(map[profile.BlockKey]int), nil
}

// interpRunFor returns the sequential reference result of the front-end
// program — the value every simulated run must reproduce.
func (r *Runner) interpRunFor(b *workload.Benchmark, fe *frontEnd) (uint64, error) {
	key := "interp|" + r.frontKey(b)
	v, err := r.cacheFor().Do(key, func() (any, error) {
		got, err := interp.New(fe.Prog).RunMain()
		if err != nil {
			return nil, fmt.Errorf("%s interp: %w", b.Name, err)
		}
		return got, nil
	})
	if err != nil {
		return 0, err
	}
	return v.(uint64), nil
}

// baseRunFor returns the baseline end-to-end dual-engine run (the program
// without value speculation), validated against the interpreter the first
// time it is computed. The untransformed program issues no predictions, so
// the run is independent of CCB capacity and speculation config; sweeps
// over those knobs all share one baseline run per (front end, machine,
// DDG).
func (r *Runner) baseRunFor(b *workload.Benchmark, fe *frontEnd) (baseRun, error) {
	key := fmt.Sprintf("base|%s|d=%+v|g=%+v", r.frontKey(b), *r.D, r.DDG)
	v, err := r.cacheFor().Do(key, func() (any, error) {
		sim, err := r.NewSimulatorFor(fe.Prog, nil)
		if err != nil {
			return nil, err
		}
		got, err := sim.Run("main")
		if err != nil {
			return nil, fmt.Errorf("%s baseline sim: %w", b.Name, err)
		}
		want, err := r.interpRunFor(b, fe)
		if err != nil {
			return nil, err
		}
		if got != want {
			return nil, fmt.Errorf("%s: baseline sim result %d != interp %d", b.Name, got, want)
		}
		return baseRun{Cycles: sim.Cycles, Value: got}, nil
	})
	if err != nil {
		return baseRun{}, err
	}
	return v.(baseRun), nil
}
