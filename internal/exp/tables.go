package exp

import (
	"fmt"

	"vliwvp/internal/machine"
	"vliwvp/internal/pool"
	"vliwvp/internal/stats"
	"vliwvp/internal/workload"
)

// The Render* drivers here all follow the same two-phase shape: phase 1
// fans the per-benchmark work across the worker pool into index-addressed
// slots, phase 2 aggregates the slots serially in input order. Averages,
// histogram totals, and row order are therefore independent of goroutine
// scheduling, and a parallel run renders byte-identical tables.

// Table2Row is one benchmark's fraction of execution time spent in
// speculated blocks whose predictions were all correct (best case) or all
// incorrect (worst case) — the paper's Table 2.
type Table2Row struct {
	Name      string
	BestFrac  float64
	WorstFrac float64
}

// Table2 computes the row for one prepared benchmark.
func Table2(bd *BenchData) Table2Row {
	row := Table2Row{Name: bd.Bench.Name}
	if bd.TotalTime == 0 {
		return row
	}
	var best, worst float64
	for bk, blk := range bd.Blocks {
		w := float64(bd.OrigLen(bk))
		best += float64(bd.Out.MaskCounts[bk][blk.FullMask()]) * w
		worst += float64(bd.Out.MaskCounts[bk][0]) * w
	}
	row.BestFrac = best / bd.TotalTime
	row.WorstFrac = worst / bd.TotalTime
	return row
}

// Table3Row is one benchmark's effective schedule-length ratio over
// speculated blocks: best case (all predictions correct), worst case (all
// incorrect), and the measured expectation over the profiled outcome
// distribution — the paper's Table 3 plus a "measured" column.
type Table3Row struct {
	Name     string
	Best     float64
	Worst    float64
	Measured float64
}

// Table3 computes the row for one prepared benchmark.
func Table3(bd *BenchData) (Table3Row, error) {
	row := Table3Row{Name: bd.Bench.Name}
	var best, worst, measured, orig stats.WeightedMean
	for bk, blk := range bd.Blocks {
		execs := float64(bd.Out.Executions[bk])
		if execs == 0 {
			continue
		}
		rBest, err := blk.Result(blk.FullMask())
		if err != nil {
			return row, err
		}
		rWorst, err := blk.Result(0)
		if err != nil {
			return row, err
		}
		best.Add(float64(rBest.Length), execs)
		worst.Add(float64(rWorst.Length), execs)
		orig.Add(float64(blk.OrigLen), execs)
		for mask, n := range bd.Out.MaskCounts[bk] {
			r, err := blk.Result(mask)
			if err != nil {
				return row, err
			}
			measured.Add(float64(r.Length), float64(n))
		}
	}
	if orig.Mean() == 0 {
		return row, nil
	}
	row.Best = best.Mean() / orig.Mean()
	row.Worst = worst.Mean() / orig.Mean()
	row.Measured = measured.Mean() / orig.Mean()
	return row, nil
}

// Figure8 builds the distribution of change in schedule length (cycles of
// improvement, all-correct case) over executed speculated blocks.
func Figure8(bd *BenchData) (*stats.Histogram, error) {
	h := &stats.Histogram{Buckets: stats.DeltaBuckets()}
	for bk, blk := range bd.Blocks {
		execs := float64(bd.Out.Executions[bk])
		if execs == 0 {
			continue
		}
		r, err := blk.Result(blk.FullMask())
		if err != nil {
			return nil, err
		}
		h.Add(blk.OrigLen-r.Length, execs)
	}
	return h, nil
}

// Table4Row pairs the best-case execution-time fraction and schedule-length
// fraction at two issue widths — the paper's Table 4.
type Table4Row struct {
	Name               string
	ExTime4, SchedLen4 float64
	ExTime8, SchedLen8 float64
}

// prepareAll prepares every benchmark of the runner on the worker pool.
func (r *Runner) prepareAll() ([]*BenchData, error) {
	bds := make([]*BenchData, len(r.Benchmarks))
	err := r.forEach(len(r.Benchmarks), func(i int) error {
		bd, err := r.Prepare(r.Benchmarks[i])
		if err != nil {
			return err
		}
		bds[i] = bd
		return nil
	})
	if err != nil {
		return nil, err
	}
	return bds, nil
}

// RenderTable2 runs Table 2 for every benchmark and renders it.
func RenderTable2(r *Runner) (*stats.Table, []Table2Row, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Table 2: fraction of execution time in speculated blocks (%s)", r.D.Name),
		Headers: []string{"Benchmark", "Best case", "Worst case"},
	}
	bds, err := r.prepareAll()
	if err != nil {
		return nil, nil, err
	}
	var rows []Table2Row
	var best, worst stats.WeightedMean
	for _, bd := range bds {
		row := Table2(bd)
		rows = append(rows, row)
		t.AddRow(row.Name, stats.F(row.BestFrac), stats.F(row.WorstFrac))
		best.Add(row.BestFrac, 1)
		worst.Add(row.WorstFrac, 1)
	}
	t.AddRow("average", stats.F(best.Mean()), stats.F(worst.Mean()))
	return t, rows, nil
}

// RenderTable3 runs Table 3 for every benchmark and renders it.
func RenderTable3(r *Runner) (*stats.Table, []Table3Row, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Table 3: effective schedule length of speculated blocks / original (%s)", r.D.Name),
		Headers: []string{"Benchmark", "Best case", "Worst case", "Measured"},
	}
	bds, err := r.prepareAll()
	if err != nil {
		return nil, nil, err
	}
	rows := make([]Table3Row, len(bds))
	err = r.forEach(len(bds), func(i int) error {
		row, err := Table3(bds[i])
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var best, worst stats.WeightedMean
	for _, row := range rows {
		t.AddRow(row.Name, stats.F(row.Best), stats.F(row.Worst), stats.F(row.Measured))
		best.Add(row.Best, 1)
		worst.Add(row.Worst, 1)
	}
	t.AddRow("average", stats.F(best.Mean()), stats.F(worst.Mean()), "")
	return t, rows, nil
}

// RenderFigure8 runs the Figure 8 distribution per benchmark plus overall.
func RenderFigure8(r *Runner) (*stats.Table, *stats.Histogram, error) {
	overall := &stats.Histogram{Buckets: stats.DeltaBuckets()}
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 8: distribution of schedule-length change, all-correct case (%s)", r.D.Name),
		Headers: []string{"Benchmark", "degraded", "0", "1-2", "3-4", "5-8", ">8"},
	}
	bds, err := r.prepareAll()
	if err != nil {
		return nil, nil, err
	}
	hists := make([]*stats.Histogram, len(bds))
	err = r.forEach(len(bds), func(i int) error {
		h, err := Figure8(bds[i])
		if err != nil {
			return err
		}
		hists[i] = h
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, h := range hists {
		cells := []string{r.Benchmarks[i].Name}
		for j := range h.Buckets {
			cells = append(cells, stats.Pct(h.Fraction(j)))
			overall.Buckets[j].Count += h.Buckets[j].Count
		}
		overall.Total += h.Total
		t.AddRow(cells...)
	}
	cells := []string{"overall"}
	for i := range overall.Buckets {
		cells = append(cells, stats.Pct(overall.Fraction(i)))
	}
	t.AddRow(cells...)
	return t, overall, nil
}

// RenderTable4 compares best-case metrics at widths 4 and 8, fanning each
// (benchmark, width) pair across the worker pool.
func RenderTable4(jobs int) (*stats.Table, []Table4Row, error) {
	r4 := NewRunner(machine.W4)
	r8 := NewRunner(machine.W8)
	t := &stats.Table{
		Title:   "Table 4: best case at issue width 4 vs 8",
		Headers: []string{"Benchmark", "ExTime frac (4)", "Sched frac (4)", "ExTime frac (8)", "Sched frac (8)"},
	}
	benches := workload.All()
	rows := make([]Table4Row, len(benches))
	err := pool.ForEach(jobs, 2*len(benches), func(cell int) error {
		b := benches[cell/2]
		r := r4
		if cell%2 == 1 {
			r = r8
		}
		bd, err := r.Prepare(b)
		if err != nil {
			return err
		}
		t2 := Table2(bd)
		t3, err := Table3(bd)
		if err != nil {
			return err
		}
		// Each cell owns two distinct fields of its row; no lock needed.
		if cell%2 == 0 {
			rows[cell/2].Name = b.Name
			rows[cell/2].ExTime4, rows[cell/2].SchedLen4 = t2.BestFrac, t3.Best
		} else {
			rows[cell/2].ExTime8, rows[cell/2].SchedLen8 = t2.BestFrac, t3.Best
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		t.AddRow(row.Name, stats.F(row.ExTime4), stats.F(row.SchedLen4),
			stats.F(row.ExTime8), stats.F(row.SchedLen8))
	}
	return t, rows, nil
}
