package exp

// Batched corpus execution: the vpexp -batch workflow. A progen corpus is
// compiled through the speculative pipeline (front ends and decoded images
// served from the per-pass cache), then executed through one core.Batch,
// which amortizes decode, predictor tables, and simulator pools across the
// whole corpus. Every kernel's architectural result is validated against
// the sequential interpreter, so a corpus sweep doubles as a broad
// differential check.

import (
	"fmt"

	"vliwvp/internal/core"
	"vliwvp/internal/stats"
	"vliwvp/internal/workload"
)

// BatchItems compiles each benchmark through the runner's speculative
// pipeline and returns the corpus as batch items (decoded images plus
// per-site schemes). Compilation fans across the runner's worker pool;
// items return in input order.
func (r *Runner) BatchItems(bs []*workload.Benchmark) ([]core.BatchItem, error) {
	items := make([]core.BatchItem, len(bs))
	err := r.forEach(len(bs), func(i int) error {
		si, err := r.specImageFor(bs[i])
		if err != nil {
			return err
		}
		items[i] = core.BatchItem{Name: bs[i].Name, Img: si.Img, Schemes: si.Schemes}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return items, nil
}

// RunBatchCorpus compiles n progen kernels (consecutive seeds from seed)
// and executes them through one batch, validating each result against the
// sequential interpreter. A simulator error or an interpreter mismatch is
// returned as an error naming the kernel — the corpus is seed-reproducible.
func (r *Runner) RunBatchCorpus(seed int64, n int) ([]core.BatchResult, error) {
	bs := workload.Generated(seed, n)
	items, err := r.BatchItems(bs)
	if err != nil {
		return nil, err
	}
	batch := core.NewBatch()
	if r.CCBCapacity > 0 {
		batch.CCBCapacity = r.CCBCapacity
	}
	results := batch.RunAll(items)
	for i := range results {
		res := &results[i]
		if res.Err != nil {
			return results, fmt.Errorf("batch %s: %w", res.Name, res.Err)
		}
		fe, err := r.frontEndFor(bs[i])
		if err != nil {
			return results, err
		}
		want, err := r.interpRunFor(bs[i], fe)
		if err != nil {
			return results, err
		}
		if res.Value != want {
			return results, fmt.Errorf("batch %s: simulated result %d != interpreter %d",
				res.Name, res.Value, want)
		}
	}
	return results, nil
}

// RenderBatch runs the batched corpus and renders its per-kernel table.
func RenderBatch(r *Runner, seed int64, n int) (*stats.Table, []core.BatchResult, error) {
	results, err := r.RunBatchCorpus(seed, n)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Batched corpus execution (%s, %d kernels from seed %d)",
			r.D.Name, n, seed),
		Headers: []string{"Kernel", "Cycles", "Instrs", "Ops", "Preds", "Mispred",
			"CCE exec", "CCE flush"},
	}
	var cycles int64
	for _, res := range results {
		cycles += res.Cycles
		t.AddRow(res.Name,
			fmt.Sprintf("%d", res.Cycles), fmt.Sprintf("%d", res.Instrs),
			fmt.Sprintf("%d", res.Ops), fmt.Sprintf("%d", res.Predictions),
			fmt.Sprintf("%d", res.Mispredicts), fmt.Sprintf("%d", res.CCEExecuted),
			fmt.Sprintf("%d", res.CCEFlushed))
	}
	t.AddRow("total", fmt.Sprintf("%d", cycles), "", "", "", "", "", "")
	return t, results, nil
}
