package cache_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"vliwvp/internal/exp/cache"
)

// TestHookObservesComputeVsCoalesce pins the Hook contract the serving
// layer's compile counters build on: across any interleaving, exactly one
// Do caller per key observes ran=true and every other observes ran=false.
func TestHookObservesComputeVsCoalesce(t *testing.T) {
	c := cache.New()
	var computed, coalesced atomic.Int64
	c.Hook = func(key string, ran bool) {
		if ran {
			computed.Add(1)
		} else {
			coalesced.Add(1)
		}
	}

	const callers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := c.Do("k", func() (any, error) { return 1, nil }); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := computed.Load(); got != 1 {
		t.Errorf("computed = %d, want exactly 1", got)
	}
	if got := coalesced.Load(); got != callers-1 {
		t.Errorf("coalesced = %d, want %d", got, callers-1)
	}

	// A later hit on the same key is also a coalesce (ran=false).
	if _, err := c.Do("k", func() (any, error) { return 2, nil }); err != nil {
		t.Fatal(err)
	}
	if got := coalesced.Load(); got != callers {
		t.Errorf("after warm hit: coalesced = %d, want %d", got, callers)
	}

	// The hook sees the key it fired for, and errors still report ran=true
	// for the computing caller.
	var sawKey string
	var sawRan bool
	c.Hook = func(key string, ran bool) { sawKey, sawRan = key, ran }
	if _, err := c.Do("k2", func() (any, error) { return nil, errFail }); err == nil {
		t.Fatal("error from compute was swallowed")
	}
	if sawKey != "k2" || !sawRan {
		t.Errorf("hook saw (%q, %v), want (\"k2\", true)", sawKey, sawRan)
	}
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "compute failed" }
