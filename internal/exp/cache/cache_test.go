package cache_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"vliwvp/internal/exp/cache"
)

func TestDoMemoizesPerKey(t *testing.T) {
	c := cache.New()
	calls := 0
	get := func(key string) int {
		v, err := c.Do(key, func() (any, error) {
			calls++
			return calls, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v.(int)
	}
	if a, b := get("k1"), get("k1"); a != b {
		t.Errorf("same key returned different values: %d, %d", a, b)
	}
	if get("k2") == get("k1") {
		t.Error("distinct keys shared a value")
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2", calls)
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
}

func TestDoSingleFlightUnderConcurrency(t *testing.T) {
	c := cache.New()
	var computes atomic.Int32
	var wg sync.WaitGroup
	const workers = 32
	results := make([]int32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, err := c.Do("shared", func() (any, error) {
				return computes.Add(1), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = v.(int32)
		}(w)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times under contention, want 1", n)
	}
	for w, v := range results {
		if v != 1 {
			t.Errorf("worker %d saw value %d, want 1", w, v)
		}
	}
}

func TestDoMemoizesErrors(t *testing.T) {
	c := cache.New()
	calls := 0
	fail := func() (any, error) {
		calls++
		return nil, fmt.Errorf("boom %d", calls)
	}
	_, err1 := c.Do("bad", fail)
	_, err2 := c.Do("bad", fail)
	if err1 == nil || err2 == nil || err1.Error() != "boom 1" || err2.Error() != "boom 1" {
		t.Errorf("errors not memoized: %v, %v", err1, err2)
	}
	if calls != 1 {
		t.Errorf("failed compute ran %d times, want 1", calls)
	}
}

func TestFlush(t *testing.T) {
	c := cache.New()
	calls := 0
	compute := func() (any, error) { calls++; return calls, nil }
	c.Do("k", compute)
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len() = %d after Flush, want 0", c.Len())
	}
	v, _ := c.Do("k", compute)
	if v.(int) != 2 || calls != 2 {
		t.Errorf("Flush did not force recompute: v=%v calls=%d", v, calls)
	}
}
