package cache

import (
	"errors"
	"testing"
)

// TestForgetDropsEntry proves Forget removes both value and error entries:
// the next Do recomputes, where an untouched key stays memoized.
func TestForgetDropsEntry(t *testing.T) {
	c := New()
	calls := 0
	compute := func() (any, error) { calls++; return calls, nil }
	if v, _ := c.Do("k", compute); v.(int) != 1 {
		t.Fatalf("first Do = %v, want 1", v)
	}
	if v, _ := c.Do("k", compute); v.(int) != 1 {
		t.Fatalf("memoized Do = %v, want 1", v)
	}
	c.Forget("k")
	if v, _ := c.Do("k", compute); v.(int) != 2 {
		t.Fatalf("post-Forget Do = %v, want recompute (2)", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}

	// Errors are memoized by Do; Forget is how a caller opts a failed
	// computation out of that (the pipeline manager's no-partial-entry
	// guarantee).
	boom := errors.New("boom")
	fails := 0
	failing := func() (any, error) { fails++; return nil, boom }
	if _, err := c.Do("bad", failing); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if _, err := c.Do("bad", failing); !errors.Is(err, boom) || fails != 1 {
		t.Fatalf("error not memoized: fails=%d err=%v", fails, err)
	}
	c.Forget("bad")
	if c.Len() != 1 {
		t.Fatalf("Len after Forget = %d, want 1", c.Len())
	}
	if _, err := c.Do("bad", failing); !errors.Is(err, boom) || fails != 2 {
		t.Fatalf("post-Forget error Do: fails=%d err=%v", fails, err)
	}

	// Forgetting a missing key is a no-op.
	c.Forget("absent")
}
