// Package cache provides the keyed, sharded, single-flight memoization
// layer behind the parallel experiment runner. The experiment drivers share
// one front-end pipeline (compile → if-convert → region formation → value
// profile) and one baseline schedule per configuration fingerprint, so a
// sweep that varies only back-end knobs (selection threshold, CCB capacity,
// machine width) computes each front end exactly once — even when many
// worker goroutines request it simultaneously.
//
// Values stored here are shared across goroutines and configurations, so
// they must be immutable after publication. See DESIGN.md ("Compile-cache
// keying") for what is safe to share and what is not.
package cache

import (
	"hash/fnv"
	"sync"
)

// shardCount spreads keys over independent locks so concurrent workers
// requesting different keys do not serialize on one mutex.
const shardCount = 32

type entry struct {
	once sync.Once
	val  any
	err  error
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// Cache memoizes keyed computations with single-flight semantics: for each
// key the compute function runs at most once, concurrent callers block on
// the first computation, and both values and errors are memoized (an error
// is as deterministic as a value — re-running would produce the same one).
type Cache struct {
	shards [shardCount]shard

	// Hook, when non-nil, observes every Do call after its entry resolves:
	// ran reports whether this caller executed compute (false means the
	// result was served by single-flight coalescing or an earlier memo).
	// Set it before the cache is shared across goroutines; the serving
	// layer uses it to pin compile-vs-coalesced counters.
	Hook func(key string, ran bool)
}

// New returns an empty cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].entries = map[string]*entry{}
	}
	return c
}

func (c *Cache) shard(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%shardCount]
}

// Do returns the memoized result for key, running compute at most once per
// key over the cache's lifetime. compute must return a value that is safe
// to share: either immutable, or documented read-only.
func (c *Cache) Do(key string, compute func() (any, error)) (any, error) {
	s := c.shard(key)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		e = &entry{}
		s.entries[key] = e
	}
	s.mu.Unlock()
	ran := false
	e.once.Do(func() { e.val, e.err = compute(); ran = true })
	if c.Hook != nil {
		c.Hook(key, ran)
	}
	return e.val, e.err
}

// Forget drops one key. The pass manager uses it to guarantee a failing
// pass leaves no cache entry at all — not even a memoized error — so a
// plan that errors mid-flight can be retried from a clean slate and
// Len-based accounting never counts partial compiles. An in-flight
// computation for the key finishes against the forgotten entry; callers
// already blocked on it still observe its result.
func (c *Cache) Forget(key string) {
	s := c.shard(key)
	s.mu.Lock()
	delete(s.entries, key)
	s.mu.Unlock()
}

// Len reports the number of memoized keys (including failed computations).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Flush drops every entry. Outstanding computations finish against the old
// entries; subsequent Do calls recompute.
func (c *Cache) Flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = map[string]*entry{}
		s.mu.Unlock()
	}
}
